# Empty dependencies file for eon_storage.
# This may be replaced when dependencies are built.
