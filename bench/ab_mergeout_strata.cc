// Ablation (Sections 2.3, 6.2): the tuple mover's exponentially tiered
// strata selection vs a naive merge-everything policy.
//
// "Mergeout uses an exponentially tiered strata algorithm to select ROS
// containers to merge so as to only merge each tuple a small fixed number
// of times."
//
// Sustained small loads; after each load the policy compacts. We report
// the final container count and total rows rewritten (write
// amplification).

#include "bench/bench_util.h"
#include "engine/ddl.h"
#include "engine/dml.h"
#include "tm/tuple_mover.h"

namespace eon {
namespace bench {
namespace {

struct PolicyResult {
  uint64_t rows_rewritten = 0;
  size_t final_containers = 0;
};

PolicyResult RunPolicy(bool tiered, int loads, int rows_per_load) {
  SimClock clock;
  SimStoreOptions sopts;
  sopts.get_latency_micros = 0;
  sopts.put_latency_micros = 0;
  sopts.list_latency_micros = 0;
  SimObjectStore store(sopts, &clock);
  ClusterOptions copts;
  copts.num_shards = 2;
  auto cluster = EonCluster::Create(
      &store, &clock, copts,
      {NodeSpec{"n1", ""}, NodeSpec{"n2", ""}, NodeSpec{"n3", ""}});
  EON_CHECK(cluster.ok());
  Schema schema({{"id", DataType::kInt64}, {"v", DataType::kDouble}});
  EON_CHECK(CreateTable(cluster->get(), "t", schema, std::nullopt,
                        {ProjectionSpec{"t_super", {}, {"id"}, {"id"}}})
                .ok());

  MergeoutOptions mopts;
  if (tiered) {
    mopts.stratum_fanin = 4;
    mopts.max_merge_fanin = 8;
  } else {
    // Naive: any 2 containers in a tier trigger a merge, and tiering is
    // effectively disabled by a huge base stratum — everything merges
    // with everything after every load.
    mopts.stratum_fanin = 2;
    mopts.max_merge_fanin = 10000;
    mopts.base_stratum_bytes = UINT64_MAX / 2;
  }
  TupleMover tm(cluster->get(), mopts);

  for (int b = 0; b < loads; ++b) {
    std::vector<Row> rows;
    for (int i = 0; i < rows_per_load; ++i) {
      int64_t id = b * rows_per_load + i;
      rows.push_back(Row{Value::Int(id), Value::Dbl(id * 0.5)});
    }
    EON_CHECK(CopyInto(cluster->get(), "t", rows).ok());
    EON_CHECK(tm.RunOnce().ok());
  }

  PolicyResult result;
  result.rows_rewritten = tm.stats().rows_written;
  result.final_containers =
      (*cluster)->node(1)->catalog()->snapshot()->containers.size();
  return result;
}

int Run() {
  printf("# Ablation: mergeout strata policy vs naive merge-everything\n");
  printf("%-14s %-10s %18s %18s %14s\n", "policy", "loads", "rows_loaded",
         "rows_rewritten", "final_ros");
  const int kLoads = 48;
  const int kRows = 400;
  for (bool tiered : {false, true}) {
    PolicyResult r = RunPolicy(tiered, kLoads, kRows);
    printf("%-14s %-10d %18d %18llu %14zu\n",
           tiered ? "tiered" : "naive", kLoads, kLoads * kRows,
           static_cast<unsigned long long>(r.rows_rewritten),
           r.final_containers);
  }
  printf("# shape check: tiered rewrites each tuple a small bounded number "
         "of times; naive rewrites the whole table on every load "
         "(quadratic write amplification)\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace eon

int main() { return eon::bench::Run(); }
