file(REMOVE_RECURSE
  "CMakeFiles/test_columnar.dir/test_columnar.cc.o"
  "CMakeFiles/test_columnar.dir/test_columnar.cc.o.d"
  "test_columnar"
  "test_columnar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_columnar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
