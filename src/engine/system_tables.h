#ifndef EON_ENGINE_SYSTEM_TABLES_H_
#define EON_ENGINE_SYSTEM_TABLES_H_

#include <string>
#include <vector>

#include "columnar/schema.h"
#include "common/json.h"
#include "common/result.h"

namespace eon {

class EonCluster;

/// System tables: the cluster introspected through its own SQL engine
/// (Vertica's v_monitor / Data Collector model). Two families:
///  - dc_* tables project the Data Collector event rings (recent history,
///    bounded, with drop counters when a ring wrapped);
///  - system_* tables are live snapshots of topology, subscriptions,
///    caches, storage containers and the metrics registry.
/// SELECTs over them run through the ordinary executor — predicates,
/// projection, aggregation, ORDER BY and LIMIT all work. Rows materialize
/// per participating node and union at the coordinator; shard pruning
/// does not apply (system tables are not sharded).

/// True when `name` falls in the reserved namespace ("dc_" / "system_"
/// prefixes). DDL refuses user tables with such names whether or not a
/// system table by that name exists yet.
bool IsReservedSystemName(const std::string& name);

/// Schema of a known system table; nullptr when `name` is not one.
const Schema* SystemTableSchema(const std::string& name);

inline bool IsSystemTable(const std::string& name) {
  return SystemTableSchema(name) != nullptr;
}

/// Every system table name, sorted (the eonsql \dt+ listing).
const std::vector<std::string>& SystemTableNames();

/// Materialize all rows of system table `name`, full-width in schema
/// column order (row position == schema position, so predicates built
/// against the table schema evaluate directly).
Result<std::vector<Row>> MaterializeSystemTable(EonCluster* cluster,
                                                const std::string& name);

/// Row source for the serving-layer tables (system_resource_pools,
/// system_sessions). The engine owns the schemas but the rows live above
/// it in src/server/ — an EonServer registers itself here on construction
/// and unregisters on destruction, so SELECTs over those tables see every
/// live server bound to the queried cluster. Implementations must be
/// callable from any thread.
class ServingIntrospection {
 public:
  virtual ~ServingIntrospection() = default;
  /// The cluster this server fronts (rows are scoped to it).
  virtual EonCluster* serving_cluster() = 0;
  /// Rows in system_resource_pools schema order.
  virtual std::vector<Row> ResourcePoolRows() = 0;
  /// Rows in system_sessions schema order.
  virtual std::vector<Row> SessionRows() = 0;
};

/// Thread-safe registration; Register ignores nullptr and duplicates,
/// Unregister ignores unknown pointers.
void RegisterServingIntrospection(ServingIntrospection* source);
void UnregisterServingIntrospection(ServingIntrospection* source);

namespace obs {

/// Every system table as one JSON document:
///   { "<table>": {"columns": [...], "rows": [[...], ...]}, ...,
///     "dc_ring_counters": {"<node>": {"<ring>": {total, dropped}}} }
/// Benches snapshot this next to their metrics sidecar.
JsonValue ExportSystemTables(EonCluster* cluster);

/// Write ExportSystemTables(cluster) to `path`.
Status WriteSystemTablesJsonFile(const std::string& path,
                                 EonCluster* cluster);

}  // namespace obs

}  // namespace eon

#endif  // EON_ENGINE_SYSTEM_TABLES_H_
