#ifndef EON_COMMON_LOGGING_H_
#define EON_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace eon {

/// Log severity. Default threshold is kWarn so tests/benches stay quiet;
/// raise with SetLogLevel for debugging.
enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

void LogMessage(LogLevel level, const char* file, int line,
                const std::string& msg);

/// Stream collector used by the EON_LOG macro.
class LogStream {
 public:
  LogStream(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogStream() { LogMessage(level_, file_, line_, ss_.str()); }

  template <typename T>
  LogStream& operator<<(const T& v) {
    ss_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream ss_;
};

[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& msg);

}  // namespace internal

#define EON_LOG(level)                                                   \
  if (static_cast<int>(::eon::LogLevel::level) <                         \
      static_cast<int>(::eon::GetLogLevel())) {                          \
  } else                                                                 \
    ::eon::internal::LogStream(::eon::LogLevel::level, __FILE__, __LINE__)

/// Invariant check: aborts the process with a message on failure. Use for
/// programmer errors only; recoverable conditions return Status instead.
#define EON_CHECK(expr)                                                  \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::eon::internal::CheckFailed(__FILE__, __LINE__, #expr, "");       \
    }                                                                    \
  } while (false)

#define EON_CHECK_MSG(expr, msg)                                         \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::eon::internal::CheckFailed(__FILE__, __LINE__, #expr, (msg));    \
    }                                                                    \
  } while (false)

}  // namespace eon

#endif  // EON_COMMON_LOGGING_H_
