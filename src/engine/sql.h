#ifndef EON_ENGINE_SQL_H_
#define EON_ENGINE_SQL_H_

#include <string>

#include "catalog/catalog.h"
#include "engine/query.h"

namespace eon {

/// Parse a minimal SQL SELECT into the engine's QuerySpec. Grammar:
///
///   SELECT item [, item]...
///   FROM table
///   [JOIN table2 ON col1 = col2]
///   [WHERE cond [AND|OR cond]...]
///   [GROUP BY col [, col]...]
///   [ORDER BY col [DESC]]
///   [LIMIT n]
///
///   item := column
///         | COUNT(*) | COUNT(DISTINCT column)
///         | SUM(column) | MIN(column) | MAX(column) | AVG(column)
///         [AS alias]
///   cond := column op literal      (op: = <> < <= > >=)
///   literal := integer | floating | 'string'
///
/// AND/OR associate left to right (no parentheses). WHERE conditions bind
/// to whichever side of the join defines the column. Identifiers are
/// case-insensitive keywords, case-sensitive names. This is a convenience
/// layer for the REPL and examples; the paper's contribution sits below
/// the SQL surface, which Vertica reuses unchanged.
Result<QuerySpec> ParseSelect(const CatalogState& state,
                              const std::string& sql);

/// One parsed INSERT statement: the target table plus the literal rows,
/// already typed against the table's schema.
struct InsertSpec {
  std::string table;
  std::vector<Row> rows;
};

/// Cheap statement router: true when `sql` begins with the INSERT keyword.
bool IsInsertStatement(const std::string& sql);

/// Parse a minimal SQL INSERT. Grammar:
///
///   INSERT INTO table VALUES (literal [, literal]...) [, (...)]...
///
/// Every tuple must match the table's arity; literal types are checked
/// against the column types. Execution routes through the WAL/WOS fast
/// path (InsertInto) rather than the bulk COPY path.
Result<InsertSpec> ParseInsert(const CatalogState& state,
                               const std::string& sql);

/// Render a result set as an aligned text table (REPL output).
std::string FormatResult(const QueryResult& result);

}  // namespace eon

#endif  // EON_ENGINE_SQL_H_
