// Tests for backup/restore, cluster cloning, copy_table storage sharing,
// and the SID-uniqueness guarantees behind them (Section 5.1).

#include <gtest/gtest.h>

#include "cluster/backup.h"
#include "cluster/cluster.h"
#include "engine/ddl.h"
#include "engine/dml.h"
#include "engine/session.h"
#include "storage/sim_object_store.h"

namespace eon {
namespace {

class BackupCloneTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SimStoreOptions sopts;
    sopts.get_latency_micros = 0;
    sopts.put_latency_micros = 0;
    sopts.list_latency_micros = 0;
    sopts.delete_latency_micros = 0;
    store_ = std::make_unique<SimObjectStore>(sopts, &clock_);

    ClusterOptions copts;
    copts.num_shards = 2;
    copts.lease_duration_micros = 1000;
    options_ = copts;
    auto cluster = EonCluster::Create(
        store_.get(), &clock_, copts,
        {NodeSpec{"a", ""}, NodeSpec{"b", ""}, NodeSpec{"c", ""}});
    ASSERT_TRUE(cluster.ok());
    cluster_ = std::move(cluster).value();

    Schema schema({{"id", DataType::kInt64}, {"v", DataType::kDouble}});
    ASSERT_TRUE(CreateTable(cluster_.get(), "t", schema, std::nullopt,
                            {ProjectionSpec{"t_super", {}, {"id"}, {"id"}}})
                    .ok());
    ASSERT_TRUE(CopyInto(cluster_.get(), "t", MakeRows(0, 200)).ok());
  }

  static std::vector<Row> MakeRows(int64_t start, int64_t n) {
    std::vector<Row> rows;
    for (int64_t i = start; i < start + n; ++i) {
      rows.push_back(Row{Value::Int(i), Value::Dbl(i * 0.5)});
    }
    return rows;
  }

  int64_t Count(EonCluster* cluster, const std::string& table) {
    EonSession session(cluster);
    QuerySpec q;
    q.scan.table = table;
    q.scan.columns = {"id"};
    q.aggregates = {{AggFn::kCount, "", "n"}};
    auto r = session.Execute(q);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? r->rows[0][0].int_value() : -1;
  }

  SimClock clock_;
  ClusterOptions options_;
  std::unique_ptr<SimObjectStore> store_;
  std::unique_ptr<EonCluster> cluster_;
};

TEST_F(BackupCloneTest, CopyTableSharesStorage) {
  const uint64_t objects_before = store_->backing()->ObjectCount();
  auto copy = CopyTable(cluster_.get(), "t", "t_copy");
  ASSERT_TRUE(copy.ok()) << copy.status().ToString();
  // Pure metadata: no new data objects on shared storage.
  EXPECT_EQ(store_->backing()->ObjectCount(), objects_before);
  EXPECT_EQ(Count(cluster_.get(), "t_copy"), 200);
  EXPECT_EQ(Count(cluster_.get(), "t"), 200);
}

TEST_F(BackupCloneTest, CopiesDivergeIndependently) {
  ASSERT_TRUE(CopyTable(cluster_.get(), "t", "t_copy").ok());
  // New loads into the copy do not appear in the original.
  ASSERT_TRUE(CopyInto(cluster_.get(), "t_copy", MakeRows(1000, 50)).ok());
  EXPECT_EQ(Count(cluster_.get(), "t_copy"), 250);
  EXPECT_EQ(Count(cluster_.get(), "t"), 200);
  // Deletes in the original do not affect the copy (delete vectors are
  // per-container metadata, and the copy has its own containers).
  auto deleted = DeleteWhere(cluster_.get(), "t",
                             Predicate::Cmp(0, CmpOp::kLt, Value::Int(100)));
  ASSERT_TRUE(deleted.ok()) << deleted.status().ToString();
  EXPECT_EQ(Count(cluster_.get(), "t"), 100);
  EXPECT_EQ(Count(cluster_.get(), "t_copy"), 250);
}

TEST_F(BackupCloneTest, DropTableKeepsSharedFiles) {
  ASSERT_TRUE(CopyTable(cluster_.get(), "t", "t_copy").ok());
  ASSERT_TRUE(DropTable(cluster_.get(), "t").ok());
  // Shared files must not even be queued for deletion.
  EXPECT_EQ(cluster_->pending_delete_count(), 0u);
  EXPECT_EQ(Count(cluster_.get(), "t_copy"), 200);

  // Dropping the last reference queues the files; reap after durability.
  ASSERT_TRUE(DropTable(cluster_.get(), "t_copy").ok());
  EXPECT_GT(cluster_->pending_delete_count(), 0u);
  ASSERT_TRUE(cluster_->SyncAll(true).ok());
  ASSERT_TRUE(cluster_->UpdateClusterInfo().ok());
  auto reaped = cluster_->ReapFiles();
  ASSERT_TRUE(reaped.ok());
  EXPECT_GT(*reaped, 0u);
  auto leftover = store_->backing()->List("data/");
  ASSERT_TRUE(leftover.ok());
  EXPECT_TRUE(leftover->empty());
}

TEST_F(BackupCloneTest, DropTableCascadesLiveAggregates) {
  ASSERT_TRUE(CreateLiveAggregateProjection(cluster_.get(), "t", "t_sums",
                                            {"id"}, {{AggFn::kCount, ""}})
                  .ok());
  ASSERT_TRUE(DropTable(cluster_.get(), "t").ok());
  auto snapshot = cluster_->node(1)->catalog()->snapshot();
  EXPECT_EQ(snapshot->FindTableByName("t"), nullptr);
  EXPECT_EQ(snapshot->FindTableByName("t_sums"), nullptr);
  EXPECT_TRUE(snapshot->containers.empty());
}

TEST_F(BackupCloneTest, BackupAndRestore) {
  MemObjectStore backup_storage;
  auto stats = BackupDatabase(cluster_.get(), &backup_storage);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(stats->objects_copied, 0u);
  EXPECT_EQ(stats->objects_skipped, 0u);

  // Restore = revive against the backup location (lease must lapse).
  clock_.AdvanceMicros(options_.lease_duration_micros + 1);
  auto restored = EonCluster::Revive(
      &backup_storage, &clock_, options_,
      {NodeSpec{"r1", ""}, NodeSpec{"r2", ""}, NodeSpec{"r3", ""}});
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(Count(restored->get(), "t"), 200);
}

TEST_F(BackupCloneTest, IncrementalBackupCopiesOnlyNewObjects) {
  MemObjectStore backup_storage;
  ASSERT_TRUE(BackupDatabase(cluster_.get(), &backup_storage).ok());
  ASSERT_TRUE(CopyInto(cluster_.get(), "t", MakeRows(500, 50)).ok());
  auto second = BackupDatabase(cluster_.get(), &backup_storage);
  ASSERT_TRUE(second.ok());
  EXPECT_GT(second->objects_skipped, 0u);  // Immutable data unchanged.
  EXPECT_GT(second->objects_copied, 0u);   // New containers + metadata.
}

TEST_F(BackupCloneTest, ClonedClustersMintNonCollidingSids) {
  // Clone via backup+revive, then load *different* data into original and
  // clone, and merge the clone's storage back into the original location:
  // globally unique SIDs mean bidirectional copies never collide
  // (Section 5.1).
  MemObjectStore clone_storage;
  ASSERT_TRUE(BackupDatabase(cluster_.get(), &clone_storage).ok());
  clock_.AdvanceMicros(options_.lease_duration_micros + 1);
  auto clone = EonCluster::Revive(
      &clone_storage, &clock_, options_,
      {NodeSpec{"c1", ""}, NodeSpec{"c2", ""}, NodeSpec{"c3", ""}});
  ASSERT_TRUE(clone.ok()) << clone.status().ToString();

  ASSERT_TRUE(CopyInto(cluster_.get(), "t", MakeRows(2000, 30)).ok());
  ASSERT_TRUE(CopyInto(clone->get(), "t", MakeRows(3000, 30)).ok());

  // Copy the clone's data objects back to the original location.
  auto clone_objects = clone_storage.List("data/");
  ASSERT_TRUE(clone_objects.ok());
  uint64_t copied = 0;
  for (const ObjectMeta& m : *clone_objects) {
    auto exists = store_->backing()->Exists(m.key);
    ASSERT_TRUE(exists.ok());
    if (*exists) continue;  // Shared ancestry (pre-clone objects).
    auto data = clone_storage.Get(m.key);
    ASSERT_TRUE(data.ok());
    // Must never collide with an object the original minted post-clone.
    Status s = store_->backing()->Put(m.key, *data);
    ASSERT_TRUE(s.ok()) << "SID collision on " << m.key;
    copied++;
  }
  EXPECT_GT(copied, 0u);
}

}  // namespace
}  // namespace eon
