#ifndef EON_COLUMNAR_AGG_H_
#define EON_COLUMNAR_AGG_H_

#include <cstdint>

namespace eon {

/// Aggregate functions. Shared between the execution engine's aggregate
/// expressions and the catalog's live-aggregate projection definitions.
enum class AggFn : uint8_t {
  kCount = 0,
  kSum = 1,
  kMin = 2,
  kMax = 3,
  kAvg = 4,
  kCountDistinct = 5,
};

const char* AggFnName(AggFn fn);

}  // namespace eon

#endif  // EON_COLUMNAR_AGG_H_
