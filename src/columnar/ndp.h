#ifndef EON_COLUMNAR_NDP_H_
#define EON_COLUMNAR_NDP_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "columnar/agg.h"
#include "columnar/delete_vector.h"
#include "columnar/expression.h"
#include "columnar/ros.h"
#include "columnar/schema.h"
#include "common/result.h"

namespace eon {

/// One aggregate to fold store-side. `column` is a position within the
/// pushed output row (SIZE_MAX for COUNT(*) with no input column). Only
/// order-independent, exactly-mergeable aggregates are pushable: COUNT,
/// MIN/MAX over any type, and SUM/AVG over int64 (whose partials stay
/// exact under the repo's |sum| < 2^53 assumption). Double SUM/AVG and
/// COUNT DISTINCT must stay on the local path — the former because
/// floating-point addition order would break bit-identity, the latter
/// because its state transfer is unbounded.
struct NdpAggSpec {
  AggFn fn = AggFn::kCount;
  size_t column = SIZE_MAX;
};

/// True when `fn` over `input_type` may be folded store-side and merged
/// with local partials without changing any result bit.
bool IsPushableAggregate(AggFn fn, DataType input_type);

/// A near-data scan request against one ROS container living under
/// `base_key` in an object store (the ObjectStore::ScanObject payload —
/// the S3-Select-shaped half of the UDFS API).
struct ScanObjectRequest {
  std::string base_key;
  /// Projection schema the container was written with.
  Schema schema;
  /// Projection column positions to return, in output order.
  std::vector<size_t> output_columns;
  /// Optional predicate over projection positions; evaluated store-side.
  PredicatePtr predicate;
  /// Optional precomputed predicate column set (projection positions).
  std::vector<size_t> predicate_columns;
  /// Container-relative row range [row_begin, row_end): container-split
  /// crunch pushes its split boundaries through unchanged.
  uint64_t row_begin = 0;
  uint64_t row_end = UINT64_MAX;
  /// Optional tombstones; the caller owns the vector for the call's
  /// duration (requests never outlive their ScanObject invocation).
  const DeleteVector* deletes = nullptr;
  /// When non-empty, surviving rows are folded into per-group partial
  /// aggregates store-side and `rows` stays empty in the response.
  std::vector<NdpAggSpec> aggregates;
  /// Positions of the grouping columns within the output row, in group
  /// order (empty = one global group).
  std::vector<size_t> group_columns;
};

/// What a near-data scan returns: surviving rows (row pushdown) or
/// partial-aggregate groups (aggregate pushdown), plus the accounting the
/// cost models and profile need.
struct ScanObjectResponse {
  std::vector<Row> rows;
  GroupMap groups;
  /// Rows the store-side scan visited (post block pruning / row range).
  uint64_t rows_visited = 0;
  /// Rows surviving the predicate + deletes (== rows.size() in row mode).
  uint64_t rows_output = 0;
  /// Bytes of column files the store read locally to answer the scan.
  uint64_t bytes_scanned = 0;
  /// Estimated wire size of the response payload (rows or partials).
  uint64_t response_bytes = 0;
  /// Store-side scan work (decode counters, pruning, kernel calls).
  RosScanStats scan;
};

/// How a store implementation reads one whole object by key. Reads made
/// through this function are local to the store (near-data), so callers
/// pass an UNMETERED reader — the metered response is what crosses the
/// network.
using RawObjectReader =
    std::function<Result<std::string>(const std::string& key)>;

/// The shared near-data scan engine: every ObjectStore backend implements
/// ScanObject by delegating here with its own raw reader. Reuses the
/// regular ROS scan pipeline (encoded predicate eval + selective decode),
/// so pushed results are bit-identical to a local scan of the same
/// container, then optionally folds exact partial aggregates.
Status ExecuteObjectScan(const RawObjectReader& reader,
                         const ScanObjectRequest& request,
                         ScanObjectResponse* response);

}  // namespace eon

#endif  // EON_COLUMNAR_NDP_H_
