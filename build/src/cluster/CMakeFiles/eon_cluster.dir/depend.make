# Empty dependencies file for eon_cluster.
# This may be replaced when dependencies are built.
