// Unit tests for the execution-slot throughput simulator (Section 4.2):
// the model behind Figures 11a, 11b and 12.

#include <gtest/gtest.h>

#include "sim/throughput_sim.h"

namespace eon {
namespace {

ThroughputSim::Options Base() {
  ThroughputSim::Options o;
  o.num_nodes = 3;
  o.num_shards = 3;
  o.slots_per_node = 4;
  o.k_safety = 2;
  o.clients = 10;
  o.service_micros = 100000;
  o.duration_micros = 60LL * 1000 * 1000;
  return o;
}

TEST(ThroughputSimTest, CompletesQueries) {
  auto r = ThroughputSim::Run(Base());
  EXPECT_GT(r.completed, 0u);
  EXPECT_GT(r.per_minute, 0.0);
}

TEST(ThroughputSimTest, CapacityBoundRespected) {
  // 3 nodes × 4 slots / 3 slots-per-query = 4 concurrent queries max;
  // at 100 ms service → ~2400/min upper bound.
  auto o = Base();
  o.clients = 64;
  auto r = ThroughputSim::Run(o);
  EXPECT_LE(r.per_minute, 2400 * 1.12);  // Allow jitter slack.
  EXPECT_GE(r.per_minute, 2400 * 0.80);
}

TEST(ThroughputSimTest, LinearScaleOutWithNodes) {
  // Eon's elastic throughput scaling: S=3 shards fixed, nodes 3→6→9.
  auto o = Base();
  o.clients = 64;
  double base = 0;
  for (int nodes : {3, 6, 9}) {
    o.num_nodes = nodes;
    auto r = ThroughputSim::Run(o);
    if (base == 0) {
      base = r.per_minute;
    } else {
      const double expected = base * nodes / 3.0;
      EXPECT_NEAR(r.per_minute, expected, expected * 0.15)
          << nodes << " nodes should scale linearly";
    }
  }
}

TEST(ThroughputSimTest, ThroughputSaturatesWithClients) {
  auto o = Base();
  double at_capacity = 0;
  for (int num_clients : {1, 4, 16, 64}) {
    o.clients = num_clients;
    auto r = ThroughputSim::Run(o);
    if (num_clients >= 16) {
      if (at_capacity == 0) {
        at_capacity = r.per_minute;
      } else {
        EXPECT_NEAR(r.per_minute, at_capacity, at_capacity * 0.1);
      }
    }
  }
}

TEST(ThroughputSimTest, EnterpriseDoesNotScaleWithNodes) {
  // Enterprise: shards == nodes, every query uses every node → adding
  // nodes does not increase concurrent-query capacity.
  auto o = Base();
  o.enterprise = true;
  o.clients = 64;
  o.num_nodes = o.num_shards = 3;
  double three = ThroughputSim::Run(o).per_minute;
  o.num_nodes = o.num_shards = 9;
  double nine = ThroughputSim::Run(o).per_minute;
  EXPECT_LT(nine, three * 1.3);
}

TEST(ThroughputSimTest, EonNodeDownDegradesSmoothly) {
  // 4 nodes, 3 shards: killing 1 node costs ~1/4 of capacity, not half.
  auto o = Base();
  o.num_nodes = 4;
  o.clients = 32;
  o.duration_micros = 120LL * 1000 * 1000;
  o.bucket_micros = 30LL * 1000 * 1000;
  auto healthy = ThroughputSim::Run(o);

  o.kill_events = {{60LL * 1000 * 1000, 0}};
  auto degraded = ThroughputSim::Run(o);
  ASSERT_EQ(degraded.buckets.size(), 4u);
  const double before = static_cast<double>(degraded.buckets[1].second);
  const double after = static_cast<double>(degraded.buckets[3].second);
  EXPECT_LT(after, before);          // It does degrade...
  EXPECT_GT(after, before * 0.55);   // ...but not a cliff (Figure 12).
  (void)healthy;
}

TEST(ThroughputSimTest, EnterpriseNodeDownIsWorse) {
  auto kill_at = 60LL * 1000 * 1000;
  // Eon: 4 nodes / 3 shards. Enterprise: 4 nodes / 4 regions, buddy
  // fallback concentrates the dead node's region on one neighbor.
  auto eon = Base();
  eon.num_nodes = 4;
  eon.clients = 32;
  eon.duration_micros = 120LL * 1000 * 1000;
  eon.bucket_micros = 30LL * 1000 * 1000;
  eon.kill_events = {{kill_at, 0}};
  auto eon_run = ThroughputSim::Run(eon);

  auto ent = eon;
  ent.enterprise = true;
  ent.num_shards = 4;
  auto ent_run = ThroughputSim::Run(ent);

  auto retained = [](const ThroughputSim::RunResult& r) {
    return static_cast<double>(r.buckets[3].second) /
           static_cast<double>(r.buckets[1].second);
  };
  EXPECT_GT(retained(eon_run), retained(ent_run));
}

TEST(ThroughputSimTest, FailoverBlackoutShowsDip) {
  auto o = Base();
  o.num_nodes = 4;
  o.clients = 16;
  o.duration_micros = 90LL * 1000 * 1000;
  o.bucket_micros = 10LL * 1000 * 1000;
  o.kill_events = {{30LL * 1000 * 1000, 1}};
  o.failover_blackout_micros = 5LL * 1000 * 1000;
  auto r = ThroughputSim::Run(o);
  // Bucket containing the blackout dips below its neighbors.
  const uint64_t dip = r.buckets[3].second;
  EXPECT_LT(dip, r.buckets[1].second);
  EXPECT_LT(dip, r.buckets[6].second);
}

TEST(ThroughputSimTest, RestartRestoresCapacity) {
  auto o = Base();
  o.num_nodes = 4;
  o.clients = 32;
  o.duration_micros = 180LL * 1000 * 1000;
  o.bucket_micros = 30LL * 1000 * 1000;
  o.kill_events = {{60LL * 1000 * 1000, 0}};
  o.restart_events = {{120LL * 1000 * 1000, 0}};
  auto r = ThroughputSim::Run(o);
  const double before = static_cast<double>(r.buckets[1].second);
  const double down = static_cast<double>(r.buckets[3].second);
  const double recovered = static_cast<double>(r.buckets[5].second);
  EXPECT_LT(down, before);
  EXPECT_GT(recovered, down * 1.1);
}

TEST(ThroughputSimTest, DeterministicForSeed) {
  auto o = Base();
  auto a = ThroughputSim::Run(o);
  auto b = ThroughputSim::Run(o);
  EXPECT_EQ(a.completed, b.completed);
}

}  // namespace
}  // namespace eon
