# Empty compiler generated dependencies file for ab_recovery_cost.
# This may be replaced when dependencies are built.
