// Ablation (Section 4.1): max-flow participating-subscription selection
// vs a greedy first-subscriber assignment.
//
// Reports assignment skew (max shards on one node / ideal) and, through
// the slot model, the throughput cost of skew: nodes that are "full"
// serving the same shards for all queries bottleneck the cluster.

#include <algorithm>

#include "bench/bench_util.h"
#include "shard/participation.h"

namespace eon {
namespace bench {
namespace {

/// Greedy baseline: each shard goes to its first (lowest-oid) live ACTIVE
/// subscriber — no balancing, no variation.
std::map<ShardId, Oid> GreedyAssign(const CatalogState& state,
                                    const std::set<Oid>& up) {
  std::map<ShardId, Oid> out;
  for (ShardId s = 0; s < state.sharding.num_segment_shards; ++s) {
    for (Oid n : state.SubscribersOf(s, {SubscriptionState::kActive})) {
      if (up.count(n)) {
        out[s] = n;
        break;
      }
    }
  }
  return out;
}

double Skew(const std::map<ShardId, Oid>& assignment, size_t num_nodes) {
  std::map<Oid, int> load;
  for (const auto& [shard, node] : assignment) load[node]++;
  int max_load = 0;
  for (const auto& [node, l] : load) max_load = std::max(max_load, l);
  const double ideal =
      static_cast<double>(assignment.size()) / static_cast<double>(num_nodes);
  return static_cast<double>(max_load) / ideal;
}

int Run() {
  printf("# Ablation: max-flow participation vs greedy assignment\n");
  printf("%-24s %10s %14s %14s\n", "config(shards,nodes,k)", "runs",
         "greedy_skew", "maxflow_skew");

  struct Config {
    uint32_t shards;
    int nodes;
    int k;
  };
  for (const Config& cfg : {Config{8, 4, 2}, Config{12, 6, 3},
                            Config{16, 4, 4}, Config{6, 6, 4}}) {
    Catalog catalog;
    CatalogTxn txn;
    ShardingConfig sharding;
    sharding.num_segment_shards = cfg.shards;
    txn.SetSharding(sharding);
    std::set<Oid> up;
    for (int i = 1; i <= cfg.nodes; ++i) up.insert(static_cast<Oid>(i));
    for (ShardId s = 0; s < cfg.shards; ++s) {
      for (int r = 0; r < cfg.k; ++r) {
        txn.PutSubscription(Subscription{
            static_cast<Oid>((s + static_cast<uint32_t>(r)) % cfg.nodes + 1),
            s, SubscriptionState::kActive});
      }
    }
    if (!catalog.Commit(txn).ok()) return 1;
    auto snapshot = catalog.snapshot();

    double greedy_total = 0, flow_total = 0;
    const int kRuns = 32;
    for (int run = 0; run < kRuns; ++run) {
      greedy_total += Skew(GreedyAssign(*snapshot, up), up.size());
      ParticipationOptions opts;
      opts.variation_seed = static_cast<uint64_t>(run);
      auto result = SelectParticipatingNodes(*snapshot, up, opts);
      if (!result.ok()) return 1;
      flow_total += Skew(result->shard_to_node, up.size());
    }
    printf("(%2u,%2d,%2d)%-14s %10d %14.2f %14.2f\n", cfg.shards, cfg.nodes,
           cfg.k, "", kRuns, greedy_total / kRuns, flow_total / kRuns);
  }
  printf("# shape check: maxflow skew ~1.0 (balanced); greedy "
         "concentrates shards on low-oid nodes\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace eon

int main() { return eon::bench::Run(); }
