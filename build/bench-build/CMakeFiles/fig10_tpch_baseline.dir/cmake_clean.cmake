file(REMOVE_RECURSE
  "../bench/fig10_tpch_baseline"
  "../bench/fig10_tpch_baseline.pdb"
  "CMakeFiles/fig10_tpch_baseline.dir/fig10_tpch_baseline.cc.o"
  "CMakeFiles/fig10_tpch_baseline.dir/fig10_tpch_baseline.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_tpch_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
