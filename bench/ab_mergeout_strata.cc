// Ablation (Sections 2.3, 6.2): the tuple mover's exponentially tiered
// strata selection vs a naive merge-everything policy.
//
// "Mergeout uses an exponentially tiered strata algorithm to select ROS
// containers to merge so as to only merge each tuple a small fixed number
// of times."
//
// Sustained small loads; after each load the policy compacts. We report
// the final container count and total rows rewritten (write
// amplification). Two feeds populate the merge-eligible containers:
//  - copy: direct COPY commits, one container set per load (the classic
//    bulk-load shape);
//  - moveout: loads arrive as WOS inserts and a moveout drains the
//    memtable after each, so mergeout consumes exactly the containers
//    the write path's TupleMover stage produces — the strata policy must
//    behave the same on moveout-fed containers as on COPY-fed ones.
// Emits BENCH_mergeout_strata.json plus metrics/systables sidecars (the
// systables dump carries dc_mergeout_events for the last run, one row
// per merge job with stratum, fan-in, and rows written).

#include "bench/bench_util.h"
#include "engine/ddl.h"
#include "engine/dml.h"
#include "tm/tuple_mover.h"

namespace eon {
namespace bench {
namespace {

struct PolicyResult {
  uint64_t rows_rewritten = 0;
  size_t final_containers = 0;
  uint64_t moveout_rows = 0;
};

/// Holds the last run's cluster alive so the bench-exit sidecar dump can
/// materialize its dc_mergeout_events ring.
struct LastRun {
  std::unique_ptr<SimClock> clock;
  std::unique_ptr<SimObjectStore> store;
  std::unique_ptr<EonCluster> cluster;
};
LastRun g_last;

PolicyResult RunPolicy(bool tiered, bool moveout_fed, int loads,
                       int rows_per_load) {
  // Release the previous run in dependency order (cluster before the
  // store and clock it references) before standing up the next one.
  g_last.cluster.reset();
  g_last.store.reset();
  g_last.clock.reset();
  auto clock = std::make_unique<SimClock>();
  SimStoreOptions sopts;
  sopts.get_latency_micros = 0;
  sopts.put_latency_micros = 0;
  sopts.list_latency_micros = 0;
  auto store = std::make_unique<SimObjectStore>(sopts, clock.get());
  ClusterOptions copts;
  copts.num_shards = 2;
  if (moveout_fed) {
    copts.wos = 1;
    copts.group_commit_micros = 0;
    copts.wos_flush_rows = int64_t{1} << 40;  // Moveout only when we ask.
  }
  auto cluster = EonCluster::Create(
      store.get(), clock.get(), copts,
      {NodeSpec{"n1", ""}, NodeSpec{"n2", ""}, NodeSpec{"n3", ""}});
  EON_CHECK(cluster.ok());
  Schema schema({{"id", DataType::kInt64}, {"v", DataType::kDouble}});
  EON_CHECK(CreateTable(cluster->get(), "t", schema, std::nullopt,
                        {ProjectionSpec{"t_super", {}, {"id"}, {"id"}}})
                .ok());

  MergeoutOptions mopts;
  if (tiered) {
    mopts.stratum_fanin = 4;
    mopts.max_merge_fanin = 8;
  } else {
    // Naive: any 2 containers in a tier trigger a merge, and tiering is
    // effectively disabled by a huge base stratum — everything merges
    // with everything after every load.
    mopts.stratum_fanin = 2;
    mopts.max_merge_fanin = 10000;
    mopts.base_stratum_bytes = UINT64_MAX / 2;
  }
  TupleMover tm(cluster->get(), mopts);

  PolicyResult result;
  for (int b = 0; b < loads; ++b) {
    std::vector<Row> rows;
    for (int i = 0; i < rows_per_load; ++i) {
      int64_t id = b * rows_per_load + i;
      rows.push_back(Row{Value::Int(id), Value::Dbl(id * 0.5)});
    }
    if (moveout_fed) {
      // The write path's shape: the load lands in the WOS off a WAL
      // append, then the TupleMover's moveout stage snapshots it into
      // the ROS containers mergeout consumes.
      EON_CHECK(InsertInto(cluster->get(), "t", rows).ok());
      auto moved = tm.RunMoveout();
      EON_CHECK(moved.ok());
      result.moveout_rows += *moved;
    } else {
      EON_CHECK(CopyInto(cluster->get(), "t", rows).ok());
    }
    EON_CHECK(tm.RunOnce().ok());
  }

  result.rows_rewritten = tm.stats().rows_written;
  result.final_containers =
      (*cluster)->node(1)->catalog()->snapshot()->containers.size();
  g_last.cluster = std::move(cluster).value();
  g_last.store = std::move(store);
  g_last.clock = std::move(clock);
  return result;
}

int Run() {
  printf("# Ablation: mergeout strata policy vs naive merge-everything\n");
  printf("%-14s %-10s %-10s %14s %16s %12s %14s\n", "policy", "feed", "loads",
         "rows_loaded", "rows_rewritten", "final_ros", "moveout_rows");
  const int kLoads = 48;
  const int kRows = 400;
  JsonValue arr = JsonValue::Array();
  uint64_t rewritten[2][2] = {{0, 0}, {0, 0}};
  for (bool moveout_fed : {false, true}) {
    for (bool tiered : {false, true}) {
      PolicyResult r = RunPolicy(tiered, moveout_fed, kLoads, kRows);
      rewritten[moveout_fed ? 1 : 0][tiered ? 1 : 0] = r.rows_rewritten;
      printf("%-14s %-10s %-10d %14d %16llu %12zu %14llu\n",
             tiered ? "tiered" : "naive", moveout_fed ? "moveout" : "copy",
             kLoads, kLoads * kRows,
             static_cast<unsigned long long>(r.rows_rewritten),
             r.final_containers,
             static_cast<unsigned long long>(r.moveout_rows));
      JsonValue e = JsonValue::Object();
      e.Set("policy", JsonValue::Str(tiered ? "tiered" : "naive"));
      e.Set("feed", JsonValue::Str(moveout_fed ? "moveout" : "copy"));
      e.Set("loads", JsonValue::Int(kLoads));
      e.Set("rows_loaded", JsonValue::Int(kLoads * kRows));
      e.Set("rows_rewritten",
            JsonValue::Int(static_cast<int64_t>(r.rows_rewritten)));
      e.Set("final_containers",
            JsonValue::Int(static_cast<int64_t>(r.final_containers)));
      e.Set("moveout_rows",
            JsonValue::Int(static_cast<int64_t>(r.moveout_rows)));
      arr.Append(std::move(e));
    }
  }
  // Tiered must beat naive on write amplification for BOTH feeds — the
  // strata policy is agnostic to whether a container came from COPY or
  // from a WOS moveout.
  const bool copy_ok = rewritten[0][1] < rewritten[0][0];
  const bool moveout_ok = rewritten[1][1] < rewritten[1][0];
  const bool pass = copy_ok && moveout_ok;

  JsonValue out = JsonValue::Object();
  out.Set("bench", JsonValue::Str("mergeout_strata"));
  out.Set("results", std::move(arr));
  JsonValue gates = JsonValue::Object();
  gates.Set("tiered_beats_naive_copy_feed", JsonValue::Bool(copy_ok));
  gates.Set("tiered_beats_naive_moveout_feed", JsonValue::Bool(moveout_ok));
  gates.Set("pass", JsonValue::Bool(pass));
  out.Set("gates", std::move(gates));
  FILE* fp = fopen("BENCH_mergeout_strata.json", "w");
  if (fp != nullptr) {
    const std::string text = out.Dump();
    fwrite(text.data(), 1, text.size(), fp);
    fclose(fp);
    fprintf(stderr, "wrote BENCH_mergeout_strata.json\n");
  }
  // The last run (tiered, moveout-fed) is still alive: its sidecar dump
  // carries dc_mergeout_events (one row per merge job) and dc_wal_events
  // (the moveout/checkpoint trail that fed it).
  DumpBenchSidecars("BENCH_mergeout_strata", g_last.cluster.get());
  g_last.cluster.reset();
  g_last.store.reset();
  g_last.clock.reset();

  printf("# shape check: tiered rewrites each tuple a small bounded number "
         "of times on both feeds; naive rewrites the whole table on every "
         "load (quadratic write amplification)\n");
  return pass ? 0 : 2;
}

}  // namespace
}  // namespace bench
}  // namespace eon

int main() { return eon::bench::Run(); }
