file(REMOVE_RECURSE
  "libeon_enterprise.a"
)
