#include "storage/sim_object_store.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <mutex>

#include "columnar/ndp.h"
#include "obs/dc.h"

namespace eon {

struct SimObjectStore::Impl {
  SimStoreOptions options;
  Clock* clock;
  MemObjectStore backing;
  std::string name;  ///< `store` label / Data Collector store name.
  mutable std::mutex mu;
  Random rng;
  ObjectStoreMetrics extra;  // Failure/throttle/cost counters.
  std::map<std::string, int64_t> created_at;  // For HEAD staleness.

  // Registry mirrors (labels: store=<name>, op=<class> on per-op series).
  struct Op {
    obs::Counter* requests = nullptr;
    obs::Histogram* latency_micros = nullptr;
  };
  Op op_get, op_put, op_list, op_delete, op_scan;
  obs::Counter* bytes_read = nullptr;
  obs::Counter* bytes_written = nullptr;
  obs::Counter* cost_microdollars = nullptr;
  obs::Counter* throttled = nullptr;
  obs::Counter* failures = nullptr;

  Impl(SimStoreOptions opts, Clock* c)
      : options(opts), clock(c), rng(opts.seed) {
    name = options.metrics_name;
    if (name.empty()) {
      static std::atomic<uint64_t> next_instance{1};
      name = "sim" + std::to_string(next_instance.fetch_add(1));
    }
    obs::MetricsRegistry* reg = obs::OrDefault(options.registry);
    auto make_op = [&](const char* op) {
      Op o;
      const obs::LabelSet labels{{"store", name}, {"op", op}};
      o.requests = reg->GetCounter("eon_store_requests_total", labels);
      o.latency_micros =
          reg->GetHistogram("eon_store_request_micros", labels);
      return o;
    };
    op_get = make_op("get");
    op_put = make_op("put");
    op_list = make_op("list");
    op_delete = make_op("delete");
    op_scan = make_op("scan");
    const obs::LabelSet labels{{"store", name}};
    bytes_read = reg->GetCounter("eon_store_bytes_read_total", labels);
    bytes_written = reg->GetCounter("eon_store_bytes_written_total", labels);
    cost_microdollars =
        reg->GetCounter("eon_store_cost_microdollars_total", labels);
    throttled = reg->GetCounter("eon_store_throttled_total", labels);
    failures = reg->GetCounter("eon_store_failures_injected_total", labels);
  }

  /// Charge request latency plus transfer time for `bytes`; the charged
  /// total feeds the per-op latency histogram.
  void ChargeTime(int64_t base_micros, uint64_t bytes, const Op& op) {
    int64_t transfer =
        options.bandwidth_bytes_per_sec > 0
            ? static_cast<int64_t>(bytes * 1000000.0 /
                                   static_cast<double>(
                                       options.bandwidth_bytes_per_sec))
            : 0;
    clock->AdvanceMicros(base_micros + transfer);
    op.latency_micros->Observe(static_cast<double>(base_micros + transfer));
  }

  /// Returns a non-OK status if fault injection fires for this request.
  Status MaybeInjectFault() {
    if (options.throttle_prob > 0 && rng.Bernoulli(options.throttle_prob)) {
      extra.throttled++;
      throttled->Increment();
      return Status::Unavailable("simulated throttle (503 SlowDown)");
    }
    if (options.transient_failure_prob > 0 &&
        rng.Bernoulli(options.transient_failure_prob)) {
      extra.failures_injected++;
      failures->Increment();
      return Status::IOError("simulated transient storage failure");
    }
    return Status::OK();
  }

  void Charge(const Op& op, uint64_t cost) {
    op.requests->Increment();
    extra.cost_microdollars += cost;
    cost_microdollars->Increment(cost);
  }

  /// One row in the `dc_store_requests` system table. Requesting-node
  /// attribution comes from the caller's DcNodeScope (the file cache
  /// opens one around miss fills).
  void RecordDc(const char* op, const std::string& key, uint64_t bytes,
                int64_t latency_micros, uint64_t cost, bool ok,
                uint64_t bytes_scanned = 0) {
    obs::DcStoreRequest e;
    e.store = name;
    e.at_micros = clock->NowMicros();
    e.op = op;
    e.key = key;
    e.bytes = bytes;
    e.bytes_scanned = bytes_scanned;
    e.latency_micros = latency_micros;
    e.cost_microdollars = cost;
    e.ok = ok;
    obs::DataCollector::Default()->RecordStoreRequest(std::move(e));
  }
};

SimObjectStore::SimObjectStore(SimStoreOptions options, Clock* clock)
    : impl_(new Impl(options, clock)) {}
SimObjectStore::~SimObjectStore() = default;

// Concurrency note: latency (Impl::ChargeTime — which sleeps under a
// WallClock) and the backing MemObjectStore calls run OUTSIDE impl_->mu,
// so requests issued concurrently from the I/O pool overlap instead of
// serializing on one store-wide mutex — the behavior being modeled is N
// independent HTTP requests in flight against S3. The mutex only guards
// the fault-injection rng, the non-atomic cost/fault counters, and the
// HEAD-staleness map (the backing store has its own internal lock).

Status SimObjectStore::Put(const std::string& key, const std::string& data) {
  const int64_t t0 = impl_->clock->NowMicros();
  Status result = [&]() -> Status {
    impl_->ChargeTime(impl_->options.put_latency_micros, data.size(),
                      impl_->op_put);
    bool fault_after;
    {
      std::lock_guard<std::mutex> lock(impl_->mu);
      impl_->Charge(impl_->op_put, impl_->options.put_cost_microdollars);
      // Fault may fire after the object landed (lost response case).
      fault_after = impl_->rng.Bernoulli(0.5);
      if (!fault_after) {
        EON_RETURN_IF_ERROR(impl_->MaybeInjectFault());
      }
    }
    Status put = impl_->backing.Put(key, data);
    if (put.ok()) impl_->bytes_written->Increment(data.size());
    {
      std::lock_guard<std::mutex> lock(impl_->mu);
      if (put.ok() && impl_->options.head_staleness_micros > 0) {
        impl_->created_at[key] = impl_->clock->NowMicros();
      }
      if (fault_after) {
        Status fault = impl_->MaybeInjectFault();
        if (!fault.ok()) return fault;  // Data may or may not have landed.
      }
    }
    return put;
  }();
  impl_->RecordDc("put", key, data.size(), impl_->clock->NowMicros() - t0,
                  impl_->options.put_cost_microdollars, result.ok());
  return result;
}

Result<std::string> SimObjectStore::Get(const std::string& key) {
  const int64_t t0 = impl_->clock->NowMicros();
  Result<std::string> result = [&]() -> Result<std::string> {
    {
      std::lock_guard<std::mutex> lock(impl_->mu);
      impl_->Charge(impl_->op_get, impl_->options.get_cost_microdollars);
      EON_RETURN_IF_ERROR(impl_->MaybeInjectFault());
    }
    EON_ASSIGN_OR_RETURN(std::string data, impl_->backing.Get(key));
    impl_->ChargeTime(impl_->options.get_latency_micros, data.size(),
                      impl_->op_get);
    impl_->bytes_read->Increment(data.size());
    return data;
  }();
  impl_->RecordDc("get", key, result.ok() ? result.value().size() : 0,
                  impl_->clock->NowMicros() - t0,
                  impl_->options.get_cost_microdollars, result.ok());
  return result;
}

Result<std::string> SimObjectStore::ReadRange(const std::string& key,
                                              uint64_t offset, uint64_t len) {
  const int64_t t0 = impl_->clock->NowMicros();
  Result<std::string> result = [&]() -> Result<std::string> {
    {
      std::lock_guard<std::mutex> lock(impl_->mu);
      impl_->Charge(impl_->op_get, impl_->options.get_cost_microdollars);
      EON_RETURN_IF_ERROR(impl_->MaybeInjectFault());
    }
    EON_ASSIGN_OR_RETURN(std::string data,
                         impl_->backing.ReadRange(key, offset, len));
    impl_->ChargeTime(impl_->options.get_latency_micros, data.size(),
                      impl_->op_get);
    impl_->bytes_read->Increment(data.size());
    return data;
  }();
  impl_->RecordDc("get", key, result.ok() ? result.value().size() : 0,
                  impl_->clock->NowMicros() - t0,
                  impl_->options.get_cost_microdollars, result.ok());
  return result;
}

Result<std::vector<ObjectMeta>> SimObjectStore::List(
    const std::string& prefix) {
  const int64_t t0 = impl_->clock->NowMicros();
  Result<std::vector<ObjectMeta>> result =
      [&]() -> Result<std::vector<ObjectMeta>> {
    {
      std::lock_guard<std::mutex> lock(impl_->mu);
      impl_->Charge(impl_->op_list, impl_->options.list_cost_microdollars);
      EON_RETURN_IF_ERROR(impl_->MaybeInjectFault());
    }
    impl_->ChargeTime(impl_->options.list_latency_micros, 0, impl_->op_list);
    return impl_->backing.List(prefix);
  }();
  impl_->RecordDc("list", prefix, 0, impl_->clock->NowMicros() - t0,
                  impl_->options.list_cost_microdollars, result.ok());
  return result;
}

Status SimObjectStore::Delete(const std::string& key) {
  const int64_t t0 = impl_->clock->NowMicros();
  Status result = [&]() -> Status {
    {
      std::lock_guard<std::mutex> lock(impl_->mu);
      impl_->Charge(impl_->op_delete, 0);  // S3-style: DELETEs are free.
      EON_RETURN_IF_ERROR(impl_->MaybeInjectFault());
    }
    impl_->ChargeTime(impl_->options.delete_latency_micros, 0,
                      impl_->op_delete);
    return impl_->backing.Delete(key);
  }();
  impl_->RecordDc("delete", key, 0, impl_->clock->NowMicros() - t0, 0,
                  result.ok());
  return result;
}

Status SimObjectStore::ScanObject(const ScanObjectRequest& request,
                                  ScanObjectResponse* response) {
  const int64_t t0 = impl_->clock->NowMicros();
  uint64_t cost = impl_->options.scan_cost_microdollars;
  Status result = [&]() -> Status {
    {
      std::lock_guard<std::mutex> lock(impl_->mu);
      impl_->Charge(impl_->op_scan, cost);
      EON_RETURN_IF_ERROR(impl_->MaybeInjectFault());
    }
    EON_RETURN_IF_ERROR(impl_->backing.ScanObject(request, response));
    // NDP compute: the storage tier streams `bytes_scanned` through its
    // filter engine before the (much smaller) response pays the regular
    // transfer term.
    const int64_t ndp_micros =
        impl_->options.ndp_scan_bytes_per_sec > 0
            ? static_cast<int64_t>(
                  response->bytes_scanned * 1000000.0 /
                  static_cast<double>(impl_->options.ndp_scan_bytes_per_sec))
            : 0;
    impl_->ChargeTime(impl_->options.scan_latency_micros + ndp_micros,
                      response->response_bytes, impl_->op_scan);
    const uint64_t gb_cost = static_cast<uint64_t>(
        response->bytes_scanned / 1e9 *
        static_cast<double>(impl_->options.scan_cost_per_gb_microdollars));
    if (gb_cost > 0) {
      std::lock_guard<std::mutex> lock(impl_->mu);
      cost += gb_cost;
      impl_->extra.cost_microdollars += gb_cost;
      impl_->cost_microdollars->Increment(gb_cost);
    }
    impl_->bytes_read->Increment(response->response_bytes);
    return Status::OK();
  }();
  impl_->RecordDc("scan", request.base_key,
                  result.ok() ? response->response_bytes : 0,
                  impl_->clock->NowMicros() - t0, cost, result.ok(),
                  result.ok() ? response->bytes_scanned : 0);
  return result;
}

ObjectStoreMetrics SimObjectStore::metrics() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  ObjectStoreMetrics m = impl_->backing.metrics();
  m.failures_injected = impl_->extra.failures_injected;
  m.throttled = impl_->extra.throttled;
  m.cost_microdollars = impl_->extra.cost_microdollars;
  return m;
}

void SimObjectStore::ResetForTest() {
  impl_->backing.ResetForTest();
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->extra = ObjectStoreMetrics{};
}

Result<bool> SimObjectStore::HeadProbe(const std::string& key) {
  const int64_t t0 = impl_->clock->NowMicros();
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->Charge(impl_->op_get, impl_->options.get_cost_microdollars);
    EON_RETURN_IF_ERROR(impl_->MaybeInjectFault());
  }
  impl_->ChargeTime(impl_->options.get_latency_micros, 0, impl_->op_get);
  impl_->RecordDc("head", key, 0, impl_->clock->NowMicros() - t0,
                  impl_->options.get_cost_microdollars, true);
  EON_ASSIGN_OR_RETURN(bool exists, impl_->backing.Exists(key));
  if (!exists) return false;
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->created_at.find(key);
  if (it != impl_->created_at.end() &&
      impl_->clock->NowMicros() - it->second <
          impl_->options.head_staleness_micros) {
    return false;  // Fresh object not yet visible to HEAD.
  }
  return true;
}

MemObjectStore* SimObjectStore::backing() { return &impl_->backing; }

const SimStoreOptions& SimObjectStore::options() const {
  return impl_->options;
}

struct RetryingObjectStore::Impl {
  ObjectStore* base;
  RetryOptions options;
  Clock* clock;
  std::atomic<uint64_t> retries{0};
  obs::Counter* retries_metric;

  Impl(ObjectStore* b, RetryOptions o, Clock* c)
      : base(b), options(o), clock(c) {
    retries_metric = obs::MetricsRegistry::Default()->GetCounter(
        "eon_store_retries_total");
  }

  void CountRetry() {
    retries.fetch_add(1);
    retries_metric->Increment();
  }

  static bool IsRetryable(const Status& s) {
    return s.IsIOError() || s.IsUnavailable();
  }

  void Backoff(int attempt) {
    double b = static_cast<double>(options.initial_backoff_micros);
    for (int i = 0; i < attempt; ++i) b *= options.backoff_multiplier;
    int64_t micros = std::min<int64_t>(static_cast<int64_t>(b),
                                       options.max_backoff_micros);
    clock->AdvanceMicros(micros);
  }
};

RetryingObjectStore::RetryingObjectStore(ObjectStore* base,
                                         RetryOptions options, Clock* clock)
    : impl_(new Impl(base, options, clock)) {}
RetryingObjectStore::~RetryingObjectStore() = default;

Status RetryingObjectStore::Put(const std::string& key,
                                const std::string& data) {
  Status last;
  for (int attempt = 0; attempt < impl_->options.max_attempts; ++attempt) {
    if (attempt > 0) {
      impl_->CountRetry();
      impl_->Backoff(attempt - 1);
    }
    last = impl_->base->Put(key, data);
    if (last.ok()) return last;
    // A retried Put observing AlreadyExists means a previous attempt landed
    // but its response was lost: that is success.
    if (last.IsAlreadyExists()) {
      return attempt > 0 ? Status::OK() : last;
    }
    if (!Impl::IsRetryable(last)) return last;
  }
  return Status::TimedOut("Put retries exhausted: " + last.ToString());
}

Result<std::string> RetryingObjectStore::Get(const std::string& key) {
  Status last;
  for (int attempt = 0; attempt < impl_->options.max_attempts; ++attempt) {
    if (attempt > 0) {
      impl_->CountRetry();
      impl_->Backoff(attempt - 1);
    }
    Result<std::string> r = impl_->base->Get(key);
    if (r.ok()) return r;
    last = r.status();
    if (!Impl::IsRetryable(last)) return last;
  }
  return Status::TimedOut("Get retries exhausted: " + last.ToString());
}

Result<std::string> RetryingObjectStore::ReadRange(const std::string& key,
                                                   uint64_t offset,
                                                   uint64_t len) {
  Status last;
  for (int attempt = 0; attempt < impl_->options.max_attempts; ++attempt) {
    if (attempt > 0) {
      impl_->CountRetry();
      impl_->Backoff(attempt - 1);
    }
    Result<std::string> r = impl_->base->ReadRange(key, offset, len);
    if (r.ok()) return r;
    last = r.status();
    if (!Impl::IsRetryable(last)) return last;
  }
  return Status::TimedOut("ReadRange retries exhausted: " + last.ToString());
}

Result<std::vector<ObjectMeta>> RetryingObjectStore::List(
    const std::string& prefix) {
  Status last;
  for (int attempt = 0; attempt < impl_->options.max_attempts; ++attempt) {
    if (attempt > 0) {
      impl_->CountRetry();
      impl_->Backoff(attempt - 1);
    }
    Result<std::vector<ObjectMeta>> r = impl_->base->List(prefix);
    if (r.ok()) return r;
    last = r.status();
    if (!Impl::IsRetryable(last)) return last;
  }
  return Status::TimedOut("List retries exhausted: " + last.ToString());
}

Status RetryingObjectStore::ScanObject(const ScanObjectRequest& request,
                                       ScanObjectResponse* response) {
  Status last;
  for (int attempt = 0; attempt < impl_->options.max_attempts; ++attempt) {
    if (attempt > 0) {
      impl_->CountRetry();
      impl_->Backoff(attempt - 1);
    }
    last = impl_->base->ScanObject(request, response);
    if (last.ok()) return last;
    // NotSupported (base store without scan capability) is a property of
    // the store, not a transient fault: pass it through so the caller
    // falls back to fetching whole files.
    if (!Impl::IsRetryable(last)) return last;
  }
  return Status::TimedOut("ScanObject retries exhausted: " + last.ToString());
}

Status RetryingObjectStore::Delete(const std::string& key) {
  Status last;
  for (int attempt = 0; attempt < impl_->options.max_attempts; ++attempt) {
    if (attempt > 0) {
      impl_->CountRetry();
      impl_->Backoff(attempt - 1);
    }
    last = impl_->base->Delete(key);
    if (last.ok()) return last;
    // A retried Delete observing NotFound means a previous attempt landed.
    if (last.IsNotFound()) {
      return attempt > 0 ? Status::OK() : last;
    }
    if (!Impl::IsRetryable(last)) return last;
  }
  return Status::TimedOut("Delete retries exhausted: " + last.ToString());
}

ObjectStoreMetrics RetryingObjectStore::metrics() const {
  return impl_->base->metrics();
}

uint64_t RetryingObjectStore::total_retries() const {
  return impl_->retries.load();
}

void RetryingObjectStore::ResetForTest() {
  impl_->base->ResetForTest();
  impl_->retries.store(0);
}

}  // namespace eon
