# Empty dependencies file for eon_sim.
# This may be replaced when dependencies are built.
