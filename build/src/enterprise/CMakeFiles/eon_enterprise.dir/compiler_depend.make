# Empty compiler generated dependencies file for eon_enterprise.
# This may be replaced when dependencies are built.
