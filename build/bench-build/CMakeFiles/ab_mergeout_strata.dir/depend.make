# Empty dependencies file for ab_mergeout_strata.
# This may be replaced when dependencies are built.
