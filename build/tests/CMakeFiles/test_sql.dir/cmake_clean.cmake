file(REMOVE_RECURSE
  "CMakeFiles/test_sql.dir/test_sql.cc.o"
  "CMakeFiles/test_sql.dir/test_sql.cc.o.d"
  "test_sql"
  "test_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
