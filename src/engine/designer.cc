#include "engine/designer.h"

#include <algorithm>
#include <map>
#include <set>

namespace eon {

namespace {

/// Workload features extracted for one query touching the target table.
struct QueryFeatures {
  std::set<std::string> columns;        ///< Columns the query reads.
  std::vector<std::string> predicates;  ///< Filtered columns (sort cands).
  std::string key_column;  ///< Join or group key (segmentation candidate).
};

void CollectPredicateColumns(const PredicatePtr& pred, const Schema& schema,
                             QueryFeatures* f) {
  if (pred == nullptr) return;
  std::set<size_t> cols;
  pred->CollectColumns(&cols);
  for (size_t c : cols) {
    if (c < schema.num_columns()) {
      f->predicates.push_back(schema.column(c).name);
      f->columns.insert(schema.column(c).name);
    }
  }
}

}  // namespace

Result<std::vector<DesignedProjection>> DesignProjections(
    const CatalogState& state, const DesignInput& input) {
  const TableDef* table = state.FindTableByName(input.table);
  if (table == nullptr) {
    return Status::NotFound("no such table: " + input.table);
  }

  // --- Feature extraction per query. ---
  std::vector<QueryFeatures> features;
  for (const QuerySpec& q : input.workload) {
    QueryFeatures f;
    bool touches = false;
    if (q.scan.table == input.table) {
      touches = true;
      for (const std::string& c : q.scan.columns) {
        if (table->schema.IndexOf(c).ok()) f.columns.insert(c);
      }
      CollectPredicateColumns(q.scan.predicate, table->schema, &f);
      if (q.join && table->schema.IndexOf(q.join->left_key).ok()) {
        f.key_column = q.join->left_key;
        f.columns.insert(q.join->left_key);
      }
    } else if (q.join && q.join->right.table == input.table) {
      touches = true;
      for (const std::string& c : q.join->right.columns) {
        if (table->schema.IndexOf(c).ok()) f.columns.insert(c);
      }
      CollectPredicateColumns(q.join->right.predicate, table->schema, &f);
      if (table->schema.IndexOf(q.join->right_key).ok()) {
        f.key_column = q.join->right_key;
        f.columns.insert(q.join->right_key);
      }
    }
    if (!touches) continue;
    // Group-by keys segment just as well as join keys (local group-by).
    if (f.key_column.empty()) {
      for (const std::string& g : q.group_by) {
        if (table->schema.IndexOf(g).ok()) {
          f.key_column = g;
          f.columns.insert(g);
          break;
        }
      }
    }
    for (const AggSpec& a : q.aggregates) {
      if (!a.column.empty() && table->schema.IndexOf(a.column).ok()) {
        f.columns.insert(a.column);
      }
    }
    features.push_back(std::move(f));
  }
  if (features.empty()) {
    return Status::InvalidArgument(
        "workload contains no queries touching " + input.table);
  }

  // --- Candidate formation: group queries by segmentation key. ---
  std::map<std::string, std::vector<const QueryFeatures*>> by_key;
  for (const QueryFeatures& f : features) {
    by_key[f.key_column].push_back(&f);  // "" bucket = no key preference.
  }

  struct Candidate {
    std::string seg_column;
    std::string sort_column;
    std::set<std::string> columns;
    int benefit = 0;
  };
  std::vector<Candidate> candidates;
  for (auto& [key, fs] : by_key) {
    Candidate cand;
    cand.seg_column = key;
    cand.benefit = static_cast<int>(fs.size());
    // Most common predicate column becomes the sort order (pruning).
    std::map<std::string, int> pred_freq;
    for (const QueryFeatures* f : fs) {
      cand.columns.insert(f->columns.begin(), f->columns.end());
      for (const std::string& p : f->predicates) pred_freq[p]++;
    }
    int best = 0;
    for (const auto& [col, n] : pred_freq) {
      if (n > best) {
        best = n;
        cand.sort_column = col;
      }
    }
    if (cand.sort_column.empty()) {
      cand.sort_column = !key.empty() ? key : *cand.columns.begin();
    }
    if (!key.empty()) cand.columns.insert(key);
    candidates.push_back(std::move(cand));
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.benefit > b.benefit;
            });

  // --- Suppress candidates an existing projection already serves. ---
  auto already_served = [&](const Candidate& c) {
    for (const ProjectionDef* proj : state.ProjectionsOf(table->oid)) {
      // Segmentation match?
      bool seg_match;
      if (c.seg_column.empty()) {
        seg_match = true;  // Any projection covers a keyless scan.
      } else {
        seg_match = proj->segmentation_columns.size() == 1 &&
                    table->schema.column(
                            proj->columns[proj->segmentation_columns[0]])
                            .name == c.seg_column;
      }
      if (!seg_match) continue;
      // Column coverage?
      std::set<std::string> have;
      for (size_t pc : proj->columns) {
        have.insert(table->schema.column(pc).name);
      }
      bool covers = true;
      for (const std::string& col : c.columns) {
        if (!have.count(col)) covers = false;
      }
      if (covers) return true;
    }
    return false;
  };

  std::vector<DesignedProjection> design;
  for (const Candidate& c : candidates) {
    if (design.size() >= input.max_projections) break;
    if (already_served(c)) continue;
    DesignedProjection d;
    d.queries_benefited = c.benefit;
    d.spec.name = input.table + "_dd_" +
                  (c.seg_column.empty() ? "scan" : c.seg_column);
    d.spec.columns.assign(c.columns.begin(), c.columns.end());
    d.spec.sort_columns = {c.sort_column};
    if (!c.seg_column.empty()) {
      d.spec.segmentation_columns = {c.seg_column};
      d.rationale = "segments by " + c.seg_column + " for local join/group (" +
                    std::to_string(c.benefit) + " queries); sorts by " +
                    c.sort_column + " for min/max pruning";
    } else {
      d.spec.segmentation_columns = {c.sort_column};
      d.rationale = "narrow scan projection sorted by " + c.sort_column +
                    " (" + std::to_string(c.benefit) + " queries)";
    }
    design.push_back(std::move(d));
  }
  return design;
}

Status ApplyDesign(EonCluster* cluster, const std::string& table,
                   const std::vector<DesignedProjection>& design) {
  for (const DesignedProjection& d : design) {
    Result<Oid> r = AddProjection(cluster, table, d.spec);
    if (!r.ok()) return r.status();
  }
  return Status::OK();
}

}  // namespace eon
