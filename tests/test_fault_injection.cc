// Fault-injection integration tests: the whole stack running over a
// misbehaving shared storage (transient failures, throttling) behind the
// retry wrapper, per the paper's "any filesystem access can (and will)
// fail ... a properly balanced retry loop is required" (Section 5.3).

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "engine/ddl.h"
#include "engine/dml.h"
#include "engine/session.h"
#include "storage/sim_object_store.h"
#include "tm/tuple_mover.h"

namespace eon {
namespace {

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SimStoreOptions sopts;
    sopts.get_latency_micros = 0;
    sopts.put_latency_micros = 0;
    sopts.list_latency_micros = 0;
    sopts.delete_latency_micros = 0;
    sopts.transient_failure_prob = 0.15;  // Nasty but realistic S3 day.
    sopts.throttle_prob = 0.05;
    sopts.seed = 1234;
    flaky_ = std::make_unique<SimObjectStore>(sopts, &clock_);
    RetryOptions ropts;
    ropts.max_attempts = 12;
    ropts.initial_backoff_micros = 10;
    retrying_ =
        std::make_unique<RetryingObjectStore>(flaky_.get(), ropts, &clock_);

    ClusterOptions copts;
    copts.num_shards = 2;
    auto cluster = EonCluster::Create(
        retrying_.get(), &clock_, copts,
        {NodeSpec{"n1", ""}, NodeSpec{"n2", ""}, NodeSpec{"n3", ""}});
    ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
    cluster_ = std::move(cluster).value();

    Schema schema({{"id", DataType::kInt64}, {"v", DataType::kDouble}});
    ASSERT_TRUE(CreateTable(cluster_.get(), "t", schema, std::nullopt,
                            {ProjectionSpec{"t_super", {}, {"id"}, {"id"}}})
                    .ok());
  }

  SimClock clock_;
  std::unique_ptr<SimObjectStore> flaky_;
  std::unique_ptr<RetryingObjectStore> retrying_;
  std::unique_ptr<EonCluster> cluster_;
};

TEST_F(FaultInjectionTest, LoadQueryDeleteMergeoutSurviveFaults) {
  // Sustained activity over the flaky store: every operation must succeed
  // through the retry loop, and results stay correct.
  int64_t expected_sum = 0;
  for (int b = 0; b < 6; ++b) {
    std::vector<Row> rows;
    for (int64_t i = 0; i < 100; ++i) {
      int64_t id = b * 100 + i;
      rows.push_back(Row{Value::Int(id), Value::Dbl(1.0)});
      expected_sum += id;
    }
    auto v = CopyInto(cluster_.get(), "t", rows);
    ASSERT_TRUE(v.ok()) << "batch " << b << ": " << v.status().ToString();
  }
  EXPECT_GT(retrying_->total_retries(), 0u);  // Faults actually fired.

  EonSession session(cluster_.get());
  QuerySpec sum;
  sum.scan.table = "t";
  sum.scan.columns = {"id"};
  sum.aggregates = {{AggFn::kSum, "id", "s"}};

  // Cold-cache read path also rides the retry loop.
  for (const auto& n : cluster_->nodes()) n->cache()->Clear();
  auto result = session.Execute(sum);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows[0][0].int_value(), expected_sum);

  auto deleted = DeleteWhere(cluster_.get(), "t",
                             Predicate::Cmp(0, CmpOp::kLt, Value::Int(100)));
  ASSERT_TRUE(deleted.ok()) << deleted.status().ToString();
  EXPECT_EQ(*deleted, 100u);
  expected_sum -= 99 * 100 / 2;

  TupleMover tm(cluster_.get(), MergeoutOptions{.stratum_fanin = 2});
  auto jobs = tm.RunOnce();
  ASSERT_TRUE(jobs.ok()) << jobs.status().ToString();

  result = session.Execute(sum);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows[0][0].int_value(), expected_sum);
}

TEST_F(FaultInjectionTest, MetadataSyncAndReviveSurviveFaults) {
  std::vector<Row> rows;
  for (int64_t i = 0; i < 200; ++i) {
    rows.push_back(Row{Value::Int(i), Value::Dbl(2.0)});
  }
  ASSERT_TRUE(CopyInto(cluster_.get(), "t", rows).ok());
  ASSERT_TRUE(cluster_->SyncAll(true).ok());
  ASSERT_TRUE(cluster_->UpdateClusterInfo().ok());
  const int64_t lease = cluster_->options().lease_duration_micros;
  cluster_.reset();

  clock_.AdvanceMicros(lease + 1);
  ClusterOptions copts;
  copts.num_shards = 2;
  auto revived = EonCluster::Revive(
      retrying_.get(), &clock_, copts,
      {NodeSpec{"r1", ""}, NodeSpec{"r2", ""}, NodeSpec{"r3", ""}});
  ASSERT_TRUE(revived.ok()) << revived.status().ToString();

  EonSession session(revived->get());
  QuerySpec count;
  count.scan.table = "t";
  count.scan.columns = {"id"};
  count.aggregates = {{AggFn::kCount, "", "n"}};
  auto result = session.Execute(count);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows[0][0].int_value(), 200);
}

TEST_F(FaultInjectionTest, NodeRecoveryUnderFaults) {
  std::vector<Row> rows;
  for (int64_t i = 0; i < 300; ++i) {
    rows.push_back(Row{Value::Int(i), Value::Dbl(1.0)});
  }
  ASSERT_TRUE(CopyInto(cluster_.get(), "t", rows).ok());
  ASSERT_TRUE(cluster_->KillNode(2).ok());
  ASSERT_TRUE(CopyInto(cluster_.get(), "t", rows).ok());  // Missed commits.
  ASSERT_TRUE(cluster_->RestartNode(2).ok());
  EXPECT_EQ(cluster_->node(2)->catalog()->version(),
            cluster_->node(1)->catalog()->version());

  EonSession session(cluster_.get());
  QuerySpec count;
  count.scan.table = "t";
  count.scan.columns = {"id"};
  count.aggregates = {{AggFn::kCount, "", "n"}};
  auto result = session.Execute(count);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows[0][0].int_value(), 600);
}

}  // namespace
}  // namespace eon
