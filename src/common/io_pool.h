#ifndef EON_COMMON_IO_POOL_H_
#define EON_COMMON_IO_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace eon {

namespace obs {
class Counter;
class Gauge;
class Histogram;
class MetricsRegistry;
}  // namespace obs

/// Dedicated I/O worker pool: the fetch side of the async scan pipeline.
///
/// Distinct from ThreadPool (the exec pool) on purpose:
///  - Every lane is a real worker thread and Submit() never runs the task
///    inline on the caller. Exec lanes hand fetches to this pool exactly
///    so compute threads never block on object-store latency; an inline
///    fallback would reintroduce the stall being removed.
///  - Tasks are expected to spend their time *waiting* (store latency),
///    not computing, so the pool is sized independently of the core count
///    (ClusterOptions::io_threads / EON_IO_THREADS) and the per-task
///    histogram records wall time, not CPU time.
///
/// Shutdown drains the queue: every submitted task runs before the
/// destructor returns, so callers holding completion handles (PendingFile,
/// cache prefetches) never see an abandoned task.
///
/// Observability (labels {pool=<name>}):
///  - eon_io_pool_threads       gauge     worker count
///  - eon_io_pool_queue_depth   gauge     tasks queued, not yet started
///  - eon_io_pool_tasks_total   counter   tasks executed
///  - eon_io_pool_task_micros   histogram per-task wall time
class IoPool {
 public:
  struct Options {
    /// Worker count (>= 1; values below 1 are clamped to 1).
    int num_threads = 4;
    /// Label value for this pool's metrics; "" auto-generates "io<N>".
    std::string metrics_name;
    /// Metrics registry; nullptr = process default.
    obs::MetricsRegistry* registry = nullptr;
  };

  explicit IoPool(Options options);
  ~IoPool();

  IoPool(const IoPool&) = delete;
  IoPool& operator=(const IoPool&) = delete;

  /// Enqueue one task for a worker thread. Never runs inline.
  void Submit(std::function<void()> fn);

  int num_threads() const { return static_cast<int>(workers_.size()); }
  const std::string& metrics_name() const { return metrics_name_; }

 private:
  void WorkerLoop();

  std::string metrics_name_;
  obs::Counter* tasks_total_ = nullptr;
  obs::Gauge* queue_depth_ = nullptr;
  obs::Gauge* threads_gauge_ = nullptr;
  obs::Histogram* task_micros_ = nullptr;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace eon

#endif  // EON_COMMON_IO_POOL_H_
