// Micro-benchmark: morsel-parallel scan+aggregate at pool widths 1/2/4/8.
//
// One cluster per width, identical data (lineitem loaded in batches so
// every shard holds several containers = several morsels per node), warm
// caches, zero simulated store latency — the measurement isolates
// executor CPU. Each width runs the same Q1-style scan+aggregate.
//
// Speedup is reported on the critical-path basis: per-task CPU is
// measured with the per-thread CPU clock, per-lane busy time accumulates
// per pool lane, and the critical path is the busiest lane (the
// profile's exec.critical_cpu_micros — "per-phase wall = max over
// workers"). On a machine with >= `threads` free cores the critical path
// IS the wall time of the parallel section; on a smaller box (e.g. a
// 1-CPU CI container) wall time cannot shrink, so wall-clock rows/s is
// reported alongside for transparency. Emits BENCH_parallel_scan.json
// plus a metrics-snapshot sidecar.

#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "engine/dml.h"
#include "engine/executor.h"

namespace eon {
namespace {

constexpr int kWidths[] = {1, 2, 4, 8};
constexpr int kRepeats = 5;
constexpr double kScale = 2.0;     // ~40k lineitem rows.
constexpr int kLoadBatches = 12;   // Containers per shard ≈ morsels/node.

struct RunResult {
  int threads = 0;
  uint64_t rows = 0;
  uint64_t tasks = 0;
  int64_t wall_micros = 0;
  int64_t task_cpu_micros = 0;
  int64_t critical_cpu_micros = 0;
  double parallelism = 0;
};

std::unique_ptr<bench::EonFixture> MakeFixture(int width,
                                               const TpchData& data) {
  auto f = std::make_unique<bench::EonFixture>();
  SimStoreOptions sopts;
  sopts.get_latency_micros = 0;
  sopts.put_latency_micros = 0;
  sopts.list_latency_micros = 0;
  f->store = std::make_unique<SimObjectStore>(sopts, &f->clock);

  ClusterOptions copts;
  copts.num_shards = 4;
  copts.k_safety = 2;
  copts.exec_threads = width;
  copts.node.cache.capacity_bytes = 1ULL << 30;  // Everything stays warm.
  std::vector<NodeSpec> specs;
  for (int i = 1; i <= 4; ++i) {
    specs.push_back(NodeSpec{"node" + std::to_string(i), ""});
  }
  auto cluster = EonCluster::Create(f->store.get(), &f->clock, copts, specs);
  if (!cluster.ok()) {
    fprintf(stderr, "cluster create failed: %s\n",
            cluster.status().ToString().c_str());
    return nullptr;
  }
  f->cluster = std::move(cluster).value();
  if (!CreateTpchTables(f->cluster.get()).ok()) return nullptr;

  // Load lineitem in batches: each COPY commits its own containers, so
  // every shard ends up with kLoadBatches containers — plenty of morsels
  // for the pool to balance.
  CopyOptions opts;
  opts.rows_per_block = 512;
  const std::vector<Row>& rows = data.lineitems;
  const size_t per = (rows.size() + kLoadBatches - 1) / kLoadBatches;
  for (size_t begin = 0; begin < rows.size(); begin += per) {
    const size_t end = std::min(begin + per, rows.size());
    std::vector<Row> batch(rows.begin() + begin, rows.begin() + end);
    if (!CopyInto(f->cluster.get(), "lineitem", batch, opts).ok()) {
      fprintf(stderr, "load failed\n");
      return nullptr;
    }
  }
  return f;
}

QuerySpec ScanAggregateQuery(const TpchOptions& topts) {
  const Schema li = TpchLineitemSchema();
  QuerySpec q;
  q.scan.table = "lineitem";
  q.scan.columns = {"l_shipmode"};
  // Block-at-a-time selection-vector path: conjunction over two columns.
  q.scan.predicate = Predicate::And(
      Predicate::Cmp(*li.IndexOf("l_shipdate"), CmpOp::kLe,
                     Value::Int(topts.last_day - 10)),
      Predicate::Cmp(*li.IndexOf("l_quantity"), CmpOp::kLe, Value::Int(45)));
  q.group_by = {"l_shipmode"};
  q.aggregates = {{AggFn::kCount, "", "n"},
                  {AggFn::kSum, "l_extendedprice", "revenue"},
                  {AggFn::kMin, "l_extendedprice", "lo"},
                  {AggFn::kMax, "l_extendedprice", "hi"}};
  return q;
}

}  // namespace
}  // namespace eon

int main() {
  using namespace eon;

  TpchOptions topts;
  topts.scale = kScale;
  const TpchData data = GenerateTpch(topts);
  const QuerySpec query = ScanAggregateQuery(topts);

  printf("# Morsel-parallel scan+aggregate, pool widths 1/2/4/8\n");
  printf("# %zu lineitem rows, %d load batches, warm cache, host has %u "
         "CPU(s)\n",
         data.lineitems.size(), kLoadBatches,
         std::thread::hardware_concurrency());
  printf("%8s %12s %10s %12s %14s %12s %12s\n", "threads", "rows", "tasks",
         "crit_cpu_ms", "rows_per_s_cpu", "parallelism", "speedup");

  std::vector<RunResult> results;
  for (int width : kWidths) {
    auto f = MakeFixture(width, data);
    if (f == nullptr) return 1;

    auto ctx = BuildExecContext(f->cluster.get(), "", /*variation_seed=*/1);
    if (!ctx.ok()) return 1;
    (void)ExecuteQuery(f->cluster.get(), query, *ctx);  // Warm caches.

    // Best of kRepeats by critical-path CPU (least scheduler noise).
    RunResult best;
    for (int r = 0; r < kRepeats; ++r) {
      const int64_t wall0 = bench::WallMicros();
      auto result = ExecuteQuery(f->cluster.get(), query, *ctx);
      const int64_t wall = bench::WallMicros() - wall0;
      if (!result.ok()) {
        fprintf(stderr, "query failed: %s\n",
                result.status().ToString().c_str());
        return 1;
      }
      const obs::QueryProfile& p = result->profile;
      if (best.threads == 0 ||
          p.exec_critical_cpu_micros < best.critical_cpu_micros) {
        best.threads = width;
        best.rows = p.rows_scanned_total;
        best.tasks = p.exec_tasks;
        best.wall_micros = wall;
        best.task_cpu_micros = p.exec_task_cpu_micros;
        best.critical_cpu_micros = p.exec_critical_cpu_micros;
        best.parallelism = p.Parallelism();
      }
    }
    results.push_back(best);

    const RunResult& serial = results.front();
    const double speedup =
        best.critical_cpu_micros > 0
            ? static_cast<double>(serial.critical_cpu_micros) /
                  static_cast<double>(best.critical_cpu_micros)
            : 1.0;
    const double rows_per_s_cpu =
        best.critical_cpu_micros > 0
            ? static_cast<double>(best.rows) * 1e6 /
                  static_cast<double>(best.critical_cpu_micros)
            : 0.0;
    printf("%8d %12llu %10llu %12.3f %14.0f %12.2f %12.2fx\n", width,
           static_cast<unsigned long long>(best.rows),
           static_cast<unsigned long long>(best.tasks),
           static_cast<double>(best.critical_cpu_micros) / 1000.0,
           rows_per_s_cpu, best.parallelism, speedup);
  }

  // BENCH_parallel_scan.json: rows/s per thread count + speedup vs serial.
  JsonValue out = JsonValue::Object();
  out.Set("bench", JsonValue::Str("parallel_scan"));
  out.Set("host_cpus",
          JsonValue::Int(std::thread::hardware_concurrency()));
  out.Set("speedup_basis",
          JsonValue::Str("critical_path_cpu: busiest lane's task CPU "
                         "(per-thread CPU clock); equals parallel-section "
                         "wall time when the host has >= threads cores"));
  out.Set("lineitem_rows",
          JsonValue::Int(static_cast<int64_t>(data.lineitems.size())));
  JsonValue arr = JsonValue::Array();
  const RunResult& serial = results.front();
  double speedup_at_4 = 0;
  for (const RunResult& r : results) {
    const double speedup =
        r.critical_cpu_micros > 0
            ? static_cast<double>(serial.critical_cpu_micros) /
                  static_cast<double>(r.critical_cpu_micros)
            : 1.0;
    if (r.threads == 4) speedup_at_4 = speedup;
    JsonValue e = JsonValue::Object();
    e.Set("threads", JsonValue::Int(r.threads));
    e.Set("rows_scanned", JsonValue::Int(static_cast<int64_t>(r.rows)));
    e.Set("tasks", JsonValue::Int(static_cast<int64_t>(r.tasks)));
    e.Set("wall_micros", JsonValue::Int(r.wall_micros));
    e.Set("task_cpu_micros", JsonValue::Int(r.task_cpu_micros));
    e.Set("critical_cpu_micros", JsonValue::Int(r.critical_cpu_micros));
    e.Set("parallelism", JsonValue::Double(r.parallelism));
    e.Set("rows_per_sec_cpu",
          JsonValue::Double(r.critical_cpu_micros > 0
                                ? static_cast<double>(r.rows) * 1e6 /
                                      r.critical_cpu_micros
                                : 0.0));
    e.Set("rows_per_sec_wall",
          JsonValue::Double(r.wall_micros > 0
                                ? static_cast<double>(r.rows) * 1e6 /
                                      r.wall_micros
                                : 0.0));
    e.Set("speedup_vs_serial", JsonValue::Double(speedup));
    arr.Append(std::move(e));
  }
  out.Set("results", std::move(arr));

  FILE* fp = fopen("BENCH_parallel_scan.json", "w");
  if (fp != nullptr) {
    const std::string text = out.Dump();
    fwrite(text.data(), 1, text.size(), fp);
    fclose(fp);
    fprintf(stderr, "wrote BENCH_parallel_scan.json\n");
  }
  // Per-width fixtures are gone by now; the systables sidecar still
  // captures the process-default collector (store requests) and registry.
  bench::DumpBenchSidecars("BENCH_parallel_scan", nullptr);

  printf("# shape check: %.2fx scan+aggregate speedup at 4 threads "
         "(target >= 2.5x on the critical-path basis)\n",
         speedup_at_4);
  return speedup_at_4 >= 2.5 ? 0 : 2;
}
