// Ablation (Section 6.3): optimistic concurrency control vs holding the
// global catalog lock while generating ROS metadata.
//
// "Holding the lock while generating ROS containers increases contention
// and should be kept to a minimum... The new paradigm leads to optimized
// concurrency and reduced lock contention."
//
// Discrete-event simulation over the real Catalog: N workers each run
// transactions with an expensive prepare phase (ROS generation, ~1 ms of
// simulated work) and a short commit. The lock regime holds the global
// catalog lock across prepare+commit (serializing everything); the OCC
// regime prepares concurrently, validates the read set at commit against
// the real catalog, and redoes prepare on conflict. Every 8th transaction
// touches a shared hot table (genuinely conflicting DDL).

#include <queue>

#include "bench/bench_util.h"
#include "catalog/catalog.h"

namespace eon {
namespace bench {
namespace {

constexpr int64_t kPrepareMicros = 1000;  // ROS generation.
constexpr int64_t kCommitMicros = 50;     // Validate + apply + log append.

struct RunStats {
  int64_t makespan_micros = 0;
  uint64_t committed = 0;
  uint64_t occ_retries = 0;
};

/// One worker's pending commit attempt.
struct Attempt {
  int64_t ready_at;  // Prepare finished.
  int worker;
  Oid target;
  uint64_t read_version;

  bool operator>(const Attempt& o) const { return ready_at > o.ready_at; }
};

RunStats RunRegime(bool use_occ, int workers, int txns_per_worker) {
  Catalog catalog;
  {
    CatalogTxn txn;
    TableDef hot;
    hot.oid = 1;
    hot.name = "hot";
    hot.schema = Schema({{"c", DataType::kInt64}});
    txn.PutTable(hot);
    for (int w = 0; w < workers; ++w) {
      TableDef mine;
      mine.oid = static_cast<Oid>(10 + w);
      mine.name = "worker" + std::to_string(w);
      mine.schema = Schema({{"c", DataType::kInt64}});
      txn.PutTable(mine);
    }
    EON_CHECK(catalog.Commit(txn).ok());
  }

  RunStats stats;
  std::vector<int> done(workers, 0);

  auto target_of = [&](int worker, int txn_index) {
    return txn_index % 8 == 0 ? Oid{1} : static_cast<Oid>(10 + worker);
  };
  auto make_txn = [&](Oid target, uint64_t read_version, CatalogTxn* txn) {
    StorageContainerMeta c;
    c.oid = catalog.NextOid();
    c.projection_oid = 2;
    c.shard = 0;
    c.base_key = "data/x" + std::to_string(c.oid);
    c.num_columns = 1;
    txn->PutContainer(c);
    TableDef updated = *catalog.snapshot()->FindTable(target);
    txn->PutTable(updated);
    txn->ExpectVersion(target, read_version);
  };

  if (!use_occ) {
    // Global lock: prepare runs inside the critical section, so the whole
    // workload serializes regardless of worker count.
    int64_t now = 0;
    for (int w = 0; w < workers; ++w) {
      for (int t = 0; t < txns_per_worker; ++t) {
        now += kPrepareMicros + kCommitMicros;
        const Oid target = target_of(w, t);
        CatalogTxn txn;
        make_txn(target, catalog.snapshot()->ModVersion(target), &txn);
        EON_CHECK(catalog.Commit(txn).ok());
        stats.committed++;
      }
    }
    stats.makespan_micros = now;
    return stats;
  }

  // OCC: all workers prepare concurrently (no lock); commits serialize on
  // the short commit section only, and conflicting read sets retry with a
  // fresh prepare.
  std::priority_queue<Attempt, std::vector<Attempt>, std::greater<Attempt>>
      ready;
  for (int w = 0; w < workers; ++w) {
    const Oid target = target_of(w, 0);
    ready.push(Attempt{kPrepareMicros, w, target,
                       catalog.snapshot()->ModVersion(target)});
  }
  int64_t commit_free_at = 0;
  int64_t makespan = 0;
  while (!ready.empty()) {
    Attempt a = ready.top();
    ready.pop();
    const int64_t start = std::max(a.ready_at, commit_free_at);
    commit_free_at = start + kCommitMicros;
    makespan = commit_free_at;

    CatalogTxn txn;
    make_txn(a.target, a.read_version, &txn);
    const bool ok = catalog.Commit(txn).ok();
    if (!ok) {
      // Conflict: redo the prepare with a fresh snapshot.
      stats.occ_retries++;
      ready.push(Attempt{commit_free_at + kPrepareMicros, a.worker, a.target,
                         catalog.snapshot()->ModVersion(a.target)});
      continue;
    }
    stats.committed++;
    done[a.worker]++;
    if (done[a.worker] < txns_per_worker) {
      const Oid target = target_of(a.worker, done[a.worker]);
      ready.push(Attempt{commit_free_at + kPrepareMicros, a.worker, target,
                         catalog.snapshot()->ModVersion(target)});
    }
  }
  stats.makespan_micros = makespan;
  return stats;
}

int Run() {
  printf("# Ablation: OCC vs global catalog lock for DDL+load commits\n");
  printf("# prepare (ROS generation) = %lld us, commit = %lld us, every "
         "8th txn touches a shared hot table\n",
         static_cast<long long>(kPrepareMicros),
         static_cast<long long>(kCommitMicros));
  printf("%-10s %16s %16s %12s %14s\n", "workers", "lock_txn_per_s",
         "occ_txn_per_s", "speedup", "occ_retries");
  const int kTxns = 64;
  for (int workers : {1, 2, 4, 8, 16}) {
    RunStats lock_stats = RunRegime(false, workers, kTxns);
    RunStats occ_stats = RunRegime(true, workers, kTxns);
    const double lock_rate =
        1e6 * static_cast<double>(lock_stats.committed) /
        static_cast<double>(lock_stats.makespan_micros);
    const double occ_rate = 1e6 * static_cast<double>(occ_stats.committed) /
                            static_cast<double>(occ_stats.makespan_micros);
    printf("%-10d %16.0f %16.0f %12.2f %14llu\n", workers, lock_rate,
           occ_rate, occ_rate / lock_rate,
           static_cast<unsigned long long>(occ_stats.occ_retries));
  }
  printf("# shape check: OCC throughput scales with workers (prepare runs "
         "concurrently, only the short commit serializes); the lock "
         "regime is flat at 1/(prepare+commit)\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace eon

int main() { return eon::bench::Run(); }
