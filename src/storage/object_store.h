#ifndef EON_STORAGE_OBJECT_STORE_H_
#define EON_STORAGE_OBJECT_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "obs/metrics.h"

namespace eon {

/// Metadata returned by List.
struct ObjectMeta {
  std::string key;
  uint64_t size = 0;
};

/// Per-store operation counters. The simulated S3 additionally accounts a
/// dollar cost per request class, because "requests cost money" (paper
/// Section 5.3) is part of the design pressure on the cache.
///
/// Stores also mirror these counts onto obs::MetricsRegistry instruments
/// (labels: store=<kind>/<name>), so one exported snapshot carries every
/// backend; this struct remains the cheap per-instance accessor.
struct ObjectStoreMetrics {
  uint64_t puts = 0;
  uint64_t gets = 0;
  uint64_t lists = 0;
  uint64_t deletes = 0;
  uint64_t bytes_written = 0;
  uint64_t bytes_read = 0;
  uint64_t failures_injected = 0;
  uint64_t throttled = 0;

  /// Estimated request cost in micro-dollars (S3-style pricing knobs).
  uint64_t cost_microdollars = 0;
};

/// The UDFS storage abstraction (paper Section 5.3, Figure 9). Vertica's
/// execution engine accesses all filesystems through this API; we provide
/// in-memory, simulated-S3, and POSIX backends.
///
/// Semantics follow shared object storage, not POSIX:
///  - objects are immutable: no append, no rename, no overwrite (Put of an
///    existing key fails with AlreadyExists);
///  - existence checks go through List with a key prefix, never a HEAD
///    (avoids S3's eventual-consistency-after-HEAD trap, Section 5.3);
///  - any operation may fail transiently; callers that need reliability
///    wrap the store in RetryingObjectStore.
///
/// Implementations must be thread-safe.
class ObjectStore {
 public:
  virtual ~ObjectStore() = default;

  /// Create a new immutable object.
  virtual Status Put(const std::string& key, const std::string& data) = 0;

  /// Read a whole object.
  virtual Result<std::string> Get(const std::string& key) = 0;

  /// Read `len` bytes at `offset`. Short reads at end-of-object are OK and
  /// return the available bytes; offset beyond the object is OutOfRange.
  virtual Result<std::string> ReadRange(const std::string& key,
                                        uint64_t offset, uint64_t len) = 0;

  /// List all objects whose key starts with `prefix`, sorted by key.
  virtual Result<std::vector<ObjectMeta>> List(const std::string& prefix) = 0;

  /// Delete an object. Deleting a missing key returns NotFound.
  virtual Status Delete(const std::string& key) = 0;

  /// Existence via List-with-prefix (the paper's strongly consistent idiom).
  Result<bool> Exists(const std::string& key);

  /// Size of an object via List.
  Result<uint64_t> Size(const std::string& key);

  virtual ObjectStoreMetrics metrics() const = 0;

  /// Zero this store's per-instance counters so differential tests can
  /// assert exact request counts for one operation instead of depending
  /// on accumulated global totals. Registry-mirrored instruments stay
  /// monotone (Prometheus contract); use MetricsSnapshot::Delta for
  /// registry-level differences.
  virtual void ResetForTest() {}
};

/// Plain in-memory object store: the reference implementation and the
/// backing tier under SimObjectStore.
class MemObjectStore : public ObjectStore {
 public:
  MemObjectStore();
  ~MemObjectStore() override;

  Status Put(const std::string& key, const std::string& data) override;
  Result<std::string> Get(const std::string& key) override;
  Result<std::string> ReadRange(const std::string& key, uint64_t offset,
                                uint64_t len) override;
  Result<std::vector<ObjectMeta>> List(const std::string& prefix) override;
  Status Delete(const std::string& key) override;
  ObjectStoreMetrics metrics() const override;
  void ResetForTest() override;

  /// Total bytes stored (for tests and capacity reports).
  uint64_t TotalBytes() const;
  /// Number of objects stored.
  uint64_t ObjectCount() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace eon

#endif  // EON_STORAGE_OBJECT_STORE_H_
