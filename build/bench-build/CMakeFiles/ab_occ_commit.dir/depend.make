# Empty dependencies file for ab_occ_commit.
# This may be replaced when dependencies are built.
