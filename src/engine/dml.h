#ifndef EON_ENGINE_DML_H_
#define EON_ENGINE_DML_H_

#include <functional>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "columnar/delete_vector.h"
#include "engine/query.h"

namespace eon {

struct CopyOptions {
  uint64_t rows_per_block = 1024;
  /// Write-through the cache at load (Section 5.2); archive loads that
  /// should not evict the working set turn this off.
  bool write_through_cache = true;
  /// Varies participating-node selection across loads.
  uint64_t variation_seed = 0;
};

/// Bulk load (COPY) following the Figure 8 workflow:
///   1. rows are segmented by each projection's hash clause into per-shard
///      streams — every container holds data of exactly one shard;
///   2. column files are written into the writer's cache (write-through),
///      uploaded to shared storage, and pushed to the caches of the
///      shard's peer subscribers (warm caches for node-down performance);
///   3. the commit point is upload-complete: catalog metadata commits only
///      after every file is durable on shared storage;
///   4. if a concurrent subscription change means a participant no longer
///      matches the shard it wrote, the transaction rolls back (Aborted)
///      and uploaded files are reclaimed.
/// Returns the commit version.
Result<uint64_t> CopyInto(EonCluster* cluster, const std::string& table,
                          const std::vector<Row>& rows,
                          const CopyOptions& options = {});

struct InsertOptions {
  /// The session's connected node: its WAL/WOS absorb the batch so the
  /// commit needs one log append instead of per-projection container
  /// uploads. Empty = any up node.
  std::string connected_node;
};

/// Real-time ingest fast path: append the rows to the coordinator's WAL
/// (durability = the group-commit upload) and absorb them into its
/// in-memory WOS; moveout later snapshots them into real ROS containers.
/// Tables that need load-time work in the commit transaction (flattened
/// denormalization, live-aggregate maintenance) and clusters with
/// EON_WOS=off fall back to the direct-ROS COPY path — both paths yield
/// bit-identical query results. Returns the number of rows inserted;
/// `profile` (optional) receives the wal block of the commit.
Result<uint64_t> InsertInto(EonCluster* cluster, const std::string& table,
                            const std::vector<Row>& rows,
                            const InsertOptions& options = {},
                            obs::QueryProfile* profile = nullptr);

/// Moveout (TupleMover): snapshot every node's unflushed WOS rows of
/// `table` into ROS containers via the shared load path, mark them
/// flushed in each node's WAL, and truncate the logs up to the
/// node-global safe watermark. Holds every node's WOS gate across the
/// catalog commit so concurrent queries see the rows exactly once.
/// Returns the number of rows moved (0 = nothing to do).
Result<uint64_t> MoveoutWos(EonCluster* cluster, const std::string& table);

/// DELETE ... WHERE: computes matching positions in every projection's
/// containers and commits new (immutable) delete-vector objects; data
/// files are never modified (Section 2.3). Superseded delete vectors are
/// handed to the cluster reaper. WOS-resident rows are tombstoned in the
/// owning node's WAL under the same commit version. Returns the number of
/// deleted rows.
Result<uint64_t> DeleteWhere(EonCluster* cluster, const std::string& table,
                             const PredicatePtr& table_predicate);

/// UPDATE modeled as DELETE + INSERT (Section 2.3): matching rows are read
/// from the superprojection, passed through `updater`, deleted, and the
/// updated versions loaded back. Returns the number of updated rows.
Result<uint64_t> UpdateWhere(EonCluster* cluster, const std::string& table,
                             const PredicatePtr& table_predicate,
                             const std::function<void(Row*)>& updater);

/// Shared load path: write row sets into multiple tables under ONE
/// transaction (used by COPY — which also maintains any live aggregate
/// projections of the target — and by live-aggregate backfill).
Result<uint64_t> LoadIntoTables(
    EonCluster* cluster,
    const std::vector<std::pair<std::string, std::vector<Row>>>& loads,
    const CopyOptions& options = {});

/// Write containers for exactly ONE projection of `table` from complete
/// table rows (backfill of a newly added projection; loads normally write
/// all projections of the table).
Result<uint64_t> BackfillProjection(EonCluster* cluster,
                                    const std::string& table,
                                    Oid projection_oid,
                                    const std::vector<Row>& rows,
                                    const CopyOptions& options = {});

/// The partial-aggregate rows a batch of base rows contributes to a live
/// aggregate projection (grouped by the LAP's group columns).
std::vector<Row> ComputeLiveAggRows(const TableDef& lap,
                                    const std::vector<Row>& base_rows);

/// Key → value map of one flattened-column dimension, read through the
/// engine (used by load-time denormalization and refresh).
Result<std::map<Value, Value>> BuildDimensionLookup(
    EonCluster* cluster, const CatalogState& snapshot,
    const FlattenedColDef& def);

/// Effective tombstone set of a container: the union of all its committed
/// delete vectors, fetched through `fetcher`.
Result<DeleteVector> LoadDeleteVector(const CatalogState& state,
                                      const StorageContainerMeta& container,
                                      FileFetcher* fetcher);

/// Rebind a predicate built over table column positions onto projection
/// column positions. Fails if the projection lacks a referenced column.
Result<PredicatePtr> RebindPredicate(const PredicatePtr& pred,
                                     const ProjectionDef& proj);

}  // namespace eon

#endif  // EON_ENGINE_DML_H_
