#ifndef EON_CLUSTER_NODE_H_
#define EON_CLUSTER_NODE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <set>
#include <string>

#include "cache/file_cache.h"
#include "catalog/catalog.h"
#include "catalog/sync.h"
#include "common/clock.h"
#include "common/sid.h"
#include "storage/object_store.h"
#include "wal/wal.h"
#include "wos/wos.h"

namespace eon {

/// Per-node write-optimized-store configuration (WAL + WOS ingest fast
/// path). Effective values are resolved by EonCluster from the EON_WOS /
/// EON_GROUP_COMMIT_MICROS / EON_WOS_FLUSH_ROWS environment variables.
struct WosNodeOptions {
  bool enabled = true;
  /// Group-commit window passed to the node's WalWriter.
  int64_t group_commit_micros = 200;
  /// WAL segment rotation threshold (bytes).
  uint64_t wal_segment_bytes = 1 << 20;
  /// Moveout trigger: unflushed WOS rows per table at or above this count
  /// snapshot to ROS containers. Conservative upper-bound stand-in for
  /// the per-(projection, shard) threshold (any one shard holds at most
  /// this many rows when the total is below it).
  uint64_t flush_rows = 4096;
};

struct NodeOptions {
  CacheOptions cache;
  uint64_t sync_checkpoint_every = 8;
  /// Ring capacities / slow-query threshold for the node's Data Collector.
  obs::DataCollectorOptions dc;
  WosNodeOptions wos;
};

/// One Eon compute node: a catalog replica (global objects + storage
/// objects of subscribed shards), a file cache, a catalog sync service and
/// a node instance identity.
///
/// Failure model distinguishes (Section 3.5):
///  - process termination (Kill/Restart): local transaction logs survive —
///    the catalog object is retained; a restart mints a new instance id;
///  - instance loss (DestroyInstance): local disk gone — catalog and cache
///    are wiped and must be rebuilt from a peer or by revive.
class Node {
 public:
  Node(Oid oid, std::string name, std::string subcluster,
       ObjectStore* shared_storage, Clock* clock, const NodeOptions& options,
       uint64_t seed);

  Oid oid() const { return oid_; }
  const std::string& name() const { return name_; }
  const std::string& subcluster() const { return subcluster_; }
  bool is_up() const { return up_; }

  Catalog* catalog() { return catalog_.get(); }
  const Catalog* catalog() const { return catalog_.get(); }
  FileCache* cache() { return cache_.get(); }
  /// This node's Data Collector (event rings behind the dc_* system
  /// tables). Never null; survives restarts and instance loss.
  obs::DataCollector* dc() { return dc_.get(); }
  const obs::DataCollector* dc() const { return dc_.get(); }
  CatalogSync* sync() { return sync_.get(); }
  Clock* clock() { return clock_; }
  ObjectStore* shared_storage() { return shared_; }

  /// Write-optimized store (null only when the WOS fast path is disabled
  /// for the cluster). Both objects are NODE-lifetime: down/destroyed
  /// states close or clear them in place rather than freeing them, so a
  /// statement that already picked up the pointer races a node kill into
  /// a clean error, never a use-after-free.
  Wos* wos() { return wos_.get(); }
  const Wos* wos() const { return wos_.get(); }
  WalWriter* wal() { return wal_.get(); }
  bool wos_enabled() const {
    return wal_ != nullptr && wal_->is_open() && wos_ != nullptr;
  }
  const WosNodeOptions& wos_options() const { return options_.wos; }

  /// (Re)build the WOS from the node's WAL on shared storage: clear the
  /// memtable, reopen the writer, replay surviving records (checkpoint-
  /// filtered, torn tails dropped), resume LSN assignment past both the
  /// replayed maximum AND the checkpoint. Called on cluster build,
  /// restart and instance recovery; a no-op when the WOS is disabled.
  Status RecoverWos();

  /// This node's WAL object prefix on shared storage. Keyed by node name
  /// (stable across restarts and instance loss) so recovery always finds
  /// the log.
  std::string WalPrefix() const { return "wal/" + name_ + "/"; }

  const NodeInstanceId& instance_id() const { return instance_id_; }

  /// Mint a globally unique storage key under `prefix` ("data/", "dv/").
  /// SID = node instance id + local catalog oid (Figure 7): no
  /// coordination with other nodes, no collisions in the flat namespace.
  std::string MintStorageKey(const std::string& prefix);

  /// Shards this node subscribes to in any of `states` (its own catalog's
  /// view of itself).
  std::set<ShardId> SubscribedShards(
      const std::set<SubscriptionState>& states) const;

  /// All shards with a subscription row for this node, any state.
  std::set<ShardId> AllSubscribedShards() const;

  // --- Failure-model transitions; drive via EonCluster, not directly. ---

  /// Process termination: node stops serving; local state retained.
  void MarkDown();
  /// Process restart: new instance id; catalog (local disk) intact.
  void MarkUp();
  /// Instance loss: local disk wiped; fresh empty catalog and cold cache.
  void DestroyLocalState();
  /// Replace the catalog wholesale (metadata rebuild from peer / revive).
  void ReplaceCatalog(std::unique_ptr<Catalog> catalog);

  /// (Re)bind the catalog sync service to a cluster incarnation; metadata
  /// uploads are qualified by it so each revived cluster writes to a
  /// distinct location (Section 3.5).
  void SetIncarnation(const IncarnationId& incarnation);

  // --- Running-query version tracking (file-deletion gossip, §6.5). ---

  /// Register a query running at catalog version `v`; call Unregister when
  /// it finishes. MinRunningQueryVersion feeds the cluster-wide gossip.
  void RegisterQuery(uint64_t version);
  void UnregisterQuery(uint64_t version);

  /// Lowest catalog version any running query on this node reads, or the
  /// node's current version when idle. Monotone non-decreasing as
  /// required by the gossip protocol.
  uint64_t MinRunningQueryVersion() const;

 private:
  const Oid oid_;
  const std::string name_;
  const std::string subcluster_;
  ObjectStore* shared_;
  Clock* clock_;
  const NodeOptions options_;
  uint64_t seed_;

  NodeInstanceId instance_id_;
  std::unique_ptr<Catalog> catalog_;
  std::unique_ptr<obs::DataCollector> dc_;  ///< Before cache_: cache records into it.
  std::unique_ptr<FileCache> cache_;
  std::unique_ptr<CatalogSync> sync_;
  /// Node-lifetime (created in the constructor when enabled, never
  /// reset): concurrent statements hold raw pointers across node
  /// up/down transitions. wos_ before wal_: the writer applies into it.
  std::unique_ptr<Wos> wos_;
  std::unique_ptr<WalWriter> wal_;
  std::atomic<bool> up_{true};
  obs::Gauge* up_gauge_ = nullptr;  ///< eon_node_up{node=<name>}.

  mutable std::mutex query_mu_;
  std::multiset<uint64_t> running_query_versions_;
  mutable uint64_t reported_min_version_ = 0;  ///< Monotonicity clamp.
};

}  // namespace eon

#endif  // EON_CLUSTER_NODE_H_
