// Unit tests for the common runtime: Status/Result, hashing, codec, SIDs,
// JSON, RNG, clocks, thread pool.

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/codec.h"
#include "common/hash.h"
#include "common/json.h"
#include "common/random.h"
#include "common/result.h"
#include "common/sid.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"

namespace eon {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, CodesAndMessages) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_FALSE(s.IsIOError());
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
  EXPECT_EQ(s.message(), "missing thing");
}

TEST(StatusTest, AllConstructorsProduceMatchingPredicates) {
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::Aborted("x").IsAborted());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
  EXPECT_TRUE(Status::TimedOut("x").IsTimedOut());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(7), 7);
}

Result<int> Doubled(Result<int> in) {
  EON_ASSIGN_OR_RETURN(int v, std::move(in));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubled(21), 42);
  EXPECT_TRUE(Doubled(Status::IOError("disk")).status().IsIOError());
}

TEST(HashTest, Deterministic) {
  const char* data = "hello eon mode";
  EXPECT_EQ(Hash64(data, 14), Hash64(data, 14));
  EXPECT_NE(Hash64(data, 14), Hash64(data, 13));
  EXPECT_NE(Hash64(data, 14, 1), Hash64(data, 14, 2));
}

TEST(HashTest, CoversLongInputs) {
  std::string big(1000, 'x');
  for (size_t i = 0; i < big.size(); ++i) big[i] = static_cast<char>(i);
  uint64_t h1 = Hash64(big.data(), big.size());
  big[500] ^= 1;
  EXPECT_NE(h1, Hash64(big.data(), big.size()));
}

TEST(HashTest, SegmentationHashSpreads) {
  // Sequential keys should land in all regions of a 4-way split.
  std::set<uint32_t> shards;
  for (int64_t k = 0; k < 1000; ++k) {
    shards.insert(SegmentationHashInt(k) >> 30);  // Top 2 bits = 4 regions.
  }
  EXPECT_EQ(shards.size(), 4u);
}

TEST(HashTest, Crc32cKnownVector) {
  // CRC-32C of "123456789" is 0xE3069283 (Castagnoli reference value).
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
}

TEST(HashTest, Crc32cDetectsBitFlip) {
  std::string data = "the quick brown fox";
  uint32_t crc = Crc32c(data.data(), data.size());
  data[3] ^= 0x40;
  EXPECT_NE(crc, Crc32c(data.data(), data.size()));
}

TEST(CodecTest, FixedRoundTrip) {
  std::string buf;
  PutFixed32(&buf, 0xDEADBEEF);
  PutFixed64(&buf, 0x0123456789ABCDEFULL);
  Slice in(buf);
  uint32_t v32;
  uint64_t v64;
  ASSERT_TRUE(GetFixed32(&in, &v32).ok());
  ASSERT_TRUE(GetFixed64(&in, &v64).ok());
  EXPECT_EQ(v32, 0xDEADBEEFu);
  EXPECT_EQ(v64, 0x0123456789ABCDEFULL);
  EXPECT_TRUE(in.empty());
}

class VarintRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VarintRoundTrip, Unsigned) {
  std::string buf;
  PutVarint64(&buf, GetParam());
  Slice in(buf);
  uint64_t v;
  ASSERT_TRUE(GetVarint64(&in, &v).ok());
  EXPECT_EQ(v, GetParam());
}

TEST_P(VarintRoundTrip, SignedBothSigns) {
  for (int64_t sign : {1, -1}) {
    int64_t value = sign * static_cast<int64_t>(GetParam() >> 1);
    std::string buf;
    PutVarint64Signed(&buf, value);
    Slice in(buf);
    int64_t v;
    ASSERT_TRUE(GetVarint64Signed(&in, &v).ok());
    EXPECT_EQ(v, value);
  }
}

INSTANTIATE_TEST_SUITE_P(Boundaries, VarintRoundTrip,
                         ::testing::Values(0ULL, 1ULL, 127ULL, 128ULL,
                                           16383ULL, 16384ULL, 1ULL << 31,
                                           (1ULL << 32) - 1, 1ULL << 32,
                                           UINT64_MAX));

TEST(CodecTest, VarintUnderflowIsCorruption) {
  std::string buf;
  PutVarint64(&buf, UINT64_MAX);
  buf.resize(buf.size() - 1);  // Chop the terminator byte.
  Slice in(buf);
  uint64_t v;
  EXPECT_TRUE(GetVarint64(&in, &v).IsCorruption());
}

TEST(CodecTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  PutLengthPrefixed(&buf, "");
  PutLengthPrefixed(&buf, std::string(300, 'z'));
  Slice in(buf);
  Slice a, b, c;
  ASSERT_TRUE(GetLengthPrefixed(&in, &a).ok());
  ASSERT_TRUE(GetLengthPrefixed(&in, &b).ok());
  ASSERT_TRUE(GetLengthPrefixed(&in, &c).ok());
  EXPECT_EQ(a.ToString(), "hello");
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(c.size(), 300u);
}

TEST(CodecTest, DoubleRoundTrip) {
  for (double d : {0.0, -1.5, 3.14159, 1e300, -1e-300}) {
    std::string buf;
    PutDouble(&buf, d);
    Slice in(buf);
    double v;
    ASSERT_TRUE(GetDouble(&in, &v).ok());
    EXPECT_EQ(v, d);
  }
}

TEST(SidTest, StorageIdRoundTrip) {
  StorageId sid;
  sid.version = 1;
  sid.instance = NodeInstanceId::Generate(123, 456);
  sid.local_id = 0xCAFEBABE;
  const std::string text = sid.ToString();
  EXPECT_EQ(text.size(), 48u);
  auto parsed = StorageId::Parse(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, sid);
}

TEST(SidTest, DistinctInstancesMintDistinctIds) {
  // Two cloned clusters (same local id counters) still produce unique SIDs
  // because their node instance ids differ (paper Section 5.1).
  StorageId a, b;
  a.instance = NodeInstanceId::Generate(1, 1);
  b.instance = NodeInstanceId::Generate(2, 1);
  a.local_id = b.local_id = 42;
  EXPECT_NE(a.ToString(), b.ToString());
}

TEST(SidTest, ParseRejectsBadInput) {
  EXPECT_FALSE(StorageId::Parse("tooshort").ok());
  EXPECT_FALSE(StorageId::Parse(std::string(48, 'g')).ok());  // Not hex.
}

TEST(SidTest, IncarnationRoundTrip) {
  IncarnationId inc = IncarnationId::Generate(7, 8);
  EXPECT_FALSE(inc.IsZero());
  auto parsed = IncarnationId::FromHex(inc.ToHex());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, inc);
}

TEST(JsonTest, RoundTrip) {
  JsonValue obj = JsonValue::Object();
  obj.Set("name", JsonValue::Str("eon"));
  obj.Set("version", JsonValue::Int(9));
  obj.Set("ratio", JsonValue::Double(0.5));
  obj.Set("beta", JsonValue::Bool(true));
  JsonValue arr = JsonValue::Array();
  arr.Append(JsonValue::Str("n1"));
  arr.Append(JsonValue::Str("n2"));
  obj.Set("nodes", std::move(arr));

  auto parsed = JsonValue::Parse(obj.Dump());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Get("name").string_value(), "eon");
  EXPECT_EQ(parsed->Get("version").int_value(), 9);
  EXPECT_DOUBLE_EQ(parsed->Get("ratio").double_value(), 0.5);
  EXPECT_TRUE(parsed->Get("beta").bool_value());
  EXPECT_EQ(parsed->Get("nodes").size(), 2u);
}

TEST(JsonTest, EscapesSpecials) {
  JsonValue v = JsonValue::Str("line1\nline2\t\"quoted\"\\");
  auto parsed = JsonValue::Parse(v.Dump());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->string_value(), "line1\nline2\t\"quoted\"\\");
}

TEST(JsonTest, RejectsMalformed) {
  EXPECT_FALSE(JsonValue::Parse("{").ok());
  EXPECT_FALSE(JsonValue::Parse("[1,2,").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\":}").ok());
  EXPECT_FALSE(JsonValue::Parse("{} trailing").ok());
  EXPECT_FALSE(JsonValue::Parse("\"unterminated").ok());
}

TEST(RandomTest, Deterministic) {
  Random a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, UniformInRange) {
  Random rng(1);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RandomTest, ZipfBoundedAndSkewed) {
  Random rng(2);
  uint64_t low = 0, total = 2000;
  for (uint64_t i = 0; i < total; ++i) {
    uint64_t v = rng.Zipf(1000, 0.8);
    EXPECT_LT(v, 1000u);
    if (v < 100) low++;
  }
  // Strong skew: far more than 10% of draws land in the lowest 10%.
  EXPECT_GT(low, total / 3);
}

TEST(ClockTest, SimClockJumps) {
  SimClock clock;
  EXPECT_EQ(clock.NowMicros(), 0);
  clock.AdvanceMicros(1500);
  EXPECT_EQ(clock.NowMicros(), 1500);
  clock.SetMicros(10000);
  EXPECT_EQ(clock.NowMicros(), 10000);
}

TEST(ClockTest, WallClockMonotone) {
  WallClock clock;
  int64_t a = clock.NowMicros();
  clock.AdvanceMicros(1000);
  EXPECT_GE(clock.NowMicros(), a + 1000);
}

TEST(SliceTest, CompareAndPrefix) {
  EXPECT_EQ(Slice("abc").compare(Slice("abc")), 0);
  EXPECT_LT(Slice("abc").compare(Slice("abd")), 0);
  EXPECT_GT(Slice("abcd").compare(Slice("abc")), 0);
  EXPECT_TRUE(Slice("abcdef").starts_with(Slice("abc")));
  EXPECT_FALSE(Slice("ab").starts_with(Slice("abc")));
  Slice s("hello");
  s.remove_prefix(2);
  EXPECT_EQ(s.ToString(), "llo");
}

TEST(ThreadPoolTest, WidthMatchesOptions) {
  ThreadPool::Options opts;
  opts.num_threads = 4;
  ThreadPool pool(opts);
  EXPECT_EQ(pool.width(), 4);
}

TEST(ThreadPoolTest, Width1RunsInline) {
  ThreadPool::Options opts;
  opts.num_threads = 1;
  ThreadPool pool(opts);
  EXPECT_EQ(pool.width(), 1);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id seen;
  pool.Submit([&] { seen = std::this_thread::get_id(); }).get();
  EXPECT_EQ(seen, caller);
  seen = std::thread::id();
  pool.ParallelFor(3, [&](size_t) { seen = std::this_thread::get_id(); });
  EXPECT_EQ(seen, caller);
}

TEST(ThreadPoolTest, SubmitRunsEveryTask) {
  ThreadPool::Options opts;
  opts.num_threads = 4;
  ThreadPool pool(opts);
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&] { ran.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, SubmitPropagatesException) {
  ThreadPool::Options opts;
  opts.num_threads = 2;
  ThreadPool pool(opts);
  std::future<void> f =
      pool.Submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool::Options opts;
  opts.num_threads = 4;
  ThreadPool pool(opts);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, CurrentSlotStaysInRange) {
  ThreadPool::Options opts;
  opts.num_threads = 4;
  ThreadPool pool(opts);
  std::atomic<bool> bad{false};
  pool.ParallelFor(64, [&](size_t) {
    const int slot = pool.CurrentSlot();
    if (slot < 0 || slot >= pool.width()) bad.store(true);
  });
  EXPECT_FALSE(bad.load());
  // Off-pool threads (e.g. the ParallelFor caller) map to the last lane.
  EXPECT_EQ(pool.CurrentSlot(), pool.width() - 1);
}

TEST(ThreadPoolTest, ExportsPoolMetrics) {
  obs::MetricsRegistry registry;
  ThreadPool::Options opts;
  opts.num_threads = 3;
  opts.metrics_name = "test-pool";
  opts.registry = &registry;
  ThreadPool pool(opts);
  const obs::LabelSet labels({{"pool", "test-pool"}});
  EXPECT_EQ(registry.GetGauge("eon_pool_threads", labels)->Value(), 3);
  std::atomic<int> ran{0};
  pool.ParallelFor(10, [&](size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 10);
  EXPECT_GT(registry.GetCounter("eon_pool_tasks_total", labels)->Value(), 0u);
  EXPECT_GT(registry.GetHistogram("eon_pool_task_micros", labels)->Count(),
            0u);
}

}  // namespace
}  // namespace eon
