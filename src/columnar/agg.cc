#include "columnar/agg.h"

#include "columnar/kernels.h"

namespace eon {

const char* AggFnName(AggFn fn) {
  switch (fn) {
    case AggFn::kCount: return "count";
    case AggFn::kSum: return "sum";
    case AggFn::kMin: return "min";
    case AggFn::kMax: return "max";
    case AggFn::kAvg: return "avg";
    case AggFn::kCountDistinct: return "count_distinct";
  }
  return "?";
}

void AggState::Accumulate(AggFn fn, const Value& v) {
  switch (fn) {
    case AggFn::kCount:
      count++;
      return;
    case AggFn::kSum:
    case AggFn::kAvg:
      if (v.is_null()) return;
      count++;
      if (v.type() == DataType::kInt64) {
        sum_int += v.int_value();
      } else {
        sum_is_int = false;
      }
      sum += v.AsDouble();
      return;
    case AggFn::kMin:
      if (v.is_null()) return;
      if (min.is_null() || v.Compare(min) < 0) min = v;
      return;
    case AggFn::kMax:
      if (v.is_null()) return;
      if (max.is_null() || v.Compare(max) > 0) max = v;
      return;
    case AggFn::kCountDistinct:
      if (!v.is_null()) distinct.insert(v);
      return;
  }
}

void AggState::Fold(AggFn fn, const ColumnBatch& batch, const uint32_t* idx,
                    size_t nidx, uint64_t* kernel_calls) {
  if (nidx == 0) return;
  if (fn == AggFn::kCount) {
    // COUNT over a column counts every row, nulls included.
    count += static_cast<int64_t>(nidx);
    return;
  }
  if (batch.type() == DataType::kInt64 &&
      (fn == AggFn::kSum || fn == AggFn::kAvg || fn == AggFn::kMin ||
       fn == AggFn::kMax)) {
    const simd::Int64Fold f =
        idx == nullptr
            ? simd::FoldInt64(batch.ints(), nidx, batch.validity_words(),
                              nullptr)
            : simd::FoldInt64Indexed(batch.ints(), batch.validity_words(), idx,
                                     nidx);
    if (kernel_calls != nullptr) ++*kernel_calls;
    switch (fn) {
      case AggFn::kSum:
      case AggFn::kAvg: {
        count += static_cast<int64_t>(f.count);
        const int64_t block_sum = static_cast<int64_t>(f.sum);
        sum_int += block_sum;
        // The per-value reference adds each int through AsDouble(); the
        // block sum is identical as long as partials stay exact in double
        // (|sum| < 2^53), which holds for the integer domains we store.
        sum += static_cast<double>(block_sum);
        return;
      }
      case AggFn::kMin:
        if (f.count > 0) {
          const Value cand = Value::Int(f.min);
          if (min.is_null() || cand.Compare(min) < 0) min = cand;
        }
        return;
      case AggFn::kMax:
        if (f.count > 0) {
          const Value cand = Value::Int(f.max);
          if (max.is_null() || cand.Compare(max) > 0) max = cand;
        }
        return;
      default:
        return;
    }
  }
  // Doubles (order-sensitive in IEEE arithmetic), strings, and COUNT
  // DISTINCT accumulate per value in ascending row order.
  for (size_t i = 0; i < nidx; ++i) {
    const size_t r = idx == nullptr ? i : idx[i];
    Accumulate(fn, batch.GetValue(r));
  }
}

void AggState::Merge(const AggState& o) {
  count += o.count;
  sum += o.sum;
  sum_int += o.sum_int;
  sum_is_int = sum_is_int && o.sum_is_int;
  if (!o.min.is_null() && (min.is_null() || o.min.Compare(min) < 0)) {
    min = o.min;
  }
  if (!o.max.is_null() && (max.is_null() || o.max.Compare(max) > 0)) {
    max = o.max;
  }
  distinct.insert(o.distinct.begin(), o.distinct.end());
}

Value AggState::Finalize(AggFn fn, DataType input_type) const {
  switch (fn) {
    case AggFn::kCount:
      return Value::Int(count);
    case AggFn::kSum:
      if (count == 0) return Value::Null(input_type);
      return sum_is_int && input_type == DataType::kInt64
                 ? Value::Int(sum_int)
                 : Value::Dbl(sum);
    case AggFn::kAvg:
      return count == 0 ? Value::Null(DataType::kDouble)
                        : Value::Dbl(sum / static_cast<double>(count));
    case AggFn::kMin:
      return min.is_null() ? Value::Null(input_type) : min;
    case AggFn::kMax:
      return max.is_null() ? Value::Null(input_type) : max;
    case AggFn::kCountDistinct:
      return Value::Int(static_cast<int64_t>(distinct.size()));
  }
  return Value::Null(input_type);
}

uint64_t AggState::TransferBytes() const {
  uint64_t bytes = 32;
  for (const Value& v : distinct) {
    bytes += v.type() == DataType::kString ? v.str_value().size() + 4 : 9;
  }
  return bytes;
}

}  // namespace eon
