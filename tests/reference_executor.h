// A deliberately naive, single-node reference implementation of QuerySpec
// over raw in-memory rows. Used for differential testing: the distributed
// engine (under any participation, crunch mode, or failure schedule) must
// produce exactly what this does.

#ifndef EON_TESTS_REFERENCE_EXECUTOR_H_
#define EON_TESTS_REFERENCE_EXECUTOR_H_

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "engine/query.h"
#include "workload/tpch.h"

namespace eon {
namespace testing_support {

/// In-memory relation: schema + rows.
struct RefTable {
  Schema schema;
  std::vector<Row> rows;
};

using RefDatabase = std::map<std::string, RefTable>;

inline RefDatabase TpchReferenceDb(const TpchData& data) {
  return RefDatabase{
      {"customer", {TpchCustomerSchema(), data.customers}},
      {"orders", {TpchOrdersSchema(), data.orders}},
      {"lineitem", {TpchLineitemSchema(), data.lineitems}},
      {"part", {TpchPartSchema(), data.parts}},
  };
}

/// Execute `spec` naively. Mirrors the engine's documented semantics:
/// scan → inner equi-join → group/aggregate (SQL one-row-for-empty-global-
/// aggregate rule) → order → limit. Output schema matches the engine's.
Result<std::vector<Row>> ReferenceExecute(const RefDatabase& db,
                                          const QuerySpec& spec);

/// Compare result sets. When `ordered` is false both sides are sorted
/// canonically first (for queries with no ORDER BY, row order is
/// unspecified). Doubles compare with a small relative tolerance because
/// distributed aggregation sums in a different order.
bool SameResults(const std::vector<Row>& a, const std::vector<Row>& b,
                 bool ordered, std::string* diff);

}  // namespace testing_support
}  // namespace eon

#endif  // EON_TESTS_REFERENCE_EXECUTOR_H_
