# Empty dependencies file for eon_tm.
# This may be replaced when dependencies are built.
