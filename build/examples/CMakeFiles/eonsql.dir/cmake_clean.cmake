file(REMOVE_RECURSE
  "CMakeFiles/eonsql.dir/eonsql.cpp.o"
  "CMakeFiles/eonsql.dir/eonsql.cpp.o.d"
  "eonsql"
  "eonsql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eonsql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
