# Empty compiler generated dependencies file for test_backup_clone.
# This may be replaced when dependencies are built.
