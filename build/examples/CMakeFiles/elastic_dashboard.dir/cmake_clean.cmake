file(REMOVE_RECURSE
  "CMakeFiles/elastic_dashboard.dir/elastic_dashboard.cpp.o"
  "CMakeFiles/elastic_dashboard.dir/elastic_dashboard.cpp.o.d"
  "elastic_dashboard"
  "elastic_dashboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elastic_dashboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
