// Figure 12: "Throughput, Eon Mode, 4 nodes, Kill 1 node" — queries per
// 4-minute bucket before and after killing one node of a 4-node / 3-shard
// cluster, versus the Enterprise baseline (4 nodes, 4 regions, buddy
// fallback).
//
// Also demonstrates the functional side on the real substrate: a query
// stream keeps returning correct answers across the kill, because shards
// are never down — another subscriber serves them.
//
// Expected shape (paper): Eon degrades smoothly (non-cliff) to roughly
// 3/4 capacity; Enterprise drops harder because the dead node's buddy
// serves double load.

#include "bench/bench_util.h"
#include "engine/session.h"
#include "engine/trace.h"
#include "obs/trace.h"
#include "sim/throughput_sim.h"

namespace eon {
namespace bench {
namespace {

int Run() {
  // --- Functional check on the real substrate. ---
  auto fixture = MakeEonFixture(4, 3, 0.2);
  if (fixture == nullptr) return 1;
  EonSession session(fixture->cluster.get());
  QuerySpec dash = DashboardQuery(fixture->tpch_options);
  auto before = session.Execute(dash);
  if (!before.ok()) return 1;
  if (!fixture->cluster->KillNode(2).ok()) return 1;
  // Drop residency on the survivors: the post-kill query re-reads the
  // dead node's shards from shared storage, and the cold run's sim time
  // puts it in the Data Collector's slow-query log (full phase profile
  // in the fig12_node_down.systables.json sidecar).
  for (const auto& n : fixture->cluster->nodes()) {
    if (n->is_up()) n->cache()->Clear();
  }
  // Trace the post-kill cold query end-to-end (forced, so retention does
  // not depend on the slow-query policy) and drop the span tree next to
  // the figure data as fig12_node_down.trace.json — one real example of
  // where a degraded query's time goes (cache_fetch spans against shared
  // storage dominating the morsel spans of the re-subscribed shards).
  QueryTraceGuard trace_guard(fixture->cluster.get(), "query",
                              /*force=*/true);
  const uint64_t trace_id = trace_guard.context().trace_id;
  auto after = [&] {
    obs::TraceScope trace_scope(trace_guard.context());
    return session.Execute(dash);
  }();
  if (!after.ok()) {
    fprintf(stderr, "query failed after node kill: %s\n",
            after.status().ToString().c_str());
    return 1;
  }
  trace_guard.Finish(after->profile);
  Status trace_status = WriteQueryTraceJsonFile("fig12_node_down.trace.json",
                                                fixture->cluster.get(),
                                                trace_id);
  if (trace_status.ok()) {
    fprintf(stderr, "trace sidecar: fig12_node_down.trace.json\n");
  } else {
    fprintf(stderr, "trace sidecar failed: %s\n",
            trace_status.ToString().c_str());
  }
  printf("# functional: dashboard query returns %zu groups before and %zu "
         "after killing node2 (plan shape unchanged, different server)\n",
         before->rows.size(), after->rows.size());

  // --- Throughput timeline (the paper's plot). ---
  const int64_t kBucket = 4LL * 60 * 1000 * 1000;
  const int64_t kDuration = 20 * kBucket;
  const int64_t kKillAt = 10 * kBucket;

  auto run_timeline = [&](bool enterprise) {
    ThroughputSim::Options o;
    o.num_nodes = 4;
    o.num_shards = enterprise ? 4 : 3;
    o.enterprise = enterprise;
    o.slots_per_node = 4;
    o.clients = 24;
    o.service_micros = 6LL * 1000 * 1000;  // ~6 s TPC-H query (paper).
    o.duration_micros = kDuration;
    o.bucket_micros = kBucket;
    o.kill_events = {{kKillAt, 1}};
    // Brief stall while participation re-selects around the dead node.
    o.failover_blackout_micros = 10LL * 1000 * 1000;
    o.metrics_name = enterprise ? "fig12_enterprise" : "fig12_eon";
    return ThroughputSim::Run(o);
  };

  auto eon_run = run_timeline(false);
  auto ent_run = run_timeline(true);

  printf("# Figure 12: throughput per 4-minute bucket, kill 1 of 4 nodes "
         "at minute %lld\n",
         static_cast<long long>(kKillAt / 60000000));
  printf("%-12s %16s %20s\n", "minute", "eon_4n_3shard", "enterprise_4n");
  for (size_t b = 0; b < eon_run.buckets.size(); ++b) {
    printf("%-12lld %16llu %20llu\n",
           static_cast<long long>(eon_run.buckets[b].first / 60000000),
           static_cast<unsigned long long>(eon_run.buckets[b].second),
           static_cast<unsigned long long>(ent_run.buckets[b].second));
  }

  auto retained = [](const ThroughputSim::RunResult& r) {
    double pre = 0, post = 0;
    for (size_t b = 2; b < 9; ++b) pre += static_cast<double>(r.buckets[b].second);
    for (size_t b = 12; b < 19; ++b) post += static_cast<double>(r.buckets[b].second);
    return post / pre;
  };
  printf("# shape check: capacity retained after kill — eon %.0f%% "
         "(paper: smooth ~75%%), enterprise %.0f%% (cliff)\n",
         100 * retained(eon_run), 100 * retained(ent_run));
  DumpBenchSidecars("fig12_node_down", fixture->cluster.get());
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace eon

int main() { return eon::bench::Run(); }
