#include "obs/trace_export.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <unordered_map>

namespace eon {
namespace obs {

namespace {

/// Phase-level spans run sequentially on the coordinator thread; their
/// durations are the attribution buckets.
bool IsPhaseName(const std::string& name) {
  return name == "admission_wait" || name == "plan" || name == "scan" ||
         name == "join" || name == "aggregate" || name == "merge" ||
         name == "serialize";
}

const SpanData* FindRoot(const std::vector<SpanData>& spans) {
  const SpanData* root = nullptr;
  for (const SpanData& s : spans) {
    if (s.parent_id != 0) continue;
    if (root == nullptr || s.start_micros < root->start_micros) root = &s;
  }
  return root;
}

int64_t AttrInt(const SpanData& span, const std::string& key,
                int64_t fallback) {
  for (const auto& [k, v] : span.attributes) {
    if (k == key) return std::strtoll(v.c_str(), nullptr, 10);
  }
  return fallback;
}

}  // namespace

JsonValue ChromeTraceJson(const std::vector<SpanData>& spans) {
  JsonValue root = JsonValue::Object();
  JsonValue events = JsonValue::Array();
  // One tid lane per node; coordinator/unknown ("") gets lane 0.
  std::map<std::string, int64_t> tids;
  tids[""] = 0;
  for (const SpanData& s : spans) {
    if (tids.find(s.node) == tids.end()) {
      tids[s.node] = static_cast<int64_t>(tids.size());
    }
  }
  for (const SpanData& s : spans) {
    JsonValue e = JsonValue::Object();
    e.Set("name", JsonValue::Str(s.name));
    e.Set("cat", JsonValue::Str("query"));
    e.Set("ph", JsonValue::Str("X"));
    e.Set("ts", JsonValue::Int(s.start_micros));
    e.Set("dur", JsonValue::Int(s.DurationMicros()));
    e.Set("pid", JsonValue::Int(1));
    e.Set("tid", JsonValue::Int(tids[s.node]));
    JsonValue args = JsonValue::Object();
    args.Set("span_id", JsonValue::Int(static_cast<int64_t>(s.id)));
    args.Set("parent_id", JsonValue::Int(static_cast<int64_t>(s.parent_id)));
    args.Set("trace_id", JsonValue::Int(static_cast<int64_t>(s.trace_id)));
    args.Set("node", JsonValue::Str(s.node));
    for (const auto& [k, v] : s.attributes) args.Set(k, JsonValue::Str(v));
    e.Set("args", std::move(args));
    events.Append(std::move(e));
  }
  // Name the per-node lanes so Perfetto shows node names, not bare tids.
  for (const auto& [node, tid] : tids) {
    JsonValue meta = JsonValue::Object();
    meta.Set("name", JsonValue::Str("thread_name"));
    meta.Set("ph", JsonValue::Str("M"));
    meta.Set("pid", JsonValue::Int(1));
    meta.Set("tid", JsonValue::Int(tid));
    JsonValue args = JsonValue::Object();
    args.Set("name",
             JsonValue::Str(node.empty() ? std::string("coordinator") : node));
    meta.Set("args", std::move(args));
    events.Append(std::move(meta));
  }
  root.Set("traceEvents", std::move(events));
  root.Set("displayTimeUnit", JsonValue::Str("ms"));
  return root;
}

TraceAttribution AttributeTrace(const std::vector<SpanData>& spans) {
  TraceAttribution a;
  const SpanData* root = FindRoot(spans);
  if (root == nullptr) return a;
  a.wall_micros = root->DurationMicros();

  std::unordered_map<uint64_t, const SpanData*> by_id;
  by_id.reserve(spans.size());
  for (const SpanData& s : spans) by_id[s.id] = &s;

  // Phase buckets: sum durations by name. Phase spans never nest in one
  // another, so this never double-counts.
  for (const SpanData& s : spans) {
    if (!IsPhaseName(s.name)) continue;
    const int64_t d = s.DurationMicros();
    if (s.name == "admission_wait") a.queued_micros += d;
    else if (s.name == "plan") a.plan_micros += d;
    else if (s.name == "scan") a.scan_micros += d;
    else if (s.name == "join") a.join_micros += d;
    else if (s.name == "aggregate") a.aggregate_micros += d;
    else if (s.name == "merge") a.merge_micros += d;
    else if (s.name == "serialize") a.serialize_micros += d;
  }
  a.other_micros = a.wall_micros -
                   (a.queued_micros + a.plan_micros + a.scan_micros +
                    a.join_micros + a.aggregate_micros + a.merge_micros +
                    a.serialize_micros);

  // Split the scan phase into fetch-wait vs CPU along the critical lane:
  // group morsel spans by lane, pick the busiest lane, and charge its
  // demand-fetch child spans as fetch-wait.
  std::map<int64_t, int64_t> lane_busy;
  std::unordered_map<uint64_t, int64_t> morsel_lane;
  for (const SpanData& s : spans) {
    if (s.name != "morsel") continue;
    const int64_t lane = AttrInt(s, "lane", 0);
    lane_busy[lane] += s.DurationMicros();
    morsel_lane[s.id] = lane;
  }
  int64_t critical_lane = 0;
  int64_t critical_busy = -1;
  for (const auto& [lane, busy] : lane_busy) {
    if (busy > critical_busy) {
      critical_busy = busy;
      critical_lane = lane;
    }
  }
  int64_t fetch_wait = 0;
  for (const SpanData& s : spans) {
    if (s.name != "cache_fetch") continue;
    auto it = morsel_lane.find(s.parent_id);
    if (it == morsel_lane.end() || it->second != critical_lane) continue;
    fetch_wait += s.DurationMicros();
  }
  a.fetch_wait_micros = std::min(fetch_wait, a.scan_micros);
  a.scan_cpu_micros = a.scan_micros - a.fetch_wait_micros;

  // Critical path: descend into the child that finishes last.
  std::unordered_map<uint64_t, std::vector<const SpanData*>> children;
  for (const SpanData& s : spans) {
    if (s.parent_id != 0) children[s.parent_id].push_back(&s);
  }
  const SpanData* at = root;
  while (at != nullptr) {
    a.critical_path.push_back(at->name + "(" +
                              std::to_string(at->DurationMicros()) + "us)");
    auto it = children.find(at->id);
    if (it == children.end()) break;
    const SpanData* last = nullptr;
    for (const SpanData* c : it->second) {
      if (last == nullptr || c->end_micros > last->end_micros) last = c;
    }
    at = last;
  }
  return a;
}

JsonValue TraceAttribution::ToJson() const {
  JsonValue o = JsonValue::Object();
  o.Set("wall_micros", JsonValue::Int(wall_micros));
  o.Set("queued_micros", JsonValue::Int(queued_micros));
  o.Set("plan_micros", JsonValue::Int(plan_micros));
  o.Set("scan_micros", JsonValue::Int(scan_micros));
  o.Set("fetch_wait_micros", JsonValue::Int(fetch_wait_micros));
  o.Set("scan_cpu_micros", JsonValue::Int(scan_cpu_micros));
  o.Set("join_micros", JsonValue::Int(join_micros));
  o.Set("aggregate_micros", JsonValue::Int(aggregate_micros));
  o.Set("merge_micros", JsonValue::Int(merge_micros));
  o.Set("serialize_micros", JsonValue::Int(serialize_micros));
  o.Set("other_micros", JsonValue::Int(other_micros));
  JsonValue path = JsonValue::Array();
  for (const std::string& step : critical_path) {
    path.Append(JsonValue::Str(step));
  }
  o.Set("critical_path", std::move(path));
  return o;
}

bool SpansNest(const std::vector<SpanData>& spans, std::string* error) {
  std::unordered_map<uint64_t, const SpanData*> by_id;
  by_id.reserve(spans.size());
  for (const SpanData& s : spans) by_id[s.id] = &s;
  for (const SpanData& s : spans) {
    if (s.parent_id == 0) continue;
    auto it = by_id.find(s.parent_id);
    if (it == by_id.end()) continue;  // Parent fell off the ring.
    const SpanData* p = it->second;
    if (s.start_micros < p->start_micros) {
      if (error != nullptr) {
        *error = "span " + s.name + " starts before parent " + p->name;
      }
      return false;
    }
    // Async fire-and-forget spans (prefetches) may legitimately outlive
    // the span that issued them; everything else must end inside its
    // parent.
    if (s.name != "prefetch" && s.end_micros > p->end_micros) {
      if (error != nullptr) {
        *error = "span " + s.name + " ends after parent " + p->name;
      }
      return false;
    }
  }
  return true;
}

}  // namespace obs
}  // namespace eon
