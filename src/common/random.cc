#include "common/random.h"

#include <cmath>

namespace eon {

uint64_t Random::Zipf(uint64_t n, double theta) {
  if (n <= 1) return 0;
  // zeta(n, theta) approximated by the integral; adequate for workload skew.
  const double zetan =
      (std::pow(static_cast<double>(n), 1.0 - theta) - 1.0) / (1.0 - theta) +
      1.0;
  const double alpha = 1.0 / (1.0 - theta);
  const double eta =
      (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
      (1.0 - 2.0 * (1.0 / zetan));
  const double u = NextDouble();
  const double uz = u * zetan;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta)) return 1;
  uint64_t v = static_cast<uint64_t>(
      static_cast<double>(n) * std::pow(eta * u - eta + 1.0, alpha));
  return v >= n ? n - 1 : v;
}

}  // namespace eon
