#ifndef EON_CATALOG_CATALOG_H_
#define EON_CATALOG_CATALOG_H_

#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "catalog/objects.h"
#include "common/result.h"

namespace eon {

/// One mutation within a catalog transaction. Storage-object operations
/// carry the shard whose subscribers must receive them; global-object
/// operations use kGlobalShard and reach every node (Section 3.1).
struct CatalogOp {
  enum class Type : uint8_t {
    kSetSharding = 0,
    kPutTable = 1,
    kDropTable = 2,
    kPutProjection = 3,
    kDropProjection = 4,
    kPutContainer = 5,
    kDropContainer = 6,
    kPutDeleteVector = 7,
    kDropDeleteVector = 8,
    kPutSubscription = 9,
    kDropSubscription = 10,
    kPutNode = 11,
    kDropNode = 12,
  };

  Type type = Type::kPutTable;
  ShardId shard = kGlobalShard;
  Oid oid = kInvalidOid;  ///< Target oid for drops.
  std::string payload;    ///< Serialized object for puts.

  bool IsGlobal() const { return shard == kGlobalShard; }
};

/// A committed transaction: the redo-log unit. Logs are totally ordered by
/// `version` (Section 2.4).
struct TxnLogRecord {
  uint64_t version = 0;
  std::vector<CatalogOp> ops;

  std::string Serialize() const;
  static Result<TxnLogRecord> Deserialize(Slice data);
};

/// Immutable snapshot of all catalog objects at one version. Read
/// operations see a consistent snapshot; commits produce a new state
/// (copy-on-write MVCC, Section 2.4).
struct CatalogState {
  uint64_t version = 0;
  ShardingConfig sharding;
  std::map<Oid, TableDef> tables;
  std::map<Oid, ProjectionDef> projections;
  std::map<Oid, StorageContainerMeta> containers;
  std::map<Oid, DeleteVectorMeta> delete_vectors;
  std::map<Oid, NodeDef> nodes;
  std::map<std::pair<Oid, ShardId>, Subscription> subscriptions;
  /// Per-object last-modified version, the OCC validation input
  /// (Section 6.3).
  std::map<Oid, uint64_t> mod_versions;

  const TableDef* FindTableByName(const std::string& name) const;
  const TableDef* FindTable(Oid oid) const;
  const ProjectionDef* FindProjection(Oid oid) const;
  std::vector<const ProjectionDef*> ProjectionsOf(Oid table_oid) const;
  /// Containers of a projection, optionally restricted to one shard.
  std::vector<const StorageContainerMeta*> ContainersOf(
      Oid projection_oid, ShardId shard = kGlobalShard) const;
  std::vector<const DeleteVectorMeta*> DeleteVectorsOf(
      Oid container_oid) const;
  const Subscription* FindSubscription(Oid node, ShardId shard) const;
  /// Node oids subscribed to `shard` in any of the given states.
  std::vector<Oid> SubscribersOf(
      ShardId shard, const std::set<SubscriptionState>& states) const;
  /// Modification version of an object (0 if never modified).
  uint64_t ModVersion(Oid oid) const;
};

/// A transaction under construction: a list of ops plus the OCC write-set
/// of expected object versions. Build offline, then Catalog::Commit
/// validates and applies atomically (Section 6.3's optimistic concurrency).
class CatalogTxn {
 public:
  void SetSharding(const ShardingConfig& cfg);
  void PutTable(const TableDef& t);
  void DropTable(Oid oid);
  void PutProjection(const ProjectionDef& p);
  void DropProjection(Oid oid);
  void PutContainer(const StorageContainerMeta& c);
  void DropContainer(Oid oid, ShardId shard);
  void PutDeleteVector(const DeleteVectorMeta& d);
  void DropDeleteVector(Oid oid, ShardId shard);
  void PutSubscription(const Subscription& s);
  void DropSubscription(Oid node, ShardId shard);
  void PutNode(const NodeDef& n);
  void DropNode(Oid oid);

  /// Record that this transaction read `oid` at modification version
  /// `version`; commit validates the object is unchanged (OCC read set).
  void ExpectVersion(Oid oid, uint64_t version);

  bool empty() const { return ops_.empty(); }
  const std::vector<CatalogOp>& ops() const { return ops_; }
  const std::map<Oid, uint64_t>& expected_versions() const {
    return expected_;
  }

 private:
  std::vector<CatalogOp> ops_;
  std::map<Oid, uint64_t> expected_;
};

/// The catalog: MVCC object store + monotonic version counter + redo log.
/// Each node owns one Catalog; in Eon mode the cluster layer replicates
/// committed log records to shard subscribers via Apply().
///
/// Thread-safe: snapshot() is wait-free for readers holding the returned
/// shared_ptr; Commit/Apply serialize internally.
class Catalog {
 public:
  Catalog();

  /// Current consistent snapshot.
  std::shared_ptr<const CatalogState> snapshot() const;
  uint64_t version() const;

  /// Mint a fresh catalog OID (the local-id half of storage identifiers).
  Oid NextOid();

  /// Validate the txn's OCC read set against current object versions and
  /// apply atomically. Returns the new catalog version, or Aborted on
  /// conflict (the caller retries: re-read, re-prepare, re-commit).
  Result<uint64_t> Commit(const CatalogTxn& txn);

  /// Apply a replicated log record. `shard_filter`, when set, drops
  /// storage-object ops for unsubscribed shards (nodes track only their
  /// shards' storage metadata, Section 3.1); global ops always apply.
  /// The record version must be exactly version()+1.
  Status Apply(const TxnLogRecord& record,
               const std::set<ShardId>* shard_filter = nullptr);

  /// All retained log records with version > `after_version`, in order.
  std::vector<TxnLogRecord> LogsAfter(uint64_t after_version) const;

  /// Subscription metadata transfer (Section 3.3): bulk-import the storage
  /// objects of a newly subscribed shard from a source node's snapshot.
  /// Mutates current state without a version bump — these objects were
  /// committed at earlier versions this node skipped under its shard
  /// filter, so version semantics are unchanged.
  Status ImportStorageObjects(
      const std::vector<StorageContainerMeta>& containers,
      const std::vector<DeleteVectorMeta>& delete_vectors);

  /// Drop all storage objects of `shard` from this node's state
  /// (unsubscription drop-metadata step, Figure 4). No version bump.
  Status PurgeShard(ShardId shard);

  /// Serialize the current full state (a checkpoint, Section 2.4).
  std::string SerializeCheckpoint() const;

  /// Rebuild a catalog from a checkpoint plus subsequent log records,
  /// stopping at `upto_version` (used by restart, re-subscription transfer
  /// and revive truncation). Records beyond the checkpoint version that
  /// are <= upto_version are applied in order; gaps are an error.
  static Result<std::unique_ptr<Catalog>> Restore(
      Slice checkpoint, const std::vector<TxnLogRecord>& logs,
      uint64_t upto_version, const std::set<ShardId>* shard_filter = nullptr);

 private:
  Status ApplyOpsLocked(const std::vector<CatalogOp>& ops,
                        const std::set<ShardId>* shard_filter,
                        CatalogState* state);

  mutable std::mutex mu_;
  std::shared_ptr<const CatalogState> state_;
  std::vector<TxnLogRecord> log_;
  uint64_t next_oid_ = 1;
};

}  // namespace eon

#endif  // EON_CATALOG_CATALOG_H_
