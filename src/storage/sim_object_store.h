#ifndef EON_STORAGE_SIM_OBJECT_STORE_H_
#define EON_STORAGE_SIM_OBJECT_STORE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "storage/object_store.h"

namespace eon {

/// Latency / cost / failure model for the simulated shared storage.
/// Defaults approximate S3 seen from an EC2 instance in-region.
struct SimStoreOptions {
  /// First-byte latency per request class, microseconds.
  int64_t get_latency_micros = 15000;     // ~15 ms to first byte.
  int64_t put_latency_micros = 25000;     // ~25 ms.
  int64_t list_latency_micros = 30000;    // ~30 ms.
  int64_t delete_latency_micros = 15000;

  /// Streaming bandwidth once a transfer starts, bytes/second. Applied to
  /// every response payload — Get/ReadRange object bytes and ScanObject
  /// result bytes — so moving fewer bytes shows up as simulated latency,
  /// not just smaller byte counters.
  int64_t bandwidth_bytes_per_sec = 200LL * 1000 * 1000;  // ~200 MB/s.

  /// Near-data scan (ScanObject) model: first-byte latency of a scan
  /// request (S3-Select-style requests pay more setup than a plain GET)…
  int64_t scan_latency_micros = 30000;  // ~30 ms.
  /// …plus compute time proportional to the column-file bytes the store
  /// scans locally (the storage tier's weaker CPUs stream-filter the
  /// data). Response bytes then pay the regular bandwidth term.
  int64_t ndp_scan_bytes_per_sec = 1000LL * 1000 * 1000;  // ~1 GB/s.
  /// Scan request pricing: a per-request charge plus a per-GB-scanned
  /// charge (the S3-Select pricing shape).
  uint64_t scan_cost_microdollars = 2;
  uint64_t scan_cost_per_gb_microdollars = 2000;

  /// Probability that any single request fails transiently with IOError
  /// ("operations that would rarely fail in a real filesystem do fail
  /// occasionally on S3", Section 5.3).
  double transient_failure_prob = 0.0;

  /// Probability of a throttle response (Unavailable), modeling S3 503s.
  double throttle_prob = 0.0;

  /// Request pricing, micro-dollars per request (S3-like: PUT/LIST cost
  /// ~10x GET).
  uint64_t put_cost_microdollars = 5;
  uint64_t get_cost_microdollars = 1;
  uint64_t list_cost_microdollars = 5;

  /// Window during which a HEAD probe of a freshly created object may
  /// still report "not found" (S3's historical read-after-write caveat:
  /// checking existence with a HEAD before writing downgrades the
  /// subsequent read to eventual consistency, Section 5.3). List and Get
  /// stay strongly consistent, which is why Vertica never uses HEAD.
  int64_t head_staleness_micros = 0;

  uint64_t seed = 42;

  /// Value of the `store` label on registry instruments; empty =
  /// auto-assigned "sim<N>".
  std::string metrics_name;
  /// Metrics registry to record into; null = process default.
  obs::MetricsRegistry* registry = nullptr;
};

/// Shared-storage simulator: wraps a MemObjectStore with the latency, cost
/// and fault-injection model above. Time is charged to the supplied Clock
/// (a SimClock in experiments), so benchmark harnesses measure exactly the
/// I/O behavior the paper attributes to S3.
///
/// All failure injection happens *before* the inner operation for reads and
/// deletes; for Put the failure may be injected after the data reached the
/// inner store, modelling the "request succeeded but response lost" case a
/// retry loop must tolerate (retrying Put then observes AlreadyExists, which
/// RetryingObjectStore treats as success).
class SimObjectStore : public ObjectStore {
 public:
  SimObjectStore(SimStoreOptions options, Clock* clock);
  ~SimObjectStore() override;

  Status Put(const std::string& key, const std::string& data) override;
  Result<std::string> Get(const std::string& key) override;
  Result<std::string> ReadRange(const std::string& key, uint64_t offset,
                                uint64_t len) override;
  Result<std::vector<ObjectMeta>> List(const std::string& prefix) override;
  Status Delete(const std::string& key) override;
  /// Near-data scan with the fault/latency/cost model applied: faults
  /// inject before any compute, latency charges the scan setup + per-byte
  /// NDP compute + response transfer, and cost charges per request plus
  /// per GB scanned. Records an op="scan" dc_store_requests row.
  Status ScanObject(const ScanObjectRequest& request,
                    ScanObjectResponse* response) override;
  ObjectStoreMetrics metrics() const override;
  void ResetForTest() override;

  /// HEAD-style existence probe, exhibiting S3's eventual consistency:
  /// objects created within `head_staleness_micros` may report absent.
  /// Provided to DEMONSTRATE the trap — the production code path never
  /// calls it (Exists goes through List, Section 5.3).
  Result<bool> HeadProbe(const std::string& key);

  /// Direct access to the backing store (tests; reaper global enumeration).
  MemObjectStore* backing();

  const SimStoreOptions& options() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Options for the retry wrapper.
struct RetryOptions {
  int max_attempts = 6;
  int64_t initial_backoff_micros = 2000;
  double backoff_multiplier = 2.0;
  int64_t max_backoff_micros = 500000;
};

/// A "properly balanced retry loop" (paper Section 5.3) over any
/// ObjectStore: retries transient IOError/Unavailable with exponential
/// backoff, gives up with TimedOut after max_attempts, and treats
/// AlreadyExists on a retried Put as success (the first attempt landed).
class RetryingObjectStore : public ObjectStore {
 public:
  RetryingObjectStore(ObjectStore* base, RetryOptions options, Clock* clock);
  ~RetryingObjectStore() override;

  Status Put(const std::string& key, const std::string& data) override;
  Result<std::string> Get(const std::string& key) override;
  Result<std::string> ReadRange(const std::string& key, uint64_t offset,
                                uint64_t len) override;
  Result<std::vector<ObjectMeta>> List(const std::string& prefix) override;
  Status Delete(const std::string& key) override;
  /// Retried like Get: transient IOError/Unavailable back off and rerun
  /// (the response is reset each attempt); NotSupported from a base store
  /// without scan capability passes through untouched so callers can fall
  /// back to the fetch-whole-files path.
  Status ScanObject(const ScanObjectRequest& request,
                    ScanObjectResponse* response) override;
  ObjectStoreMetrics metrics() const override;
  /// Forwards to the base store and zeroes the retry counter.
  void ResetForTest() override;

  /// Number of retries performed across all operations.
  uint64_t total_retries() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace eon

#endif  // EON_STORAGE_SIM_OBJECT_STORE_H_
