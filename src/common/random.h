#ifndef EON_COMMON_RANDOM_H_
#define EON_COMMON_RANDOM_H_

#include <cstdint>

#include "common/hash.h"

namespace eon {

/// Deterministic pseudo-random generator (splitmix64 + xoshiro-style
/// mixing). Everything in the simulator that needs randomness takes a seeded
/// Random so every experiment is reproducible bit-for-bit.
class Random {
 public:
  explicit Random(uint64_t seed) : state_(seed ? seed : 0x9E3779B97F4A7C15ULL) {}

  /// Uniform 64-bit value.
  uint64_t Next() {
    state_ += 0x9E3779B97F4A7C15ULL;
    return Mix64(state_);
  }

  /// Uniform in [0, n). Precondition: n > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform in [lo, hi] inclusive. Precondition: lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Zipfian-distributed value in [0, n) with skew parameter `theta` in
  /// (0, 1); higher theta = more skew. Uses the quick approximation from
  /// Gray et al. ("Quickly generating billion-record synthetic databases").
  uint64_t Zipf(uint64_t n, double theta);

 private:
  uint64_t state_;
};

}  // namespace eon

#endif  // EON_COMMON_RANDOM_H_
