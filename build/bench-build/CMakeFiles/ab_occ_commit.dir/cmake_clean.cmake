file(REMOVE_RECURSE
  "../bench/ab_occ_commit"
  "../bench/ab_occ_commit.pdb"
  "CMakeFiles/ab_occ_commit.dir/ab_occ_commit.cc.o"
  "CMakeFiles/ab_occ_commit.dir/ab_occ_commit.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ab_occ_commit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
