file(REMOVE_RECURSE
  "CMakeFiles/eon_cluster.dir/backup.cc.o"
  "CMakeFiles/eon_cluster.dir/backup.cc.o.d"
  "CMakeFiles/eon_cluster.dir/cluster.cc.o"
  "CMakeFiles/eon_cluster.dir/cluster.cc.o.d"
  "CMakeFiles/eon_cluster.dir/node.cc.o"
  "CMakeFiles/eon_cluster.dir/node.cc.o.d"
  "libeon_cluster.a"
  "libeon_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eon_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
