file(REMOVE_RECURSE
  "libeon_common.a"
)
