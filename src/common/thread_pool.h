#ifndef EON_COMMON_THREAD_POOL_H_
#define EON_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace eon {

namespace obs {
class Counter;
class Gauge;
class Histogram;
class MetricsRegistry;
}  // namespace obs

/// CPU time consumed by the calling thread, in microseconds. Unlike a
/// steady clock this excludes time the thread spends descheduled, so
/// per-morsel costs stay meaningful even when workers oversubscribe the
/// machine's cores.
int64_t ThreadCpuMicros();

/// Fixed-size worker pool for morsel-parallel query execution.
///
/// Design points:
///  - `num_threads` is the pool's parallel *width*: the number of tasks
///    that can make progress at once. The pool spawns `num_threads - 1`
///    workers and the thread calling ParallelFor() participates as the
///    last lane, so width 1 means zero workers and fully inline (serial)
///    execution — the `EON_EXEC_THREADS=1` fallback runs the exact same
///    code path with no threads involved.
///  - Submit() returns a future; ParallelFor() is the barrier primitive
///    the executor uses (run fn(0..n), return when all are done).
///  - Task side effects must be independent; result determinism is the
///    caller's job (merge in task-index order, not completion order).
///
/// Observability (labels {pool=<name>}):
///  - eon_pool_threads           gauge     parallel width
///  - eon_pool_queue_depth       gauge     tasks queued, not yet started
///  - eon_pool_tasks_total       counter   tasks executed
///  - eon_pool_task_micros       histogram per-task execution wall time
class ThreadPool {
 public:
  struct Options {
    /// Parallel width (>= 1). 1 = inline execution, no worker threads.
    int num_threads = 1;
    /// Label value for this pool's metrics; "" auto-generates "pool<N>".
    std::string metrics_name;
    /// Metrics registry; nullptr = process default.
    obs::MetricsRegistry* registry = nullptr;
  };

  explicit ThreadPool(Options options);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Parallel width: workers + the participating caller. Always >= 1.
  int width() const { return static_cast<int>(workers_.size()) + 1; }

  /// Slot of the calling thread for per-lane accounting: workers occupy
  /// [0, width()-2]; any non-worker thread (the ParallelFor caller) maps
  /// to width()-1.
  int CurrentSlot() const;

  /// Enqueue one task. With width 1 the task runs inline before Submit
  /// returns (the future is already ready).
  std::future<void> Submit(std::function<void()> fn);

  /// Run fn(0), fn(1), ..., fn(n-1) across the pool and return once every
  /// call has finished (a barrier). The calling thread participates, so
  /// all `width()` lanes do work. Indices are claimed dynamically; callers
  /// needing deterministic output must not depend on execution order.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  const std::string& metrics_name() const { return metrics_name_; }

 private:
  struct Task {
    std::function<void()> fn;
  };

  void WorkerLoop(int slot);
  void RunTask(Task task);

  std::string metrics_name_;
  obs::Counter* tasks_total_ = nullptr;
  obs::Gauge* queue_depth_ = nullptr;
  obs::Gauge* threads_gauge_ = nullptr;
  obs::Histogram* task_micros_ = nullptr;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Task> queue_;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace eon

#endif  // EON_COMMON_THREAD_POOL_H_
