#include "columnar/types.h"

#include <cstdio>

namespace eon {

uint64_t RowBytes(const Row& row) {
  uint64_t bytes = 0;
  for (const Value& v : row) {
    bytes += 1;  // Null/type tag.
    if (v.is_null()) continue;
    bytes += v.type() == DataType::kString ? v.str_value().size() + 4 : 8;
  }
  return bytes;
}

const char* DataTypeName(DataType t) {
  switch (t) {
    case DataType::kInt64: return "int64";
    case DataType::kDouble: return "double";
    case DataType::kString: return "string";
  }
  return "?";
}

int Value::Compare(const Value& other) const {
  EON_CHECK_MSG(type_ == other.type_, "comparing values of different types");
  if (null_ && other.null_) return 0;
  if (null_) return -1;
  if (other.null_) return 1;
  switch (type_) {
    case DataType::kInt64:
      return int_ < other.int_ ? -1 : (int_ > other.int_ ? 1 : 0);
    case DataType::kDouble:
      return dbl_ < other.dbl_ ? -1 : (dbl_ > other.dbl_ ? 1 : 0);
    case DataType::kString:
      return str_ < other.str_ ? -1 : (str_ > other.str_ ? 1 : 0);
  }
  return 0;
}

uint32_t Value::SegHash() const {
  if (null_) return 0x9E3779B9u;
  switch (type_) {
    case DataType::kInt64:
      return SegmentationHashInt(int_);
    case DataType::kDouble: {
      // Hash the bit pattern; equal doubles hash equal.
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(dbl_));
      memcpy(&bits, &dbl_, sizeof(bits));
      return SegmentationHashInt(static_cast<int64_t>(bits));
    }
    case DataType::kString:
      return SegmentationHash(str_.data(), str_.size());
  }
  return 0;
}

std::string Value::ToString() const {
  if (null_) return "NULL";
  switch (type_) {
    case DataType::kInt64: {
      char buf[32];
      snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(int_));
      return buf;
    }
    case DataType::kDouble: {
      char buf[48];
      snprintf(buf, sizeof(buf), "%g", dbl_);
      return buf;
    }
    case DataType::kString:
      return "'" + str_ + "'";
  }
  return "?";
}

}  // namespace eon
