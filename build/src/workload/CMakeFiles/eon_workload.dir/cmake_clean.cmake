file(REMOVE_RECURSE
  "CMakeFiles/eon_workload.dir/tpch.cc.o"
  "CMakeFiles/eon_workload.dir/tpch.cc.o.d"
  "libeon_workload.a"
  "libeon_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eon_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
