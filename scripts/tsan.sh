#!/usr/bin/env bash
# Build the concurrency-sensitive tests under ThreadSanitizer and run
# everything labeled `race` (see tests/CMakeLists.txt). This covers the
# parallel differential suite, including the scan-mode matrix (row-wise /
# block-eval / late-mat × crunch × pool width), so encoded predicate
# evaluation and selective decode run under TSan at every width; the
# Data Collector rings (producers vs snapshot readers, test_obs); and
# system-table scans racing exec-pool query producers
# (test_system_tables); and the async prefetch pipeline — I/O-pool
# prefetches racing demand fetches, pinned readers, and eviction churn at
# every read-ahead depth and exec width (test_prefetch); and the serving
# layer — concurrent submits/cancels against the admission slot ledger
# plus many wire clients on one server (test_admission); and near-data
# ScanObject pushdown racing against one store (test_pushdown); and traced
# queries — span producers on the exec and I/O pools racing dc_trace_spans
# scans (test_trace); and the write path — concurrent committers racing
# the group-commit leader (test_wal) plus moveout + inserts racing
# union-scan queries (test_wos). Uses a separate build directory so the
# normal build/ stays sanitizer-free.
#
# A second configuration builds with -DEON_SIMD=off (every kernel pinned to
# the scalar reference) and reruns the kernel differentials and the
# parallel differential suite, so the scalar fallback paths get the same
# TSan coverage as the dispatched SIMD ones.
#
#   scripts/tsan.sh            # configure + build + run
#   BUILD_DIR=out scripts/tsan.sh
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build-tsan}"

cmake -B "$BUILD_DIR" -S . -DEON_SANITIZE=thread \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" \
      --target test_obs test_cache test_common test_kernels \
               test_parallel_differential \
               test_system_tables test_prefetch test_admission \
               test_pushdown test_trace test_wal test_wos \
      -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" -L race --output-on-failure

SIMD_OFF_DIR="${SIMD_OFF_DIR:-${BUILD_DIR}-simd-off}"

cmake -B "$SIMD_OFF_DIR" -S . -DEON_SANITIZE=thread -DEON_SIMD=off \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$SIMD_OFF_DIR" \
      --target test_kernels test_parallel_differential \
      -j "$(nproc)"
ctest --test-dir "$SIMD_OFF_DIR" \
      -R 'test_kernels|test_parallel_differential' --output-on-failure
