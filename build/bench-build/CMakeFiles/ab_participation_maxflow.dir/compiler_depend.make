# Empty compiler generated dependencies file for ab_participation_maxflow.
# This may be replaced when dependencies are built.
