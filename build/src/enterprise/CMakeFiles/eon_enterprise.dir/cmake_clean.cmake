file(REMOVE_RECURSE
  "CMakeFiles/eon_enterprise.dir/enterprise.cc.o"
  "CMakeFiles/eon_enterprise.dir/enterprise.cc.o.d"
  "libeon_enterprise.a"
  "libeon_enterprise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eon_enterprise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
