// Unit tests for max flow and participating-subscription selection
// (Section 4.1, Figure 6) and subscription layout planning.

#include <gtest/gtest.h>

#include "shard/maxflow.h"
#include "shard/participation.h"

namespace eon {
namespace {

TEST(MaxFlowTest, SimpleGraph) {
  // source(0) → a(1) → sink(3), source → b(2) → sink.
  MaxFlowGraph g(4);
  g.AddEdge(0, 1, 2);
  g.AddEdge(0, 2, 3);
  int a_sink = g.AddEdge(1, 3, 1);
  int b_sink = g.AddEdge(2, 3, 5);
  EXPECT_EQ(g.Solve(0, 3), 4);
  EXPECT_EQ(g.EdgeFlow(a_sink), 1);
  EXPECT_EQ(g.EdgeFlow(b_sink), 3);
}

TEST(MaxFlowTest, IncrementalCapacityRaisePreservesFlow) {
  MaxFlowGraph g(3);
  g.AddEdge(0, 1, 10);
  int bottleneck = g.AddEdge(1, 2, 1);
  EXPECT_EQ(g.Solve(0, 2), 1);
  // Successive-rounds usage: raise capacity and re-solve.
  g.SetCapacity(bottleneck, 5);
  EXPECT_EQ(g.Solve(0, 2), 5);
  EXPECT_EQ(g.EdgeFlow(bottleneck), 5);
}

TEST(MaxFlowTest, DisconnectedIsZero) {
  MaxFlowGraph g(4);
  g.AddEdge(0, 1, 5);
  g.AddEdge(2, 3, 5);
  EXPECT_EQ(g.Solve(0, 3), 0);
}

class ParticipationTest : public ::testing::Test {
 protected:
  /// Build a catalog: `shards` segment shards, nodes 1..n each ACTIVE on
  /// shards (i-1 + r) % shards for r in 0..k-1 (ring layout).
  void Setup(uint32_t shards, int n, int k,
             const std::vector<std::string>& subclusters = {}) {
    CatalogTxn txn;
    ShardingConfig cfg;
    cfg.num_segment_shards = shards;
    txn.SetSharding(cfg);
    for (int i = 1; i <= n; ++i) {
      NodeDef def;
      def.oid = static_cast<Oid>(i);
      def.name = "n" + std::to_string(i);
      def.subcluster = subclusters.empty() ? "" : subclusters[i - 1];
      txn.PutNode(def);
      up_.insert(def.oid);
    }
    // Ring layout per shard: shard s is served by nodes (s % n)+1 ...
    // (s+k-1 % n)+1, covering every shard even when shards > nodes.
    for (ShardId s = 0; s < shards; ++s) {
      for (int r = 0; r < k; ++r) {
        txn.PutSubscription(Subscription{
            static_cast<Oid>((s + static_cast<uint32_t>(r)) % n + 1), s,
            SubscriptionState::kActive});
      }
    }
    ASSERT_TRUE(catalog_.Commit(txn).ok());
  }

  Catalog catalog_;
  std::set<Oid> up_;
};

TEST_F(ParticipationTest, CoversAllShardsExactlyOnce) {
  Setup(4, 4, 2);
  auto result = SelectParticipatingNodes(*catalog_.snapshot(), up_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->shard_to_node.size(), 4u);
  for (const auto& [shard, node] : result->shard_to_node) {
    EXPECT_GE(node, 1u);
    EXPECT_LE(node, 4u);
  }
}

TEST_F(ParticipationTest, BalancedAssignment) {
  // 8 shards, 4 nodes, k=2: each node should serve exactly 2 shards.
  Setup(8, 4, 2);
  auto result = SelectParticipatingNodes(*catalog_.snapshot(), up_);
  ASSERT_TRUE(result.ok());
  for (Oid n = 1; n <= 4; ++n) {
    EXPECT_EQ(result->ShardsOf(n).size(), 2u) << "node " << n;
  }
}

TEST_F(ParticipationTest, SkipsDownNodes) {
  Setup(4, 4, 2);
  up_.erase(2);
  auto result = SelectParticipatingNodes(*catalog_.snapshot(), up_);
  ASSERT_TRUE(result.ok());
  for (const auto& [shard, node] : result->shard_to_node) {
    EXPECT_NE(node, 2u);
  }
}

TEST_F(ParticipationTest, UnavailableWhenShardUncovered) {
  Setup(4, 4, 1);  // k=1: shard i only on node i+1.
  up_.erase(3);    // Shard 2 now uncovered.
  auto result = SelectParticipatingNodes(*catalog_.snapshot(), up_);
  EXPECT_TRUE(result.status().IsUnavailable());
}

TEST_F(ParticipationTest, SkewedSubscriptionsStillCovered) {
  // One node subscribes to everything, others to one shard each: the
  // successive-round capacity raises must still cover all shards.
  CatalogTxn txn;
  ShardingConfig cfg;
  cfg.num_segment_shards = 4;
  txn.SetSharding(cfg);
  for (ShardId s = 0; s < 4; ++s) {
    txn.PutSubscription(Subscription{1, s, SubscriptionState::kActive});
  }
  txn.PutSubscription(Subscription{2, 0, SubscriptionState::kActive});
  ASSERT_TRUE(catalog_.Commit(txn).ok());
  up_ = {1, 2};
  auto result = SelectParticipatingNodes(*catalog_.snapshot(), up_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->shard_to_node.size(), 4u);
  // Node 1 must pick up at least 3 shards.
  EXPECT_GE(result->ShardsOf(1).size(), 3u);
}

TEST_F(ParticipationTest, VariationSeedSpreadsAssignments) {
  Setup(3, 6, 3);  // Plenty of equivalent assignments.
  std::set<std::string> distinct;
  for (uint64_t seed = 0; seed < 16; ++seed) {
    ParticipationOptions opts;
    opts.variation_seed = seed;
    auto result =
        SelectParticipatingNodes(*catalog_.snapshot(), up_, opts);
    ASSERT_TRUE(result.ok());
    std::string key;
    for (const auto& [shard, node] : result->shard_to_node) {
      key += std::to_string(node) + ",";
    }
    distinct.insert(key);
  }
  // Edge-order variation should produce multiple distinct assignments.
  EXPECT_GT(distinct.size(), 1u);
}

TEST_F(ParticipationTest, PriorityGroupsKeepWorkloadInside) {
  Setup(3, 6, 3, {"a", "a", "a", "b", "b", "b"});
  ParticipationOptions opts;
  opts.priority_groups = {{1, 2, 3}, {4, 5, 6}};
  auto result = SelectParticipatingNodes(*catalog_.snapshot(), up_, opts);
  ASSERT_TRUE(result.ok());
  // Subcluster "a" covers all shards: workload must not escape.
  for (const auto& [shard, node] : result->shard_to_node) {
    EXPECT_LE(node, 3u);
  }
}

TEST_F(ParticipationTest, WorkloadEscapesOnlyOnFailure) {
  // k=6 on 3 shards: every node subscribes to every shard. Kill all of
  // subcluster "a": the workload must escape to "b".
  Setup(3, 6, 6, {"a", "a", "a", "b", "b", "b"});
  up_ = {4, 5, 6};
  ParticipationOptions opts;
  opts.priority_groups = {{1, 2, 3}, {4, 5, 6}};
  auto result = SelectParticipatingNodes(*catalog_.snapshot(), up_, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (const auto& [shard, node] : result->shard_to_node) {
    EXPECT_GE(node, 4u);
  }
}

TEST(PlanLayoutTest, EveryShardGetsKSubscribers) {
  Catalog catalog;
  CatalogTxn txn;
  ShardingConfig cfg;
  cfg.num_segment_shards = 4;
  txn.SetSharding(cfg);
  ASSERT_TRUE(catalog.Commit(txn).ok());

  std::vector<NodeDef> nodes;
  for (Oid i = 1; i <= 4; ++i) {
    nodes.push_back(NodeDef{i, "n" + std::to_string(i), ""});
  }
  auto layout = PlanSubscriptionLayout(*catalog.snapshot(), nodes, 2);

  std::map<ShardId, int> coverage;
  std::map<Oid, int> replica_subs;
  for (const auto& [node, shard] : layout) {
    if (shard == 4) {
      replica_subs[node]++;
    } else {
      coverage[shard]++;
    }
  }
  for (ShardId s = 0; s < 4; ++s) EXPECT_EQ(coverage[s], 2) << "shard " << s;
  // Every node subscribes to the replica shard.
  EXPECT_EQ(replica_subs.size(), 4u);
}

TEST(PlanLayoutTest, SubclustersEachCoverAllShards) {
  Catalog catalog;
  CatalogTxn txn;
  ShardingConfig cfg;
  cfg.num_segment_shards = 3;
  txn.SetSharding(cfg);
  ASSERT_TRUE(catalog.Commit(txn).ok());

  std::vector<NodeDef> nodes;
  for (Oid i = 1; i <= 6; ++i) {
    nodes.push_back(NodeDef{i, "n" + std::to_string(i), i <= 3 ? "a" : "b"});
  }
  auto layout = PlanSubscriptionLayout(*catalog.snapshot(), nodes, 2);
  std::map<std::string, std::set<ShardId>> covered;
  for (const auto& [node, shard] : layout) {
    if (shard == 3) continue;  // Replica shard.
    covered[node <= 3 ? "a" : "b"].insert(shard);
  }
  EXPECT_EQ(covered["a"].size(), 3u);
  EXPECT_EQ(covered["b"].size(), 3u);
}

TEST(PlanLayoutTest, FewerNodesThanKClamps) {
  Catalog catalog;
  CatalogTxn txn;
  ShardingConfig cfg;
  cfg.num_segment_shards = 2;
  txn.SetSharding(cfg);
  ASSERT_TRUE(catalog.Commit(txn).ok());
  std::vector<NodeDef> nodes = {NodeDef{1, "only", ""}};
  auto layout = PlanSubscriptionLayout(*catalog.snapshot(), nodes, 3);
  // One node: it simply subscribes to everything once.
  EXPECT_EQ(layout.size(), 3u);  // 2 segment shards + replica shard.
}

}  // namespace
}  // namespace eon
