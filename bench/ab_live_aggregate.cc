// Ablation (Section 2.1): live aggregate projections "can be used to
// dramatically speed up query performance for a variety of aggregation,
// top-K, and distinct operations" in exchange for restrictions on base
// table updates.
//
// Compares the dashboard-style aggregation with and without a live
// aggregate projection, across dataset sizes: rows visited and measured
// runtime.

#include "bench/bench_util.h"
#include "engine/ddl.h"
#include "engine/session.h"

namespace eon {
namespace bench {
namespace {

int Run() {
  printf("# Ablation: live aggregate projection vs base-table aggregation\n");
  printf("%-12s %14s %14s %12s %12s %10s\n", "base_rows", "base_visited",
         "lap_visited", "base_ms", "lap_ms", "speedup");

  for (double scale : {0.5, 1.0, 2.0, 4.0}) {
    auto fixture = MakeEonFixture(3, 3, scale);
    if (fixture == nullptr) return 1;

    // The recurring dashboard aggregation: revenue by ship mode.
    QuerySpec q;
    q.scan.table = "lineitem";
    q.scan.columns = {"l_shipmode", "l_extendedprice"};
    q.group_by = {"l_shipmode"};
    q.aggregates = {{AggFn::kCount, "", "n"},
                    {AggFn::kSum, "l_extendedprice", "rev"},
                    {AggFn::kMax, "l_extendedprice", "peak"}};
    q.order_by = "l_shipmode";

    EonSession session(fixture->cluster.get());
    (void)session.Execute(q);  // Warm caches.
    uint64_t base_visited = 0;
    MeasuredMicros base = Measure(&fixture->clock, [&] {
      auto r = session.Execute(q);
      if (r.ok()) base_visited = r->stats.scan.rows_visited;
    });

    auto lap = CreateLiveAggregateProjection(
        fixture->cluster.get(), "lineitem", "lineitem_by_mode",
        {"l_shipmode"},
        {{AggFn::kCount, ""},
         {AggFn::kSum, "l_extendedprice"},
         {AggFn::kMax, "l_extendedprice"}});
    if (!lap.ok()) {
      fprintf(stderr, "lap create failed: %s\n",
              lap.status().ToString().c_str());
      return 1;
    }
    (void)session.Execute(q);  // Warm the LAP path.
    uint64_t lap_visited = 0;
    bool used_lap = false;
    MeasuredMicros fast = Measure(&fixture->clock, [&] {
      auto r = session.Execute(q);
      if (r.ok()) {
        lap_visited = r->stats.scan.rows_visited;
        used_lap = r->stats.used_live_aggregate;
      }
    });
    if (!used_lap) {
      fprintf(stderr, "rewrite did not engage\n");
      return 1;
    }

    printf("%-12zu %14llu %14llu %12.2f %12.2f %9.1fx\n",
           fixture->data.lineitems.size(),
           static_cast<unsigned long long>(base_visited),
           static_cast<unsigned long long>(lap_visited), base.total_ms(),
           fast.total_ms(),
           fast.total() > 0
               ? static_cast<double>(base.total()) /
                     static_cast<double>(fast.total())
               : 0.0);
  }
  printf("# shape check: LAP rows visited stay ~constant (one partial per "
         "group per container) while base scans grow with the data\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace eon

int main() { return eon::bench::Run(); }
