#ifndef EON_WOS_WOS_H_
#define EON_WOS_WOS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "catalog/objects.h"
#include "columnar/types.h"
#include "common/result.h"
#include "common/slice.h"
#include "wal/wal.h"

namespace eon {

/// ---------------------------------------------------------------------
/// WAL payload codecs. The WAL frames and orders records (wal/wal.h); the
/// WOS defines what is inside them. Insert payloads are self-describing
/// (each value carries its type tag) so replay needs no catalog schema.
/// ---------------------------------------------------------------------

struct WosInsertPayload {
  Oid table_oid = kInvalidOid;
  std::vector<Row> rows;
};

/// Address of one WOS-resident row: the insert batch's LSN plus the row's
/// index within the batch. Stable across replay because LSNs are.
struct WosRowRef {
  uint64_t lsn = 0;
  uint32_t row = 0;
};

struct WosTombstonePayload {
  Oid table_oid = kInvalidOid;
  uint64_t version = 0;  ///< Catalog version of the DELETE.
  std::vector<WosRowRef> refs;
};

struct WosFlushPayload {
  Oid table_oid = kInvalidOid;
  uint64_t up_to_lsn = 0;  ///< Insert batches <= this LSN moved to ROS.
  uint64_t version = 0;    ///< Catalog version of the moveout commit.
};

std::string EncodeWosInsert(Oid table_oid, const std::vector<Row>& rows);
Result<WosInsertPayload> DecodeWosInsert(Slice payload);
std::string EncodeWosTombstone(const WosTombstonePayload& p);
Result<WosTombstonePayload> DecodeWosTombstone(Slice payload);
std::string EncodeWosFlush(const WosFlushPayload& p);
Result<WosFlushPayload> DecodeWosFlush(Slice payload);

/// One applied insert batch. Rows are shared immutably; per-row tombstone
/// versions and the batch flush version control visibility:
///   batch visible at snapshot v  iff  flush_version == 0 || flush_version > v
///   row   live    at snapshot v  iff  tombstone_version == 0
///                                     || tombstone_version > v
/// A flushed batch is retained (invisible to new snapshots, visible to
/// snapshots older than the flush) until ReleaseFlushed proves no running
/// query can still need it.
struct WosBatch {
  uint64_t lsn = 0;
  Oid table_oid = kInvalidOid;
  std::shared_ptr<const std::vector<Row>> rows;
  std::vector<uint64_t> tombstone_versions;  ///< Parallel to rows; 0 = live.
  uint64_t flush_version = 0;                ///< 0 = WOS-only.
  uint64_t bytes = 0;                        ///< Sum of RowBytes.
};

/// Per-table snapshot for the `system_wos` virtual table.
struct WosTableStats {
  Oid table_oid = kInvalidOid;
  uint64_t batches = 0;
  uint64_t rows = 0;             ///< All retained rows (incl. flushed).
  uint64_t unflushed_rows = 0;   ///< Rows not yet moved to ROS.
  uint64_t flushed_batches = 0;  ///< Retained awaiting ReleaseFlushed.
  uint64_t tombstoned_rows = 0;
  uint64_t bytes = 0;
  uint64_t min_lsn = 0;
  uint64_t max_lsn = 0;
};

/// Per-node in-memory write-optimized store (C-Store WOS, Taurus log-first
/// durability): the apply target of the node's WalWriter. All mutation
/// flows through Apply — the group-commit leader calls it in LSN order
/// after the group's object is durable, and recovery calls it with the
/// replayed records, so runtime state and post-crash state are built by
/// the same code path.
///
/// Locking: `gate` (outer) serializes moveout/delete windows against
/// readers; `data` (inner) protects the batch map. Cross-node mutators
/// (moveout, DELETE) take every node's gate in node-oid order, then run
/// {catalog commit, kFlush/kTombstone append + WAL commit} while holding
/// them; the executor takes the same gates (same order) around its
/// {serving-catalog snapshot, CollectVisibleLocked} capture, so a query
/// either observes the WOS entirely before the catalog commit
/// (flush_version still 0, new containers absent from its snapshots) or
/// entirely after (flush_version set, so the rule above excludes exactly
/// the rows its snapshots read from ROS) — never both, never neither.
/// Apply only takes `data`, which keeps the WAL leader (wal mutex ->
/// data) deadlock-free against a gate holder committing its marker
/// records (gate -> wal mutex -> data).
class Wos {
 public:
  Wos() = default;
  Wos(const Wos&) = delete;
  Wos& operator=(const Wos&) = delete;

  /// Install one WAL record (insert / tombstone / flush marker). Invoked
  /// by the WAL apply callback and by recovery replay. Unknown batch or
  /// row references (already truncated/released) are ignored.
  void Apply(const WalRecord& record);

  /// Rows of `table_oid` visible at snapshot `version`, in LSN order.
  /// Takes the gate, so it serializes against moveout windows.
  std::vector<Row> CollectVisible(Oid table_oid, uint64_t version) const;

  /// CollectVisible for a caller already holding this node's gate (the
  /// executor collects every node's WOS plus the serving nodes' catalog
  /// snapshots under one gate hold, so the two sides cannot straddle a
  /// moveout commit).
  std::vector<Row> CollectVisibleLocked(Oid table_oid,
                                        uint64_t version) const;

  /// Unflushed live rows + the highest unflushed batch LSN (0 = nothing
  /// to move out). Caller (moveout) must hold the gate.
  struct Unflushed {
    std::vector<Row> rows;
    uint64_t up_to_lsn = 0;
  };
  Unflushed GatherUnflushed(Oid table_oid) const;

  /// Tables with at least one unflushed batch (TupleMover scan).
  std::vector<Oid> TablesWithUnflushed() const;
  /// Unflushed row count for one table (moveout threshold checks).
  uint64_t UnflushedRows(Oid table_oid) const;
  /// Lowest LSN of any unflushed batch across ALL tables, or 0 when none.
  /// The WAL is shared by every table on the node, so truncation after a
  /// per-table moveout must stay strictly below this watermark.
  uint64_t MinUnflushedLsn() const;

  /// Refs of unflushed live rows matching `pred` (DELETE planning).
  /// Caller must hold the gate so moveout cannot flush them mid-delete.
  /// When `rows_out` is non-null the matching rows are appended to it in
  /// the same order as the refs — UPDATE collects its pre-images in the
  /// SAME pass that picks the tombstone targets, so a row inserted
  /// concurrently is either matched-and-tombstoned or neither.
  std::vector<WosRowRef> FindRows(Oid table_oid,
                                  const std::function<bool(const Row&)>& pred,
                                  std::vector<Row>* rows_out = nullptr) const;

  /// Acquire this node's moveout/delete gate. Cross-node mutators collect
  /// gates from every node in node-oid order before committing.
  std::unique_lock<std::mutex> LockGate() const;

  /// Drop flushed batches no running query can still see (every running
  /// snapshot has version >= flush_version). Returns batches dropped.
  size_t ReleaseFlushed(uint64_t min_running_version);

  /// Wipe all state (node process termination loses its memtable; replay
  /// rebuilds it on restart).
  void Clear();

  std::vector<WosTableStats> SnapshotStats() const;
  uint64_t total_rows() const;
  uint64_t total_unflushed_rows() const;

 private:
  struct TableWos {
    std::vector<WosBatch> batches;  ///< LSN-ascending (apply order).
  };

  mutable std::mutex gate_mu_;
  mutable std::mutex data_mu_;
  std::map<Oid, TableWos> tables_;
};

/// Mirror of the load path's row placement (dml.cc SplitRows) for the
/// read path: project full-width table rows onto `proj`, bucket by shard,
/// and within each shard order groups by ascending partition value with a
/// stable sort on the projection's sort columns inside each group — the
/// exact row stream a moveout of these rows would persist per shard, so
/// WOS+ROS union scans are bit-identical to a flush-then-query oracle.
std::map<ShardId, std::vector<Row>> GroupWosRowsForProjection(
    const ShardingConfig& sharding, const ProjectionDef& proj,
    const TableDef& table, const std::vector<Row>& table_rows);

}  // namespace eon

#endif  // EON_WOS_WOS_H_
