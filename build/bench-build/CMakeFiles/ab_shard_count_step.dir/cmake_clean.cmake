file(REMOVE_RECURSE
  "../bench/ab_shard_count_step"
  "../bench/ab_shard_count_step.pdb"
  "CMakeFiles/ab_shard_count_step.dir/ab_shard_count_step.cc.o"
  "CMakeFiles/ab_shard_count_step.dir/ab_shard_count_step.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ab_shard_count_step.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
