#include "columnar/encoding.h"

#include <algorithm>
#include <map>

#include "columnar/value_codec.h"
#include "common/codec.h"

namespace eon {

const char* EncodingName(Encoding e) {
  switch (e) {
    case Encoding::kPlain: return "plain";
    case Encoding::kRle: return "rle";
    case Encoding::kDict: return "dict";
    case Encoding::kDeltaVarint: return "delta";
  }
  return "?";
}

namespace {

void EncodePlain(const std::vector<Value>& values, std::string* out) {
  for (const Value& v : values) PutValue(out, v);
}

Status DecodePlain(Slice* in, DataType type, uint64_t count,
                   std::vector<Value>* out) {
  for (uint64_t i = 0; i < count; ++i) {
    Value v;
    EON_RETURN_IF_ERROR(GetValue(in, type, &v));
    out->push_back(std::move(v));
  }
  return Status::OK();
}

void EncodeRle(const std::vector<Value>& values, std::string* out) {
  size_t i = 0;
  while (i < values.size()) {
    size_t j = i + 1;
    while (j < values.size() && values[j] == values[i]) ++j;
    PutVarint64(out, j - i);
    PutValue(out, values[i]);
    i = j;
  }
}

Status DecodeRle(Slice* in, DataType type, uint64_t count,
                 std::vector<Value>* out) {
  uint64_t produced = 0;
  while (produced < count) {
    uint64_t run;
    EON_RETURN_IF_ERROR(GetVarint64(in, &run));
    if (run == 0 || produced + run > count) {
      return Status::Corruption("RLE run overflow");
    }
    Value v;
    EON_RETURN_IF_ERROR(GetValue(in, type, &v));
    for (uint64_t k = 0; k < run; ++k) out->push_back(v);
    produced += run;
  }
  return Status::OK();
}

void EncodeDict(const std::vector<Value>& values, std::string* out) {
  // Codes: 0 = NULL, k>0 = dictionary entry k-1.
  std::map<Value, uint32_t> dict;  // Value has operator<.
  std::vector<Value> entries;
  std::vector<uint32_t> codes;
  codes.reserve(values.size());
  for (const Value& v : values) {
    if (v.is_null()) {
      codes.push_back(0);
      continue;
    }
    auto [it, inserted] =
        dict.emplace(v, static_cast<uint32_t>(entries.size() + 1));
    if (inserted) entries.push_back(v);
    codes.push_back(it->second);
  }
  PutVarint64(out, entries.size());
  for (const Value& v : entries) PutValue(out, v);
  for (uint32_t c : codes) PutVarint32(out, c);
}

Status DecodeDict(Slice* in, DataType type, uint64_t count,
                  std::vector<Value>* out) {
  uint64_t dict_size;
  EON_RETURN_IF_ERROR(GetVarint64(in, &dict_size));
  std::vector<Value> entries;
  entries.reserve(dict_size);
  for (uint64_t i = 0; i < dict_size; ++i) {
    Value v;
    EON_RETURN_IF_ERROR(GetValue(in, type, &v));
    entries.push_back(std::move(v));
  }
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t code;
    EON_RETURN_IF_ERROR(GetVarint32(in, &code));
    if (code == 0) {
      out->push_back(Value::Null(type));
    } else if (code <= entries.size()) {
      out->push_back(entries[code - 1]);
    } else {
      return Status::Corruption("dictionary code out of range");
    }
  }
  return Status::OK();
}

Status EncodeDelta(const std::vector<Value>& values, std::string* out) {
  int64_t prev = 0;
  for (const Value& v : values) {
    if (v.is_null() || v.type() != DataType::kInt64) {
      return Status::InvalidArgument("delta encoding needs non-null int64");
    }
    PutVarint64Signed(out, v.int_value() - prev);
    prev = v.int_value();
  }
  return Status::OK();
}

Status DecodeDelta(Slice* in, uint64_t count, std::vector<Value>* out) {
  int64_t prev = 0;
  for (uint64_t i = 0; i < count; ++i) {
    int64_t delta;
    EON_RETURN_IF_ERROR(GetVarint64Signed(in, &delta));
    prev += delta;
    out->push_back(Value::Int(prev));
  }
  return Status::OK();
}

Status DecodePlainSelected(Slice* in, DataType type, uint64_t count,
                           const uint8_t* sel, std::vector<Value>* out,
                           uint64_t* decoded) {
  for (uint64_t i = 0; i < count; ++i) {
    if (sel != nullptr && !sel[i]) {
      EON_RETURN_IF_ERROR(SkipValue(in, type));
      continue;
    }
    Value v;
    EON_RETURN_IF_ERROR(GetValue(in, type, &v));
    out->push_back(std::move(v));
    ++*decoded;
  }
  return Status::OK();
}

Status DecodeRleSelected(Slice* in, DataType type, uint64_t count,
                         const uint8_t* sel, std::vector<Value>* out,
                         uint64_t* decoded) {
  uint64_t produced = 0;
  while (produced < count) {
    uint64_t run;
    EON_RETURN_IF_ERROR(GetVarint64(in, &run));
    if (run == 0 || produced + run > count) {
      return Status::Corruption("RLE run overflow");
    }
    Value v;
    EON_RETURN_IF_ERROR(GetValue(in, type, &v));
    ++*decoded;  // One parse per run, however long the run is.
    for (uint64_t k = 0; k < run; ++k) {
      if (sel == nullptr || sel[produced + k]) {
        out->push_back(v);
        ++*decoded;
      }
    }
    produced += run;
  }
  return Status::OK();
}

Status DecodeDictSelected(Slice* in, DataType type, uint64_t count,
                          const uint8_t* sel, std::vector<Value>* out,
                          uint64_t* decoded) {
  uint64_t dict_size;
  EON_RETURN_IF_ERROR(GetVarint64(in, &dict_size));
  std::vector<Value> entries;
  entries.reserve(dict_size);
  for (uint64_t i = 0; i < dict_size; ++i) {
    Value v;
    EON_RETURN_IF_ERROR(GetValue(in, type, &v));
    entries.push_back(std::move(v));
    ++*decoded;
  }
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t code;
    EON_RETURN_IF_ERROR(GetVarint32(in, &code));
    if (sel != nullptr && !sel[i]) continue;
    if (code == 0) {
      out->push_back(Value::Null(type));
    } else if (code <= entries.size()) {
      out->push_back(entries[code - 1]);
    } else {
      return Status::Corruption("dictionary code out of range");
    }
    ++*decoded;
  }
  return Status::OK();
}

Status DecodeDeltaSelected(Slice* in, uint64_t count, const uint8_t* sel,
                           std::vector<Value>* out, uint64_t* decoded) {
  // Deltas chain, so every varint is read; only selected rows materialize.
  int64_t prev = 0;
  for (uint64_t i = 0; i < count; ++i) {
    int64_t delta;
    EON_RETURN_IF_ERROR(GetVarint64Signed(in, &delta));
    prev += delta;
    if (sel == nullptr || sel[i]) {
      out->push_back(Value::Int(prev));
      ++*decoded;
    }
  }
  return Status::OK();
}

}  // namespace

Result<ChunkView> ParseChunk(Slice chunk) {
  if (chunk.empty()) return Status::Corruption("empty chunk");
  const uint8_t enc_byte = static_cast<uint8_t>(chunk[0]);
  chunk.remove_prefix(1);
  if (enc_byte > static_cast<uint8_t>(Encoding::kDeltaVarint)) {
    return Status::Corruption("unknown encoding byte");
  }
  ChunkView view;
  view.encoding = static_cast<Encoding>(enc_byte);
  EON_RETURN_IF_ERROR(GetVarint64(&chunk, &view.count));
  view.payload = chunk;
  return view;
}

Status DecodeChunkSelected(const ChunkView& chunk, DataType type,
                           const uint8_t* sel, std::vector<Value>* out,
                           uint64_t* values_decoded) {
  uint64_t decoded = 0;
  if (sel == nullptr) out->reserve(out->size() + chunk.count);
  Slice in = chunk.payload;
  Status s;
  switch (chunk.encoding) {
    case Encoding::kPlain:
      s = DecodePlainSelected(&in, type, chunk.count, sel, out, &decoded);
      break;
    case Encoding::kRle:
      s = DecodeRleSelected(&in, type, chunk.count, sel, out, &decoded);
      break;
    case Encoding::kDict:
      s = DecodeDictSelected(&in, type, chunk.count, sel, out, &decoded);
      break;
    case Encoding::kDeltaVarint:
      s = DecodeDeltaSelected(&in, chunk.count, sel, out, &decoded);
      break;
  }
  if (values_decoded != nullptr) *values_decoded += decoded;
  return s;
}

Result<bool> EvalChunkCmp(const ChunkView& chunk, DataType type, CmpOp op,
                          const Value& literal, uint8_t* sel,
                          uint64_t* values_evaluated) {
  Slice in = chunk.payload;
  uint64_t evals = 0;
  switch (chunk.encoding) {
    case Encoding::kRle: {
      // One comparison per run; the verdict fans across the run length.
      uint64_t produced = 0;
      while (produced < chunk.count) {
        uint64_t run;
        EON_RETURN_IF_ERROR(GetVarint64(&in, &run));
        if (run == 0 || produced + run > chunk.count) {
          return Status::Corruption("RLE run overflow");
        }
        Value v;
        EON_RETURN_IF_ERROR(GetValue(&in, type, &v));
        const uint8_t verdict = CmpMatches(v, op, literal) ? 1 : 0;
        ++evals;
        std::fill(sel + produced, sel + produced + run, verdict);
        produced += run;
      }
      if (values_evaluated != nullptr) *values_evaluated += evals;
      return true;
    }
    case Encoding::kDict: {
      // One comparison per distinct entry, translated into a code-set and
      // applied to the code stream. Code 0 (NULL) never matches.
      uint64_t dict_size;
      EON_RETURN_IF_ERROR(GetVarint64(&in, &dict_size));
      std::vector<uint8_t> match(dict_size + 1, 0);
      for (uint64_t k = 0; k < dict_size; ++k) {
        Value v;
        EON_RETURN_IF_ERROR(GetValue(&in, type, &v));
        match[k + 1] = CmpMatches(v, op, literal) ? 1 : 0;
        ++evals;
      }
      for (uint64_t i = 0; i < chunk.count; ++i) {
        uint32_t code;
        EON_RETURN_IF_ERROR(GetVarint32(&in, &code));
        if (code > dict_size) {
          return Status::Corruption("dictionary code out of range");
        }
        sel[i] = match[code];
      }
      if (values_evaluated != nullptr) *values_evaluated += evals;
      return true;
    }
    case Encoding::kPlain:
    case Encoding::kDeltaVarint:
      return false;  // No encoded-eval path; caller decodes.
  }
  return Status::Corruption("unknown encoding");
}

Result<std::string> EncodeChunk(const std::vector<Value>& values,
                                DataType type, Encoding encoding) {
  (void)type;  // Part of the API contract; encoders read value tags.
  std::string out;
  out.push_back(static_cast<char>(encoding));
  PutVarint64(&out, values.size());
  switch (encoding) {
    case Encoding::kPlain:
      EncodePlain(values, &out);
      break;
    case Encoding::kRle:
      EncodeRle(values, &out);
      break;
    case Encoding::kDict:
      EncodeDict(values, &out);
      break;
    case Encoding::kDeltaVarint:
      EON_RETURN_IF_ERROR(EncodeDelta(values, &out));
      break;
  }
  return out;
}

Status DecodeChunk(Slice data, DataType type, std::vector<Value>* out) {
  if (data.empty()) return Status::Corruption("empty chunk");
  uint8_t enc_byte = static_cast<uint8_t>(data[0]);
  data.remove_prefix(1);
  if (enc_byte > static_cast<uint8_t>(Encoding::kDeltaVarint)) {
    return Status::Corruption("unknown encoding byte");
  }
  Encoding encoding = static_cast<Encoding>(enc_byte);
  uint64_t count;
  EON_RETURN_IF_ERROR(GetVarint64(&data, &count));
  out->reserve(out->size() + count);
  switch (encoding) {
    case Encoding::kPlain:
      return DecodePlain(&data, type, count, out);
    case Encoding::kRle:
      return DecodeRle(&data, type, count, out);
    case Encoding::kDict:
      return DecodeDict(&data, type, count, out);
    case Encoding::kDeltaVarint:
      return DecodeDelta(&data, count, out);
  }
  return Status::Corruption("unknown encoding");
}

Encoding ChooseEncoding(const std::vector<Value>& values, DataType type) {
  if (values.empty()) return Encoding::kPlain;
  const size_t n = values.size();

  // Statistics cost is bounded: exact single pass up to kExactThreshold,
  // larger chunks examine kSampleWindows evenly spaced contiguous windows.
  // Windows (not stride-picked elements) because run length and sortedness
  // are adjacency properties — they need consecutive pairs.
  constexpr size_t kExactThreshold = 2048;
  constexpr size_t kSampleWindows = 16;
  constexpr size_t kWindowSize = kExactThreshold / kSampleWindows;

  size_t breaks = 0;    // Adjacent pairs whose values differ.
  size_t pairs = 0;     // Adjacent pairs examined.
  size_t examined = 0;  // Total values examined.
  bool sorted = true;
  bool has_null = false;
  std::map<Value, int> distinct;
  const size_t kDistinctCap = std::min(n, kExactThreshold) / 4 + 2;
  bool low_cardinality = true;

  auto scan_window = [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      if (values[i].is_null()) has_null = true;
      if (i > begin) {
        ++pairs;
        if (values[i] != values[i - 1]) ++breaks;
        if (values[i].Compare(values[i - 1]) < 0) sorted = false;
      }
      ++examined;
      if (low_cardinality) {
        distinct[values[i]]++;
        if (distinct.size() > kDistinctCap) low_cardinality = false;
      }
    }
  };

  if (n <= kExactThreshold) {
    scan_window(0, n);
  } else {
    size_t prev_end = 0;
    for (size_t w = 0; w < kSampleWindows; ++w) {
      const size_t begin = w * (n - kWindowSize) / (kSampleWindows - 1);
      // Cross-window ordering still informs sortedness (a gap pair is not
      // adjacent, so it does not count toward the run estimate).
      if (w > 0 && values[begin].Compare(values[prev_end - 1]) < 0) {
        sorted = false;
      }
      scan_window(begin, begin + kWindowSize);
      prev_end = begin + kWindowSize;
    }
  }

  // Estimated run count for the full chunk from the sampled break rate;
  // exact when every pair was examined.
  const size_t est_runs =
      pairs == 0 ? n : 1 + breaks * (n - 1) / pairs;

  // Long runs → RLE dominates everything.
  if (est_runs <= n / 8 + 1) return Encoding::kRle;
  // The sample can miss a null; EncodeChunk then rejects delta and the
  // writer falls back to kPlain.
  if (type == DataType::kInt64 && !has_null && sorted) {
    return Encoding::kDeltaVarint;
  }
  if (low_cardinality && distinct.size() <= examined / 4 + 1) {
    return Encoding::kDict;
  }
  return Encoding::kPlain;
}

}  // namespace eon
