#include "cluster/cluster.h"

#include <algorithm>
#include <cstdlib>
#include <thread>

#include "common/logging.h"

namespace eon {

namespace {

const std::set<SubscriptionState> kServingStates = {
    SubscriptionState::kActive, SubscriptionState::kRemoving};

/// Shard filter for applying one log record to `target`: the node's
/// currently subscribed shards plus any shard this very record subscribes
/// it to (so a subscription + first metadata in one txn still lands).
std::set<ShardId> FilterFor(const Node& target, const TxnLogRecord& record) {
  std::set<ShardId> filter = target.AllSubscribedShards();
  for (const CatalogOp& op : record.ops) {
    if (op.type != CatalogOp::Type::kPutSubscription) continue;
    Slice payload(op.payload);
    Result<Subscription> sub = DeserializeSubscription(&payload);
    if (sub.ok() && sub->node_oid == target.oid()) filter.insert(sub->shard);
  }
  return filter;
}

/// One row in the `dc_subscription_events` system table, recorded into
/// the affected node's collector (Figure 4 lifecycle transitions).
void RecordSubscriptionDc(Node* target, ShardId shard, const char* from,
                          const char* to, const char* reason) {
  if (target == nullptr) return;
  obs::DcSubscriptionEvent e;
  e.shard = shard;
  e.from_state = from;
  e.to_state = to;
  e.reason = reason;
  target->dc()->RecordSubscription(std::move(e));
}

}  // namespace

EonCluster::EonCluster(ObjectStore* shared_storage, Clock* clock,
                       const ClusterOptions& options)
    : shared_(shared_storage), clock_(clock), options_(options) {
  // Node caches inherit the cluster's registry unless set explicitly.
  if (options_.node.cache.registry == nullptr) {
    options_.node.cache.registry = options_.registry;
  }
  obs::MetricsRegistry* reg = obs::OrDefault(options_.registry);
  metrics_.commits = reg->GetCounter("eon_cluster_commits_total");
  metrics_.files_reaped = reg->GetCounter("eon_cluster_files_reaped_total");
  metrics_.pending_deletes = reg->GetGauge("eon_cluster_pending_deletes");

  ThreadPool::Options pool_options;
  pool_options.num_threads = ResolveExecThreads(options_.exec_threads);
  pool_options.metrics_name = options_.db_name + "-exec";
  pool_options.registry = options_.registry;
  exec_pool_ = std::make_unique<ThreadPool>(pool_options);

  IoPool::Options io_options;
  io_options.num_threads = ResolveIoThreads(options_.io_threads);
  io_options.metrics_name = options_.db_name + "-io";
  io_options.registry = options_.registry;
  io_pool_ = std::make_unique<IoPool>(io_options);
  // Every node cache fetches through the shared I/O pool (BuildNodes
  // copies options_.node into each Node).
  options_.node.cache.io_pool = io_pool_.get();
  prefetch_depth_ = ResolvePrefetchDepth(options_.prefetch_depth);
  pushdown_mode_ = ResolvePushdown(options_.pushdown);
  pushdown_selectivity_cutoff_ =
      ResolvePushdownCutoff(options_.pushdown_selectivity_cutoff);
  trace_sample_ = ResolveTraceSample(options_.trace_sample);
  // Resolve the WOS fast-path knobs into the node options BuildNodes
  // copies into every node.
  options_.node.wos.enabled = ResolveWos(options_.wos);
  options_.node.wos.group_commit_micros =
      ResolveGroupCommitMicros(options_.group_commit_micros);
  options_.node.wos.flush_rows = ResolveWosFlushRows(options_.wos_flush_rows);
}

bool EonCluster::ResolveWos(int configured) {
  if (configured >= 0) return configured != 0;
  if (const char* env = std::getenv("EON_WOS")) {
    const std::string v(env);
    if (v == "off" || v == "0" || v == "false") return false;
    return true;
  }
  return true;
}

int64_t EonCluster::ResolveGroupCommitMicros(int64_t configured) {
  if (configured >= 0) return configured;
  if (const char* env = std::getenv("EON_GROUP_COMMIT_MICROS")) {
    char* end = nullptr;
    const long long v = std::strtoll(env, &end, 10);
    if (end != env && v >= 0) return static_cast<int64_t>(v);
  }
  return 200;
}

uint64_t EonCluster::ResolveWosFlushRows(int64_t configured) {
  if (configured >= 0) return static_cast<uint64_t>(configured);
  if (const char* env = std::getenv("EON_WOS_FLUSH_ROWS")) {
    char* end = nullptr;
    const long long v = std::strtoll(env, &end, 10);
    if (end != env && v > 0) return static_cast<uint64_t>(v);
  }
  return 4096;
}

int EonCluster::ResolveExecThreads(int configured) {
  if (configured > 0) return configured;
  if (const char* env = std::getenv("EON_EXEC_THREADS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(std::min(hw == 0 ? 1u : hw, 8u));
}

int EonCluster::ResolveIoThreads(int configured) {
  if (configured > 0) return configured;
  if (const char* env = std::getenv("EON_IO_THREADS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return 4;
}

int EonCluster::ResolvePrefetchDepth(int configured) {
  if (configured >= 0) return configured;
  if (const char* env = std::getenv("EON_PREFETCH_DEPTH")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && v >= 0) return static_cast<int>(v);
  }
  return 4;
}

int EonCluster::ResolvePushdown(int configured) {
  if (configured >= 0) return configured;
  if (const char* env = std::getenv("EON_PUSHDOWN")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && v >= 0 && v <= 2) return static_cast<int>(v);
  }
  return 0;
}

double EonCluster::ResolveTraceSample(double configured) {
  if (configured >= 0 && configured <= 1.0) return configured;
  if (configured <= ClusterOptions::kTraceDisabled) return -1.0;
  if (const char* env = std::getenv("EON_TRACE_SAMPLE")) {
    char* end = nullptr;
    const double v = std::strtod(env, &end);
    if (end != env) return v < 0 ? -1.0 : std::min(v, 1.0);
  }
  return 0.0;  // Armed: collect spans, retain slow/forced traces only.
}

double EonCluster::ResolvePushdownCutoff(double configured) {
  if (configured >= 0) return configured;
  if (const char* env = std::getenv("EON_PUSHDOWN_SELECTIVITY_CUTOFF")) {
    char* end = nullptr;
    const double v = std::strtod(env, &end);
    if (end != env && v >= 0 && v <= 1.0) return v;
  }
  return 0.35;
}

Status EonCluster::BuildNodes(const std::vector<NodeSpec>& specs) {
  if (specs.empty()) return Status::InvalidArgument("cluster needs nodes");
  for (size_t i = 0; i < specs.size(); ++i) {
    nodes_.push_back(std::make_unique<Node>(
        static_cast<Oid>(i + 1), specs[i].name, specs[i].subcluster, shared_,
        clock_, options_.node, options_.seed + i * 7919));
    // Replay any surviving WAL into a fresh WOS: a no-op on first
    // creation, the crash-recovery path on revive.
    EON_RETURN_IF_ERROR(nodes_.back()->RecoverWos());
  }
  return Status::OK();
}

Result<std::unique_ptr<EonCluster>> EonCluster::Create(
    ObjectStore* shared_storage, Clock* clock, const ClusterOptions& options,
    const std::vector<NodeSpec>& specs) {
  if (options.num_shards == 0) {
    return Status::InvalidArgument("num_shards must be positive");
  }
  auto cluster = std::unique_ptr<EonCluster>(
      new EonCluster(shared_storage, clock, options));
  EON_RETURN_IF_ERROR(cluster->BuildNodes(specs));
  cluster->incarnation_ =
      IncarnationId::Generate(options.seed, options.seed ^ 0xE0ull);
  for (auto& node : cluster->nodes_) {
    node->SetIncarnation(cluster->incarnation_);
  }

  // Bootstrap transaction: sharding config + node registry.
  CatalogTxn boot;
  ShardingConfig sharding;
  sharding.num_segment_shards = options.num_shards;
  boot.SetSharding(sharding);
  for (size_t i = 0; i < specs.size(); ++i) {
    NodeDef def;
    def.oid = static_cast<Oid>(i + 1);
    def.name = specs[i].name;
    def.subcluster = specs[i].subcluster;
    boot.PutNode(def);
  }
  {
    Result<uint64_t> v = cluster->CommitDistributed(1, boot);
    if (!v.ok()) return v.status();
  }

  // Initial subscription layout: all ACTIVE at creation (data is empty, so
  // there is nothing to transfer or warm).
  auto snapshot = cluster->nodes_[0]->catalog()->snapshot();
  std::vector<NodeDef> defs;
  for (const auto& [oid, def] : snapshot->nodes) defs.push_back(def);
  CatalogTxn subs;
  for (const auto& [node_oid, shard] :
       PlanSubscriptionLayout(*snapshot, defs, options.k_safety)) {
    subs.PutSubscription(
        Subscription{node_oid, shard, SubscriptionState::kActive});
  }
  {
    Result<uint64_t> v = cluster->CommitDistributed(1, subs);
    if (!v.ok()) return v.status();
  }

  EON_RETURN_IF_ERROR(cluster->SyncAll(/*force_checkpoint=*/true));
  EON_RETURN_IF_ERROR(cluster->UpdateClusterInfo());
  return cluster;
}

Node* EonCluster::node(Oid oid) {
  for (auto& n : nodes_) {
    if (n->oid() == oid) return n.get();
  }
  return nullptr;
}

Node* EonCluster::node_by_name(const std::string& name) {
  for (auto& n : nodes_) {
    if (n->name() == name) return n.get();
  }
  return nullptr;
}

std::set<Oid> EonCluster::up_node_oids() const {
  std::set<Oid> out;
  for (const auto& n : nodes_) {
    if (n->is_up()) out.insert(n->oid());
  }
  return out;
}

Node* EonCluster::AnyUpNode() {
  for (auto& n : nodes_) {
    if (n->is_up()) return n.get();
  }
  return nullptr;
}

ShardingConfig EonCluster::sharding() const {
  return nodes_.empty() ? ShardingConfig{}
                        : nodes_.front()->catalog()->snapshot()->sharding;
}

Result<uint64_t> EonCluster::CommitDistributed(
    Oid coordinator, const CatalogTxn& txn,
    const std::map<ShardId, std::set<Oid>>* observed_subscribers) {
  if (read_only_) {
    return Status::NotSupported(
        "this cluster is attached read-only (database sharing)");
  }
  if (shutdown_) return Status::Unavailable("cluster is shut down");
  Node* coord = node(coordinator);
  if (coord == nullptr || !coord->is_up()) {
    return Status::Unavailable("coordinator node is down");
  }

  // Commit point: validation, the coordinator's catalog commit, and the
  // replication of its log record to peers are one atomic section, so
  // records reach every peer in version order even when loads commit
  // concurrently (the prepare work above this point ran lock-free).
  std::lock_guard<std::mutex> commit_lock(commit_mu_);

  // Subscription invariant (Sections 3.2, 4.5): metadata was eagerly
  // pushed to the subscribers observed at planning time. If a shard
  // gained a subscriber since, that subscriber lacks the metadata; if a
  // participant dropped its subscription, it wrote data into a shard it
  // no longer serves. Either way the transaction rolls back.
  if (observed_subscribers != nullptr) {
    auto snapshot = coord->catalog()->snapshot();
    const std::set<SubscriptionState> all_states = {
        SubscriptionState::kPending, SubscriptionState::kPassive,
        SubscriptionState::kActive, SubscriptionState::kRemoving};
    for (const auto& [shard, observed] : *observed_subscribers) {
      std::vector<Oid> current = snapshot->SubscribersOf(shard, all_states);
      for (Oid sub : current) {
        if (!observed.count(sub)) {
          return Status::Aborted(
              "subscription snuck in for shard " + std::to_string(shard) +
              " (node " + std::to_string(sub) + "); transaction rolled back");
        }
      }
      const std::set<Oid> current_set(current.begin(), current.end());
      for (Oid sub : observed) {
        if (!current_set.count(sub)) {
          return Status::Aborted(
              "participant " + std::to_string(sub) +
              " unsubscribed from shard " + std::to_string(shard) +
              " during the transaction; rolled back");
        }
      }
    }
  }

  EON_ASSIGN_OR_RETURN(uint64_t version, coord->catalog()->Commit(txn));
  std::vector<TxnLogRecord> records = coord->catalog()->LogsAfter(version - 1);
  EON_CHECK(!records.empty() && records.back().version == version);
  const TxnLogRecord& record = records.back();

  for (auto& n : nodes_) {
    if (n->oid() == coordinator || !n->is_up()) continue;
    std::set<ShardId> filter = FilterFor(*n, record);
    Status s = n->catalog()->Apply(record, &filter);
    if (!s.ok()) {
      return Status::Internal("replication to node " + n->name() +
                              " failed: " + s.ToString());
    }
  }
  metrics_.commits->Increment();
  return version;
}

Status EonCluster::TransferShardMetadata(Node* target, ShardId shard) {
  // Pick any up source that serves the shard.
  for (auto& n : nodes_) {
    if (n.get() == target || !n->is_up()) continue;
    auto snapshot = n->catalog()->snapshot();
    const Subscription* sub = snapshot->FindSubscription(n->oid(), shard);
    if (sub == nullptr || sub->state != SubscriptionState::kActive) continue;

    std::vector<StorageContainerMeta> containers;
    std::vector<DeleteVectorMeta> dvs;
    for (const auto& [oid, c] : snapshot->containers) {
      if (c.shard == shard) containers.push_back(c);
    }
    for (const auto& [oid, d] : snapshot->delete_vectors) {
      if (d.shard == shard) dvs.push_back(d);
    }
    return target->catalog()->ImportStorageObjects(containers, dvs);
  }
  return Status::Unavailable("no ACTIVE source for shard " +
                             std::to_string(shard));
}

Node* EonCluster::PickWarmPeer(const Node& target, ShardId shard) {
  Node* fallback = nullptr;
  for (auto& n : nodes_) {
    if (n.get() == &target || !n->is_up()) continue;
    auto snapshot = n->catalog()->snapshot();
    const Subscription* sub = snapshot->FindSubscription(n->oid(), shard);
    if (sub == nullptr || sub->state != SubscriptionState::kActive) continue;
    if (n->subcluster() == target.subcluster()) return n.get();
    if (fallback == nullptr) fallback = n.get();
  }
  return fallback;
}

Status EonCluster::SubscribeNode(Oid node_oid, ShardId shard,
                                 bool warm_cache) {
  Node* target = node(node_oid);
  if (target == nullptr || !target->is_up()) {
    return Status::Unavailable("subscribing node is down");
  }
  Node* coord = AnyUpNode();

  // 1. Declare intent: PENDING.
  CatalogTxn pending;
  pending.PutSubscription(
      Subscription{node_oid, shard, SubscriptionState::kPending});
  {
    Result<uint64_t> v = CommitDistributed(coord->oid(), pending);
    if (!v.ok()) return v.status();
  }
  RecordSubscriptionDc(target, shard, "", "PENDING", "subscribe");

  // 2. Metadata transfer from a source subscriber, then PASSIVE. (The
  //    paper transfers checkpoint/log rounds then takes a brief commit
  //    lock for the remainder; our synchronous commit path keeps nodes in
  //    lockstep, so a snapshot import is the equivalent.)
  EON_RETURN_IF_ERROR(TransferShardMetadata(target, shard));
  CatalogTxn passive;
  passive.PutSubscription(
      Subscription{node_oid, shard, SubscriptionState::kPassive});
  {
    Result<uint64_t> v = CommitDistributed(coord->oid(), passive);
    if (!v.ok()) return v.status();
  }
  RecordSubscriptionDc(target, shard, "PENDING", "PASSIVE",
                       "metadata transferred");

  // 3. Optional cache warm from a peer (PASSIVE → ACTIVE; subscribers that
  //    skip warming jump straight to ACTIVE).
  if (warm_cache) {
    Node* peer = PickWarmPeer(*target, shard);
    if (peer != nullptr) {
      const uint64_t budget = target->cache()->capacity_bytes() -
                              std::min(target->cache()->capacity_bytes(),
                                       target->cache()->size_bytes());
      std::vector<std::string> mru = peer->cache()->MostRecentlyUsed(budget);
      PeerCacheFetcher peer_fetcher(peer->cache());
      EON_RETURN_IF_ERROR(target->cache()->WarmFrom(mru, &peer_fetcher));
    }
  }

  CatalogTxn active;
  active.PutSubscription(
      Subscription{node_oid, shard, SubscriptionState::kActive});
  Result<uint64_t> v = CommitDistributed(coord->oid(), active);
  if (!v.ok()) return v.status();
  RecordSubscriptionDc(target, shard, "PASSIVE", "ACTIVE",
                       "subscribe complete");
  return Status::OK();
}

Status EonCluster::UnsubscribeNode(Oid node_oid, ShardId shard) {
  Node* target = node(node_oid);
  if (target == nullptr) return Status::NotFound("no such node");
  Node* coord = AnyUpNode();

  // 1. Declare intent: REMOVING (keeps serving queries meanwhile).
  CatalogTxn removing;
  removing.PutSubscription(
      Subscription{node_oid, shard, SubscriptionState::kRemoving});
  {
    Result<uint64_t> v = CommitDistributed(coord->oid(), removing);
    if (!v.ok()) return v.status();
  }
  RecordSubscriptionDc(target, shard, "ACTIVE", "REMOVING", "unsubscribe");

  // 2. Fault-tolerance gate: enough OTHER ACTIVE subscribers must exist.
  auto snapshot = coord->catalog()->snapshot();
  int other_active = 0;
  for (Oid n : snapshot->SubscribersOf(shard, {SubscriptionState::kActive})) {
    if (n != node_oid) other_active++;
  }
  const int required = std::max(1, options_.k_safety - 1);
  if (other_active < required) {
    return Status::Unavailable(
        "cannot drop subscription: shard " + std::to_string(shard) +
        " would lose fault tolerance (have " + std::to_string(other_active) +
        " other ACTIVE, need " + std::to_string(required) + ")");
  }

  // 3. Drop the shard's metadata, purge cached files, drop subscription.
  std::vector<std::string> cached_keys;
  {
    auto s = target->catalog()->snapshot();
    for (const auto& [oid, c] : s->containers) {
      if (c.shard != shard) continue;
      for (uint64_t col = 0; col < c.num_columns; ++col) {
        cached_keys.push_back(c.base_key + "_c" + std::to_string(col));
      }
    }
    for (const auto& [oid, d] : s->delete_vectors) {
      if (d.shard == shard) cached_keys.push_back(d.key);
    }
  }
  EON_RETURN_IF_ERROR(target->catalog()->PurgeShard(shard));
  for (const std::string& key : cached_keys) target->cache()->Drop(key);

  CatalogTxn drop;
  drop.DropSubscription(node_oid, shard);
  Result<uint64_t> v = CommitDistributed(coord->oid(), drop);
  if (!v.ok()) return v.status();
  RecordSubscriptionDc(target, shard, "REMOVING", "", "dropped");
  return Status::OK();
}

Status EonCluster::Rebalance(bool warm_cache) {
  Node* coord = AnyUpNode();
  if (coord == nullptr) return Status::Unavailable("no up nodes");
  auto snapshot = coord->catalog()->snapshot();
  std::vector<NodeDef> defs;
  for (const auto& [oid, def] : snapshot->nodes) {
    Node* n = node(oid);
    if (n != nullptr && n->is_up()) defs.push_back(def);
  }
  auto desired = PlanSubscriptionLayout(*snapshot, defs, options_.k_safety);

  // Create missing subscriptions first (subscribe-before-unsubscribe keeps
  // shards fault tolerant throughout, Section 3.3).
  std::set<std::pair<Oid, ShardId>> want(desired.begin(), desired.end());
  for (const auto& [node_oid, shard] : desired) {
    if (snapshot->FindSubscription(node_oid, shard) == nullptr) {
      EON_RETURN_IF_ERROR(SubscribeNode(node_oid, shard, warm_cache));
    }
  }
  // Then retire extras.
  snapshot = coord->catalog()->snapshot();
  std::vector<std::pair<Oid, ShardId>> extras;
  for (const auto& [key, sub] : snapshot->subscriptions) {
    Node* n = node(key.first);
    if (n == nullptr || !n->is_up()) continue;  // Handled by node recovery.
    if (!want.count(key)) extras.push_back(key);
  }
  for (const auto& [node_oid, shard] : extras) {
    Status s = UnsubscribeNode(node_oid, shard);
    if (s.IsUnavailable()) continue;  // Keep it: fault tolerance first.
    EON_RETURN_IF_ERROR(s);
  }
  return Status::OK();
}

Status EonCluster::KillNode(Oid node_oid) {
  Node* target = node(node_oid);
  if (target == nullptr) return Status::NotFound("no such node");
  target->MarkDown();
  CheckViabilityAndMaybeShutdown();
  return Status::OK();
}

Status EonCluster::BringNodeUpToDate(Node* target) {
  Node* peer = nullptr;
  for (auto& n : nodes_) {
    if (n.get() != target && n->is_up()) {
      peer = n.get();
      break;
    }
  }
  if (peer == nullptr) return Status::Unavailable("no peer to catch up from");
  for (const TxnLogRecord& rec :
       peer->catalog()->LogsAfter(target->catalog()->version())) {
    std::set<ShardId> filter = FilterFor(*target, rec);
    EON_RETURN_IF_ERROR(target->catalog()->Apply(rec, &filter));
  }
  return Status::OK();
}

Status EonCluster::WarmNodeCache(Node* target) {
  for (ShardId shard : target->SubscribedShards({SubscriptionState::kActive,
                                                 SubscriptionState::kPassive,
                                                 SubscriptionState::kPending})) {
    Node* peer = PickWarmPeer(*target, shard);
    if (peer == nullptr) continue;
    const uint64_t cap = target->cache()->capacity_bytes();
    const uint64_t used = target->cache()->size_bytes();
    std::vector<std::string> mru =
        peer->cache()->MostRecentlyUsed(cap - std::min(cap, used));
    PeerCacheFetcher fetcher(peer->cache());
    EON_RETURN_IF_ERROR(target->cache()->WarmFrom(mru, &fetcher));
  }
  return Status::OK();
}

Status EonCluster::ResubscribeNode(Node* target, bool warm_cache) {
  Node* coord = AnyUpNode();
  if (coord == nullptr) return Status::Unavailable("no up nodes");

  // "A transaction transitions all of the ACTIVE subscriptions for the
  // recovering node to PENDING, effectively forcing a re-subscription"
  // (Section 3.3).
  std::set<ShardId> to_resubscribe =
      target->SubscribedShards({SubscriptionState::kActive});
  if (!to_resubscribe.empty()) {
    CatalogTxn to_pending;
    for (ShardId s : to_resubscribe) {
      to_pending.PutSubscription(
          Subscription{target->oid(), s, SubscriptionState::kPending});
    }
    Result<uint64_t> v = CommitDistributed(coord->oid(), to_pending);
    if (!v.ok()) return v.status();
    for (ShardId s : to_resubscribe) {
      RecordSubscriptionDc(target, s, "ACTIVE", "PENDING", "node recovery");
    }
  }

  // Re-subscription is incremental: metadata diffs arrived with the log
  // replay; the lukewarm cache transfers fewer files (Section 6.1).
  if (warm_cache) EON_RETURN_IF_ERROR(WarmNodeCache(target));

  CatalogTxn to_active;
  for (ShardId s : to_resubscribe) {
    to_active.PutSubscription(
        Subscription{target->oid(), s, SubscriptionState::kActive});
  }
  if (!to_resubscribe.empty()) {
    Result<uint64_t> v = CommitDistributed(coord->oid(), to_active);
    if (!v.ok()) return v.status();
    for (ShardId s : to_resubscribe) {
      RecordSubscriptionDc(target, s, "PENDING", "ACTIVE", "resubscribed");
    }
  }
  return Status::OK();
}

Status EonCluster::RestartNode(Oid node_oid, bool warm_cache) {
  Node* target = node(node_oid);
  if (target == nullptr) return Status::NotFound("no such node");
  if (target->is_up()) return Status::InvalidArgument("node is already up");
  target->MarkUp();
  target->SetIncarnation(incarnation_);

  // The restarted process replays its WAL from shared storage: committed
  // WOS rows that were lost with the old process's memory come back.
  Status wos_recovered = target->RecoverWos();
  if (!wos_recovered.ok()) {
    target->MarkDown();
    return wos_recovered;
  }

  // Catch up on log records missed while down (local logs survived the
  // process termination; only the delta transfers).
  Status caught_up = BringNodeUpToDate(target);
  if (!caught_up.ok()) {
    // "Failure to resubscribe is a critical failure ... the node goes
    // down to ensure visibility to the administrator" (Section 6.1).
    target->MarkDown();
    return caught_up;
  }
  Status s = ResubscribeNode(target, warm_cache);
  if (!s.ok()) {
    target->MarkDown();
    return s;
  }
  CheckViabilityAndMaybeShutdown();
  return Status::OK();
}

Status EonCluster::DestroyNodeInstance(Oid node_oid) {
  Node* target = node(node_oid);
  if (target == nullptr) return Status::NotFound("no such node");
  target->DestroyLocalState();
  CheckViabilityAndMaybeShutdown();
  return Status::OK();
}

Status EonCluster::RecoverDestroyedNode(Oid node_oid, bool warm_cache) {
  Node* target = node(node_oid);
  if (target == nullptr) return Status::NotFound("no such node");
  Node* peer = nullptr;
  for (auto& n : nodes_) {
    if (n.get() != target && n->is_up()) {
      peer = n.get();
      break;
    }
  }
  if (peer == nullptr) {
    return Status::Unavailable("no peer to rebuild metadata from");
  }

  // Rebuild metadata wholesale from a peer: instance loss loses no
  // transactions (Section 3.5). The peer checkpoint contains global
  // objects plus the peer's shards; this node's shard metadata is
  // re-imported during re-subscription.
  std::string ckpt = peer->catalog()->SerializeCheckpoint();
  std::set<ShardId> filter = {};  // Storage objects re-imported below.
  EON_ASSIGN_OR_RETURN(
      std::unique_ptr<Catalog> rebuilt,
      Catalog::Restore(ckpt, {}, peer->catalog()->version(), &filter));
  target->ReplaceCatalog(std::move(rebuilt));
  target->MarkUp();
  target->SetIncarnation(incarnation_);
  // Instance loss wiped local disk, not the shared-storage WAL: replay
  // restores committed-but-unflushed WOS rows.
  EON_RETURN_IF_ERROR(target->RecoverWos());

  for (ShardId shard : target->SubscribedShards(
           {SubscriptionState::kActive, SubscriptionState::kPassive,
            SubscriptionState::kPending, SubscriptionState::kRemoving})) {
    EON_RETURN_IF_ERROR(TransferShardMetadata(target, shard));
  }
  Status s = ResubscribeNode(target, warm_cache);
  if (!s.ok()) {
    target->MarkDown();
    return s;
  }
  CheckViabilityAndMaybeShutdown();
  return Status::OK();
}

bool EonCluster::IsViable() const {
  const std::set<Oid> up = up_node_oids();
  if (up.size() * 2 <= nodes_.size()) return false;  // Quorum lost.
  const Node* any = nullptr;
  for (const auto& n : nodes_) {
    if (n->is_up()) {
      any = n.get();
      break;
    }
  }
  if (any == nullptr) return false;
  auto snapshot = any->catalog()->snapshot();
  for (ShardId s = 0; s < snapshot->sharding.num_segment_shards; ++s) {
    bool covered = false;
    for (Oid n : snapshot->SubscribersOf(s, kServingStates)) {
      if (up.count(n)) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  return true;
}

void EonCluster::CheckViabilityAndMaybeShutdown() {
  if (!IsViable()) {
    // "If sufficient nodes fail such that the constraints are violated,
    // the cluster will shutdown automatically to avoid divergence or
    // wrong answers" (Section 3.4).
    shutdown_ = true;
  } else {
    shutdown_ = false;
  }
}

Status EonCluster::SyncAll(bool force_checkpoint) {
  for (auto& n : nodes_) {
    if (!n->is_up() || n->sync() == nullptr) continue;
    EON_RETURN_IF_ERROR(n->sync()->SyncNow(*n->catalog(), force_checkpoint));
    EON_RETURN_IF_ERROR(n->sync()->DeleteStale());
  }
  return Status::OK();
}

Status EonCluster::UpdateClusterInfo() {
  Node* any = AnyUpNode();
  if (any == nullptr) return Status::Unavailable("no up nodes");
  auto snapshot = any->catalog()->snapshot();

  std::map<Oid, uint64_t> upper;
  for (auto& n : nodes_) {
    if (n->sync() == nullptr) continue;
    EON_ASSIGN_OR_RETURN(SyncInterval interval,
                         ReadSyncInterval(shared_, incarnation_, n->oid()));
    if (interval.upper > 0) upper[n->oid()] = interval.upper;
  }
  last_truncation_ = ComputeTruncationVersion(*snapshot, upper);

  ClusterInfo info;
  info.truncation_version = last_truncation_;
  info.incarnation = incarnation_;
  info.timestamp_micros = clock_->NowMicros();
  info.lease_expiry_micros =
      clock_->NowMicros() + options_.lease_duration_micros;
  info.database_name = options_.db_name;
  for (const auto& n : nodes_) info.node_names.push_back(n->name());
  return info.WriteTo(shared_);
}

Result<std::unique_ptr<EonCluster>> EonCluster::Revive(
    ObjectStore* shared_storage, Clock* clock, const ClusterOptions& options,
    const std::vector<NodeSpec>& specs) {
  EON_ASSIGN_OR_RETURN(ClusterInfo info, ClusterInfo::ReadLatest(shared_storage));
  if (info.lease_expiry_micros > clock->NowMicros()) {
    return Status::Unavailable(
        "revive aborted: another cluster's lease on this storage location "
        "has not expired");
  }
  if (specs.size() != info.node_names.size()) {
    return Status::InvalidArgument(
        "revive requires the same node count as the previous cluster (" +
        std::to_string(info.node_names.size()) + ")");
  }

  auto cluster = std::unique_ptr<EonCluster>(
      new EonCluster(shared_storage, clock, options));
  EON_RETURN_IF_ERROR(cluster->BuildNodes(specs));

  // Download each node's catalog to the best version at or below the
  // truncation version; anything past it is discarded (truncation).
  const uint64_t target = info.truncation_version;
  Node* most_advanced = nullptr;
  for (auto& n : cluster->nodes_) {
    Result<SyncInterval> interval =
        ReadSyncInterval(shared_storage, info.incarnation, n->oid());
    if (!interval.ok()) return interval.status();
    const uint64_t achievable = std::min<uint64_t>(interval->upper, target);
    if (achievable == 0) continue;  // Node never synced; repaired below.
    EON_ASSIGN_OR_RETURN(std::unique_ptr<Catalog> catalog,
                         DownloadCatalog(shared_storage, info.incarnation,
                                         n->oid(), achievable));
    n->ReplaceCatalog(std::move(catalog));
    if (most_advanced == nullptr ||
        n->catalog()->version() > most_advanced->catalog()->version()) {
      most_advanced = n.get();
    }
  }
  if (most_advanced == nullptr ||
      most_advanced->catalog()->version() < target) {
    return Status::Corruption(
        "revive: no node's uploads reach the truncation version");
  }
  // Repair nodes that stopped short of the truncation version using the
  // most advanced node's (complete) log records.
  for (auto& n : cluster->nodes_) {
    if (n->catalog()->version() >= target) continue;
    for (const TxnLogRecord& rec :
         most_advanced->catalog()->LogsAfter(n->catalog()->version())) {
      if (rec.version > target) break;
      std::set<ShardId> filter = FilterFor(*n, rec);
      EON_RETURN_IF_ERROR(n->catalog()->Apply(rec, &filter));
    }
    if (n->catalog()->version() != target) {
      return Status::Corruption("revive: node " + n->name() +
                                " cannot reach the truncation version");
    }
  }

  // Adopt a fresh incarnation so the revived cluster's metadata uploads go
  // to a distinct location; the new cluster_info.json is the commit point.
  cluster->incarnation_ = IncarnationId::Generate(
      options.seed ^ info.incarnation.lo, clock->NowMicros() + 1);
  for (auto& n : cluster->nodes_) {
    n->MarkUp();
    n->SetIncarnation(cluster->incarnation_);
  }
  cluster->last_truncation_ = target;
  EON_RETURN_IF_ERROR(cluster->SyncAll(/*force_checkpoint=*/true));
  EON_RETURN_IF_ERROR(cluster->UpdateClusterInfo());
  return cluster;
}

Result<std::unique_ptr<EonCluster>> EonCluster::AttachReadOnly(
    ObjectStore* shared_storage, Clock* clock, const ClusterOptions& options,
    const std::vector<NodeSpec>& specs) {
  // Readers never take the lease: they do not conflict with the running
  // writer or with each other.
  EON_ASSIGN_OR_RETURN(ClusterInfo info,
                       ClusterInfo::ReadLatest(shared_storage));
  if (specs.size() != info.node_names.size()) {
    return Status::InvalidArgument(
        "read-only attach requires the same node count as the source (" +
        std::to_string(info.node_names.size()) + ")");
  }
  auto cluster = std::unique_ptr<EonCluster>(
      new EonCluster(shared_storage, clock, options));
  // Readers never ingest and must not adopt (or replay) the writer
  // cluster's write-ahead logs.
  cluster->options_.node.wos.enabled = false;
  EON_RETURN_IF_ERROR(cluster->BuildNodes(specs));
  cluster->read_only_ = true;
  cluster->incarnation_ = info.incarnation;  // Source provenance.
  cluster->last_truncation_ = info.truncation_version;

  const uint64_t target = info.truncation_version;
  if (target == 0) {
    return Status::Unavailable("source database has no durable version yet");
  }
  for (auto& n : cluster->nodes_) {
    EON_ASSIGN_OR_RETURN(
        std::unique_ptr<Catalog> catalog,
        DownloadCatalog(shared_storage, info.incarnation, n->oid(), target));
    n->ReplaceCatalog(std::move(catalog));
    n->MarkUp();
    // No sync service: readers never upload metadata.
  }
  return cluster;
}

Result<uint64_t> EonCluster::RefreshReadOnly() {
  if (!read_only_) {
    return Status::InvalidArgument("cluster is not a read-only attachment");
  }
  EON_ASSIGN_OR_RETURN(ClusterInfo info, ClusterInfo::ReadLatest(shared_));
  if (info.incarnation != incarnation_) {
    return Status::NotSupported(
        "source database was revived under a new incarnation; re-attach");
  }
  const uint64_t target = info.truncation_version;
  Node* any = AnyUpNode();
  if (any == nullptr) return Status::Unavailable("no up nodes");
  const uint64_t current = any->catalog()->version();
  if (target <= current) return 0;

  // Find a source node whose uploaded log stream covers (current, target].
  Oid source_node = kInvalidOid;
  for (size_t i = 1; i <= info.node_names.size(); ++i) {
    EON_ASSIGN_OR_RETURN(
        SyncInterval interval,
        ReadSyncInterval(shared_, incarnation_, static_cast<Oid>(i)));
    if (interval.upper >= target) {
      source_node = static_cast<Oid>(i);
      break;
    }
  }
  if (source_node == kInvalidOid) {
    return Status::Unavailable("no source node's uploads reach the target");
  }

  const std::string prefix =
      CatalogSync::NodePrefixFor(incarnation_, source_node);
  EON_ASSIGN_OR_RETURN(std::vector<ObjectMeta> log_objects,
                       shared_->List(prefix + "log_"));
  std::vector<TxnLogRecord> records;
  for (const ObjectMeta& m : log_objects) {
    const uint64_t v = strtoull(m.key.c_str() + prefix.size() + 4, nullptr, 10);
    if (v <= current || v > target) continue;
    EON_ASSIGN_OR_RETURN(std::string data, shared_->Get(m.key));
    EON_ASSIGN_OR_RETURN(TxnLogRecord rec, TxnLogRecord::Deserialize(data));
    records.push_back(std::move(rec));
  }
  std::sort(records.begin(), records.end(),
            [](const TxnLogRecord& a, const TxnLogRecord& b) {
              return a.version < b.version;
            });
  for (auto& n : nodes_) {
    if (!n->is_up()) continue;
    for (const TxnLogRecord& rec : records) {
      if (rec.version <= n->catalog()->version()) continue;
      std::set<ShardId> filter = FilterFor(*n, rec);
      Status s = n->catalog()->Apply(rec, &filter);
      if (!s.ok()) {
        // Trimmed logs leave a gap: fall back to a full catalog download.
        EON_ASSIGN_OR_RETURN(
            std::unique_ptr<Catalog> catalog,
            DownloadCatalog(shared_, incarnation_, n->oid(), target));
        n->ReplaceCatalog(std::move(catalog));
        break;
      }
    }
    if (n->catalog()->version() != target) {
      EON_ASSIGN_OR_RETURN(
          std::unique_ptr<Catalog> catalog,
          DownloadCatalog(shared_, incarnation_, n->oid(), target));
      n->ReplaceCatalog(std::move(catalog));
    }
  }
  last_truncation_ = target;
  return target - current;
}

void EonCluster::TrackDroppedFiles(const std::vector<std::string>& keys,
                                   uint64_t drop_version) {
  for (const std::string& key : keys) {
    // Local reference count is zero: leave every cache immediately.
    for (auto& n : nodes_) n->cache()->Drop(key);
    pending_deletes_.push_back(PendingFileDelete{key, drop_version});
  }
  metrics_.pending_deletes->Set(static_cast<int64_t>(pending_deletes_.size()));
}

Result<uint64_t> EonCluster::ReapFiles() {
  // Gossiped minimum running-query version across up nodes.
  uint64_t min_query_version = UINT64_MAX;
  for (auto& n : nodes_) {
    if (n->is_up()) {
      min_query_version =
          std::min(min_query_version, n->MinRunningQueryVersion());
    }
  }
  if (min_query_version == UINT64_MAX) {
    return Status::Unavailable("no up nodes");
  }

  uint64_t deleted = 0;
  std::vector<PendingFileDelete> remaining;
  for (const PendingFileDelete& pd : pending_deletes_) {
    // Safe when (a) no running query anywhere reads a version older than
    // the dropping commit (queries at or past it cannot see the file) and
    // (b) the dropping transaction is durable (past truncation version) —
    // otherwise a catastrophic metadata loss could revive the reference.
    if (min_query_version >= pd.drop_version &&
        last_truncation_ >= pd.drop_version) {
      Status s = shared_->Delete(pd.key);
      if (s.ok() || s.IsNotFound()) {
        deleted++;
        continue;
      }
    }
    remaining.push_back(pd);
  }
  pending_deletes_ = std::move(remaining);
  metrics_.files_reaped->Increment(deleted);
  metrics_.pending_deletes->Set(static_cast<int64_t>(pending_deletes_.size()));
  return deleted;
}

Result<uint64_t> EonCluster::CleanLeakedFiles() {
  // Aggregate every referenced key from all nodes' reference counters.
  std::set<std::string> referenced;
  for (auto& n : nodes_) {
    auto snapshot = n->catalog()->snapshot();
    for (const auto& [oid, c] : snapshot->containers) {
      for (uint64_t col = 0; col < c.num_columns; ++col) {
        referenced.insert(c.base_key + "_c" + std::to_string(col));
      }
    }
    for (const auto& [oid, d] : snapshot->delete_vectors) {
      referenced.insert(d.key);
    }
  }
  for (const PendingFileDelete& pd : pending_deletes_) {
    referenced.insert(pd.key);
  }
  // Ignore storage minted by currently running node instances — it may be
  // mid-operation and not yet announced (Section 6.5).
  std::set<std::string> live_instances;
  for (auto& n : nodes_) {
    if (n->is_up()) live_instances.insert(n->instance_id().ToHex());
  }

  uint64_t deleted = 0;
  for (const std::string& prefix : {std::string("data/"), std::string("dv/")}) {
    EON_ASSIGN_OR_RETURN(std::vector<ObjectMeta> objects,
                         shared_->List(prefix));
    for (const ObjectMeta& m : objects) {
      if (referenced.count(m.key)) continue;
      // Key layout: <prefix><48-hex SID>[suffix]; instance id is hex chars
      // [2, 32) of the SID.
      const std::string sid_part = m.key.substr(prefix.size());
      if (sid_part.size() >= 32 &&
          live_instances.count(sid_part.substr(2, 30))) {
        continue;
      }
      Status s = shared_->Delete(m.key);
      if (s.ok()) deleted++;
    }
  }
  return deleted;
}

}  // namespace eon
