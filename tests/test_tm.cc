// Unit tests for the tuple mover: strata selection, mergeout correctness,
// coordinator election/failover, delegation, purge (Section 6.2).

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "engine/ddl.h"
#include "engine/dml.h"
#include "engine/session.h"
#include "storage/sim_object_store.h"
#include "tm/tuple_mover.h"

namespace eon {
namespace {

class TupleMoverTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SimStoreOptions sopts;
    sopts.get_latency_micros = 0;
    sopts.put_latency_micros = 0;
    sopts.list_latency_micros = 0;
    store_ = std::make_unique<SimObjectStore>(sopts, &clock_);

    ClusterOptions copts;
    copts.num_shards = 2;
    copts.k_safety = 2;
    std::vector<NodeSpec> specs;
    for (int i = 1; i <= 3; ++i) {
      specs.push_back(NodeSpec{"n" + std::to_string(i), ""});
    }
    auto cluster = EonCluster::Create(store_.get(), &clock_, copts, specs);
    ASSERT_TRUE(cluster.ok());
    cluster_ = std::move(cluster).value();

    Schema schema({{"id", DataType::kInt64}, {"v", DataType::kDouble}});
    ASSERT_TRUE(CreateTable(cluster_.get(), "t", schema, std::nullopt,
                            {ProjectionSpec{"t_super", {}, {"id"}, {"id"}}})
                    .ok());
  }

  void LoadBatches(int batches, int rows_per_batch) {
    for (int b = 0; b < batches; ++b) {
      std::vector<Row> rows;
      for (int i = 0; i < rows_per_batch; ++i) {
        int64_t id = b * rows_per_batch + i;
        rows.push_back(Row{Value::Int(id), Value::Dbl(id * 0.25)});
      }
      ASSERT_TRUE(CopyInto(cluster_.get(), "t", rows).ok());
    }
  }

  size_t ContainerCount() {
    return cluster_->node(1)->catalog()->snapshot()->containers.size();
  }

  int64_t SumIds() {
    EonSession session(cluster_.get());
    QuerySpec q;
    q.scan.table = "t";
    q.scan.columns = {"id"};
    q.aggregates = {{AggFn::kSum, "id", "s"}};
    auto r = session.Execute(q);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? r->rows[0][0].int_value() : -1;
  }

  SimClock clock_;
  std::unique_ptr<SimObjectStore> store_;
  std::unique_ptr<EonCluster> cluster_;
};

TEST_F(TupleMoverTest, MergeoutReducesContainerCount) {
  LoadBatches(8, 50);
  const size_t before = ContainerCount();
  const int64_t sum_before = SumIds();

  TupleMover tm(cluster_.get(), MergeoutOptions{.stratum_fanin = 4});
  auto jobs = tm.RunOnce();
  ASSERT_TRUE(jobs.ok()) << jobs.status().ToString();
  EXPECT_GT(*jobs, 0u);
  EXPECT_LT(ContainerCount(), before);
  EXPECT_EQ(SumIds(), sum_before);
  EXPECT_GT(tm.stats().containers_merged, tm.stats().containers_created);
}

TEST_F(TupleMoverTest, NoJobsBelowFanin) {
  LoadBatches(2, 50);  // Only 2 containers per (shard, stratum): below 4.
  TupleMover tm(cluster_.get(), MergeoutOptions{.stratum_fanin = 4});
  auto jobs = tm.RunOnce();
  ASSERT_TRUE(jobs.ok());
  EXPECT_EQ(*jobs, 0u);
}

TEST_F(TupleMoverTest, MergedContainersAreSortedAndTiered) {
  LoadBatches(4, 100);
  TupleMover tm(cluster_.get(), MergeoutOptions{.stratum_fanin = 4});
  ASSERT_TRUE(tm.RunOnce().ok());
  // Outputs moved up a stratum.
  auto snapshot = cluster_->node(1)->catalog()->snapshot();
  bool saw_merged = false;
  for (const auto& [oid, c] : snapshot->containers) {
    if (c.stratum > 0) saw_merged = true;
  }
  EXPECT_TRUE(saw_merged);
}

TEST_F(TupleMoverTest, PurgesDeletedRows) {
  LoadBatches(4, 100);
  auto deleted = DeleteWhere(cluster_.get(), "t",
                             Predicate::Cmp(0, CmpOp::kLt, Value::Int(100)));
  ASSERT_TRUE(deleted.ok());
  EXPECT_EQ(*deleted, 100u);
  const int64_t sum_after_delete = SumIds();

  TupleMover tm(cluster_.get(), MergeoutOptions{.stratum_fanin = 2});
  ASSERT_TRUE(tm.RunOnce().ok());
  EXPECT_GT(tm.stats().deleted_rows_purged, 0u);
  EXPECT_EQ(SumIds(), sum_after_delete);

  // After purge+merge, the old delete vectors are gone from the catalog.
  auto snapshot = cluster_->node(1)->catalog()->snapshot();
  uint64_t remaining_tombstones = 0;
  for (const auto& [oid, dv] : snapshot->delete_vectors) {
    remaining_tombstones += dv.deleted_count;
  }
  EXPECT_EQ(remaining_tombstones, 0u);
}

TEST_F(TupleMoverTest, SingleCoordinatorPerShard) {
  TupleMover tm(cluster_.get());
  ASSERT_TRUE(tm.ReassignCoordinators().ok());
  auto c0 = tm.CoordinatorFor(0);
  auto c1 = tm.CoordinatorFor(1);
  ASSERT_TRUE(c0.ok());
  ASSERT_TRUE(c1.ok());
  // Stable until something fails.
  EXPECT_EQ(*tm.CoordinatorFor(0), *c0);
}

TEST_F(TupleMoverTest, CoordinatorFailsOver) {
  TupleMover tm(cluster_.get());
  auto before = tm.CoordinatorFor(0);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(cluster_->KillNode(*before).ok());
  auto after = tm.CoordinatorFor(0);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_NE(*after, *before);
  // And mergeout still runs with the dead node.
  LoadBatches(4, 50);
  auto jobs = TupleMover(cluster_.get(), MergeoutOptions{.stratum_fanin = 4})
                  .RunOnce();
  EXPECT_TRUE(jobs.ok()) << jobs.status().ToString();
}

TEST_F(TupleMoverTest, DelegationSpreadsWork) {
  LoadBatches(8, 50);
  MergeoutOptions opts;
  opts.stratum_fanin = 2;
  opts.delegate_jobs = true;
  TupleMover tm(cluster_.get(), opts);
  auto jobs = tm.RunOnce();
  ASSERT_TRUE(jobs.ok());
  EXPECT_GT(*jobs, 0u);
  // Results are still correct.
  EXPECT_EQ(SumIds(), 399LL * 400 / 2);
}

TEST_F(TupleMoverTest, DroppedInputFilesGoToReaper) {
  LoadBatches(4, 50);
  ASSERT_EQ(cluster_->pending_delete_count(), 0u);
  TupleMover tm(cluster_.get(), MergeoutOptions{.stratum_fanin = 4});
  ASSERT_TRUE(tm.RunOnce().ok());
  EXPECT_GT(cluster_->pending_delete_count(), 0u);

  // Make the drop durable, then reap.
  ASSERT_TRUE(cluster_->SyncAll(true).ok());
  ASSERT_TRUE(cluster_->UpdateClusterInfo().ok());
  auto reaped = cluster_->ReapFiles();
  ASSERT_TRUE(reaped.ok());
  EXPECT_GT(*reaped, 0u);
  EXPECT_EQ(cluster_->pending_delete_count(), 0u);
}

}  // namespace
}  // namespace eon
