// Quickstart: bring up an Eon cluster on (simulated) shared storage,
// create a table with projections, load data, query it, and watch the
// cluster keep serving through a node failure.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "cluster/cluster.h"
#include "engine/ddl.h"
#include "engine/dml.h"
#include "engine/session.h"
#include "storage/sim_object_store.h"

using namespace eon;

int main() {
  // 1. Shared storage: an S3-like object store with a latency/cost model.
  SimClock clock;
  SimStoreOptions storage_options;  // Defaults approximate in-region S3.
  SimObjectStore shared_storage(storage_options, &clock);

  // 2. A 4-node cluster over 3 segment shards, each shard subscribed by 2
  //    nodes (k-safety).
  ClusterOptions options;
  options.num_shards = 3;
  options.k_safety = 2;
  auto cluster = EonCluster::Create(
      &shared_storage, &clock, options,
      {NodeSpec{"node1", ""}, NodeSpec{"node2", ""}, NodeSpec{"node3", ""},
       NodeSpec{"node4", ""}});
  if (!cluster.ok()) {
    fprintf(stderr, "create failed: %s\n", cluster.status().ToString().c_str());
    return 1;
  }
  printf("cluster up: %zu nodes, %u shards, incarnation %s\n",
         (*cluster)->nodes().size(), (*cluster)->sharding().num_segment_shards,
         (*cluster)->incarnation().ToHex().substr(0, 8).c_str());

  // 3. The paper's Figure 2 sales table: a superprojection sorted by date
  //    and segmented by HASH(sale_id), plus a (customer, price) projection
  //    segmented by HASH(customer).
  Schema sales({{"sale_id", DataType::kInt64},
                {"customer", DataType::kString},
                {"date", DataType::kInt64},
                {"price", DataType::kDouble}});
  auto table = CreateTable(
      cluster->get(), "sales", sales, std::string("date"),
      {ProjectionSpec{"sales_p1", {}, {"date"}, {"sale_id"}},
       ProjectionSpec{"sales_p2", {"customer", "price"}, {"customer"},
                      {"customer"}}});
  if (!table.ok()) {
    fprintf(stderr, "ddl failed: %s\n", table.status().ToString().c_str());
    return 1;
  }

  // 4. COPY: rows are segmented by shard, written through the cache,
  //    uploaded to shared storage (the commit point) and pushed to peer
  //    subscribers' caches.
  const char* customers[] = {"Grace", "Ada", "Barbara", "Shafi"};
  std::vector<Row> rows;
  for (int64_t i = 0; i < 1000; ++i) {
    rows.push_back(Row{Value::Int(i), Value::Str(customers[i % 4]),
                       Value::Int(20240101 + i % 30),
                       Value::Dbl(10.0 + static_cast<double>(i % 50))});
  }
  auto version = CopyInto(cluster->get(), "sales", rows);
  if (!version.ok()) {
    fprintf(stderr, "copy failed: %s\n", version.status().ToString().c_str());
    return 1;
  }
  printf("loaded %zu rows, committed at catalog version %llu\n", rows.size(),
         static_cast<unsigned long long>(*version));

  // 5. Query: revenue per customer. The group key matches sales_p2's
  //    segmentation, so the aggregation runs fully locally on each
  //    participating node.
  EonSession session(cluster->get());
  QuerySpec by_customer;
  by_customer.scan.table = "sales";
  by_customer.scan.columns = {"customer", "price"};
  by_customer.group_by = {"customer"};
  by_customer.aggregates = {{AggFn::kSum, "price", "revenue"},
                            {AggFn::kCount, "", "sales"}};
  by_customer.order_by = "revenue";
  by_customer.order_desc = true;

  auto result = session.Execute(by_customer);
  if (!result.ok()) {
    fprintf(stderr, "query failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  printf("\nrevenue by customer (local group-by: %s, %zu nodes):\n",
         result->stats.local_group_by ? "yes" : "no",
         result->stats.participating_nodes);
  for (const Row& row : result->rows) {
    printf("  %-10s %10.2f  (%lld sales)\n", row[0].str_value().c_str(),
           row[1].dbl_value(), static_cast<long long>(row[2].int_value()));
  }

  // 6. Kill a node: shards are never down — another subscriber serves its
  //    shards and the query keeps returning the same answer.
  (void)(*cluster)->KillNode(2);
  auto after = session.Execute(by_customer);
  printf("\nafter killing node2: query %s (%zu rows, plan unchanged)\n",
         after.ok() ? "still works" : "FAILED", after.ok() ? after->rows.size() : 0);

  // 7. What did shared storage see?
  ObjectStoreMetrics m = shared_storage.metrics();
  printf("\nshared storage: %llu puts, %llu gets, %.2f MB written, "
         "request cost $%.6f\n",
         static_cast<unsigned long long>(m.puts),
         static_cast<unsigned long long>(m.gets),
         static_cast<double>(m.bytes_written) / 1e6,
         static_cast<double>(m.cost_microdollars) / 1e6);
  return 0;
}
