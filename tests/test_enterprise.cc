// Unit tests for the Enterprise-mode baseline: fixed layout, buddy
// fallback, full-data recovery cost.

#include <gtest/gtest.h>

#include "enterprise/enterprise.h"
#include "workload/tpch.h"

namespace eon {
namespace {

class EnterpriseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto cluster = EnterpriseCluster::Create(&clock_, EnterpriseOptions{},
                                             {"e1", "e2", "e3", "e4"});
    ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
    cluster_ = std::move(cluster).value();

    Schema schema({{"id", DataType::kInt64}, {"v", DataType::kDouble}});
    ASSERT_TRUE(cluster_
                    ->CreateTable("t", schema, std::nullopt,
                                  {ProjectionSpec{"t_super", {}, {"id"},
                                                  {"id"}}})
                    .ok());
    std::vector<Row> rows;
    for (int64_t i = 0; i < 400; ++i) {
      rows.push_back(Row{Value::Int(i), Value::Dbl(i * 1.0)});
    }
    ASSERT_TRUE(cluster_->Copy("t", rows).ok());
  }

  int64_t Count() {
    QuerySpec q;
    q.scan.table = "t";
    q.scan.columns = {"id"};
    q.aggregates = {{AggFn::kCount, "", "n"}};
    auto r = cluster_->Execute(q);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? r->rows[0][0].int_value() : -1;
  }

  SimClock clock_;
  std::unique_ptr<EnterpriseCluster> cluster_;
};

TEST_F(EnterpriseTest, ShardsEqualNodes) {
  EXPECT_EQ(cluster_->inner()->sharding().num_segment_shards, 4u);
  EXPECT_EQ(cluster_->num_nodes(), 4u);
}

TEST_F(EnterpriseTest, QueriesUseFixedLayout) {
  EXPECT_EQ(Count(), 400);
  // All data served from "local disk" (unbounded caches): no reads from
  // the durability tier during queries.
  const uint64_t reads_before =
      cluster_->inner()->shared_storage()->metrics().bytes_read;
  EXPECT_EQ(Count(), 400);
  EXPECT_EQ(cluster_->inner()->shared_storage()->metrics().bytes_read,
            reads_before);
}

TEST_F(EnterpriseTest, BuddyServesWhenNodeDown) {
  ASSERT_TRUE(cluster_->KillNode("e2").ok());
  // Query plan shape unchanged; buddy provides region 1.
  EXPECT_EQ(Count(), 400);
}

TEST_F(EnterpriseTest, RecoveryCostIsFullNodeData) {
  auto bytes = cluster_->RecoveryBytes("e2");
  ASSERT_TRUE(bytes.ok());
  EXPECT_GT(*bytes, 0u);

  ASSERT_TRUE(cluster_->KillNode("e2").ok());
  const int64_t t0 = clock_.NowMicros();
  auto moved = cluster_->RestartNodeWithRecovery("e2");
  ASSERT_TRUE(moved.ok()) << moved.status().ToString();
  EXPECT_EQ(*moved, *bytes);
  // Recovery charged transfer time proportional to the node's dataset.
  EXPECT_GT(clock_.NowMicros(), t0);
  EXPECT_EQ(Count(), 400);
}

TEST_F(EnterpriseTest, RecoveryBytesGrowWithData) {
  auto before = cluster_->RecoveryBytes("e1");
  ASSERT_TRUE(before.ok());
  std::vector<Row> more;
  for (int64_t i = 400; i < 2000; ++i) {
    more.push_back(Row{Value::Int(i), Value::Dbl(0)});
  }
  ASSERT_TRUE(cluster_->Copy("t", more).ok());
  auto after = cluster_->RecoveryBytes("e1");
  ASSERT_TRUE(after.ok());
  // Enterprise recovery is proportional to the entire dataset on the
  // node, not to a working set (Section 6.1). (Growth is sublinear in raw
  // row count because delta encoding compresses the sequential ids.)
  EXPECT_GT(*after, *before);
}

}  // namespace
}  // namespace eon
