# Empty dependencies file for eon_cache.
# This may be replaced when dependencies are built.
