file(REMOVE_RECURSE
  "../bench/fig11a_elastic_throughput"
  "../bench/fig11a_elastic_throughput.pdb"
  "CMakeFiles/fig11a_elastic_throughput.dir/fig11a_elastic_throughput.cc.o"
  "CMakeFiles/fig11a_elastic_throughput.dir/fig11a_elastic_throughput.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11a_elastic_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
