#include "sim/throughput_sim.h"

#include <algorithm>
#include <deque>
#include <queue>

#include "common/logging.h"
#include "common/random.h"

namespace eon {

namespace {

struct Event {
  int64_t time;
  enum class Type { kCompletion, kIssue, kKill, kRestart } type;
  int id;  ///< Thread id for completion/issue, node index for kill/restart.

  bool operator>(const Event& o) const { return time > o.time; }
};

}  // namespace

ThroughputSim::RunResult ThroughputSim::Run(const Options& options) {
  EON_CHECK(options.num_nodes > 0 && options.num_shards > 0);
  const int n = options.num_nodes;
  const int s = options.num_shards;
  const int clients = options.clients;
  EON_CHECK(clients > 0);

  std::vector<int> busy(n, 0);       // Occupied slots per node.
  std::vector<bool> up(n, true);
  std::vector<int64_t> blackout_until(s, 0);  // Per-shard failover stall.
  Random rng(options.seed);

  // Subscription layout: node j's primary shard is j % s, and it also
  // backs the next k-1 shards (rotated ring) — so with more nodes than
  // shards every node serves queries, the condition for elastic
  // throughput scaling (Section 4.2). Enterprise (s == n) degenerates to
  // region i on node i with its ring buddy next.
  auto subscribers = [&](int shard) {
    std::vector<int> subs;
    const int k = std::min(options.k_safety, n);
    for (int r = 0; r < k; ++r) {
      for (int j = 0; j < n; ++j) {
        if ((j + r) % s == shard) subs.push_back(j);
      }
    }
    return subs;
  };

  // Pick the serving node per shard for one query: least-loaded up
  // subscriber (the load-spreading behavior max-flow selection produces);
  // Enterprise takes the first up subscriber in ring order (fixed layout).
  // Returns empty if some shard is unserveable (all subscribers down).
  auto assign = [&](int64_t now) {
    std::vector<int> chosen(s, -1);
    for (int shard = 0; shard < s; ++shard) {
      if (blackout_until[shard] > now) return std::vector<int>();
      int best = -1;
      for (int node : subscribers(shard)) {
        if (!up[node]) continue;
        if (options.enterprise) {
          best = node;
          break;
        }
        if (best < 0 || busy[node] < busy[best]) best = node;
      }
      if (best < 0) return std::vector<int>();
      chosen[shard] = best;
    }
    return chosen;
  };

  // A query can start when every chosen node has a free slot. In
  // Enterprise a query may take several slots on one node (buddy serving
  // two regions); count required slots per node.
  auto try_start = [&](int64_t now, std::vector<int>* out_nodes) {
    std::vector<int> chosen = assign(now);
    if (chosen.empty()) return false;
    std::vector<int> need(n, 0);
    for (int node : chosen) need[node]++;
    for (int node = 0; node < n; ++node) {
      if (need[node] > 0 &&
          busy[node] + need[node] > options.slots_per_node) {
        return false;
      }
    }
    for (int node = 0; node < n; ++node) busy[node] += need[node];
    *out_nodes = std::move(chosen);
    return true;
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events;
  for (const auto& [t, node] : options.kill_events) {
    events.push(Event{t, Event::Type::kKill, node});
  }
  for (const auto& [t, node] : options.restart_events) {
    events.push(Event{t, Event::Type::kRestart, node});
  }

  // Per-client state: slots currently held (by node).
  std::vector<std::vector<int>> holding(clients);
  std::deque<int> waiting;  // Thread ids blocked on slot availability.
  // Issue time per in-flight query (queue wait + service = latency).
  std::vector<int64_t> issued_at(static_cast<size_t>(clients), 0);

  obs::Counter* completed_metric = nullptr;
  obs::Histogram* latency_metric = nullptr;
  if (!options.metrics_name.empty()) {
    obs::MetricsRegistry* reg = obs::OrDefault(options.registry);
    obs::LabelSet run_label{{"run", options.metrics_name}};
    completed_metric =
        reg->GetCounter("eon_sim_queries_completed_total", run_label);
    latency_metric =
        reg->GetHistogram("eon_sim_query_latency_micros", run_label);
  }

  RunResult result;
  const int64_t num_buckets =
      (options.duration_micros + options.bucket_micros - 1) /
      options.bucket_micros;
  std::vector<uint64_t> buckets(static_cast<size_t>(num_buckets), 0);

  auto release = [&](int thread) {
    for (int node : holding[thread]) busy[node]--;
    holding[thread].clear();
  };

  auto issue = [&](int thread, int64_t now) {
    issued_at[static_cast<size_t>(thread)] = now;
    std::vector<int> nodes;
    if (try_start(now, &nodes)) {
      holding[thread] = std::move(nodes);
      // Small service-time jitter (±10%) models variance.
      const int64_t jitter =
          options.service_micros / 10 > 0
              ? rng.UniformRange(-options.service_micros / 10,
                                 options.service_micros / 10)
              : 0;
      events.push(Event{now + options.service_micros + jitter,
                        Event::Type::kCompletion, thread});
    } else {
      waiting.push_back(thread);
    }
  };

  auto drain_waiting = [&](int64_t now) {
    // FIFO retry: stop at the first thread that still cannot start.
    size_t attempts = waiting.size();
    while (attempts-- > 0 && !waiting.empty()) {
      int thread = waiting.front();
      waiting.pop_front();
      std::vector<int> nodes;
      if (try_start(now, &nodes)) {
        holding[thread] = std::move(nodes);
        const int64_t jitter =
            options.service_micros / 10 > 0
                ? rng.UniformRange(-options.service_micros / 10,
                                   options.service_micros / 10)
                : 0;
        events.push(Event{now + options.service_micros + jitter,
                          Event::Type::kCompletion, thread});
      } else {
        waiting.push_front(thread);
        break;
      }
    }
  };

  for (int client = 0; client < clients; ++client) issue(client, 0);

  while (!events.empty()) {
    Event ev = events.top();
    events.pop();
    if (ev.time >= options.duration_micros) break;
    switch (ev.type) {
      case Event::Type::kCompletion: {
        release(ev.id);
        result.completed++;
        if (completed_metric != nullptr) {
          completed_metric->Increment();
          latency_metric->Observe(static_cast<double>(
              ev.time - issued_at[static_cast<size_t>(ev.id)]));
        }
        const size_t bucket =
            static_cast<size_t>(ev.time / options.bucket_micros);
        if (bucket < buckets.size()) buckets[bucket]++;
        drain_waiting(ev.time);
        if (options.think_micros > 0) {
          events.push(Event{ev.time + options.think_micros,
                            Event::Type::kIssue, ev.id});
        } else {
          issue(ev.id, ev.time);
        }
        break;
      }
      case Event::Type::kIssue:
        issue(ev.id, ev.time);
        break;
      case Event::Type::kKill: {
        if (ev.id < 0 || ev.id >= n) break;
        up[ev.id] = false;
        // Shards the node was subscribed to stall for the failover
        // blackout; other subscribers then pick them up.
        for (int shard = 0; shard < s; ++shard) {
          for (int sub : subscribers(shard)) {
            if (sub == ev.id) {
              blackout_until[shard] = std::max(
                  blackout_until[shard],
                  ev.time + options.failover_blackout_micros);
            }
          }
        }
        if (options.failover_blackout_micros > 0) {
          // Wake blocked threads once failover completes (id -1 = no
          // topology change, just a retry tick).
          events.push(Event{ev.time + options.failover_blackout_micros + 1,
                            Event::Type::kRestart, -1});
        }
        break;
      }
      case Event::Type::kRestart: {
        if (ev.id >= 0 && ev.id < n) up[ev.id] = true;
        drain_waiting(ev.time);
        break;
      }
    }
  }

  result.per_minute = static_cast<double>(result.completed) * 60e6 /
                      static_cast<double>(options.duration_micros);
  for (int64_t b = 0; b < num_buckets; ++b) {
    result.buckets.emplace_back(b * options.bucket_micros,
                                buckets[static_cast<size_t>(b)]);
  }
  return result;
}

}  // namespace eon
