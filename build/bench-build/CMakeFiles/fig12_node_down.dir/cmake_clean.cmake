file(REMOVE_RECURSE
  "../bench/fig12_node_down"
  "../bench/fig12_node_down.pdb"
  "CMakeFiles/fig12_node_down.dir/fig12_node_down.cc.o"
  "CMakeFiles/fig12_node_down.dir/fig12_node_down.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_node_down.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
