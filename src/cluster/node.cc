#include "cluster/node.h"

#include "common/hash.h"

namespace eon {

Node::Node(Oid oid, std::string name, std::string subcluster,
           ObjectStore* shared_storage, Clock* clock,
           const NodeOptions& options, uint64_t seed)
    : oid_(oid),
      name_(std::move(name)),
      subcluster_(std::move(subcluster)),
      shared_(shared_storage),
      clock_(clock),
      options_(options),
      seed_(seed) {
  instance_id_ = NodeInstanceId::Generate(seed_, oid_);
  catalog_ = std::make_unique<Catalog>();
  dc_ = std::make_unique<obs::DataCollector>(name_, clock_, options_.dc);
  // Label this node's cache instruments with the node name so one metrics
  // snapshot distinguishes per-node cache behavior.
  CacheOptions cache_opts = options_.cache;
  if (cache_opts.metrics_name.empty()) cache_opts.metrics_name = name_;
  if (cache_opts.collector == nullptr) cache_opts.collector = dc_.get();
  cache_ = std::make_unique<FileCache>(cache_opts, shared_);
  up_gauge_ = obs::OrDefault(cache_opts.registry)
                  ->GetGauge("eon_node_up", obs::LabelSet{{"node", name_}});
  up_gauge_->Set(1);
  // WAL + WOS live for the whole node lifetime: up/down transitions
  // close/clear them in place (see MarkDown) so in-flight statements
  // never race their destruction.
  if (options_.wos.enabled) {
    wos_ = std::make_unique<Wos>();
    WalOptions wopts;
    wopts.group_commit_micros = options_.wos.group_commit_micros;
    wopts.segment_bytes = options_.wos.wal_segment_bytes;
    wopts.registry = options_.cache.registry;
    wopts.collector = dc_.get();
    wal_ = std::make_unique<WalWriter>(
        shared_, WalPrefix(), clock_, wopts,
        [this](const WalRecord& record) { wos_->Apply(record); });
  }
}

std::string Node::MintStorageKey(const std::string& prefix) {
  StorageId sid;
  sid.instance = instance_id_;
  sid.local_id = catalog_->NextOid();
  return prefix + sid.ToString();
}

std::set<ShardId> Node::SubscribedShards(
    const std::set<SubscriptionState>& states) const {
  std::set<ShardId> out;
  auto snapshot = catalog_->snapshot();
  for (const auto& [key, sub] : snapshot->subscriptions) {
    if (key.first == oid_ && states.count(sub.state)) out.insert(key.second);
  }
  return out;
}

std::set<ShardId> Node::AllSubscribedShards() const {
  return SubscribedShards({SubscriptionState::kPending,
                           SubscriptionState::kPassive,
                           SubscriptionState::kActive,
                           SubscriptionState::kRemoving});
}

void Node::MarkDown() {
  up_ = false;
  up_gauge_->Set(0);
  // Process termination loses the in-memory WOS; the records survive in
  // the shared-storage WAL and RecoverWos replays them on restart. The
  // writer is closed (not destroyed) so buffered-but-uncommitted appends
  // vanish exactly like a crash before group commit, while statements
  // that already hold the pointer fail their Commit cleanly instead of
  // touching freed memory.
  if (wal_ != nullptr) wal_->Close();
  if (wos_ != nullptr) wos_->Clear();
}

void Node::MarkUp() {
  // A fresh process gets a fresh strongly random instance id, preserving
  // SID uniqueness across restarts (Figure 7 discussion).
  seed_ = Mix64(seed_ + 0x517CC1B727220A95ULL);
  instance_id_ = NodeInstanceId::Generate(seed_, oid_);
  up_ = true;
  up_gauge_->Set(1);
}

void Node::DestroyLocalState() {
  catalog_ = std::make_unique<Catalog>();
  cache_->Clear();
  sync_.reset();
  // Instance loss wipes the memtable with the rest of local state; the
  // WAL lives on shared storage and survives for RecoverWos. Close/clear
  // in place — in-flight statements may still hold the pointers.
  if (wal_ != nullptr) wal_->Close();
  if (wos_ != nullptr) wos_->Clear();
  up_ = false;
  up_gauge_->Set(0);
}

void Node::ReplaceCatalog(std::unique_ptr<Catalog> catalog) {
  catalog_ = std::move(catalog);
}

void Node::SetIncarnation(const IncarnationId& incarnation) {
  sync_ = std::make_unique<CatalogSync>(shared_, incarnation, oid_);
  sync_->set_checkpoint_every(options_.sync_checkpoint_every);
}

void Node::RegisterQuery(uint64_t version) {
  std::lock_guard<std::mutex> lock(query_mu_);
  running_query_versions_.insert(version);
}

void Node::UnregisterQuery(uint64_t version) {
  std::lock_guard<std::mutex> lock(query_mu_);
  auto it = running_query_versions_.find(version);
  if (it != running_query_versions_.end()) {
    running_query_versions_.erase(it);
  }
}

Status Node::RecoverWos() {
  if (!options_.wos.enabled || wal_ == nullptr) return Status::OK();
  wos_->Clear();
  wal_->Reopen();

  EON_ASSIGN_OR_RETURN(WalReplay replay, ReadWal(shared_, WalPrefix()));
  for (const WalRecord& record : replay.records) wos_->Apply(record);
  // Resume past the checkpoint too, not just the surviving records: a
  // moveout that flushed everything truncates the whole log, leaving
  // max_lsn == 0 with a checkpoint at L. Restarting LSNs at 1 would let
  // subsequently committed inserts land at LSNs <= L — which the NEXT
  // restart's checkpoint filter silently discards.
  const uint64_t resume = std::max(replay.max_lsn, replay.checkpoint_lsn);
  if (resume > 0) {
    wal_->SetNextLsn(resume + 1);
    obs::DcWalEvent e;
    e.kind = "replay";
    e.lsn = resume;
    e.records = replay.records.size();
    dc_->RecordWalEvent(std::move(e));
  }
  return Status::OK();
}

uint64_t Node::MinRunningQueryVersion() const {
  std::lock_guard<std::mutex> lock(query_mu_);
  uint64_t v = running_query_versions_.empty()
                   ? catalog_->version()
                   : *running_query_versions_.begin();
  // "taking care to ensure the reported value is monotonically increasing"
  // (Section 6.5).
  if (v < reported_min_version_) v = reported_min_version_;
  reported_min_version_ = v;
  return v;
}

}  // namespace eon
