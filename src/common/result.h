#ifndef EON_COMMON_RESULT_H_
#define EON_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace eon {

/// A value-or-error return type: either holds a T or a non-OK Status.
/// Follows the Arrow Result<T> idiom.
template <typename T>
class Result {
 public:
  /// Implicit from value: allows `return value;` in Result-returning code.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status: allows `return Status::NotFound(...);`.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Access the contained value. Precondition: ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when in error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Assign the value of a Result expression or propagate its error.
/// Usage: EON_ASSIGN_OR_RETURN(auto x, ComputeX());
#define EON_ASSIGN_OR_RETURN(decl, expr)             \
  EON_ASSIGN_OR_RETURN_IMPL(                         \
      EON_RESULT_CONCAT(_eon_result_, __LINE__), decl, expr)

#define EON_ASSIGN_OR_RETURN_IMPL(tmp, decl, expr)   \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  decl = std::move(tmp).value()

#define EON_RESULT_CONCAT_INNER(a, b) a##b
#define EON_RESULT_CONCAT(a, b) EON_RESULT_CONCAT_INNER(a, b)

}  // namespace eon

#endif  // EON_COMMON_RESULT_H_
