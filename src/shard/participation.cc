#include "shard/participation.h"

#include <algorithm>

#include "common/random.h"
#include "shard/maxflow.h"

namespace eon {

std::set<Oid> ParticipationResult::Nodes() const {
  std::set<Oid> out;
  for (const auto& [shard, node] : shard_to_node) out.insert(node);
  return out;
}

std::vector<ShardId> ParticipationResult::ShardsOf(Oid node) const {
  std::vector<ShardId> out;
  for (const auto& [shard, n] : shard_to_node) {
    if (n == node) out.push_back(shard);
  }
  return out;
}

Result<ParticipationResult> SelectParticipatingNodes(
    const CatalogState& state, const std::set<Oid>& up_nodes,
    const ParticipationOptions& options) {
  const uint32_t num_shards = state.sharding.num_segment_shards;
  if (num_shards == 0) {
    return Status::InvalidArgument("sharding not configured");
  }

  // Serving states: ACTIVE normally; REMOVING still serves (Figure 4).
  const std::set<SubscriptionState> serving = {SubscriptionState::kActive,
                                               SubscriptionState::kRemoving};

  // Collect candidate nodes per shard, and the overall node universe.
  std::vector<std::vector<Oid>> shard_candidates(num_shards);
  std::set<Oid> all_nodes;
  for (ShardId s = 0; s < num_shards; ++s) {
    for (Oid n : state.SubscribersOf(s, serving)) {
      if (!up_nodes.count(n)) continue;
      shard_candidates[s].push_back(n);
      all_nodes.insert(n);
    }
    if (shard_candidates[s].empty()) {
      return Status::Unavailable("shard " + std::to_string(s) +
                                 " has no live ACTIVE subscriber");
    }
  }

  // Priority groups: default is one group with every candidate node.
  std::vector<std::vector<Oid>> groups = options.priority_groups;
  if (groups.empty()) {
    groups.push_back(std::vector<Oid>(all_nodes.begin(), all_nodes.end()));
  }

  // Vertex numbering: 0 = source, 1..S = shards, then nodes, last = sink.
  std::map<Oid, int> node_vertex;
  int next_vertex = 1 + static_cast<int>(num_shards);
  for (Oid n : all_nodes) node_vertex[n] = next_vertex++;
  const int sink = next_vertex;
  MaxFlowGraph graph(sink + 1);
  const int source = 0;

  for (ShardId s = 0; s < num_shards; ++s) {
    graph.AddEdge(source, 1 + static_cast<int>(s), 1);
  }

  // Shard→node edges; creation order varied by seed so equivalent max
  // flows differ run to run, spreading load (Section 4.1).
  Random rng(options.variation_seed + 1);
  std::map<std::pair<ShardId, Oid>, int> shard_node_edge;
  for (ShardId s = 0; s < num_shards; ++s) {
    std::vector<Oid> cands = shard_candidates[s];
    for (size_t i = cands.size(); i > 1; --i) {
      std::swap(cands[i - 1], cands[rng.Uniform(i)]);
    }
    for (Oid n : cands) {
      shard_node_edge[{s, n}] =
          graph.AddEdge(1 + static_cast<int>(s), node_vertex[n], 1);
    }
  }

  // Node→sink edges start with the top priority group at even capacity.
  const int64_t base_capacity = std::max<int64_t>(
      1, num_shards / std::max<size_t>(1, all_nodes.size()));
  std::map<Oid, int> sink_edge;
  size_t group_idx = 0;
  int64_t capacity = base_capacity;

  auto add_group = [&](size_t g) {
    for (Oid n : groups[g]) {
      if (!node_vertex.count(n) || sink_edge.count(n)) continue;
      sink_edge[n] = graph.AddEdge(node_vertex[n], sink, capacity);
    }
  };
  add_group(group_idx++);

  // Successive rounds: add lower-priority groups first, then raise
  // capacities; existing flow is left intact (paper Section 4.1).
  int64_t flow = graph.Solve(source, sink);
  while (flow < num_shards) {
    if (group_idx < groups.size()) {
      add_group(group_idx++);
    } else {
      capacity++;
      if (capacity > static_cast<int64_t>(num_shards)) {
        return Status::Internal("participation flow cannot cover all shards");
      }
      for (const auto& [n, edge] : sink_edge) {
        graph.SetCapacity(edge, capacity);
      }
    }
    flow = graph.Solve(source, sink);
  }

  ParticipationResult result;
  for (const auto& [key, edge] : shard_node_edge) {
    if (graph.EdgeFlow(edge) > 0) {
      result.shard_to_node[key.first] = key.second;
    }
  }
  EON_CHECK(result.shard_to_node.size() == num_shards);
  return result;
}

std::vector<std::pair<Oid, ShardId>> PlanSubscriptionLayout(
    const CatalogState& state, const std::vector<NodeDef>& nodes, int k) {
  const uint32_t num_shards = state.sharding.num_segment_shards;
  std::vector<std::pair<Oid, ShardId>> out;
  if (num_shards == 0 || nodes.empty()) return out;

  // Group nodes by subcluster; each subcluster covers all shards on its own.
  std::map<std::string, std::vector<Oid>> by_subcluster;
  for (const NodeDef& n : nodes) by_subcluster[n.subcluster].push_back(n.oid);

  std::set<std::pair<Oid, ShardId>> dedup;
  for (auto& [name, ring] : by_subcluster) {
    std::sort(ring.begin(), ring.end());
    const int replicas =
        std::min<int>(std::max(k, 1), static_cast<int>(ring.size()));
    for (ShardId s = 0; s < num_shards; ++s) {
      for (int r = 0; r < replicas; ++r) {
        Oid node = ring[(s + static_cast<uint32_t>(r)) % ring.size()];
        if (dedup.insert({node, s}).second) out.emplace_back(node, s);
      }
    }
    // Every node subscribes to the replica shard (replicated projections
    // live on all nodes).
    for (Oid node : ring) {
      if (dedup.insert({node, state.sharding.replica_shard()}).second) {
        out.emplace_back(node, state.sharding.replica_shard());
      }
    }
  }
  return out;
}

}  // namespace eon
