#ifndef EON_ENTERPRISE_ENTERPRISE_H_
#define EON_ENTERPRISE_ENTERPRISE_H_

#include <memory>
#include <string>
#include <vector>

#include "engine/executor.h"
#include "engine/dml.h"
#include "engine/ddl.h"

namespace eon {

struct EnterpriseOptions {
  uint64_t seed = 42;
  /// Local-disk read bandwidth (bytes/s) used for the recovery cost model
  /// (Enterprise recovery logically transfers the node's entire dataset,
  /// Section 6.1).
  int64_t disk_bandwidth_bytes_per_sec = 400LL * 1000 * 1000;
};

/// The paper's comparison baseline: Vertica "Enterprise mode", re-built
/// from its description in Sections 2, 6 and 8 on the same substrate as
/// Eon mode, with Enterprise semantics pinned:
///
///  - fixed layout: segment shards == nodes; node i owns hash region i and
///    a rotated-ring "buddy" stores region i's replica on node i+1 — so a
///    node-set change requires redistributing all records (inelastic);
///  - direct-attached private disk: every node stores all of its regions'
///    data locally (modeled as an unbounded write-through cache — scans
///    never touch remote storage);
///  - queries always run on ALL up nodes with the fixed region→node map;
///    when a node is down, the optimizer sources the missing regions from
///    the buddy, doubling its load (the Fig. 12 cliff);
///  - node recovery logically transfers the node's entire dataset from
///    its buddies, with table locks — cost proportional to the node's full
///    data, not its working set (Section 6.1).
class EnterpriseCluster {
 public:
  static Result<std::unique_ptr<EnterpriseCluster>> Create(
      Clock* clock, const EnterpriseOptions& options,
      const std::vector<std::string>& node_names);

  /// DDL/DML pass through to the shared substrate.
  Result<Oid> CreateTable(const std::string& name, const Schema& schema,
                          std::optional<std::string> partition_column,
                          const std::vector<ProjectionSpec>& projections);
  Result<uint64_t> Copy(const std::string& table, const std::vector<Row>& rows);

  /// Execute with Enterprise's fixed participation: every up node serves
  /// its own region; regions of down nodes fall to their buddies.
  Result<QueryResult> Execute(const QuerySpec& spec);

  Status KillNode(const std::string& name);

  /// Restart + Enterprise recovery: repairs every projection by logically
  /// transferring the node's entire dataset from its peers. Returns the
  /// number of bytes transferred (the recovery-cost figure) and charges
  /// the transfer time to the clock.
  Result<uint64_t> RestartNodeWithRecovery(const std::string& name);

  /// Bytes a recovery of `name` must move: all containers of its regions.
  Result<uint64_t> RecoveryBytes(const std::string& name);

  /// The underlying machinery (tests, benches).
  EonCluster* inner() { return cluster_.get(); }
  size_t num_nodes() const { return cluster_->nodes().size(); }

 private:
  EnterpriseCluster() = default;

  /// Fixed region→node participation honoring down nodes via buddies.
  Result<ExecContext> FixedContext();

  std::unique_ptr<MemObjectStore> disk_union_;
  std::unique_ptr<EonCluster> cluster_;
  EnterpriseOptions options_;
  Clock* clock_ = nullptr;
};

}  // namespace eon

#endif  // EON_ENTERPRISE_ENTERPRISE_H_
