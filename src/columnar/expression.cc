#include "columnar/expression.h"

namespace eon {

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq: return "=";
    case CmpOp::kNe: return "<>";
    case CmpOp::kLt: return "<";
    case CmpOp::kLe: return "<=";
    case CmpOp::kGt: return ">";
    case CmpOp::kGe: return ">=";
  }
  return "?";
}

PredicatePtr Predicate::True() {
  auto p = std::shared_ptr<Predicate>(new Predicate());
  p->kind_ = Kind::kTrue;
  return p;
}

PredicatePtr Predicate::Cmp(size_t col_index, CmpOp op, Value literal) {
  auto p = std::shared_ptr<Predicate>(new Predicate());
  p->kind_ = Kind::kCmp;
  p->col_ = col_index;
  p->op_ = op;
  p->literal_ = std::move(literal);
  return p;
}

PredicatePtr Predicate::And(PredicatePtr a, PredicatePtr b) {
  auto p = std::shared_ptr<Predicate>(new Predicate());
  p->kind_ = Kind::kAnd;
  p->left_ = std::move(a);
  p->right_ = std::move(b);
  return p;
}

PredicatePtr Predicate::Or(PredicatePtr a, PredicatePtr b) {
  auto p = std::shared_ptr<Predicate>(new Predicate());
  p->kind_ = Kind::kOr;
  p->left_ = std::move(a);
  p->right_ = std::move(b);
  return p;
}

PredicatePtr Predicate::Not(PredicatePtr a) {
  auto p = std::shared_ptr<Predicate>(new Predicate());
  p->kind_ = Kind::kNot;
  p->left_ = std::move(a);
  return p;
}

bool Predicate::Eval(const Row& row) const {
  switch (kind_) {
    case Kind::kTrue:
      return true;
    case Kind::kCmp: {
      if (col_ >= row.size()) return false;
      const Value& v = row[col_];
      if (v.is_null() || literal_.is_null()) return false;
      int c = v.Compare(literal_);
      switch (op_) {
        case CmpOp::kEq: return c == 0;
        case CmpOp::kNe: return c != 0;
        case CmpOp::kLt: return c < 0;
        case CmpOp::kLe: return c <= 0;
        case CmpOp::kGt: return c > 0;
        case CmpOp::kGe: return c >= 0;
      }
      return false;
    }
    case Kind::kAnd:
      return left_->Eval(row) && right_->Eval(row);
    case Kind::kOr:
      return left_->Eval(row) || right_->Eval(row);
    case Kind::kNot:
      return !left_->Eval(row);
  }
  return false;
}

bool Predicate::CouldMatch(const std::vector<ValueRange>& ranges) const {
  switch (kind_) {
    case Kind::kTrue:
      return true;
    case Kind::kCmp: {
      if (col_ >= ranges.size()) return true;
      const ValueRange& r = ranges[col_];
      if (!r.valid || literal_.is_null()) return true;
      // All range bounds are non-null by construction (null rows tracked by
      // has_null and never satisfy a comparison anyway).
      int cmin = r.min.Compare(literal_);
      int cmax = r.max.Compare(literal_);
      switch (op_) {
        case CmpOp::kEq: return cmin <= 0 && cmax >= 0;
        case CmpOp::kNe: return !(cmin == 0 && cmax == 0);
        case CmpOp::kLt: return cmin < 0;
        case CmpOp::kLe: return cmin <= 0;
        case CmpOp::kGt: return cmax > 0;
        case CmpOp::kGe: return cmax >= 0;
      }
      return true;
    }
    case Kind::kAnd:
      return left_->CouldMatch(ranges) && right_->CouldMatch(ranges);
    case Kind::kOr:
      return left_->CouldMatch(ranges) || right_->CouldMatch(ranges);
    case Kind::kNot:
      // NOT cannot be range-refuted without interval complement logic;
      // stay conservative.
      return true;
  }
  return true;
}

void Predicate::CollectColumns(std::set<size_t>* cols) const {
  switch (kind_) {
    case Kind::kTrue:
      return;
    case Kind::kCmp:
      cols->insert(col_);
      return;
    case Kind::kAnd:
    case Kind::kOr:
      left_->CollectColumns(cols);
      right_->CollectColumns(cols);
      return;
    case Kind::kNot:
      left_->CollectColumns(cols);
      return;
  }
}

double Predicate::EstimatedSelectivity() const {
  switch (kind_) {
    case Kind::kTrue:
      return 1.0;
    case Kind::kCmp:
      switch (op_) {
        case CmpOp::kEq: return 0.05;
        case CmpOp::kNe: return 0.95;
        default: return 0.3;
      }
    case Kind::kAnd:
      return left_->EstimatedSelectivity() * right_->EstimatedSelectivity();
    case Kind::kOr: {
      double a = left_->EstimatedSelectivity();
      double b = right_->EstimatedSelectivity();
      return a + b - a * b;
    }
    case Kind::kNot:
      return 1.0 - left_->EstimatedSelectivity();
  }
  return 1.0;
}

std::string Predicate::ToString() const {
  switch (kind_) {
    case Kind::kTrue:
      return "TRUE";
    case Kind::kCmp:
      return "col" + std::to_string(col_) + " " + CmpOpName(op_) + " " +
             literal_.ToString();
    case Kind::kAnd:
      return "(" + left_->ToString() + " AND " + right_->ToString() + ")";
    case Kind::kOr:
      return "(" + left_->ToString() + " OR " + right_->ToString() + ")";
    case Kind::kNot:
      return "NOT (" + left_->ToString() + ")";
  }
  return "?";
}

}  // namespace eon
