#include "engine/system_tables.h"

#include <fstream>
#include <map>
#include <mutex>
#include <utility>

#include "cluster/cluster.h"
#include "obs/dc.h"
#include "obs/metrics.h"

namespace eon {

namespace {

Value I(int64_t v) { return Value::Int(v); }
Value U(uint64_t v) { return Value::Int(static_cast<int64_t>(v)); }
Value S(std::string s) { return Value::Str(std::move(s)); }
Value D(double v) { return Value::Dbl(v); }

ColumnDef Col(const char* name, DataType type) {
  ColumnDef c;
  c.name = name;
  c.type = type;
  return c;
}

/// name -> schema, built once. Column ORDER here is the row layout
/// MaterializeSystemTable emits, so keep the two in sync.
const std::map<std::string, Schema>& Registry() {
  static const std::map<std::string, Schema>* kTables = [] {
    const DataType kI = DataType::kInt64;
    const DataType kD = DataType::kDouble;
    const DataType kS = DataType::kString;
    auto* m = new std::map<std::string, Schema>;
    (*m)["dc_query_executions"] = Schema({
        Col("node", kS), Col("query_id", kI), Col("table", kS),
        Col("at_micros", kI), Col("sim_micros", kI), Col("wall_micros", kI),
        Col("rows_out", kI), Col("rows_scanned", kI), Col("cache_hits", kI),
        Col("cache_misses", kI), Col("store_gets", kI), Col("cost", kI),
        Col("slow", kI), Col("plan_sim_micros", kI), Col("scan_sim_micros", kI),
        Col("join_sim_micros", kI), Col("aggregate_sim_micros", kI),
        Col("merge_sim_micros", kI), Col("queued_micros", kI),
        Col("pool", kS), Col("trace_id", kI)});
    (*m)["dc_cache_events"] = Schema({
        Col("node", kS), Col("at_micros", kI), Col("kind", kS),
        Col("key", kS), Col("bytes", kI)});
    (*m)["dc_store_requests"] = Schema({
        Col("store", kS), Col("node", kS), Col("at_micros", kI),
        Col("op", kS), Col("key", kS), Col("bytes", kI),
        Col("latency_micros", kI), Col("cost", kI), Col("ok", kI),
        Col("origin", kS), Col("bytes_scanned", kI), Col("trace_id", kI)});
    (*m)["dc_trace_spans"] = Schema({
        Col("node", kS), Col("trace_id", kI), Col("span_id", kI),
        Col("parent_id", kI), Col("name", kS), Col("start_micros", kI),
        Col("end_micros", kI), Col("duration_micros", kI),
        Col("attributes", kS)});
    (*m)["dc_mergeout_events"] = Schema({
        Col("node", kS), Col("at_micros", kI), Col("projection", kS),
        Col("shard", kI), Col("inputs", kI), Col("rows_written", kI),
        Col("stratum", kI), Col("sim_micros", kI)});
    (*m)["dc_subscription_events"] = Schema({
        Col("node", kS), Col("at_micros", kI), Col("shard", kI),
        Col("from_state", kS), Col("to_state", kS), Col("reason", kS)});
    (*m)["dc_wal_events"] = Schema({
        Col("node", kS), Col("at_micros", kI), Col("kind", kS),
        Col("table", kS), Col("lsn", kI), Col("records", kI),
        Col("bytes", kI), Col("wait_micros", kI)});
    (*m)["system_nodes"] = Schema({
        Col("name", kS), Col("oid", kI), Col("subcluster", kS),
        Col("state", kS), Col("cache_bytes", kI), Col("cache_files", kI),
        Col("subscriptions", kI)});
    (*m)["system_subscriptions"] = Schema({
        Col("name", kS), Col("node_oid", kI), Col("shard", kI),
        Col("state", kS)});
    (*m)["system_cache"] = Schema({
        Col("node", kS), Col("capacity_bytes", kI), Col("size_bytes", kI),
        Col("files", kI), Col("pinned_refs", kI), Col("hits", kI),
        Col("misses", kI), Col("bytes_hit", kI), Col("bytes_filled", kI),
        Col("insertions", kI), Col("evictions", kI), Col("coalesced", kI),
        Col("prefetch_issued", kI), Col("prefetch_useful", kI),
        Col("prefetch_wasted", kI), Col("prefetch_coalesced", kI),
        Col("prefetch_rejected", kI)});
    (*m)["system_storage_containers"] = Schema({
        Col("table", kS), Col("projection", kS), Col("shard", kI),
        Col("container_oid", kI), Col("base_key", kS), Col("rows", kI),
        Col("bytes", kI), Col("stratum", kI), Col("create_version", kI)});
    (*m)["system_metrics"] = Schema({
        Col("name", kS), Col("labels", kS), Col("kind", kS),
        Col("value", kD), Col("count", kI), Col("p50", kD), Col("p95", kD),
        Col("p99", kD)});
    (*m)["system_resource_pools"] = Schema({
        Col("pool", kS), Col("priority", kI), Col("slot_budget", kI),
        Col("slots_in_use", kI), Col("memory_budget_bytes", kI),
        Col("memory_in_use_bytes", kI), Col("queue_depth", kI),
        Col("max_queue_depth", kI), Col("queue_timeout_micros", kI),
        Col("admitted", kI), Col("shed", kI), Col("timed_out", kI),
        Col("cancelled", kI), Col("queued_micros_total", kI)});
    (*m)["system_sessions"] = Schema({
        Col("session_id", kI), Col("connected_node", kS), Col("pool", kS),
        Col("scan_mode", kS), Col("crunch", kS), Col("state", kS),
        Col("queries", kI), Col("prepared_statements", kI)});
    (*m)["system_wos"] = Schema({
        Col("node", kS), Col("table", kS), Col("table_oid", kI),
        Col("batches", kI), Col("rows", kI), Col("unflushed_rows", kI),
        Col("flushed_batches", kI), Col("tombstoned_rows", kI),
        Col("bytes", kI), Col("min_lsn", kI), Col("max_lsn", kI)});
    return m;
  }();
  return *kTables;
}

/// Every Data Collector with events relevant to this cluster: each node's
/// (down nodes keep their history) plus the process-wide default, which
/// unowned components (shared object stores) record into.
std::vector<const obs::DataCollector*> Collectors(EonCluster* cluster) {
  std::vector<const obs::DataCollector*> out;
  if (cluster != nullptr) {
    for (const auto& node : cluster->nodes()) out.push_back(node->dc());
  }
  out.push_back(obs::DataCollector::Default());
  return out;
}

/// Best catalog snapshot available: any up node, else any node that still
/// has a catalog (kills retain local state), else null.
std::shared_ptr<const CatalogState> BestSnapshot(EonCluster* cluster) {
  if (cluster == nullptr) return nullptr;
  Node* coord = cluster->AnyUpNode();
  if (coord != nullptr) return coord->catalog()->snapshot();
  for (const auto& node : cluster->nodes()) {
    if (node->catalog() != nullptr) return node->catalog()->snapshot();
  }
  return nullptr;
}

std::string NodeNameFor(EonCluster* cluster, Oid oid) {
  Node* n = cluster == nullptr ? nullptr : cluster->node(oid);
  return n != nullptr ? n->name() : ("node" + std::to_string(oid));
}

std::vector<Row> QueryExecutionRows(EonCluster* cluster) {
  std::vector<Row> rows;
  for (const obs::DataCollector* dc : Collectors(cluster)) {
    for (const obs::DcQueryExecution& e : dc->QueryExecutions()) {
      const obs::QueryProfile& p = e.profile;
      rows.push_back(Row{
          S(e.node), U(e.query_id), S(e.table), I(e.at_micros),
          I(e.sim_micros), I(e.wall_micros), U(e.rows_out), U(e.rows_scanned),
          U(e.cache_hits), U(e.cache_misses), U(e.store_gets),
          U(e.cost_microdollars), I(e.slow ? 1 : 0),
          I(p.Phase(obs::QueryPhase::kPlan).sim_micros),
          I(p.Phase(obs::QueryPhase::kScan).sim_micros),
          I(p.Phase(obs::QueryPhase::kJoin).sim_micros),
          I(p.Phase(obs::QueryPhase::kAggregate).sim_micros),
          I(p.Phase(obs::QueryPhase::kMerge).sim_micros),
          I(e.queued_micros), S(e.pool), U(e.trace_id)});
    }
  }
  return rows;
}

std::vector<Row> CacheEventRows(EonCluster* cluster) {
  std::vector<Row> rows;
  for (const obs::DataCollector* dc : Collectors(cluster)) {
    for (const obs::DcCacheEvent& e : dc->CacheEvents()) {
      rows.push_back(Row{S(e.node), I(e.at_micros),
                         S(obs::DcCacheEventKindName(e.kind)), S(e.key),
                         U(e.bytes)});
    }
  }
  return rows;
}

std::vector<Row> StoreRequestRows(EonCluster* cluster) {
  std::vector<Row> rows;
  for (const obs::DataCollector* dc : Collectors(cluster)) {
    for (const obs::DcStoreRequest& e : dc->StoreRequests()) {
      rows.push_back(Row{S(e.store), S(e.node), I(e.at_micros), S(e.op),
                         S(e.key), U(e.bytes), I(e.latency_micros),
                         U(e.cost_microdollars), I(e.ok ? 1 : 0),
                         S(e.origin), U(e.bytes_scanned), U(e.trace_id)});
    }
  }
  return rows;
}

std::vector<Row> TraceSpanRows(EonCluster* cluster) {
  std::vector<Row> rows;
  for (const obs::DataCollector* dc : Collectors(cluster)) {
    for (const obs::SpanData& s : dc->TraceSpans()) {
      // Attributes flatten to "k=v,k=v" — enough for eyeballing and LIKE
      // filters; the Chrome export keeps them structured.
      std::string attrs;
      for (const auto& [k, v] : s.attributes) {
        if (!attrs.empty()) attrs += ",";
        attrs += k + "=" + v;
      }
      rows.push_back(Row{S(s.node), U(s.trace_id), U(s.id), U(s.parent_id),
                         S(s.name), I(s.start_micros), I(s.end_micros),
                         I(s.DurationMicros()), S(std::move(attrs))});
    }
  }
  return rows;
}

std::vector<Row> MergeoutRows(EonCluster* cluster) {
  std::vector<Row> rows;
  for (const obs::DataCollector* dc : Collectors(cluster)) {
    for (const obs::DcMergeoutEvent& e : dc->MergeoutEvents()) {
      rows.push_back(Row{S(e.node), I(e.at_micros), S(e.projection),
                         U(e.shard), U(e.inputs), U(e.rows_written),
                         U(e.stratum), I(e.sim_micros)});
    }
  }
  return rows;
}

std::vector<Row> SubscriptionEventRows(EonCluster* cluster) {
  std::vector<Row> rows;
  for (const obs::DataCollector* dc : Collectors(cluster)) {
    for (const obs::DcSubscriptionEvent& e : dc->SubscriptionEvents()) {
      rows.push_back(Row{S(e.node), I(e.at_micros), U(e.shard),
                         S(e.from_state), S(e.to_state), S(e.reason)});
    }
  }
  return rows;
}

std::vector<Row> WalEventRows(EonCluster* cluster) {
  std::vector<Row> rows;
  for (const obs::DataCollector* dc : Collectors(cluster)) {
    for (const obs::DcWalEvent& e : dc->WalEvents()) {
      rows.push_back(Row{S(e.node), I(e.at_micros), S(e.kind), S(e.table),
                         U(e.lsn), U(e.records), U(e.bytes),
                         I(e.wait_micros)});
    }
  }
  return rows;
}

std::vector<Row> WosRows(EonCluster* cluster) {
  std::vector<Row> rows;
  if (cluster == nullptr) return rows;
  auto snapshot = BestSnapshot(cluster);
  for (const auto& node : cluster->nodes()) {
    if (node->wos() == nullptr) continue;
    for (const WosTableStats& s : node->wos()->SnapshotStats()) {
      const TableDef* table =
          snapshot == nullptr ? nullptr : snapshot->FindTable(s.table_oid);
      rows.push_back(Row{S(node->name()),
                         S(table != nullptr ? table->name : ""),
                         U(s.table_oid), U(s.batches), U(s.rows),
                         U(s.unflushed_rows), U(s.flushed_batches),
                         U(s.tombstoned_rows), U(s.bytes), U(s.min_lsn),
                         U(s.max_lsn)});
    }
  }
  return rows;
}

std::vector<Row> NodeRows(EonCluster* cluster) {
  std::vector<Row> rows;
  if (cluster == nullptr) return rows;
  auto snapshot = BestSnapshot(cluster);
  for (const auto& node : cluster->nodes()) {
    int64_t subs = 0;
    if (snapshot != nullptr) {
      for (const auto& [key, sub] : snapshot->subscriptions) {
        (void)sub;
        if (key.first == node->oid()) subs++;
      }
    }
    rows.push_back(Row{S(node->name()), U(node->oid()), S(node->subcluster()),
                       S(node->is_up() ? "UP" : "DOWN"),
                       U(node->cache()->size_bytes()),
                       U(node->cache()->file_count()), I(subs)});
  }
  return rows;
}

std::vector<Row> SubscriptionRows(EonCluster* cluster) {
  std::vector<Row> rows;
  auto snapshot = BestSnapshot(cluster);
  if (snapshot == nullptr) return rows;
  for (const auto& [key, sub] : snapshot->subscriptions) {
    rows.push_back(Row{S(NodeNameFor(cluster, key.first)), U(key.first),
                       U(key.second), S(SubscriptionStateName(sub.state))});
  }
  return rows;
}

std::vector<Row> CacheRows(EonCluster* cluster) {
  std::vector<Row> rows;
  if (cluster == nullptr) return rows;
  for (const auto& node : cluster->nodes()) {
    const FileCache* cache = node->cache();
    const CacheStats s = cache->stats();
    rows.push_back(Row{S(node->name()), U(cache->capacity_bytes()),
                       U(cache->size_bytes()), U(cache->file_count()),
                       U(cache->pinned_refs()), U(s.hits), U(s.misses),
                       U(s.bytes_hit), U(s.bytes_filled), U(s.insertions),
                       U(s.evictions), U(s.coalesced), U(s.prefetch_issued),
                       U(s.prefetch_useful), U(s.prefetch_wasted),
                       U(s.prefetch_coalesced), U(s.prefetch_rejected)});
  }
  return rows;
}

std::vector<Row> StorageContainerRows(EonCluster* cluster) {
  std::vector<Row> rows;
  if (cluster == nullptr) return rows;
  // Each node's catalog holds only its subscribed shards' containers;
  // union over every node, dedup by container oid, for the global view.
  std::map<Oid, Row> by_oid;
  for (const auto& node : cluster->nodes()) {
    if (node->catalog() == nullptr) continue;
    auto snapshot = node->catalog()->snapshot();
    for (const auto& [oid, c] : snapshot->containers) {
      if (by_oid.count(oid)) continue;
      const ProjectionDef* proj = snapshot->FindProjection(c.projection_oid);
      const TableDef* table =
          proj == nullptr ? nullptr : snapshot->FindTable(proj->table_oid);
      by_oid.emplace(
          oid, Row{S(table != nullptr ? table->name : ""),
                   S(proj != nullptr ? proj->name : ""), U(c.shard), U(c.oid),
                   S(c.base_key), U(c.row_count), U(c.total_bytes),
                   U(c.stratum), U(c.create_version)});
    }
  }
  for (auto& [oid, row] : by_oid) {
    (void)oid;
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<Row> MetricsRows(EonCluster* cluster) {
  obs::MetricsRegistry* reg =
      obs::OrDefault(cluster == nullptr ? nullptr : cluster->options().registry);
  const obs::MetricsSnapshot snapshot = reg->Snapshot();
  std::vector<Row> rows;
  for (const obs::MetricSample& s : snapshot.samples) {
    const char* kind = s.kind == obs::MetricSample::Kind::kCounter ? "counter"
                       : s.kind == obs::MetricSample::Kind::kGauge
                           ? "gauge"
                           : "histogram";
    if (s.kind == obs::MetricSample::Kind::kHistogram) {
      rows.push_back(Row{S(s.name), S(s.labels.Key()), S(kind),
                         D(s.histogram.sum), U(s.histogram.count),
                         D(s.histogram.P50()), D(s.histogram.P95()),
                         D(s.histogram.P99())});
    } else {
      rows.push_back(Row{S(s.name), S(s.labels.Key()), S(kind), D(s.value),
                         I(0), D(0), D(0), D(0)});
    }
  }
  return rows;
}

/// Registered serving layers (system_resource_pools / system_sessions row
/// sources). Registration happens at server construction, so the list is
/// tiny; a mutex-guarded vector suffices.
std::mutex& ServingMutex() {
  static std::mutex* mu = new std::mutex;
  return *mu;
}

std::vector<ServingIntrospection*>& ServingSources() {
  static std::vector<ServingIntrospection*>* v =
      new std::vector<ServingIntrospection*>;
  return *v;
}

/// Registered sources fronting `cluster` (all sources when cluster null).
std::vector<ServingIntrospection*> ServingFor(EonCluster* cluster) {
  std::lock_guard<std::mutex> lock(ServingMutex());
  std::vector<ServingIntrospection*> out;
  for (ServingIntrospection* s : ServingSources()) {
    if (cluster == nullptr || s->serving_cluster() == cluster) {
      out.push_back(s);
    }
  }
  return out;
}

std::vector<Row> ResourcePoolRows(EonCluster* cluster) {
  std::vector<Row> rows;
  for (ServingIntrospection* s : ServingFor(cluster)) {
    for (Row& row : s->ResourcePoolRows()) rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<Row> SessionRows(EonCluster* cluster) {
  std::vector<Row> rows;
  for (ServingIntrospection* s : ServingFor(cluster)) {
    for (Row& row : s->SessionRows()) rows.push_back(std::move(row));
  }
  return rows;
}

JsonValue ValueToJson(const Value& v) {
  if (v.is_null()) return JsonValue::Null();
  switch (v.type()) {
    case DataType::kInt64:
      return JsonValue::Int(v.int_value());
    case DataType::kDouble:
      return JsonValue::Double(v.dbl_value());
    case DataType::kString:
      return JsonValue::Str(v.str_value());
  }
  return JsonValue::Null();
}

JsonValue CountersJson(const obs::DcRingCounters& c) {
  JsonValue o = JsonValue::Object();
  o.Set("total", JsonValue::Int(static_cast<int64_t>(c.total)));
  o.Set("dropped", JsonValue::Int(static_cast<int64_t>(c.dropped)));
  return o;
}

}  // namespace

bool IsReservedSystemName(const std::string& name) {
  return name.rfind("dc_", 0) == 0 || name.rfind("system_", 0) == 0;
}

const Schema* SystemTableSchema(const std::string& name) {
  const auto& tables = Registry();
  auto it = tables.find(name);
  return it == tables.end() ? nullptr : &it->second;
}

const std::vector<std::string>& SystemTableNames() {
  static const std::vector<std::string>* kNames = [] {
    auto* v = new std::vector<std::string>;
    for (const auto& [name, schema] : Registry()) {
      (void)schema;
      v->push_back(name);
    }
    return v;
  }();
  return *kNames;
}

Result<std::vector<Row>> MaterializeSystemTable(EonCluster* cluster,
                                                const std::string& name) {
  if (name == "dc_query_executions") return QueryExecutionRows(cluster);
  if (name == "dc_cache_events") return CacheEventRows(cluster);
  if (name == "dc_store_requests") return StoreRequestRows(cluster);
  if (name == "dc_trace_spans") return TraceSpanRows(cluster);
  if (name == "dc_mergeout_events") return MergeoutRows(cluster);
  if (name == "dc_subscription_events") return SubscriptionEventRows(cluster);
  if (name == "dc_wal_events") return WalEventRows(cluster);
  if (name == "system_nodes") return NodeRows(cluster);
  if (name == "system_wos") return WosRows(cluster);
  if (name == "system_subscriptions") return SubscriptionRows(cluster);
  if (name == "system_cache") return CacheRows(cluster);
  if (name == "system_storage_containers") return StorageContainerRows(cluster);
  if (name == "system_metrics") return MetricsRows(cluster);
  if (name == "system_resource_pools") return ResourcePoolRows(cluster);
  if (name == "system_sessions") return SessionRows(cluster);
  return Status::NotFound("unknown system table: " + name);
}

void RegisterServingIntrospection(ServingIntrospection* source) {
  if (source == nullptr) return;
  std::lock_guard<std::mutex> lock(ServingMutex());
  auto& sources = ServingSources();
  for (ServingIntrospection* s : sources) {
    if (s == source) return;
  }
  sources.push_back(source);
}

void UnregisterServingIntrospection(ServingIntrospection* source) {
  std::lock_guard<std::mutex> lock(ServingMutex());
  auto& sources = ServingSources();
  for (auto it = sources.begin(); it != sources.end(); ++it) {
    if (*it == source) {
      sources.erase(it);
      return;
    }
  }
}

namespace obs {

JsonValue ExportSystemTables(EonCluster* cluster) {
  JsonValue root = JsonValue::Object();
  for (const std::string& name : SystemTableNames()) {
    const Schema* schema = SystemTableSchema(name);
    Result<std::vector<Row>> rows = MaterializeSystemTable(cluster, name);
    if (!rows.ok()) continue;
    JsonValue table = JsonValue::Object();
    JsonValue columns = JsonValue::Array();
    for (const ColumnDef& col : schema->columns()) {
      columns.Append(JsonValue::Str(col.name));
    }
    JsonValue out_rows = JsonValue::Array();
    for (const Row& row : rows.value()) {
      JsonValue out_row = JsonValue::Array();
      for (const Value& v : row) out_row.Append(ValueToJson(v));
      out_rows.Append(std::move(out_row));
    }
    table.Set("columns", std::move(columns));
    table.Set("rows", std::move(out_rows));
    root.Set(name, std::move(table));
  }

  // Ring honesty counters: snapshots above are recent history, not a
  // complete log, wherever dropped > 0.
  JsonValue counters = JsonValue::Object();
  auto add = [&counters](const std::string& label, const DataCollector* dc) {
    JsonValue per = JsonValue::Object();
    per.Set("queries", CountersJson(dc->query_counters()));
    per.Set("cache_events", CountersJson(dc->cache_counters()));
    per.Set("store_requests", CountersJson(dc->store_counters()));
    per.Set("trace_spans", CountersJson(dc->trace_counters()));
    per.Set("mergeouts", CountersJson(dc->mergeout_counters()));
    per.Set("subscriptions", CountersJson(dc->subscription_counters()));
    per.Set("wal_events", CountersJson(dc->wal_counters()));
    counters.Set(label, std::move(per));
  };
  if (cluster != nullptr) {
    for (const auto& node : cluster->nodes()) add(node->name(), node->dc());
  }
  add("_default", DataCollector::Default());
  root.Set("dc_ring_counters", std::move(counters));
  return root;
}

Status WriteSystemTablesJsonFile(const std::string& path,
                                 EonCluster* cluster) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::IOError("cannot open " + path);
  }
  out << ExportSystemTables(cluster).Dump() << "\n";
  out.close();
  if (!out.good()) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace obs

}  // namespace eon
