
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/ddl.cc" "src/engine/CMakeFiles/eon_engine.dir/ddl.cc.o" "gcc" "src/engine/CMakeFiles/eon_engine.dir/ddl.cc.o.d"
  "/root/repo/src/engine/designer.cc" "src/engine/CMakeFiles/eon_engine.dir/designer.cc.o" "gcc" "src/engine/CMakeFiles/eon_engine.dir/designer.cc.o.d"
  "/root/repo/src/engine/dml.cc" "src/engine/CMakeFiles/eon_engine.dir/dml.cc.o" "gcc" "src/engine/CMakeFiles/eon_engine.dir/dml.cc.o.d"
  "/root/repo/src/engine/executor.cc" "src/engine/CMakeFiles/eon_engine.dir/executor.cc.o" "gcc" "src/engine/CMakeFiles/eon_engine.dir/executor.cc.o.d"
  "/root/repo/src/engine/sql.cc" "src/engine/CMakeFiles/eon_engine.dir/sql.cc.o" "gcc" "src/engine/CMakeFiles/eon_engine.dir/sql.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/eon_common.dir/DependInfo.cmake"
  "/root/repo/build/src/columnar/CMakeFiles/eon_columnar.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/eon_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/eon_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/shard/CMakeFiles/eon_shard.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/eon_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/eon_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
