#ifndef EON_COLUMNAR_KERNELS_H_
#define EON_COLUMNAR_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace eon {

enum class CmpOp;  // columnar/expression.h

namespace simd {

/// Instruction sets the kernels can dispatch to at runtime. x86-64 binaries
/// carry scalar + SSE4.2 + AVX2 variants (selected via cpuid); aarch64
/// builds use NEON where a kernel has a NEON variant. Building with
/// -DEON_SIMD=off (compile define EON_SIMD_DISABLED) pins every kernel to
/// the scalar reference.
enum class Isa : uint8_t { kScalar = 0, kSse42 = 1, kAvx2 = 2, kNeon = 3 };

const char* IsaName(Isa isa);

/// The ISA the dispatcher currently routes to (after ForceScalarForTest
/// and EON_SIMD_DISABLED are applied).
Isa ActiveIsa();

/// Pins all kernels to the scalar reference implementations. Used by the
/// differential tests and benches to compare SIMD vs scalar in one binary.
/// Affects all threads; flip only around single-threaded harness sections
/// or before spawning workers.
void ForceScalarForTest(bool force);

/// SegHash of a NULL value — must match Value::SegHash() in types.cc.
inline constexpr uint32_t kNullSegHash = 0x9E3779B9u;

/// COUNT/SUM/MIN/MAX partial over masked int64 lanes. `sum` accumulates in
/// two's complement (mod 2^64), so any lane order gives the identical
/// result; callers cast back to int64_t. min/max are only meaningful when
/// count > 0.
struct Int64Fold {
  uint64_t count = 0;
  uint64_t sum = 0;
  int64_t min = INT64_MAX;
  int64_t max = INT64_MIN;
};

// All validity bitmaps below are LSB-first 64-bit words (bit i of word
// i/64 set = row i valid); nullptr = all rows valid. Selection vectors are
// byte masks holding exactly 0 or 1.

/// sel[i] = 1 iff row i is valid and (v[i] op literal) holds; 0 otherwise.
void CompareInt64(const int64_t* v, size_t n, CmpOp op, int64_t literal,
                  const uint64_t* validity, uint8_t* sel);

/// dst[i] &= src[i] (0/1 bytes).
void SelAnd(uint8_t* dst, const uint8_t* src, size_t n);
/// dst[i] |= src[i] (0/1 bytes).
void SelOr(uint8_t* dst, const uint8_t* src, size_t n);
/// sel[i] = 1 - sel[i] (0/1 bytes).
void SelNot(uint8_t* sel, size_t n);
/// Number of selected rows.
uint64_t SelCount(const uint8_t* sel, size_t n);
/// Compacts the mask to an ascending index list; returns the count.
/// `out` must have room for SelCount(sel, n) + 1 entries (the branchless
/// store writes the slot past the last selected index before the cursor
/// check skips it); sizing to `n` is always safe.
size_t SelCompact(const uint8_t* sel, size_t n, uint32_t* out);

/// out[i] = SegmentationHashInt(v[i]) for valid rows, kNullSegHash for
/// null rows — bit-identical to Value::SegHash() on an int64 column.
void SegHashInt64(const int64_t* v, size_t n, const uint64_t* validity,
                  uint32_t* out);

/// Folds rows where validity and sel (either may be nullptr = all) both
/// hold.
Int64Fold FoldInt64(const int64_t* v, size_t n, const uint64_t* validity,
                    const uint8_t* sel);
/// Folds the rows named by idx[0..nidx) (ascending), skipping null rows.
Int64Fold FoldInt64Indexed(const int64_t* v, const uint64_t* validity,
                           const uint32_t* idx, size_t nidx);

namespace detail {

// Scalar reference implementations (kernels_scalar.cc). Compiled with
// auto-vectorization disabled so scalar-vs-SIMD bench ratios are honest.
// The dispatcher falls back to these; tests call them directly.
void CompareInt64Scalar(const int64_t* v, size_t n, CmpOp op, int64_t literal,
                        const uint64_t* validity, uint8_t* sel);
void SelAndScalar(uint8_t* dst, const uint8_t* src, size_t n);
void SelOrScalar(uint8_t* dst, const uint8_t* src, size_t n);
void SelNotScalar(uint8_t* sel, size_t n);
uint64_t SelCountScalar(const uint8_t* sel, size_t n);
size_t SelCompactScalar(const uint8_t* sel, size_t n, uint32_t* out);
void SegHashInt64Scalar(const int64_t* v, size_t n, const uint64_t* validity,
                        uint32_t* out);
Int64Fold FoldInt64Scalar(const int64_t* v, size_t n, const uint64_t* validity,
                          const uint8_t* sel);
Int64Fold FoldInt64IndexedScalar(const int64_t* v, const uint64_t* validity,
                                 const uint32_t* idx, size_t nidx);

}  // namespace detail

}  // namespace simd
}  // namespace eon

#endif  // EON_COLUMNAR_KERNELS_H_
