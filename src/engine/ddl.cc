#include "engine/ddl.h"

#include "engine/dml.h"
#include "engine/executor.h"
#include "engine/system_tables.h"

namespace eon {

namespace {

/// "dc_" / "system_" are reserved for system tables; user DDL may not
/// claim them even for names no system table uses yet.
Status CheckNotReserved(const std::string& name) {
  if (IsReservedSystemName(name)) {
    return Status::InvalidArgument(
        "table name is in the reserved system namespace: " + name);
  }
  return Status::OK();
}

/// Build the creation transaction for a (possibly flattened) table and
/// its projections. Shared by CreateTable and CreateFlattenedTable.
Result<Oid> CommitNewTable(EonCluster* cluster, TableDef table,
                           const std::vector<ProjectionSpec>& projections) {
  Node* coord = cluster->AnyUpNode();
  if (coord == nullptr) return Status::Unavailable("no up nodes");
  EON_RETURN_IF_ERROR(CheckNotReserved(table.name));
  auto snapshot = coord->catalog()->snapshot();
  if (snapshot->FindTableByName(table.name) != nullptr) {
    return Status::AlreadyExists("table exists: " + table.name);
  }
  if (projections.empty()) {
    return Status::InvalidArgument("table needs at least one projection");
  }
  table.oid = coord->catalog()->NextOid();

  CatalogTxn txn;
  txn.PutTable(table);
  const Schema& schema = table.schema;
  for (size_t pi = 0; pi < projections.size(); ++pi) {
    const ProjectionSpec& spec = projections[pi];
    ProjectionDef proj;
    proj.oid = coord->catalog()->NextOid();
    proj.table_oid = table.oid;
    proj.name = spec.name.empty() ? table.name + "_p" + std::to_string(pi)
                                  : spec.name;

    // Resolve columns (empty = all).
    if (spec.columns.empty()) {
      for (size_t c = 0; c < schema.num_columns(); ++c) {
        proj.columns.push_back(c);
      }
    } else {
      for (const std::string& col : spec.columns) {
        EON_ASSIGN_OR_RETURN(size_t idx, schema.IndexOf(col));
        proj.columns.push_back(idx);
      }
    }
    if (pi == 0 && proj.columns.size() != schema.num_columns()) {
      return Status::InvalidArgument(
          "first projection must be a superprojection (all columns)");
    }

    // Sort order and segmentation refer to projection positions.
    Schema proj_schema = proj.DeriveSchema(schema);
    for (const std::string& col : spec.sort_columns) {
      EON_ASSIGN_OR_RETURN(size_t idx, proj_schema.IndexOf(col));
      proj.sort_columns.push_back(idx);
    }
    for (const std::string& col : spec.segmentation_columns) {
      EON_ASSIGN_OR_RETURN(size_t idx, proj_schema.IndexOf(col));
      proj.segmentation_columns.push_back(idx);
    }
    txn.PutProjection(proj);
  }

  Result<uint64_t> v = cluster->CommitDistributed(coord->oid(), txn);
  if (!v.ok()) return v.status();
  return table.oid;
}

}  // namespace

Result<Oid> CreateTable(EonCluster* cluster, const std::string& name,
                        const Schema& schema,
                        std::optional<std::string> partition_column,
                        const std::vector<ProjectionSpec>& projections) {
  TableDef table;
  table.name = name;
  table.schema = schema;
  if (partition_column) {
    EON_ASSIGN_OR_RETURN(size_t idx, schema.IndexOf(*partition_column));
    table.partition_column = idx;
  }
  return CommitNewTable(cluster, std::move(table), projections);
}

Result<Oid> CreateFlattenedTable(
    EonCluster* cluster, const std::string& name, const Schema& base_schema,
    std::optional<std::string> partition_column,
    const std::vector<ProjectionSpec>& projections,
    const std::vector<FlattenedColumn>& flattened_columns) {
  Node* coord = cluster->AnyUpNode();
  if (coord == nullptr) return Status::Unavailable("no up nodes");
  if (flattened_columns.empty()) {
    return Status::InvalidArgument("flattened table needs derived columns");
  }
  auto snapshot = coord->catalog()->snapshot();

  TableDef table;
  table.name = name;
  std::vector<ColumnDef> cols = base_schema.columns();
  for (size_t i = 0; i < flattened_columns.size(); ++i) {
    const FlattenedColumn& fc = flattened_columns[i];
    const TableDef* dim = snapshot->FindTableByName(fc.dim_table);
    if (dim == nullptr) {
      return Status::NotFound("no such dimension table: " + fc.dim_table);
    }
    FlattenedColDef def;
    def.target_column = base_schema.num_columns() + i;
    EON_ASSIGN_OR_RETURN(def.fact_key_column,
                         base_schema.IndexOf(fc.fact_key));
    def.dim_table = dim->oid;
    EON_ASSIGN_OR_RETURN(def.dim_key_column, dim->schema.IndexOf(fc.dim_key));
    EON_ASSIGN_OR_RETURN(def.dim_value_column,
                         dim->schema.IndexOf(fc.dim_value));
    cols.push_back(
        ColumnDef{fc.as, dim->schema.column(def.dim_value_column).type});
    table.flattened.push_back(def);
  }
  table.schema = Schema(std::move(cols));
  if (partition_column) {
    EON_ASSIGN_OR_RETURN(size_t idx, table.schema.IndexOf(*partition_column));
    table.partition_column = idx;
  }
  return CommitNewTable(cluster, std::move(table), projections);
}

Result<uint64_t> RefreshFlattenedTable(EonCluster* cluster,
                                       const std::string& table) {
  Node* coord = cluster->AnyUpNode();
  if (coord == nullptr) return Status::Unavailable("no up nodes");
  auto snapshot = coord->catalog()->snapshot();
  const TableDef* tdef = snapshot->FindTableByName(table);
  if (tdef == nullptr) return Status::NotFound("no such table: " + table);
  if (!tdef->is_flattened()) {
    return Status::InvalidArgument(table + " is not a flattened table");
  }

  // Fresh dimension lookups.
  std::vector<std::map<Value, Value>> lookups;
  for (const FlattenedColDef& def : tdef->flattened) {
    using DimLookupMap = std::map<Value, Value>;
      EON_ASSIGN_OR_RETURN(DimLookupMap lookup,
                         BuildDimensionLookup(cluster, *snapshot, def));
    lookups.push_back(std::move(lookup));
  }

  // Read the full table and find rows whose derived values are stale.
  QuerySpec scan_all;
  scan_all.scan.table = table;
  for (const ColumnDef& c : tdef->schema.columns()) {
    scan_all.scan.columns.push_back(c.name);
  }
  EON_ASSIGN_OR_RETURN(ExecContext ctx,
                       BuildExecContext(cluster, "", tdef->oid));
  EON_ASSIGN_OR_RETURN(QueryResult all, ExecuteQuery(cluster, scan_all, ctx));

  const size_t base_arity = tdef->schema.num_columns() - tdef->flattened.size();
  uint64_t changed = 0;
  for (const Row& row : all.rows) {
    for (size_t i = 0; i < tdef->flattened.size(); ++i) {
      const FlattenedColDef& def = tdef->flattened[i];
      auto it = lookups[i].find(row[def.fact_key_column]);
      const Value fresh = it == lookups[i].end()
                              ? Value::Null(tdef->schema
                                                .column(def.target_column)
                                                .type)
                              : it->second;
      if (row[def.target_column].Compare(fresh) != 0 ||
          row[def.target_column].is_null() != fresh.is_null()) {
        changed++;
        break;
      }
    }
  }
  if (changed == 0) return 0;

  // Rewrite the table: tombstone everything, reload base columns (the
  // load path re-derives the denormalized values).
  EON_ASSIGN_OR_RETURN(uint64_t deleted,
                       DeleteWhere(cluster, table, Predicate::True()));
  (void)deleted;
  std::vector<Row> base_rows;
  base_rows.reserve(all.rows.size());
  for (Row& row : all.rows) {
    row.resize(base_arity);
    base_rows.push_back(std::move(row));
  }
  EON_ASSIGN_OR_RETURN(uint64_t version, CopyInto(cluster, table, base_rows));
  (void)version;
  return changed;
}

Result<Oid> CopyTable(EonCluster* cluster, const std::string& source,
                      const std::string& destination) {
  Node* coord = cluster->AnyUpNode();
  if (coord == nullptr) return Status::Unavailable("no up nodes");
  auto snapshot = coord->catalog()->snapshot();
  const TableDef* src = snapshot->FindTableByName(source);
  if (src == nullptr) return Status::NotFound("no such table: " + source);
  EON_RETURN_IF_ERROR(CheckNotReserved(destination));
  if (snapshot->FindTableByName(destination) != nullptr) {
    return Status::AlreadyExists("table exists: " + destination);
  }
  if (src->is_live_aggregate()) {
    return Status::InvalidArgument("cannot copy a live aggregate projection");
  }

  CatalogTxn txn;
  TableDef dst = *src;
  dst.oid = coord->catalog()->NextOid();
  dst.name = destination;
  txn.PutTable(dst);

  // Mirror every projection; the new containers reference the SAME
  // immutable files — a pure metadata operation.
  for (const ProjectionDef* proj : snapshot->ProjectionsOf(src->oid)) {
    ProjectionDef new_proj = *proj;
    new_proj.oid = coord->catalog()->NextOid();
    new_proj.table_oid = dst.oid;
    new_proj.name = destination + "_" + proj->name;
    txn.PutProjection(new_proj);

    for (const StorageContainerMeta* c : snapshot->ContainersOf(proj->oid)) {
      StorageContainerMeta copy = *c;
      copy.oid = coord->catalog()->NextOid();
      copy.projection_oid = new_proj.oid;
      txn.PutContainer(copy);
      // Delete vectors carry over too (the copy sees the same tombstones).
      for (const DeleteVectorMeta* dv : snapshot->DeleteVectorsOf(c->oid)) {
        DeleteVectorMeta dv_copy = *dv;
        dv_copy.oid = coord->catalog()->NextOid();
        dv_copy.container_oid = copy.oid;
        txn.PutDeleteVector(dv_copy);
      }
    }
  }
  txn.ExpectVersion(src->oid, snapshot->ModVersion(src->oid));
  Result<uint64_t> v = cluster->CommitDistributed(coord->oid(), txn);
  if (!v.ok()) return v.status();
  return dst.oid;
}

namespace {

/// File keys a container's data occupies.
void CollectContainerKeys(const StorageContainerMeta& c,
                          std::vector<std::string>* keys) {
  for (uint64_t col = 0; col < c.num_columns; ++col) {
    keys->push_back(c.base_key + "_c" + std::to_string(col));
  }
}

}  // namespace

Status DropTable(EonCluster* cluster, const std::string& table) {
  Node* coord = cluster->AnyUpNode();
  if (coord == nullptr) return Status::Unavailable("no up nodes");
  auto snapshot = coord->catalog()->snapshot();
  const TableDef* tdef = snapshot->FindTableByName(table);
  if (tdef == nullptr) return Status::NotFound("no such table: " + table);
  // A dimension referenced by a flattened table cannot be dropped.
  for (const auto& [oid, t] : snapshot->tables) {
    for (const FlattenedColDef& f : t.flattened) {
      if (f.dim_table == tdef->oid) {
        return Status::NotSupported("table " + table +
                                    " is a dimension of flattened table " +
                                    t.name);
      }
    }
  }

  // Cascade: this table plus its live aggregate projections.
  std::set<Oid> doomed_tables = {tdef->oid};
  for (const auto& [oid, t] : snapshot->tables) {
    if (t.lap_base == tdef->oid) doomed_tables.insert(oid);
  }

  CatalogTxn txn;
  std::set<Oid> doomed_containers;
  std::vector<std::string> dropped_keys;
  for (Oid toid : doomed_tables) {
    txn.DropTable(toid);
    for (const ProjectionDef* proj : snapshot->ProjectionsOf(toid)) {
      txn.DropProjection(proj->oid);
      for (const StorageContainerMeta* c : snapshot->ContainersOf(proj->oid)) {
        txn.DropContainer(c->oid, c->shard);
        doomed_containers.insert(c->oid);
        CollectContainerKeys(*c, &dropped_keys);
        for (const DeleteVectorMeta* dv : snapshot->DeleteVectorsOf(c->oid)) {
          txn.DropDeleteVector(dv->oid, dv->shard);
          dropped_keys.push_back(dv->key);
        }
      }
    }
  }

  // copy_table sharing: keys still referenced by a surviving container
  // (or its delete vectors) must NOT be reclaimed (Section 6.5's
  // reference counting across tables).
  std::set<std::string> still_referenced;
  for (const auto& [oid, c] : snapshot->containers) {
    if (doomed_containers.count(oid)) continue;
    std::vector<std::string> keys;
    CollectContainerKeys(c, &keys);
    still_referenced.insert(keys.begin(), keys.end());
  }
  for (const auto& [oid, dv] : snapshot->delete_vectors) {
    if (!doomed_containers.count(dv.container_oid)) {
      still_referenced.insert(dv.key);
    }
  }
  std::vector<std::string> reclaimable;
  for (const std::string& key : dropped_keys) {
    if (!still_referenced.count(key)) reclaimable.push_back(key);
  }

  EON_ASSIGN_OR_RETURN(uint64_t version,
                       cluster->CommitDistributed(coord->oid(), txn));
  cluster->TrackDroppedFiles(reclaimable, version);
  return Status::OK();
}

Result<Oid> AddProjection(EonCluster* cluster, const std::string& table,
                          const ProjectionSpec& spec) {
  Node* coord = cluster->AnyUpNode();
  if (coord == nullptr) return Status::Unavailable("no up nodes");
  auto snapshot = coord->catalog()->snapshot();
  const TableDef* tdef = snapshot->FindTableByName(table);
  if (tdef == nullptr) return Status::NotFound("no such table: " + table);

  ProjectionDef proj;
  proj.oid = coord->catalog()->NextOid();
  proj.table_oid = tdef->oid;
  proj.name = spec.name.empty() ? table + "_p_new" : spec.name;
  for (const auto& [poid, existing] : snapshot->projections) {
    if (existing.table_oid == tdef->oid && existing.name == proj.name) {
      return Status::AlreadyExists("projection exists: " + proj.name);
    }
  }
  if (spec.columns.empty()) {
    for (size_t c = 0; c < tdef->schema.num_columns(); ++c) {
      proj.columns.push_back(c);
    }
  } else {
    for (const std::string& col : spec.columns) {
      EON_ASSIGN_OR_RETURN(size_t idx, tdef->schema.IndexOf(col));
      proj.columns.push_back(idx);
    }
  }
  Schema proj_schema = proj.DeriveSchema(tdef->schema);
  for (const std::string& col : spec.sort_columns) {
    EON_ASSIGN_OR_RETURN(size_t idx, proj_schema.IndexOf(col));
    proj.sort_columns.push_back(idx);
  }
  for (const std::string& col : spec.segmentation_columns) {
    EON_ASSIGN_OR_RETURN(size_t idx, proj_schema.IndexOf(col));
    proj.segmentation_columns.push_back(idx);
  }

  CatalogTxn txn;
  txn.PutProjection(proj);
  txn.ExpectVersion(tdef->oid, snapshot->ModVersion(tdef->oid));
  {
    Result<uint64_t> v = cluster->CommitDistributed(coord->oid(), txn);
    if (!v.ok()) return v.status();
  }

  // Backfill: read the complete table through the engine and write the
  // new projection's containers.
  bool has_data = false;
  for (const ProjectionDef* p : snapshot->ProjectionsOf(tdef->oid)) {
    if (!snapshot->ContainersOf(p->oid).empty()) has_data = true;
  }
  if (has_data) {
    QuerySpec scan_all;
    scan_all.scan.table = table;
    for (const ColumnDef& c : tdef->schema.columns()) {
      scan_all.scan.columns.push_back(c.name);
    }
    EON_ASSIGN_OR_RETURN(ExecContext ctx,
                         BuildExecContext(cluster, "", /*seed=*/proj.oid));
    EON_ASSIGN_OR_RETURN(QueryResult all, ExecuteQuery(cluster, scan_all, ctx));
    Result<uint64_t> v =
        BackfillProjection(cluster, table, proj.oid, all.rows);
    if (!v.ok()) return v.status();
  }
  return proj.oid;
}

Result<Oid> CreateLiveAggregateProjection(
    EonCluster* cluster, const std::string& base_table,
    const std::string& name, const std::vector<std::string>& group_columns,
    const std::vector<LiveAggColumn>& aggregates) {
  Node* coord = cluster->AnyUpNode();
  if (coord == nullptr) return Status::Unavailable("no up nodes");
  auto snapshot = coord->catalog()->snapshot();
  const TableDef* base = snapshot->FindTableByName(base_table);
  if (base == nullptr) return Status::NotFound("no such table: " + base_table);
  if (base->is_live_aggregate()) {
    return Status::InvalidArgument(
        "cannot build a live aggregate over a live aggregate");
  }
  EON_RETURN_IF_ERROR(CheckNotReserved(name));
  if (snapshot->FindTableByName(name) != nullptr) {
    return Status::AlreadyExists("table exists: " + name);
  }
  if (group_columns.empty() || aggregates.empty()) {
    return Status::InvalidArgument(
        "live aggregate needs group columns and aggregates");
  }

  // Resolve the definition; derive the materializing table's schema:
  // group columns (base names/types) followed by one column per aggregate.
  TableDef lap;
  lap.oid = coord->catalog()->NextOid();
  lap.name = name;
  lap.lap_base = base->oid;
  std::vector<ColumnDef> cols;
  std::set<std::string> names_taken;
  for (const std::string& g : group_columns) {
    EON_ASSIGN_OR_RETURN(size_t idx, base->schema.IndexOf(g));
    lap.lap_group_columns.push_back(idx);
    cols.push_back(base->schema.column(idx));
    names_taken.insert(g);
  }
  for (const LiveAggColumn& a : aggregates) {
    LiveAggSpec spec;
    spec.fn = a.fn;
    ColumnDef col;
    switch (a.fn) {
      case AggFn::kCount:
        col = ColumnDef{"count_rows", DataType::kInt64};
        break;
      case AggFn::kSum:
      case AggFn::kMin:
      case AggFn::kMax: {
        EON_ASSIGN_OR_RETURN(size_t idx, base->schema.IndexOf(a.column));
        spec.source_column = idx;
        col = ColumnDef{std::string(AggFnName(a.fn)) + "_" + a.column,
                        base->schema.column(idx).type};
        break;
      }
      default:
        return Status::NotSupported(
            std::string("live aggregates support COUNT/SUM/MIN/MAX, not ") +
            AggFnName(a.fn));
    }
    if (!names_taken.insert(col.name).second) {
      return Status::InvalidArgument("duplicate aggregate column: " +
                                     col.name);
    }
    lap.lap_aggs.push_back(spec);
    cols.push_back(std::move(col));
  }
  lap.schema = Schema(std::move(cols));

  // Physical design: sorted and segmented by the group columns, so every
  // group's partials co-locate on one node and merge locally.
  ProjectionDef proj;
  proj.oid = coord->catalog()->NextOid();
  proj.table_oid = lap.oid;
  proj.name = name + "_super";
  for (size_t c = 0; c < lap.schema.num_columns(); ++c) {
    proj.columns.push_back(c);
  }
  for (size_t g = 0; g < group_columns.size(); ++g) {
    proj.sort_columns.push_back(g);
    proj.segmentation_columns.push_back(g);
  }

  CatalogTxn txn;
  txn.PutTable(lap);
  txn.PutProjection(proj);
  // OCC guard: the base definition must not change while we create this.
  txn.ExpectVersion(base->oid, snapshot->ModVersion(base->oid));
  {
    Result<uint64_t> v = cluster->CommitDistributed(coord->oid(), txn);
    if (!v.ok()) return v.status();
  }

  // Backfill from existing base data (full scan of the superprojection).
  bool base_has_data = false;
  for (const ProjectionDef* p : snapshot->ProjectionsOf(base->oid)) {
    if (!snapshot->ContainersOf(p->oid).empty()) base_has_data = true;
  }
  if (base_has_data) {
    QuerySpec scan_all;
    scan_all.scan.table = base_table;
    for (const ColumnDef& c : base->schema.columns()) {
      scan_all.scan.columns.push_back(c.name);
    }
    EON_ASSIGN_OR_RETURN(ExecContext ctx,
                         BuildExecContext(cluster, "", /*seed=*/lap.oid));
    EON_ASSIGN_OR_RETURN(QueryResult all, ExecuteQuery(cluster, scan_all, ctx));
    std::vector<std::pair<std::string, std::vector<Row>>> loads;
    loads.emplace_back(name, ComputeLiveAggRows(lap, all.rows));
    Result<uint64_t> v = LoadIntoTables(cluster, loads);
    if (!v.ok()) return v.status();
  }
  return lap.oid;
}

Status AddColumn(EonCluster* cluster, const std::string& table,
                 const ColumnDef& column) {
  Node* coord = cluster->AnyUpNode();
  if (coord == nullptr) return Status::Unavailable("no up nodes");

  // Offline preparation against a snapshot: no global catalog lock held
  // while the (potentially expensive) work happens.
  auto snapshot = coord->catalog()->snapshot();
  const TableDef* existing = snapshot->FindTableByName(table);
  if (existing == nullptr) return Status::NotFound("no such table: " + table);
  for (const ColumnDef& c : existing->schema.columns()) {
    if (c.name == column.name) {
      return Status::AlreadyExists("column exists: " + column.name);
    }
  }

  TableDef updated = *existing;
  std::vector<ColumnDef> cols = existing->schema.columns();
  cols.push_back(column);
  updated.schema = Schema(std::move(cols));

  CatalogTxn txn;
  txn.PutTable(updated);
  // OCC write set: the table must be unchanged since our snapshot.
  txn.ExpectVersion(existing->oid, snapshot->ModVersion(existing->oid));
  Result<uint64_t> v = cluster->CommitDistributed(coord->oid(), txn);
  return v.ok() ? Status::OK() : v.status();
}

}  // namespace eon
