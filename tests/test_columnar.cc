// Unit tests for the columnar substrate: encodings, ROS container format,
// pruning, delete vectors, sorting.

#include <gtest/gtest.h>

#include "columnar/delete_vector.h"
#include "columnar/encoding.h"
#include "columnar/ros.h"
#include "columnar/sort.h"
#include "columnar/value_codec.h"
#include "common/random.h"
#include "storage/object_store.h"

namespace eon {
namespace {

// ---------------------------------------------------------------- Values

TEST(ValueTest, CompareTotalOrderWithNulls) {
  EXPECT_EQ(Value::Int(1).Compare(Value::Int(1)), 0);
  EXPECT_LT(Value::Int(1).Compare(Value::Int(2)), 0);
  EXPECT_LT(Value::Null(DataType::kInt64).Compare(Value::Int(-100)), 0);
  EXPECT_EQ(Value::Null(DataType::kInt64).Compare(Value::Null(DataType::kInt64)),
            0);
  EXPECT_LT(Value::Str("a").Compare(Value::Str("b")), 0);
  EXPECT_LT(Value::Dbl(1.5).Compare(Value::Dbl(2.5)), 0);
}

TEST(ValueTest, SegHashEqualValuesEqualHashes) {
  EXPECT_EQ(Value::Int(42).SegHash(), Value::Int(42).SegHash());
  EXPECT_EQ(Value::Str("abc").SegHash(), Value::Str("abc").SegHash());
  EXPECT_NE(Value::Int(42).SegHash(), Value::Int(43).SegHash());
}

TEST(ValueCodecTest, RoundTripAllTypes) {
  for (const Value& v :
       {Value::Int(-12345), Value::Dbl(2.718), Value::Str("hello"),
        Value::Null(DataType::kString), Value::Int(0)}) {
    std::string buf;
    PutValue(&buf, v);
    Slice in(buf);
    Value out;
    ASSERT_TRUE(GetValue(&in, v.type(), &out).ok());
    EXPECT_EQ(out.Compare(v), 0);
    EXPECT_EQ(out.is_null(), v.is_null());
  }
}

// ------------------------------------------------------------- Encodings

struct EncodingCase {
  const char* name;
  DataType type;
  int pattern;  // 0=sorted ints, 1=runs, 2=low card, 3=random, 4=nulls.
  Encoding encoding;
};

std::vector<Value> MakePattern(DataType type, int pattern, size_t n) {
  Random rng(17);
  std::vector<Value> out;
  for (size_t i = 0; i < n; ++i) {
    switch (pattern) {
      case 0:  // Sorted.
        out.push_back(type == DataType::kInt64
                          ? Value::Int(static_cast<int64_t>(i * 3))
                          : Value::Dbl(static_cast<double>(i)));
        break;
      case 1:  // Long runs.
        out.push_back(type == DataType::kString
                          ? Value::Str(i / 50 % 2 ? "AAA" : "BBB")
                          : Value::Int(static_cast<int64_t>(i / 64)));
        break;
      case 2:  // Low cardinality.
        out.push_back(type == DataType::kString
                          ? Value::Str("v" + std::to_string(rng.Uniform(8)))
                          : Value::Int(static_cast<int64_t>(rng.Uniform(8))));
        break;
      case 3:  // Random.
        out.push_back(
            type == DataType::kInt64
                ? Value::Int(static_cast<int64_t>(rng.Next()))
                : (type == DataType::kDouble
                       ? Value::Dbl(rng.NextDouble() * 1e6)
                       : Value::Str(std::to_string(rng.Next()))));
        break;
      case 4:  // Sprinkled nulls.
        out.push_back(rng.Bernoulli(0.2)
                          ? Value::Null(type)
                          : Value::Int(static_cast<int64_t>(rng.Uniform(99))));
        break;
    }
  }
  return out;
}

class EncodingRoundTrip : public ::testing::TestWithParam<EncodingCase> {};

TEST_P(EncodingRoundTrip, Lossless) {
  const EncodingCase& c = GetParam();
  std::vector<Value> values = MakePattern(c.type, c.pattern, 500);
  auto encoded = EncodeChunk(values, c.type, c.encoding);
  ASSERT_TRUE(encoded.ok()) << encoded.status().ToString();
  std::vector<Value> decoded;
  ASSERT_TRUE(DecodeChunk(*encoded, c.type, &decoded).ok());
  ASSERT_EQ(decoded.size(), values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(decoded[i].Compare(values[i]), 0) << c.name << " row " << i;
    EXPECT_EQ(decoded[i].is_null(), values[i].is_null());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllEncodings, EncodingRoundTrip,
    ::testing::Values(
        EncodingCase{"plain_int", DataType::kInt64, 3, Encoding::kPlain},
        EncodingCase{"plain_str", DataType::kString, 3, Encoding::kPlain},
        EncodingCase{"plain_dbl", DataType::kDouble, 3, Encoding::kPlain},
        EncodingCase{"plain_nulls", DataType::kInt64, 4, Encoding::kPlain},
        EncodingCase{"rle_runs_int", DataType::kInt64, 1, Encoding::kRle},
        EncodingCase{"rle_runs_str", DataType::kString, 1, Encoding::kRle},
        EncodingCase{"rle_nulls", DataType::kInt64, 4, Encoding::kRle},
        EncodingCase{"dict_lowcard_str", DataType::kString, 2,
                     Encoding::kDict},
        EncodingCase{"dict_lowcard_int", DataType::kInt64, 2, Encoding::kDict},
        EncodingCase{"dict_nulls", DataType::kInt64, 4, Encoding::kDict},
        EncodingCase{"delta_sorted", DataType::kInt64, 0,
                     Encoding::kDeltaVarint},
        EncodingCase{"bp_sorted", DataType::kInt64, 0, Encoding::kBitPacked},
        EncodingCase{"bp_lowcard", DataType::kInt64, 2, Encoding::kBitPacked},
        EncodingCase{"bp_random", DataType::kInt64, 3, Encoding::kBitPacked},
        EncodingCase{"bp_nulls", DataType::kInt64, 4, Encoding::kBitPacked}),
    [](const ::testing::TestParamInfo<EncodingCase>& info) {
      return info.param.name;
    });

TEST(EncodingTest, DeltaRejectsNullsAndNonInt) {
  std::vector<Value> with_null = {Value::Int(1), Value::Null(DataType::kInt64)};
  EXPECT_TRUE(EncodeChunk(with_null, DataType::kInt64, Encoding::kDeltaVarint)
                  .status()
                  .IsInvalidArgument());
  std::vector<Value> dbl = {Value::Dbl(1.0)};
  EXPECT_TRUE(EncodeChunk(dbl, DataType::kDouble, Encoding::kDeltaVarint)
                  .status()
                  .IsInvalidArgument());
}

TEST(EncodingTest, ChooseEncodingHeuristics) {
  EXPECT_EQ(ChooseEncoding(MakePattern(DataType::kInt64, 0, 500),
                           DataType::kInt64),
            Encoding::kDeltaVarint);
  EXPECT_EQ(ChooseEncoding(MakePattern(DataType::kInt64, 1, 500),
                           DataType::kInt64),
            Encoding::kRle);
  EXPECT_EQ(ChooseEncoding(MakePattern(DataType::kString, 2, 500),
                           DataType::kString),
            Encoding::kDict);
  EXPECT_EQ(ChooseEncoding(MakePattern(DataType::kString, 3, 500),
                           DataType::kString),
            Encoding::kPlain);
}

TEST(EncodingTest, ChooseEncodingSampledLargeChunks) {
  // Past the exact-scan threshold the heuristic samples contiguous
  // windows; the same corpora must still pin the same choices.
  const size_t n = 10000;
  EXPECT_EQ(ChooseEncoding(MakePattern(DataType::kInt64, 0, n),
                           DataType::kInt64),
            Encoding::kDeltaVarint);
  EXPECT_EQ(ChooseEncoding(MakePattern(DataType::kInt64, 1, n),
                           DataType::kInt64),
            Encoding::kRle);
  EXPECT_EQ(ChooseEncoding(MakePattern(DataType::kString, 2, n),
                           DataType::kString),
            Encoding::kDict);
  EXPECT_EQ(ChooseEncoding(MakePattern(DataType::kString, 3, n),
                           DataType::kString),
            Encoding::kPlain);
}

TEST(EncodingTest, WriterFallsBackToPlainWhenSampleMissesNull) {
  // Sorted int64 with one null between sample windows: the sampled
  // heuristic picks delta, EncodeChunk rejects it, and the writer must
  // fall back to plain rather than fail the load.
  std::vector<Value> values;
  for (size_t i = 0; i < 10000; ++i) {
    values.push_back(i == 3000 ? Value::Null(DataType::kInt64)
                               : Value::Int(static_cast<int64_t>(i)));
  }
  ASSERT_EQ(ChooseEncoding(values, DataType::kInt64), Encoding::kDeltaVarint);

  Schema schema({{"v", DataType::kInt64}});
  std::vector<Row> rows;
  for (const Value& v : values) rows.push_back(Row{v});
  RosWriteOptions opts;
  opts.rows_per_block = values.size();
  auto built = RosContainerWriter::Build(schema, rows, "data/fallback", opts);
  ASSERT_TRUE(built.ok()) << built.status().ToString();

  MemObjectStore store;
  for (const RosColumnFile& f : built->files) {
    ASSERT_TRUE(store.Put(f.key, f.data).ok());
  }
  DirectFetcher fetcher(&store);
  RosScanOptions scan;
  scan.output_columns = {0};
  auto out = ScanRosContainer(schema, "data/fallback", &fetcher, scan);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->size(), values.size());
  EXPECT_TRUE((*out)[3000][0].is_null());
  EXPECT_EQ((*out)[9999][0].int_value(), 9999);
}

TEST(EncodingTest, SortedDataCompressesWell) {
  // "Sorted data usually results in better compression" (Section 2.1).
  std::vector<Value> sorted = MakePattern(DataType::kInt64, 0, 4096);
  std::vector<Value> random = MakePattern(DataType::kInt64, 3, 4096);
  auto s = EncodeChunk(sorted, DataType::kInt64,
                       ChooseEncoding(sorted, DataType::kInt64));
  auto r = EncodeChunk(random, DataType::kInt64,
                       ChooseEncoding(random, DataType::kInt64));
  ASSERT_TRUE(s.ok() && r.ok());
  EXPECT_LT(s->size() * 3, r->size());
}

TEST(EncodingTest, DecodeRejectsGarbage) {
  std::vector<Value> out;
  EXPECT_TRUE(DecodeChunk(Slice("", 0), DataType::kInt64, &out).IsCorruption());
  std::string bad = "\xFFgarbage";
  EXPECT_TRUE(DecodeChunk(bad, DataType::kInt64, &out).IsCorruption());
}

// ------------------------------------------------- SIMD-BP128 bit packing

TEST(EncodingTest, ChooseEncodingPicksBitPackedForLowCardinalityInts) {
  // Small-domain unsorted int64 (no long runs, no sorted order): the exact
  // per-128-block packed cost beats plain by far more than the 2x margin.
  // Pinned at both the exact-scan size and the sampled size so the cost
  // model stays put for existing fixtures.
  EXPECT_EQ(ChooseEncoding(MakePattern(DataType::kInt64, 2, 500),
                           DataType::kInt64),
            Encoding::kBitPacked);
  EXPECT_EQ(ChooseEncoding(MakePattern(DataType::kInt64, 2, 10000),
                           DataType::kInt64),
            Encoding::kBitPacked);
  // Full-width random int64 packs at width 64 — no win; plain stays.
  EXPECT_EQ(ChooseEncoding(MakePattern(DataType::kInt64, 3, 500),
                           DataType::kInt64),
            Encoding::kPlain);
}

TEST(EncodingTest, BitPackedRejectsNonInt64) {
  std::vector<Value> dbl = {Value::Dbl(1.0)};
  EXPECT_TRUE(EncodeChunk(dbl, DataType::kDouble, Encoding::kBitPacked)
                  .status()
                  .IsInvalidArgument());
  std::vector<Value> str = {Value::Str("x")};
  EXPECT_TRUE(EncodeChunk(str, DataType::kString, Encoding::kBitPacked)
                  .status()
                  .IsInvalidArgument());
}

/// Property: bit-packed round-trips exactly at every bit width 0..64,
/// including sign boundaries, nulls interleaved at random positions, and
/// chunk sizes that are not multiples of the 128-value block.
TEST(EncodingTest, BitPackedRoundTripAllWidths) {
  Random rng(7);
  for (int width = 0; width <= 64; ++width) {
    for (size_t n : {size_t{1}, size_t{127}, size_t{128}, size_t{129},
                     size_t{500}}) {
      for (double null_rate : {0.0, 0.15}) {
        std::vector<Value> values;
        for (size_t i = 0; i < n; ++i) {
          if (null_rate > 0 && rng.Bernoulli(null_rate)) {
            values.push_back(Value::Null(DataType::kInt64));
            continue;
          }
          // `width` random bits, re-centered so roughly half the values are
          // negative (exercises the signed frame-of-reference min).
          uint64_t bits = rng.Next();
          if (width < 64) bits &= (width == 0 ? 0 : (~0ULL >> (64 - width)));
          int64_t v = static_cast<int64_t>(bits);
          if (width < 63) v -= static_cast<int64_t>(1) << width >> 1;
          values.push_back(Value::Int(v));
        }
        auto encoded =
            EncodeChunk(values, DataType::kInt64, Encoding::kBitPacked);
        ASSERT_TRUE(encoded.ok()) << encoded.status().ToString();
        std::vector<Value> decoded;
        ASSERT_TRUE(DecodeChunk(*encoded, DataType::kInt64, &decoded).ok())
            << "width=" << width << " n=" << n;
        ASSERT_EQ(decoded.size(), values.size());
        for (size_t i = 0; i < n; ++i) {
          ASSERT_EQ(decoded[i].is_null(), values[i].is_null())
              << "width=" << width << " n=" << n << " row " << i;
          ASSERT_EQ(decoded[i].Compare(values[i]), 0)
              << "width=" << width << " n=" << n << " row " << i;
        }
      }
    }
  }
}

TEST(EncodingTest, BitPackedExtremeValuesAndDegenerateChunks) {
  // INT64_MIN/MAX in one block forces width 64 with a wrapping
  // frame-of-reference delta.
  std::vector<Value> extremes = {Value::Int(INT64_MIN), Value::Int(INT64_MAX),
                                 Value::Int(0), Value::Int(-1)};
  auto enc = EncodeChunk(extremes, DataType::kInt64, Encoding::kBitPacked);
  ASSERT_TRUE(enc.ok());
  std::vector<Value> dec;
  ASSERT_TRUE(DecodeChunk(*enc, DataType::kInt64, &dec).ok());
  for (size_t i = 0; i < extremes.size(); ++i) {
    EXPECT_EQ(dec[i].Compare(extremes[i]), 0);
  }

  // Single repeated value: width-0 blocks, payload is headers only.
  std::vector<Value> constant(500, Value::Int(42));
  enc = EncodeChunk(constant, DataType::kInt64, Encoding::kBitPacked);
  ASSERT_TRUE(enc.ok());
  EXPECT_LT(enc->size(), 40u);  // 4 blocks of header, no packed bits.
  dec.clear();
  ASSERT_TRUE(DecodeChunk(*enc, DataType::kInt64, &dec).ok());
  ASSERT_EQ(dec.size(), constant.size());
  for (const Value& v : dec) EXPECT_EQ(v.int_value(), 42);

  // All-null chunk: zero packed blocks, bitmap only.
  std::vector<Value> nulls(130, Value::Null(DataType::kInt64));
  enc = EncodeChunk(nulls, DataType::kInt64, Encoding::kBitPacked);
  ASSERT_TRUE(enc.ok());
  dec.clear();
  ASSERT_TRUE(DecodeChunk(*enc, DataType::kInt64, &dec).ok());
  ASSERT_EQ(dec.size(), nulls.size());
  for (const Value& v : dec) EXPECT_TRUE(v.is_null());
}

/// Acceptance gate: bit packing must shrink low-cardinality int64 chunks
/// at least 3x vs plain, and still round-trip exactly under DecodeSelected
/// with sparse selections (whole 128-value blocks outside the selection
/// are never unpacked).
TEST(EncodingTest, BitPackedCompressesLowCardinalityThreefold) {
  std::vector<Value> values = MakePattern(DataType::kInt64, 2, 4096);
  auto plain = EncodeChunk(values, DataType::kInt64, Encoding::kPlain);
  auto packed = EncodeChunk(values, DataType::kInt64, Encoding::kBitPacked);
  ASSERT_TRUE(plain.ok() && packed.ok());
  EXPECT_GE(plain->size(), packed->size() * 3)
      << "plain=" << plain->size() << " packed=" << packed->size();

  auto view = ParseChunk(*packed);
  ASSERT_TRUE(view.ok());
  SelectionVector sel(values.size(), 0);
  for (size_t i = 0; i < values.size(); i += 997) sel[i] = 1;  // sparse
  std::vector<Value> got;
  uint64_t values_decoded = 0, values_unpacked = 0;
  ASSERT_TRUE(DecodeChunkSelected(*view, DataType::kInt64, sel.data(), &got,
                                  &values_decoded, &values_unpacked)
                  .ok());
  size_t k = 0;
  for (size_t i = 0; i < values.size(); ++i) {
    if (!sel[i]) continue;
    ASSERT_EQ(got[k].Compare(values[i]), 0) << "row " << i;
    ++k;
  }
  EXPECT_EQ(got.size(), k);
  // 5 selected rows land in 5 distinct 128-value blocks: at most 5 blocks
  // (640 values) may be unpacked out of 4096.
  EXPECT_LE(values_unpacked, 5u * 128u);
  EXPECT_GT(values_unpacked, 0u);
}

TEST(EncodedEvalTest, BitPackedScreeningSkipsDisjointBlocks) {
  // Sorted values: every 128-value block's [min, min+2^width-1] interval is
  // tight, so a literal below the whole chunk screens every block as
  // none-match and nothing is unpacked.
  std::vector<Value> values = MakePattern(DataType::kInt64, 0, 512);
  auto enc = EncodeChunk(values, DataType::kInt64, Encoding::kBitPacked);
  ASSERT_TRUE(enc.ok());
  auto view = ParseChunk(*enc);
  ASSERT_TRUE(view.ok());

  SelectionVector sel(values.size(), 2);
  uint64_t evals = 0, unpacked = 0, kernels = 0;
  auto handled = EvalChunkCmp(*view, DataType::kInt64, CmpOp::kLt,
                              Value::Int(-5), sel.data(), &evals, &unpacked,
                              &kernels);
  ASSERT_TRUE(handled.ok());
  ASSERT_TRUE(handled.value());
  EXPECT_EQ(unpacked, 0u);   // All four blocks screened, none unpacked.
  EXPECT_EQ(kernels, 0u);
  EXPECT_EQ(evals, 4u);      // One verdict per 128-value block.
  for (size_t i = 0; i < values.size(); ++i) EXPECT_EQ(sel[i], 0);

  // A mid-chunk literal splits blocks into screened and mixed: only the
  // straddling block unpacks.
  std::fill(sel.begin(), sel.end(), uint8_t{2});
  evals = unpacked = kernels = 0;
  handled = EvalChunkCmp(*view, DataType::kInt64, CmpOp::kLt, Value::Int(700),
                         sel.data(), &evals, &unpacked, &kernels);
  ASSERT_TRUE(handled.ok());
  ASSERT_TRUE(handled.value());
  EXPECT_LE(unpacked, 128u);
  EXPECT_EQ(kernels, 1u);
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(sel[i] != 0, static_cast<int64_t>(i * 3) < 700) << "row " << i;
  }
}

TEST(EncodedEvalTest, BitPackedNonIntLiteralHasNoEncodedPath) {
  std::vector<Value> values = MakePattern(DataType::kInt64, 2, 64);
  auto enc = EncodeChunk(values, DataType::kInt64, Encoding::kBitPacked);
  ASSERT_TRUE(enc.ok());
  auto view = ParseChunk(*enc);
  ASSERT_TRUE(view.ok());
  SelectionVector sel(values.size(), 2);
  auto handled = EvalChunkCmp(*view, DataType::kInt64, CmpOp::kEq,
                              Value::Str("x"), sel.data());
  ASSERT_TRUE(handled.ok());
  EXPECT_FALSE(handled.value());  // Caller decodes and evaluates value-wise.
}

// ------------------------------------------- Selective decode (late mat)

struct SelectedCase {
  const char* name;
  DataType type;
  int pattern;  // MakePattern index.
  Encoding encoding;
};

class SelectedDecode : public ::testing::TestWithParam<SelectedCase> {};

/// Property: DecodeChunkSelected(sel) == filter(DecodeChunk, sel) for
/// every encoding, including nulls, long runs, high cardinality, and
/// single-row chunks, under random selection vectors of varying density.
TEST_P(SelectedDecode, MatchesFilteredFullDecode) {
  const SelectedCase& c = GetParam();
  Random rng(99);
  for (size_t n : {size_t{1}, size_t{7}, size_t{500}}) {
    std::vector<Value> values = MakePattern(c.type, c.pattern, n);
    auto encoded = EncodeChunk(values, c.type, c.encoding);
    ASSERT_TRUE(encoded.ok()) << encoded.status().ToString();
    auto view = ParseChunk(*encoded);
    ASSERT_TRUE(view.ok()) << view.status().ToString();
    ASSERT_EQ(view->count, n);
    ASSERT_EQ(view->encoding, c.encoding);

    std::vector<Value> full;
    ASSERT_TRUE(DecodeChunk(*encoded, c.type, &full).ok());

    for (double density : {0.0, 0.01, 0.5, 1.0}) {
      SelectionVector sel(n);
      uint64_t selected = 0;
      for (size_t i = 0; i < n; ++i) {
        sel[i] = density >= 1.0 ? 1 : (rng.Bernoulli(density) ? 1 : 0);
        selected += sel[i];
      }
      std::vector<Value> got;
      uint64_t values_decoded = 0;
      ASSERT_TRUE(DecodeChunkSelected(*view, c.type, sel.data(), &got,
                                      &values_decoded)
                      .ok());
      ASSERT_EQ(got.size(), selected) << c.name << " n=" << n;
      size_t k = 0;
      for (size_t i = 0; i < n; ++i) {
        if (!sel[i]) continue;
        EXPECT_EQ(got[k].Compare(full[i]), 0) << c.name << " row " << i;
        EXPECT_EQ(got[k].is_null(), full[i].is_null());
        ++k;
      }
      if (selected > 0) EXPECT_GT(values_decoded, 0u);
    }

    // nullptr selection = full decode.
    std::vector<Value> all;
    ASSERT_TRUE(DecodeChunkSelected(*view, c.type, nullptr, &all).ok());
    ASSERT_EQ(all.size(), full.size());
    for (size_t i = 0; i < n; ++i) EXPECT_EQ(all[i].Compare(full[i]), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllEncodings, SelectedDecode,
    ::testing::Values(
        SelectedCase{"plain_highcard_str", DataType::kString, 3,
                     Encoding::kPlain},
        SelectedCase{"plain_nulls", DataType::kInt64, 4, Encoding::kPlain},
        SelectedCase{"plain_runs", DataType::kInt64, 1, Encoding::kPlain},
        SelectedCase{"rle_runs_int", DataType::kInt64, 1, Encoding::kRle},
        SelectedCase{"rle_runs_str", DataType::kString, 1, Encoding::kRle},
        SelectedCase{"rle_nulls", DataType::kInt64, 4, Encoding::kRle},
        SelectedCase{"dict_lowcard_str", DataType::kString, 2,
                     Encoding::kDict},
        SelectedCase{"dict_nulls", DataType::kInt64, 4, Encoding::kDict},
        SelectedCase{"dict_highcard_int", DataType::kInt64, 3,
                     Encoding::kDict},
        SelectedCase{"delta_sorted", DataType::kInt64, 0,
                     Encoding::kDeltaVarint},
        SelectedCase{"bp_lowcard", DataType::kInt64, 2, Encoding::kBitPacked},
        SelectedCase{"bp_random", DataType::kInt64, 3, Encoding::kBitPacked},
        SelectedCase{"bp_nulls", DataType::kInt64, 4, Encoding::kBitPacked}),
    [](const ::testing::TestParamInfo<SelectedCase>& info) {
      return info.param.name;
    });

/// Property: EvalChunkCmp (per-run / per-dictionary-entry evaluation)
/// produces exactly the verdicts of row-wise CmpMatches; plain and delta
/// report "no encoded path".
TEST(EncodedEvalTest, EvalChunkCmpMatchesRowWise) {
  struct Case {
    DataType type;
    int pattern;
    Encoding encoding;
    Value literal;
  };
  const std::vector<Case> cases = {
      {DataType::kInt64, 1, Encoding::kRle, Value::Int(3)},
      {DataType::kInt64, 4, Encoding::kRle, Value::Int(50)},
      {DataType::kString, 1, Encoding::kRle, Value::Str("AAA")},
      {DataType::kString, 2, Encoding::kDict, Value::Str("v3")},
      {DataType::kInt64, 4, Encoding::kDict, Value::Int(42)},
      {DataType::kInt64, 2, Encoding::kDict, Value::Int(5)},
      {DataType::kInt64, 2, Encoding::kBitPacked, Value::Int(5)},
      {DataType::kInt64, 0, Encoding::kBitPacked, Value::Int(300)},
      {DataType::kInt64, 4, Encoding::kBitPacked, Value::Int(50)},
  };
  const CmpOp ops[] = {CmpOp::kEq, CmpOp::kNe, CmpOp::kLt,
                       CmpOp::kLe, CmpOp::kGt, CmpOp::kGe};
  for (const Case& c : cases) {
    for (size_t n : {size_t{1}, size_t{256}}) {
      std::vector<Value> values = MakePattern(c.type, c.pattern, n);
      auto encoded = EncodeChunk(values, c.type, c.encoding);
      ASSERT_TRUE(encoded.ok());
      auto view = ParseChunk(*encoded);
      ASSERT_TRUE(view.ok());
      for (CmpOp op : ops) {
        SelectionVector sel(n, 2);  // Poisoned; must be fully overwritten.
        uint64_t evals = 0;
        auto handled =
            EvalChunkCmp(*view, c.type, op, c.literal, sel.data(), &evals);
        ASSERT_TRUE(handled.ok()) << handled.status().ToString();
        ASSERT_TRUE(handled.value());
        // One comparison per run / dictionary entry, never more than one
        // per row.
        EXPECT_GT(evals, 0u);
        EXPECT_LE(evals, n);
        for (size_t i = 0; i < n; ++i) {
          EXPECT_EQ(sel[i] != 0, CmpMatches(values[i], op, c.literal))
              << "op " << CmpOpName(op) << " row " << i;
        }
      }
    }
  }

  // Plain and delta have no encoded-eval path.
  for (Encoding enc : {Encoding::kPlain, Encoding::kDeltaVarint}) {
    std::vector<Value> values = MakePattern(DataType::kInt64, 0, 64);
    auto encoded = EncodeChunk(values, DataType::kInt64, enc);
    ASSERT_TRUE(encoded.ok());
    auto view = ParseChunk(*encoded);
    ASSERT_TRUE(view.ok());
    SelectionVector sel(64, 0);
    auto handled = EvalChunkCmp(*view, DataType::kInt64, CmpOp::kGt,
                                Value::Int(10), sel.data());
    ASSERT_TRUE(handled.ok());
    EXPECT_FALSE(handled.value());
  }
}

// ------------------------------------------------------------ Predicates

TEST(PredicateTest, EvalComparisons) {
  Row row = {Value::Int(5), Value::Str("x")};
  EXPECT_TRUE(Predicate::Cmp(0, CmpOp::kEq, Value::Int(5))->Eval(row));
  EXPECT_FALSE(Predicate::Cmp(0, CmpOp::kNe, Value::Int(5))->Eval(row));
  EXPECT_TRUE(Predicate::Cmp(0, CmpOp::kLt, Value::Int(6))->Eval(row));
  EXPECT_TRUE(Predicate::Cmp(0, CmpOp::kGe, Value::Int(5))->Eval(row));
  EXPECT_TRUE(Predicate::Cmp(1, CmpOp::kEq, Value::Str("x"))->Eval(row));
}

TEST(PredicateTest, NullNeverMatches) {
  Row row = {Value::Null(DataType::kInt64)};
  EXPECT_FALSE(Predicate::Cmp(0, CmpOp::kEq, Value::Int(5))->Eval(row));
  EXPECT_FALSE(Predicate::Cmp(0, CmpOp::kNe, Value::Int(5))->Eval(row));
  EXPECT_FALSE(Predicate::Cmp(0, CmpOp::kLt, Value::Int(5))->Eval(row));
}

TEST(PredicateTest, BooleanComposition) {
  Row row = {Value::Int(5)};
  auto lt10 = Predicate::Cmp(0, CmpOp::kLt, Value::Int(10));
  auto gt7 = Predicate::Cmp(0, CmpOp::kGt, Value::Int(7));
  EXPECT_FALSE(Predicate::And(lt10, gt7)->Eval(row));
  EXPECT_TRUE(Predicate::Or(lt10, gt7)->Eval(row));
  EXPECT_TRUE(Predicate::Not(gt7)->Eval(row));
  EXPECT_TRUE(Predicate::True()->Eval(row));
}

TEST(PredicateTest, CouldMatchPrunes) {
  // Block with col0 in [10, 20].
  std::vector<ValueRange> ranges(1);
  ranges[0].valid = true;
  ranges[0].min = Value::Int(10);
  ranges[0].max = Value::Int(20);

  EXPECT_FALSE(Predicate::Cmp(0, CmpOp::kEq, Value::Int(5))->CouldMatch(ranges));
  EXPECT_TRUE(Predicate::Cmp(0, CmpOp::kEq, Value::Int(15))->CouldMatch(ranges));
  EXPECT_FALSE(Predicate::Cmp(0, CmpOp::kLt, Value::Int(10))->CouldMatch(ranges));
  EXPECT_TRUE(Predicate::Cmp(0, CmpOp::kLe, Value::Int(10))->CouldMatch(ranges));
  EXPECT_FALSE(Predicate::Cmp(0, CmpOp::kGt, Value::Int(20))->CouldMatch(ranges));
  EXPECT_TRUE(Predicate::Cmp(0, CmpOp::kGe, Value::Int(20))->CouldMatch(ranges));
}

TEST(PredicateTest, CouldMatchConservativeOnInvalidRange) {
  std::vector<ValueRange> ranges(1);  // Invalid: no stats.
  EXPECT_TRUE(Predicate::Cmp(0, CmpOp::kEq, Value::Int(5))->CouldMatch(ranges));
  // NOT is never used for pruning (no interval complement logic).
  std::vector<ValueRange> valid(1);
  valid[0].valid = true;
  valid[0].min = Value::Int(1);
  valid[0].max = Value::Int(1);
  EXPECT_TRUE(Predicate::Not(Predicate::Cmp(0, CmpOp::kEq, Value::Int(1)))
                  ->CouldMatch(valid));
}

TEST(PredicateTest, AndOrRangeAnalysis) {
  std::vector<ValueRange> ranges(2);
  ranges[0].valid = true;
  ranges[0].min = Value::Int(10);
  ranges[0].max = Value::Int(20);
  ranges[1].valid = true;
  ranges[1].min = Value::Int(0);
  ranges[1].max = Value::Int(5);

  auto a = Predicate::Cmp(0, CmpOp::kGe, Value::Int(15));  // Possible.
  auto b = Predicate::Cmp(1, CmpOp::kGt, Value::Int(9));   // Impossible.
  EXPECT_FALSE(Predicate::And(a, b)->CouldMatch(ranges));
  EXPECT_TRUE(Predicate::Or(a, b)->CouldMatch(ranges));
}

TEST(PredicateTest, CollectColumns) {
  auto p = Predicate::And(Predicate::Cmp(2, CmpOp::kEq, Value::Int(1)),
                          Predicate::Or(Predicate::Cmp(5, CmpOp::kLt,
                                                       Value::Int(9)),
                                        Predicate::True()));
  std::set<size_t> cols;
  p->CollectColumns(&cols);
  EXPECT_EQ(cols, (std::set<size_t>{2, 5}));
}

// --------------------------------------------------------- Delete vector

TEST(DeleteVectorTest, NormalizesAndQueries) {
  DeleteVector dv({5, 1, 5, 3});
  EXPECT_EQ(dv.count(), 3u);
  EXPECT_TRUE(dv.IsDeleted(1));
  EXPECT_TRUE(dv.IsDeleted(3));
  EXPECT_TRUE(dv.IsDeleted(5));
  EXPECT_FALSE(dv.IsDeleted(2));
}

TEST(DeleteVectorTest, SerializeRoundTrip) {
  DeleteVector dv({1, 100, 100000, 1ULL << 40});
  auto parsed = DeleteVector::Deserialize(dv.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->positions(), dv.positions());
}

TEST(DeleteVectorTest, DetectsCorruption) {
  std::string data = DeleteVector({1, 2, 3}).Serialize();
  data[data.size() / 2] ^= 0x10;
  EXPECT_TRUE(DeleteVector::Deserialize(data).status().IsCorruption());
}

TEST(DeleteVectorTest, UnionMerges) {
  DeleteVector a({1, 3}), b({3, 7});
  a.Union(b);
  EXPECT_EQ(a.positions(), (std::vector<uint64_t>{1, 3, 7}));
}

// ------------------------------------------------------------------ Sort

TEST(SortTest, SortAndCheck) {
  std::vector<Row> rows = {{Value::Int(3), Value::Str("c")},
                           {Value::Int(1), Value::Str("a")},
                           {Value::Int(2), Value::Str("b")}};
  EXPECT_FALSE(IsSortedBy(rows, {0}));
  SortRowsBy(&rows, {0});
  EXPECT_TRUE(IsSortedBy(rows, {0}));
  EXPECT_EQ(rows[0][1].str_value(), "a");
}

TEST(SortTest, MergeSortedRuns) {
  std::vector<std::vector<Row>> runs = {
      {{Value::Int(1)}, {Value::Int(4)}, {Value::Int(9)}},
      {{Value::Int(2)}, {Value::Int(3)}},
      {},
      {{Value::Int(0)}}};
  std::vector<Row> merged = MergeSortedRuns(std::move(runs), {0});
  ASSERT_EQ(merged.size(), 6u);
  EXPECT_TRUE(IsSortedBy(merged, {0}));
  EXPECT_EQ(merged.front()[0].int_value(), 0);
  EXPECT_EQ(merged.back()[0].int_value(), 9);
}

// ------------------------------------------------------------------- ROS

class RosTest : public ::testing::Test {
 protected:
  RosTest()
      : schema_({{"id", DataType::kInt64},
                 {"price", DataType::kDouble},
                 {"tag", DataType::kString}}),
        fetcher_(&store_) {}

  std::vector<Row> MakeRows(size_t n) {
    std::vector<Row> rows;
    for (size_t i = 0; i < n; ++i) {
      rows.push_back(Row{Value::Int(static_cast<int64_t>(i)),
                         Value::Dbl(i * 1.5),
                         Value::Str("t" + std::to_string(i % 7))});
    }
    return rows;
  }

  void WriteContainer(const std::vector<Row>& rows, uint64_t rows_per_block) {
    RosWriteOptions opts;
    opts.rows_per_block = rows_per_block;
    auto built = RosContainerWriter::Build(schema_, rows, "data/test", opts);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    build_ = std::move(built).value();
    for (const RosColumnFile& f : build_.files) {
      ASSERT_TRUE(store_.Put(f.key, f.data).ok());
    }
  }

  Schema schema_;
  MemObjectStore store_;
  DirectFetcher fetcher_;
  RosBuildResult build_;
};

TEST_F(RosTest, RoundTripAllColumns) {
  std::vector<Row> rows = MakeRows(1000);
  WriteContainer(rows, 128);
  EXPECT_EQ(build_.row_count, 1000u);
  EXPECT_EQ(build_.files.size(), 3u);

  RosScanOptions scan;
  scan.output_columns = {0, 1, 2};
  auto out = ScanRosContainer(schema_, "data/test", &fetcher_, scan);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->size(), 1000u);
  for (size_t i = 0; i < 1000; ++i) {
    EXPECT_EQ((*out)[i][0].int_value(), static_cast<int64_t>(i));
    EXPECT_DOUBLE_EQ((*out)[i][1].dbl_value(), i * 1.5);
  }
}

TEST_F(RosTest, ColumnStoreFetchesOnlyNeededColumns) {
  WriteContainer(MakeRows(500), 100);
  RosScanOptions scan;
  scan.output_columns = {1};  // Only "price".
  RosScanStats stats;
  auto out = ScanRosContainer(schema_, "data/test", &fetcher_, scan, &stats);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(stats.files_fetched, 1u);  // True column store (Section 2.3).
}

TEST_F(RosTest, BlockPruningViaMinMax) {
  WriteContainer(MakeRows(1000), 100);  // 10 blocks, ids 0..999 sorted.
  RosScanOptions scan;
  scan.output_columns = {0};
  scan.predicate = Predicate::Cmp(0, CmpOp::kGe, Value::Int(950));
  RosScanStats stats;
  auto out = ScanRosContainer(schema_, "data/test", &fetcher_, scan, &stats);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 50u);
  EXPECT_EQ(stats.blocks_total, 10u);
  EXPECT_EQ(stats.blocks_pruned, 9u);  // Only the last block can match.
}

TEST_F(RosTest, DeleteVectorFiltersRows) {
  WriteContainer(MakeRows(100), 50);
  DeleteVector dv({0, 1, 2, 99});
  RosScanOptions scan;
  scan.output_columns = {0};
  scan.deletes = &dv;
  auto out = ScanRosContainer(schema_, "data/test", &fetcher_, scan);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 96u);
  EXPECT_EQ((*out)[0][0].int_value(), 3);
}

TEST_F(RosTest, RowRangeRestriction) {
  WriteContainer(MakeRows(100), 10);
  RosScanOptions scan;
  scan.output_columns = {0};
  scan.row_begin = 25;
  scan.row_end = 75;
  auto out = ScanRosContainer(schema_, "data/test", &fetcher_, scan);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 50u);
  EXPECT_EQ((*out)[0][0].int_value(), 25);
  EXPECT_EQ(out->back()[0].int_value(), 74);
}

TEST_F(RosTest, ContainerRangesCoverData) {
  WriteContainer(MakeRows(100), 64);
  ASSERT_EQ(build_.column_ranges.size(), 3u);
  EXPECT_EQ(build_.column_ranges[0].min.int_value(), 0);
  EXPECT_EQ(build_.column_ranges[0].max.int_value(), 99);
}

TEST_F(RosTest, CorruptedBlockDetected) {
  WriteContainer(MakeRows(100), 50);
  // Flip a byte inside the first column object's data region.
  std::string data = *store_.Get("data/test_c0");
  data[10] ^= 0x01;
  ASSERT_TRUE(store_.Delete("data/test_c0").ok());
  ASSERT_TRUE(store_.Put("data/test_c0", data).ok());
  RosScanOptions scan;
  scan.output_columns = {0};
  auto out = ScanRosContainer(schema_, "data/test", &fetcher_, scan);
  EXPECT_TRUE(out.status().IsCorruption());
}

TEST_F(RosTest, FindMatchingPositions) {
  WriteContainer(MakeRows(100), 25);
  auto pred = Predicate::Cmp(0, CmpOp::kLt, Value::Int(10));
  auto positions =
      FindMatchingPositions(schema_, "data/test", &fetcher_, pred);
  ASSERT_TRUE(positions.ok());
  ASSERT_EQ(positions->size(), 10u);
  EXPECT_EQ((*positions)[9], 9u);

  DeleteVector dv({0, 5});
  auto remaining =
      FindMatchingPositions(schema_, "data/test", &fetcher_, pred, &dv);
  ASSERT_TRUE(remaining.ok());
  EXPECT_EQ(remaining->size(), 8u);
}

// Rows exercising every encoding in one container: id sorted (delta),
// price with nulls (plain), tag low-cardinality (dict).
std::vector<Row> MakeMixedRows(size_t n) {
  Random rng(123);
  std::vector<Row> rows;
  for (size_t i = 0; i < n; ++i) {
    rows.push_back(
        Row{Value::Int(static_cast<int64_t>(i)),
            rng.Bernoulli(0.1) ? Value::Null(DataType::kDouble)
                               : Value::Dbl(rng.NextDouble() * 100),
            Value::Str("t" + std::to_string(i * 7919 % 5))});
  }
  return rows;
}

TEST_F(RosTest, ScanModesProduceIdenticalRows) {
  std::vector<Row> rows = MakeMixedRows(1000);
  WriteContainer(rows, 128);
  DeleteVector dv({3, 128, 129, 777});

  const std::vector<PredicatePtr> predicates = {
      Predicate::Cmp(2, CmpOp::kEq, Value::Str("t3")),
      Predicate::And(Predicate::Cmp(2, CmpOp::kNe, Value::Str("t1")),
                     Predicate::Cmp(0, CmpOp::kLt, Value::Int(700))),
      Predicate::Or(Predicate::Cmp(1, CmpOp::kLt, Value::Dbl(10.0)),
                    Predicate::Cmp(0, CmpOp::kGe, Value::Int(950))),
      Predicate::Not(Predicate::Cmp(2, CmpOp::kEq, Value::Str("t2"))),
      Predicate::True(),
  };
  for (size_t p = 0; p < predicates.size(); ++p) {
    std::vector<std::vector<Row>> by_mode;
    std::vector<RosScanStats> stats_by_mode;
    for (ScanMode mode :
         {ScanMode::kRowWise, ScanMode::kBlockEval, ScanMode::kLateMat}) {
      RosScanOptions scan;
      scan.output_columns = {2, 0, 1};
      scan.predicate = predicates[p];
      scan.deletes = &dv;
      scan.row_begin = 5;
      scan.row_end = 990;
      ApplyScanMode(mode, &scan);
      RosScanStats stats;
      auto out =
          ScanRosContainer(schema_, "data/test", &fetcher_, scan, &stats);
      ASSERT_TRUE(out.ok()) << ScanModeName(mode) << ": "
                            << out.status().ToString();
      by_mode.push_back(std::move(out).value());
      stats_by_mode.push_back(stats);
    }
    for (size_t m = 1; m < by_mode.size(); ++m) {
      ASSERT_EQ(by_mode[m].size(), by_mode[0].size()) << "predicate " << p;
      for (size_t r = 0; r < by_mode[0].size(); ++r) {
        ASSERT_EQ(by_mode[m][r].size(), by_mode[0][r].size());
        for (size_t c = 0; c < by_mode[0][r].size(); ++c) {
          ASSERT_EQ(by_mode[m][r][c].Compare(by_mode[0][r][c]), 0)
              << "predicate " << p << " mode " << m << " row " << r;
          ASSERT_EQ(by_mode[m][r][c].is_null(), by_mode[0][r][c].is_null());
        }
      }
    }
    // All modes agree on pruning and visitation accounting.
    for (size_t m = 1; m < stats_by_mode.size(); ++m) {
      EXPECT_EQ(stats_by_mode[m].blocks_total, stats_by_mode[0].blocks_total);
      EXPECT_EQ(stats_by_mode[m].blocks_pruned,
                stats_by_mode[0].blocks_pruned);
      EXPECT_EQ(stats_by_mode[m].rows_visited, stats_by_mode[0].rows_visited);
      EXPECT_EQ(stats_by_mode[m].rows_output, stats_by_mode[0].rows_output);
    }
  }
}

TEST_F(RosTest, LateMatDecodesFewerValuesOnSelectivePredicate) {
  WriteContainer(MakeMixedRows(2000), 256);
  RosScanOptions scan;
  scan.output_columns = {0, 1};
  scan.predicate = Predicate::Cmp(2, CmpOp::kEq, Value::Str("t4"));  // ~1/5.

  RosScanStats eager;
  ApplyScanMode(ScanMode::kBlockEval, &scan);
  ASSERT_TRUE(
      ScanRosContainer(schema_, "data/test", &fetcher_, scan, &eager).ok());
  RosScanStats late;
  ApplyScanMode(ScanMode::kLateMat, &scan);
  ASSERT_TRUE(
      ScanRosContainer(schema_, "data/test", &fetcher_, scan, &late).ok());

  EXPECT_GT(eager.values_decoded, 0u);
  EXPECT_LT(late.values_decoded, eager.values_decoded);
  EXPECT_EQ(late.rows_output, eager.rows_output);
}

TEST_F(RosTest, SkipsOutputFilesWhenNothingSurvives) {
  WriteContainer(MakeRows(500), 100);
  RosScanOptions scan;
  scan.output_columns = {1, 2};
  // Passes min/max analysis on every block but matches no row.
  scan.predicate =
      Predicate::And(Predicate::Cmp(0, CmpOp::kGe, Value::Int(10)),
                     Predicate::Cmp(0, CmpOp::kLt, Value::Int(10)));
  RosScanStats stats;
  auto out = ScanRosContainer(schema_, "data/test", &fetcher_, scan, &stats);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_TRUE(out->empty());
  // Blocks 1..4 are refuted by min/max (id >= 100 > 10); block 0's range
  // [0,99] admits both halves, so only evaluation can empty it.
  EXPECT_EQ(stats.blocks_pruned, 4u);
  EXPECT_EQ(stats.files_fetched, 1u);      // Predicate column only.
  EXPECT_EQ(stats.files_skipped, 2u);      // price + tag never fetched.

  // A matching predicate fetches the output files and skips nothing.
  scan.predicate = Predicate::Cmp(0, CmpOp::kLt, Value::Int(10));
  RosScanStats hit;
  ASSERT_TRUE(
      ScanRosContainer(schema_, "data/test", &fetcher_, scan, &hit).ok());
  EXPECT_EQ(hit.files_fetched, 3u);
  EXPECT_EQ(hit.files_skipped, 0u);
}

TEST_F(RosTest, FindMatchingPositionsMatchesRowWiseScan) {
  std::vector<Row> rows = MakeMixedRows(800);
  WriteContainer(rows, 64);
  DeleteVector dv({10, 11, 500});
  const auto pred =
      Predicate::Or(Predicate::Cmp(2, CmpOp::kEq, Value::Str("t0")),
                    Predicate::Cmp(1, CmpOp::kGt, Value::Dbl(95.0)));
  auto positions =
      FindMatchingPositions(schema_, "data/test", &fetcher_, pred, &dv);
  ASSERT_TRUE(positions.ok());
  std::vector<uint64_t> expect;
  for (size_t i = 0; i < rows.size(); ++i) {
    if (dv.IsDeleted(i)) continue;
    if (pred->Eval(rows[i])) expect.push_back(i);
  }
  EXPECT_EQ(*positions, expect);
}

TEST_F(RosTest, EmptyContainer) {
  WriteContainer({}, 10);
  EXPECT_EQ(build_.row_count, 0u);
  RosScanOptions scan;
  scan.output_columns = {0, 1, 2};
  auto out = ScanRosContainer(schema_, "data/test", &fetcher_, scan);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->empty());
}

TEST_F(RosTest, RejectsMismatchedRows) {
  std::vector<Row> bad = {{Value::Int(1)}};  // Wrong arity.
  EXPECT_TRUE(RosContainerWriter::Build(schema_, bad, "data/x", {})
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace eon
