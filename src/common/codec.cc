#include "common/codec.h"

#include <cstring>

namespace eon {

void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  memcpy(buf, &v, 4);
  dst->append(buf, 4);
}

void PutFixed64(std::string* dst, uint64_t v) {
  char buf[8];
  memcpy(buf, &v, 8);
  dst->append(buf, 8);
}

void PutVarint32(std::string* dst, uint32_t v) {
  while (v >= 0x80) {
    dst->push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  dst->push_back(static_cast<char>(v));
}

void PutVarint64(std::string* dst, uint64_t v) {
  while (v >= 0x80) {
    dst->push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  dst->push_back(static_cast<char>(v));
}

void PutVarint64Signed(std::string* dst, int64_t v) {
  uint64_t zz = (static_cast<uint64_t>(v) << 1) ^
                static_cast<uint64_t>(v >> 63);
  PutVarint64(dst, zz);
}

void PutLengthPrefixed(std::string* dst, const Slice& s) {
  PutVarint64(dst, s.size());
  dst->append(s.data(), s.size());
}

void PutDouble(std::string* dst, double v) {
  uint64_t bits;
  memcpy(&bits, &v, 8);
  PutFixed64(dst, bits);
}

Status GetFixed32(Slice* input, uint32_t* v) {
  if (input->size() < 4) return Status::Corruption("fixed32 underflow");
  memcpy(v, input->data(), 4);
  input->remove_prefix(4);
  return Status::OK();
}

Status GetFixed64(Slice* input, uint64_t* v) {
  if (input->size() < 8) return Status::Corruption("fixed64 underflow");
  memcpy(v, input->data(), 8);
  input->remove_prefix(8);
  return Status::OK();
}

Status GetVarint64(Slice* input, uint64_t* v) {
  uint64_t result = 0;
  for (int shift = 0; shift <= 63 && !input->empty(); shift += 7) {
    uint8_t byte = static_cast<uint8_t>((*input)[0]);
    input->remove_prefix(1);
    result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *v = result;
      return Status::OK();
    }
  }
  return Status::Corruption("varint64 malformed");
}

Status GetVarint32(Slice* input, uint32_t* v) {
  uint64_t v64;
  EON_RETURN_IF_ERROR(GetVarint64(input, &v64));
  if (v64 > 0xFFFFFFFFull) return Status::Corruption("varint32 overflow");
  *v = static_cast<uint32_t>(v64);
  return Status::OK();
}

Status GetVarint64Signed(Slice* input, int64_t* v) {
  uint64_t zz;
  EON_RETURN_IF_ERROR(GetVarint64(input, &zz));
  *v = static_cast<int64_t>((zz >> 1) ^ (~(zz & 1) + 1));
  return Status::OK();
}

Status GetLengthPrefixed(Slice* input, Slice* out) {
  uint64_t len;
  EON_RETURN_IF_ERROR(GetVarint64(input, &len));
  if (input->size() < len) {
    return Status::Corruption("length-prefixed string underflow");
  }
  *out = Slice(input->data(), static_cast<size_t>(len));
  input->remove_prefix(static_cast<size_t>(len));
  return Status::OK();
}

Status GetDouble(Slice* input, double* v) {
  uint64_t bits;
  EON_RETURN_IF_ERROR(GetFixed64(input, &bits));
  memcpy(v, &bits, 8);
  return Status::OK();
}

}  // namespace eon
