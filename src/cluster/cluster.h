#ifndef EON_CLUSTER_CLUSTER_H_
#define EON_CLUSTER_CLUSTER_H_

#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "cluster/node.h"
#include "common/io_pool.h"
#include "common/thread_pool.h"
#include "shard/participation.h"

namespace eon {

/// Static description of a node at cluster creation.
struct NodeSpec {
  std::string name;
  std::string subcluster;  ///< Empty = "default".
};

struct ClusterOptions {
  uint32_t num_shards = 4;
  /// Subscribers per shard ("for node fault tolerance, there must be more
  /// than one subscriber to each shard", Section 3.1).
  int k_safety = 2;
  NodeOptions node;
  uint64_t seed = 42;
  std::string db_name = "eon";
  /// Revive-lease duration; revive aborts while another cluster's lease on
  /// the shared storage location is unexpired (Section 3.5).
  int64_t lease_duration_micros = 60LL * 1000 * 1000;
  /// Metrics registry for cluster-level instruments (commits, reaped
  /// files, node-up gauges via NodeOptions); null = process default.
  obs::MetricsRegistry* registry = nullptr;
  /// Morsel-execution parallel width for queries on this cluster.
  /// 0 = auto: the EON_EXEC_THREADS environment variable if set, else
  /// min(hardware threads, 8). 1 = fully serial (no worker threads) —
  /// the deterministic fallback; results are byte-identical at any width.
  int exec_threads = 0;
  /// Dedicated I/O pool width, shared by every node's file cache for
  /// async fetches, prefetch, and parallel cache warming. Distinct from
  /// exec_threads: I/O lanes spend their life blocked on (simulated)
  /// object-store latency, so they are cheap to overprovision and must
  /// never steal a compute lane. 0 = auto: EON_IO_THREADS if set, else 4.
  int io_threads = 0;
  /// Scan read-ahead: while executing morsel i, the executor prefetches
  /// the column files of morsels i+1..i+prefetch_depth into the serving
  /// node's cache through the I/O pool. 0 disables prefetch; < 0 = auto:
  /// EON_PREFETCH_DEPTH if set, else 4.
  int prefetch_depth = -1;
  /// Near-data predicate/aggregate pushdown (ObjectStore::ScanObject).
  /// 0 = off; 1 = cost-based (push a morsel's scan into the store when
  /// the container is cold and the predicate selective enough that the
  /// response is cheaper than fetching the column files); 2 = force (push
  /// every eligible morsel — benchmarking / tests). < 0 = auto:
  /// EON_PUSHDOWN if set, else 0.
  int pushdown = -1;
  /// Cost-based mode's selectivity ceiling: predicates expected to keep
  /// more than this fraction of rows stay on the local path. < 0 = auto:
  /// EON_PUSHDOWN_SELECTIVITY_CUTOFF if set, else 0.35.
  double pushdown_selectivity_cutoff = -1.0;
  /// Distributed-tracing sample rate. In [0,1]: every query is traced
  /// (spans collected) and the trace is *retained* into dc_trace_spans
  /// when the query is slow (EON_SLOW_QUERY_MICROS), sampled with this
  /// probability, or session-forced — so 0 means "slow queries only".
  /// kTraceDisabled turns span collection off entirely (the benchmarked
  /// zero-overhead baseline). Default -1 = auto: EON_TRACE_SAMPLE if set
  /// (negative value = disabled), else 0.
  static constexpr double kTraceDisabled = -2.0;
  double trace_sample = -1.0;
  /// WOS ingest fast path (WAL + in-memory memtable): INSERT and small
  /// COPY batches commit to the write-ahead log and land in ROS later via
  /// moveout. 0 = off (every write takes the direct-ROS path); 1 = on.
  /// < 0 = auto: EON_WOS if set ("off"/"0"/"false" disables), else on.
  int wos = -1;
  /// Group-commit window in microseconds: the flush leader holds its WAL
  /// upload open this long so concurrent writers share one durability
  /// round-trip. 0 = flush immediately. < 0 = auto:
  /// EON_GROUP_COMMIT_MICROS if set, else 200.
  int64_t group_commit_micros = -1;
  /// Moveout threshold: unflushed WOS rows per table at or above this
  /// count snapshot to real ROS containers and truncate the log. < 0 =
  /// auto: EON_WOS_FLUSH_ROWS if set, else 4096.
  int64_t wos_flush_rows = -1;
};

/// A file awaiting deletion from shared storage (Section 6.5): reclaimed
/// only once no query cluster-wide can reference it AND the dropping
/// transaction is durable past the truncation version.
struct PendingFileDelete {
  std::string key;
  uint64_t drop_version = 0;
};

/// The Eon mode cluster: owns the nodes, replicates catalog commits to
/// shard subscribers, drives the subscription state machine (Figure 4),
/// handles node failure/recovery/instance loss, runs the metadata sync +
/// truncation-version service, revives from shared storage, and reclaims
/// files.
class EonCluster {
 public:
  /// Bootstrap a fresh database on empty shared storage: sharding config,
  /// node registry, k-safe subscription layout (all ACTIVE), first sync
  /// and cluster_info.json upload.
  static Result<std::unique_ptr<EonCluster>> Create(
      ObjectStore* shared_storage, Clock* clock, const ClusterOptions& options,
      const std::vector<NodeSpec>& specs);

  /// Start a cluster from shared storage (Section 3.5): read the latest
  /// cluster_info.json, honor the lease, download each node's catalog,
  /// truncate to the consensus version, adopt a fresh incarnation id and
  /// publish a new cluster_info.json as the commit point.
  static Result<std::unique_ptr<EonCluster>> Revive(
      ObjectStore* shared_storage, Clock* clock, const ClusterOptions& options,
      const std::vector<NodeSpec>& specs);

  /// Attach a READ-ONLY secondary compute cluster to a running database's
  /// shared storage (the paper's "database sharing" direction, Section
  /// 10): downloads the catalog at the published truncation version
  /// without taking the revive lease; serves queries from its own caches;
  /// never commits. See also cluster/sharing.h.
  static Result<std::unique_ptr<EonCluster>> AttachReadOnly(
      ObjectStore* shared_storage, Clock* clock, const ClusterOptions& options,
      const std::vector<NodeSpec>& specs);

  /// Advance a reader cluster to the source's latest published truncation
  /// version by replaying uploaded transaction logs. Returns the number of
  /// versions applied. Fails if the source was revived since attach.
  Result<uint64_t> RefreshReadOnly();

  bool is_read_only() const { return read_only_; }

  // --- Topology access ---

  Node* node(Oid oid);
  Node* node_by_name(const std::string& name);
  const std::vector<std::unique_ptr<Node>>& nodes() const { return nodes_; }
  std::set<Oid> up_node_oids() const;
  /// Any up node (commit coordination, snapshots); null if none.
  Node* AnyUpNode();

  const IncarnationId& incarnation() const { return incarnation_; }
  ShardingConfig sharding() const;
  Clock* clock() { return clock_; }
  ObjectStore* shared_storage() { return shared_; }
  const ClusterOptions& options() const { return options_; }
  bool is_shutdown() const { return shutdown_; }
  /// Shared morsel-execution pool (see ClusterOptions::exec_threads).
  ThreadPool* exec_pool() { return exec_pool_.get(); }
  /// Shared I/O pool backing cache fetches (ClusterOptions::io_threads).
  IoPool* io_pool() { return io_pool_.get(); }
  /// Effective scan read-ahead depth (ClusterOptions::prefetch_depth).
  int prefetch_depth() const { return prefetch_depth_; }
  /// Effective pushdown mode (ClusterOptions::pushdown).
  int pushdown_mode() const { return pushdown_mode_; }
  /// Effective cost-model selectivity ceiling for pushdown.
  double pushdown_selectivity_cutoff() const {
    return pushdown_selectivity_cutoff_;
  }
  /// Effective trace sample rate (ClusterOptions::trace_sample): < 0 =
  /// tracing disabled, else the probabilistic retention rate.
  double trace_sample() const { return trace_sample_; }
  /// Flip the sampling policy on a live cluster (tests and the overhead
  /// bench, which compares tracing modes on one fixture so the
  /// comparison is not polluted by allocator/cache placement differences
  /// between separately built clusters). Call only between queries.
  void set_trace_sample(double rate) { trace_sample_ = rate; }
  /// Effective WOS fast-path switch (ClusterOptions::wos).
  bool wos_enabled() const { return options_.node.wos.enabled; }
  /// Effective group-commit window (ClusterOptions::group_commit_micros).
  int64_t group_commit_micros() const {
    return options_.node.wos.group_commit_micros;
  }
  /// Effective moveout row threshold (ClusterOptions::wos_flush_rows).
  uint64_t wos_flush_rows() const { return options_.node.wos.flush_rows; }

  // --- Distributed commit (Section 3.2) ---

  /// Commit `txn` on `coordinator` and replicate the log record to every
  /// other up node (each applying under its shard filter). When
  /// `observed_subscribers` is given (one entry per shard the transaction
  /// wrote storage into), commit validates that no additional subscriber
  /// "snuck in" since planning — new subscribers would lack the eagerly
  /// distributed metadata — and aborts otherwise.
  Result<uint64_t> CommitDistributed(
      Oid coordinator, const CatalogTxn& txn,
      const std::map<ShardId, std::set<Oid>>* observed_subscribers = nullptr);

  // --- Subscription lifecycle (Figure 4) ---

  /// PENDING → metadata transfer → PASSIVE → (cache warm) → ACTIVE.
  Status SubscribeNode(Oid node_oid, ShardId shard, bool warm_cache = true);

  /// REMOVING → (fault-tolerance check) → drop metadata + purge cache →
  /// subscription dropped. Refuses (Unavailable) while dropping would
  /// leave the shard without enough other ACTIVE subscribers.
  Status UnsubscribeNode(Oid node_oid, ShardId shard);

  /// Drive subscriptions toward the planned k-safe layout (node add /
  /// remove elasticity, Section 6.4).
  Status Rebalance(bool warm_cache = true);

  // --- Node failure & recovery (Sections 3.3, 6.1) ---

  /// Process termination: the node stops serving; shards it served remain
  /// available via other subscribers. Shuts the cluster down if quorum or
  /// shard coverage is lost.
  Status KillNode(Oid node_oid);

  /// Process restart with local disk intact: catch up on missed log
  /// records from a peer (incremental diffs), re-subscribe (ACTIVE subs
  /// forced through PENDING), optionally warm the lukewarm cache.
  Status RestartNode(Oid node_oid, bool warm_cache = true);

  /// Instance loss: local catalog and cache wiped.
  Status DestroyNodeInstance(Oid node_oid);

  /// Rebuild a destroyed instance: metadata from a peer (no transaction
  /// loss), cold cache warmed from a same-subcluster peer.
  Status RecoverDestroyedNode(Oid node_oid, bool warm_cache = true);

  /// Quorum of up nodes AND every shard has an up ACTIVE subscriber
  /// (Section 3.4's viability invariants).
  bool IsViable() const;

  // --- Metadata durability service (Section 3.5) ---

  /// Upload pending transaction logs (and periodic checkpoints) from every
  /// up node. Clean shutdowns call with force_checkpoint = true.
  Status SyncAll(bool force_checkpoint = false);

  /// Recompute the consensus truncation version (Figure 5) from uploaded
  /// sync intervals and publish a new cluster_info.json with a fresh lease.
  Status UpdateClusterInfo();

  uint64_t last_truncation_version() const { return last_truncation_; }

  // --- File deletion (Section 6.5) ---

  /// Called when a commit drops storage: files leave every node's cache
  /// immediately (local refcount zero) and enter the pending-delete queue
  /// for shared storage.
  void TrackDroppedFiles(const std::vector<std::string>& keys,
                         uint64_t drop_version);

  /// Online reaper: delete pending files whose drop version is below both
  /// the gossiped cluster-minimum running-query version and the truncation
  /// version. Returns the number of files deleted.
  Result<uint64_t> ReapFiles();

  /// Fallback global enumeration for leaked files (crash mid-operation):
  /// list shared storage, keep anything referenced by any node's catalog,
  /// pending deletion, or minted by a live node instance; delete the rest.
  Result<uint64_t> CleanLeakedFiles();

  size_t pending_delete_count() const { return pending_deletes_.size(); }

 private:
  EonCluster(ObjectStore* shared_storage, Clock* clock,
             const ClusterOptions& options);

  /// ClusterOptions::exec_threads → effective pool width (see its doc).
  static int ResolveExecThreads(int configured);
  /// ClusterOptions::io_threads → effective I/O pool width (see its doc).
  static int ResolveIoThreads(int configured);
  /// ClusterOptions::prefetch_depth → effective read-ahead depth.
  static int ResolvePrefetchDepth(int configured);
  /// ClusterOptions::pushdown → effective pushdown mode.
  static int ResolvePushdown(int configured);
  /// ClusterOptions::pushdown_selectivity_cutoff → effective ceiling.
  static double ResolvePushdownCutoff(double configured);
  /// ClusterOptions::trace_sample → effective rate (-1 = disabled).
  static double ResolveTraceSample(double configured);
  /// ClusterOptions::wos → effective fast-path switch.
  static bool ResolveWos(int configured);
  /// ClusterOptions::group_commit_micros → effective window.
  static int64_t ResolveGroupCommitMicros(int64_t configured);
  /// ClusterOptions::wos_flush_rows → effective moveout threshold.
  static uint64_t ResolveWosFlushRows(int64_t configured);

  Status BuildNodes(const std::vector<NodeSpec>& specs);
  /// Apply log records the target missed, fetched from any up peer.
  Status BringNodeUpToDate(Node* target);
  /// Full storage-metadata import for a shard from a source node.
  Status TransferShardMetadata(Node* target, ShardId shard);
  /// Pick a warm peer, preferring the same subcluster (Section 5.2).
  Node* PickWarmPeer(const Node& target, ShardId shard);
  Status WarmNodeCache(Node* target);
  Status ResubscribeNode(Node* target, bool warm_cache);
  void CheckViabilityAndMaybeShutdown();

  ObjectStore* shared_;
  Clock* clock_;
  ClusterOptions options_;
  std::unique_ptr<ThreadPool> exec_pool_;
  /// Declared before nodes_ on purpose: node caches submit tasks to this
  /// pool, and FileCache's destructor waits for its in-flight async work
  /// — the pool's workers must still be draining the queue while the
  /// nodes (destroyed first, reverse declaration order) shut down.
  std::unique_ptr<IoPool> io_pool_;
  int prefetch_depth_ = 0;
  int pushdown_mode_ = 0;
  double pushdown_selectivity_cutoff_ = 0.35;
  double trace_sample_ = -1.0;
  IncarnationId incarnation_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<PendingFileDelete> pending_deletes_;
  uint64_t last_truncation_ = 0;
  bool shutdown_ = false;
  /// Serializes the commit point of CommitDistributed: the coordinator's
  /// catalog commit and the replication of its log record to peers must
  /// be atomic, or a later version can reach a peer before an earlier
  /// one. Prepare work (container writes, uploads) stays outside — only
  /// the short commit section serializes (the OCC regime of Section 4).
  std::mutex commit_mu_;
  /// Cluster-level registry instruments.
  struct {
    obs::Counter* commits = nullptr;        ///< eon_cluster_commits_total
    obs::Counter* files_reaped = nullptr;   ///< eon_cluster_files_reaped_total
    obs::Gauge* pending_deletes = nullptr;  ///< eon_cluster_pending_deletes
  } metrics_;
  /// Reader clusters (AttachReadOnly): no commits, no metadata uploads;
  /// incarnation_ records the SOURCE database's incarnation.
  bool read_only_ = false;
};

}  // namespace eon

#endif  // EON_CLUSTER_CLUSTER_H_
