#include "columnar/ndp.h"

namespace eon {

namespace {

/// FileFetcher over the store's raw reader. Near-data: these reads never
/// cross the network, so nothing here is metered — ScanObjectResponse
/// carries the local bytes as `bytes_scanned` instead.
class RawReaderFetcher : public FileFetcher {
 public:
  explicit RawReaderFetcher(const RawObjectReader& reader)
      : reader_(reader) {}

  Result<std::string> Fetch(const std::string& key) override {
    return reader_(key);
  }

 private:
  const RawObjectReader& reader_;
};

}  // namespace

bool IsPushableAggregate(AggFn fn, DataType input_type) {
  switch (fn) {
    case AggFn::kCount:
      return true;
    case AggFn::kMin:
    case AggFn::kMax:
      return true;  // Order-independent for every type.
    case AggFn::kSum:
    case AggFn::kAvg:
      // int64 partials are exact (sum_int plus a double that represents
      // the same integer exactly below 2^53); double partials depend on
      // addition order and would break bit-identity.
      return input_type == DataType::kInt64;
    case AggFn::kCountDistinct:
      return false;  // Unbounded state transfer.
  }
  return false;
}

Status ExecuteObjectScan(const RawObjectReader& reader,
                         const ScanObjectRequest& request,
                         ScanObjectResponse* response) {
  if (response == nullptr) {
    return Status::InvalidArgument("ScanObject: null response");
  }
  *response = ScanObjectResponse{};
  const size_t out_width = request.output_columns.size();
  for (size_t pos : request.group_columns) {
    if (pos >= out_width) {
      return Status::InvalidArgument("ScanObject: group column out of range");
    }
  }
  for (const NdpAggSpec& a : request.aggregates) {
    if (a.column == SIZE_MAX) {
      if (a.fn != AggFn::kCount) {
        return Status::InvalidArgument(
            "ScanObject: only COUNT may omit its input column");
      }
      continue;
    }
    if (a.column >= out_width) {
      return Status::InvalidArgument(
          "ScanObject: aggregate column out of range");
    }
    const DataType t =
        request.schema.column(request.output_columns[a.column]).type;
    if (!IsPushableAggregate(a.fn, t)) {
      return Status::InvalidArgument(
          "ScanObject: aggregate is not pushable store-side");
    }
  }

  // Run the regular ROS scan pipeline against the store's own bytes —
  // encoded predicate eval + selective decode, the exact code path a local
  // scan uses, which is what makes pushed results bit-identical.
  RawReaderFetcher fetcher(reader);
  RosScanOptions scan;
  scan.output_columns = request.output_columns;
  scan.predicate = request.predicate;
  scan.predicate_columns = request.predicate_columns;
  scan.deletes = request.deletes;
  scan.row_begin = request.row_begin;
  scan.row_end = request.row_end;
  scan.block_eval = true;
  scan.late_mat = true;
  EON_ASSIGN_OR_RETURN(
      std::vector<Row> rows,
      ScanRosContainer(request.schema, request.base_key, &fetcher, scan,
                       &response->scan));
  response->rows_visited = response->scan.rows_visited;
  response->rows_output = rows.size();
  response->bytes_scanned = response->scan.bytes_fetched;

  if (request.aggregates.empty()) {
    response->response_bytes = 0;
    for (const Row& row : rows) response->response_bytes += RowBytes(row);
    response->rows = std::move(rows);
    return Status::OK();
  }

  // Aggregate pushdown: fold survivors into per-group partials in row
  // order. Per-value accumulation is bit-identical to the engine's batch
  // fold for the pushable (exact) aggregate set.
  for (const Row& row : rows) {
    GroupKey key;
    key.reserve(request.group_columns.size());
    for (size_t pos : request.group_columns) key.push_back(row[pos]);
    auto [it, inserted] = response->groups.try_emplace(
        std::move(key), std::vector<AggState>(request.aggregates.size()));
    for (size_t a = 0; a < request.aggregates.size(); ++a) {
      const NdpAggSpec& spec = request.aggregates[a];
      if (spec.column == SIZE_MAX) {
        it->second[a].FoldCountOnly(1);
      } else {
        it->second[a].Accumulate(spec.fn, row[spec.column]);
      }
    }
  }
  for (const auto& [key, states] : response->groups) {
    response->response_bytes += RowBytes(key);
    for (const AggState& s : states) response->response_bytes += s.TransferBytes();
  }
  return Status::OK();
}

}  // namespace eon
