#ifndef EON_ENGINE_DESIGNER_H_
#define EON_ENGINE_DESIGNER_H_

#include <string>
#include <vector>

#include "engine/ddl.h"
#include "engine/query.h"

namespace eon {

/// Input to the Database Designer (Section 2.1: "a Database Designer
/// utility that uses the schema, some sample data, and queries from the
/// workload to automatically determine an optimized set of projections").
struct DesignInput {
  std::string table;
  std::vector<QuerySpec> workload;
  /// Cap on proposed projections beyond what already exists (customers
  /// typically keep one to four projections per table).
  size_t max_projections = 3;
};

/// One proposed projection with the evidence behind it.
struct DesignedProjection {
  ProjectionSpec spec;
  /// Number of workload queries this projection improves.
  int queries_benefited = 0;
  /// Human-readable reasoning ("co-segments join on l_orderkey; sort on
  /// l_shipdate prunes 12 predicates").
  std::string rationale;
};

/// Analyze the workload and propose projections for `table`:
///  - join keys and group-by keys become segmentation candidates
///    (enables local joins / local group-bys, Section 2.2);
///  - frequently filtered columns become sort-order candidates (sorted
///    min/max pruning, Section 2.1);
///  - each proposal carries only the columns its queries touch.
/// Proposals equivalent to existing projections are suppressed.
Result<std::vector<DesignedProjection>> DesignProjections(
    const CatalogState& state, const DesignInput& input);

/// Create and backfill every proposed projection.
Status ApplyDesign(EonCluster* cluster, const std::string& table,
                   const std::vector<DesignedProjection>& design);

}  // namespace eon

#endif  // EON_ENGINE_DESIGNER_H_
