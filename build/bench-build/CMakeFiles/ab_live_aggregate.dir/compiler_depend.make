# Empty compiler generated dependencies file for ab_live_aggregate.
# This may be replaced when dependencies are built.
