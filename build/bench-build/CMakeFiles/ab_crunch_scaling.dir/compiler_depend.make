# Empty compiler generated dependencies file for ab_crunch_scaling.
# This may be replaced when dependencies are built.
