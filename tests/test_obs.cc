// Unit + integration tests for the observability subsystem: histogram
// quantile math, label-set instrument identity, clock-driven tracing,
// concurrent counters, exposition formats, and the per-query profile
// ExecuteQuery attaches to its result.

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.h"
#include "engine/session.h"
#include "obs/dc.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "storage/sim_object_store.h"
#include "workload/tpch.h"

namespace eon {
namespace obs {
namespace {

// --- Histogram bucket / quantile math ------------------------------------

TEST(HistogramTest, BucketAssignment) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("h", LabelSet(), {10, 20, 30});
  h->Observe(5);    // bucket 0 (<=10)
  h->Observe(10);   // bucket 0 (inclusive upper bound)
  h->Observe(15);   // bucket 1
  h->Observe(30);   // bucket 2
  h->Observe(100);  // overflow
  HistogramSnapshot s = h->Snapshot();
  ASSERT_EQ(s.bounds.size(), 3u);
  ASSERT_EQ(s.counts.size(), 4u);
  EXPECT_EQ(s.counts[0], 2u);
  EXPECT_EQ(s.counts[1], 1u);
  EXPECT_EQ(s.counts[2], 1u);
  EXPECT_EQ(s.counts[3], 1u);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.sum, 160.0);
  EXPECT_DOUBLE_EQ(s.Mean(), 32.0);
}

TEST(HistogramTest, QuantilesOfUniformDistribution) {
  MetricsRegistry reg;
  // 100 buckets of width 10 over [0, 1000); observe 0..999 uniformly.
  std::vector<double> bounds;
  for (int i = 1; i <= 100; ++i) bounds.push_back(i * 10.0);
  Histogram* h = reg.GetHistogram("u", LabelSet(), bounds);
  for (int v = 0; v < 1000; ++v) h->Observe(v);
  HistogramSnapshot s = h->Snapshot();
  // Linear interpolation in 10-wide buckets: within one bucket width.
  EXPECT_NEAR(s.P50(), 500.0, 10.0);
  EXPECT_NEAR(s.P95(), 950.0, 10.0);
  EXPECT_NEAR(s.P99(), 990.0, 10.0);
  EXPECT_NEAR(s.Quantile(0.25), 250.0, 10.0);
}

TEST(HistogramTest, QuantilesOfPointMass) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("p", LabelSet(), {100, 200, 300});
  // All mass in the (100, 200] bucket: every quantile interpolates inside.
  for (int i = 0; i < 50; ++i) h->Observe(150);
  HistogramSnapshot s = h->Snapshot();
  EXPECT_GT(s.P50(), 100.0);
  EXPECT_LE(s.P50(), 200.0);
  EXPECT_GT(s.P99(), 100.0);
  EXPECT_LE(s.P99(), 200.0);
}

TEST(HistogramTest, OverflowClampsToHighestFiniteBound) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("o", LabelSet(), {10, 20});
  for (int i = 0; i < 10; ++i) h->Observe(1e9);  // All overflow.
  EXPECT_DOUBLE_EQ(h->Snapshot().P50(), 20.0);
  EXPECT_DOUBLE_EQ(h->Snapshot().P99(), 20.0);
}

TEST(HistogramTest, EmptyHistogramQuantileIsZero) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("e", LabelSet(), {1, 2});
  EXPECT_DOUBLE_EQ(h->Snapshot().P50(), 0.0);
  EXPECT_DOUBLE_EQ(h->Snapshot().P95(), 0.0);
  EXPECT_DOUBLE_EQ(h->Snapshot().P99(), 0.0);
  EXPECT_DOUBLE_EQ(h->Snapshot().Mean(), 0.0);
}

TEST(HistogramTest, MergeOfSnapshotsPreservesInvariants) {
  // Per-node histogram snapshots with identical bounds merge bucket-wise
  // (the system_metrics aggregation story). Verify the merged snapshot's
  // invariants: count/sum additive, mean = weighted mean, and every
  // quantile of the mixture is bracketed by the per-part quantiles.
  MetricsRegistry reg;
  const std::vector<double> bounds = {10, 20, 40, 80, 160};
  Histogram* a = reg.GetHistogram("merge_a", LabelSet(), bounds);
  Histogram* b = reg.GetHistogram("merge_b", LabelSet(), bounds);
  for (int i = 0; i < 100; ++i) a->Observe(i % 75);         // Low-skewed.
  for (int i = 0; i < 60; ++i) b->Observe(40 + i % 100);    // High-skewed.
  const HistogramSnapshot sa = a->Snapshot();
  const HistogramSnapshot sb = b->Snapshot();

  HistogramSnapshot merged;
  merged.bounds = sa.bounds;
  merged.counts.resize(sa.counts.size(), 0);
  ASSERT_EQ(sa.counts.size(), sb.counts.size());
  for (size_t i = 0; i < sa.counts.size(); ++i) {
    merged.counts[i] = sa.counts[i] + sb.counts[i];
  }
  merged.count = sa.count + sb.count;
  merged.sum = sa.sum + sb.sum;

  EXPECT_EQ(merged.count, 160u);
  EXPECT_DOUBLE_EQ(merged.Mean(),
                   (sa.sum + sb.sum) /
                       static_cast<double>(sa.count + sb.count));
  uint64_t bucket_total = 0;
  for (uint64_t c : merged.counts) bucket_total += c;
  EXPECT_EQ(bucket_total, merged.count);
  for (double q : {0.25, 0.5, 0.9, 0.95, 0.99}) {
    const double lo = std::min(sa.Quantile(q), sb.Quantile(q));
    const double hi = std::max(sa.Quantile(q), sb.Quantile(q));
    EXPECT_GE(merged.Quantile(q), lo - 1e-9) << "q=" << q;
    EXPECT_LE(merged.Quantile(q), hi + 1e-9) << "q=" << q;
  }
  // Merging with an empty snapshot is the identity on every quantile.
  HistogramSnapshot empty;
  empty.bounds = sa.bounds;
  empty.counts.resize(sa.counts.size(), 0);
  HistogramSnapshot same = sa;
  same.count += empty.count;
  same.sum += empty.sum;
  for (double q : {0.5, 0.95, 0.99}) {
    EXPECT_DOUBLE_EQ(same.Quantile(q), sa.Quantile(q));
  }
}

// --- Label-set identity ---------------------------------------------------

TEST(LabelSetTest, OrderInsensitiveIdentity) {
  LabelSet a{{"node", "n1"}, {"op", "get"}};
  LabelSet b{{"op", "get"}, {"node", "n1"}};
  EXPECT_EQ(a.Key(), b.Key());
  EXPECT_TRUE(a == b);

  MetricsRegistry reg;
  Counter* ca = reg.GetCounter("c", a);
  Counter* cb = reg.GetCounter("c", b);
  EXPECT_EQ(ca, cb);  // Same (name, labels) = same instrument.
  ca->Increment(3);
  cb->Increment(2);
  EXPECT_EQ(ca->Value(), 5u);
}

TEST(LabelSetTest, DifferentLabelsDifferentInstruments) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("c", LabelSet{{"node", "n1"}});
  Counter* b = reg.GetCounter("c", LabelSet{{"node", "n2"}});
  Counter* c = reg.GetCounter("c");
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  a->Increment(1);
  b->Increment(2);
  c->Increment(4);
  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_DOUBLE_EQ(snap.Value("c", LabelSet{{"node", "n1"}}), 1.0);
  EXPECT_DOUBLE_EQ(snap.Value("c", LabelSet{{"node", "n2"}}), 2.0);
  EXPECT_DOUBLE_EQ(snap.Value("c"), 4.0);
  EXPECT_DOUBLE_EQ(snap.SumAcrossLabels("c"), 7.0);
}

TEST(LabelSetTest, DuplicateKeysLastWriterWins) {
  LabelSet dup{{"k", "old"}, {"k", "new"}};
  EXPECT_EQ(dup.Key(), "k=new");
}

// --- Registry snapshot / delta -------------------------------------------

TEST(RegistryTest, SnapshotDeltaIsolatesOneOperation) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("work_total");
  c->Increment(100);  // Prior accumulated work.
  MetricsSnapshot before = reg.Snapshot();
  c->Increment(7);  // The operation under test.
  MetricsSnapshot delta = reg.Snapshot().Delta(before);
  EXPECT_DOUBLE_EQ(delta.Value("work_total"), 7.0);
}

TEST(RegistryTest, ResetForTestZeroesInPlace) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("c");
  Gauge* g = reg.GetGauge("g");
  Histogram* h = reg.GetHistogram("h", LabelSet(), {1, 2});
  c->Increment(5);
  g->Set(9);
  h->Observe(1.5);
  reg.ResetForTest();
  EXPECT_EQ(c->Value(), 0u);  // Same pointer, zeroed value.
  EXPECT_EQ(g->Value(), 0);
  EXPECT_EQ(h->Count(), 0u);
}

// --- Concurrent counters --------------------------------------------------

TEST(RegistryTest, ConcurrentCounterIncrements) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      // Resolve through the registry in-thread: exercises the lock path
      // too, not just the atomic add.
      Counter* c = reg.GetCounter("concurrent_total");
      Histogram* h =
          reg.GetHistogram("concurrent_micros", LabelSet(), {10, 100, 1000});
      for (int i = 0; i < kIncrements; ++i) {
        c->Increment();
        h->Observe(static_cast<double>(i % 1000));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(reg.GetCounter("concurrent_total")->Value(),
            static_cast<uint64_t>(kThreads) * kIncrements);
  EXPECT_EQ(reg.GetHistogram("concurrent_micros")->Count(),
            static_cast<uint64_t>(kThreads) * kIncrements);
}

// --- Tracing under SimClock ----------------------------------------------

TEST(TracerTest, NestedSpansDeterministicUnderSimClock) {
  SimClock clock;
  Tracer tracer(&clock);
  {
    Span root = tracer.StartSpan("query");
    clock.AdvanceMicros(10);
    {
      Span child = tracer.StartSpan("scan", root);
      child.SetAttribute("table", "lineitem");
      child.SetAttribute("containers", int64_t{4});
      clock.AdvanceMicros(25);
    }  // child ends at t=35.
    clock.AdvanceMicros(5);
  }  // root ends at t=40.

  std::vector<SpanData> spans = tracer.FinishedSpans();
  ASSERT_EQ(spans.size(), 2u);
  // Children finish before parents.
  const SpanData& child = spans[0];
  const SpanData& root = spans[1];
  EXPECT_EQ(child.name, "scan");
  EXPECT_EQ(root.name, "query");
  EXPECT_EQ(root.parent_id, 0u);
  EXPECT_EQ(child.parent_id, root.id);
  EXPECT_EQ(root.start_micros, 0);
  EXPECT_EQ(root.end_micros, 40);
  EXPECT_EQ(child.start_micros, 10);
  EXPECT_EQ(child.end_micros, 35);
  EXPECT_EQ(child.DurationMicros(), 25);
  ASSERT_EQ(child.attributes.size(), 2u);
  EXPECT_EQ(child.attributes[0].first, "table");
  EXPECT_EQ(child.attributes[0].second, "lineitem");
  EXPECT_EQ(child.attributes[1].second, "4");
}

TEST(TracerTest, EndIsIdempotentAndMoveSafe) {
  SimClock clock;
  Tracer tracer(&clock);
  Span a = tracer.StartSpan("a");
  clock.AdvanceMicros(7);
  a.End();
  clock.AdvanceMicros(100);
  a.End();  // No-op; duration stays 7.
  Span b = tracer.StartSpan("b");
  Span c = std::move(b);
  b.End();  // Moved-from span is inert.
  c.End();
  std::vector<SpanData> spans = tracer.FinishedSpans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].DurationMicros(), 7);
  EXPECT_EQ(tracer.finished_count(), 2u);
}

TEST(TracerTest, FinishedBufferBounded) {
  SimClock clock;
  Tracer tracer(&clock, /*max_finished_spans=*/4);
  for (int i = 0; i < 10; ++i) tracer.StartSpan("s" + std::to_string(i));
  EXPECT_EQ(tracer.FinishedSpans().size(), 4u);
  EXPECT_EQ(tracer.finished_count(), 10u);
  // Oldest dropped: the survivors are the last four.
  EXPECT_EQ(tracer.FinishedSpans().front().name, "s6");
}

TEST(TracerTest, DroppedSpansCountedAndSurfacedInRegistry) {
  SimClock clock;
  MetricsRegistry reg;
  Tracer tracer(&clock, /*max_finished_spans=*/3, &reg);
  for (int i = 0; i < 8; ++i) tracer.StartSpan("s");
  EXPECT_EQ(tracer.spans_dropped(), 5u);
  EXPECT_EQ(tracer.finished_count(), 8u);
  EXPECT_EQ(tracer.FinishedSpans().size(), 3u);
  // The drop counter is mirrored into the registry so exports surface it.
  EXPECT_DOUBLE_EQ(reg.Snapshot().Value("eon_tracer_spans_dropped_total"),
                   5.0);
  // Clear resets the local drop counter; the registry stays monotone.
  tracer.Clear();
  EXPECT_EQ(tracer.spans_dropped(), 0u);
  tracer.StartSpan("t");
  EXPECT_EQ(tracer.spans_dropped(), 0u);
  EXPECT_DOUBLE_EQ(reg.Snapshot().Value("eon_tracer_spans_dropped_total"),
                   5.0);
}

// --- Exposition formats ---------------------------------------------------

TEST(ExportTest, PrometheusTextFormat) {
  MetricsRegistry reg;
  reg.GetCounter("eon_test_total", LabelSet{{"node", "n1"}})->Increment(3);
  reg.GetGauge("eon_test_gauge")->Set(-2);
  Histogram* h = reg.GetHistogram("eon_test_micros", LabelSet(), {10, 20});
  h->Observe(5);
  h->Observe(15);
  h->Observe(999);
  std::string text = ExportPrometheusText(reg.Snapshot());
  EXPECT_NE(text.find("# TYPE eon_test_total counter"), std::string::npos);
  EXPECT_NE(text.find("eon_test_total{node=\"n1\"} 3"), std::string::npos);
  EXPECT_NE(text.find("eon_test_gauge -2"), std::string::npos);
  // Cumulative buckets: le="20" covers both finite observations.
  EXPECT_NE(text.find("eon_test_micros_bucket{le=\"10\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("eon_test_micros_bucket{le=\"20\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("eon_test_micros_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("eon_test_micros_count 3"), std::string::npos);
}

TEST(ExportTest, JsonContainsSamples) {
  MetricsRegistry reg;
  reg.GetCounter("eon_json_total")->Increment(42);
  std::string json = ExportJson(reg.Snapshot()).Dump();
  EXPECT_NE(json.find("eon_json_total"), std::string::npos);
  EXPECT_NE(json.find("42"), std::string::npos);
}

// --- Prometheus exposition grammar ---------------------------------------

// Validators for the text exposition format 0.0.4: every line is either a
// `# TYPE <name> <kind>` comment or `<name>[{k="v",...}] <value>`.

bool IsValidMetricName(const std::string& s) {
  if (s.empty()) return false;
  auto head = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
           c == ':';
  };
  if (!head(s[0])) return false;
  for (char c : s) {
    if (!head(c) && !std::isdigit(static_cast<unsigned char>(c))) {
      return false;
    }
  }
  return true;
}

bool IsValidValue(const std::string& s) {
  if (s == "+Inf" || s == "-Inf" || s == "NaN") return true;
  if (s.empty()) return false;
  char* end = nullptr;
  (void)strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

// Parses one sample line into (name, labels-as-text, value); returns false
// with a diagnostic on any grammar violation.
bool ParseSampleLine(const std::string& line, std::string* name,
                     std::string* value, std::string* error) {
  size_t i = 0;
  while (i < line.size() && line[i] != '{' && line[i] != ' ') i++;
  *name = line.substr(0, i);
  if (!IsValidMetricName(*name)) {
    *error = "bad metric name: " + *name;
    return false;
  }
  if (i < line.size() && line[i] == '{') {
    i++;  // Consume '{'.
    while (i < line.size() && line[i] != '}') {
      size_t eq = line.find('=', i);
      if (eq == std::string::npos) {
        *error = "label without '='";
        return false;
      }
      if (!IsValidMetricName(line.substr(i, eq - i))) {
        *error = "bad label name: " + line.substr(i, eq - i);
        return false;
      }
      if (eq + 1 >= line.size() || line[eq + 1] != '"') {
        *error = "label value not quoted";
        return false;
      }
      size_t close = line.find('"', eq + 2);
      if (close == std::string::npos) {
        *error = "unterminated label value";
        return false;
      }
      i = close + 1;
      if (i < line.size() && line[i] == ',') i++;
    }
    if (i >= line.size() || line[i] != '}') {
      *error = "unterminated label set";
      return false;
    }
    i++;  // Consume '}'.
  }
  if (i >= line.size() || line[i] != ' ') {
    *error = "missing space before value";
    return false;
  }
  *value = line.substr(i + 1);
  if (!IsValidValue(*value)) {
    *error = "bad value: " + *value;
    return false;
  }
  return true;
}

TEST(ExportTest, PrometheusExpositionLineGrammar) {
  MetricsRegistry reg;
  reg.GetCounter("app_requests_total",
                 LabelSet{{"node", "n1"}, {"op", "get"}})
      ->Increment(7);
  reg.GetCounter("app_requests_total",
                 LabelSet{{"node", "n2"}, {"op", "put"}})
      ->Increment(2);
  reg.GetGauge("app_queue_depth")->Set(-5);
  Histogram* h = reg.GetHistogram("app_latency_micros",
                                  LabelSet{{"node", "n1"}}, {10, 20, 40});
  h->Observe(3);
  h->Observe(15);
  h->Observe(0.5);  // Non-integral sum exercises the %g formatting path.
  h->Observe(1e9);
  const std::string text = ExportPrometheusText(reg.Snapshot());

  std::istringstream lines(text);
  std::string line;
  std::string type_name, type_kind;
  int samples = 0, types = 0;
  uint64_t prev_bucket = 0;
  double inf_bucket = -1, hist_count = -1;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty()) << "blank line in exposition output";
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream fields(line.substr(7));
      ASSERT_TRUE(static_cast<bool>(fields >> type_name >> type_kind))
          << line;
      EXPECT_TRUE(IsValidMetricName(type_name)) << line;
      EXPECT_TRUE(type_kind == "counter" || type_kind == "gauge" ||
                  type_kind == "histogram")
          << line;
      std::string rest;
      EXPECT_FALSE(static_cast<bool>(fields >> rest)) << "trailing: " << line;
      types++;
      continue;
    }
    ASSERT_NE(line[0], '#') << "unknown comment form: " << line;
    std::string name, value, error;
    ASSERT_TRUE(ParseSampleLine(line, &name, &value, &error))
        << error << " in: " << line;
    samples++;
    // Every sample belongs to the most recently declared family; histogram
    // samples use the _bucket/_sum/_count suffixes.
    if (type_kind == "histogram") {
      EXPECT_TRUE(name == type_name + "_bucket" ||
                  name == type_name + "_sum" || name == type_name + "_count")
          << line;
      if (name == type_name + "_bucket") {
        ASSERT_NE(line.find("le=\""), std::string::npos) << line;
        const uint64_t cum = static_cast<uint64_t>(std::stod(value));
        EXPECT_GE(cum, prev_bucket) << "non-monotone buckets: " << line;
        prev_bucket = cum;
        if (line.find("le=\"+Inf\"") != std::string::npos) {
          inf_bucket = static_cast<double>(cum);
        }
      }
      if (name == type_name + "_count") hist_count = std::stod(value);
    } else {
      EXPECT_EQ(name, type_name) << line;
      if (type_kind == "counter") {
        EXPECT_GE(std::stod(value), 0.0) << "negative counter: " << line;
      }
    }
  }
  EXPECT_EQ(types, 3);
  // 2 counter samples + 1 gauge + (4 buckets + sum + count) = 9.
  EXPECT_EQ(samples, 9);
  // The +Inf bucket equals the histogram's total count.
  EXPECT_EQ(inf_bucket, 4.0);
  EXPECT_EQ(hist_count, inf_bucket);
}

TEST(ExportTest, PrometheusGoldenOutput) {
  // Exact golden rendering of a small deterministic registry: catches any
  // regression in name/label/value formatting or family grouping.
  MetricsRegistry reg;
  reg.GetCounter("app_requests_total", LabelSet{{"node", "n1"}})
      ->Increment(3);
  reg.GetGauge("app_queue_depth")->Set(-2);
  Histogram* h = reg.GetHistogram("app_latency_micros", LabelSet(), {10, 20});
  h->Observe(5);
  h->Observe(15);
  h->Observe(999);
  const std::string kGolden =
      "# TYPE app_latency_micros histogram\n"
      "app_latency_micros_bucket{le=\"10\"} 1\n"
      "app_latency_micros_bucket{le=\"20\"} 2\n"
      "app_latency_micros_bucket{le=\"+Inf\"} 3\n"
      "app_latency_micros_sum 1019\n"
      "app_latency_micros_count 3\n"
      "# TYPE app_queue_depth gauge\n"
      "app_queue_depth -2\n"
      "# TYPE app_requests_total counter\n"
      "app_requests_total{node=\"n1\"} 3\n";
  EXPECT_EQ(ExportPrometheusText(reg.Snapshot()), kGolden);
}

// --- Data Collector rings -------------------------------------------------

TEST(DataCollectorTest, RingWrapDropsOldestAndCounts) {
  SimClock clock;
  DataCollectorOptions opts;
  opts.query_ring = 4;
  DataCollector dc("node1", &clock, opts);
  for (int i = 0; i < 10; ++i) {
    DcQueryExecution e;
    e.query_id = static_cast<uint64_t>(i);
    e.table = "t";
    e.sim_micros = 1;  // Below any slow threshold: profile cleared.
    dc.RecordQuery(std::move(e));
  }
  std::vector<DcQueryExecution> rows = dc.QueryExecutions();
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows.front().query_id, 6u);  // Oldest dropped first.
  EXPECT_EQ(rows.back().query_id, 9u);
  EXPECT_EQ(dc.query_counters().total, 10u);
  EXPECT_EQ(dc.query_counters().dropped, 6u);
  dc.Clear();
  EXPECT_TRUE(dc.QueryExecutions().empty());
  EXPECT_EQ(dc.query_counters().total, 0u);
}

TEST(DataCollectorTest, SlowQueryThresholdRetainsProfile) {
  SimClock clock;
  DataCollectorOptions opts;
  opts.slow_query_micros = 1000;
  DataCollector dc("node1", &clock, opts);

  DcQueryExecution fast;
  fast.table = "t";
  fast.sim_micros = 999;
  fast.profile.rows_scanned_total = 123;
  dc.RecordQuery(std::move(fast));

  DcQueryExecution slow;
  slow.table = "t";
  slow.sim_micros = 1000;  // At threshold: slow.
  slow.profile.rows_scanned_total = 456;
  dc.RecordQuery(std::move(slow));

  std::vector<DcQueryExecution> rows = dc.QueryExecutions();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_FALSE(rows[0].slow);
  EXPECT_EQ(rows[0].profile.rows_scanned_total, 0u);  // Dropped when fast.
  EXPECT_TRUE(rows[1].slow);
  EXPECT_EQ(rows[1].profile.rows_scanned_total, 456u);  // Kept when slow.
}

TEST(DataCollectorTest, ConcurrentProducersAndSnapshots) {
  // Producers hammer every ring while readers snapshot: the race-labeled
  // suite runs this under TSan (scripts/tsan.sh).
  SimClock clock;
  DataCollectorOptions opts;
  opts.cache_ring = 64;
  opts.store_ring = 64;
  DataCollector dc("node1", &clock, opts);
  constexpr int kProducers = 4;
  constexpr int kEvents = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kProducers; ++t) {
    threads.emplace_back([&dc, t] {
      for (int i = 0; i < kEvents; ++i) {
        DcCacheEvent ce;
        ce.kind = DcCacheEvent::Kind::kMissFill;
        ce.key = "k" + std::to_string(i);
        ce.bytes = 10;
        dc.RecordCacheEvent(std::move(ce));
        DcStoreRequest sr;
        sr.op = (t % 2 == 0) ? "get" : "put";
        sr.bytes = 100;
        dc.RecordStoreRequest(std::move(sr));
      }
    });
  }
  // Reader: repeatedly snapshot while producers run.
  uint64_t observed = 0;
  for (int i = 0; i < 200; ++i) {
    observed += dc.CacheEvents().size() + dc.StoreRequests().size();
    (void)dc.cache_counters();
  }
  for (std::thread& t : threads) t.join();
  (void)observed;
  EXPECT_EQ(dc.cache_counters().total,
            static_cast<uint64_t>(kProducers) * kEvents);
  EXPECT_EQ(dc.store_counters().total,
            static_cast<uint64_t>(kProducers) * kEvents);
  EXPECT_EQ(dc.CacheEvents().size(), 64u);
  EXPECT_EQ(dc.cache_counters().dropped,
            static_cast<uint64_t>(kProducers) * kEvents - 64);
}

// --- Object-store reset + registry mirroring ------------------------------

TEST(StoreMetricsTest, ResetForTestZeroesInstanceNotRegistry) {
  SimClock clock;
  SimStoreOptions opts;
  opts.get_latency_micros = 0;
  opts.put_latency_micros = 0;
  opts.list_latency_micros = 0;
  opts.metrics_name = "reset_test";
  SimObjectStore store(opts, &clock);
  ASSERT_TRUE(store.Put("k", "0123456789").ok());
  ASSERT_TRUE(store.Get("k").ok());
  EXPECT_EQ(store.metrics().puts, 1u);
  EXPECT_EQ(store.metrics().gets, 1u);

  store.ResetForTest();
  EXPECT_EQ(store.metrics().puts, 0u);
  EXPECT_EQ(store.metrics().gets, 0u);
  // Differential assertion via instance counters after reset.
  ASSERT_TRUE(store.Get("k").ok());
  EXPECT_EQ(store.metrics().gets, 1u);

  // The registry mirror stays monotone across the reset.
  MetricsSnapshot snap = MetricsRegistry::Default()->Snapshot();
  EXPECT_DOUBLE_EQ(
      snap.Value("eon_store_requests_total",
                 LabelSet{{"store", "reset_test"}, {"op", "get"}}),
      2.0);
}

// --- End-to-end: QueryProfile on a small TPC-H cluster --------------------

class ProfileIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SimStoreOptions sopts;  // Keep the S3 latency model: sim time > 0.
    store_ = std::make_unique<SimObjectStore>(sopts, &clock_);
    ClusterOptions copts;
    copts.num_shards = 3;
    copts.k_safety = 2;
    copts.node.cache.capacity_bytes = 64ULL << 20;
    auto cluster = EonCluster::Create(
        store_.get(), &clock_, copts,
        {NodeSpec{"node1", ""}, NodeSpec{"node2", ""}, NodeSpec{"node3", ""}});
    ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
    cluster_ = std::move(cluster).value();
    topts_.scale = 0.1;
    ASSERT_TRUE(CreateTpchTables(cluster_.get()).ok());
    ASSERT_TRUE(LoadTpch(cluster_.get(), GenerateTpch(topts_), 256).ok());
    // Loading writes through the caches; drop them so the first query
    // below really reads from the simulated S3.
    for (const auto& n : cluster_->nodes()) n->cache()->Clear();
  }

  SimClock clock_;
  std::unique_ptr<SimObjectStore> store_;
  std::unique_ptr<EonCluster> cluster_;
  TpchOptions topts_;
};

TEST_F(ProfileIntegrationTest, ExecuteQueryPopulatesProfile) {
  EonSession session(cluster_.get());
  QuerySpec dash = DashboardQuery(topts_);
  auto result = session.Execute(dash);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  const QueryProfile& p = result->profile;
  EXPECT_GT(p.rows_scanned_total, 0u);
  EXPECT_FALSE(p.rows_scanned_by_node.empty());
  uint64_t by_node_sum = 0;
  for (const auto& [node, rows] : p.rows_scanned_by_node) by_node_sum += rows;
  EXPECT_EQ(by_node_sum, p.rows_scanned_total);
  EXPECT_EQ(p.participating_nodes, result->stats.participating_nodes);
  EXPECT_GT(p.containers_total, 0u);
  // First execution reads cold caches through the simulated S3: misses,
  // fill bytes, GET requests, dollars and sim time all accounted.
  EXPECT_GT(p.cache_misses, 0u);
  EXPECT_GT(p.cache_fill_bytes, 0u);
  EXPECT_GT(p.store_gets, 0u);
  EXPECT_GT(p.store_bytes_read, 0u);
  EXPECT_GT(p.store_cost_microdollars, 0u);
  EXPECT_GT(p.Phase(QueryPhase::kScan).sim_micros, 0);
  EXPECT_GT(p.TotalSimMicros(), 0);
  EXPECT_GE(p.TotalWallMicros(), 0);
  // The dashboard query joins + aggregates: those phases ran (wall time
  // may round to 0 on fast machines, sim time on cached ops can be 0, but
  // the scan dominated sim time must appear in the total).
  EXPECT_GE(p.TotalSimMicros(), p.Phase(QueryPhase::kScan).sim_micros);

  // Warm second run: hits now, and strictly fewer store GETs.
  auto warm = session.Execute(dash);
  ASSERT_TRUE(warm.ok());
  EXPECT_GT(warm->profile.cache_hits, 0u);
  EXPECT_LT(warm->profile.store_gets, p.store_gets);
  EXPECT_GT(warm->profile.CacheHitRate(), 0.9);

  // Text + JSON renderings carry the headline numbers.
  std::string text = warm->profile.ToText();
  EXPECT_NE(text.find("query profile"), std::string::npos);
  EXPECT_NE(text.find("cache:"), std::string::npos);
  std::string json = warm->profile.ToJson().Dump();
  EXPECT_NE(json.find("phases"), std::string::npos);
  EXPECT_NE(json.find("cache"), std::string::npos);
}

TEST_F(ProfileIntegrationTest, ProfileSeparatesPhases) {
  EonSession session(cluster_.get());
  // Plain scan with no join/aggregate: join + aggregate phases stay zero.
  QuerySpec scan;
  scan.scan.table = "customer";
  scan.scan.columns = {"c_name"};
  auto result = session.Execute(scan);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const QueryProfile& p = result->profile;
  EXPECT_EQ(p.Phase(QueryPhase::kJoin).sim_micros, 0);
  EXPECT_EQ(p.Phase(QueryPhase::kAggregate).sim_micros, 0);
  EXPECT_GT(p.rows_scanned_total, 0u);
}

}  // namespace
}  // namespace obs
}  // namespace eon
