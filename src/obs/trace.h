#ifndef EON_OBS_TRACE_H_
#define EON_OBS_TRACE_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"

namespace eon {
namespace obs {

class MetricsRegistry;

/// A finished (or in-flight) span's recorded data.
struct SpanData {
  uint64_t id = 0;
  uint64_t parent_id = 0;  ///< 0 = root.
  std::string name;
  int64_t start_micros = 0;
  int64_t end_micros = 0;
  std::vector<std::pair<std::string, std::string>> attributes;

  int64_t DurationMicros() const { return end_micros - start_micros; }
};

class Tracer;

/// RAII timing scope. Move-only; End() is idempotent and the destructor
/// ends an open span, so early returns are always accounted.
class Span {
 public:
  Span() = default;
  Span(Span&& o) noexcept { *this = std::move(o); }
  Span& operator=(Span&& o) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { End(); }

  /// Valid spans come from Tracer::StartSpan; default-constructed spans
  /// are inert no-ops (handy for optional tracing).
  bool valid() const { return tracer_ != nullptr; }
  uint64_t id() const { return data_.id; }

  void SetAttribute(const std::string& key, const std::string& value);
  void SetAttribute(const std::string& key, int64_t value);

  /// Stamp the end time from the tracer's clock and hand the span to the
  /// tracer's finished buffer.
  void End();

 private:
  friend class Tracer;
  Span(Tracer* tracer, SpanData data)
      : tracer_(tracer), data_(std::move(data)) {}

  Tracer* tracer_ = nullptr;
  SpanData data_;
};

/// Clock-driven tracer: spans read time from the supplied Clock, so the
/// same instrumentation yields deterministic timings under SimClock and
/// real latencies under WallClock. Finished spans land in a bounded
/// in-memory ring (oldest dropped first, O(1) per span); drops are
/// counted locally and on the `eon_tracer_spans_dropped_total` counter
/// in `registry` (null = process default) so exports surface them.
class Tracer {
 public:
  explicit Tracer(Clock* clock, size_t max_finished_spans = 4096,
                  MetricsRegistry* registry = nullptr)
      : clock_(clock),
        max_finished_(max_finished_spans),
        registry_(registry) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Start a root span.
  Span StartSpan(const std::string& name) { return StartSpanAt(name, 0); }

  /// Start a child span of `parent` (parent must still be open).
  Span StartSpan(const std::string& name, const Span& parent) {
    return StartSpanAt(name, parent.data_.id);
  }

  Clock* clock() const { return clock_; }

  /// Finished spans, oldest first.
  std::vector<SpanData> FinishedSpans() const;
  /// Total spans finished, including any dropped from the buffer.
  uint64_t finished_count() const;
  /// Spans evicted from the bounded buffer since construction / Clear().
  uint64_t spans_dropped() const;
  void Clear();

 private:
  friend class Span;
  Span StartSpanAt(const std::string& name, uint64_t parent_id);
  void Finish(SpanData data);

  Clock* clock_;
  const size_t max_finished_;
  MetricsRegistry* registry_;
  mutable std::mutex mu_;
  std::deque<SpanData> finished_;
  uint64_t finished_total_ = 0;
  uint64_t spans_dropped_ = 0;
  uint64_t next_id_ = 1;
};

}  // namespace obs
}  // namespace eon

#endif  // EON_OBS_TRACE_H_
