#ifndef EON_CLUSTER_BACKUP_H_
#define EON_CLUSTER_BACKUP_H_

#include "cluster/cluster.h"

namespace eon {

/// Result of a backup pass.
struct BackupStats {
  uint64_t objects_copied = 0;
  uint64_t objects_skipped = 0;  ///< Already present (incremental).
  uint64_t bytes_copied = 0;
};

/// Back up a database to another shared-storage location: flush metadata
/// (logs + checkpoints + cluster_info.json), then copy every object not
/// already present at the target.
///
/// Because storage identifiers are globally unique (node instance id +
/// local id, Figure 7), object names can be copied verbatim: "repeated
/// copies between clusters, potentially bidirectional" never collide and
/// never need persistent name mappings (Section 5.1). Immutability makes
/// the copy naturally incremental — an object that exists at the target
/// is already correct.
///
/// Restore = EonCluster::Revive against the backup location (after its
/// lease expires).
Result<BackupStats> BackupDatabase(EonCluster* source,
                                   ObjectStore* target_storage);

}  // namespace eon

#endif  // EON_CLUSTER_BACKUP_H_
