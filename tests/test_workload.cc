// Unit tests for the workload generators: determinism, referential
// integrity, schema alignment, query-set sanity.

#include <gtest/gtest.h>

#include "workload/tpch.h"

namespace eon {
namespace {

TEST(TpchGeneratorTest, Deterministic) {
  TpchOptions opts;
  opts.scale = 0.1;
  TpchData a = GenerateTpch(opts);
  TpchData b = GenerateTpch(opts);
  ASSERT_EQ(a.lineitems.size(), b.lineitems.size());
  for (size_t i = 0; i < a.lineitems.size(); ++i) {
    for (size_t c = 0; c < a.lineitems[i].size(); ++c) {
      EXPECT_EQ(a.lineitems[i][c].Compare(b.lineitems[i][c]), 0);
    }
  }
}

TEST(TpchGeneratorTest, ScaleControlsRowCounts) {
  TpchOptions small;
  small.scale = 0.1;
  TpchOptions big;
  big.scale = 1.0;
  EXPECT_NEAR(static_cast<double>(GenerateTpch(big).lineitems.size()),
              10.0 * GenerateTpch(small).lineitems.size(), 5.0);
}

TEST(TpchGeneratorTest, RowsMatchSchemas) {
  TpchData data = GenerateTpch(TpchOptions{.scale = 0.05});
  for (const Row& r : data.customers) {
    EXPECT_TRUE(TpchCustomerSchema().RowMatches(r));
  }
  for (const Row& r : data.orders) {
    EXPECT_TRUE(TpchOrdersSchema().RowMatches(r));
  }
  for (const Row& r : data.lineitems) {
    EXPECT_TRUE(TpchLineitemSchema().RowMatches(r));
  }
  for (const Row& r : data.parts) {
    EXPECT_TRUE(TpchPartSchema().RowMatches(r));
  }
}

TEST(TpchGeneratorTest, ReferentialIntegrity) {
  TpchOptions opts;
  opts.scale = 0.05;
  TpchData data = GenerateTpch(opts);
  const int64_t n_orders = static_cast<int64_t>(data.orders.size());
  const int64_t n_parts = static_cast<int64_t>(data.parts.size());
  for (const Row& li : data.lineitems) {
    EXPECT_GE(li[0].int_value(), 1);
    EXPECT_LE(li[0].int_value(), n_orders);
    EXPECT_GE(li[1].int_value(), 1);
    EXPECT_LE(li[1].int_value(), n_parts);
    // Ship date not before order date (clamped at the dataset horizon).
    const Row& order = data.orders[li[0].int_value() - 1];
    EXPECT_GE(li[7].int_value(), order[2].int_value());
  }
}

TEST(TpchGeneratorTest, DatesSkewRecent) {
  TpchOptions opts;
  opts.scale = 0.5;
  TpchData data = GenerateTpch(opts);
  int64_t recent = 0;
  for (const Row& o : data.orders) {
    if (o[2].int_value() >= opts.last_day - opts.days / 10) recent++;
  }
  // Zipf-skewed toward recent days: well above the uniform 10% share in
  // the last decile.
  EXPECT_GT(recent * 5, static_cast<int64_t>(data.orders.size()));
}

TEST(TpchQuerySetTest, TwentyDistinctNames) {
  auto queries = TpchQuerySet(TpchOptions{});
  EXPECT_EQ(queries.size(), 20u);
  std::set<std::string> names;
  for (const auto& [name, spec] : queries) names.insert(name);
  EXPECT_EQ(names.size(), 20u);
}

TEST(TpchQuerySetTest, MixOfShapes) {
  auto queries = TpchQuerySet(TpchOptions{});
  int joins = 0, aggs = 0, topk = 0;
  for (const auto& [name, spec] : queries) {
    if (spec.join) joins++;
    if (!spec.aggregates.empty()) aggs++;
    if (spec.limit > 0) topk++;
  }
  EXPECT_GE(joins, 4);
  EXPECT_GE(aggs, 15);
  EXPECT_GE(topk, 2);
}

TEST(IotTest, BatchShapeAndDeterminism) {
  auto a = GenerateIotBatch(5, 100);
  auto b = GenerateIotBatch(5, 100);
  ASSERT_EQ(a.size(), 100u);
  for (const Row& r : a) EXPECT_TRUE(IotEventSchema().RowMatches(r));
  EXPECT_EQ(a[0][0].int_value(), b[0][0].int_value());
  // Different seeds → different batches.
  auto c = GenerateIotBatch(6, 100);
  bool differs = false;
  for (size_t i = 0; i < a.size() && !differs; ++i) {
    differs = a[i][0].int_value() != c[i][0].int_value();
  }
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace eon
