file(REMOVE_RECURSE
  "libeon_storage.a"
)
