#include "common/io_pool.h"

#include <atomic>
#include <chrono>
#include <utility>

#include "obs/metrics.h"

namespace eon {

namespace {

std::string AutoIoPoolName() {
  static std::atomic<uint64_t> seq{0};
  return "io" + std::to_string(seq.fetch_add(1));
}

int64_t SteadyWallMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

IoPool::IoPool(Options options)
    : metrics_name_(options.metrics_name.empty() ? AutoIoPoolName()
                                                 : options.metrics_name) {
  obs::MetricsRegistry* reg = obs::OrDefault(options.registry);
  const obs::LabelSet labels({{"pool", metrics_name_}});
  tasks_total_ = reg->GetCounter("eon_io_pool_tasks_total", labels);
  queue_depth_ = reg->GetGauge("eon_io_pool_queue_depth", labels);
  threads_gauge_ = reg->GetGauge("eon_io_pool_threads", labels);
  task_micros_ = reg->GetHistogram("eon_io_pool_task_micros", labels);

  const int width = options.num_threads < 1 ? 1 : options.num_threads;
  threads_gauge_->Set(width);
  workers_.reserve(width);
  for (int i = 0; i < width; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

IoPool::~IoPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  threads_gauge_->Set(0);
}

void IoPool::Submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(fn));
    queue_depth_->Add(1);
  }
  cv_.notify_one();
}

void IoPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown_ with a drained queue.
      task = std::move(queue_.front());
      queue_.pop_front();
      queue_depth_->Sub(1);
    }
    const int64_t start = SteadyWallMicros();
    task();
    task_micros_->Observe(static_cast<double>(SteadyWallMicros() - start));
    tasks_total_->Increment();
  }
}

}  // namespace eon
