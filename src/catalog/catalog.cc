#include "catalog/catalog.h"

#include <algorithm>

#include "common/codec.h"
#include "common/hash.h"

namespace eon {

std::string TxnLogRecord::Serialize() const {
  std::string out;
  PutVarint64(&out, version);
  PutVarint64(&out, ops.size());
  for (const CatalogOp& op : ops) {
    out.push_back(static_cast<char>(op.type));
    PutFixed32(&out, op.shard);
    PutVarint64(&out, op.oid);
    PutLengthPrefixed(&out, op.payload);
  }
  PutFixed32(&out, Crc32c(out.data(), out.size()));
  return out;
}

Result<TxnLogRecord> TxnLogRecord::Deserialize(Slice data) {
  if (data.size() < 4) return Status::Corruption("log record too short");
  Slice body(data.data(), data.size() - 4);
  Slice crc_slice(data.data() + data.size() - 4, 4);
  uint32_t stored;
  EON_RETURN_IF_ERROR(GetFixed32(&crc_slice, &stored));
  if (Crc32c(body.data(), body.size()) != stored) {
    return Status::Corruption("log record checksum mismatch");
  }
  TxnLogRecord rec;
  EON_RETURN_IF_ERROR(GetVarint64(&body, &rec.version));
  uint64_t nops;
  EON_RETURN_IF_ERROR(GetVarint64(&body, &nops));
  rec.ops.reserve(nops);
  for (uint64_t i = 0; i < nops; ++i) {
    if (body.empty()) return Status::Corruption("op underflow");
    CatalogOp op;
    op.type = static_cast<CatalogOp::Type>(body[0]);
    body.remove_prefix(1);
    EON_RETURN_IF_ERROR(GetFixed32(&body, &op.shard));
    EON_RETURN_IF_ERROR(GetVarint64(&body, &op.oid));
    Slice payload;
    EON_RETURN_IF_ERROR(GetLengthPrefixed(&body, &payload));
    op.payload = payload.ToString();
    rec.ops.push_back(std::move(op));
  }
  return rec;
}

const TableDef* CatalogState::FindTableByName(const std::string& name) const {
  for (const auto& [oid, t] : tables) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

const TableDef* CatalogState::FindTable(Oid oid) const {
  auto it = tables.find(oid);
  return it == tables.end() ? nullptr : &it->second;
}

const ProjectionDef* CatalogState::FindProjection(Oid oid) const {
  auto it = projections.find(oid);
  return it == projections.end() ? nullptr : &it->second;
}

std::vector<const ProjectionDef*> CatalogState::ProjectionsOf(
    Oid table_oid) const {
  std::vector<const ProjectionDef*> out;
  for (const auto& [oid, p] : projections) {
    if (p.table_oid == table_oid) out.push_back(&p);
  }
  return out;
}

std::vector<const StorageContainerMeta*> CatalogState::ContainersOf(
    Oid projection_oid, ShardId shard) const {
  std::vector<const StorageContainerMeta*> out;
  for (const auto& [oid, c] : containers) {
    if (c.projection_oid != projection_oid) continue;
    if (shard != kGlobalShard && c.shard != shard) continue;
    out.push_back(&c);
  }
  return out;
}

std::vector<const DeleteVectorMeta*> CatalogState::DeleteVectorsOf(
    Oid container_oid) const {
  std::vector<const DeleteVectorMeta*> out;
  for (const auto& [oid, d] : delete_vectors) {
    if (d.container_oid == container_oid) out.push_back(&d);
  }
  return out;
}

const Subscription* CatalogState::FindSubscription(Oid node,
                                                   ShardId shard) const {
  auto it = subscriptions.find({node, shard});
  return it == subscriptions.end() ? nullptr : &it->second;
}

std::vector<Oid> CatalogState::SubscribersOf(
    ShardId shard, const std::set<SubscriptionState>& states) const {
  std::vector<Oid> out;
  for (const auto& [key, sub] : subscriptions) {
    if (key.second == shard && states.count(sub.state)) {
      out.push_back(key.first);
    }
  }
  return out;
}

uint64_t CatalogState::ModVersion(Oid oid) const {
  auto it = mod_versions.find(oid);
  return it == mod_versions.end() ? 0 : it->second;
}

void CatalogTxn::SetSharding(const ShardingConfig& cfg) {
  CatalogOp op;
  op.type = CatalogOp::Type::kSetSharding;
  PutVarint32(&op.payload, cfg.num_segment_shards);
  ops_.push_back(std::move(op));
}

void CatalogTxn::PutTable(const TableDef& t) {
  CatalogOp op;
  op.type = CatalogOp::Type::kPutTable;
  op.oid = t.oid;
  SerializeTable(t, &op.payload);
  ops_.push_back(std::move(op));
}

void CatalogTxn::DropTable(Oid oid) {
  CatalogOp op;
  op.type = CatalogOp::Type::kDropTable;
  op.oid = oid;
  ops_.push_back(std::move(op));
}

void CatalogTxn::PutProjection(const ProjectionDef& p) {
  CatalogOp op;
  op.type = CatalogOp::Type::kPutProjection;
  op.oid = p.oid;
  SerializeProjection(p, &op.payload);
  ops_.push_back(std::move(op));
}

void CatalogTxn::DropProjection(Oid oid) {
  CatalogOp op;
  op.type = CatalogOp::Type::kDropProjection;
  op.oid = oid;
  ops_.push_back(std::move(op));
}

void CatalogTxn::PutContainer(const StorageContainerMeta& c) {
  CatalogOp op;
  op.type = CatalogOp::Type::kPutContainer;
  op.shard = c.shard;
  op.oid = c.oid;
  SerializeContainer(c, &op.payload);
  ops_.push_back(std::move(op));
}

void CatalogTxn::DropContainer(Oid oid, ShardId shard) {
  CatalogOp op;
  op.type = CatalogOp::Type::kDropContainer;
  op.shard = shard;
  op.oid = oid;
  ops_.push_back(std::move(op));
}

void CatalogTxn::PutDeleteVector(const DeleteVectorMeta& d) {
  CatalogOp op;
  op.type = CatalogOp::Type::kPutDeleteVector;
  op.shard = d.shard;
  op.oid = d.oid;
  SerializeDeleteVectorMeta(d, &op.payload);
  ops_.push_back(std::move(op));
}

void CatalogTxn::DropDeleteVector(Oid oid, ShardId shard) {
  CatalogOp op;
  op.type = CatalogOp::Type::kDropDeleteVector;
  op.shard = shard;
  op.oid = oid;
  ops_.push_back(std::move(op));
}

void CatalogTxn::PutSubscription(const Subscription& s) {
  CatalogOp op;
  op.type = CatalogOp::Type::kPutSubscription;
  SerializeSubscription(s, &op.payload);
  ops_.push_back(std::move(op));
}

void CatalogTxn::DropSubscription(Oid node, ShardId shard) {
  CatalogOp op;
  op.type = CatalogOp::Type::kDropSubscription;
  Subscription s;
  s.node_oid = node;
  s.shard = shard;
  SerializeSubscription(s, &op.payload);
  ops_.push_back(std::move(op));
}

void CatalogTxn::PutNode(const NodeDef& n) {
  CatalogOp op;
  op.type = CatalogOp::Type::kPutNode;
  op.oid = n.oid;
  SerializeNode(n, &op.payload);
  ops_.push_back(std::move(op));
}

void CatalogTxn::DropNode(Oid oid) {
  CatalogOp op;
  op.type = CatalogOp::Type::kDropNode;
  op.oid = oid;
  ops_.push_back(std::move(op));
}

void CatalogTxn::ExpectVersion(Oid oid, uint64_t version) {
  expected_[oid] = version;
}

Catalog::Catalog() : state_(std::make_shared<CatalogState>()) {}

std::shared_ptr<const CatalogState> Catalog::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

uint64_t Catalog::version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_->version;
}

Oid Catalog::NextOid() {
  std::lock_guard<std::mutex> lock(mu_);
  return next_oid_++;
}

Status Catalog::ApplyOpsLocked(const std::vector<CatalogOp>& ops,
                               const std::set<ShardId>* shard_filter,
                               CatalogState* state) {
  const uint64_t new_version = state->version;  // Caller already bumped.
  for (const CatalogOp& op : ops) {
    if (shard_filter && !op.IsGlobal() && !shard_filter->count(op.shard)) {
      continue;  // Storage metadata for an unsubscribed shard.
    }
    Slice payload(op.payload);
    switch (op.type) {
      case CatalogOp::Type::kSetSharding: {
        uint32_t n;
        EON_RETURN_IF_ERROR(GetVarint32(&payload, &n));
        state->sharding.num_segment_shards = n;
        break;
      }
      case CatalogOp::Type::kPutTable: {
        EON_ASSIGN_OR_RETURN(TableDef t, DeserializeTable(&payload));
        state->mod_versions[t.oid] = new_version;
        next_oid_ = std::max(next_oid_, t.oid + 1);
        state->tables[t.oid] = std::move(t);
        break;
      }
      case CatalogOp::Type::kDropTable:
        state->tables.erase(op.oid);
        state->mod_versions[op.oid] = new_version;
        break;
      case CatalogOp::Type::kPutProjection: {
        EON_ASSIGN_OR_RETURN(ProjectionDef p, DeserializeProjection(&payload));
        state->mod_versions[p.oid] = new_version;
        next_oid_ = std::max(next_oid_, p.oid + 1);
        state->projections[p.oid] = std::move(p);
        break;
      }
      case CatalogOp::Type::kDropProjection:
        state->projections.erase(op.oid);
        state->mod_versions[op.oid] = new_version;
        break;
      case CatalogOp::Type::kPutContainer: {
        EON_ASSIGN_OR_RETURN(StorageContainerMeta c,
                             DeserializeContainer(&payload));
        state->mod_versions[c.oid] = new_version;
        next_oid_ = std::max(next_oid_, c.oid + 1);
        state->containers[c.oid] = std::move(c);
        break;
      }
      case CatalogOp::Type::kDropContainer:
        state->containers.erase(op.oid);
        state->mod_versions[op.oid] = new_version;
        break;
      case CatalogOp::Type::kPutDeleteVector: {
        EON_ASSIGN_OR_RETURN(DeleteVectorMeta d,
                             DeserializeDeleteVectorMeta(&payload));
        state->mod_versions[d.oid] = new_version;
        next_oid_ = std::max(next_oid_, d.oid + 1);
        state->delete_vectors[d.oid] = std::move(d);
        break;
      }
      case CatalogOp::Type::kDropDeleteVector:
        state->delete_vectors.erase(op.oid);
        state->mod_versions[op.oid] = new_version;
        break;
      case CatalogOp::Type::kPutSubscription: {
        EON_ASSIGN_OR_RETURN(Subscription s, DeserializeSubscription(&payload));
        state->subscriptions[{s.node_oid, s.shard}] = s;
        break;
      }
      case CatalogOp::Type::kDropSubscription: {
        EON_ASSIGN_OR_RETURN(Subscription s, DeserializeSubscription(&payload));
        state->subscriptions.erase({s.node_oid, s.shard});
        break;
      }
      case CatalogOp::Type::kPutNode: {
        EON_ASSIGN_OR_RETURN(NodeDef n, DeserializeNode(&payload));
        state->mod_versions[n.oid] = new_version;
        next_oid_ = std::max(next_oid_, n.oid + 1);
        state->nodes[n.oid] = std::move(n);
        break;
      }
      case CatalogOp::Type::kDropNode:
        state->nodes.erase(op.oid);
        state->mod_versions[op.oid] = new_version;
        break;
    }
  }
  return Status::OK();
}

Result<uint64_t> Catalog::Commit(const CatalogTxn& txn) {
  std::lock_guard<std::mutex> lock(mu_);
  // OCC validation: every object in the read set must be unmodified
  // (Section 6.3). On mismatch the transaction rolls back.
  for (const auto& [oid, expected] : txn.expected_versions()) {
    auto it = state_->mod_versions.find(oid);
    uint64_t current = it == state_->mod_versions.end() ? 0 : it->second;
    if (current != expected) {
      return Status::Aborted("OCC conflict on oid " + std::to_string(oid) +
                             ": read v" + std::to_string(expected) +
                             ", now v" + std::to_string(current));
    }
  }
  auto new_state = std::make_shared<CatalogState>(*state_);
  new_state->version = state_->version + 1;
  EON_RETURN_IF_ERROR(ApplyOpsLocked(txn.ops(), nullptr, new_state.get()));
  TxnLogRecord rec;
  rec.version = new_state->version;
  rec.ops = txn.ops();
  log_.push_back(std::move(rec));
  state_ = std::move(new_state);
  return state_->version;
}

Status Catalog::Apply(const TxnLogRecord& record,
                      const std::set<ShardId>* shard_filter) {
  std::lock_guard<std::mutex> lock(mu_);
  if (record.version != state_->version + 1) {
    return Status::InvalidArgument(
        "log record version " + std::to_string(record.version) +
        " does not follow catalog version " +
        std::to_string(state_->version));
  }
  auto new_state = std::make_shared<CatalogState>(*state_);
  new_state->version = record.version;
  EON_RETURN_IF_ERROR(
      ApplyOpsLocked(record.ops, shard_filter, new_state.get()));
  log_.push_back(record);
  state_ = std::move(new_state);
  return Status::OK();
}

std::vector<TxnLogRecord> Catalog::LogsAfter(uint64_t after_version) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TxnLogRecord> out;
  for (const TxnLogRecord& rec : log_) {
    if (rec.version > after_version) out.push_back(rec);
  }
  return out;
}

Status Catalog::ImportStorageObjects(
    const std::vector<StorageContainerMeta>& containers,
    const std::vector<DeleteVectorMeta>& delete_vectors) {
  std::lock_guard<std::mutex> lock(mu_);
  auto new_state = std::make_shared<CatalogState>(*state_);
  for (const StorageContainerMeta& c : containers) {
    next_oid_ = std::max(next_oid_, c.oid + 1);
    new_state->containers[c.oid] = c;
  }
  for (const DeleteVectorMeta& d : delete_vectors) {
    next_oid_ = std::max(next_oid_, d.oid + 1);
    new_state->delete_vectors[d.oid] = d;
  }
  state_ = std::move(new_state);
  return Status::OK();
}

Status Catalog::PurgeShard(ShardId shard) {
  std::lock_guard<std::mutex> lock(mu_);
  auto new_state = std::make_shared<CatalogState>(*state_);
  for (auto it = new_state->containers.begin();
       it != new_state->containers.end();) {
    it = it->second.shard == shard ? new_state->containers.erase(it)
                                   : std::next(it);
  }
  for (auto it = new_state->delete_vectors.begin();
       it != new_state->delete_vectors.end();) {
    it = it->second.shard == shard ? new_state->delete_vectors.erase(it)
                                   : std::next(it);
  }
  state_ = std::move(new_state);
  return Status::OK();
}

std::string Catalog::SerializeCheckpoint() const {
  std::shared_ptr<const CatalogState> s = snapshot();
  std::string out;
  PutVarint64(&out, s->version);
  {
    std::lock_guard<std::mutex> lock(mu_);
    PutVarint64(&out, next_oid_);
  }
  PutVarint32(&out, s->sharding.num_segment_shards);

  PutVarint64(&out, s->tables.size());
  for (const auto& [oid, t] : s->tables) SerializeTable(t, &out);
  PutVarint64(&out, s->projections.size());
  for (const auto& [oid, p] : s->projections) SerializeProjection(p, &out);
  PutVarint64(&out, s->containers.size());
  for (const auto& [oid, c] : s->containers) SerializeContainer(c, &out);
  PutVarint64(&out, s->delete_vectors.size());
  for (const auto& [oid, d] : s->delete_vectors) {
    SerializeDeleteVectorMeta(d, &out);
  }
  PutVarint64(&out, s->nodes.size());
  for (const auto& [oid, n] : s->nodes) SerializeNode(n, &out);
  PutVarint64(&out, s->subscriptions.size());
  for (const auto& [key, sub] : s->subscriptions) {
    SerializeSubscription(sub, &out);
  }
  PutVarint64(&out, s->mod_versions.size());
  for (const auto& [oid, v] : s->mod_versions) {
    PutVarint64(&out, oid);
    PutVarint64(&out, v);
  }
  PutFixed32(&out, Crc32c(out.data(), out.size()));
  return out;
}

Result<std::unique_ptr<Catalog>> Catalog::Restore(
    Slice checkpoint, const std::vector<TxnLogRecord>& logs,
    uint64_t upto_version, const std::set<ShardId>* shard_filter) {
  if (checkpoint.size() < 4) return Status::Corruption("checkpoint too short");
  Slice body(checkpoint.data(), checkpoint.size() - 4);
  Slice crc_slice(checkpoint.data() + checkpoint.size() - 4, 4);
  uint32_t stored;
  EON_RETURN_IF_ERROR(GetFixed32(&crc_slice, &stored));
  if (Crc32c(body.data(), body.size()) != stored) {
    return Status::Corruption("checkpoint checksum mismatch");
  }

  auto catalog = std::make_unique<Catalog>();
  auto state = std::make_shared<CatalogState>();
  EON_RETURN_IF_ERROR(GetVarint64(&body, &state->version));
  EON_RETURN_IF_ERROR(GetVarint64(&body, &catalog->next_oid_));
  EON_RETURN_IF_ERROR(
      GetVarint32(&body, &state->sharding.num_segment_shards));

  uint64_t n;
  EON_RETURN_IF_ERROR(GetVarint64(&body, &n));
  for (uint64_t i = 0; i < n; ++i) {
    EON_ASSIGN_OR_RETURN(TableDef t, DeserializeTable(&body));
    state->tables[t.oid] = std::move(t);
  }
  EON_RETURN_IF_ERROR(GetVarint64(&body, &n));
  for (uint64_t i = 0; i < n; ++i) {
    EON_ASSIGN_OR_RETURN(ProjectionDef p, DeserializeProjection(&body));
    state->projections[p.oid] = std::move(p);
  }
  EON_RETURN_IF_ERROR(GetVarint64(&body, &n));
  for (uint64_t i = 0; i < n; ++i) {
    EON_ASSIGN_OR_RETURN(StorageContainerMeta c, DeserializeContainer(&body));
    if (shard_filter && !shard_filter->count(c.shard)) continue;
    state->containers[c.oid] = std::move(c);
  }
  EON_RETURN_IF_ERROR(GetVarint64(&body, &n));
  for (uint64_t i = 0; i < n; ++i) {
    EON_ASSIGN_OR_RETURN(DeleteVectorMeta d, DeserializeDeleteVectorMeta(&body));
    if (shard_filter && !shard_filter->count(d.shard)) continue;
    state->delete_vectors[d.oid] = std::move(d);
  }
  EON_RETURN_IF_ERROR(GetVarint64(&body, &n));
  for (uint64_t i = 0; i < n; ++i) {
    EON_ASSIGN_OR_RETURN(NodeDef nd, DeserializeNode(&body));
    state->nodes[nd.oid] = std::move(nd);
  }
  EON_RETURN_IF_ERROR(GetVarint64(&body, &n));
  for (uint64_t i = 0; i < n; ++i) {
    EON_ASSIGN_OR_RETURN(Subscription sub, DeserializeSubscription(&body));
    state->subscriptions[{sub.node_oid, sub.shard}] = sub;
  }
  EON_RETURN_IF_ERROR(GetVarint64(&body, &n));
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t oid, ver;
    EON_RETURN_IF_ERROR(GetVarint64(&body, &oid));
    EON_RETURN_IF_ERROR(GetVarint64(&body, &ver));
    state->mod_versions[oid] = ver;
  }

  if (state->version > upto_version) {
    return Status::InvalidArgument("checkpoint is newer than target version");
  }
  catalog->state_ = std::move(state);

  // Replay subsequent logs in version order up to the target.
  std::vector<TxnLogRecord> sorted = logs;
  std::sort(sorted.begin(), sorted.end(),
            [](const TxnLogRecord& a, const TxnLogRecord& b) {
              return a.version < b.version;
            });
  for (const TxnLogRecord& rec : sorted) {
    if (rec.version <= catalog->version()) continue;
    if (rec.version > upto_version) break;
    EON_RETURN_IF_ERROR(catalog->Apply(rec, shard_filter));
  }
  if (catalog->version() != upto_version) {
    return Status::NotFound("missing log records to reach version " +
                            std::to_string(upto_version) + " (have " +
                            std::to_string(catalog->version()) + ")");
  }
  return catalog;
}

}  // namespace eon
