file(REMOVE_RECURSE
  "CMakeFiles/eon_catalog.dir/catalog.cc.o"
  "CMakeFiles/eon_catalog.dir/catalog.cc.o.d"
  "CMakeFiles/eon_catalog.dir/objects.cc.o"
  "CMakeFiles/eon_catalog.dir/objects.cc.o.d"
  "CMakeFiles/eon_catalog.dir/sync.cc.o"
  "CMakeFiles/eon_catalog.dir/sync.cc.o.d"
  "libeon_catalog.a"
  "libeon_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eon_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
