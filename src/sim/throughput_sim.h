#ifndef EON_SIM_THROUGHPUT_SIM_H_
#define EON_SIM_THROUGHPUT_SIM_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace eon {

/// Closed-loop discrete-event simulator of the paper's execution-slot
/// model (Section 4.2): a database with S shards, N nodes and E execution
/// slots per node runs a query on S of the N·E slots — one slot on each
/// node the session's participation assigns a shard to. If S < E, adding
/// individual nodes yields linear throughput scale-out; Enterprise mode is
/// the degenerate S == N configuration where every query touches every
/// node.
///
/// Used to regenerate Figures 11a, 11b and 12.
class ThroughputSim {
 public:
  struct Options {
    int num_nodes = 3;
    int num_shards = 3;
    int slots_per_node = 4;
    int k_safety = 2;  ///< Subscribers per shard (ring layout).
    /// Closed-loop clients, each issuing queries back to back (simulated
    /// sessions, not OS threads).
    int clients = 10;
    /// Slot hold time per query (the short dashboard query ~100 ms).
    int64_t service_micros = 100000;
    /// Client think time between a completion and the next issue (result
    /// processing / file preparation on the client side). Keeps low
    /// thread counts below saturation, as in the paper's curves.
    int64_t think_micros = 0;
    int64_t duration_micros = 60LL * 1000 * 1000;
    /// Enterprise mode: fixed region→node map; a down node's regions land
    /// on its ring buddy, concentrating double load there (Section 6.1).
    bool enterprise = false;
    /// Node-kill / node-restart events: (time, node index).
    std::vector<std::pair<int64_t, int>> kill_events;
    std::vector<std::pair<int64_t, int>> restart_events;
    /// After a kill, shards the dead node served are unavailable for this
    /// long (failure detection + participation re-selection).
    int64_t failover_blackout_micros = 0;
    /// Throughput series bucket width (Figure 12 samples every 4 min).
    int64_t bucket_micros = 4LL * 60 * 1000 * 1000;
    uint64_t seed = 1;
    /// Value of the `run` label on the sim's registry instruments
    /// (completed counter + queue-to-completion latency histogram); empty
    /// disables registry recording entirely (pure-computation runs).
    std::string metrics_name;
    /// Registry to record into when metrics_name is set; null = default.
    obs::MetricsRegistry* registry = nullptr;
  };

  struct RunResult {
    uint64_t completed = 0;
    double per_minute = 0;
    /// (bucket start micros, queries completed in bucket).
    std::vector<std::pair<int64_t, uint64_t>> buckets;
  };

  static RunResult Run(const Options& options);
};

}  // namespace eon

#endif  // EON_SIM_THROUGHPUT_SIM_H_
