#include "obs/metrics.h"

#include <algorithm>

namespace eon {
namespace obs {

LabelSet::LabelSet(
    std::initializer_list<std::pair<std::string, std::string>> labels)
    : pairs_(labels) {
  Canonicalize();
}

LabelSet::LabelSet(std::vector<std::pair<std::string, std::string>> labels)
    : pairs_(std::move(labels)) {
  Canonicalize();
}

void LabelSet::Canonicalize() {
  std::stable_sort(pairs_.begin(), pairs_.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  // Duplicate keys: last writer wins (keep the final occurrence).
  for (size_t i = pairs_.size(); i > 1; --i) {
    if (pairs_[i - 1].first == pairs_[i - 2].first) {
      pairs_[i - 2].second = pairs_[i - 1].second;
      pairs_.erase(pairs_.begin() + static_cast<ptrdiff_t>(i) - 1);
    }
  }
  key_.clear();
  for (const auto& [k, v] : pairs_) {
    if (!key_.empty()) key_ += ',';
    key_ += k;
    key_ += '=';
    key_ += v;
  }
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0;
  q = std::min(1.0, std::max(0.0, q));
  const double rank = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    cumulative += counts[i];
    if (static_cast<double>(cumulative) >= rank && counts[i] > 0) {
      if (i >= bounds.size()) {
        // Overflow bucket: clamp to the highest finite bound.
        return bounds.empty() ? 0 : bounds.back();
      }
      const double hi = bounds[i];
      const double lo = i == 0 ? 0 : bounds[i - 1];
      const uint64_t below = cumulative - counts[i];
      const double frac =
          (rank - static_cast<double>(below)) / static_cast<double>(counts[i]);
      return lo + (hi - lo) * std::min(1.0, std::max(0.0, frac));
    }
  }
  return bounds.empty() ? 0 : bounds.back();
}

const std::vector<double>& Histogram::DefaultMicrosBounds() {
  static const std::vector<double> kBounds = {
      100,    250,    500,     1000,    2500,    5000,    10000,
      25000,  50000,  100000,  250000,  500000,  1000000, 2500000,
      5000000, 10000000};
  return kBounds;
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  if (bounds_.empty()) bounds_ = DefaultMicrosBounds();
  counts_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) counts_[i] = 0;
}

void Histogram::Observe(double value) {
  const size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // C++20 atomic<double>::fetch_add.
  sum_.fetch_add(value, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot s;
  s.bounds = bounds_;
  s.counts.resize(bounds_.size() + 1);
  uint64_t total = 0;
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    s.counts[i] = counts_[i].load(std::memory_order_relaxed);
    total += s.counts[i];
  }
  s.count = total;
  s.sum = sum_.load(std::memory_order_relaxed);
  return s;
}

const MetricSample* MetricsSnapshot::Find(const std::string& name,
                                          const LabelSet& labels) const {
  for (const MetricSample& s : samples) {
    if (s.name == name && s.labels == labels) return &s;
  }
  return nullptr;
}

double MetricsSnapshot::Value(const std::string& name,
                              const LabelSet& labels) const {
  const MetricSample* s = Find(name, labels);
  return s == nullptr ? 0 : s->value;
}

double MetricsSnapshot::SumAcrossLabels(const std::string& name) const {
  double sum = 0;
  for (const MetricSample& s : samples) {
    if (s.name == name && s.kind != MetricSample::Kind::kHistogram) {
      sum += s.value;
    }
  }
  return sum;
}

MetricsSnapshot MetricsSnapshot::Delta(const MetricsSnapshot& base) const {
  MetricsSnapshot out;
  for (const MetricSample& s : samples) {
    const MetricSample* b = base.Find(s.name, s.labels);
    MetricSample d = s;
    if (b != nullptr) {
      if (s.kind == MetricSample::Kind::kHistogram) {
        d.histogram.sum -= b->histogram.sum;
        d.histogram.count -= std::min(b->histogram.count, d.histogram.count);
        for (size_t i = 0; i < d.histogram.counts.size() &&
                           i < b->histogram.counts.size();
             ++i) {
          d.histogram.counts[i] -=
              std::min(b->histogram.counts[i], d.histogram.counts[i]);
        }
      } else {
        d.value -= b->value;
      }
    }
    out.samples.push_back(std::move(d));
  }
  return out;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const LabelSet& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family& fam = families_[name];
  auto it = fam.counters.find(labels.Key());
  if (it == fam.counters.end()) {
    it = fam.counters.emplace(labels.Key(), std::make_unique<Counter>())
             .first;
    fam.labels.emplace(labels.Key(), labels);
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const LabelSet& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family& fam = families_[name];
  auto it = fam.gauges.find(labels.Key());
  if (it == fam.gauges.end()) {
    it = fam.gauges.emplace(labels.Key(), std::make_unique<Gauge>()).first;
    fam.labels.emplace(labels.Key(), labels);
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const LabelSet& labels,
                                         const std::vector<double>& bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  Family& fam = families_[name];
  auto it = fam.histograms.find(labels.Key());
  if (it == fam.histograms.end()) {
    it = fam.histograms
             .emplace(labels.Key(),
                      std::unique_ptr<Histogram>(new Histogram(bounds)))
             .first;
    fam.labels.emplace(labels.Key(), labels);
  }
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, fam] : families_) {
    for (const auto& [key, counter] : fam.counters) {
      MetricSample s;
      s.name = name;
      s.labels = fam.labels.at(key);
      s.kind = MetricSample::Kind::kCounter;
      s.value = static_cast<double>(counter->Value());
      snap.samples.push_back(std::move(s));
    }
    for (const auto& [key, gauge] : fam.gauges) {
      MetricSample s;
      s.name = name;
      s.labels = fam.labels.at(key);
      s.kind = MetricSample::Kind::kGauge;
      s.value = static_cast<double>(gauge->Value());
      snap.samples.push_back(std::move(s));
    }
    for (const auto& [key, hist] : fam.histograms) {
      MetricSample s;
      s.name = name;
      s.labels = fam.labels.at(key);
      s.kind = MetricSample::Kind::kHistogram;
      s.histogram = hist->Snapshot();
      s.value = s.histogram.sum;
      snap.samples.push_back(std::move(s));
    }
  }
  return snap;
}

void MetricsRegistry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, fam] : families_) {
    for (auto& [key, counter] : fam.counters) counter->value_.store(0);
    for (auto& [key, gauge] : fam.gauges) gauge->value_.store(0);
    for (auto& [key, hist] : fam.histograms) {
      for (size_t i = 0; i <= hist->bounds_.size(); ++i) {
        hist->counts_[i].store(0);
      }
      hist->count_.store(0);
      hist->sum_.store(0);
    }
  }
}

MetricsRegistry* MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return registry;
}

}  // namespace obs
}  // namespace eon
