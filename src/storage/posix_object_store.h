#ifndef EON_STORAGE_POSIX_OBJECT_STORE_H_
#define EON_STORAGE_POSIX_OBJECT_STORE_H_

#include <memory>
#include <string>
#include <vector>

#include "storage/object_store.h"

namespace eon {

/// ObjectStore over a local directory tree (the UDFS "POSIX" backend).
/// Keys map to files under `root`; a two-level hash-prefix fan-out directory
/// scheme avoids overloading the filesystem with too many files in one
/// directory and avoids hotspotting on recent keys (paper Sections 5.1/5.3).
///
/// Examples can point `root` at a MinIO/S3 FUSE mount to run against real
/// shared storage.
class PosixObjectStore : public ObjectStore {
 public:
  /// Creates `root` (and fan-out directories lazily) if missing.
  explicit PosixObjectStore(std::string root);
  ~PosixObjectStore() override;

  Status Put(const std::string& key, const std::string& data) override;
  Result<std::string> Get(const std::string& key) override;
  Result<std::string> ReadRange(const std::string& key, uint64_t offset,
                                uint64_t len) override;
  Result<std::vector<ObjectMeta>> List(const std::string& prefix) override;
  Status Delete(const std::string& key) override;
  /// Near-data scan over the backing files (reads are local disk I/O, not
  /// metered as bytes_read; only the response payload is).
  Status ScanObject(const ScanObjectRequest& request,
                    ScanObjectResponse* response) override;
  ObjectStoreMetrics metrics() const override;
  void ResetForTest() override;

  const std::string& root() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace eon

#endif  // EON_STORAGE_POSIX_OBJECT_STORE_H_
