#ifndef EON_COMMON_CLOCK_H_
#define EON_COMMON_CLOCK_H_

#include <atomic>
#include <cstdint>
#include <memory>

namespace eon {

/// Time source abstraction. The whole cluster simulation runs against a
/// Clock so experiments can use simulated time (deterministic, free to
/// advance) while examples may use wall time.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current time in microseconds since an arbitrary epoch.
  virtual int64_t NowMicros() const = 0;

  /// Advance time by `micros`. Wall clocks sleep; sim clocks jump.
  virtual void AdvanceMicros(int64_t micros) = 0;

  int64_t NowMillis() const { return NowMicros() / 1000; }
};

/// Simulated clock: starts at 0, moves only when advanced. Thread-safe:
/// parallel scan morsels charge simulated I/O time concurrently, so the
/// counter is atomic (advances still sum; only their interleaving is
/// scheduling-dependent).
class SimClock : public Clock {
 public:
  SimClock() = default;

  int64_t NowMicros() const override {
    return now_.load(std::memory_order_relaxed);
  }
  void AdvanceMicros(int64_t micros) override {
    now_.fetch_add(micros, std::memory_order_relaxed);
  }

  /// Jump directly to an absolute time. Precondition: t >= NowMicros().
  void SetMicros(int64_t t) { now_.store(t, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> now_{0};
};

/// Real wall-clock time (steady). AdvanceMicros sleeps.
class WallClock : public Clock {
 public:
  int64_t NowMicros() const override;
  void AdvanceMicros(int64_t micros) override;
};

}  // namespace eon

#endif  // EON_COMMON_CLOCK_H_
