file(REMOVE_RECURSE
  "CMakeFiles/eon_sim.dir/throughput_sim.cc.o"
  "CMakeFiles/eon_sim.dir/throughput_sim.cc.o.d"
  "libeon_sim.a"
  "libeon_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eon_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
