// Runtime-dispatched SIMD variants of the scan kernels. Every kernel has a
// scalar reference in kernels_scalar.cc; the dispatcher picks the widest
// ISA the CPU supports (cpuid on x86-64, NEON on aarch64) and falls back
// per kernel when a variant does not exist for that ISA:
//
//   kernel            scalar  sse4.2  avx2  neon
//   CompareInt64        x       x      x     x
//   SelAnd/Or/Not       x       x      x     x
//   SelCount            x       x      x     .
//   SelCompact          x       .      .     .   (branchless scalar)
//   SegHashInt64        x       .      x     .   (needs 64x64 multiply)
//   FoldInt64           x       .      x     .
//   FoldInt64Indexed    x       .      x     .   (i32gather)
//
// All variants are bit-identical to the scalar reference by construction:
// compares emit the same 0/1 bytes, SUM accumulates mod 2^64 (wraparound
// addition commutes), and COUNT/MIN/MAX are order-independent.

#include "columnar/kernels.h"

#include <atomic>
#include <cstring>

#include "columnar/expression.h"
#include "common/hash.h"

#if defined(__x86_64__) || defined(_M_X64)
#define EON_KERNELS_X86 1
#include <immintrin.h>
#elif defined(__aarch64__)
#define EON_KERNELS_NEON 1
#include <arm_neon.h>
#endif

namespace eon {
namespace simd {

namespace {

std::atomic<bool> g_force_scalar{false};

Isa DetectIsa() {
#if defined(EON_SIMD_DISABLED)
  return Isa::kScalar;
#elif defined(EON_KERNELS_X86)
  if (__builtin_cpu_supports("avx2")) return Isa::kAvx2;
  if (__builtin_cpu_supports("sse4.2")) return Isa::kSse42;
  return Isa::kScalar;
#elif defined(EON_KERNELS_NEON)
  return Isa::kNeon;
#else
  return Isa::kScalar;
#endif
}

inline bool ValidBit(const uint64_t* validity, size_t i) {
  return validity == nullptr || ((validity[i >> 6] >> (i & 63)) & 1) != 0;
}

/// Validity bits for rows [i, i+4), i % 4 == 0 so the nibble never spans a
/// word boundary.
inline uint32_t ValidNibble(const uint64_t* validity, size_t i) {
  return static_cast<uint32_t>((validity[i >> 6] >> (i & 63)) & 0xF);
}

/// 4-lane verdict nibble -> four 0/1 bytes, little-endian.
constexpr uint32_t kNibbleBytes[16] = {
    0x00000000u, 0x00000001u, 0x00000100u, 0x00000101u,
    0x00010000u, 0x00010001u, 0x00010100u, 0x00010101u,
    0x01000000u, 0x01000001u, 0x01000100u, 0x01000101u,
    0x01010000u, 0x01010001u, 0x01010100u, 0x01010101u,
};

}  // namespace

const char* IsaName(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kSse42:
      return "sse4.2";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kNeon:
      return "neon";
  }
  return "unknown";
}

Isa ActiveIsa() {
  if (g_force_scalar.load(std::memory_order_relaxed)) return Isa::kScalar;
  static const Isa isa = DetectIsa();
  return isa;
}

void ForceScalarForTest(bool force) {
  g_force_scalar.store(force, std::memory_order_relaxed);
}

#if defined(EON_KERNELS_X86)

namespace {

__attribute__((target("avx2"))) void CompareInt64Avx2(
    const int64_t* v, size_t n, CmpOp op, int64_t literal,
    const uint64_t* validity, uint8_t* sel) {
  const __m256i lit = _mm256_set1_epi64x(literal);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    __m256i m;
    bool invert = false;
    switch (op) {
      case CmpOp::kEq:
        m = _mm256_cmpeq_epi64(x, lit);
        break;
      case CmpOp::kNe:
        m = _mm256_cmpeq_epi64(x, lit);
        invert = true;
        break;
      case CmpOp::kLt:
        m = _mm256_cmpgt_epi64(lit, x);
        break;
      case CmpOp::kGe:
        m = _mm256_cmpgt_epi64(lit, x);
        invert = true;
        break;
      case CmpOp::kGt:
        m = _mm256_cmpgt_epi64(x, lit);
        break;
      case CmpOp::kLe:
        m = _mm256_cmpgt_epi64(x, lit);
        invert = true;
        break;
      default:
        m = _mm256_setzero_si256();
        break;
    }
    uint32_t bits =
        static_cast<uint32_t>(_mm256_movemask_pd(_mm256_castsi256_pd(m)));
    if (invert) bits ^= 0xF;
    if (validity != nullptr) bits &= ValidNibble(validity, i);
    std::memcpy(sel + i, &kNibbleBytes[bits], 4);
  }
  for (; i < n; ++i) {
    detail::CompareInt64Scalar(v + i, 1, op, literal, nullptr, sel + i);
    if (!ValidBit(validity, i)) sel[i] = 0;
  }
}

__attribute__((target("sse4.2"))) void CompareInt64Sse42(
    const int64_t* v, size_t n, CmpOp op, int64_t literal,
    const uint64_t* validity, uint8_t* sel) {
  const __m128i lit = _mm_set1_epi64x(literal);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i x = _mm_loadu_si128(reinterpret_cast<const __m128i*>(v + i));
    __m128i m;
    bool invert = false;
    switch (op) {
      case CmpOp::kEq:
        m = _mm_cmpeq_epi64(x, lit);
        break;
      case CmpOp::kNe:
        m = _mm_cmpeq_epi64(x, lit);
        invert = true;
        break;
      case CmpOp::kLt:
        m = _mm_cmpgt_epi64(lit, x);
        break;
      case CmpOp::kGe:
        m = _mm_cmpgt_epi64(lit, x);
        invert = true;
        break;
      case CmpOp::kGt:
        m = _mm_cmpgt_epi64(x, lit);
        break;
      case CmpOp::kLe:
        m = _mm_cmpgt_epi64(x, lit);
        invert = true;
        break;
      default:
        m = _mm_setzero_si128();
        break;
    }
    uint32_t bits =
        static_cast<uint32_t>(_mm_movemask_pd(_mm_castsi128_pd(m)));
    if (invert) bits ^= 0x3;
    if (validity != nullptr) {
      bits &= static_cast<uint32_t>((validity[i >> 6] >> (i & 63)) & 0x3);
    }
    sel[i] = bits & 1;
    sel[i + 1] = (bits >> 1) & 1;
  }
  for (; i < n; ++i) {
    detail::CompareInt64Scalar(v + i, 1, op, literal, nullptr, sel + i);
    if (!ValidBit(validity, i)) sel[i] = 0;
  }
}

__attribute__((target("avx2"))) void SelAndAvx2(uint8_t* dst,
                                                const uint8_t* src, size_t n) {
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_and_si256(a, b));
  }
  for (; i < n; ++i) dst[i] &= src[i];
}

__attribute__((target("avx2"))) void SelOrAvx2(uint8_t* dst,
                                               const uint8_t* src, size_t n) {
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_or_si256(a, b));
  }
  for (; i < n; ++i) dst[i] |= src[i];
}

__attribute__((target("avx2"))) void SelNotAvx2(uint8_t* sel, size_t n) {
  const __m256i one = _mm256_set1_epi8(1);
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(sel + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(sel + i),
                        _mm256_xor_si256(a, one));
  }
  for (; i < n; ++i) sel[i] ^= 1;
}

__attribute__((target("avx2"))) uint64_t SelCountAvx2(const uint8_t* sel,
                                                      size_t n) {
  const __m256i zero = _mm256_setzero_si256();
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(sel + i));
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(a, zero));
  }
  uint64_t count = static_cast<uint64_t>(_mm256_extract_epi64(acc, 0)) +
                   static_cast<uint64_t>(_mm256_extract_epi64(acc, 1)) +
                   static_cast<uint64_t>(_mm256_extract_epi64(acc, 2)) +
                   static_cast<uint64_t>(_mm256_extract_epi64(acc, 3));
  for (; i < n; ++i) count += sel[i];
  return count;
}

void SelAndSse2(uint8_t* dst, const uint8_t* src, size_t n) {
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i a = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    const __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), _mm_and_si128(a, b));
  }
  for (; i < n; ++i) dst[i] &= src[i];
}

void SelOrSse2(uint8_t* dst, const uint8_t* src, size_t n) {
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i a = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    const __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), _mm_or_si128(a, b));
  }
  for (; i < n; ++i) dst[i] |= src[i];
}

void SelNotSse2(uint8_t* sel, size_t n) {
  const __m128i one = _mm_set1_epi8(1);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i a = _mm_loadu_si128(reinterpret_cast<const __m128i*>(sel + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(sel + i), _mm_xor_si128(a, one));
  }
  for (; i < n; ++i) sel[i] ^= 1;
}

uint64_t SelCountSse2(const uint8_t* sel, size_t n) {
  const __m128i zero = _mm_setzero_si128();
  __m128i acc = _mm_setzero_si128();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i a = _mm_loadu_si128(reinterpret_cast<const __m128i*>(sel + i));
    acc = _mm_add_epi64(acc, _mm_sad_epu8(a, zero));
  }
  uint64_t count = static_cast<uint64_t>(_mm_cvtsi128_si64(acc)) +
                   static_cast<uint64_t>(
                       _mm_cvtsi128_si64(_mm_unpackhi_epi64(acc, acc)));
  for (; i < n; ++i) count += sel[i];
  return count;
}

/// Full 64x64->64 multiply from 32-bit lane products (AVX2 has no
/// _mm256_mullo_epi64): lo + ((hi_lo_cross) << 32), correct mod 2^64 —
/// exactly what Mix64's wrapping multiplies need.
__attribute__((target("avx2"))) inline __m256i Mul64Avx2(__m256i a,
                                                         __m256i b) {
  const __m256i lo = _mm256_mul_epu32(a, b);
  const __m256i ah = _mm256_srli_epi64(a, 32);
  const __m256i bh = _mm256_srli_epi64(b, 32);
  const __m256i mid =
      _mm256_add_epi64(_mm256_mul_epu32(ah, b), _mm256_mul_epu32(a, bh));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(mid, 32));
}

// xxhash-style avalanche constants; must match Mix64 in common/hash.cc.
constexpr uint64_t kMixPrime2 = 0xC2B2AE3D27D4EB4FULL;
constexpr uint64_t kMixPrime3 = 0x165667B19E3779F9ULL;

__attribute__((target("avx2"))) void SegHashInt64Avx2(
    const int64_t* v, size_t n, const uint64_t* validity, uint32_t* out) {
  const __m256i seed = _mm256_set1_epi64x(0x5e47);
  const __m256i p2 = _mm256_set1_epi64x(static_cast<int64_t>(kMixPrime2));
  const __m256i p3 = _mm256_set1_epi64x(static_cast<int64_t>(kMixPrime3));
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i x = _mm256_add_epi64(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i)), seed);
    x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 33));
    x = Mul64Avx2(x, p2);
    x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 29));
    x = Mul64Avx2(x, p3);
    x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 32));
    const __m256i h = _mm256_srli_epi64(x, 32);
    out[i] = static_cast<uint32_t>(_mm256_extract_epi64(h, 0));
    out[i + 1] = static_cast<uint32_t>(_mm256_extract_epi64(h, 1));
    out[i + 2] = static_cast<uint32_t>(_mm256_extract_epi64(h, 2));
    out[i + 3] = static_cast<uint32_t>(_mm256_extract_epi64(h, 3));
    if (validity != nullptr) {
      const uint32_t bits = ValidNibble(validity, i);
      if (bits != 0xF) {
        for (size_t j = 0; j < 4; ++j) {
          if (((bits >> j) & 1) == 0) out[i + j] = kNullSegHash;
        }
      }
    }
  }
  for (; i < n; ++i) {
    out[i] = ValidBit(validity, i) ? SegmentationHashInt(v[i]) : kNullSegHash;
  }
}

alignas(32) constexpr uint64_t kNibbleLaneMask[16][4] = {
    {0, 0, 0, 0},
    {~0ull, 0, 0, 0},
    {0, ~0ull, 0, 0},
    {~0ull, ~0ull, 0, 0},
    {0, 0, ~0ull, 0},
    {~0ull, 0, ~0ull, 0},
    {0, ~0ull, ~0ull, 0},
    {~0ull, ~0ull, ~0ull, 0},
    {0, 0, 0, ~0ull},
    {~0ull, 0, 0, ~0ull},
    {0, ~0ull, 0, ~0ull},
    {~0ull, ~0ull, 0, ~0ull},
    {0, 0, ~0ull, ~0ull},
    {~0ull, 0, ~0ull, ~0ull},
    {0, ~0ull, ~0ull, ~0ull},
    {~0ull, ~0ull, ~0ull, ~0ull},
};

__attribute__((target("avx2"))) Int64Fold FoldInt64MaskedAvx2(
    const int64_t* v, size_t n, const uint64_t* validity, const uint8_t* sel) {
  __m256i sum = _mm256_setzero_si256();
  __m256i mn = _mm256_set1_epi64x(INT64_MAX);
  __m256i mx = _mm256_set1_epi64x(INT64_MIN);
  const __m256i neutral_min = mn;
  const __m256i neutral_max = mx;
  uint64_t count = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    uint32_t bits = 0xF;
    if (validity != nullptr) bits &= ValidNibble(validity, i);
    if (sel != nullptr) {
      bits &= static_cast<uint32_t>((sel[i] & 1) | ((sel[i + 1] & 1) << 1) |
                                    ((sel[i + 2] & 1) << 2) |
                                    ((sel[i + 3] & 1) << 3));
    }
    if (bits == 0) continue;
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    const __m256i m = _mm256_load_si256(
        reinterpret_cast<const __m256i*>(kNibbleLaneMask[bits]));
    count += static_cast<uint64_t>(__builtin_popcount(bits));
    sum = _mm256_add_epi64(sum, _mm256_and_si256(x, m));
    const __m256i xmin = _mm256_blendv_epi8(neutral_min, x, m);
    mn = _mm256_blendv_epi8(mn, xmin, _mm256_cmpgt_epi64(mn, xmin));
    const __m256i xmax = _mm256_blendv_epi8(neutral_max, x, m);
    mx = _mm256_blendv_epi8(mx, xmax, _mm256_cmpgt_epi64(xmax, mx));
  }
  Int64Fold f;
  f.count = count;
  f.sum = static_cast<uint64_t>(_mm256_extract_epi64(sum, 0)) +
          static_cast<uint64_t>(_mm256_extract_epi64(sum, 1)) +
          static_cast<uint64_t>(_mm256_extract_epi64(sum, 2)) +
          static_cast<uint64_t>(_mm256_extract_epi64(sum, 3));
  for (int lane = 0; lane < 4; ++lane) {
    int64_t lo;
    int64_t hi;
    switch (lane) {
      case 0:
        lo = _mm256_extract_epi64(mn, 0);
        hi = _mm256_extract_epi64(mx, 0);
        break;
      case 1:
        lo = _mm256_extract_epi64(mn, 1);
        hi = _mm256_extract_epi64(mx, 1);
        break;
      case 2:
        lo = _mm256_extract_epi64(mn, 2);
        hi = _mm256_extract_epi64(mx, 2);
        break;
      default:
        lo = _mm256_extract_epi64(mn, 3);
        hi = _mm256_extract_epi64(mx, 3);
        break;
    }
    if (lo < f.min) f.min = lo;
    if (hi > f.max) f.max = hi;
  }
  for (size_t r = i; r < n; ++r) {
    if (!ValidBit(validity, r)) continue;
    if (sel != nullptr && sel[r] == 0) continue;
    ++f.count;
    f.sum += static_cast<uint64_t>(v[r]);
    if (v[r] < f.min) f.min = v[r];
    if (v[r] > f.max) f.max = v[r];
  }
  return f;
}

__attribute__((target("avx2"))) Int64Fold FoldInt64IndexedAvx2(
    const int64_t* v, const uint64_t* validity, const uint32_t* idx,
    size_t nidx) {
  __m256i sum = _mm256_setzero_si256();
  __m256i mn = _mm256_set1_epi64x(INT64_MAX);
  __m256i mx = _mm256_set1_epi64x(INT64_MIN);
  const __m256i neutral_min = mn;
  const __m256i neutral_max = mx;
  uint64_t count = 0;
  size_t i = 0;
  for (; i + 4 <= nidx; i += 4) {
    uint32_t bits = 0xF;
    if (validity != nullptr) {
      bits = 0;
      for (size_t j = 0; j < 4; ++j) {
        const size_t r = idx[i + j];
        bits |= static_cast<uint32_t>((validity[r >> 6] >> (r & 63)) & 1) << j;
      }
      if (bits == 0) continue;
    }
    const __m128i id =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + i));
    const __m256i x =
        _mm256_i32gather_epi64(reinterpret_cast<const long long*>(v), id, 8);
    const __m256i m = _mm256_load_si256(
        reinterpret_cast<const __m256i*>(kNibbleLaneMask[bits]));
    count += static_cast<uint64_t>(__builtin_popcount(bits));
    sum = _mm256_add_epi64(sum, _mm256_and_si256(x, m));
    const __m256i xmin = _mm256_blendv_epi8(neutral_min, x, m);
    mn = _mm256_blendv_epi8(mn, xmin, _mm256_cmpgt_epi64(mn, xmin));
    const __m256i xmax = _mm256_blendv_epi8(neutral_max, x, m);
    mx = _mm256_blendv_epi8(mx, xmax, _mm256_cmpgt_epi64(xmax, mx));
  }
  Int64Fold f;
  f.count = count;
  f.sum = static_cast<uint64_t>(_mm256_extract_epi64(sum, 0)) +
          static_cast<uint64_t>(_mm256_extract_epi64(sum, 1)) +
          static_cast<uint64_t>(_mm256_extract_epi64(sum, 2)) +
          static_cast<uint64_t>(_mm256_extract_epi64(sum, 3));
  const int64_t mins[4] = {_mm256_extract_epi64(mn, 0),
                           _mm256_extract_epi64(mn, 1),
                           _mm256_extract_epi64(mn, 2),
                           _mm256_extract_epi64(mn, 3)};
  const int64_t maxs[4] = {_mm256_extract_epi64(mx, 0),
                           _mm256_extract_epi64(mx, 1),
                           _mm256_extract_epi64(mx, 2),
                           _mm256_extract_epi64(mx, 3)};
  for (int lane = 0; lane < 4; ++lane) {
    if (mins[lane] < f.min) f.min = mins[lane];
    if (maxs[lane] > f.max) f.max = maxs[lane];
  }
  const Int64Fold tail =
      detail::FoldInt64IndexedScalar(v, validity, idx + i, nidx - i);
  f.count += tail.count;
  f.sum += tail.sum;
  if (tail.min < f.min) f.min = tail.min;
  if (tail.max > f.max) f.max = tail.max;
  return f;
}

}  // namespace

#elif defined(EON_KERNELS_NEON)

namespace {

void CompareInt64Neon(const int64_t* v, size_t n, CmpOp op, int64_t literal,
                      const uint64_t* validity, uint8_t* sel) {
  const int64x2_t lit = vdupq_n_s64(literal);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const int64x2_t x = vld1q_s64(v + i);
    uint64x2_t m;
    bool invert = false;
    switch (op) {
      case CmpOp::kEq:
        m = vceqq_s64(x, lit);
        break;
      case CmpOp::kNe:
        m = vceqq_s64(x, lit);
        invert = true;
        break;
      case CmpOp::kLt:
        m = vcltq_s64(x, lit);
        break;
      case CmpOp::kGe:
        m = vcltq_s64(x, lit);
        invert = true;
        break;
      case CmpOp::kGt:
        m = vcgtq_s64(x, lit);
        break;
      case CmpOp::kLe:
        m = vcgtq_s64(x, lit);
        invert = true;
        break;
      default:
        m = vdupq_n_u64(0);
        break;
    }
    uint32_t bits = static_cast<uint32_t>(vgetq_lane_u64(m, 0) & 1) |
                    (static_cast<uint32_t>(vgetq_lane_u64(m, 1) & 1) << 1);
    if (invert) bits ^= 0x3;
    if (validity != nullptr) {
      bits &= static_cast<uint32_t>((validity[i >> 6] >> (i & 63)) & 0x3);
    }
    sel[i] = bits & 1;
    sel[i + 1] = (bits >> 1) & 1;
  }
  for (; i < n; ++i) {
    detail::CompareInt64Scalar(v + i, 1, op, literal, nullptr, sel + i);
    if (!ValidBit(validity, i)) sel[i] = 0;
  }
}

void SelAndNeon(uint8_t* dst, const uint8_t* src, size_t n) {
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    vst1q_u8(dst + i, vandq_u8(vld1q_u8(dst + i), vld1q_u8(src + i)));
  }
  for (; i < n; ++i) dst[i] &= src[i];
}

void SelOrNeon(uint8_t* dst, const uint8_t* src, size_t n) {
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    vst1q_u8(dst + i, vorrq_u8(vld1q_u8(dst + i), vld1q_u8(src + i)));
  }
  for (; i < n; ++i) dst[i] |= src[i];
}

void SelNotNeon(uint8_t* sel, size_t n) {
  const uint8x16_t one = vdupq_n_u8(1);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    vst1q_u8(sel + i, veorq_u8(vld1q_u8(sel + i), one));
  }
  for (; i < n; ++i) sel[i] ^= 1;
}

}  // namespace

#endif  // EON_KERNELS_X86 / EON_KERNELS_NEON

void CompareInt64(const int64_t* v, size_t n, CmpOp op, int64_t literal,
                  const uint64_t* validity, uint8_t* sel) {
  switch (ActiveIsa()) {
#if defined(EON_KERNELS_X86)
    case Isa::kAvx2:
      CompareInt64Avx2(v, n, op, literal, validity, sel);
      return;
    case Isa::kSse42:
      CompareInt64Sse42(v, n, op, literal, validity, sel);
      return;
#elif defined(EON_KERNELS_NEON)
    case Isa::kNeon:
      CompareInt64Neon(v, n, op, literal, validity, sel);
      return;
#endif
    default:
      detail::CompareInt64Scalar(v, n, op, literal, validity, sel);
      return;
  }
}

void SelAnd(uint8_t* dst, const uint8_t* src, size_t n) {
  switch (ActiveIsa()) {
#if defined(EON_KERNELS_X86)
    case Isa::kAvx2:
      SelAndAvx2(dst, src, n);
      return;
    case Isa::kSse42:
      SelAndSse2(dst, src, n);
      return;
#elif defined(EON_KERNELS_NEON)
    case Isa::kNeon:
      SelAndNeon(dst, src, n);
      return;
#endif
    default:
      detail::SelAndScalar(dst, src, n);
      return;
  }
}

void SelOr(uint8_t* dst, const uint8_t* src, size_t n) {
  switch (ActiveIsa()) {
#if defined(EON_KERNELS_X86)
    case Isa::kAvx2:
      SelOrAvx2(dst, src, n);
      return;
    case Isa::kSse42:
      SelOrSse2(dst, src, n);
      return;
#elif defined(EON_KERNELS_NEON)
    case Isa::kNeon:
      SelOrNeon(dst, src, n);
      return;
#endif
    default:
      detail::SelOrScalar(dst, src, n);
      return;
  }
}

void SelNot(uint8_t* sel, size_t n) {
  switch (ActiveIsa()) {
#if defined(EON_KERNELS_X86)
    case Isa::kAvx2:
      SelNotAvx2(sel, n);
      return;
    case Isa::kSse42:
      SelNotSse2(sel, n);
      return;
#elif defined(EON_KERNELS_NEON)
    case Isa::kNeon:
      SelNotNeon(sel, n);
      return;
#endif
    default:
      detail::SelNotScalar(sel, n);
      return;
  }
}

uint64_t SelCount(const uint8_t* sel, size_t n) {
  switch (ActiveIsa()) {
#if defined(EON_KERNELS_X86)
    case Isa::kAvx2:
      return SelCountAvx2(sel, n);
    case Isa::kSse42:
      return SelCountSse2(sel, n);
#endif
    default:
      return detail::SelCountScalar(sel, n);
  }
}

size_t SelCompact(const uint8_t* sel, size_t n, uint32_t* out) {
  // Branchless scalar on every ISA; the unconditional store + masked
  // cursor advance is already store-port bound.
  return detail::SelCompactScalar(sel, n, out);
}

void SegHashInt64(const int64_t* v, size_t n, const uint64_t* validity,
                  uint32_t* out) {
  switch (ActiveIsa()) {
#if defined(EON_KERNELS_X86)
    case Isa::kAvx2:
      SegHashInt64Avx2(v, n, validity, out);
      return;
#endif
    default:
      detail::SegHashInt64Scalar(v, n, validity, out);
      return;
  }
}

Int64Fold FoldInt64(const int64_t* v, size_t n, const uint64_t* validity,
                    const uint8_t* sel) {
  switch (ActiveIsa()) {
#if defined(EON_KERNELS_X86)
    case Isa::kAvx2:
      return FoldInt64MaskedAvx2(v, n, validity, sel);
#endif
    default:
      return detail::FoldInt64Scalar(v, n, validity, sel);
  }
}

Int64Fold FoldInt64Indexed(const int64_t* v, const uint64_t* validity,
                           const uint32_t* idx, size_t nidx) {
  switch (ActiveIsa()) {
#if defined(EON_KERNELS_X86)
    case Isa::kAvx2:
      return FoldInt64IndexedAvx2(v, validity, idx, nidx);
#endif
    default:
      return detail::FoldInt64IndexedScalar(v, validity, idx, nidx);
  }
}

}  // namespace simd
}  // namespace eon
