file(REMOVE_RECURSE
  "CMakeFiles/eon_common.dir/clock.cc.o"
  "CMakeFiles/eon_common.dir/clock.cc.o.d"
  "CMakeFiles/eon_common.dir/codec.cc.o"
  "CMakeFiles/eon_common.dir/codec.cc.o.d"
  "CMakeFiles/eon_common.dir/hash.cc.o"
  "CMakeFiles/eon_common.dir/hash.cc.o.d"
  "CMakeFiles/eon_common.dir/json.cc.o"
  "CMakeFiles/eon_common.dir/json.cc.o.d"
  "CMakeFiles/eon_common.dir/logging.cc.o"
  "CMakeFiles/eon_common.dir/logging.cc.o.d"
  "CMakeFiles/eon_common.dir/random.cc.o"
  "CMakeFiles/eon_common.dir/random.cc.o.d"
  "CMakeFiles/eon_common.dir/sid.cc.o"
  "CMakeFiles/eon_common.dir/sid.cc.o.d"
  "CMakeFiles/eon_common.dir/status.cc.o"
  "CMakeFiles/eon_common.dir/status.cc.o.d"
  "libeon_common.a"
  "libeon_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eon_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
