#ifndef EON_CACHE_FILE_CACHE_H_
#define EON_CACHE_FILE_CACHE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "columnar/ros.h"
#include "obs/dc.h"
#include "obs/metrics.h"
#include "storage/object_store.h"

namespace eon {

class IoPool;

/// Shaping policies (Section 5.2): users can keep large batch scans from
/// evicting files that low-latency dashboards depend on.
enum class CachePolicy : uint8_t {
  kDefault = 0,    ///< Normal LRU residency.
  kPin = 1,        ///< Evicted only when nothing unpinned remains.
  kNeverCache = 2, ///< Pass through to shared storage; never inserted.
};

struct CacheOptions {
  uint64_t capacity_bytes = 1ULL << 30;
  /// Newly loaded files are likely to be queried: insert on write
  /// (Section 5.2). Can be disabled for archive loads.
  bool write_through = true;
  /// Value of the `cache` label on this cache's registry instruments;
  /// empty = auto-assigned "cache<N>". Nodes set their node name here so
  /// per-node cache behavior is distinguishable in one exported snapshot.
  std::string metrics_name;
  /// Metrics registry to record into; null = process default.
  obs::MetricsRegistry* registry = nullptr;
  /// Data Collector to record eviction / miss-fill / coalesced-wait
  /// events into (the `dc_cache_events` system table); null = none.
  /// Nodes pass their own collector here.
  obs::DataCollector* collector = nullptr;
  /// I/O pool for FetchRefAsync / PrefetchAsync / parallel WarmFrom.
  /// null = the async entry points run inline on the caller (correct,
  /// just without overlap). Must outlive the cache.
  IoPool* io_pool = nullptr;
  /// Admission bound on speculative reads: bytes of prefetch allowed in
  /// flight at once (by the caller's size hints). Prefetches beyond the
  /// window are rejected, not queued — a demand fetch will still get the
  /// file. 0 = auto: EON_PREFETCH_BYTE_CAP env var, else 64 MiB.
  uint64_t max_inflight_prefetch_bytes = 0;
};

/// One speculative fetch request. The size hint feeds prefetch admission
/// (the in-flight byte window) before the true size is known; callers
/// estimate it from catalog stats. 0 = unknown (counts as free).
struct PrefetchRequest {
  std::string key;
  uint64_t size_hint = 0;
};

/// Aggregate cache counters. Since the registry migration this is a VIEW
/// assembled from the cache's registry instruments by stats() — kept so
/// existing callers and tests read one coherent struct.
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t bytes_hit = 0;
  uint64_t bytes_filled = 0;  ///< Bytes fetched from shared storage on miss.
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  uint64_t drops = 0;
  /// Misses that joined another caller's in-flight fetch of the same key
  /// instead of issuing their own shared-storage read (singleflight).
  uint64_t coalesced = 0;
  /// Speculative reads actually issued to shared storage.
  uint64_t prefetch_issued = 0;
  /// Prefetched files later read by a demand fetch (the prefetch hid that
  /// fetch's latency).
  uint64_t prefetch_useful = 0;
  /// Prefetched files evicted or dropped before any demand read — wasted
  /// store traffic; the admission window exists to bound this.
  uint64_t prefetch_wasted = 0;
  /// Prefetch requests skipped because the file was already resident or
  /// already in flight (demand or another prefetch).
  uint64_t prefetch_coalesced = 0;
  /// Prefetch requests refused by the in-flight byte window.
  uint64_t prefetch_rejected = 0;

  double HitRate() const {
    uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

/// Whole-file LRU disk cache in front of shared storage (Section 5.2).
/// Because storage files are never modified once written, the cache only
/// handles add and drop — never invalidate. Serves the engine through the
/// FileFetcher interface.
///
/// Thread-safe, built for morsel-parallel scans:
///  - Sharded locking: keys hash onto independent lock shards, so
///    concurrent hits on different files never serialize on one mutex.
///  - Singleflight: N concurrent misses on one key issue ONE shared
///    storage fetch; the rest wait for it and share the result.
///  - Pinning: FetchRef() returns shared bytes and pins the entry
///    resident until every ref is released, so eviction can never yank a
///    file out from under an in-progress scan. Entry data is refcounted,
///    so even Drop/Clear cannot dangle a live reader.
///
/// LRU semantics are byte-for-byte those of the classic single-list
/// implementation: every access takes a globally unique recency stamp
/// and eviction removes the smallest stamps first, so the eviction order
/// is identical — sharding only splits the locks, not the policy.
class FileCache : public FileFetcher {
 public:
  FileCache(CacheOptions options, ObjectStore* shared_storage);
  /// Waits for every in-flight async fetch/prefetch this cache issued on
  /// the I/O pool (WaitIdle) before tearing down.
  ~FileCache() override;

  /// Fetch through the cache: hit serves the cached copy and refreshes
  /// recency; miss reads shared storage and (policy permitting) inserts.
  Result<std::string> Fetch(const std::string& key) override;

  /// Zero-copy fetch: shares the cached bytes and pins the entry resident
  /// until the returned ref is released. The scan path uses this.
  Result<FileRef> FetchRef(const std::string& key) override;

  /// Non-blocking FetchRef. A resident entry completes immediately on the
  /// caller (no pool hop — the warm path stays as fast as FetchRef); a
  /// miss runs on the I/O pool and rides the same singleflight as every
  /// other fetch of the key. Without an I/O pool this degrades to an
  /// inline FetchRef wrapped in a ready handle.
  PendingFile FetchRefAsync(const std::string& key) override;

  /// Speculative reads: start fetching `requests` into the cache without
  /// waiting. Already-resident / already-in-flight keys are skipped
  /// (prefetch_coalesced); requests that would push the in-flight window
  /// over max_inflight_prefetch_bytes are refused (prefetch_rejected).
  /// A prefetch that loses the race with a demand fetch coalesces via the
  /// shard singleflight, never duplicating a store read. Failures are
  /// dropped — the later demand fetch surfaces (or retries) the error.
  /// Returns how many requests were NOT already resident or in flight
  /// (issued or window-rejected); 0 means the batch was fully warm, which
  /// callers use to back off speculation on hot caches.
  size_t PrefetchAsync(const std::vector<PrefetchRequest>& requests);

  /// Block until no async fetch/prefetch issued by this cache is running
  /// or queued on the I/O pool.
  void WaitIdle();

  /// Fetch bypassing residency ("don't use the cache for this query"):
  /// a hit is still served, but a miss does not insert.
  Result<std::string> FetchBypass(const std::string& key);

  /// Write-through insert at load/mergeout time.
  Status Insert(const std::string& key, const std::string& data);

  /// Remove a file (storage drop or unsubscription purge). Idempotent.
  /// Live refs to the dropped entry keep their bytes (refcounted).
  void Drop(const std::string& key);

  /// Drop every cached file with the given key prefix (shard purge).
  void DropPrefix(const std::string& prefix);

  bool Contains(const std::string& key) const;
  void Clear();

  /// Set the shaping policy for keys with the given prefix (e.g. a table's
  /// storage-id prefix: "cache recent partitions of T" / "never cache T2").
  void SetPolicy(const std::string& key_prefix, CachePolicy policy);

  /// Most-recently-used file keys whose cumulative size fits the budget —
  /// the list a warming peer supplies to a new subscriber (Section 5.2).
  std::vector<std::string> MostRecentlyUsed(uint64_t budget_bytes) const;

  /// Warm this cache: fetch `keys` from `source` (a peer's cache or shared
  /// storage) and insert. Missing keys are skipped, not errors. With an
  /// I/O pool the fetches fan out in parallel, so warming N files costs
  /// about the slowest single fetch rather than the sum; insertion order
  /// (and thus the warmed LRU order) matches the serial path exactly.
  Status WarmFrom(const std::vector<std::string>& keys, FileFetcher* source);

  /// Resident lookup without recency update or fill — the peer side of
  /// cache warming serves from this so warming neither perturbs the peer's
  /// LRU order nor triggers shared-storage reads on the peer.
  Result<std::string> TryGetResident(const std::string& key) const;

  uint64_t size_bytes() const {
    return size_bytes_.load(std::memory_order_relaxed);
  }
  uint64_t file_count() const {
    return file_count_.load(std::memory_order_relaxed);
  }
  uint64_t capacity_bytes() const { return options_.capacity_bytes; }
  /// Current prefetch admission window usage (sum of in-flight hints).
  uint64_t inflight_prefetch_bytes() const {
    return inflight_prefetch_bytes_.load(std::memory_order_relaxed);
  }
  uint64_t max_inflight_prefetch_bytes() const {
    return max_inflight_prefetch_bytes_;
  }
  /// Live FetchRef pin handles (a file pinned twice counts twice).
  uint64_t pinned_refs() const;
  /// Thin view over the registry instruments (see CacheStats).
  CacheStats stats() const;
  /// The `cache` label value of this cache's instruments.
  const std::string& metrics_name() const { return metrics_name_; }
  ObjectStore* shared_storage() const { return shared_; }

 private:
  struct Entry {
    std::shared_ptr<const std::string> data;
    bool policy_pinned = false;  ///< CachePolicy::kPin residency pin.
    /// Inserted by a prefetch and not yet read by any demand fetch.
    /// Speculative residency is the cheapest to give back: these entries
    /// are evicted before ANY demand-inserted entry, and evicting or
    /// dropping one counts as prefetch_wasted.
    bool prefetched = false;
    int ref_pins = 0;            ///< Live FetchRef handles.
    uint64_t gen = 0;            ///< Incarnation; guards stale unpins.
    uint64_t last_access = 0;    ///< Global recency stamp (bigger = newer).
  };

  /// One in-flight shared-storage fetch that concurrent misses join.
  struct Inflight {
    bool done = false;
    Status status = Status::OK();
    std::shared_ptr<const std::string> data;
    std::condition_variable cv;  ///< Waited on under the shard mutex.
  };

  /// Lock shard: an independent slice of the key space. Lock order, where
  /// multiple locks are needed (eviction, SetPolicy, MRU listing), is
  /// policy_mu_ first, then shards in index order.
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, Entry> entries;
    std::unordered_map<std::string, std::shared_ptr<Inflight>> inflight;
  };

  static constexpr size_t kNumShards = 16;

  Shard& ShardFor(const std::string& key) const;
  CachePolicy PolicyFor(const std::string& key) const;
  uint64_t NextStamp() { return stamp_seq_.fetch_add(1); }
  /// Insert under the shard lock; no capacity enforcement (caller runs
  /// MaybeEvict() after unlocking). `prefetched` marks speculative
  /// inserts (see Entry::prefetched).
  void InsertLocked(Shard& shard, const std::string& key,
                    std::shared_ptr<const std::string> data,
                    CachePolicy policy, bool prefetched = false);
  /// Enforce capacity. Takes every shard lock; call with none held.
  void MaybeEvict();
  void UpdateGauges();
  /// Record into the Data Collector (no-op without one). Safe under any
  /// cache lock: the DC ring mutex is a strict leaf.
  void RecordDcEvent(obs::DcCacheEvent::Kind kind, const std::string& key,
                     uint64_t bytes);
  /// Wrap entry bytes in a ref whose release unpins the entry.
  FileRef MakePinnedRef(const std::string& key, const Entry& entry);
  void ReleasePin(const std::string& key, uint64_t gen);
  Result<FileRef> FetchShared(const std::string& key, bool allow_insert,
                              bool pin);
  /// A demand access touched `entry`: clear the speculative flag and
  /// credit the prefetch as useful. Call under the entry's shard lock.
  void MarkDemandRead(Entry* entry);
  /// Body of one admitted prefetch (runs on the I/O pool, or inline
  /// without one); releases `hint` bytes of the admission window when
  /// done.
  void DoPrefetch(const std::string& key, uint64_t hint);
  void BeginAsyncTask();
  void EndAsyncTask();

  const CacheOptions options_;
  ObjectStore* shared_;
  std::string metrics_name_;

  mutable std::mutex policy_mu_;
  std::map<std::string, CachePolicy> prefix_policies_;

  std::unique_ptr<Shard[]> shards_;
  std::atomic<uint64_t> stamp_seq_{1};
  std::atomic<uint64_t> size_bytes_{0};
  std::atomic<uint64_t> file_count_{0};

  uint64_t max_inflight_prefetch_bytes_ = 0;  ///< Resolved at construction.
  std::atomic<uint64_t> inflight_prefetch_bytes_{0};

  /// Async fetch/prefetch tasks issued and not yet finished; the dtor
  /// (and WaitIdle) blocks on this so a pool task never touches a dead
  /// cache.
  mutable std::mutex async_mu_;
  std::condition_variable async_cv_;
  uint64_t async_tasks_ = 0;

  // Registry instruments (labels: cache=<metrics_name_>). Resolved once
  // at construction; hot-path updates are lock-free atomics.
  struct {
    obs::Counter* hits = nullptr;
    obs::Counter* misses = nullptr;
    obs::Counter* bytes_hit = nullptr;
    obs::Counter* bytes_filled = nullptr;
    obs::Counter* insertions = nullptr;
    obs::Counter* evictions = nullptr;
    obs::Counter* drops = nullptr;
    obs::Counter* coalesced = nullptr;
    obs::Counter* prefetch_issued = nullptr;
    obs::Counter* prefetch_useful = nullptr;
    obs::Counter* prefetch_wasted = nullptr;
    obs::Counter* prefetch_coalesced = nullptr;
    obs::Counter* prefetch_rejected = nullptr;
    obs::Gauge* size_bytes = nullptr;
    obs::Gauge* files = nullptr;
    obs::Gauge* pinned_refs = nullptr;
    obs::Gauge* prefetch_inflight_bytes = nullptr;
    /// Wall micros demand fetches spent blocked on a PendingFile.
    obs::Histogram* fetch_wait_micros = nullptr;
    obs::Counter* warm_files = nullptr;     ///< Files inserted by WarmFrom.
    obs::Histogram* warm_micros = nullptr;  ///< Wall per WarmFrom call.
  } metrics_;
};

/// FileFetcher over a peer's cache: serves only files resident on the peer
/// (NotFound otherwise). The warming subscriber "can then either fetch the
/// files from shared storage or from the peer itself" (Section 5.2).
class PeerCacheFetcher : public FileFetcher {
 public:
  explicit PeerCacheFetcher(const FileCache* peer) : peer_(peer) {}
  Result<std::string> Fetch(const std::string& key) override {
    return peer_->TryGetResident(key);
  }

 private:
  const FileCache* peer_;
};

}  // namespace eon

#endif  // EON_CACHE_FILE_CACHE_H_
