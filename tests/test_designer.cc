// Unit tests for AddProjection (backfill) and the Database Designer.

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "engine/designer.h"
#include "engine/session.h"
#include "storage/sim_object_store.h"
#include "workload/tpch.h"

namespace eon {
namespace {

class DesignerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SimStoreOptions sopts;
    sopts.get_latency_micros = 0;
    sopts.put_latency_micros = 0;
    sopts.list_latency_micros = 0;
    store_ = std::make_unique<SimObjectStore>(sopts, &clock_);
    ClusterOptions copts;
    copts.num_shards = 3;
    auto cluster = EonCluster::Create(
        store_.get(), &clock_, copts,
        {NodeSpec{"n1", ""}, NodeSpec{"n2", ""}, NodeSpec{"n3", ""}});
    ASSERT_TRUE(cluster.ok());
    cluster_ = std::move(cluster).value();
    topts_.scale = 0.1;
    data_ = GenerateTpch(topts_);
    ASSERT_TRUE(CreateTpchTables(cluster_.get()).ok());
    ASSERT_TRUE(LoadTpch(cluster_.get(), data_).ok());
  }

  SimClock clock_;
  std::unique_ptr<SimObjectStore> store_;
  std::unique_ptr<EonCluster> cluster_;
  TpchOptions topts_;
  TpchData data_;
};

TEST_F(DesignerTest, AddProjectionBackfillsAndServes) {
  // New narrow projection segmented by l_partkey on already-loaded data.
  auto proj = AddProjection(
      cluster_.get(), "lineitem",
      ProjectionSpec{"lineitem_bypart",
                     {"l_partkey", "l_extendedprice"},
                     {"l_partkey"},
                     {"l_partkey"}});
  ASSERT_TRUE(proj.ok()) << proj.status().ToString();

  // Backfilled containers exist for the new projection.
  auto snapshot = cluster_->node(1)->catalog()->snapshot();
  auto containers = snapshot->ContainersOf(*proj);
  ASSERT_FALSE(containers.empty());
  uint64_t backfilled = 0;
  for (const StorageContainerMeta* c : containers) backfilled += c->row_count;
  EXPECT_EQ(backfilled, data_.lineitems.size());

  // A group-by on l_partkey now runs locally via the new projection.
  EonSession session(cluster_.get());
  QuerySpec q;
  q.scan.table = "lineitem";
  q.scan.columns = {"l_partkey", "l_extendedprice"};
  q.group_by = {"l_partkey"};
  q.aggregates = {{AggFn::kSum, "l_extendedprice", "rev"}};
  auto result = session.Execute(q);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->stats.local_group_by);
}

TEST_F(DesignerTest, AddProjectionPicksUpSubsequentLoads) {
  auto proj = AddProjection(cluster_.get(), "orders",
                            ProjectionSpec{"orders_bydate",
                                           {"o_orderdate", "o_totalprice"},
                                           {"o_orderdate"},
                                           {"o_orderdate"}});
  ASSERT_TRUE(proj.ok());
  const uint64_t before = [&] {
    uint64_t n = 0;
    auto snapshot = cluster_->node(1)->catalog()->snapshot();
    for (const StorageContainerMeta* c : snapshot->ContainersOf(*proj)) {
      n += c->row_count;
    }
    return n;
  }();
  auto more = GenerateTpch(TpchOptions{.scale = 0.05, .seed = 17});
  ASSERT_TRUE(CopyInto(cluster_.get(), "orders", more.orders).ok());
  uint64_t after = 0;
  auto snapshot = cluster_->node(1)->catalog()->snapshot();
  for (const StorageContainerMeta* c : snapshot->ContainersOf(*proj)) {
    after += c->row_count;
  }
  EXPECT_EQ(after, before + more.orders.size());
}

TEST_F(DesignerTest, ProposesSegmentationFromJoins) {
  DesignInput input;
  input.table = "part";
  // Workload that repeatedly joins lineitem to part on p_partkey.
  for (int i = 0; i < 5; ++i) {
    QuerySpec q;
    q.scan.table = "lineitem";
    q.scan.columns = {"l_partkey", "l_extendedprice"};
    q.join = JoinSpec{{"part", {"p_partkey", "p_type"}, nullptr}, "l_partkey",
                      "p_partkey"};
    q.group_by = {"p_type"};
    q.aggregates = {{AggFn::kSum, "l_extendedprice", "rev"}};
    input.workload.push_back(q);
  }
  auto snapshot = cluster_->node(1)->catalog()->snapshot();
  auto design = DesignProjections(*snapshot, input);
  ASSERT_TRUE(design.ok()) << design.status().ToString();
  ASSERT_FALSE(design->empty());
  EXPECT_EQ((*design)[0].spec.segmentation_columns,
            (std::vector<std::string>{"p_partkey"}));
  EXPECT_EQ((*design)[0].queries_benefited, 5);
}

TEST_F(DesignerTest, SuppressesAlreadyServedDesigns) {
  DesignInput input;
  input.table = "lineitem";
  // The superprojection is already segmented by l_orderkey and covers
  // everything — an l_orderkey-join workload needs nothing new.
  QuerySpec q;
  q.scan.table = "lineitem";
  q.scan.columns = {"l_orderkey", "l_quantity"};
  q.join = JoinSpec{{"orders", {"o_orderkey"}, nullptr}, "l_orderkey",
                    "o_orderkey"};
  q.aggregates = {{AggFn::kCount, "", "n"}};
  input.workload = {q, q, q};
  auto snapshot = cluster_->node(1)->catalog()->snapshot();
  auto design = DesignProjections(*snapshot, input);
  ASSERT_TRUE(design.ok());
  EXPECT_TRUE(design->empty());
}

TEST_F(DesignerTest, ApplyDesignEndToEnd) {
  DesignInput input;
  input.table = "customer";
  for (int i = 0; i < 3; ++i) {
    QuerySpec q;
    q.scan.table = "orders";
    q.scan.columns = {"o_custkey", "o_totalprice"};
    q.join = JoinSpec{{"customer", {"c_custkey", "c_nationkey"}, nullptr},
                      "o_custkey",
                      "c_custkey"};
    q.group_by = {"c_nationkey"};
    q.aggregates = {{AggFn::kSum, "o_totalprice", "rev"}};
    input.workload.push_back(q);
  }
  auto snapshot = cluster_->node(1)->catalog()->snapshot();
  auto design = DesignProjections(*snapshot, input);
  ASSERT_TRUE(design.ok());
  // customer_super is already segmented by c_custkey but does not include
  // c_nationkey-narrow coverage decisions; whatever the designer says,
  // applying it must work end to end and queries must stay correct.
  ASSERT_TRUE(ApplyDesign(cluster_.get(), "customer", *design).ok());
  EonSession session(cluster_.get());
  auto result = session.Execute(input.workload[0]);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->rows.empty());
}

TEST_F(DesignerTest, RejectsIrrelevantWorkload) {
  DesignInput input;
  input.table = "part";
  QuerySpec q;
  q.scan.table = "customer";
  q.scan.columns = {"c_custkey"};
  input.workload = {q};
  auto snapshot = cluster_->node(1)->catalog()->snapshot();
  EXPECT_TRUE(
      DesignProjections(*snapshot, input).status().IsInvalidArgument());
}

}  // namespace
}  // namespace eon
