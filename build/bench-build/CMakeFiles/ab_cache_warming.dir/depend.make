# Empty dependencies file for ab_cache_warming.
# This may be replaced when dependencies are built.
