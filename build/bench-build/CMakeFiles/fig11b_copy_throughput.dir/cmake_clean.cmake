file(REMOVE_RECURSE
  "../bench/fig11b_copy_throughput"
  "../bench/fig11b_copy_throughput.pdb"
  "CMakeFiles/fig11b_copy_throughput.dir/fig11b_copy_throughput.cc.o"
  "CMakeFiles/fig11b_copy_throughput.dir/fig11b_copy_throughput.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11b_copy_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
