file(REMOVE_RECURSE
  "libeon_engine.a"
)
