#!/usr/bin/env bash
# Validate an exported Chrome trace-event JSON file (as written by the
# `\trace <id>` eonsql command, the wire "trace" op, or a bench's
# *.trace.json sidecar): the file must parse, use the trace-event array
# form, and its complete ("X") spans must nest — every child interval
# inside its parent's (fire-and-forget prefetch spans are exempt from the
# end bound, mirroring obs::SpansNest). Prints a per-trace span summary.
#
#   scripts/trace_view.sh fig12_node_down.trace.json
#
# Exit codes: 0 valid, 1 usage/missing file, 2 malformed trace.
set -euo pipefail

if [ "$#" -ne 1 ]; then
  echo "usage: $0 <trace.json>" >&2
  exit 1
fi
TRACE_FILE="$1"
if [ ! -f "$TRACE_FILE" ]; then
  echo "no such file: $TRACE_FILE" >&2
  exit 1
fi

if ! command -v python3 > /dev/null 2>&1; then
  echo "python3 not available; skipping validation of $TRACE_FILE" >&2
  exit 0
fi

python3 - "$TRACE_FILE" <<'PYEOF'
import json
import sys

path = sys.argv[1]
try:
    with open(path) as f:
        doc = json.load(f)
except (OSError, ValueError) as e:
    print(f"FAIL: {path}: does not parse as JSON: {e}")
    sys.exit(2)

events = doc.get("traceEvents") if isinstance(doc, dict) else doc
if not isinstance(events, list):
    print(f"FAIL: {path}: no traceEvents array")
    sys.exit(2)

spans = []
for ev in events:
    if not isinstance(ev, dict) or ev.get("ph") != "X":
        continue
    for field in ("name", "ts", "dur", "pid", "tid"):
        if field not in ev:
            print(f"FAIL: {path}: complete event missing '{field}': {ev}")
            sys.exit(2)
    spans.append(ev)

if not spans:
    print(f"FAIL: {path}: no complete ('X') span events")
    sys.exit(2)

# Nesting: every child span's interval lies inside its parent's. The
# exporter records span/parent ids in args; fire-and-forget "prefetch"
# spans may outlive their parent (SpansNest exempts their end bound).
by_id = {}
for ev in spans:
    args = ev.get("args", {})
    sid = args.get("span_id")
    if sid is not None:
        by_id[int(sid)] = ev
bad = 0
for ev in spans:
    args = ev.get("args", {})
    parent = by_id.get(int(args.get("parent_id", 0) or 0))
    if parent is None:
        continue
    start, end = ev["ts"], ev["ts"] + ev["dur"]
    pstart, pend = parent["ts"], parent["ts"] + parent["dur"]
    if start < pstart or (end > pend and ev["name"] != "prefetch"):
        print(f"FAIL: {path}: span '{ev['name']}' [{start},{end}] escapes "
              f"parent '{parent['name']}' [{pstart},{pend}]")
        bad += 1
if bad:
    sys.exit(2)

roots = sum(1 for ev in spans
            if int(ev.get("args", {}).get("parent_id", 0) or 0) not in by_id)
threads = {(ev["pid"], ev["tid"]) for ev in spans}
total_us = sum(ev["dur"] for ev in spans)
print(f"OK: {path}: {len(spans)} spans ({roots} root), "
      f"{len(threads)} lanes, {total_us} span-us total; nesting holds")
PYEOF
