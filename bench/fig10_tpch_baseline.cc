// Figure 10: "Performance of Eon compared to Enterprise, showing in-cache
// performance and reading from S3."  Paper setup: TPC-H SF200, 4 nodes
// (c3.2xlarge), Enterprise on EBS, Eon cache on instance storage.
//
// Here: the scaled TPC-H-style 20-query set on a 4-node cluster.
//  - "Enterprise"   : the Enterprise-mode baseline (private disk, fixed
//                     layout) — all reads local.
//  - "Eon in-cache" : Eon with a warm cache (the deployment-sized case).
//  - "Eon from S3"  : Eon with cold caches and residency bypassed — every
//                     read pays the simulated S3 latency model.
// Reported runtime = CPU wall time + simulated I/O time. The session's
// participation is pinned per query so the warm-up run warms exactly the
// nodes the measured run uses.
//
// Expected shape (paper): Eon in-cache matches or beats Enterprise on most
// queries; reading from S3 is significantly slower but still reasonable.

#include <cinttypes>

#include "bench/bench_util.h"
#include "engine/session.h"
#include "enterprise/enterprise.h"
#include "tm/tuple_mover.h"

namespace eon {
namespace bench {
namespace {

int Run() {
  const double kScale = 0.5;
  auto eon = MakeEonFixture(4, 3, kScale);
  if (eon == nullptr) return 1;

  // Compact the freshly loaded (daily-partitioned) containers, as a
  // steady-state deployment's tuple mover would have (Section 6.2).
  {
    TupleMover tm(eon->cluster.get(), MergeoutOptions{.stratum_fanin = 2});
    for (int pass = 0; pass < 12; ++pass) {
      auto jobs = tm.RunOnce();
      if (!jobs.ok() || *jobs == 0) break;
    }
  }

  SimClock ent_clock;
  auto enterprise = EnterpriseCluster::Create(&ent_clock, EnterpriseOptions{},
                                              {"e1", "e2", "e3", "e4"});
  if (!enterprise.ok()) return 1;
  if (!CreateTpchTables(enterprise.value()->inner()).ok()) return 1;
  if (!LoadTpch(enterprise.value()->inner(), eon->data, 512).ok()) return 1;
  {
    TupleMover tm(enterprise.value()->inner(),
                  MergeoutOptions{.stratum_fanin = 2});
    for (int pass = 0; pass < 12; ++pass) {
      auto jobs = tm.RunOnce();
      if (!jobs.ok() || *jobs == 0) break;
    }
  }

  auto queries = TpchQuerySet(eon->tpch_options);

  printf("# Figure 10: Eon vs Enterprise, in-cache and reading from S3\n");
  printf("# 20 TPC-H-style queries, 4 nodes, scale %.2f (paper: SF200)\n",
         kScale);
  printf("%-28s %14s %14s %14s\n", "query", "enterprise_ms", "eon_cache_ms",
         "eon_s3_ms");

  double sum_ent = 0, sum_cache = 0, sum_s3 = 0;
  int eon_wins = 0;
  uint64_t seed = 1;
  for (const auto& [name, spec] : queries) {
    // Pin one participation per query: warm-up and measurement then use
    // the same serving nodes.
    auto ctx = BuildExecContext(eon->cluster.get(), "", seed++);
    if (!ctx.ok()) return 1;

    MeasuredMicros ent = Measure(&ent_clock, [&] {
      auto r = enterprise.value()->Execute(spec);
      if (!r.ok()) fprintf(stderr, "%s failed\n", name.c_str());
    });

    (void)ExecuteQuery(eon->cluster.get(), spec, *ctx);  // Warm caches.
    MeasuredMicros cached = Measure(&eon->clock, [&] {
      auto r = ExecuteQuery(eon->cluster.get(), spec, *ctx);
      if (!r.ok()) fprintf(stderr, "%s failed\n", name.c_str());
    });

    // Cold-cache run: drop all residency; misses pay the S3 model and do
    // not refill (bypass policy), so every read hits shared storage.
    for (const auto& n : eon->cluster->nodes()) {
      n->cache()->Clear();
      n->cache()->SetPolicy("", CachePolicy::kNeverCache);
    }
    MeasuredMicros s3 = Measure(&eon->clock, [&] {
      auto r = ExecuteQuery(eon->cluster.get(), spec, *ctx);
      if (!r.ok()) fprintf(stderr, "%s failed\n", name.c_str());
    });
    for (const auto& n : eon->cluster->nodes()) {
      n->cache()->SetPolicy("", CachePolicy::kDefault);
    }

    printf("%-28s %14.2f %14.2f %14.2f\n", name.c_str(), ent.total_ms(),
           cached.total_ms(), s3.total_ms());
    sum_ent += ent.total_ms();
    sum_cache += cached.total_ms();
    sum_s3 += s3.total_ms();
    if (cached.total() <= ent.total() * 1.1) eon_wins++;
  }
  printf("%-28s %14.2f %14.2f %14.2f\n", "TOTAL", sum_ent, sum_cache,
         sum_s3);
  printf("# shape check: eon in-cache matches-or-beats enterprise on "
         "%d/20 queries (paper: most); eon-from-S3 is %.1fx slower than "
         "in-cache (paper: significant but reasonable)\n",
         eon_wins, sum_s3 / sum_cache);
  DumpBenchSidecars("fig10_tpch_baseline", eon->cluster.get());
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace eon

int main() { return eon::bench::Run(); }
