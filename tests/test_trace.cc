// End-to-end tests for distributed query tracing: a forced trace through
// the serving layer yields one span tree covering session -> admission ->
// per-container morsels -> I/O -> merge -> serialize, queryable via
// dc_trace_spans and exportable as Chrome trace-event JSON; latency
// attribution sums to the root wall exactly at any pool width; sampling
// is a pure deterministic function of the trace id; and results are
// bit-identical with tracing off, armed, or always-on. The concurrency
// test (traced queries on several wire clients racing dc_trace_spans
// scans) is part of the race-labeled suite scripts/tsan.sh runs under
// TSan.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.h"
#include "engine/ddl.h"
#include "engine/session.h"
#include "engine/sql.h"
#include "engine/system_tables.h"
#include "engine/trace.h"
#include "obs/dc.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "server/client.h"
#include "server/server.h"
#include "storage/sim_object_store.h"
#include "workload/tpch.h"

namespace eon {
namespace {

/// One self-contained cluster (own store, own clock) so tests can stand
/// up several tracing configurations side by side.
struct Fixture {
  SimClock clock;
  std::unique_ptr<SimObjectStore> store;
  std::unique_ptr<EonCluster> cluster;
};

std::unique_ptr<Fixture> MakeFixture(double trace_sample, int exec_threads) {
  auto f = std::make_unique<Fixture>();
  SimStoreOptions sopts;  // Keep the S3 latency model: sim time > 0.
  f->store = std::make_unique<SimObjectStore>(sopts, &f->clock);
  ClusterOptions copts;
  copts.num_shards = 3;
  copts.k_safety = 2;
  copts.exec_threads = exec_threads;
  copts.trace_sample = trace_sample;
  copts.node.cache.capacity_bytes = 64ULL << 20;
  auto cluster = EonCluster::Create(
      f->store.get(), &f->clock, copts,
      {NodeSpec{"node1", ""}, NodeSpec{"node2", ""}, NodeSpec{"node3", ""}});
  EXPECT_TRUE(cluster.ok()) << cluster.status().ToString();
  if (!cluster.ok()) return nullptr;
  f->cluster = std::move(cluster).value();
  TpchOptions topts;
  topts.scale = 0.05;
  EXPECT_TRUE(CreateTpchTables(f->cluster.get()).ok());
  EXPECT_TRUE(LoadTpch(f->cluster.get(), GenerateTpch(topts), 256).ok());
  return f;
}

Result<QueryResult> RunDirect(EonCluster* cluster, const std::string& sql,
                              uint64_t seed = 0) {
  EON_ASSIGN_OR_RETURN(
      QuerySpec spec,
      ParseSelect(*cluster->AnyUpNode()->catalog()->snapshot(), sql));
  EonSession session(cluster, "", seed);
  return session.Execute(spec);
}

std::multiset<std::string> SpanNames(const std::vector<obs::SpanData>& spans) {
  std::multiset<std::string> names;
  for (const obs::SpanData& s : spans) names.insert(s.name);
  return names;
}

std::string Attr(const obs::SpanData& span, const std::string& key) {
  for (const auto& [k, v] : span.attributes) {
    if (k == key) return v;
  }
  return "";
}

// --- The acceptance test: one forced trace, one complete span tree -------

class TraceTreeTest : public ::testing::TestWithParam<int> {};

TEST_P(TraceTreeTest, ForcedTraceCoversSessionToMerge) {
  const int width = GetParam();
  auto f = MakeFixture(/*trace_sample=*/0.0, width);
  ASSERT_NE(f, nullptr);
  EonCluster* cluster = f->cluster.get();
  // Cold caches so the scan demand-fetches through the simulated S3 and
  // the tree gains cache_fetch I/O spans.
  for (const auto& n : cluster->nodes()) n->cache()->Clear();

  EonServer server(cluster);
  EonClient client(server.ConnectInProcess());
  ASSERT_TRUE(client.Hello().ok());
  ASSERT_TRUE(client.Set("trace", "on").ok());

  auto wire = client.Query(
      "SELECT l_returnflag, SUM(l_quantity) AS q, AVG(l_discount) AS d "
      "FROM lineitem GROUP BY l_returnflag ORDER BY l_returnflag");
  ASSERT_TRUE(wire.ok()) << wire.status().ToString();
  ASSERT_NE(wire->trace_id, 0u);

  std::vector<obs::SpanData> spans =
      CollectTraceSpans(cluster, wire->trace_id);
  ASSERT_FALSE(spans.empty());

  // Exactly one root ("session"), every span stamped with the trace id.
  size_t roots = 0;
  for (const obs::SpanData& s : spans) {
    EXPECT_EQ(s.trace_id, wire->trace_id);
    if (s.parent_id == 0) {
      ++roots;
      EXPECT_EQ(s.name, "session");
    }
  }
  EXPECT_EQ(roots, 1u);

  const std::multiset<std::string> names = SpanNames(spans);
  for (const char* expected :
       {"session", "admission_wait", "plan", "scan", "aggregate", "merge",
        "serialize", "morsel", "cache_fetch"}) {
    EXPECT_GE(names.count(expected), 1u) << "missing span: " << expected;
  }

  // >= 1 morsel span per scanned container, each attributed to a node;
  // all participating nodes show up.
  std::set<std::string> containers, morsel_nodes;
  for (const obs::SpanData& s : spans) {
    if (s.name != "morsel") continue;
    EXPECT_FALSE(s.node.empty());
    morsel_nodes.insert(s.node);
    const std::string container = Attr(s, "container");
    EXPECT_FALSE(container.empty());
    containers.insert(container);
  }
  EXPECT_GE(containers.size(), 1u);
  EXPECT_EQ(morsel_nodes.size(), wire->participating_nodes);

  std::string nest_error;
  EXPECT_TRUE(obs::SpansNest(spans, &nest_error)) << nest_error;

  // Queryable via SQL, filtered by trace id.
  auto sql_spans = RunDirect(
      cluster, "SELECT name, node, duration_micros FROM dc_trace_spans "
               "WHERE trace_id = " + std::to_string(wire->trace_id));
  ASSERT_TRUE(sql_spans.ok()) << sql_spans.status().ToString();
  EXPECT_EQ(sql_spans->rows.size(), spans.size());

  // Joinable with the query log: dc_query_executions carries the id.
  auto execs = RunDirect(
      cluster, "SELECT query_id FROM dc_query_executions WHERE trace_id = " +
               std::to_string(wire->trace_id));
  ASSERT_TRUE(execs.ok()) << execs.status().ToString();
  ASSERT_EQ(execs->rows.size(), 1u);

  // The wire export is valid Chrome trace-event JSON: a traceEvents
  // array of complete events that round-trips through the parser.
  auto exported = client.Trace(wire->trace_id);
  ASSERT_TRUE(exported.ok()) << exported.status().ToString();
  auto reparsed = JsonValue::Parse(exported->Dump());
  ASSERT_TRUE(reparsed.ok());
  const JsonValue& events = reparsed->Get("traceEvents");
  // Spans plus per-node thread_name metadata events.
  ASSERT_GT(events.size(), spans.size());
  size_t complete_events = 0;
  for (size_t i = 0; i < events.size(); ++i) {
    if (events.at(i).Get("ph").string_value() == "X") ++complete_events;
  }
  EXPECT_EQ(complete_events, spans.size());

  // Latency attribution: components sum to the root wall EXACTLY (other
  // absorbs inter-phase gaps), and the unattributed remainder stays
  // under 5% of wall at every pool width.
  const obs::TraceAttribution attr = obs::AttributeTrace(spans);
  EXPECT_GT(attr.wall_micros, 0);
  EXPECT_EQ(attr.SumMicros(), attr.wall_micros);
  EXPECT_LE(attr.other_micros, attr.wall_micros / 20)
      << "unattributed time above 5% at width " << width;
  EXPECT_EQ(attr.fetch_wait_micros + attr.scan_cpu_micros, attr.scan_micros);
  EXPECT_GE(attr.fetch_wait_micros, 0);
  EXPECT_FALSE(attr.critical_path.empty());
}

INSTANTIATE_TEST_SUITE_P(Widths, TraceTreeTest, ::testing::Values(1, 4));

// --- Sampling policy ------------------------------------------------------

TEST(TraceSampling, PureDeterministicHash) {
  // The decision is a pure function of the id: no clock, no RNG state.
  for (uint64_t i = 1; i <= 1000; ++i) {
    const uint64_t id = obs::NextTraceId();
    EXPECT_FALSE(obs::TraceSampled(id, 0.0));
    EXPECT_TRUE(obs::TraceSampled(id, 1.0));
    const bool first = obs::TraceSampled(id, 0.5);
    for (int r = 0; r < 3; ++r) EXPECT_EQ(obs::TraceSampled(id, 0.5), first);
  }
}

TEST(TraceSampling, RateRoughlyMatchesProbability) {
  int sampled = 0;
  const int kTrials = 4000;
  for (int i = 0; i < kTrials; ++i) {
    if (obs::TraceSampled(obs::NextTraceId(), 0.25)) ++sampled;
  }
  EXPECT_GT(sampled, kTrials / 8);      // > 12.5%
  EXPECT_LT(sampled, kTrials * 3 / 8);  // < 37.5%
}

TEST(TraceSampling, DisabledClusterMintsNothing) {
  auto f = MakeFixture(ClusterOptions::kTraceDisabled, /*exec_threads=*/1);
  ASSERT_NE(f, nullptr);
  EXPECT_LT(f->cluster->trace_sample(), 0.0);
  auto result =
      RunDirect(f->cluster.get(), "SELECT COUNT(*) AS n FROM lineitem");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->profile.trace_id, 0u);
  for (const auto& n : f->cluster->nodes()) {
    EXPECT_TRUE(n->dc()->TraceSpans().empty());
  }
}

TEST(TraceSampling, AlwaysOnRetainsEveryQuery) {
  auto f = MakeFixture(/*trace_sample=*/1.0, /*exec_threads=*/1);
  ASSERT_NE(f, nullptr);
  auto result =
      RunDirect(f->cluster.get(), "SELECT SUM(l_quantity) AS q FROM lineitem");
  ASSERT_TRUE(result.ok());
  ASSERT_NE(result->profile.trace_id, 0u);
  const std::vector<obs::SpanData> spans =
      CollectTraceSpans(f->cluster.get(), result->profile.trace_id);
  ASSERT_FALSE(spans.empty());
  // Direct execution (no serving layer): the root is the "query" span.
  const std::multiset<std::string> names = SpanNames(spans);
  EXPECT_GE(names.count("query"), 1u);
  EXPECT_GE(names.count("scan"), 1u);
}

TEST(TraceSampling, ArmedModeRetainsSlowQueriesOnly) {
  auto f = MakeFixture(/*trace_sample=*/0.0, /*exec_threads=*/1);
  ASSERT_NE(f, nullptr);
  EonCluster* cluster = f->cluster.get();
  // Threshold above any query here: nothing retained.
  for (const auto& n : cluster->nodes()) {
    n->dc()->set_slow_query_micros(INT64_MAX / 2);
  }
  auto fast = RunDirect(cluster, "SELECT COUNT(*) AS n FROM orders");
  ASSERT_TRUE(fast.ok());
  EXPECT_TRUE(
      CollectTraceSpans(cluster, fast->profile.trace_id).empty());

  // Threshold zero: every query is "slow" and is retained post-hoc.
  for (const auto& n : cluster->nodes()) n->dc()->set_slow_query_micros(0);
  auto slow = RunDirect(cluster, "SELECT COUNT(*) AS n FROM orders");
  ASSERT_TRUE(slow.ok());
  ASSERT_NE(slow->profile.trace_id, 0u);
  EXPECT_FALSE(
      CollectTraceSpans(cluster, slow->profile.trace_id).empty());
}

// --- Tracing never changes results ----------------------------------------

TEST(TraceDifferential, BitIdenticalResultsOffArmedAndSampled) {
  const std::string sql =
      "SELECT l_partkey, SUM(l_extendedprice) AS s, AVG(l_discount) AS a "
      "FROM lineitem GROUP BY l_partkey ORDER BY l_partkey LIMIT 50";
  for (int width : {1, 4}) {
    auto off = MakeFixture(ClusterOptions::kTraceDisabled, width);
    auto armed = MakeFixture(0.0, width);
    auto always = MakeFixture(1.0, width);
    ASSERT_NE(off, nullptr);
    ASSERT_NE(armed, nullptr);
    ASSERT_NE(always, nullptr);
    auto base = RunDirect(off->cluster.get(), sql, /*seed=*/7919);
    ASSERT_TRUE(base.ok()) << base.status().ToString();
    for (Fixture* other : {armed.get(), always.get()}) {
      auto got = RunDirect(other->cluster.get(), sql, /*seed=*/7919);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ASSERT_EQ(got->rows.size(), base->rows.size()) << "width " << width;
      for (size_t r = 0; r < base->rows.size(); ++r) {
        ASSERT_EQ(got->rows[r].size(), base->rows[r].size());
        for (size_t c = 0; c < base->rows[r].size(); ++c) {
          EXPECT_EQ(got->rows[r][c], base->rows[r][c])
              << "width " << width << " row " << r << " col " << c;
        }
      }
    }
  }
}

// --- Attribution arithmetic on a synthetic tree ---------------------------

TEST(TraceAttribution, SyntheticTreeSumsExactly) {
  auto span = [](uint64_t id, uint64_t parent, const std::string& name,
                 int64_t start, int64_t end,
                 std::vector<std::pair<std::string, std::string>> attrs = {}) {
    obs::SpanData s;
    s.id = id;
    s.parent_id = parent;
    s.trace_id = 42;
    s.name = name;
    s.start_micros = start;
    s.end_micros = end;
    s.attributes = std::move(attrs);
    return s;
  };
  const std::vector<obs::SpanData> spans = {
      span(1, 0, "session", 0, 1000),
      span(2, 1, "admission_wait", 0, 100),
      span(3, 1, "plan", 100, 150),
      span(4, 1, "scan", 150, 700),
      span(5, 4, "morsel", 150, 650, {{"lane", "0"}}),
      span(6, 5, "cache_fetch", 200, 400),
      span(7, 4, "morsel", 150, 300, {{"lane", "1"}}),
      span(8, 1, "aggregate", 700, 800),
      span(9, 1, "merge", 800, 850),
      span(10, 1, "serialize", 900, 1000),
  };
  const obs::TraceAttribution attr = obs::AttributeTrace(spans);
  EXPECT_EQ(attr.wall_micros, 1000);
  EXPECT_EQ(attr.queued_micros, 100);
  EXPECT_EQ(attr.plan_micros, 50);
  EXPECT_EQ(attr.scan_micros, 550);
  // Lane 0 is the busiest (500 vs 150); its cache_fetch child is charged.
  EXPECT_EQ(attr.fetch_wait_micros, 200);
  EXPECT_EQ(attr.scan_cpu_micros, 350);
  EXPECT_EQ(attr.aggregate_micros, 100);
  EXPECT_EQ(attr.merge_micros, 50);
  EXPECT_EQ(attr.serialize_micros, 100);
  EXPECT_EQ(attr.other_micros, 50);  // The 850..900 inter-phase gap.
  EXPECT_EQ(attr.SumMicros(), attr.wall_micros);
  std::string err;
  EXPECT_TRUE(obs::SpansNest(spans, &err)) << err;
}

// --- Concurrency: producers vs dc_trace_spans readers (TSan target) -------

TEST(TraceRace, TracedQueriesRaceSpanScans) {
  auto f = MakeFixture(/*trace_sample=*/1.0, /*exec_threads=*/4);
  ASSERT_NE(f, nullptr);
  EonCluster* cluster = f->cluster.get();
  EonServer server(cluster);

  constexpr int kProducers = 3;
  constexpr int kQueriesEach = 4;
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&server, t] {
      EonClient client(server.ConnectInProcess());
      ASSERT_TRUE(client.Hello().ok());
      ASSERT_TRUE(client.Set("trace", "on").ok());
      for (int q = 0; q < kQueriesEach; ++q) {
        auto result = client.Query(
            "SELECT l_returnflag, COUNT(*) AS n FROM lineitem "
            "GROUP BY l_returnflag");
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        EXPECT_NE(result->trace_id, 0u);
      }
      EXPECT_TRUE(client.Bye().ok());
    });
  }

  // Reader: materialize dc_trace_spans (and run SQL over it) while the
  // producers are mid-flight.
  for (int i = 0; i < 20; ++i) {
    auto rows = MaterializeSystemTable(cluster, "dc_trace_spans");
    ASSERT_TRUE(rows.ok());
    auto sql = RunDirect(cluster,
                         "SELECT node, COUNT(*) AS n FROM dc_trace_spans "
                         "GROUP BY node");
    ASSERT_TRUE(sql.ok()) << sql.status().ToString();
    std::this_thread::yield();
  }
  for (std::thread& t : producers) t.join();

  // Post-join: every producer query retained a tree whose spans all
  // carry a nonzero trace id.
  auto rows = MaterializeSystemTable(cluster, "dc_trace_spans");
  ASSERT_TRUE(rows.ok());
  ASSERT_FALSE(rows->empty());
  auto trace_col_idx = SystemTableSchema("dc_trace_spans")->IndexOf("trace_id");
  ASSERT_TRUE(trace_col_idx.ok());
  const size_t trace_col = *trace_col_idx;
  std::set<int64_t> distinct;
  for (const Row& row : *rows) {
    EXPECT_NE(row[trace_col].int_value(), 0);
    distinct.insert(row[trace_col].int_value());
  }
  EXPECT_GE(distinct.size(), 1u);
}

}  // namespace
}  // namespace eon
