file(REMOVE_RECURSE
  "../bench/ab_cache_warming"
  "../bench/ab_cache_warming.pdb"
  "CMakeFiles/ab_cache_warming.dir/ab_cache_warming.cc.o"
  "CMakeFiles/ab_cache_warming.dir/ab_cache_warming.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ab_cache_warming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
