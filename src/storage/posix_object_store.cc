#include "storage/posix_object_store.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>

#include "columnar/ndp.h"
#include "common/hash.h"
#include "obs/dc.h"
#include "obs/metrics.h"

namespace fs = std::filesystem;

namespace eon {

struct PosixObjectStore::Impl {
  std::string root;
  std::string name;  ///< `store` label / Data Collector store name.
  mutable std::mutex mu;
  ObjectStoreMetrics metrics;

  static int64_t WallMicros() {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  /// One row in the `dc_store_requests` system table (cost 0: local disk
  /// requests are free; latency is real wall time).
  void RecordDc(const char* op, const std::string& key, uint64_t bytes,
                int64_t latency_micros, bool ok) const {
    obs::DcStoreRequest e;
    e.store = name;
    e.at_micros = WallMicros();
    e.op = op;
    e.key = key;
    e.bytes = bytes;
    e.latency_micros = latency_micros;
    e.ok = ok;
    obs::DataCollector::Default()->RecordStoreRequest(std::move(e));
  }

  // Registry mirrors (monotone; not touched by ResetForTest).
  obs::Counter* req_get = nullptr;
  obs::Counter* req_put = nullptr;
  obs::Counter* req_list = nullptr;
  obs::Counter* req_delete = nullptr;
  obs::Counter* reg_bytes_read = nullptr;
  obs::Counter* reg_bytes_written = nullptr;

  /// Hash-based two-level fan-out: root/ab/cd/<escaped-key>. A hash prefix
  /// (not the key's own leading chars) keeps recent, similarly-named keys
  /// spread across directories.
  fs::path PathFor(const std::string& key) const {
    uint32_t h = static_cast<uint32_t>(Hash64(key.data(), key.size()));
    char d1[4], d2[4];
    snprintf(d1, sizeof(d1), "%02x", (h >> 8) & 0xFF);
    snprintf(d2, sizeof(d2), "%02x", h & 0xFF);
    return fs::path(root) / d1 / d2 / Escape(key);
  }

  /// Keys may contain '/'; escape to a flat filename.
  static std::string Escape(const std::string& key) {
    std::string out;
    out.reserve(key.size());
    for (char c : key) {
      if (c == '/') {
        out += "%2f";
      } else if (c == '%') {
        out += "%25";
      } else {
        out.push_back(c);
      }
    }
    return out;
  }

  static std::string Unescape(const std::string& name) {
    std::string out;
    for (size_t i = 0; i < name.size(); ++i) {
      if (name[i] == '%' && i + 2 < name.size()) {
        if (name.compare(i, 3, "%2f") == 0) {
          out.push_back('/');
          i += 2;
          continue;
        }
        if (name.compare(i, 3, "%25") == 0) {
          out.push_back('%');
          i += 2;
          continue;
        }
      }
      out.push_back(name[i]);
    }
    return out;
  }
};

PosixObjectStore::PosixObjectStore(std::string root) : impl_(new Impl()) {
  impl_->root = std::move(root);
  std::error_code ec;
  fs::create_directories(impl_->root, ec);

  static std::atomic<uint64_t> next_id{0};
  impl_->name = "posix" + std::to_string(next_id.fetch_add(1));
  const std::string& name = impl_->name;
  obs::MetricsRegistry* reg = obs::MetricsRegistry::Default();
  auto req = [&](const char* op) {
    return reg->GetCounter("eon_store_requests_total",
                           obs::LabelSet{{"store", name}, {"op", op}});
  };
  impl_->req_get = req("get");
  impl_->req_put = req("put");
  impl_->req_list = req("list");
  impl_->req_delete = req("delete");
  obs::LabelSet store_label{{"store", name}};
  impl_->reg_bytes_read =
      reg->GetCounter("eon_store_bytes_read_total", store_label);
  impl_->reg_bytes_written =
      reg->GetCounter("eon_store_bytes_written_total", store_label);
}

PosixObjectStore::~PosixObjectStore() = default;

Status PosixObjectStore::Put(const std::string& key, const std::string& data) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  const int64_t t0 = Impl::WallMicros();
  Status result = [&]() -> Status {
    impl_->metrics.puts++;
    impl_->req_put->Increment();
    fs::path path = impl_->PathFor(key);
    std::error_code ec;
    if (fs::exists(path, ec)) {
      return Status::AlreadyExists("object exists: " + key);
    }
    fs::create_directories(path.parent_path(), ec);
    // Write to a temp file then rename so readers never observe partial
    // objects (POSIX backend can afford rename; S3 backends cannot and use
    // single-shot puts instead).
    fs::path tmp = path;
    tmp += ".tmp";
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      if (!out) return Status::IOError("cannot open for write: " + key);
      out.write(data.data(), static_cast<std::streamsize>(data.size()));
      if (!out) return Status::IOError("short write: " + key);
    }
    fs::rename(tmp, path, ec);
    if (ec) return Status::IOError("rename failed: " + ec.message());
    impl_->metrics.bytes_written += data.size();
    impl_->reg_bytes_written->Increment(data.size());
    return Status::OK();
  }();
  impl_->RecordDc("put", key, data.size(), Impl::WallMicros() - t0,
                  result.ok());
  return result;
}

Result<std::string> PosixObjectStore::Get(const std::string& key) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  const int64_t t0 = Impl::WallMicros();
  Result<std::string> result = [&]() -> Result<std::string> {
    impl_->metrics.gets++;
    impl_->req_get->Increment();
    fs::path path = impl_->PathFor(key);
    std::ifstream in(path, std::ios::binary);
    if (!in) return Status::NotFound("object not found: " + key);
    std::string data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    impl_->metrics.bytes_read += data.size();
    impl_->reg_bytes_read->Increment(data.size());
    return data;
  }();
  impl_->RecordDc("get", key, result.ok() ? result.value().size() : 0,
                  Impl::WallMicros() - t0, result.ok());
  return result;
}

Result<std::string> PosixObjectStore::ReadRange(const std::string& key,
                                                uint64_t offset,
                                                uint64_t len) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->metrics.gets++;
  impl_->req_get->Increment();
  fs::path path = impl_->PathFor(key);
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("object not found: " + key);
  in.seekg(0, std::ios::end);
  uint64_t size = static_cast<uint64_t>(in.tellg());
  if (offset > size) return Status::OutOfRange("offset beyond object size");
  uint64_t n = std::min<uint64_t>(len, size - offset);
  std::string out(static_cast<size_t>(n), '\0');
  in.seekg(static_cast<std::streamoff>(offset));
  in.read(out.data(), static_cast<std::streamsize>(n));
  if (!in) return Status::IOError("short read: " + key);
  impl_->metrics.bytes_read += n;
  impl_->reg_bytes_read->Increment(n);
  impl_->RecordDc("get", key, n, 0, true);
  return out;
}

Result<std::vector<ObjectMeta>> PosixObjectStore::List(
    const std::string& prefix) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->metrics.lists++;
  impl_->req_list->Increment();
  std::vector<ObjectMeta> out;
  std::error_code ec;
  for (const auto& entry :
       fs::recursive_directory_iterator(impl_->root, ec)) {
    if (!entry.is_regular_file()) continue;
    std::string name = entry.path().filename().string();
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      continue;
    }
    std::string key = Impl::Unescape(name);
    if (key.compare(0, prefix.size(), prefix) != 0) continue;
    out.push_back(
        ObjectMeta{key, static_cast<uint64_t>(entry.file_size())});
  }
  std::sort(out.begin(), out.end(),
            [](const ObjectMeta& a, const ObjectMeta& b) {
              return a.key < b.key;
            });
  impl_->RecordDc("list", prefix, 0, 0, true);
  return out;
}

Status PosixObjectStore::Delete(const std::string& key) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  const int64_t t0 = Impl::WallMicros();
  impl_->metrics.deletes++;
  impl_->req_delete->Increment();
  fs::path path = impl_->PathFor(key);
  std::error_code ec;
  const bool removed = fs::remove(path, ec);
  impl_->RecordDc("delete", key, 0, Impl::WallMicros() - t0, removed);
  if (!removed) {
    return Status::NotFound("object not found: " + key);
  }
  return Status::OK();
}

Status PosixObjectStore::ScanObject(const ScanObjectRequest& request,
                                    ScanObjectResponse* response) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  const int64_t t0 = Impl::WallMicros();
  // Raw reads are local disk I/O next to the data: unmetered (the scan
  // response is the only thing that crosses the store's interface).
  auto reader = [this](const std::string& key) -> Result<std::string> {
    fs::path path = impl_->PathFor(key);
    std::ifstream in(path, std::ios::binary);
    if (!in) return Status::NotFound("object not found: " + key);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  };
  Status result = ExecuteObjectScan(reader, request, response);
  impl_->metrics.scans++;
  if (result.ok()) {
    impl_->metrics.bytes_read += response->response_bytes;
    impl_->metrics.bytes_scanned += response->bytes_scanned;
    impl_->reg_bytes_read->Increment(response->response_bytes);
  }
  obs::DcStoreRequest e;
  e.store = impl_->name;
  e.at_micros = Impl::WallMicros();
  e.op = "scan";
  e.key = request.base_key;
  e.bytes = result.ok() ? response->response_bytes : 0;
  e.bytes_scanned = result.ok() ? response->bytes_scanned : 0;
  e.latency_micros = Impl::WallMicros() - t0;
  e.ok = result.ok();
  obs::DataCollector::Default()->RecordStoreRequest(std::move(e));
  return result;
}

ObjectStoreMetrics PosixObjectStore::metrics() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->metrics;
}

void PosixObjectStore::ResetForTest() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->metrics = ObjectStoreMetrics{};
}

const std::string& PosixObjectStore::root() const { return impl_->root; }

}  // namespace eon
