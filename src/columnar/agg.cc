#include "columnar/agg.h"

namespace eon {

const char* AggFnName(AggFn fn) {
  switch (fn) {
    case AggFn::kCount: return "count";
    case AggFn::kSum: return "sum";
    case AggFn::kMin: return "min";
    case AggFn::kMax: return "max";
    case AggFn::kAvg: return "avg";
    case AggFn::kCountDistinct: return "count_distinct";
  }
  return "?";
}

}  // namespace eon
