#ifndef EON_ENGINE_TRACE_H_
#define EON_ENGINE_TRACE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/result.h"
#include "obs/profile.h"
#include "obs/trace.h"

namespace eon {

class EonCluster;

/// Engine-side glue between the pure obs tracing primitives and the
/// cluster: minting a query's TraceContext at the outermost boundary
/// (serving layer, or ExecuteQuery itself for direct callers), deciding
/// retention when the query finishes, and routing retained spans into
/// each node's Data Collector ring (dc_trace_spans).

/// Owns one query's trace from mint to flush. Constructed at the
/// outermost layer that sees the query (wire dispatch > SessionManager >
/// ExecuteQuery — inner layers skip minting when a TraceScope is already
/// live on the thread) and finished exactly once with the query's
/// profile. Inert when the cluster's tracing is disabled and the session
/// did not force tracing, so the off-path costs two branches.
class QueryTraceGuard {
 public:
  QueryTraceGuard() = default;
  /// `root_name` is the root span's label ("session" at the serving
  /// boundary, "query" for direct execution); `force` retains the trace
  /// regardless of sampling or slow-query policy (`\set trace on`).
  QueryTraceGuard(EonCluster* cluster, const std::string& root_name,
                  bool force);
  QueryTraceGuard(QueryTraceGuard&&) = default;
  QueryTraceGuard& operator=(QueryTraceGuard&&) = default;
  QueryTraceGuard(const QueryTraceGuard&) = delete;
  QueryTraceGuard& operator=(const QueryTraceGuard&) = delete;
  /// An unfinished guard (error path) ends the root and discards.
  ~QueryTraceGuard() = default;

  bool active() const { return context_.active(); }
  uint64_t trace_id() const { return context_.trace_id; }
  /// Context to install with an obs::TraceScope (children parent under
  /// the root span).
  const obs::TraceContext& context() const { return context_; }
  /// The still-open root span (attributes).
  obs::Span& root() { return root_; }

  /// End the root span, decide retention — forced, sampled (cluster
  /// trace_sample), or slow (profile sim total at or past the
  /// coordinator collector's slow-query threshold) — and flush the span
  /// tree into the per-node DC rings. Returns the trace id when
  /// retained, 0 otherwise.
  uint64_t Finish(const obs::QueryProfile& profile);

 private:
  EonCluster* cluster_ = nullptr;
  obs::TraceContext context_;
  obs::Span root_;
  bool forced_ = false;
  bool finished_ = false;
};

/// All retained spans of `trace_id` across every node's collector (plus
/// the process-default collector), oldest first. Empty when the trace
/// was not retained or already fell off the rings.
std::vector<obs::SpanData> CollectTraceSpans(EonCluster* cluster,
                                             uint64_t trace_id);

/// Chrome trace-event JSON for `trace_id` with the latency-attribution
/// rollup attached under "attribution" (chrome://tracing and Perfetto
/// ignore unknown top-level keys). NotFound when no spans survive.
Result<JsonValue> ExportTraceJson(EonCluster* cluster, uint64_t trace_id);

/// ExportTraceJson to a file (bench sidecars: `<figure>.trace.json`).
Status WriteQueryTraceJsonFile(const std::string& path, EonCluster* cluster,
                               uint64_t trace_id);

}  // namespace eon

#endif  // EON_ENGINE_TRACE_H_
