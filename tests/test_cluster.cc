// Unit tests for cluster operations: subscription state machine,
// distributed commit invariants, failure/recovery, file reaping, revive.

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "engine/ddl.h"
#include "engine/dml.h"
#include "engine/session.h"
#include "storage/sim_object_store.h"

namespace eon {
namespace {

class ClusterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SimStoreOptions sopts;
    sopts.get_latency_micros = 0;
    sopts.put_latency_micros = 0;
    sopts.list_latency_micros = 0;
    sopts.delete_latency_micros = 0;
    store_ = std::make_unique<SimObjectStore>(sopts, &clock_);
    MakeCluster(4, 3, 2);
  }

  void MakeCluster(int nodes, uint32_t shards, int k) {
    ClusterOptions copts;
    copts.num_shards = shards;
    copts.k_safety = k;
    std::vector<NodeSpec> specs;
    for (int i = 1; i <= nodes; ++i) {
      specs.push_back(NodeSpec{"node" + std::to_string(i), ""});
    }
    auto cluster = EonCluster::Create(store_.get(), &clock_, copts, specs);
    ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
    cluster_ = std::move(cluster).value();
  }

  /// Small table + data so subscriptions have something to carry.
  void LoadSomething() {
    ASSERT_TRUE(CreateTable(cluster_.get(), "t",
                            Schema({{"id", DataType::kInt64},
                                    {"v", DataType::kDouble}}),
                            std::nullopt,
                            {ProjectionSpec{"t_super", {}, {"id"}, {"id"}}})
                    .ok());
    std::vector<Row> rows;
    for (int64_t i = 0; i < 500; ++i) {
      rows.push_back(Row{Value::Int(i), Value::Dbl(i * 0.5)});
    }
    ASSERT_TRUE(CopyInto(cluster_.get(), "t", rows).ok());
  }

  int64_t CountT() {
    EonSession session(cluster_.get());
    QuerySpec q;
    q.scan.table = "t";
    q.scan.columns = {"id"};
    q.aggregates = {{AggFn::kCount, "", "n"}};
    auto r = session.Execute(q);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? r->rows[0][0].int_value() : -1;
  }

  SimClock clock_;
  std::unique_ptr<SimObjectStore> store_;
  std::unique_ptr<EonCluster> cluster_;
};

TEST_F(ClusterTest, BootstrapLayoutIsKSafe) {
  auto snapshot = cluster_->node(1)->catalog()->snapshot();
  for (ShardId s = 0; s < 3; ++s) {
    auto subs = snapshot->SubscribersOf(s, {SubscriptionState::kActive});
    EXPECT_GE(subs.size(), 2u) << "shard " << s;
  }
  // All nodes share one consistent catalog version.
  for (const auto& n : cluster_->nodes()) {
    EXPECT_EQ(n->catalog()->version(),
              cluster_->node(1)->catalog()->version());
  }
}

TEST_F(ClusterTest, SubscriptionLifecycle) {
  LoadSomething();
  // Find a (node, shard) pair not yet subscribed.
  auto snapshot = cluster_->node(1)->catalog()->snapshot();
  Oid node = 0;
  ShardId shard = 0;
  bool found = false;
  for (const auto& n : cluster_->nodes()) {
    for (ShardId s = 0; s < 3 && !found; ++s) {
      if (snapshot->FindSubscription(n->oid(), s) == nullptr) {
        node = n->oid();
        shard = s;
        found = true;
      }
    }
  }
  ASSERT_TRUE(found);

  ASSERT_TRUE(cluster_->SubscribeNode(node, shard).ok());
  snapshot = cluster_->node(1)->catalog()->snapshot();
  const Subscription* sub = snapshot->FindSubscription(node, shard);
  ASSERT_NE(sub, nullptr);
  EXPECT_EQ(sub->state, SubscriptionState::kActive);
  // Metadata transfer happened: the node's catalog now has the shard's
  // containers.
  bool has_meta = false;
  auto node_snapshot = cluster_->node(node)->catalog()->snapshot();
  for (const auto& [oid, c] : node_snapshot->containers) {
    if (c.shard == shard) has_meta = true;
  }
  EXPECT_TRUE(has_meta);

  // Unsubscribe drops the metadata again.
  ASSERT_TRUE(cluster_->UnsubscribeNode(node, shard).ok());
  snapshot = cluster_->node(1)->catalog()->snapshot();
  EXPECT_EQ(snapshot->FindSubscription(node, shard), nullptr);
  node_snapshot = cluster_->node(node)->catalog()->snapshot();
  for (const auto& [oid, c] : node_snapshot->containers) {
    EXPECT_NE(c.shard, shard);
  }
}

TEST_F(ClusterTest, UnsubscribeRefusesToBreakFaultTolerance) {
  auto snapshot = cluster_->node(1)->catalog()->snapshot();
  // Shard 0 has exactly k=2 ACTIVE subscribers at bootstrap; dropping one
  // would leave 1 < k... the gate requires k-1 others, so dropping one of
  // two (leaving one) is allowed; dropping the second is not.
  auto subs = snapshot->SubscribersOf(0, {SubscriptionState::kActive});
  ASSERT_EQ(subs.size(), 2u);
  ASSERT_TRUE(cluster_->UnsubscribeNode(subs[0], 0).ok());
  Status second = cluster_->UnsubscribeNode(subs[1], 0);
  EXPECT_TRUE(second.IsUnavailable()) << second.ToString();
  // The subscription remains (in REMOVING) and keeps serving.
  snapshot = cluster_->node(1)->catalog()->snapshot();
  EXPECT_NE(snapshot->FindSubscription(subs[1], 0), nullptr);
}

TEST_F(ClusterTest, CommitAbortsWhenSubscriptionSneaksIn) {
  LoadSomething();
  auto snapshot = cluster_->node(1)->catalog()->snapshot();

  // Plan a transaction against the current subscriber set of shard 0.
  std::map<ShardId, std::set<Oid>> observed;
  for (Oid n : snapshot->SubscribersOf(
           0, {SubscriptionState::kActive, SubscriptionState::kPassive,
               SubscriptionState::kPending, SubscriptionState::kRemoving})) {
    observed[0].insert(n);
  }

  // A new subscriber sneaks in before commit.
  Oid newcomer = 0;
  for (const auto& n : cluster_->nodes()) {
    if (!observed[0].count(n->oid())) newcomer = n->oid();
  }
  ASSERT_NE(newcomer, 0u);
  ASSERT_TRUE(cluster_->SubscribeNode(newcomer, 0).ok());

  CatalogTxn txn;
  StorageContainerMeta c;
  c.oid = cluster_->node(1)->catalog()->NextOid();
  c.projection_oid = 1;
  c.shard = 0;
  c.base_key = "data/sneak";
  c.num_columns = 1;
  txn.PutContainer(c);
  auto v = cluster_->CommitDistributed(1, txn, &observed);
  EXPECT_TRUE(v.status().IsAborted()) << v.status().ToString();
}

TEST_F(ClusterTest, DownNodeMissesCommitsThenCatchesUp) {
  LoadSomething();
  ASSERT_TRUE(cluster_->KillNode(4).ok());
  const uint64_t down_version = cluster_->node(4)->catalog()->version();

  std::vector<Row> more;
  for (int64_t i = 500; i < 600; ++i) {
    more.push_back(Row{Value::Int(i), Value::Dbl(0)});
  }
  ASSERT_TRUE(CopyInto(cluster_.get(), "t", more).ok());
  EXPECT_EQ(cluster_->node(4)->catalog()->version(), down_version);

  ASSERT_TRUE(cluster_->RestartNode(4).ok());
  EXPECT_EQ(cluster_->node(4)->catalog()->version(),
            cluster_->node(1)->catalog()->version());
  EXPECT_EQ(CountT(), 600);
}

TEST_F(ClusterTest, InstanceLossRebuildsFromPeer) {
  LoadSomething();
  ASSERT_TRUE(cluster_->DestroyNodeInstance(2).ok());
  EXPECT_EQ(cluster_->node(2)->catalog()->version(), 0u);
  EXPECT_EQ(cluster_->node(2)->cache()->file_count(), 0u);

  ASSERT_TRUE(cluster_->RecoverDestroyedNode(2).ok());
  EXPECT_EQ(cluster_->node(2)->catalog()->version(),
            cluster_->node(1)->catalog()->version());
  // Its shard metadata is back.
  auto snapshot = cluster_->node(2)->catalog()->snapshot();
  std::set<ShardId> shards = cluster_->node(2)->SubscribedShards(
      {SubscriptionState::kActive});
  EXPECT_FALSE(shards.empty());
  // And the cache was warmed from a peer.
  EXPECT_GT(cluster_->node(2)->cache()->file_count(), 0u);
  EXPECT_EQ(CountT(), 500);
}

TEST_F(ClusterTest, ViabilityShutdownOnQuorumLoss) {
  EXPECT_TRUE(cluster_->IsViable());
  ASSERT_TRUE(cluster_->KillNode(1).ok());
  EXPECT_TRUE(cluster_->IsViable());
  ASSERT_TRUE(cluster_->KillNode(2).ok());
  // 2 of 4 up = no majority: automatic shutdown (Section 3.4).
  EXPECT_FALSE(cluster_->IsViable());
  EXPECT_TRUE(cluster_->is_shutdown());
  CatalogTxn txn;
  EXPECT_TRUE(cluster_->CommitDistributed(3, txn).status().IsUnavailable());
}

TEST_F(ClusterTest, NewInstanceIdAfterRestart) {
  const NodeInstanceId before = cluster_->node(3)->instance_id();
  ASSERT_TRUE(cluster_->KillNode(3).ok());
  ASSERT_TRUE(cluster_->RestartNode(3).ok());
  EXPECT_NE(cluster_->node(3)->instance_id(), before);
}

TEST_F(ClusterTest, ReaperWaitsForQueriesAndTruncation) {
  LoadSomething();
  // Collect the table's file keys, then drop them via a fake commit.
  auto snapshot = cluster_->node(1)->catalog()->snapshot();
  std::vector<std::string> keys;
  for (const auto& [oid, c] : snapshot->containers) {
    for (uint64_t col = 0; col < c.num_columns; ++col) {
      keys.push_back(c.base_key + "_c" + std::to_string(col));
    }
  }
  ASSERT_FALSE(keys.empty());
  const uint64_t drop_version = cluster_->node(1)->catalog()->version();

  // A long-running query pins an older version on node 1.
  cluster_->node(1)->RegisterQuery(drop_version - 1);
  cluster_->TrackDroppedFiles(keys, drop_version);
  // Caches dropped immediately...
  EXPECT_FALSE(cluster_->node(1)->cache()->Contains(keys[0]));

  // ...but shared storage is untouched while the query runs.
  auto reaped = cluster_->ReapFiles();
  ASSERT_TRUE(reaped.ok());
  EXPECT_EQ(*reaped, 0u);
  EXPECT_TRUE(*store_->Exists(keys[0]));

  cluster_->node(1)->UnregisterQuery(drop_version - 1);
  // Still blocked: the dropping transaction is not durable yet.
  reaped = cluster_->ReapFiles();
  ASSERT_TRUE(reaped.ok());
  EXPECT_EQ(*reaped, 0u);

  ASSERT_TRUE(cluster_->SyncAll(true).ok());
  ASSERT_TRUE(cluster_->UpdateClusterInfo().ok());
  ASSERT_GE(cluster_->last_truncation_version(), drop_version);
  reaped = cluster_->ReapFiles();
  ASSERT_TRUE(reaped.ok());
  EXPECT_EQ(*reaped, keys.size());
  EXPECT_FALSE(*store_->Exists(keys[0]));
}

TEST_F(ClusterTest, LeakedFileCleanup) {
  LoadSomething();
  // Simulate a crash leak: a file written by a *dead* instance that no
  // catalog references.
  StorageId leaked;
  leaked.instance = NodeInstanceId::Generate(987, 654);
  leaked.local_id = 1;
  const std::string leaked_key = "data/" + leaked.ToString();
  ASSERT_TRUE(store_->Put(leaked_key, "orphan").ok());

  // A file minted by a LIVE instance must be ignored (may be mid-load).
  const std::string inflight_key =
      cluster_->node(1)->MintStorageKey("data/");
  ASSERT_TRUE(store_->Put(inflight_key, "in flight").ok());

  auto cleaned = cluster_->CleanLeakedFiles();
  ASSERT_TRUE(cleaned.ok()) << cleaned.status().ToString();
  EXPECT_EQ(*cleaned, 1u);
  EXPECT_FALSE(*store_->Exists(leaked_key));
  EXPECT_TRUE(*store_->Exists(inflight_key));
  // Referenced table data untouched.
  auto snapshot = cluster_->node(1)->catalog()->snapshot();
  for (const auto& [oid, c] : snapshot->containers) {
    EXPECT_TRUE(*store_->Exists(c.base_key + "_c0"));
  }
}

TEST_F(ClusterTest, RebalanceAfterClusterGrowth) {
  LoadSomething();
  // "Add" nodes by registering them in the catalog... our fixture has a
  // fixed node set, so instead verify rebalance is a no-op on a balanced
  // cluster and repairs dropped coverage.
  auto snapshot = cluster_->node(1)->catalog()->snapshot();
  auto subs0 = snapshot->SubscribersOf(0, {SubscriptionState::kActive});
  ASSERT_EQ(subs0.size(), 2u);
  ASSERT_TRUE(cluster_->UnsubscribeNode(subs0[0], 0).ok());
  snapshot = cluster_->node(1)->catalog()->snapshot();
  EXPECT_EQ(snapshot->SubscribersOf(0, {SubscriptionState::kActive}).size(),
            1u);

  ASSERT_TRUE(cluster_->Rebalance().ok());
  snapshot = cluster_->node(1)->catalog()->snapshot();
  EXPECT_GE(snapshot->SubscribersOf(0, {SubscriptionState::kActive}).size(),
            2u);
}

TEST_F(ClusterTest, CreateRejectsZeroShards) {
  ClusterOptions bad;
  bad.num_shards = 0;
  EXPECT_TRUE(EonCluster::Create(store_.get(), &clock_, bad,
                                 {NodeSpec{"n", ""}})
                  .status()
                  .IsInvalidArgument());
}

TEST_F(ClusterTest, MinRunningQueryVersionIsMonotone) {
  Node* node = cluster_->node(1);
  node->RegisterQuery(5);
  EXPECT_EQ(node->MinRunningQueryVersion(), 5u);
  node->UnregisterQuery(5);
  // Idle: reports current catalog version, never less than before.
  uint64_t idle = node->MinRunningQueryVersion();
  EXPECT_GE(idle, 5u);
  node->RegisterQuery(3);  // Older registration cannot move the gossip back.
  EXPECT_GE(node->MinRunningQueryVersion(), idle);
  node->UnregisterQuery(3);
}

}  // namespace
}  // namespace eon

namespace eon {
namespace {

TEST_F(ClusterTest, CommitAbortsWhenParticipantUnsubscribes) {
  LoadSomething();
  auto snapshot = cluster_->node(1)->catalog()->snapshot();
  const std::set<SubscriptionState> all_states = {
      SubscriptionState::kPending, SubscriptionState::kPassive,
      SubscriptionState::kActive, SubscriptionState::kRemoving};

  std::map<ShardId, std::set<Oid>> observed;
  auto subs = snapshot->SubscribersOf(0, all_states);
  for (Oid n : subs) observed[0].insert(n);
  ASSERT_GE(subs.size(), 2u);

  // One observed subscriber drops out before commit (Section 4.5).
  ASSERT_TRUE(cluster_->UnsubscribeNode(subs[0], 0).ok());

  CatalogTxn txn;
  StorageContainerMeta c;
  c.oid = cluster_->node(1)->catalog()->NextOid();
  c.projection_oid = 1;
  c.shard = 0;
  c.base_key = "data/unsub";
  c.num_columns = 1;
  txn.PutContainer(c);
  auto v = cluster_->CommitDistributed(1, txn, &observed);
  EXPECT_TRUE(v.status().IsAborted()) << v.status().ToString();
}

}  // namespace
}  // namespace eon
