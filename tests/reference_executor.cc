#include "tests/reference_executor.h"

#include <cmath>
#include <cstdio>

namespace eon {
namespace testing_support {

namespace {

/// Engine name-resolution mirror: requested columns + extras, deduped.
std::vector<std::string> ResolveNames(const std::vector<std::string>& base,
                                      const std::vector<std::string>& extras) {
  std::vector<std::string> out;
  std::set<std::string> seen;
  for (const std::string& c : base) {
    if (seen.insert(c).second) out.push_back(c);
  }
  for (const std::string& c : extras) {
    if (seen.insert(c).second) out.push_back(c);
  }
  return out;
}

struct AggAccum {
  int64_t count = 0;
  double sum = 0;
  int64_t sum_int = 0;
  bool sum_is_int = true;
  Value min, max;
  std::set<Value> distinct;
};

}  // namespace

Result<std::vector<Row>> ReferenceExecute(const RefDatabase& db,
                                          const QuerySpec& spec) {
  auto left_it = db.find(spec.scan.table);
  if (left_it == db.end()) {
    return Status::NotFound("no such table: " + spec.scan.table);
  }
  const RefTable& left_table = left_it->second;

  // --- Name resolution, mirroring the engine. ---
  std::vector<std::string> left_extras;
  if (spec.join) left_extras.push_back(spec.join->left_key);
  for (const std::string& g : spec.group_by) left_extras.push_back(g);
  for (const AggSpec& a : spec.aggregates) {
    if (!a.column.empty()) left_extras.push_back(a.column);
  }
  if (spec.join) {
    std::vector<std::string> filtered;
    for (const std::string& name : left_extras) {
      if (left_table.schema.IndexOf(name).ok()) filtered.push_back(name);
    }
    left_extras = std::move(filtered);
  }
  const std::vector<std::string> left_names =
      ResolveNames(spec.scan.columns, left_extras);

  std::vector<size_t> left_cols;
  for (const std::string& name : left_names) {
    EON_ASSIGN_OR_RETURN(size_t idx, left_table.schema.IndexOf(name));
    left_cols.push_back(idx);
  }

  // --- Scan left. ---
  std::vector<Row> data;
  std::vector<std::string> names = left_names;
  for (const Row& full : left_table.rows) {
    if (spec.scan.predicate && !spec.scan.predicate->Eval(full)) continue;
    Row out;
    out.reserve(left_cols.size());
    for (size_t c : left_cols) out.push_back(full[c]);
    data.push_back(std::move(out));
  }

  // --- Join. ---
  if (spec.join) {
    auto right_it = db.find(spec.join->right.table);
    if (right_it == db.end()) {
      return Status::NotFound("no such table: " + spec.join->right.table);
    }
    const RefTable& right_table = right_it->second;

    std::vector<std::string> right_extras = {spec.join->right_key};
    for (const std::string& g : spec.group_by) {
      if (right_table.schema.IndexOf(g).ok() &&
          std::find(left_names.begin(), left_names.end(), g) ==
              left_names.end()) {
        right_extras.push_back(g);
      }
    }
    const std::vector<std::string> right_names =
        ResolveNames(spec.join->right.columns, right_extras);
    std::vector<size_t> right_cols;
    for (const std::string& name : right_names) {
      EON_ASSIGN_OR_RETURN(size_t idx, right_table.schema.IndexOf(name));
      right_cols.push_back(idx);
    }

    std::vector<Row> right_rows;
    for (const Row& full : right_table.rows) {
      if (spec.join->right.predicate &&
          !spec.join->right.predicate->Eval(full)) {
        continue;
      }
      Row out;
      out.reserve(right_cols.size());
      for (size_t c : right_cols) out.push_back(full[c]);
      right_rows.push_back(std::move(out));
    }

    size_t left_key = SIZE_MAX, right_key = SIZE_MAX;
    for (size_t i = 0; i < names.size(); ++i) {
      if (names[i] == spec.join->left_key) left_key = i;
    }
    for (size_t i = 0; i < right_names.size(); ++i) {
      if (right_names[i] == spec.join->right_key) right_key = i;
    }
    if (left_key == SIZE_MAX || right_key == SIZE_MAX) {
      return Status::InvalidArgument("join key not in scan output");
    }

    std::multimap<Value, const Row*> hash;
    for (const Row& r : right_rows) hash.emplace(r[right_key], &r);
    std::vector<Row> joined;
    for (const Row& l : data) {
      if (l[left_key].is_null()) continue;
      auto [lo, hi] = hash.equal_range(l[left_key]);
      for (auto it = lo; it != hi; ++it) {
        Row out = l;
        out.insert(out.end(), it->second->begin(), it->second->end());
        joined.push_back(std::move(out));
      }
    }
    data = std::move(joined);
    std::set<std::string> taken(names.begin(), names.end());
    for (const std::string& rn : right_names) {
      std::string name = rn;
      if (taken.count(name)) name = spec.join->right.table + "." + name;
      taken.insert(name);
      names.push_back(name);
    }
  }

  // --- Group / aggregate. ---
  std::vector<Row> result;
  if (!spec.aggregates.empty() || !spec.group_by.empty()) {
    std::vector<size_t> group_pos;
    for (const std::string& g : spec.group_by) {
      auto it = std::find(names.begin(), names.end(), g);
      if (it == names.end()) {
        return Status::InvalidArgument("group-by column not in output: " + g);
      }
      group_pos.push_back(static_cast<size_t>(it - names.begin()));
    }
    std::vector<size_t> agg_pos;
    for (const AggSpec& a : spec.aggregates) {
      if (a.column.empty()) {
        agg_pos.push_back(SIZE_MAX);
        continue;
      }
      auto it = std::find(names.begin(), names.end(), a.column);
      if (it == names.end()) {
        return Status::InvalidArgument("aggregate column not in output: " +
                                       a.column);
      }
      agg_pos.push_back(static_cast<size_t>(it - names.begin()));
    }

    struct KeyLess {
      bool operator()(const std::vector<Value>& a,
                      const std::vector<Value>& b) const {
        for (size_t i = 0; i < a.size(); ++i) {
          int c = a[i].Compare(b[i]);
          if (c != 0) return c < 0;
        }
        return false;
      }
    };
    std::map<std::vector<Value>, std::vector<AggAccum>, KeyLess> groups;
    for (const Row& row : data) {
      std::vector<Value> key;
      for (size_t p : group_pos) key.push_back(row[p]);
      auto [it, inserted] =
          groups.try_emplace(key, std::vector<AggAccum>(spec.aggregates.size()));
      for (size_t a = 0; a < spec.aggregates.size(); ++a) {
        AggAccum& acc = it->second[a];
        const AggSpec& as = spec.aggregates[a];
        const Value& v = agg_pos[a] == SIZE_MAX ? row[0] : row[agg_pos[a]];
        switch (as.fn) {
          case AggFn::kCount:
            acc.count++;
            break;
          case AggFn::kSum:
          case AggFn::kAvg:
            if (!v.is_null()) {
              acc.count++;
              acc.sum += v.AsDouble();
              if (v.type() == DataType::kInt64) {
                acc.sum_int += v.int_value();
              } else {
                acc.sum_is_int = false;
              }
            }
            break;
          case AggFn::kMin:
            if (!v.is_null() && (acc.min.is_null() || v.Compare(acc.min) < 0)) {
              acc.min = v;
            }
            break;
          case AggFn::kMax:
            if (!v.is_null() && (acc.max.is_null() || v.Compare(acc.max) > 0)) {
              acc.max = v;
            }
            break;
          case AggFn::kCountDistinct:
            if (!v.is_null()) acc.distinct.insert(v);
            break;
        }
      }
    }
    if (groups.empty() && spec.group_by.empty()) {
      groups.try_emplace({}, std::vector<AggAccum>(spec.aggregates.size()));
    }
    for (const auto& [key, accums] : groups) {
      Row row = key;
      for (size_t a = 0; a < accums.size(); ++a) {
        const AggAccum& acc = accums[a];
        const AggSpec& as = spec.aggregates[a];
        DataType input_type = DataType::kInt64;
        if (agg_pos[a] != SIZE_MAX && !data.empty()) {
          // Infer from any non-null input later; fall back to NULL typing.
        }
        switch (as.fn) {
          case AggFn::kCount:
            row.push_back(Value::Int(acc.count));
            break;
          case AggFn::kSum:
            if (acc.count == 0) {
              row.push_back(Value::Null(input_type));
            } else if (acc.sum_is_int) {
              row.push_back(Value::Int(acc.sum_int));
            } else {
              row.push_back(Value::Dbl(acc.sum));
            }
            break;
          case AggFn::kAvg:
            row.push_back(acc.count == 0
                              ? Value::Null(DataType::kDouble)
                              : Value::Dbl(acc.sum /
                                           static_cast<double>(acc.count)));
            break;
          case AggFn::kMin:
            row.push_back(acc.min);
            break;
          case AggFn::kMax:
            row.push_back(acc.max);
            break;
          case AggFn::kCountDistinct:
            row.push_back(Value::Int(static_cast<int64_t>(acc.distinct.size())));
            break;
        }
      }
      result.push_back(std::move(row));
    }
    // Output names become group cols + aggregate aliases.
    std::vector<std::string> out_names = spec.group_by;
    for (const AggSpec& a : spec.aggregates) {
      out_names.push_back(a.as.empty() ? std::string(AggFnName(a.fn)) + "(" +
                                             a.column + ")"
                                       : a.as);
    }
    names = std::move(out_names);
  } else {
    result = std::move(data);
  }

  // --- Order / limit. ---
  if (spec.order_by) {
    auto it = std::find(names.begin(), names.end(), *spec.order_by);
    if (it == names.end()) {
      return Status::InvalidArgument("order-by column not in output: " +
                                     *spec.order_by);
    }
    const size_t pos = static_cast<size_t>(it - names.begin());
    std::stable_sort(result.begin(), result.end(),
                     [&](const Row& a, const Row& b) {
                       int c = a[pos].Compare(b[pos]);
                       return spec.order_desc ? c > 0 : c < 0;
                     });
  }
  if (spec.limit >= 0 && result.size() > static_cast<size_t>(spec.limit)) {
    result.resize(static_cast<size_t>(spec.limit));
  }
  return result;
}

namespace {

std::string NormalizeValue(const Value& v) {
  if (v.is_null()) return "<null>";
  switch (v.type()) {
    case DataType::kInt64:
      return "i" + std::to_string(v.int_value());
    case DataType::kDouble: {
      char buf[64];
      snprintf(buf, sizeof(buf), "d%.9g", v.dbl_value());
      return buf;
    }
    case DataType::kString:
      return "s" + v.str_value();
  }
  return "?";
}

std::vector<std::string> Canonical(const std::vector<Row>& rows) {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const Row& r : rows) {
    std::string line;
    for (const Value& v : r) {
      line += NormalizeValue(v);
      line += "|";
    }
    out.push_back(std::move(line));
  }
  return out;
}

}  // namespace

bool SameResults(const std::vector<Row>& a, const std::vector<Row>& b,
                 bool ordered, std::string* diff) {
  std::vector<std::string> ca = Canonical(a);
  std::vector<std::string> cb = Canonical(b);
  if (!ordered) {
    std::sort(ca.begin(), ca.end());
    std::sort(cb.begin(), cb.end());
  }
  if (ca.size() != cb.size()) {
    if (diff) {
      *diff = "row count " + std::to_string(ca.size()) + " vs " +
              std::to_string(cb.size());
    }
    return false;
  }
  for (size_t i = 0; i < ca.size(); ++i) {
    if (ca[i] != cb[i]) {
      if (diff) *diff = "row " + std::to_string(i) + ": " + ca[i] + " vs " + cb[i];
      return false;
    }
  }
  return true;
}

}  // namespace testing_support
}  // namespace eon
