#ifndef EON_STORAGE_OBJECT_STORE_H_
#define EON_STORAGE_OBJECT_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "obs/metrics.h"

namespace eon {

/// Metadata returned by List.
struct ObjectMeta {
  std::string key;
  uint64_t size = 0;
};

/// Per-store operation counters. The simulated S3 additionally accounts a
/// dollar cost per request class, because "requests cost money" (paper
/// Section 5.3) is part of the design pressure on the cache.
///
/// Stores also mirror these counts onto obs::MetricsRegistry instruments
/// (labels: store=<kind>/<name>), so one exported snapshot carries every
/// backend; this struct remains the cheap per-instance accessor.
struct ObjectStoreMetrics {
  uint64_t puts = 0;
  uint64_t gets = 0;
  uint64_t lists = 0;
  uint64_t deletes = 0;
  /// Near-data ScanObject requests served store-side.
  uint64_t scans = 0;
  uint64_t bytes_written = 0;
  /// Bytes that crossed the store's interface toward clients (object
  /// payloads for Get/ReadRange, response payloads for ScanObject).
  uint64_t bytes_read = 0;
  /// Column-file bytes ScanObject read locally (never shipped): the
  /// bytes_read savings near-data processing bought.
  uint64_t bytes_scanned = 0;
  uint64_t failures_injected = 0;
  uint64_t throttled = 0;

  /// Estimated request cost in micro-dollars (S3-style pricing knobs).
  uint64_t cost_microdollars = 0;
};

/// Near-data scan request/response (columnar/ndp.h). Declared here so the
/// storage API can carry them by reference without the storage layer
/// depending on columnar headers at declaration time.
struct ScanObjectRequest;
struct ScanObjectResponse;

/// The UDFS storage abstraction (paper Section 5.3, Figure 9). Vertica's
/// execution engine accesses all filesystems through this API; we provide
/// in-memory, simulated-S3, and POSIX backends.
///
/// Semantics follow shared object storage, not POSIX:
///  - objects are immutable: no append, no rename, no overwrite (Put of an
///    existing key fails with AlreadyExists);
///  - existence checks go through List with a key prefix, never a HEAD
///    (avoids S3's eventual-consistency-after-HEAD trap, Section 5.3);
///  - any operation may fail transiently; callers that need reliability
///    wrap the store in RetryingObjectStore.
///
/// Implementations must be thread-safe.
class ObjectStore {
 public:
  virtual ~ObjectStore() = default;

  /// Create a new immutable object.
  virtual Status Put(const std::string& key, const std::string& data) = 0;

  /// Read a whole object.
  virtual Result<std::string> Get(const std::string& key) = 0;

  /// Read `len` bytes at `offset`. Short reads at end-of-object are OK and
  /// return the available bytes; offset beyond the object is OutOfRange.
  virtual Result<std::string> ReadRange(const std::string& key,
                                        uint64_t offset, uint64_t len) = 0;

  /// List all objects whose key starts with `prefix`, sorted by key.
  virtual Result<std::vector<ObjectMeta>> List(const std::string& prefix) = 0;

  /// Delete an object. Deleting a missing key returns NotFound.
  virtual Status Delete(const std::string& key) = 0;

  /// Near-data scan (S3-Select-shaped): evaluate a predicate — and
  /// optionally fold partial aggregates — against one ROS container's
  /// column files WHERE THEY LIVE, returning only survivors. Backends that
  /// can compute next to the data override this; the default refuses with
  /// NotSupported and callers fall back to fetching whole files.
  virtual Status ScanObject(const ScanObjectRequest& request,
                            ScanObjectResponse* response);

  /// Existence via List-with-prefix (the paper's strongly consistent
  /// idiom). List returns keys sorted, so an exact match — when present —
  /// is the first entry: one comparison, not a linear walk of everything
  /// under the prefix.
  Result<bool> Exists(const std::string& key);

  /// Size of an object via List (same first-entry early-out as Exists).
  Result<uint64_t> Size(const std::string& key);

  virtual ObjectStoreMetrics metrics() const = 0;

  /// Zero this store's per-instance counters so differential tests can
  /// assert exact request counts for one operation instead of depending
  /// on accumulated global totals. Registry-mirrored instruments stay
  /// monotone (Prometheus contract); use MetricsSnapshot::Delta for
  /// registry-level differences.
  virtual void ResetForTest() {}
};

/// Plain in-memory object store: the reference implementation and the
/// backing tier under SimObjectStore.
class MemObjectStore : public ObjectStore {
 public:
  MemObjectStore();
  ~MemObjectStore() override;

  Status Put(const std::string& key, const std::string& data) override;
  Result<std::string> Get(const std::string& key) override;
  Result<std::string> ReadRange(const std::string& key, uint64_t offset,
                                uint64_t len) override;
  Result<std::vector<ObjectMeta>> List(const std::string& prefix) override;
  Status Delete(const std::string& key) override;
  Status ScanObject(const ScanObjectRequest& request,
                    ScanObjectResponse* response) override;
  ObjectStoreMetrics metrics() const override;
  void ResetForTest() override;

  /// Unmetered whole-object read: the near-data scan engine's local I/O
  /// path (reads that never cross the store's interface).
  Result<std::string> RawRead(const std::string& key) const;

  /// Total bytes stored (for tests and capacity reports).
  uint64_t TotalBytes() const;
  /// Number of objects stored.
  uint64_t ObjectCount() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace eon

#endif  // EON_STORAGE_OBJECT_STORE_H_
