#ifndef EON_COMMON_JSON_H_
#define EON_COMMON_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"

namespace eon {

/// Minimal JSON document model, sufficient for `cluster_info.json` (paper
/// Section 3.5) and bench output. Supports null, bool, int64, double,
/// string, array, object. Keys in objects keep sorted order for
/// deterministic serialization.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  JsonValue() : type_(Type::kNull) {}
  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b);
  static JsonValue Int(int64_t v);
  static JsonValue Double(double v);
  static JsonValue Str(std::string s);
  static JsonValue Array();
  static JsonValue Object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }

  bool bool_value() const { return bool_; }
  int64_t int_value() const { return int_; }
  double double_value() const;
  const std::string& string_value() const { return str_; }

  /// Array ops.
  void Append(JsonValue v);
  size_t size() const { return arr_.size(); }
  const JsonValue& at(size_t i) const { return arr_[i]; }

  /// Object ops. Get returns null value when absent; Has checks presence.
  void Set(const std::string& key, JsonValue v);
  bool Has(const std::string& key) const;
  const JsonValue& Get(const std::string& key) const;

  /// Serialize to compact JSON text.
  std::string Dump() const;

  /// Parse JSON text.
  static Result<JsonValue> Parse(const std::string& text);

 private:
  Type type_;
  bool bool_ = false;
  int64_t int_ = 0;
  double dbl_ = 0;
  std::string str_;
  std::vector<JsonValue> arr_;
  std::map<std::string, JsonValue> obj_;
};

}  // namespace eon

#endif  // EON_COMMON_JSON_H_
