#include "columnar/batch.h"

#include "columnar/kernels.h"

namespace eon {

ColumnBatch ColumnBatch::FromValues(DataType type,
                                    const std::vector<Value>& values) {
  ColumnBatch b(type);
  b.Reserve(values.size());
  for (const Value& v : values) b.AppendValue(v);
  return b;
}

ColumnBatch ColumnBatch::FromRows(const std::vector<Row>& rows, size_t col,
                                  DataType type) {
  ColumnBatch b(type);
  b.Reserve(rows.size());
  for (const Row& row : rows) b.AppendValue(row[col]);
  return b;
}

void ColumnBatch::Reset(DataType type) {
  type_ = type;
  size_ = 0;
  ints_.clear();
  dbls_.clear();
  strs_.clear();
  valid_.clear();
}

void ColumnBatch::Reserve(size_t n) {
  switch (type_) {
    case DataType::kInt64:
      ints_.reserve(n);
      break;
    case DataType::kDouble:
      dbls_.reserve(n);
      break;
    case DataType::kString:
      strs_.reserve(n);
      break;
  }
}

void ColumnBatch::MaterializeValidity() {
  if (!valid_.empty()) return;
  valid_.assign((size_ + 64) / 64, ~uint64_t{0});
  // Clear the bits past size_ so whole-word consumers see exact state.
  const size_t tail = size_ & 63;
  if (tail != 0) valid_.back() = (uint64_t{1} << tail) - 1;
}

void ColumnBatch::AppendValue(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return;
  }
  switch (type_) {
    case DataType::kInt64:
      AppendInt(v.int_value());
      break;
    case DataType::kDouble:
      AppendDouble(v.dbl_value());
      break;
    case DataType::kString:
      AppendString(v.str_value());
      break;
  }
}

void ColumnBatch::AppendInt(int64_t v) {
  ints_.push_back(v);
  ++size_;
  if (!valid_.empty()) {
    if (size_ > valid_.size() * 64) valid_.push_back(0);
    valid_[(size_ - 1) >> 6] |= uint64_t{1} << ((size_ - 1) & 63);
  }
}

void ColumnBatch::AppendDouble(double v) {
  dbls_.push_back(v);
  ++size_;
  if (!valid_.empty()) {
    if (size_ > valid_.size() * 64) valid_.push_back(0);
    valid_[(size_ - 1) >> 6] |= uint64_t{1} << ((size_ - 1) & 63);
  }
}

void ColumnBatch::AppendString(std::string v) {
  strs_.push_back(std::move(v));
  ++size_;
  if (!valid_.empty()) {
    if (size_ > valid_.size() * 64) valid_.push_back(0);
    valid_[(size_ - 1) >> 6] |= uint64_t{1} << ((size_ - 1) & 63);
  }
}

void ColumnBatch::AppendNull() {
  MaterializeValidity();
  switch (type_) {
    case DataType::kInt64:
      ints_.push_back(0);
      break;
    case DataType::kDouble:
      dbls_.push_back(0.0);
      break;
    case DataType::kString:
      strs_.emplace_back();
      break;
  }
  ++size_;
  if (size_ > valid_.size() * 64) valid_.push_back(0);
  valid_[(size_ - 1) >> 6] &= ~(uint64_t{1} << ((size_ - 1) & 63));
}

Value ColumnBatch::GetValue(size_t i) const {
  EON_CHECK(i < size_);
  if (IsNull(i)) return Value::Null(type_);
  switch (type_) {
    case DataType::kInt64:
      return Value::Int(ints_[i]);
    case DataType::kDouble:
      return Value::Dbl(dbls_[i]);
    case DataType::kString:
      return Value::Str(strs_[i]);
  }
  return Value::Null(type_);
}

BatchSelection BatchSelection::All(size_t row_count) {
  BatchSelection s;
  s.rep_ = Rep::kAll;
  s.row_count_ = row_count;
  s.count_ = row_count;
  return s;
}

BatchSelection BatchSelection::FromMask(const uint8_t* sel, size_t row_count) {
  BatchSelection s;
  s.row_count_ = row_count;
  s.count_ = simd::SelCount(sel, row_count);
  if (s.count_ == row_count) {
    s.rep_ = Rep::kAll;
    return s;
  }
  if (s.count_ * 4 < row_count) {
    s.rep_ = Rep::kIndices;
    s.indices_.resize(s.count_ + 1);  // +1: SelCompact's branchless store.
    s.indices_.resize(simd::SelCompact(sel, row_count, s.indices_.data()));
    return s;
  }
  s.rep_ = Rep::kMask;
  s.mask_.assign(sel, sel + row_count);
  return s;
}

}  // namespace eon
