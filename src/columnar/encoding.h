#ifndef EON_COLUMNAR_ENCODING_H_
#define EON_COLUMNAR_ENCODING_H_

#include <string>
#include <vector>

#include "columnar/batch.h"
#include "columnar/expression.h"
#include "columnar/types.h"
#include "common/result.h"
#include "common/slice.h"

namespace eon {

/// Column chunk encodings. Vertica sorts data and operates directly on
/// encoded values; here we implement the four classic column encodings plus
/// SIMD-BP128-style bit packing and pick automatically per block (sorted
/// data usually compresses well — paper Section 2.1).
enum class Encoding : uint8_t {
  kPlain = 0,        ///< Values back to back.
  kRle = 1,          ///< (run length, value) pairs; great for sorted columns.
  kDict = 2,         ///< Distinct-value dictionary + per-row codes.
  kDeltaVarint = 3,  ///< Zigzag deltas; great for sorted non-null int64.
  /// SIMD-BP128-style: non-null int64 values in 128-value blocks, each
  /// frame-of-reference shifted by the block min and packed at the block's
  /// max bit width (0..64, LSB-first). Nulls are suppressed — they occupy
  /// no packed bits; a leading validity bitmap (present only when the
  /// chunk has nulls) maps packed positions back to rows. Payload:
  ///   [n_valid varint][validity bitmap ceil(count/8)B if n_valid < count]
  ///   per block: [min zigzag-varint][width 1B][packed ceil(len*width/8)B]
  kBitPacked = 4,
};

const char* EncodingName(Encoding e);

/// Encode `values` (all of type `type`) with the given encoding.
/// Format: [encoding:1][count:varint][payload]. Nulls are supported by
/// every encoding. Returns InvalidArgument if the encoding cannot represent
/// the data (kDeltaVarint with nulls or non-int64).
Result<std::string> EncodeChunk(const std::vector<Value>& values,
                                DataType type, Encoding encoding);

/// Decode a chunk produced by EncodeChunk. Appends to `out`.
Status DecodeChunk(Slice data, DataType type, std::vector<Value>* out);

/// Parsed header of an encoded chunk: the encoding tag and row count, with
/// `payload` positioned at the start of the encoding-specific body. Lets
/// the scan inspect a block's representation without decoding it.
struct ChunkView {
  Encoding encoding = Encoding::kPlain;
  uint64_t count = 0;
  Slice payload;
};
Result<ChunkView> ParseChunk(Slice chunk);

/// Selective decode (late materialization): append to `out` only the rows
/// with sel[i] != 0, densely, preserving block order. `sel` must cover
/// `chunk.count` rows; nullptr selects everything. Skipped rows are parsed
/// past (SkipValue — no string allocation) rather than materialized; RLE
/// materializes only the selected copies of each run. `values_decoded`
/// (optional) accumulates the number of Values parsed or materialized —
/// the scan's measure of decode work. Bit-packed chunks skip whole
/// 128-value blocks no selected row maps into (their packed size is
/// computable from the header); `values_unpacked` (optional) accumulates
/// the packed values actually unpacked.
Status DecodeChunkSelected(const ChunkView& chunk, DataType type,
                           const uint8_t* sel, std::vector<Value>* out,
                           uint64_t* values_decoded = nullptr,
                           uint64_t* values_unpacked = nullptr);

/// Decode a full chunk straight into columnar layout. Bit-packed and delta
/// int64 chunks fill the typed array directly; other encodings decode
/// value-wise and append. The batch is reset to `type` first.
Status DecodeChunkToBatch(const ChunkView& chunk, DataType type,
                          ColumnBatch* out,
                          uint64_t* values_unpacked = nullptr);

/// Encoded predicate evaluation: fill sel[0..chunk.count) with the
/// verdicts of `value <op> literal`, evaluating the comparison once per
/// RLE run (verdict fanned across the run length) or once per dictionary
/// entry (translated through the code stream; code 0 = NULL never
/// matches). Bit-packed chunks are screened per 128-value block against
/// the conservative value range [min, min + 2^width - 1] — an all-match
/// or none-match block costs one evaluation and is never unpacked; mixed
/// blocks unpack and run the SIMD compare kernel. Returns false — sel
/// untouched — for encodings without an encoded-eval path (plain, delta,
/// bit-packed over a non-int64 comparison); the caller decodes and
/// evaluates value-wise instead. `values_evaluated` (optional) accumulates
/// the number of comparisons performed; `values_unpacked` the bit-packed
/// values unpacked; `kernel_calls` the SIMD kernel invocations.
Result<bool> EvalChunkCmp(const ChunkView& chunk, DataType type, CmpOp op,
                          const Value& literal, uint8_t* sel,
                          uint64_t* values_evaluated = nullptr,
                          uint64_t* values_unpacked = nullptr,
                          uint64_t* kernel_calls = nullptr);

/// Heuristic auto-selection: delta for sorted non-null ints, RLE for long
/// runs, bit-packing for int64 chunks whose exact per-128-block packed
/// cost (max bit width per block over the sample) is at most half the
/// plain cost, dictionary for low cardinality, otherwise plain. Chunks
/// larger
/// than an exact-scan threshold are sampled (evenly spaced contiguous
/// windows) so write-time statistics cost is bounded per chunk; the
/// writer falls back to kPlain if a sampled choice proves inadmissible
/// (e.g. delta over a null the sample missed).
Encoding ChooseEncoding(const std::vector<Value>& values, DataType type);

}  // namespace eon

#endif  // EON_COLUMNAR_ENCODING_H_
