// Write-optimized-store tests: INSERT fast path through the WAL + WOS,
// union scans vs the flush-then-query oracle (bit-identical across scan
// modes and thread widths), DELETE/UPDATE over WOS-resident rows,
// moveout (threshold, TupleMover sweep, shared-WAL truncation safety),
// crash recovery via WAL replay, and the SQL/session INSERT surface.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "cluster/cluster.h"
#include "engine/ddl.h"
#include "engine/dml.h"
#include "engine/session.h"
#include "engine/sql.h"
#include "engine/system_tables.h"
#include "server/session_manager.h"
#include "storage/sim_object_store.h"
#include "tm/tuple_mover.h"

namespace eon {
namespace {

/// One self-contained cluster (clock + store + nodes) so tests can stand
/// up several side by side (WOS on vs off, width 1 vs 4).
struct Bundle {
  SimClock clock;
  std::unique_ptr<SimObjectStore> store;
  std::unique_ptr<EonCluster> cluster;
};

std::unique_ptr<Bundle> MakeCluster(int exec_threads, int wos,
                                    int64_t flush_rows = int64_t{1} << 40) {
  auto b = std::make_unique<Bundle>();
  SimStoreOptions sopts;
  sopts.get_latency_micros = 0;
  sopts.put_latency_micros = 0;
  sopts.list_latency_micros = 0;
  b->store = std::make_unique<SimObjectStore>(sopts, &b->clock);

  ClusterOptions copts;
  copts.num_shards = 2;
  copts.k_safety = 2;
  copts.exec_threads = exec_threads;
  copts.wos = wos;
  copts.group_commit_micros = 0;  // Flush immediately: deterministic tests.
  copts.wos_flush_rows = flush_rows;
  std::vector<NodeSpec> specs;
  for (int i = 1; i <= 3; ++i) {
    specs.push_back(NodeSpec{"n" + std::to_string(i), ""});
  }
  auto cluster = EonCluster::Create(b->store.get(), &b->clock, copts, specs);
  EXPECT_TRUE(cluster.ok()) << cluster.status().ToString();
  if (!cluster.ok()) return nullptr;
  b->cluster = std::move(cluster).value();

  Schema schema({{"id", DataType::kInt64}, {"v", DataType::kDouble}});
  EXPECT_TRUE(CreateTable(b->cluster.get(), "t", schema, std::nullopt,
                          {ProjectionSpec{"t_super", {}, {"id"}, {"id"}}})
                  .ok());
  return b;
}

std::vector<Row> MakeRows(int64_t from, int64_t n) {
  std::vector<Row> rows;
  for (int64_t i = from; i < from + n; ++i) {
    rows.push_back(Row{Value::Int(i), Value::Dbl(static_cast<double>(i) / 2)});
  }
  return rows;
}

Result<QueryResult> RunQuery(EonCluster* cluster, ScanMode mode,
                        const QuerySpec& spec) {
  EonSession session(cluster);
  session.set_scan_mode(mode);
  return session.Execute(spec);
}

QuerySpec FullScan() {
  QuerySpec q;
  q.scan.table = "t";
  q.scan.columns = {"id", "v"};
  return q;
}

QuerySpec PredScan() {
  QuerySpec q = FullScan();
  q.scan.predicate = Predicate::And(
      Predicate::Cmp(0, CmpOp::kGe, Value::Int(10)),
      Predicate::Cmp(1, CmpOp::kLt, Value::Dbl(27.0)));
  return q;
}

QuerySpec AggQuery() {
  QuerySpec q;
  q.scan.table = "t";
  q.scan.columns = {"id", "v"};
  q.aggregates = {{AggFn::kSum, "id", "s"}, {AggFn::kCount, "", "c"}};
  return q;
}

::testing::AssertionResult RowsIdentical(const std::vector<Row>& a,
                                         const std::vector<Row>& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "row counts differ: " << a.size() << " vs " << b.size();
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].size() != b[i].size()) {
      return ::testing::AssertionFailure() << "arity differs at row " << i;
    }
    for (size_t c = 0; c < a[i].size(); ++c) {
      if (!(a[i][c] == b[i][c])) {
        return ::testing::AssertionFailure()
               << "value differs at row " << i << " col " << c << ": "
               << a[i][c].ToString() << " vs " << b[i][c].ToString();
      }
    }
  }
  return ::testing::AssertionSuccess();
}

uint64_t TotalUnflushed(EonCluster* cluster) {
  uint64_t total = 0;
  for (const auto& n : cluster->nodes()) {
    if (n->wos() != nullptr) total += n->wos()->total_unflushed_rows();
  }
  return total;
}

size_t ContainerCount(EonCluster* cluster) {
  return cluster->AnyUpNode()->catalog()->snapshot()->containers.size();
}

constexpr ScanMode kModes[] = {ScanMode::kRowWise, ScanMode::kBlockEval,
                               ScanMode::kLateMat};

TEST(WosTest, InsertVisibleBeforeMoveout) {
  auto b = MakeCluster(/*exec_threads=*/1, /*wos=*/1);
  ASSERT_NE(b, nullptr);
  const size_t containers_before = ContainerCount(b->cluster.get());

  auto inserted = InsertInto(b->cluster.get(), "t", MakeRows(0, 10));
  ASSERT_TRUE(inserted.ok()) << inserted.status().ToString();
  EXPECT_EQ(*inserted, 10u);

  // Durable in the log, resident in a memtable — no new ROS containers.
  EXPECT_EQ(ContainerCount(b->cluster.get()), containers_before);
  EXPECT_EQ(TotalUnflushed(b->cluster.get()), 10u);

  auto r = RunQuery(b->cluster.get(), ScanMode::kLateMat, FullScan());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows.size(), 10u);
}

// The tentpole gate: a WOS+ROS union scan returns bit-identical rows to
// querying after the WOS flushed — across all scan modes, at thread
// widths 1 and 4, for plain scans, predicated scans, and aggregates.
TEST(WosTest, UnionScanBitIdenticalToFlushOracle) {
  for (int width : {1, 4}) {
    auto b = MakeCluster(width, /*wos=*/1);
    ASSERT_NE(b, nullptr);
    // ROS population: two committed loads; WOS population: three INSERT
    // statements (split sizes exercise multi-batch memtables).
    ASSERT_TRUE(CopyInto(b->cluster.get(), "t", MakeRows(0, 25)).ok());
    ASSERT_TRUE(CopyInto(b->cluster.get(), "t", MakeRows(25, 15)).ok());
    ASSERT_TRUE(InsertInto(b->cluster.get(), "t", MakeRows(40, 7)).ok());
    ASSERT_TRUE(InsertInto(b->cluster.get(), "t", MakeRows(47, 7)).ok());
    ASSERT_TRUE(InsertInto(b->cluster.get(), "t", MakeRows(54, 6)).ok());

    const QuerySpec specs[] = {FullScan(), PredScan(), AggQuery()};
    std::vector<std::vector<Row>> before;
    for (ScanMode mode : kModes) {
      for (const QuerySpec& spec : specs) {
        auto r = RunQuery(b->cluster.get(), mode, spec);
        ASSERT_TRUE(r.ok()) << r.status().ToString();
        before.push_back(r->rows);
      }
    }

    auto moved = MoveoutWos(b->cluster.get(), "t");
    ASSERT_TRUE(moved.ok()) << moved.status().ToString();
    EXPECT_EQ(*moved, 20u);
    EXPECT_EQ(TotalUnflushed(b->cluster.get()), 0u);

    size_t i = 0;
    for (ScanMode mode : kModes) {
      for (const QuerySpec& spec : specs) {
        auto r = RunQuery(b->cluster.get(), mode, spec);
        ASSERT_TRUE(r.ok()) << r.status().ToString();
        EXPECT_TRUE(RowsIdentical(before[i], r->rows))
            << "width " << width << " mode " << static_cast<int>(mode)
            << " spec " << (i % 3);
        ++i;
      }
    }
    // All scan modes agree with each other too (9 = 3 modes x 3 specs).
    for (size_t m = 1; m < 3; ++m) {
      for (size_t s = 0; s < 3; ++s) {
        EXPECT_TRUE(RowsIdentical(before[s], before[m * 3 + s]));
      }
    }
  }
}

// EON_WOS=off falls back to direct-ROS COPY; with a deterministic sort
// (unique ids) both paths answer every query identically.
TEST(WosTest, WosOffFallbackBitIdentical) {
  auto on = MakeCluster(1, /*wos=*/1);
  auto off = MakeCluster(1, /*wos=*/0);
  ASSERT_NE(on, nullptr);
  ASSERT_NE(off, nullptr);
  EXPECT_TRUE(on->cluster->wos_enabled());
  EXPECT_FALSE(off->cluster->wos_enabled());
  for (const auto& n : off->cluster->nodes()) {
    EXPECT_FALSE(n->wos_enabled());
  }

  for (auto* b : {on.get(), off.get()}) {
    ASSERT_TRUE(CopyInto(b->cluster.get(), "t", MakeRows(0, 20)).ok());
    ASSERT_TRUE(InsertInto(b->cluster.get(), "t", MakeRows(20, 9)).ok());
    ASSERT_TRUE(InsertInto(b->cluster.get(), "t", MakeRows(29, 11)).ok());
  }
  // The off cluster wrote containers immediately; the on cluster holds
  // the inserts in memtables.
  EXPECT_EQ(TotalUnflushed(off->cluster.get()), 0u);
  EXPECT_EQ(TotalUnflushed(on->cluster.get()), 20u);

  QuerySpec ordered = FullScan();
  ordered.order_by = "id";
  QuerySpec pred = PredScan();
  pred.order_by = "id";
  for (ScanMode mode : kModes) {
    for (const QuerySpec& spec : {ordered, pred, AggQuery()}) {
      auto a = RunQuery(on->cluster.get(), mode, spec);
      auto c = RunQuery(off->cluster.get(), mode, spec);
      ASSERT_TRUE(a.ok() && c.ok());
      EXPECT_TRUE(RowsIdentical(a->rows, c->rows));
    }
  }
}

TEST(WosTest, DeleteAndUpdateCoverWosRows) {
  auto b = MakeCluster(1, 1);
  ASSERT_NE(b, nullptr);
  ASSERT_TRUE(CopyInto(b->cluster.get(), "t", MakeRows(0, 20)).ok());
  ASSERT_TRUE(InsertInto(b->cluster.get(), "t", MakeRows(20, 20)).ok());

  // WOS-only delete (ids 30..39) — needs a commit version even though no
  // delete vector is written.
  auto del_wos = DeleteWhere(b->cluster.get(), "t",
                             Predicate::Cmp(0, CmpOp::kGe, Value::Int(30)));
  ASSERT_TRUE(del_wos.ok()) << del_wos.status().ToString();
  EXPECT_EQ(*del_wos, 10u);

  // Mixed delete: ids 0..4 live in ROS, none left in WOS below 5.
  auto del_ros = DeleteWhere(b->cluster.get(), "t",
                             Predicate::Cmp(0, CmpOp::kLt, Value::Int(5)));
  ASSERT_TRUE(del_ros.ok());
  EXPECT_EQ(*del_ros, 5u);

  auto r = RunQuery(b->cluster.get(), ScanMode::kLateMat, AggQuery());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][1].int_value(), 25);  // 40 - 10 - 5.

  // UPDATE touching a WOS-resident row (id 25): delete + reinsert.
  auto updated = UpdateWhere(
      b->cluster.get(), "t", Predicate::Cmp(0, CmpOp::kEq, Value::Int(25)),
      [](Row* row) { (*row)[1] = Value::Dbl(999.0); });
  ASSERT_TRUE(updated.ok()) << updated.status().ToString();
  EXPECT_EQ(*updated, 1u);

  QuerySpec q = FullScan();
  q.scan.predicate = Predicate::Cmp(0, CmpOp::kEq, Value::Int(25));
  auto row = RunQuery(b->cluster.get(), ScanMode::kLateMat, q);
  ASSERT_TRUE(row.ok());
  ASSERT_EQ(row->rows.size(), 1u);
  EXPECT_EQ(row->rows[0][1].dbl_value(), 999.0);

  // The flush oracle agrees after everything lands in ROS.
  auto before = RunQuery(b->cluster.get(), ScanMode::kLateMat, FullScan());
  ASSERT_TRUE(MoveoutWos(b->cluster.get(), "t").ok());
  auto after = RunQuery(b->cluster.get(), ScanMode::kLateMat, FullScan());
  ASSERT_TRUE(before.ok() && after.ok());
  EXPECT_TRUE(RowsIdentical(before->rows, after->rows));
}

TEST(WosTest, MoveoutThresholdTriggersSynchronously) {
  auto b = MakeCluster(1, 1, /*flush_rows=*/8);
  ASSERT_NE(b, nullptr);
  const size_t containers_before = ContainerCount(b->cluster.get());

  // Below threshold: stays in the memtable.
  ASSERT_TRUE(InsertInto(b->cluster.get(), "t", MakeRows(0, 5)).ok());
  EXPECT_EQ(ContainerCount(b->cluster.get()), containers_before);
  EXPECT_EQ(TotalUnflushed(b->cluster.get()), 5u);

  // Crossing it: the INSERT itself runs moveout before returning.
  ASSERT_TRUE(InsertInto(b->cluster.get(), "t", MakeRows(5, 5)).ok());
  EXPECT_GT(ContainerCount(b->cluster.get()), containers_before);
  EXPECT_EQ(TotalUnflushed(b->cluster.get()), 0u);

  auto r = RunQuery(b->cluster.get(), ScanMode::kLateMat, AggQuery());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][1].int_value(), 10);
}

TEST(WosTest, TupleMoverSweepAndSystemTables) {
  auto b = MakeCluster(1, 1);
  ASSERT_NE(b, nullptr);
  Schema schema({{"id", DataType::kInt64}, {"v", DataType::kDouble}});
  ASSERT_TRUE(CreateTable(b->cluster.get(), "u", schema, std::nullopt,
                          {ProjectionSpec{"u_super", {}, {"id"}, {"id"}}})
                  .ok());
  ASSERT_TRUE(InsertInto(b->cluster.get(), "t", MakeRows(0, 12)).ok());
  ASSERT_TRUE(InsertInto(b->cluster.get(), "u", MakeRows(0, 8)).ok());

  // system_wos sees the memtables before the sweep.
  auto wos_rows = MaterializeSystemTable(b->cluster.get(), "system_wos");
  ASSERT_TRUE(wos_rows.ok());
  uint64_t unflushed = 0;
  for (const Row& row : *wos_rows) unflushed += row[5].int_value();
  EXPECT_EQ(unflushed, 20u);

  TupleMover tm(b->cluster.get());
  auto moved = tm.RunMoveout();
  ASSERT_TRUE(moved.ok()) << moved.status().ToString();
  EXPECT_EQ(*moved, 20u);
  EXPECT_EQ(tm.stats().moveout_rows, 20u);
  EXPECT_EQ(TotalUnflushed(b->cluster.get()), 0u);

  // Idempotent when dry.
  auto again = tm.RunMoveout();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, 0u);

  // dc_wal_events recorded the durability milestones.
  auto events = MaterializeSystemTable(b->cluster.get(), "dc_wal_events");
  ASSERT_TRUE(events.ok());
  bool saw_group = false, saw_moveout = false, saw_checkpoint = false;
  for (const Row& row : *events) {
    const std::string& kind = row[2].str_value();
    if (kind == "group_commit") saw_group = true;
    if (kind == "moveout") saw_moveout = true;
    if (kind == "checkpoint") saw_checkpoint = true;
  }
  EXPECT_TRUE(saw_group);
  EXPECT_TRUE(saw_moveout);
  EXPECT_TRUE(saw_checkpoint);
}

// The WAL is one log per node shared by every table: moveout of one
// table must not truncate another table's unflushed inserts.
TEST(WosTest, MoveoutTruncationPreservesOtherTablesRecords) {
  auto b = MakeCluster(1, 1);
  ASSERT_NE(b, nullptr);
  Schema schema({{"id", DataType::kInt64}, {"v", DataType::kDouble}});
  ASSERT_TRUE(CreateTable(b->cluster.get(), "u", schema, std::nullopt,
                          {ProjectionSpec{"u_super", {}, {"id"}, {"id"}}})
                  .ok());
  InsertOptions on_n1;
  on_n1.connected_node = "n1";
  ASSERT_TRUE(InsertInto(b->cluster.get(), "t", MakeRows(0, 6), on_n1).ok());
  ASSERT_TRUE(InsertInto(b->cluster.get(), "u", MakeRows(0, 7), on_n1).ok());

  // Moving out t truncates n1's WAL — only up to just below u's batch.
  ASSERT_TRUE(MoveoutWos(b->cluster.get(), "t").ok());

  // Crash n1: its memtable is gone; replay must resurrect u's rows.
  Node* n1 = b->cluster->node_by_name("n1");
  ASSERT_NE(n1, nullptr);
  ASSERT_TRUE(b->cluster->KillNode(n1->oid()).ok());
  ASSERT_TRUE(b->cluster->RestartNode(n1->oid()).ok());

  QuerySpec qu;
  qu.scan.table = "u";
  qu.scan.columns = {"id", "v"};
  qu.aggregates = {{AggFn::kCount, "", "c"}};
  auto ru = RunQuery(b->cluster.get(), ScanMode::kLateMat, qu);
  ASSERT_TRUE(ru.ok()) << ru.status().ToString();
  EXPECT_EQ(ru->rows[0][0].int_value(), 7);

  auto rt = RunQuery(b->cluster.get(), ScanMode::kLateMat, AggQuery());
  ASSERT_TRUE(rt.ok());
  EXPECT_EQ(rt->rows[0][1].int_value(), 6);
}

TEST(WosTest, RecoveryAfterKillReplaysToCommittedState) {
  auto b = MakeCluster(1, 1);
  ASSERT_NE(b, nullptr);
  ASSERT_TRUE(CopyInto(b->cluster.get(), "t", MakeRows(0, 10)).ok());
  InsertOptions on_n1;
  on_n1.connected_node = "n1";
  ASSERT_TRUE(InsertInto(b->cluster.get(), "t", MakeRows(10, 8), on_n1).ok());
  ASSERT_TRUE(InsertInto(b->cluster.get(), "t", MakeRows(18, 7), on_n1).ok());
  // A committed tombstone over WOS rows must also survive the crash.
  auto deleted = DeleteWhere(b->cluster.get(), "t",
                             Predicate::Cmp(0, CmpOp::kEq, Value::Int(12)));
  ASSERT_TRUE(deleted.ok());
  EXPECT_EQ(*deleted, 1u);

  auto before = RunQuery(b->cluster.get(), ScanMode::kLateMat, FullScan());
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->rows.size(), 24u);

  Node* n1 = b->cluster->node_by_name("n1");
  ASSERT_TRUE(b->cluster->KillNode(n1->oid()).ok());
  ASSERT_TRUE(b->cluster->RestartNode(n1->oid()).ok());
  EXPECT_TRUE(n1->wos_enabled());

  auto after = RunQuery(b->cluster.get(), ScanMode::kLateMat, FullScan());
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_TRUE(RowsIdentical(before->rows, after->rows));

  // And the replayed memtable still feeds a clean moveout.
  auto moved = MoveoutWos(b->cluster.get(), "t");
  ASSERT_TRUE(moved.ok());
  EXPECT_EQ(*moved, 14u);  // 15 inserted minus 1 tombstoned.
  auto oracle = RunQuery(b->cluster.get(), ScanMode::kLateMat, FullScan());
  ASSERT_TRUE(oracle.ok());
  EXPECT_TRUE(RowsIdentical(before->rows, oracle->rows));
}

// Regression: after a moveout flushes EVERYTHING, truncation deletes every
// WAL part and leaves only a checkpoint marker at LSN L. A restarted node
// must resume LSN assignment above L — resuming at 1 hands out LSNs the
// next restart's checkpoint filter silently discards, losing committed,
// acknowledged inserts.
TEST(WosTest, RestartAfterFullTruncationKeepsLaterInserts) {
  auto b = MakeCluster(1, 1);
  ASSERT_NE(b, nullptr);
  InsertOptions on_n1;
  on_n1.connected_node = "n1";
  ASSERT_TRUE(InsertInto(b->cluster.get(), "t", MakeRows(0, 6), on_n1).ok());
  ASSERT_TRUE(MoveoutWos(b->cluster.get(), "t").ok());  // Truncates all.

  Node* n1 = b->cluster->node_by_name("n1");
  ASSERT_NE(n1, nullptr);
  const uint64_t checkpoint = n1->wal()->last_lsn();
  ASSERT_TRUE(b->cluster->KillNode(n1->oid()).ok());
  ASSERT_TRUE(b->cluster->RestartNode(n1->oid()).ok());

  // Committed and acknowledged after the first restart...
  ASSERT_TRUE(InsertInto(b->cluster.get(), "t", MakeRows(6, 4), on_n1).ok());
  EXPECT_GT(n1->wal()->last_lsn(), checkpoint);

  // ...must survive the second: with LSNs reused from 1 the replay's
  // checkpoint filter would drop them.
  ASSERT_TRUE(b->cluster->KillNode(n1->oid()).ok());
  ASSERT_TRUE(b->cluster->RestartNode(n1->oid()).ok());
  auto r = RunQuery(b->cluster.get(), ScanMode::kLateMat, AggQuery());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows[0][1].int_value(), 10);
}

// An UPDATE races concurrent INSERTs: match collection and tombstoning
// happen in one gated window, so a racing row is either updated-and-
// reinserted or untouched — never tombstoned without reinsertion (the
// lost-row bug of collecting matches in a separate earlier pass).
TEST(WosTest, UpdateConcurrentWithInsertsLosesNoRows) {
  auto b = MakeCluster(/*exec_threads=*/4, 1);
  ASSERT_NE(b, nullptr);
  constexpr int kBatches = 20;
  constexpr int64_t kBatchRows = 5;

  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  std::thread writer([&] {
    for (int i = 0; i < kBatches; ++i) {
      auto ins = InsertInto(b->cluster.get(), "t",
                            MakeRows(i * kBatchRows, kBatchRows));
      if (!ins.ok()) {
        failures++;
        break;
      }
    }
    done.store(true);
  });
  std::thread updater([&] {
    while (!done.load()) {
      auto u = UpdateWhere(
          b->cluster.get(), "t", Predicate::Cmp(0, CmpOp::kGe, Value::Int(0)),
          [](Row* row) { (*row)[1] = Value::Dbl(-1.0); });
      if (!u.ok()) {
        failures++;
        return;
      }
    }
  });
  writer.join();
  updater.join();
  EXPECT_EQ(failures.load(), 0);

  auto r = RunQuery(b->cluster.get(), ScanMode::kLateMat, AggQuery());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows[0][1].int_value(), kBatches * kBatchRows);
}

// Node lifecycle vs in-flight statements: the WAL/WOS are node-lifetime
// objects (down = close/clear in place), so kill/restart racing inserts
// that already hold the pointers must fail cleanly, never crash, and
// every acknowledged row must still be readable afterwards.
TEST(WosTest, KillAndRestartUnderConcurrentInsertsIsSafe) {
  auto b = MakeCluster(1, 1);
  ASSERT_NE(b, nullptr);
  Node* n1 = b->cluster->node_by_name("n1");
  ASSERT_NE(n1, nullptr);

  std::atomic<bool> stop{false};
  std::atomic<int64_t> acked{0};
  std::thread writer([&] {
    InsertOptions on_n1;
    on_n1.connected_node = "n1";
    int64_t next = 0;
    while (!stop.load()) {
      // Mid-kill inserts may fail (node down, WAL closed) — never crash.
      auto ins = InsertInto(b->cluster.get(), "t", MakeRows(next, 1), on_n1);
      if (ins.ok()) acked++;
      next++;
    }
  });
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(b->cluster->KillNode(n1->oid()).ok());
    ASSERT_TRUE(b->cluster->RestartNode(n1->oid()).ok());
  }
  stop.store(true);
  writer.join();

  // Acknowledged inserts were durable before their ack: all are visible.
  auto r = RunQuery(b->cluster.get(), ScanMode::kLateMat, AggQuery());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GE(r->rows[0][1].int_value(), acked.load());
  // The survivors still feed a clean moveout.
  ASSERT_TRUE(MoveoutWos(b->cluster.get(), "t").ok());
}

TEST(WosTest, SqlInsertRoutesThroughSessionAndProfile) {
  auto b = MakeCluster(1, 1);
  ASSERT_NE(b, nullptr);
  SessionManager sessions(b->cluster.get(), nullptr, "default");
  auto sid = sessions.Connect("n1");
  ASSERT_TRUE(sid.ok());

  auto r = sessions.ExecuteSql(*sid,
                               "INSERT INTO t VALUES (1, 0.5), (2, 1.5);");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->schema.column(0).name, "rows_inserted");
  EXPECT_EQ(r->rows[0][0].int_value(), 2);
  EXPECT_EQ(r->profile.wal_records_appended, 1u);
  EXPECT_EQ(r->profile.wal_rows, 2u);
  EXPECT_TRUE(r->profile.wal_led_group);
  EXPECT_GE(r->profile.wal_group_size, 1u);

  // The profile's wal block renders in both formats.
  const std::string text = r->profile.ToText();
  EXPECT_NE(text.find("wal:"), std::string::npos);
  EXPECT_NE(r->profile.ToJson().Dump().find("\"wal\""), std::string::npos);

  auto count =
      sessions.ExecuteSql(*sid, "SELECT COUNT(*) AS c FROM t");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->rows[0][0].int_value(), 2);

  // Parse errors: arity, type, unknown table, trailing garbage.
  EXPECT_FALSE(sessions.ExecuteSql(*sid, "INSERT INTO t VALUES (1)").ok());
  EXPECT_FALSE(
      sessions.ExecuteSql(*sid, "INSERT INTO t VALUES ('a', 1.0)").ok());
  EXPECT_FALSE(
      sessions.ExecuteSql(*sid, "INSERT INTO nope VALUES (1, 1.0)").ok());
  EXPECT_FALSE(
      sessions.ExecuteSql(*sid, "INSERT INTO t VALUES (3, 3.0) extra").ok());
  // Failures above must not have inserted anything.
  count = sessions.ExecuteSql(*sid, "SELECT COUNT(*) AS c FROM t");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->rows[0][0].int_value(), 2);
}

// Moveout concurrent with queries: every result observes an atomic batch
// prefix — never a row twice (WOS and ROS), never a torn batch.
TEST(WosTest, MoveoutUnderConcurrentQueriesStaysConsistent) {
  auto b = MakeCluster(/*exec_threads=*/4, 1);
  ASSERT_NE(b, nullptr);
  constexpr int kBatches = 24;
  constexpr int64_t kBatchRows = 10;

  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  std::thread writer([&] {
    for (int i = 0; i < kBatches; ++i) {
      auto ins = InsertInto(b->cluster.get(), "t",
                            MakeRows(i * kBatchRows, kBatchRows));
      if (!ins.ok()) {
        failures++;
        break;
      }
      if (i % 6 == 5) {
        auto moved = MoveoutWos(b->cluster.get(), "t");
        if (!moved.ok()) failures++;
      }
    }
    done.store(true);
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      EonSession session(b->cluster.get());
      while (!done.load()) {
        auto res = session.Execute(AggQuery());
        if (!res.ok()) {
          failures++;
          return;
        }
        const int64_t count = res->rows[0][1].int_value();
        // An empty prefix is valid: the reader can outrun the first batch
        // (SUM over zero rows is NULL, so don't touch it).
        if (count == 0) continue;
        const int64_t sum = res->rows[0][0].int_value();
        // Batches are atomic and apply in LSN order: the visible set is
        // always ids [0, count) with count a whole number of batches.
        if (count % kBatchRows != 0 || sum != count * (count - 1) / 2) {
          ADD_FAILURE() << "inconsistent snapshot: count=" << count
                        << " sum=" << sum;
          failures++;
          return;
        }
      }
    });
  }
  writer.join();
  for (auto& th : readers) th.join();
  EXPECT_EQ(failures.load(), 0);

  auto final = RunQuery(b->cluster.get(), ScanMode::kLateMat, AggQuery());
  ASSERT_TRUE(final.ok());
  EXPECT_EQ(final->rows[0][1].int_value(), kBatches * kBatchRows);
}

}  // namespace
}  // namespace eon
