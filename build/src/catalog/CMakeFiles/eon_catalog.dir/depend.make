# Empty dependencies file for eon_catalog.
# This may be replaced when dependencies are built.
