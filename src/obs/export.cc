#include "obs/export.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace eon {
namespace obs {

namespace {

const char* KindName(MetricSample::Kind kind) {
  switch (kind) {
    case MetricSample::Kind::kCounter:
      return "counter";
    case MetricSample::Kind::kGauge:
      return "gauge";
    case MetricSample::Kind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

std::string FormatDouble(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  // Integral values print without a fraction (bucket bounds, counts).
  if (v == static_cast<double>(static_cast<int64_t>(v))) {
    char buf[32];
    snprintf(buf, sizeof(buf), "%" PRId64, static_cast<int64_t>(v));
    return buf;
  }
  char buf[64];
  snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

std::string PromLabels(const LabelSet& labels, const std::string& extra_key,
                       const std::string& extra_value) {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels.pairs()) {
    if (!first) out += ',';
    first = false;
    out += k + "=\"" + v + "\"";
  }
  if (!extra_key.empty()) {
    if (!first) out += ',';
    out += extra_key + "=\"" + extra_value + "\"";
  }
  out += '}';
  return out;
}

}  // namespace

JsonValue ExportJson(const MetricsSnapshot& snapshot) {
  JsonValue root = JsonValue::Object();
  JsonValue metrics = JsonValue::Array();
  for (const MetricSample& s : snapshot.samples) {
    JsonValue m = JsonValue::Object();
    m.Set("name", JsonValue::Str(s.name));
    m.Set("kind", JsonValue::Str(KindName(s.kind)));
    if (!s.labels.empty()) {
      JsonValue labels = JsonValue::Object();
      for (const auto& [k, v] : s.labels.pairs()) {
        labels.Set(k, JsonValue::Str(v));
      }
      m.Set("labels", std::move(labels));
    }
    if (s.kind == MetricSample::Kind::kHistogram) {
      const HistogramSnapshot& h = s.histogram;
      m.Set("count", JsonValue::Int(static_cast<int64_t>(h.count)));
      m.Set("sum", JsonValue::Double(h.sum));
      m.Set("p50", JsonValue::Double(h.P50()));
      m.Set("p95", JsonValue::Double(h.P95()));
      m.Set("p99", JsonValue::Double(h.P99()));
      JsonValue buckets = JsonValue::Array();
      for (size_t i = 0; i < h.counts.size(); ++i) {
        JsonValue b = JsonValue::Object();
        b.Set("le", i < h.bounds.size() ? JsonValue::Double(h.bounds[i])
                                        : JsonValue::Str("+Inf"));
        b.Set("count", JsonValue::Int(static_cast<int64_t>(h.counts[i])));
        buckets.Append(std::move(b));
      }
      m.Set("buckets", std::move(buckets));
    } else {
      m.Set("value", JsonValue::Double(s.value));
    }
    metrics.Append(std::move(m));
  }
  root.Set("metrics", std::move(metrics));
  return root;
}

std::string ExportPrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  std::string last_name;
  for (const MetricSample& s : snapshot.samples) {
    if (s.name != last_name) {
      out += "# TYPE " + s.name + " " + KindName(s.kind) + "\n";
      last_name = s.name;
    }
    if (s.kind == MetricSample::Kind::kHistogram) {
      const HistogramSnapshot& h = s.histogram;
      uint64_t cumulative = 0;
      for (size_t i = 0; i < h.counts.size(); ++i) {
        cumulative += h.counts[i];
        const std::string le =
            i < h.bounds.size() ? FormatDouble(h.bounds[i]) : "+Inf";
        out += s.name + "_bucket" + PromLabels(s.labels, "le", le) + " " +
               FormatDouble(static_cast<double>(cumulative)) + "\n";
      }
      out += s.name + "_sum" + PromLabels(s.labels, "", "") + " " +
             FormatDouble(h.sum) + "\n";
      out += s.name + "_count" + PromLabels(s.labels, "", "") + " " +
             FormatDouble(static_cast<double>(h.count)) + "\n";
    } else {
      out += s.name + PromLabels(s.labels, "", "") + " " +
             FormatDouble(s.value) + "\n";
    }
  }
  return out;
}

Status WriteSnapshotJsonFile(const std::string& path,
                             MetricsRegistry* registry) {
  const std::string text =
      ExportJson(OrDefault(registry)->Snapshot()).Dump() + "\n";
  FILE* f = fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  const size_t written = fwrite(text.data(), 1, text.size(), f);
  fclose(f);
  if (written != text.size()) {
    return Status::IOError("short write to " + path);
  }
  return Status::OK();
}

}  // namespace obs
}  // namespace eon
