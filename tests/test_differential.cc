// Differential testing: randomly generated queries run through the full
// distributed engine — under varying participation, crunch scaling modes,
// and node failures — must match a naive single-node reference executor
// on the raw generated data.

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "engine/session.h"
#include "storage/sim_object_store.h"
#include "tests/reference_executor.h"
#include "workload/tpch.h"

namespace eon {
namespace {

using testing_support::RefDatabase;
using testing_support::ReferenceExecute;
using testing_support::SameResults;
using testing_support::TpchReferenceDb;

/// Shared fixture: one loaded cluster for the whole differential suite
/// (construction is the expensive part).
struct SharedCluster {
  SimClock clock;
  std::unique_ptr<SimObjectStore> store;
  std::unique_ptr<EonCluster> cluster;
  TpchOptions topts;
  TpchData data;
  RefDatabase reference;

  static SharedCluster* Get() {
    static SharedCluster* instance = [] {
      auto* sc = new SharedCluster();
      SimStoreOptions sopts;
      sopts.get_latency_micros = 0;
      sopts.put_latency_micros = 0;
      sopts.list_latency_micros = 0;
      sc->store = std::make_unique<SimObjectStore>(sopts, &sc->clock);
      ClusterOptions copts;
      copts.num_shards = 3;
      copts.k_safety = 2;
      std::vector<NodeSpec> specs;
      for (int i = 1; i <= 5; ++i) {
        specs.push_back(NodeSpec{"n" + std::to_string(i), ""});
      }
      auto cluster =
          EonCluster::Create(sc->store.get(), &sc->clock, copts, specs);
      EON_CHECK(cluster.ok());
      sc->cluster = std::move(cluster).value();
      sc->topts.scale = 0.15;
      sc->data = GenerateTpch(sc->topts);
      sc->reference = TpchReferenceDb(sc->data);
      EON_CHECK(CreateTpchTables(sc->cluster.get()).ok());
      EON_CHECK(LoadTpch(sc->cluster.get(), sc->data, 256).ok());
      return sc;
    }();
    return instance;
  }
};

/// Random query generator over the TPC-H-style schema.
class QueryGen {
 public:
  explicit QueryGen(uint64_t seed) : rng_(seed) {}

  QuerySpec Next() {
    QuerySpec q;
    const int table_pick = static_cast<int>(rng_.Uniform(4));
    switch (table_pick) {
      case 0: BuildLineitem(&q); break;
      case 1: BuildOrders(&q); break;
      case 2: BuildCustomer(&q); break;
      default: BuildPart(&q); break;
    }
    return q;
  }

 private:
  void MaybeAggregate(QuerySpec* q, const std::string& group_col,
                      const std::string& num_col) {
    if (rng_.Bernoulli(0.7)) {
      if (rng_.Bernoulli(0.7)) q->group_by = {group_col};
      q->aggregates = {{AggFn::kCount, "", "n"}};
      if (rng_.Bernoulli(0.8)) {
        q->aggregates.push_back({AggFn::kSum, num_col, "s"});
      }
      if (rng_.Bernoulli(0.4)) {
        q->aggregates.push_back({AggFn::kMin, num_col, "lo"});
        q->aggregates.push_back({AggFn::kMax, num_col, "hi"});
      }
      if (rng_.Bernoulli(0.25)) {
        q->aggregates.push_back({AggFn::kAvg, num_col, "m"});
      }
      if (rng_.Bernoulli(0.2)) {
        q->aggregates.push_back(
            {AggFn::kCountDistinct, group_col, "dist"});
      }
    }
  }

  PredicatePtr RandomLineitemPred() {
    const Schema li = TpchLineitemSchema();
    std::vector<PredicatePtr> cmps;
    if (rng_.Bernoulli(0.6)) {
      cmps.push_back(Predicate::Cmp(
          *li.IndexOf("l_shipdate"),
          rng_.Bernoulli(0.5) ? CmpOp::kGe : CmpOp::kLt,
          Value::Int(10000 - rng_.UniformRange(0, 720))));
    }
    if (rng_.Bernoulli(0.5)) {
      cmps.push_back(Predicate::Cmp(*li.IndexOf("l_quantity"),
                                    rng_.Bernoulli(0.5) ? CmpOp::kLe
                                                        : CmpOp::kGt,
                                    Value::Int(rng_.UniformRange(1, 50))));
    }
    if (rng_.Bernoulli(0.25)) {
      static const char* kFlags[] = {"A", "N", "R"};
      cmps.push_back(Predicate::Cmp(
          *li.IndexOf("l_returnflag"),
          rng_.Bernoulli(0.7) ? CmpOp::kEq : CmpOp::kNe,
          Value::Str(kFlags[rng_.Uniform(3)])));
    }
    if (cmps.empty()) return nullptr;
    PredicatePtr p = cmps[0];
    for (size_t i = 1; i < cmps.size(); ++i) {
      p = rng_.Bernoulli(0.8) ? Predicate::And(p, cmps[i])
                              : Predicate::Or(p, cmps[i]);
    }
    return p;
  }

  void BuildLineitem(QuerySpec* q) {
    q->scan.table = "lineitem";
    q->scan.columns = {"l_orderkey", "l_quantity", "l_extendedprice",
                       "l_shipmode"};
    q->scan.predicate = RandomLineitemPred();
    if (rng_.Bernoulli(0.4)) {
      q->join = JoinSpec{{"orders", {"o_orderkey", "o_orderpriority"},
                          nullptr},
                         "l_orderkey",
                         "o_orderkey"};
      if (rng_.Bernoulli(0.3)) {
        const Schema ord = TpchOrdersSchema();
        q->join->right.predicate =
            Predicate::Cmp(*ord.IndexOf("o_orderdate"), CmpOp::kGe,
                           Value::Int(10000 - rng_.UniformRange(30, 700)));
      }
      MaybeAggregate(q, rng_.Bernoulli(0.5) ? "l_shipmode"
                                            : "o_orderpriority",
                     "l_extendedprice");
    } else if (rng_.Bernoulli(0.3)) {
      // Broadcast join against the replicated dimension.
      q->join = JoinSpec{{"part", {"p_partkey", "p_type"}, nullptr},
                         "l_orderkey",  // Deliberately odd key: valid ints.
                         "p_partkey"};
      MaybeAggregate(q, "p_type", "l_extendedprice");
    } else {
      MaybeAggregate(q, "l_shipmode", "l_extendedprice");
    }
  }

  void BuildOrders(QuerySpec* q) {
    const Schema ord = TpchOrdersSchema();
    q->scan.table = "orders";
    q->scan.columns = {"o_orderkey", "o_custkey", "o_totalprice",
                       "o_orderpriority"};
    if (rng_.Bernoulli(0.6)) {
      q->scan.predicate =
          Predicate::Cmp(*ord.IndexOf("o_totalprice"),
                         rng_.Bernoulli(0.5) ? CmpOp::kGt : CmpOp::kLe,
                         Value::Dbl(rng_.UniformRange(100, 45000)));
    }
    if (rng_.Bernoulli(0.35)) {
      q->join = JoinSpec{{"customer", {"c_custkey", "c_nationkey"}, nullptr},
                         "o_custkey",
                         "c_custkey"};
      MaybeAggregate(q, "c_nationkey", "o_totalprice");
    } else {
      MaybeAggregate(q, "o_orderpriority", "o_totalprice");
    }
  }

  void BuildCustomer(QuerySpec* q) {
    const Schema cs = TpchCustomerSchema();
    q->scan.table = "customer";
    q->scan.columns = {"c_custkey", "c_nationkey", "c_acctbal"};
    if (rng_.Bernoulli(0.5)) {
      q->scan.predicate =
          Predicate::Cmp(*cs.IndexOf("c_nationkey"), CmpOp::kLt,
                         Value::Int(rng_.UniformRange(1, 25)));
    }
    MaybeAggregate(q, "c_nationkey", "c_acctbal");
  }

  void BuildPart(QuerySpec* q) {
    q->scan.table = "part";
    q->scan.columns = {"p_partkey", "p_type", "p_retailprice"};
    const Schema ps = TpchPartSchema();
    if (rng_.Bernoulli(0.5)) {
      q->scan.predicate =
          Predicate::Cmp(*ps.IndexOf("p_retailprice"), CmpOp::kGe,
                         Value::Dbl(rng_.UniformRange(900, 1900)));
    }
    MaybeAggregate(q, "p_type", "p_retailprice");
  }

  Random rng_;
};

void ExpectMatchesReference(const QuerySpec& spec, const QueryResult& result,
                            const std::string& label) {
  SharedCluster* sc = SharedCluster::Get();
  auto expected = ReferenceExecute(sc->reference, spec);
  ASSERT_TRUE(expected.ok()) << label << ": " << expected.status().ToString();
  std::string diff;
  EXPECT_TRUE(SameResults(result.rows, *expected, /*ordered=*/false, &diff))
      << label << ": " << diff << "\n(table " << spec.scan.table
      << (spec.join ? " join " + spec.join->right.table : "") << ", "
      << result.rows.size() << " vs " << expected->size() << " rows)";
}

class DifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialTest, RandomQueriesMatchReference) {
  SharedCluster* sc = SharedCluster::Get();
  QueryGen gen(GetParam());
  EonSession session(sc->cluster.get(), "", GetParam());
  for (int i = 0; i < 8; ++i) {
    QuerySpec spec = gen.Next();
    auto result = session.Execute(spec);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ExpectMatchesReference(spec, *result,
                           "seed " + std::to_string(GetParam()) + " query " +
                               std::to_string(i));
  }
}

TEST_P(DifferentialTest, CrunchModesMatchReference) {
  SharedCluster* sc = SharedCluster::Get();
  QueryGen gen(GetParam() * 31 + 7);
  for (CrunchMode mode : {CrunchMode::kHashFilter,
                          CrunchMode::kContainerSplit}) {
    EonSession session(sc->cluster.get(), "", GetParam());
    session.set_crunch_mode(mode);
    for (int i = 0; i < 3; ++i) {
      QuerySpec spec = gen.Next();
      auto result = session.Execute(spec);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      ExpectMatchesReference(spec, *result,
                             "crunch mode " +
                                 std::to_string(static_cast<int>(mode)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Range<uint64_t>(1, 13));

TEST(DifferentialSuite, TwentyQuerySetMatchesReference) {
  SharedCluster* sc = SharedCluster::Get();
  EonSession session(sc->cluster.get());
  for (const auto& [name, spec] : TpchQuerySet(sc->topts)) {
    auto result = session.Execute(spec);
    ASSERT_TRUE(result.ok()) << name << ": " << result.status().ToString();
    if (spec.limit >= 0) continue;  // Ties at the cutoff are unspecified.
    ExpectMatchesReference(spec, *result, name);
  }
}

TEST(DifferentialSuite, NodeDownStillMatchesReference) {
  SharedCluster* sc = SharedCluster::Get();
  ASSERT_TRUE(sc->cluster->KillNode(5).ok());
  QueryGen gen(4242);
  EonSession session(sc->cluster.get());
  for (int i = 0; i < 10; ++i) {
    QuerySpec spec = gen.Next();
    auto result = session.Execute(spec);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ExpectMatchesReference(spec, *result, "node-down query");
  }
  ASSERT_TRUE(sc->cluster->RestartNode(5).ok());
}

}  // namespace
}  // namespace eon
