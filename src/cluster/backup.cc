#include "cluster/backup.h"

#include <set>

namespace eon {

Result<BackupStats> BackupDatabase(EonCluster* source,
                                   ObjectStore* target_storage) {
  // Metadata first: the backup must contain a consistent revive point.
  EON_RETURN_IF_ERROR(source->SyncAll(/*force_checkpoint=*/true));
  EON_RETURN_IF_ERROR(source->UpdateClusterInfo());

  BackupStats stats;
  EON_ASSIGN_OR_RETURN(std::vector<ObjectMeta> objects,
                       source->shared_storage()->List(""));
  EON_ASSIGN_OR_RETURN(std::vector<ObjectMeta> existing,
                       target_storage->List(""));
  std::set<std::string> present;
  for (const ObjectMeta& m : existing) present.insert(m.key);

  for (const ObjectMeta& m : objects) {
    if (present.count(m.key)) {
      stats.objects_skipped++;
      continue;
    }
    EON_ASSIGN_OR_RETURN(std::string data,
                         source->shared_storage()->Get(m.key));
    Status s = target_storage->Put(m.key, data);
    // AlreadyExists races are fine: immutable objects are content-stable.
    if (!s.ok() && !s.IsAlreadyExists()) return s;
    stats.objects_copied++;
    stats.bytes_copied += data.size();
  }
  return stats;
}

}  // namespace eon
