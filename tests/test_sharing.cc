// Tests for database sharing (the paper's Section 10 direction): a
// read-only compute cluster attached to a running database's shared
// storage, refreshing to published versions, fully isolated from the
// primary.

#include <gtest/gtest.h>

#include "cluster/sharing.h"
#include "engine/ddl.h"
#include "engine/dml.h"
#include "engine/session.h"
#include "storage/sim_object_store.h"

namespace eon {
namespace {

class SharingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SimStoreOptions sopts;
    sopts.get_latency_micros = 0;
    sopts.put_latency_micros = 0;
    sopts.list_latency_micros = 0;
    store_ = std::make_unique<SimObjectStore>(sopts, &clock_);
    options_.num_shards = 2;
    auto primary = EonCluster::Create(
        store_.get(), &clock_, options_,
        {NodeSpec{"p1", ""}, NodeSpec{"p2", ""}, NodeSpec{"p3", ""}});
    ASSERT_TRUE(primary.ok());
    primary_ = std::move(primary).value();

    Schema schema({{"id", DataType::kInt64}, {"v", DataType::kDouble}});
    ASSERT_TRUE(CreateTable(primary_.get(), "t", schema, std::nullopt,
                            {ProjectionSpec{"t_super", {}, {"id"}, {"id"}}})
                    .ok());
    LoadN(0, 300);
    Publish();
  }

  void LoadN(int64_t start, int64_t n) {
    std::vector<Row> rows;
    for (int64_t i = start; i < start + n; ++i) {
      rows.push_back(Row{Value::Int(i), Value::Dbl(1.0)});
    }
    ASSERT_TRUE(CopyInto(primary_.get(), "t", rows).ok());
  }

  /// Sync + publish a new truncation version (the reader's refresh point).
  void Publish() {
    ASSERT_TRUE(primary_->SyncAll(true).ok());
    ASSERT_TRUE(primary_->UpdateClusterInfo().ok());
  }

  Result<std::unique_ptr<EonCluster>> Attach() {
    return AttachReadOnly(store_.get(), &clock_, options_,
                          {NodeSpec{"r1", ""}, NodeSpec{"r2", ""},
                           NodeSpec{"r3", ""}});
  }

  int64_t Count(EonCluster* cluster) {
    EonSession session(cluster);
    QuerySpec q;
    q.scan.table = "t";
    q.scan.columns = {"id"};
    q.aggregates = {{AggFn::kCount, "", "n"}};
    auto r = session.Execute(q);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? r->rows[0][0].int_value() : -1;
  }

  SimClock clock_;
  ClusterOptions options_;
  std::unique_ptr<SimObjectStore> store_;
  std::unique_ptr<EonCluster> primary_;
};

TEST_F(SharingTest, ReaderSeesPublishedData) {
  auto reader = Attach();
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_TRUE((*reader)->is_read_only());
  EXPECT_EQ(Count(reader->get()), 300);
  // Primary unaffected and still writable.
  EXPECT_EQ(Count(primary_.get()), 300);
  LoadN(300, 10);
  EXPECT_EQ(Count(primary_.get()), 310);
}

TEST_F(SharingTest, AttachDoesNotTakeTheLease) {
  // Unlike revive, attach works while the primary's lease is live.
  auto reader = Attach();
  ASSERT_TRUE(reader.ok());
  // And a second reader can attach concurrently.
  auto reader2 = Attach();
  ASSERT_TRUE(reader2.ok());
  EXPECT_EQ(Count(reader2->get()), 300);
}

TEST_F(SharingTest, ReaderCannotCommit) {
  auto reader = Attach();
  ASSERT_TRUE(reader.ok());
  std::vector<Row> rows = {{Value::Int(999), Value::Dbl(0)}};
  EXPECT_TRUE(
      CopyInto(reader->get(), "t", rows).status().IsNotSupported());
  EXPECT_TRUE(DeleteWhere(reader->get(), "t", Predicate::True())
                  .status()
                  .IsNotSupported());
  Schema s({{"x", DataType::kInt64}});
  EXPECT_TRUE(CreateTable(reader->get(), "nope", s, std::nullopt,
                          {ProjectionSpec{"p", {}, {"x"}, {"x"}}})
                  .status()
                  .IsNotSupported());
}

TEST_F(SharingTest, RefreshAdvancesToPublishedVersion) {
  auto reader = Attach();
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(Count(reader->get()), 300);

  // Primary commits more; the reader sees nothing until publish+refresh.
  LoadN(300, 100);
  auto stale = (*reader)->RefreshReadOnly();
  ASSERT_TRUE(stale.ok());
  EXPECT_EQ(*stale, 0u);  // Not yet published.
  EXPECT_EQ(Count(reader->get()), 300);

  Publish();
  auto advanced = (*reader)->RefreshReadOnly();
  ASSERT_TRUE(advanced.ok()) << advanced.status().ToString();
  EXPECT_GT(*advanced, 0u);
  EXPECT_EQ(Count(reader->get()), 400);
}

TEST_F(SharingTest, ReaderFailuresAreIsolatedFromPrimary) {
  auto reader = Attach();
  ASSERT_TRUE(reader.ok());
  ASSERT_TRUE((*reader)->KillNode(1).ok());
  EXPECT_EQ(Count(reader->get()), 300);  // Reader's buddy coverage.
  EXPECT_EQ(Count(primary_.get()), 300);  // Primary untouched.
  LoadN(300, 10);
  EXPECT_EQ(Count(primary_.get()), 310);
}

TEST_F(SharingTest, RefreshRejectsRevivedSource) {
  auto reader = Attach();
  ASSERT_TRUE(reader.ok());
  // Primary dies; someone revives it (new incarnation).
  primary_.reset();
  clock_.AdvanceMicros(options_.lease_duration_micros + 1);
  auto revived = EonCluster::Revive(
      store_.get(), &clock_, options_,
      {NodeSpec{"q1", ""}, NodeSpec{"q2", ""}, NodeSpec{"q3", ""}});
  ASSERT_TRUE(revived.ok()) << revived.status().ToString();
  EXPECT_TRUE((*reader)->RefreshReadOnly().status().IsNotSupported());
}

}  // namespace
}  // namespace eon
