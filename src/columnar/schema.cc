#include "columnar/schema.h"

namespace eon {

Result<size_t> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return Status::InvalidArgument("no such column: " + name);
}

bool Schema::RowMatches(const Row& row) const {
  if (row.size() != columns_.size()) return false;
  for (size_t i = 0; i < row.size(); ++i) {
    if (!row[i].is_null() && row[i].type() != columns_[i].type) return false;
  }
  return true;
}

}  // namespace eon
