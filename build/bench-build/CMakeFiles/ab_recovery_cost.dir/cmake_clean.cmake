file(REMOVE_RECURSE
  "../bench/ab_recovery_cost"
  "../bench/ab_recovery_cost.pdb"
  "CMakeFiles/ab_recovery_cost.dir/ab_recovery_cost.cc.o"
  "CMakeFiles/ab_recovery_cost.dir/ab_recovery_cost.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ab_recovery_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
