#ifndef EON_COLUMNAR_BATCH_H_
#define EON_COLUMNAR_BATCH_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "columnar/types.h"

namespace eon {

/// A decoded column block in columnar layout: one contiguous primitive
/// array (by type) plus a validity bitmap. This is the common currency of
/// the scan pipeline — chunk decoders fill it, predicate kernels compare
/// against it, and aggregation partials fold over it — so each kernel is
/// written once against dense arrays instead of per-`Value` loops.
///
/// Null rows keep a zero/empty placeholder in the typed array so positions
/// stay aligned with row indices; kernels mask them via the validity bitmap.
/// The bitmap is allocated lazily: a batch with no nulls carries no bitmap
/// at all (`validity_words()` returns nullptr = all rows valid).
class ColumnBatch {
 public:
  ColumnBatch() = default;
  explicit ColumnBatch(DataType type) : type_(type) {}

  static ColumnBatch FromValues(DataType type, const std::vector<Value>& values);
  /// Columnarizes one column out of a row batch.
  static ColumnBatch FromRows(const std::vector<Row>& rows, size_t col,
                              DataType type);

  void Reset(DataType type);
  void Reserve(size_t n);
  void AppendValue(const Value& v);
  void AppendInt(int64_t v);
  void AppendDouble(double v);
  void AppendString(std::string v);
  void AppendNull();

  DataType type() const { return type_; }
  size_t size() const { return size_; }
  bool has_nulls() const { return !valid_.empty(); }
  bool IsNull(size_t i) const {
    return !valid_.empty() && ((valid_[i >> 6] >> (i & 63)) & 1) == 0;
  }
  /// Materializes row i back into a Value (boundary to row-wise code).
  Value GetValue(size_t i) const;

  const int64_t* ints() const { return ints_.data(); }
  const double* dbls() const { return dbls_.data(); }
  const std::string* strs() const { return strs_.data(); }
  /// Validity bitmap, LSB-first within 64-bit words (bit i of word i/64 set
  /// = row i non-null). nullptr when every row is valid.
  const uint64_t* validity_words() const {
    return valid_.empty() ? nullptr : valid_.data();
  }

 private:
  void MaterializeValidity();

  DataType type_ = DataType::kInt64;
  size_t size_ = 0;
  std::vector<int64_t> ints_;
  std::vector<double> dbls_;
  std::vector<std::string> strs_;
  std::vector<uint64_t> valid_;  // empty = all rows valid
};

/// A set of selected rows over a batch, stored either as a byte mask or as
/// an ascending index list — picked by density, since sparse selections
/// iterate much faster as indices while dense ones are cheaper as a mask.
class BatchSelection {
 public:
  enum class Rep : uint8_t { kAll, kMask, kIndices };

  static BatchSelection All(size_t row_count);
  /// Builds from a 0/1 byte mask, choosing the representation: all-selected
  /// collapses to kAll, density < 1/4 compacts to an index list, anything
  /// denser keeps the mask.
  static BatchSelection FromMask(const uint8_t* sel, size_t row_count);

  Rep rep() const { return rep_; }
  size_t row_count() const { return row_count_; }
  size_t count() const { return count_; }
  const std::vector<uint32_t>& indices() const { return indices_; }

  bool Selected(size_t i) const {
    switch (rep_) {
      case Rep::kAll:
        return true;
      case Rep::kMask:
        return mask_[i] != 0;
      case Rep::kIndices:
        return std::binary_search(indices_.begin(), indices_.end(),
                                  static_cast<uint32_t>(i));
    }
    return false;
  }

  /// Visits selected row indices in ascending order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    switch (rep_) {
      case Rep::kAll:
        for (size_t i = 0; i < row_count_; ++i) fn(i);
        return;
      case Rep::kMask:
        for (size_t i = 0; i < row_count_; ++i) {
          if (mask_[i]) fn(i);
        }
        return;
      case Rep::kIndices:
        for (uint32_t i : indices_) fn(static_cast<size_t>(i));
        return;
    }
  }

 private:
  Rep rep_ = Rep::kAll;
  size_t row_count_ = 0;
  size_t count_ = 0;
  std::vector<uint8_t> mask_;
  std::vector<uint32_t> indices_;
};

}  // namespace eon

#endif  // EON_COLUMNAR_BATCH_H_
