#include "server/admission.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "common/logging.h"

namespace eon {

namespace {

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

SlotGrant& SlotGrant::operator=(SlotGrant&& o) noexcept {
  if (this != &o) {
    Release();
    controller_ = o.controller_;
    pool_ = std::move(o.pool_);
    per_node_ = std::move(o.per_node_);
    total_slots_ = o.total_slots_;
    memory_bytes_ = o.memory_bytes_;
    queued_micros_ = o.queued_micros_;
    o.controller_ = nullptr;
    o.total_slots_ = 0;
    o.memory_bytes_ = 0;
  }
  return *this;
}

void SlotGrant::Release() {
  if (controller_ == nullptr) return;
  controller_->ReleaseGrant(this);
  controller_ = nullptr;
  per_node_.clear();
  total_slots_ = 0;
  memory_bytes_ = 0;
}

int AdmissionController::ResolveSlotsPerNode(int configured) {
  if (configured > 0) return configured;
  if (const char* env = std::getenv("EON_EXEC_SLOTS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return 4;
}

AdmissionController::AdmissionController(const AdmissionOptions& options)
    : num_nodes_(options.num_nodes),
      slots_per_node_(ResolveSlotsPerNode(options.slots_per_node)) {
  EON_CHECK(num_nodes_ > 0);
  std::vector<ResourcePoolConfig> configs = options.pools;
  if (configs.empty()) configs.push_back(ResourcePoolConfig{});
  obs::MetricsRegistry* reg = obs::OrDefault(options.registry);
  for (const ResourcePoolConfig& config : configs) {
    Pool pool;
    pool.config = config;
    obs::LabelSet label{{"pool", config.name}};
    pool.queue_depth_gauge = reg->GetGauge("eon_admission_queue_depth", label);
    pool.slots_gauge = reg->GetGauge("eon_admission_slots_in_use", label);
    pool.admitted_counter =
        reg->GetCounter("eon_admission_admitted_total", label);
    pool.shed_counter = reg->GetCounter("eon_admission_shed_total", label);
    pool.timeout_counter =
        reg->GetCounter("eon_admission_timeout_total", label);
    pool.cancelled_counter =
        reg->GetCounter("eon_admission_cancelled_total", label);
    pool.wait_histogram =
        reg->GetHistogram("eon_admission_wait_micros", label);
    if (pools_.empty()) default_pool_ = config.name;
    pools_.emplace(config.name, std::move(pool));
  }
}

AdmissionController::~AdmissionController() {
  std::lock_guard<std::mutex> lock(mu_);
  // Destroying the controller while queries wait or hold slots is a
  // serving-layer shutdown-ordering bug; fail loudly.
  EON_CHECK(waiting_.empty());
  EON_CHECK(slots_in_use_ == 0);
}

AdmissionController::Pool* AdmissionController::FindPool(
    const std::string& name) {
  auto it = pools_.find(name.empty() ? default_pool_ : name);
  return it == pools_.end() ? nullptr : &it->second;
}

bool AdmissionController::CanAdmitLocked(const Waiter& w) const {
  if (slots_in_use_ + w.total_slots > total_slots()) return false;
  for (const auto& [node, k] : w.per_node) {
    auto it = node_in_use_.find(node);
    const int busy = it == node_in_use_.end() ? 0 : it->second;
    if (busy + k > slots_per_node_) return false;
  }
  const ResourcePoolConfig& config = w.pool->config;
  if (config.max_slots >= 0 &&
      w.pool->slots_in_use + w.total_slots > config.max_slots) {
    return false;
  }
  if (config.memory_budget_bytes > 0 &&
      w.pool->memory_in_use + w.memory_bytes > config.memory_budget_bytes) {
    return false;
  }
  return true;
}

bool AdmissionController::IsNextEligibleLocked(const Waiter& w) const {
  if (!CanAdmitLocked(w)) return false;
  for (const Waiter* v : waiting_) {
    if (v == &w) return true;
    // A feasible waiter ahead of us (higher priority, or same priority
    // and older) goes first; an infeasible one (its pool is capped, its
    // nodes are busier) must not block the rest of the queue.
    if (CanAdmitLocked(*v)) return false;
  }
  return true;
}

void AdmissionController::AllocateLocked(const Waiter& w) {
  for (const auto& [node, k] : w.per_node) node_in_use_[node] += k;
  slots_in_use_ += w.total_slots;
  peak_slots_in_use_ = std::max(peak_slots_in_use_, slots_in_use_);
  EON_CHECK(slots_in_use_ <= total_slots());
  w.pool->slots_in_use += w.total_slots;
  w.pool->memory_in_use += w.memory_bytes;
  w.pool->slots_gauge->Set(w.pool->slots_in_use);
}

Result<SlotGrant> AdmissionController::Admit(const AdmissionRequest& request,
                                             CancelToken* cancel) {
  Waiter w;
  w.memory_bytes = request.memory_bytes;
  w.cancel = cancel;
  for (uint64_t node : request.node_slots) w.per_node[node]++;
  w.total_slots = static_cast<int>(request.node_slots.size());
  if (w.total_slots == 0) {
    return Status::InvalidArgument("admission request reserves no slots");
  }

  std::unique_lock<std::mutex> lock(mu_);
  w.pool = FindPool(request.pool);
  if (w.pool == nullptr) {
    return Status::InvalidArgument("unknown resource pool: " + request.pool);
  }
  w.priority = w.pool->config.priority;

  // Requests that could never run must fail fast instead of occupying the
  // queue head until timeout.
  if (w.total_slots > total_slots() ||
      (w.pool->config.max_slots >= 0 &&
       w.total_slots > w.pool->config.max_slots)) {
    return Status::InvalidArgument("request needs more slots than exist");
  }
  for (const auto& [node, k] : w.per_node) {
    (void)node;
    if (k > slots_per_node_) {
      return Status::InvalidArgument(
          "request needs more slots on one node than slots_per_node");
    }
  }
  if (w.pool->config.memory_budget_bytes > 0 &&
      w.memory_bytes > w.pool->config.memory_budget_bytes) {
    return Status::InvalidArgument("request exceeds pool memory budget");
  }
  if (cancel != nullptr && cancel->cancelled()) {
    w.pool->cancelled++;
    w.pool->cancelled_counter->Increment();
    return Status::Aborted("admission cancelled");
  }

  const int64_t arrived = NowMicros();

  // Fast path: nothing admissible ahead of us and resources free.
  w.ticket = next_ticket_++;
  bool queued = false;
  if (!IsNextEligibleLocked(w)) {
    // Refuse, don't queue: past the high-water mark the backlog would
    // only add latency without adding throughput (Taurus-style shedding).
    if (w.pool->queue_depth >= w.pool->config.max_queue_depth) {
      w.pool->shed++;
      w.pool->shed_counter->Increment();
      return Status::Overloaded(
          "resource pool '" + w.pool->config.name +
          "' queue at high-water mark (" +
          std::to_string(w.pool->config.max_queue_depth) + ")");
    }
    queued = true;
    waiting_.push_back(&w);
    std::sort(waiting_.begin(), waiting_.end(),
              [](const Waiter* a, const Waiter* b) {
                if (a->priority != b->priority) {
                  return a->priority > b->priority;
                }
                return a->ticket < b->ticket;
              });
    w.pool->queue_depth++;
    w.pool->queue_depth_gauge->Set(w.pool->queue_depth);

    const int64_t timeout = request.timeout_micros >= 0
                                ? request.timeout_micros
                                : w.pool->config.queue_timeout_micros;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::microseconds(timeout);
    const bool got = cv_.wait_until(lock, deadline, [&] {
      if (cancel != nullptr && cancel->cancelled()) return true;
      return IsNextEligibleLocked(w);
    });

    auto unqueue = [&] {
      waiting_.erase(std::find(waiting_.begin(), waiting_.end(), &w));
      w.pool->queue_depth--;
      w.pool->queue_depth_gauge->Set(w.pool->queue_depth);
      // Our departure may unblock a waiter that was behind us.
      cv_.notify_all();
    };
    if (cancel != nullptr && cancel->cancelled()) {
      unqueue();
      w.pool->cancelled++;
      w.pool->cancelled_counter->Increment();
      return Status::Aborted("admission cancelled");
    }
    if (!got) {
      unqueue();
      w.pool->timed_out++;
      w.pool->timeout_counter->Increment();
      return Status::TimedOut(
          "no execution slot within " + std::to_string(timeout) +
          " micros (pool '" + w.pool->config.name + "')");
    }
    unqueue();
  }

  AllocateLocked(w);
  const int64_t waited = queued ? NowMicros() - arrived : 0;
  w.pool->admitted++;
  w.pool->queued_micros_total += waited;
  w.pool->admitted_counter->Increment();
  w.pool->wait_histogram->Observe(static_cast<double>(waited));

  SlotGrant grant;
  grant.controller_ = this;
  grant.pool_ = w.pool->config.name;
  grant.per_node_ = std::move(w.per_node);
  grant.total_slots_ = w.total_slots;
  grant.memory_bytes_ = w.memory_bytes;
  grant.queued_micros_ = waited;
  return grant;
}

bool AdmissionController::HasPool(const std::string& name) const {
  // pools_ and default_pool_ are immutable after construction.
  return pools_.count(name.empty() ? default_pool_ : name) > 0;
}

void AdmissionController::Cancel(CancelToken* token) {
  if (token == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    token->cancelled_.store(true, std::memory_order_release);
  }
  cv_.notify_all();
}

void AdmissionController::ReleaseGrant(SlotGrant* grant) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [node, k] : grant->per_node_) {
      auto it = node_in_use_.find(node);
      EON_CHECK(it != node_in_use_.end() && it->second >= k);
      it->second -= k;
    }
    slots_in_use_ -= grant->total_slots_;
    EON_CHECK(slots_in_use_ >= 0);
    Pool* pool = FindPool(grant->pool_);
    EON_CHECK(pool != nullptr);
    pool->slots_in_use -= grant->total_slots_;
    pool->memory_in_use -= grant->memory_bytes_;
    pool->slots_gauge->Set(pool->slots_in_use);
  }
  cv_.notify_all();
}

AdmissionController::Stats AdmissionController::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats;
  stats.total_slots = total_slots();
  stats.slots_in_use = slots_in_use_;
  stats.peak_slots_in_use = peak_slots_in_use_;
  stats.queue_depth = static_cast<int>(waiting_.size());
  for (const auto& [name, pool] : pools_) {
    (void)name;
    PoolStats ps;
    ps.name = pool.config.name;
    ps.priority = pool.config.priority;
    ps.max_slots = pool.config.max_slots;
    ps.slots_in_use = pool.slots_in_use;
    ps.memory_budget_bytes = pool.config.memory_budget_bytes;
    ps.memory_in_use_bytes = pool.memory_in_use;
    ps.queue_depth = pool.queue_depth;
    ps.max_queue_depth = pool.config.max_queue_depth;
    ps.queue_timeout_micros = pool.config.queue_timeout_micros;
    ps.admitted = pool.admitted;
    ps.shed = pool.shed;
    ps.timed_out = pool.timed_out;
    ps.cancelled = pool.cancelled;
    ps.queued_micros_total = pool.queued_micros_total;
    stats.pools.push_back(std::move(ps));
  }
  return stats;
}

}  // namespace eon
