file(REMOVE_RECURSE
  "libeon_shard.a"
)
