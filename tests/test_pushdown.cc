// Near-data processing (predicate/aggregate pushdown) tests: the
// ChoosePushdown cost model, the ObjectStore::ScanObject surface of every
// backend (bit-identity with local scans, retry semantics, NotSupported
// fallback), and the executor's pushed morsel path — which must be
// invisible in results at every scan mode, exec width, and crunch mode.
// Runs under TSan via scripts/tsan.sh (`ctest -L race`).

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cache/file_cache.h"
#include "cluster/cluster.h"
#include "columnar/ndp.h"
#include "columnar/ros.h"
#include "engine/ddl.h"
#include "engine/dml.h"
#include "engine/executor.h"
#include "engine/session.h"
#include "engine/system_tables.h"
#include "storage/posix_object_store.h"
#include "storage/sim_object_store.h"
#include "workload/tpch.h"

namespace eon {
namespace {

// ---------------------------------------------------------------------------
// ChoosePushdown: the per-morsel cost decision, pinned case by case.
// ---------------------------------------------------------------------------

PushdownDecision FavorableDecision() {
  PushdownDecision d;
  d.mode = 1;
  d.has_predicate = true;
  d.selectivity = 0.05;
  d.selectivity_cutoff = 0.35;
  d.cold_bytes = 1000000;
  d.pushed_bytes = 10000;
  return d;
}

TEST(ChoosePushdownTest, OffModeNeverPushes) {
  PushdownDecision d = FavorableDecision();
  d.mode = 0;
  EXPECT_FALSE(ChoosePushdown(d));
}

TEST(ChoosePushdownTest, NothingToPushStaysLocal) {
  // No predicate and no aggregates: a push ships every byte anyway.
  PushdownDecision d = FavorableDecision();
  d.has_predicate = false;
  d.has_aggregates = false;
  EXPECT_FALSE(ChoosePushdown(d));
  // Even force mode refuses a pointless push.
  d.mode = 2;
  EXPECT_FALSE(ChoosePushdown(d));
}

TEST(ChoosePushdownTest, ForceModePushesWheneverThereIsWork) {
  PushdownDecision d = FavorableDecision();
  d.mode = 2;
  d.cold_bytes = 0;  // Even fully warm.
  d.selectivity = 1.0;
  EXPECT_TRUE(ChoosePushdown(d));
}

TEST(ChoosePushdownTest, WarmCacheStaysLocal) {
  PushdownDecision d = FavorableDecision();
  d.cold_bytes = 0;
  EXPECT_FALSE(ChoosePushdown(d));
}

TEST(ChoosePushdownTest, UnselectivePredicateStaysLocal) {
  PushdownDecision d = FavorableDecision();
  d.selectivity = 0.5;  // Above the 0.35 cutoff.
  EXPECT_FALSE(ChoosePushdown(d));
  // The cutoff is configurable: raising it re-enables the push.
  d.selectivity_cutoff = 0.6;
  EXPECT_TRUE(ChoosePushdown(d));
}

TEST(ChoosePushdownTest, PushedBytesMustUndercutColdBytes) {
  PushdownDecision d = FavorableDecision();
  d.pushed_bytes = d.cold_bytes;
  EXPECT_FALSE(ChoosePushdown(d));
  d.pushed_bytes = d.cold_bytes - 1;
  EXPECT_TRUE(ChoosePushdown(d));
}

TEST(ChoosePushdownTest, AggregatePushIgnoresSelectivityCutoff) {
  // A pushed fold returns partials, not rows: selectivity is irrelevant.
  PushdownDecision d = FavorableDecision();
  d.has_predicate = false;
  d.has_aggregates = true;
  d.selectivity = 1.0;
  d.pushed_bytes = 1024;
  EXPECT_TRUE(ChoosePushdown(d));
}

// ---------------------------------------------------------------------------
// Direct ScanObject on the store backends: a hand-built ROS container.
// ---------------------------------------------------------------------------

Schema NdpSchema() {
  return Schema({ColumnDef{"id", DataType::kInt64},
                 ColumnDef{"v", DataType::kInt64},
                 ColumnDef{"s", DataType::kString}});
}

std::vector<Row> NdpRows() {
  std::vector<Row> rows;
  for (int64_t i = 0; i < 500; ++i) {
    rows.push_back(Row{Value::Int(i), Value::Int(i % 20),
                       Value::Str(i % 3 == 0 ? "fizz" : "plain")});
  }
  return rows;
}

/// Build the container under `base_key` and Put its files via `store`.
RosBuildResult BuildNdpContainer(ObjectStore* store,
                                 const std::string& base_key) {
  RosWriteOptions wopts;
  wopts.rows_per_block = 64;
  auto built = RosContainerWriter::Build(NdpSchema(), NdpRows(), base_key,
                                         wopts);
  EON_CHECK(built.ok());
  for (const RosColumnFile& f : built->files) {
    EON_CHECK(store->Put(f.key, f.data).ok());
  }
  return std::move(built).value();
}

ScanObjectRequest RowScanRequest(const std::string& base_key) {
  ScanObjectRequest req;
  req.base_key = base_key;
  req.schema = NdpSchema();
  req.output_columns = {0, 2};
  req.predicate = Predicate::Cmp(1, CmpOp::kLt, Value::Int(3));
  req.predicate_columns = {1};
  return req;
}

/// Expected survivors of RowScanRequest, computed row-wise from source.
std::vector<Row> ExpectedRowScan() {
  std::vector<Row> out;
  for (const Row& r : NdpRows()) {
    if (r[1].int_value() < 3) out.push_back(Row{r[0], r[2]});
  }
  return out;
}

void ExpectRowsEqual(const std::vector<Row>& got,
                     const std::vector<Row>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].size(), want[i].size()) << "row " << i;
    for (size_t c = 0; c < got[i].size(); ++c) {
      EXPECT_EQ(got[i][c].Compare(want[i][c]), 0)
          << "row " << i << " col " << c;
    }
  }
}

TEST(ScanObjectTest, MemStoreRowScanMatchesRowWiseOracle) {
  MemObjectStore store;
  BuildNdpContainer(&store, "ndp/c1");

  ScanObjectResponse resp;
  ASSERT_TRUE(store.ScanObject(RowScanRequest("ndp/c1"), &resp).ok());
  ExpectRowsEqual(resp.rows, ExpectedRowScan());
  EXPECT_EQ(resp.rows_output, resp.rows.size());
  EXPECT_EQ(resp.rows_visited, 500u);
  EXPECT_GT(resp.bytes_scanned, 0u);
  EXPECT_GT(resp.response_bytes, 0u);
  // The response is much smaller than the files the store read locally.
  EXPECT_LT(resp.response_bytes, resp.bytes_scanned);

  // Metering: one scan; bytes_read grows by the RESPONSE only (the bytes
  // that crossed the store interface), bytes_scanned by the local reads.
  const ObjectStoreMetrics m = store.metrics();
  EXPECT_EQ(m.scans, 1u);
  EXPECT_EQ(m.bytes_scanned, resp.bytes_scanned);
}

TEST(ScanObjectTest, PosixStoreMatchesMemStore) {
  MemObjectStore mem;
  BuildNdpContainer(&mem, "ndp/c1");
  // TempDir() persists across runs and PosixObjectStore::Put refuses to
  // overwrite, so start from an empty root.
  const std::string root = ::testing::TempDir() + "/ndp_posix_store";
  std::filesystem::remove_all(root);
  PosixObjectStore posix(root);
  BuildNdpContainer(&posix, "ndp/c1");

  ScanObjectResponse a, b;
  ASSERT_TRUE(mem.ScanObject(RowScanRequest("ndp/c1"), &a).ok());
  ASSERT_TRUE(posix.ScanObject(RowScanRequest("ndp/c1"), &b).ok());
  ExpectRowsEqual(b.rows, a.rows);
  EXPECT_EQ(b.bytes_scanned, a.bytes_scanned);
  EXPECT_EQ(b.response_bytes, a.response_bytes);
  EXPECT_EQ(posix.metrics().scans, 1u);
}

TEST(ScanObjectTest, AggregatePartialsMatchManualFold) {
  MemObjectStore store;
  BuildNdpContainer(&store, "ndp/c1");

  ScanObjectRequest req = RowScanRequest("ndp/c1");
  req.output_columns = {0, 1, 2};  // id, v, s in the pushed row layout.
  req.group_columns = {2};         // GROUP BY s.
  req.aggregates = {NdpAggSpec{AggFn::kCount, SIZE_MAX},
                    NdpAggSpec{AggFn::kSum, 1},
                    NdpAggSpec{AggFn::kMin, 0},
                    NdpAggSpec{AggFn::kMax, 0}};
  ScanObjectResponse resp;
  ASSERT_TRUE(store.ScanObject(req, &resp).ok());
  EXPECT_TRUE(resp.rows.empty());

  // Manual oracle over the surviving rows.
  std::map<std::string, std::array<int64_t, 4>> want;  // n, sum, min, max
  for (const Row& r : NdpRows()) {
    if (r[1].int_value() >= 3) continue;
    auto [it, inserted] = want.try_emplace(
        r[2].str_value(),
        std::array<int64_t, 4>{0, 0, INT64_MAX, INT64_MIN});
    it->second[0]++;
    it->second[1] += r[1].int_value();
    it->second[2] = std::min(it->second[2], r[0].int_value());
    it->second[3] = std::max(it->second[3], r[0].int_value());
  }
  ASSERT_EQ(resp.groups.size(), want.size());
  for (const auto& [key, states] : resp.groups) {
    ASSERT_EQ(key.size(), 1u);
    ASSERT_EQ(states.size(), 4u);
    const auto& w = want.at(key[0].str_value());
    EXPECT_EQ(states[0].Finalize(AggFn::kCount, DataType::kInt64).int_value(),
              w[0]);
    EXPECT_EQ(states[1].Finalize(AggFn::kSum, DataType::kInt64).int_value(),
              w[1]);
    EXPECT_EQ(states[2].Finalize(AggFn::kMin, DataType::kInt64).int_value(),
              w[2]);
    EXPECT_EQ(states[3].Finalize(AggFn::kMax, DataType::kInt64).int_value(),
              w[3]);
  }
}

TEST(ScanObjectTest, PushabilityMatrix) {
  // Exactly-mergeable: COUNT anything, MIN/MAX anything, SUM/AVG int64.
  EXPECT_TRUE(IsPushableAggregate(AggFn::kCount, DataType::kString));
  EXPECT_TRUE(IsPushableAggregate(AggFn::kMin, DataType::kDouble));
  EXPECT_TRUE(IsPushableAggregate(AggFn::kMax, DataType::kString));
  EXPECT_TRUE(IsPushableAggregate(AggFn::kSum, DataType::kInt64));
  EXPECT_TRUE(IsPushableAggregate(AggFn::kAvg, DataType::kInt64));
  // Not pushable: double SUM/AVG (FP merge order), COUNT DISTINCT
  // (unbounded state transfer).
  EXPECT_FALSE(IsPushableAggregate(AggFn::kSum, DataType::kDouble));
  EXPECT_FALSE(IsPushableAggregate(AggFn::kAvg, DataType::kDouble));
  EXPECT_FALSE(IsPushableAggregate(AggFn::kCountDistinct, DataType::kInt64));
}

TEST(ScanObjectTest, RetryingStoreRetriesTransientScanFailures) {
  SimClock clock;
  SimStoreOptions sopts;
  sopts.get_latency_micros = 0;
  sopts.put_latency_micros = 0;
  sopts.scan_latency_micros = 0;
  sopts.transient_failure_prob = 0.4;
  SimObjectStore sim(sopts, &clock);
  RetryingObjectStore retry(&sim, RetryOptions{}, &clock);
  BuildNdpContainer(&retry, "ndp/c1");  // Puts ride the retry loop too.

  // Several scans through the 40%-failure store: the retry loop must make
  // every one succeed with the exact same rows.
  const std::vector<Row> want = ExpectedRowScan();
  for (int i = 0; i < 8; ++i) {
    ScanObjectResponse resp;
    ASSERT_TRUE(retry.ScanObject(RowScanRequest("ndp/c1"), &resp).ok())
        << "scan " << i;
    ExpectRowsEqual(resp.rows, want);
  }
  EXPECT_GT(retry.total_retries(), 0u);
}

/// Store with no near-data capability: ScanObject inherits the base-class
/// NotSupported default.
class PlainStore : public ObjectStore {
 public:
  explicit PlainStore(ObjectStore* base) : base_(base) {}
  Status Put(const std::string& key, const std::string& data) override {
    return base_->Put(key, data);
  }
  Result<std::string> Get(const std::string& key) override {
    return base_->Get(key);
  }
  Result<std::string> ReadRange(const std::string& key, uint64_t offset,
                                uint64_t len) override {
    return base_->ReadRange(key, offset, len);
  }
  Result<std::vector<ObjectMeta>> List(const std::string& prefix) override {
    return base_->List(prefix);
  }
  Status Delete(const std::string& key) override { return base_->Delete(key); }
  ObjectStoreMetrics metrics() const override { return base_->metrics(); }

 private:
  ObjectStore* base_;
};

TEST(ScanObjectTest, NotSupportedPassesThroughRetryUnretried) {
  SimClock clock;
  MemObjectStore mem;
  PlainStore plain(&mem);
  RetryingObjectStore retry(&plain, RetryOptions{}, &clock);
  ScanObjectResponse resp;
  Status s = retry.ScanObject(RowScanRequest("ndp/c1"), &resp);
  EXPECT_TRUE(s.IsNotSupported());
  // A capability miss is not transient: no backoff, no retries.
  EXPECT_EQ(retry.total_retries(), 0u);
}

// ---------------------------------------------------------------------------
// Executor-level differential: pushdown must be invisible in results.
// ---------------------------------------------------------------------------

constexpr int kPushModes[] = {0, 2};  // Off vs forced.
constexpr int kWidths[] = {1, 4};

struct PushdownClusters {
  TpchOptions topts;
  TpchData data;

  struct Instance {
    SimClock clock;
    std::unique_ptr<SimObjectStore> store;
    std::unique_ptr<EonCluster> cluster;
  };
  std::map<std::pair<int, int>, std::unique_ptr<Instance>> by_config;

  static PushdownClusters* Get() {
    static PushdownClusters* instance = [] {
      auto* pc = new PushdownClusters();
      pc->topts.scale = 0.05;
      pc->data = GenerateTpch(pc->topts);
      for (int push : kPushModes) {
        for (int width : kWidths) {
          auto inst = std::make_unique<Instance>();
          SimStoreOptions sopts;
          sopts.get_latency_micros = 0;
          sopts.put_latency_micros = 0;
          sopts.list_latency_micros = 0;
          sopts.scan_latency_micros = 0;
          inst->store = std::make_unique<SimObjectStore>(sopts, &inst->clock);
          ClusterOptions copts;
          copts.num_shards = 2;
          copts.k_safety = 2;
          copts.exec_threads = width;
          copts.io_threads = 2;
          copts.pushdown = push;
          std::vector<NodeSpec> specs;
          for (int i = 1; i <= 3; ++i) {
            specs.push_back(NodeSpec{"n" + std::to_string(i), ""});
          }
          auto cluster =
              EonCluster::Create(inst->store.get(), &inst->clock, copts, specs);
          EON_CHECK(cluster.ok());
          inst->cluster = std::move(cluster).value();
          EON_CHECK(inst->cluster->pushdown_mode() == push);
          EON_CHECK(CreateTpchTables(inst->cluster.get()).ok());
          EON_CHECK(LoadTpch(inst->cluster.get(), pc->data, 256).ok());
          pc->by_config[{push, width}] = std::move(inst);
        }
      }
      return pc;
    }();
    return instance;
  }
};

void ClearAllCaches(EonCluster* cluster) {
  for (const auto& node : cluster->nodes()) node->cache()->Clear();
}

bool BitIdentical(const std::vector<Row>& a, const std::vector<Row>& b,
                  std::string* diff) {
  if (a.size() != b.size()) {
    *diff = "row count " + std::to_string(a.size()) + " vs " +
            std::to_string(b.size());
    return false;
  }
  for (size_t r = 0; r < a.size(); ++r) {
    if (a[r].size() != b[r].size()) {
      *diff = "row " + std::to_string(r) + " width mismatch";
      return false;
    }
    for (size_t c = 0; c < a[r].size(); ++c) {
      const Value& x = a[r][c];
      const Value& y = b[r][c];
      bool same = x.type() == y.type() && x.is_null() == y.is_null();
      if (same && !x.is_null()) {
        switch (x.type()) {
          case DataType::kInt64:
            same = x.int_value() == y.int_value();
            break;
          case DataType::kDouble:
            same = x.dbl_value() == y.dbl_value();
            break;
          case DataType::kString:
            same = x.str_value() == y.str_value();
            break;
        }
      }
      if (!same) {
        *diff = "row " + std::to_string(r) + " col " + std::to_string(c) +
                ": " + x.ToString() + " vs " + y.ToString();
        return false;
      }
    }
  }
  return true;
}

/// Query shapes covering the pushed paths: a selective predicate scan, a
/// whole-table group-by with exactly-mergeable aggregates (the aggregate
/// pushdown shape), a filtered aggregate, and an ordered predicate scan.
std::vector<std::pair<std::string, QuerySpec>> PushdownQuerySet() {
  std::vector<std::pair<std::string, QuerySpec>> out;
  const Schema li = TpchLineitemSchema();
  const Schema ord = TpchOrdersSchema();
  {
    QuerySpec q;
    q.scan.table = "lineitem";
    q.scan.columns = {"l_orderkey", "l_extendedprice"};
    q.scan.predicate =
        Predicate::And(Predicate::Cmp(*li.IndexOf("l_shipdate"), CmpOp::kGe,
                                      Value::Int(9800)),
                       Predicate::Cmp(*li.IndexOf("l_quantity"), CmpOp::kLe,
                                      Value::Int(25)));
    out.emplace_back("predicate_scan", q);
  }
  {
    QuerySpec q;
    q.scan.table = "lineitem";
    q.scan.columns = {"l_shipmode", "l_quantity", "l_orderkey"};
    q.group_by = {"l_shipmode"};
    q.aggregates = {{AggFn::kCount, "", "n"},
                    {AggFn::kSum, "l_quantity", "s"},
                    {AggFn::kMin, "l_orderkey", "lo"},
                    {AggFn::kMax, "l_orderkey", "hi"}};
    out.emplace_back("pushed_group_by", q);
  }
  {
    QuerySpec q;
    q.scan.table = "lineitem";
    q.scan.columns = {"l_quantity"};
    q.scan.predicate = Predicate::Cmp(*li.IndexOf("l_shipdate"), CmpOp::kGe,
                                      Value::Int(9700));
    q.aggregates = {{AggFn::kCount, "", "n"},
                    {AggFn::kAvg, "l_quantity", "avg_q"}};
    out.emplace_back("filtered_global_agg", q);
  }
  {
    QuerySpec q;
    q.scan.table = "orders";
    q.scan.columns = {"o_orderkey", "o_orderpriority"};
    q.scan.predicate = Predicate::Cmp(*ord.IndexOf("o_totalprice"),
                                      CmpOp::kGt, Value::Dbl(5000.0));
    q.order_by = "o_orderkey";
    out.emplace_back("ordered_scan", q);
  }
  return out;
}

// Cold scans must return bit-identical rows with pushdown off vs forced,
// at every (scan mode x exec width x crunch mode). The off/width-1/rowwise
// run is the oracle.
TEST(PushdownDifferential, ColdIdentityAcrossModesWidthsCrunch) {
  PushdownClusters* pc = PushdownClusters::Get();
  constexpr ScanMode kScanModes[] = {ScanMode::kRowWise, ScanMode::kBlockEval,
                                     ScanMode::kLateMat};
  constexpr CrunchMode kCrunches[] = {CrunchMode::kNone,
                                      CrunchMode::kHashFilter,
                                      CrunchMode::kContainerSplit};
  for (const auto& [name, spec] : PushdownQuerySet()) {
    for (CrunchMode crunch : kCrunches) {
      std::vector<Row> baseline;
      bool have_baseline = false;
      for (ScanMode mode : kScanModes) {
        for (int push : kPushModes) {
          for (int width : kWidths) {
            EonCluster* cluster = pc->by_config[{push, width}]->cluster.get();
            ClearAllCaches(cluster);
            EonSession session(cluster, "", /*seed=*/31);
            session.set_scan_mode(mode);
            session.set_crunch_mode(crunch);
            auto result = session.Execute(spec);
            ASSERT_TRUE(result.ok())
                << name << " " << ScanModeName(mode) << " push " << push
                << " width " << width << ": " << result.status().ToString();
            // Force mode must actually push whenever there is pushable
            // work: a predicate (any crunch), or aggregates when crunch is
            // off (crunch disables aggregate pushdown by design).
            const bool pushable =
                spec.scan.predicate != nullptr ||
                (!spec.aggregates.empty() && crunch == CrunchMode::kNone);
            if (push == 2 && pushable) {
              EXPECT_GT(result->profile.pushdown_containers_pushed, 0u)
                  << name << " " << ScanModeName(mode) << " width " << width
                  << " crunch " << static_cast<int>(crunch);
            }
            if (!have_baseline) {
              baseline = std::move(result->rows);
              have_baseline = true;
              continue;
            }
            std::string diff;
            EXPECT_TRUE(BitIdentical(result->rows, baseline, &diff))
                << name << " " << ScanModeName(mode) << " push " << push
                << " width " << width << " crunch " << static_cast<int>(crunch)
                << " diverged: " << diff;
          }
        }
      }
    }
  }
}

// Forced aggregate pushdown: partials come back from the store (zero
// scanned rows materialize on the nodes) and merge to the same bits.
TEST(PushdownDifferential, AggregatePartialsComeFromTheStore) {
  PushdownClusters* pc = PushdownClusters::Get();
  EonCluster* forced = pc->by_config[{2, 1}]->cluster.get();
  EonCluster* off = pc->by_config[{0, 1}]->cluster.get();
  ClearAllCaches(forced);
  ClearAllCaches(off);

  QuerySpec q = PushdownQuerySet()[1].second;  // pushed_group_by
  EonSession fs(forced, "", /*seed=*/11);
  EonSession os(off, "", /*seed=*/11);
  auto fr = fs.Execute(q);
  auto orr = os.Execute(q);
  ASSERT_TRUE(fr.ok()) << fr.status().ToString();
  ASSERT_TRUE(orr.ok()) << orr.status().ToString();
  EXPECT_TRUE(fr->profile.pushdown_aggregates);
  EXPECT_GT(fr->profile.pushdown_containers_pushed, 0u);
  EXPECT_GT(fr->profile.store_scans, 0u);
  EXPECT_FALSE(orr->profile.pushdown_aggregates);
  EXPECT_EQ(orr->profile.pushdown_containers_pushed, 0u);
  std::string diff;
  EXPECT_TRUE(BitIdentical(fr->rows, orr->rows, &diff)) << diff;
}

// Double SUM is not exactly mergeable store-side: with no predicate either,
// even force mode has nothing to push and the whole scan stays local.
TEST(PushdownDifferential, DoubleSumIsNeverPushed) {
  PushdownClusters* pc = PushdownClusters::Get();
  EonCluster* forced = pc->by_config[{2, 1}]->cluster.get();
  EonCluster* off = pc->by_config[{0, 1}]->cluster.get();
  ClearAllCaches(forced);
  ClearAllCaches(off);

  QuerySpec q;
  q.scan.table = "orders";
  q.scan.columns = {"o_orderpriority", "o_totalprice"};
  q.group_by = {"o_orderpriority"};
  q.aggregates = {{AggFn::kSum, "o_totalprice", "s"}};

  EonSession fs(forced, "", /*seed=*/13);
  EonSession os(off, "", /*seed=*/13);
  auto fr = fs.Execute(q);
  auto orr = os.Execute(q);
  ASSERT_TRUE(fr.ok()) << fr.status().ToString();
  ASSERT_TRUE(orr.ok()) << orr.status().ToString();
  EXPECT_FALSE(fr->profile.pushdown_aggregates);
  EXPECT_EQ(fr->profile.pushdown_containers_pushed, 0u);
  std::string diff;
  EXPECT_TRUE(BitIdentical(fr->rows, orr->rows, &diff)) << diff;
}

// ---------------------------------------------------------------------------
// Cost-based planner choice on a custom table with a wide payload column.
// ---------------------------------------------------------------------------

struct PlannerFixture {
  SimClock clock;
  std::unique_ptr<SimObjectStore> store;
  std::unique_ptr<EonCluster> cluster;

  PlannerFixture() {
    SimStoreOptions sopts;
    sopts.get_latency_micros = 0;
    sopts.put_latency_micros = 0;
    sopts.list_latency_micros = 0;
    sopts.scan_latency_micros = 0;
    store = std::make_unique<SimObjectStore>(sopts, &clock);
    ClusterOptions copts;
    copts.num_shards = 2;
    copts.k_safety = 2;
    copts.exec_threads = 1;
    copts.pushdown = 1;  // Cost-based.
    std::vector<NodeSpec> specs = {{"n1", ""}, {"n2", ""}, {"n3", ""}};
    auto c = EonCluster::Create(store.get(), &clock, copts, specs);
    EON_CHECK(c.ok());
    cluster = std::move(c).value();

    Schema schema({ColumnDef{"id", DataType::kInt64},
                   ColumnDef{"v", DataType::kInt64},
                   ColumnDef{"payload", DataType::kString}});
    ProjectionSpec proj;
    proj.name = "events_super";
    proj.columns = {"id", "v", "payload"};
    proj.sort_columns = {"id"};
    proj.segmentation_columns = {"id"};
    // No partition column: one big container per shard, so the predicate
    // filters INSIDE containers instead of container pruning doing it all.
    EON_CHECK(CreateTable(cluster.get(), "events", schema, std::nullopt,
                          {proj})
                  .ok());
    std::vector<Row> rows;
    for (int64_t i = 0; i < 4000; ++i) {
      // High-cardinality payload: dictionary encoding cannot shrink it, so
      // the payload column file is wide — the bytes a push avoids moving.
      std::string payload = "payload-" + std::to_string(i * 2654435761ULL);
      payload.resize(64, 'x');
      rows.push_back(
          Row{Value::Int(i), Value::Int(i % 100), Value::Str(payload)});
    }
    CopyOptions lopts;
    lopts.rows_per_block = 512;
    EON_CHECK(CopyInto(cluster.get(), "events", rows, lopts).ok());
  }

  Result<QueryResult> RunSelective(uint64_t seed) {
    QuerySpec q;
    q.scan.table = "events";
    q.scan.columns = {"id", "payload"};
    // Equality prior 0.05: well under the 0.35 cutoff.
    q.scan.predicate = Predicate::Cmp(1, CmpOp::kEq, Value::Int(7));
    EonSession session(cluster.get(), "", seed);
    return session.Execute(q);
  }
};

TEST(PushdownPlannerChoice, ColdSelectiveScanPushesWarmScanStaysLocal) {
  PlannerFixture f;
  ClearAllCaches(f.cluster.get());

  // Cold + selective + wide payload: every morsel should push, the scan
  // reads nothing through the caches, and no prefetch is issued.
  auto cold = f.RunSelective(/*seed=*/17);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_GT(cold->profile.pushdown_containers_pushed, 0u);
  EXPECT_EQ(cold->profile.pushdown_containers_local, 0u);
  EXPECT_EQ(cold->profile.prefetch_issued, 0u);
  EXPECT_EQ(cold->profile.cache_fill_bytes, 0u);
  EXPECT_GT(cold->profile.store_scans, 0u);
  EXPECT_GT(cold->profile.pushdown_bytes_saved,
            cold->profile.pushdown_response_bytes);

  // Warm the caches with a pushdown-irrelevant full read, then rerun: the
  // planner must now keep every morsel local (cold_bytes == 0).
  {
    QuerySpec warmup;
    warmup.scan.table = "events";
    warmup.scan.columns = {"id", "v", "payload"};
    EonSession session(f.cluster.get(), "", /*seed=*/17);
    ASSERT_TRUE(session.Execute(warmup).ok());
  }
  auto warm = f.RunSelective(/*seed=*/17);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_EQ(warm->profile.pushdown_containers_pushed, 0u);
  EXPECT_GT(warm->profile.pushdown_containers_local, 0u);
  EXPECT_EQ(warm->profile.store_scans, 0u);

  std::string diff;
  EXPECT_TRUE(BitIdentical(cold->rows, warm->rows, &diff)) << diff;
}

TEST(PushdownPlannerChoice, PushedScanShrinksBytesOverNetwork) {
  PlannerFixture f;
  ClearAllCaches(f.cluster.get());
  auto pushed = f.RunSelective(/*seed=*/19);
  ASSERT_TRUE(pushed.ok());
  ASSERT_GT(pushed->profile.pushdown_containers_pushed, 0u);

  // Same query, caches cleared, pushdown disabled via a sibling cluster?
  // Cheaper: the pushed run's own accounting must show the asymmetry —
  // bytes crossing the wire (store_bytes_read) are a small fraction of
  // what the store scanned next to the data.
  EXPECT_GT(pushed->profile.pushdown_store_bytes_scanned,
            4 * pushed->profile.pushdown_response_bytes);
  EXPECT_GT(pushed->profile.pushdown_store_rows_filtered, 0u);
}

// The dc_store_requests system table grows op="scan" rows carrying
// bytes_scanned, queryable through the ordinary engine path.
TEST(PushdownPlannerChoice, ScanRequestsLandInDataCollector) {
  PlannerFixture f;
  ClearAllCaches(f.cluster.get());
  ASSERT_TRUE(f.RunSelective(/*seed=*/23).ok());

  QuerySpec q;
  q.scan.table = "dc_store_requests";
  q.scan.columns = {"op", "bytes", "bytes_scanned"};
  const Schema& schema = *SystemTableSchema("dc_store_requests");
  q.scan.predicate =
      Predicate::Cmp(*schema.IndexOf("op"), CmpOp::kEq, Value::Str("scan"));
  EonSession session(f.cluster.get(), "", /*seed=*/1);
  auto rows = session.Execute(q);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_GT(rows->rows.size(), 0u);
  for (const Row& r : rows->rows) {
    EXPECT_EQ(r[0].str_value(), "scan");
    EXPECT_GT(r[2].int_value(), 0);  // bytes_scanned recorded.
  }
}

// Fallback: a shared store without ScanObject silently degrades forced
// pushdown to the local path — same rows, zero pushed containers.
TEST(PushdownFallback, StoreWithoutScanCapabilityFallsBack) {
  SimClock clock;
  MemObjectStore mem;
  PlainStore plain(&mem);
  ClusterOptions copts;
  copts.num_shards = 2;
  copts.k_safety = 2;
  copts.exec_threads = 1;
  copts.pushdown = 2;  // Forced — and still must fall back cleanly.
  std::vector<NodeSpec> specs = {{"n1", ""}, {"n2", ""}};
  auto c = EonCluster::Create(&plain, &clock, copts, specs);
  ASSERT_TRUE(c.ok());
  EonCluster* cluster = c->get();

  Schema schema({ColumnDef{"id", DataType::kInt64},
                 ColumnDef{"v", DataType::kInt64}});
  ProjectionSpec proj;
  proj.name = "t_super";
  proj.columns = {"id", "v"};
  proj.sort_columns = {"id"};
  proj.segmentation_columns = {"id"};
  ASSERT_TRUE(CreateTable(cluster, "t", schema, std::nullopt, {proj}).ok());
  std::vector<Row> rows;
  for (int64_t i = 0; i < 1000; ++i) {
    rows.push_back(Row{Value::Int(i), Value::Int(i % 10)});
  }
  ASSERT_TRUE(CopyInto(cluster, "t", rows, CopyOptions{}).ok());
  ClearAllCaches(cluster);

  QuerySpec q;
  q.scan.table = "t";
  q.scan.columns = {"id"};
  q.scan.predicate = Predicate::Cmp(1, CmpOp::kEq, Value::Int(3));
  EonSession session(cluster, "", /*seed=*/5);
  auto result = session.Execute(q);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->profile.pushdown_containers_pushed, 0u);
  EXPECT_GT(result->profile.pushdown_containers_local, 0u);
  EXPECT_EQ(result->rows.size(), 100u);
}

// ---------------------------------------------------------------------------
// Concurrency (TSan target): parallel pushed scans against one store and
// one cluster must neither race nor diverge.
// ---------------------------------------------------------------------------

TEST(PushdownRace, ConcurrentScanObjectCallsAreIndependent) {
  MemObjectStore store;
  BuildNdpContainer(&store, "ndp/c1");
  const std::vector<Row> want = ExpectedRowScan();

  std::atomic<int> bad{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 8; ++i) {
        ScanObjectRequest req = RowScanRequest("ndp/c1");
        if ((t + i) % 2 == 1) {
          // Interleave aggregate pushes over the same files.
          req.aggregates = {NdpAggSpec{AggFn::kCount, SIZE_MAX}};
          req.group_columns = {};
          ScanObjectResponse resp;
          if (!store.ScanObject(req, &resp).ok() ||
              resp.groups.size() != 1 ||
              resp.groups.begin()
                      ->second[0]
                      .Finalize(AggFn::kCount, DataType::kInt64)
                      .int_value() != static_cast<int64_t>(want.size())) {
            bad.fetch_add(1);
          }
          continue;
        }
        ScanObjectResponse resp;
        if (!store.ScanObject(req, &resp).ok() ||
            resp.rows.size() != want.size()) {
          bad.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(bad.load(), 0);
  EXPECT_EQ(store.metrics().scans, 32u);
}

TEST(PushdownRace, ConcurrentForcedQueriesStayIdentical) {
  PushdownClusters* pc = PushdownClusters::Get();
  EonCluster* cluster = pc->by_config[{2, 4}]->cluster.get();
  ClearAllCaches(cluster);

  QuerySpec q = PushdownQuerySet()[0].second;  // predicate_scan
  EonSession baseline_session(cluster, "", /*seed=*/41);
  auto baseline = baseline_session.Execute(q);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  std::atomic<int> bad{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&] {
      // A fresh session per run keeps every execution at the same seed and
      // sequence (same participation, same morsel order), so each result
      // must match the baseline bit for bit while its pushed morsels race
      // the other threads' on the same store.
      for (int i = 0; i < 3; ++i) {
        EonSession session(cluster, "", /*seed=*/41);
        auto result = session.Execute(q);
        std::string diff;
        if (!result.ok() || !BitIdentical(result->rows, baseline->rows, &diff)) {
          bad.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(bad.load(), 0);
}

}  // namespace
}  // namespace eon
