#include "engine/dml.h"

#include <algorithm>
#include <map>

#include "columnar/sort.h"
#include "engine/executor.h"
#include "obs/dc.h"
#include "obs/trace.h"

namespace eon {

Result<PredicatePtr> RebindPredicate(const PredicatePtr& pred,
                                     const ProjectionDef& proj) {
  if (pred == nullptr) return PredicatePtr(nullptr);
  switch (pred->kind()) {
    case Predicate::Kind::kTrue:
      return Predicate::True();
    case Predicate::Kind::kCmp: {
      for (size_t pos = 0; pos < proj.columns.size(); ++pos) {
        if (proj.columns[pos] == pred->col_index()) {
          return Predicate::Cmp(pos, pred->op(), pred->literal());
        }
      }
      return Status::InvalidArgument(
          "projection " + proj.name + " lacks predicate column " +
          std::to_string(pred->col_index()));
    }
    case Predicate::Kind::kAnd: {
      EON_ASSIGN_OR_RETURN(PredicatePtr l, RebindPredicate(pred->left(), proj));
      EON_ASSIGN_OR_RETURN(PredicatePtr r,
                           RebindPredicate(pred->right(), proj));
      return Predicate::And(std::move(l), std::move(r));
    }
    case Predicate::Kind::kOr: {
      EON_ASSIGN_OR_RETURN(PredicatePtr l, RebindPredicate(pred->left(), proj));
      EON_ASSIGN_OR_RETURN(PredicatePtr r,
                           RebindPredicate(pred->right(), proj));
      return Predicate::Or(std::move(l), std::move(r));
    }
    case Predicate::Kind::kNot: {
      EON_ASSIGN_OR_RETURN(PredicatePtr l, RebindPredicate(pred->left(), proj));
      return Predicate::Not(std::move(l));
    }
  }
  return Status::Internal("unknown predicate kind");
}

Result<DeleteVector> LoadDeleteVector(const CatalogState& state,
                                      const StorageContainerMeta& container,
                                      FileFetcher* fetcher) {
  DeleteVector merged;
  for (const DeleteVectorMeta* meta : state.DeleteVectorsOf(container.oid)) {
    EON_ASSIGN_OR_RETURN(std::string data, fetcher->Fetch(meta->key));
    EON_ASSIGN_OR_RETURN(DeleteVector dv, DeleteVector::Deserialize(data));
    merged.Union(dv);
  }
  return merged;
}

namespace {

/// One container's worth of rows ready to write: target shard + the rows.
struct WriteGroup {
  ShardId shard = 0;
  std::vector<Row> rows;
};

/// Split projection rows by shard, then by table partition value within
/// each shard (each file contains data from only one partition so file
/// pruning aligns with the partition expression, Section 2.1).
std::vector<WriteGroup> SplitRows(const ShardingConfig& sharding,
                                  const ProjectionDef& proj,
                                  std::optional<size_t> partition_col_in_proj,
                                  std::vector<Row> proj_rows) {
  // Shard bucketing: replicated projections go whole to the replica shard.
  std::map<ShardId, std::vector<Row>> by_shard;
  if (proj.replicated()) {
    by_shard[sharding.replica_shard()] = std::move(proj_rows);
  } else {
    for (Row& row : proj_rows) {
      ShardId s = sharding.ShardForHash(proj.SegHashRow(row));
      by_shard[s].push_back(std::move(row));
    }
  }

  std::vector<WriteGroup> groups;
  for (auto& [shard, rows] : by_shard) {
    if (rows.empty()) continue;
    if (!partition_col_in_proj.has_value()) {
      groups.push_back(WriteGroup{shard, std::move(rows)});
      continue;
    }
    std::map<Value, std::vector<Row>> by_partition;
    for (Row& row : rows) {
      by_partition[row[*partition_col_in_proj]].push_back(std::move(row));
    }
    for (auto& [value, part_rows] : by_partition) {
      groups.push_back(WriteGroup{shard, std::move(part_rows)});
    }
  }
  return groups;
}

/// Position of the table partition column within the projection, if the
/// projection carries it.
std::optional<size_t> PartitionColInProj(const TableDef& table,
                                         const ProjectionDef& proj) {
  if (!table.partition_column.has_value()) return std::nullopt;
  for (size_t pos = 0; pos < proj.columns.size(); ++pos) {
    if (proj.columns[pos] == *table.partition_column) return pos;
  }
  return std::nullopt;
}

/// Up nodes with a live WOS, in node-oid order — the global lock order
/// for their moveout/delete gates.
std::vector<Node*> WosNodes(EonCluster* cluster) {
  std::vector<Node*> out;
  for (const auto& n : cluster->nodes()) {
    if (n->is_up() && n->wos_enabled()) out.push_back(n.get());
  }
  std::sort(out.begin(), out.end(),
            [](const Node* a, const Node* b) { return a->oid() < b->oid(); });
  return out;
}

}  // namespace

std::vector<Row> ComputeLiveAggRows(const TableDef& lap,
                                    const std::vector<Row>& base_rows) {
  struct KeyLess {
    bool operator()(const std::vector<Value>& a,
                    const std::vector<Value>& b) const {
      for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
        int c = a[i].Compare(b[i]);
        if (c != 0) return c < 0;
      }
      return a.size() < b.size();
    }
  };
  struct Partial {
    int64_t count = 0;
    double sum = 0;
    int64_t sum_int = 0;
    bool sum_is_int = true;
    Value min, max;
  };
  std::map<std::vector<Value>, std::vector<Partial>, KeyLess> groups;
  for (const Row& row : base_rows) {
    std::vector<Value> key;
    key.reserve(lap.lap_group_columns.size());
    for (size_t c : lap.lap_group_columns) key.push_back(row[c]);
    auto [it, inserted] = groups.try_emplace(
        std::move(key), std::vector<Partial>(lap.lap_aggs.size()));
    for (size_t a = 0; a < lap.lap_aggs.size(); ++a) {
      Partial& p = it->second[a];
      const LiveAggSpec& spec = lap.lap_aggs[a];
      if (spec.fn == AggFn::kCount) {
        p.count++;
        continue;
      }
      const Value& v = row[spec.source_column];
      if (v.is_null()) continue;
      switch (spec.fn) {
        case AggFn::kSum:
          if (v.type() == DataType::kInt64) {
            p.sum_int += v.int_value();
          } else {
            p.sum_is_int = false;
            p.sum += v.AsDouble();
          }
          break;
        case AggFn::kMin:
          if (p.min.is_null() || v.Compare(p.min) < 0) p.min = v;
          break;
        case AggFn::kMax:
          if (p.max.is_null() || v.Compare(p.max) > 0) p.max = v;
          break;
        default:
          break;
      }
    }
  }

  std::vector<Row> out;
  out.reserve(groups.size());
  const size_t ngroups = lap.lap_group_columns.size();
  for (const auto& [key, partials] : groups) {
    Row row = key;
    for (size_t a = 0; a < partials.size(); ++a) {
      const Partial& p = partials[a];
      const LiveAggSpec& spec = lap.lap_aggs[a];
      const DataType agg_type = lap.schema.column(ngroups + a).type;
      switch (spec.fn) {
        case AggFn::kCount:
          row.push_back(Value::Int(p.count));
          break;
        case AggFn::kSum:
          if (agg_type == DataType::kInt64) {
            row.push_back(Value::Int(p.sum_int));
          } else {
            row.push_back(Value::Dbl(p.sum + static_cast<double>(p.sum_int)));
          }
          break;
        case AggFn::kMin:
          row.push_back(p.min.is_null() ? Value::Null(agg_type) : p.min);
          break;
        case AggFn::kMax:
          row.push_back(p.max.is_null() ? Value::Null(agg_type) : p.max);
          break;
        default:
          row.push_back(Value::Null(agg_type));
          break;
      }
    }
    out.push_back(std::move(row));
  }
  return out;
}

Result<std::map<Value, Value>> BuildDimensionLookup(
    EonCluster* cluster, const CatalogState& snapshot,
    const FlattenedColDef& def) {
  const TableDef* dim = snapshot.FindTable(def.dim_table);
  if (dim == nullptr) return Status::NotFound("flattened dimension dropped");
  QuerySpec q;
  q.scan.table = dim->name;
  q.scan.columns = {dim->schema.column(def.dim_key_column).name,
                    dim->schema.column(def.dim_value_column).name};
  EON_ASSIGN_OR_RETURN(ExecContext ctx,
                       BuildExecContext(cluster, "", def.dim_table));
  EON_ASSIGN_OR_RETURN(QueryResult result, ExecuteQuery(cluster, q, ctx));
  std::map<Value, Value> lookup;
  for (Row& row : result.rows) lookup[row[0]] = row[1];
  return lookup;
}

Result<uint64_t> CopyInto(EonCluster* cluster, const std::string& table,
                          const std::vector<Row>& rows,
                          const CopyOptions& options) {
  Node* coord = cluster->AnyUpNode();
  if (coord == nullptr) return Status::Unavailable("no up nodes");
  auto snapshot = coord->catalog()->snapshot();
  const TableDef* tdef = snapshot->FindTableByName(table);
  if (tdef == nullptr) return Status::NotFound("no such table: " + table);
  if (tdef->is_live_aggregate()) {
    return Status::InvalidArgument(
        "cannot COPY directly into a live aggregate projection");
  }

  // Flattened-table denormalization (Section 2.1): callers load the base
  // columns; the derived columns are filled by joining the dimensions at
  // load time.
  std::vector<Row> expanded;
  const std::vector<Row>* effective_rows = &rows;
  if (tdef->is_flattened()) {
    const size_t base_arity =
        tdef->schema.num_columns() - tdef->flattened.size();
    std::vector<std::map<Value, Value>> lookups;
    for (const FlattenedColDef& def : tdef->flattened) {
      using DimLookupMap = std::map<Value, Value>;
      EON_ASSIGN_OR_RETURN(DimLookupMap lookup,
                           BuildDimensionLookup(cluster, *snapshot, def));
      lookups.push_back(std::move(lookup));
    }
    expanded.reserve(rows.size());
    for (const Row& row : rows) {
      if (row.size() != base_arity) {
        return Status::InvalidArgument(
            "flattened table load expects the base columns only");
      }
      Row full = row;
      for (size_t i = 0; i < tdef->flattened.size(); ++i) {
        const FlattenedColDef& def = tdef->flattened[i];
        const DataType type = tdef->schema.column(def.target_column).type;
        auto it = lookups[i].find(full[def.fact_key_column]);
        full.push_back(it == lookups[i].end() ? Value::Null(type)
                                              : it->second);
      }
      expanded.push_back(std::move(full));
    }
    effective_rows = &expanded;
  }

  // Live aggregate maintenance (Section 2.1): the same load transaction
  // appends each LAP's partial aggregates for this batch.
  std::vector<std::pair<std::string, std::vector<Row>>> loads;
  loads.emplace_back(table, *effective_rows);
  for (const auto& [oid, t] : snapshot->tables) {
    if (t.lap_base == tdef->oid) {
      loads.emplace_back(t.name, ComputeLiveAggRows(t, *effective_rows));
    }
  }
  return LoadIntoTables(cluster, loads, options);
}

Result<uint64_t> InsertInto(EonCluster* cluster, const std::string& table,
                            const std::vector<Row>& rows,
                            const InsertOptions& options,
                            obs::QueryProfile* profile) {
  if (rows.empty()) return 0;
  Node* coord = nullptr;
  if (!options.connected_node.empty()) {
    for (const auto& n : cluster->nodes()) {
      if (n->name() == options.connected_node && n->is_up()) {
        coord = n.get();
        break;
      }
    }
  }
  if (coord == nullptr) coord = cluster->AnyUpNode();
  if (coord == nullptr) return Status::Unavailable("no up nodes");
  auto snapshot = coord->catalog()->snapshot();
  const TableDef* tdef = snapshot->FindTableByName(table);
  if (tdef == nullptr) return Status::NotFound("no such table: " + table);
  if (tdef->is_live_aggregate()) {
    return Status::InvalidArgument(
        "cannot INSERT into a live aggregate projection");
  }

  // The fast path covers plain tables. Flattened targets (load-time
  // dimension joins) and LAP bases (aggregate maintenance must ride the
  // same commit) stay on the direct-ROS COPY path.
  bool direct = !coord->wos_enabled() || tdef->is_flattened();
  if (!direct) {
    for (const auto& [toid, t] : snapshot->tables) {
      if (t.lap_base == tdef->oid) {
        direct = true;
        break;
      }
    }
  }
  if (direct) {
    EON_ASSIGN_OR_RETURN(uint64_t version, CopyInto(cluster, table, rows));
    (void)version;
    return rows.size();
  }

  for (const Row& row : rows) {
    if (!tdef->schema.RowMatches(row)) {
      return Status::InvalidArgument("row does not match table schema of " +
                                     table);
    }
  }

  obs::Span span = obs::StartTraceSpan("insert_wos");
  if (span.valid()) {
    span.SetNode(coord->name());
    span.SetAttribute("table", table);
    span.SetAttribute("rows", static_cast<int64_t>(rows.size()));
  }
  WalRecord rec;
  rec.kind = WalRecord::Kind::kInsert;
  rec.payload = EncodeWosInsert(tdef->oid, rows);
  const uint64_t lsn = coord->wal()->Append(std::move(rec));
  EON_ASSIGN_OR_RETURN(WalCommitInfo info, coord->wal()->Commit(lsn));
  if (span.valid()) {
    span.SetAttribute("lsn", static_cast<int64_t>(lsn));
    span.SetAttribute("commit_wait_micros", info.wait_micros);
    span.End();
  }
  if (profile != nullptr) {
    profile->wal_records_appended++;
    profile->wal_rows += rows.size();
    profile->wal_commit_wait_micros += info.wait_micros;
    if (info.led_group) {
      profile->wal_led_group = true;
      profile->wal_group_size = std::max(profile->wal_group_size,
                                         info.group_size);
    }
  }

  // Moveout threshold: once this node's unflushed rows for the table
  // reach the configured budget, snapshot them to ROS synchronously (the
  // TupleMover also sweeps on its own cadence).
  if (coord->wos()->UnflushedRows(tdef->oid) >=
      coord->wos_options().flush_rows) {
    Result<uint64_t> moved = MoveoutWos(cluster, table);
    if (!moved.ok()) return moved.status();
  }
  return rows.size();
}

Result<uint64_t> MoveoutWos(EonCluster* cluster, const std::string& table) {
  Node* coord = cluster->AnyUpNode();
  if (coord == nullptr) return Status::Unavailable("no up nodes");
  auto snapshot = coord->catalog()->snapshot();
  const TableDef* tdef = snapshot->FindTableByName(table);
  if (tdef == nullptr) return Status::NotFound("no such table: " + table);

  std::vector<Node*> wos_nodes = WosNodes(cluster);
  if (wos_nodes.empty()) return 0;

  obs::Span span = obs::StartTraceSpan("moveout");
  if (span.valid()) span.SetAttribute("table", table);

  // Gate every node for the whole {gather, container commit, flush-marker
  // commit} window: a query either collects the WOS before the catalog
  // commit (rows visible in memory, containers absent from its snapshot)
  // or after the flush markers applied (rows excluded by flush_version,
  // containers present) — never both, never neither.
  std::vector<std::unique_lock<std::mutex>> gates;
  gates.reserve(wos_nodes.size());
  for (Node* n : wos_nodes) gates.push_back(n->wos()->LockGate());

  struct NodeFlush {
    Node* node = nullptr;
    uint64_t up_to_lsn = 0;
    uint64_t rows = 0;
  };
  std::vector<NodeFlush> flushes;
  std::vector<Row> rows;
  for (Node* n : wos_nodes) {
    Wos::Unflushed u = n->wos()->GatherUnflushed(tdef->oid);
    if (u.up_to_lsn == 0) continue;
    flushes.push_back(NodeFlush{n, u.up_to_lsn, u.rows.size()});
    for (Row& r : u.rows) rows.push_back(std::move(r));
  }
  if (rows.empty()) {
    span.End();
    return 0;
  }
  const uint64_t moved = rows.size();
  if (span.valid()) span.SetAttribute("rows", static_cast<int64_t>(moved));

  std::vector<std::pair<std::string, std::vector<Row>>> loads;
  loads.emplace_back(table, std::move(rows));
  Result<uint64_t> version = LoadIntoTables(cluster, loads);
  if (!version.ok()) return version.status();  // Gates release on unwind.
  if (span.valid()) {
    span.SetAttribute("version", static_cast<int64_t>(*version));
  }

  // Mark the moved batches flushed, durably, before the gates drop. The
  // only double-exposure window left is a crash between the container
  // commit above and this marker becoming durable (DESIGN.md §14).
  for (const NodeFlush& f : flushes) {
    WosFlushPayload p;
    p.table_oid = tdef->oid;
    p.up_to_lsn = f.up_to_lsn;
    p.version = *version;
    WalRecord rec;
    rec.kind = WalRecord::Kind::kFlush;
    rec.payload = EncodeWosFlush(p);
    const uint64_t lsn = f.node->wal()->Append(std::move(rec));
    Result<WalCommitInfo> committed = f.node->wal()->Commit(lsn);
    if (!committed.ok()) return committed.status();
    obs::DcWalEvent e;
    e.kind = "moveout";
    e.table = table;
    e.lsn = f.up_to_lsn;
    e.records = f.rows;
    f.node->dc()->RecordWalEvent(std::move(e));
  }
  gates.clear();
  span.End();

  // Log truncation, outside the gates. The WAL is shared by every table
  // on a node, so each node's safe watermark is just below its oldest
  // still-unflushed batch (any table); with nothing unflushed the whole
  // synced log can go.
  for (const NodeFlush& f : flushes) {
    const uint64_t min_unflushed = f.node->wos()->MinUnflushedLsn();
    const uint64_t safe = min_unflushed == 0 ? f.node->wal()->synced_lsn()
                                             : min_unflushed - 1;
    if (safe == 0) continue;
    Status truncated = f.node->wal()->Truncate(safe);
    if (!truncated.ok()) continue;  // Retried by the next moveout.
    obs::DcWalEvent e;
    e.kind = "checkpoint";
    e.lsn = safe;
    f.node->dc()->RecordWalEvent(std::move(e));
  }

  // Drop retained flushed batches no running query can still read
  // (Section 6.5 gossip: the minimum running-query version across nodes).
  uint64_t min_running = UINT64_MAX;
  for (const auto& n : cluster->nodes()) {
    if (n->is_up()) {
      min_running = std::min(min_running, n->MinRunningQueryVersion());
    }
  }
  if (min_running != UINT64_MAX) {
    for (Node* n : wos_nodes) n->wos()->ReleaseFlushed(min_running);
  }
  return moved;
}

namespace {

/// Shared writer: when `only_projection` is set, containers are written
/// for that projection alone (new-projection backfill).
Result<uint64_t> LoadIntoTablesFiltered(
    EonCluster* cluster,
    const std::vector<std::pair<std::string, std::vector<Row>>>& loads,
    const CopyOptions& options, Oid only_projection) {
  Node* coord = cluster->AnyUpNode();
  if (coord == nullptr) return Status::Unavailable("no up nodes");
  auto snapshot = coord->catalog()->snapshot();
  for (const auto& [table, rows] : loads) {
    const TableDef* tdef = snapshot->FindTableByName(table);
    if (tdef == nullptr) return Status::NotFound("no such table: " + table);
    for (const Row& row : rows) {
      if (!tdef->schema.RowMatches(row)) {
        return Status::InvalidArgument("row does not match table schema of " +
                                       table);
      }
    }
  }

  ParticipationOptions popts;
  popts.variation_seed = options.variation_seed;
  EON_ASSIGN_OR_RETURN(
      ParticipationResult participation,
      SelectParticipatingNodes(*snapshot, cluster->up_node_oids(), popts));

  const std::set<SubscriptionState> receiving = {
      SubscriptionState::kPending, SubscriptionState::kPassive,
      SubscriptionState::kActive, SubscriptionState::kRemoving};

  CatalogTxn txn;
  std::map<ShardId, std::set<Oid>> observed_subscribers;
  std::vector<std::string> uploaded_keys;  // For rollback.

  // Roll back uploads if anything fails past the first upload.
  auto rollback = [&]() {
    for (const std::string& key : uploaded_keys) {
      cluster->shared_storage()->Delete(key);  // Best effort.
      for (const auto& n : cluster->nodes()) n->cache()->Drop(key);
    }
  };

  for (const auto& [load_table, rows] : loads) {
  const TableDef* tdef = snapshot->FindTableByName(load_table);
  for (const auto& [poid, proj] : snapshot->projections) {
    if (proj.table_oid != tdef->oid) continue;
    if (only_projection != kInvalidOid && proj.oid != only_projection) {
      continue;
    }

    // Project table rows onto the projection's columns.
    std::vector<Row> proj_rows;
    proj_rows.reserve(rows.size());
    for (const Row& row : rows) {
      Row pr;
      pr.reserve(proj.columns.size());
      for (size_t tc : proj.columns) pr.push_back(row[tc]);
      proj_rows.push_back(std::move(pr));
    }

    const Schema proj_schema = proj.DeriveSchema(tdef->schema);
    std::vector<WriteGroup> groups =
        SplitRows(snapshot->sharding, proj, PartitionColInProj(*tdef, proj),
                  std::move(proj_rows));

    for (WriteGroup& group : groups) {
      // Writer: the participating node for segment shards; replicated
      // projections use a single participating node as the writer.
      Oid writer_oid;
      if (group.shard == snapshot->sharding.replica_shard()) {
        writer_oid = *participation.Nodes().begin();
      } else {
        writer_oid = participation.shard_to_node.at(group.shard);
      }
      Node* writer = cluster->node(writer_oid);
      if (writer == nullptr || !writer->is_up()) {
        rollback();
        return Status::Unavailable("writer node is down");
      }
      for (Oid sub : snapshot->SubscribersOf(group.shard, receiving)) {
        observed_subscribers[group.shard].insert(sub);
      }

      // Each container is totally sorted by the projection sort order.
      SortRowsBy(&group.rows, proj.sort_columns);

      const std::string base_key = writer->MintStorageKey("data/");
      RosWriteOptions wopts;
      wopts.rows_per_block = options.rows_per_block;
      Result<RosBuildResult> built =
          RosContainerWriter::Build(proj_schema, group.rows, base_key, wopts);
      if (!built.ok()) {
        rollback();
        return built.status();
      }

      for (const RosColumnFile& file : built->files) {
        // Write-through the writer's cache, upload, then push to peers.
        if (options.write_through_cache) {
          Status s = writer->cache()->Insert(file.key, file.data);
          if (!s.ok()) {
            rollback();
            return s;
          }
        }
        Status up = [&] {
          // Attribute the upload's request cost to the writing node.
          obs::DcNodeScope dc_scope(writer->name());
          return cluster->shared_storage()->Put(file.key, file.data);
        }();
        if (!up.ok()) {
          rollback();
          return up;
        }
        uploaded_keys.push_back(file.key);
        if (options.write_through_cache) {
          for (Oid sub : observed_subscribers[group.shard]) {
            if (sub == writer_oid) continue;
            Node* peer = cluster->node(sub);
            if (peer != nullptr && peer->is_up()) {
              peer->cache()->Insert(file.key, file.data);
            }
          }
        }
      }

      StorageContainerMeta meta;
      meta.oid = coord->catalog()->NextOid();
      meta.projection_oid = proj.oid;
      meta.shard = group.shard;
      meta.base_key = base_key;
      meta.row_count = built->row_count;
      meta.total_bytes = built->total_bytes;
      meta.num_columns = proj_schema.num_columns();
      meta.column_ranges = built->column_ranges;
      meta.stratum = 0;
      meta.create_version = snapshot->version + 1;  // Best-effort tag.
      txn.PutContainer(meta);
    }
  }
  }

  // Commit point: all data is on shared storage; node failure past this
  // point cannot lose files. The subscription-change invariant is checked
  // inside CommitDistributed and rolls the transaction back if violated.
  Result<uint64_t> version =
      cluster->CommitDistributed(coord->oid(), txn, &observed_subscribers);
  if (!version.ok()) {
    rollback();
    return version.status();
  }
  return *version;
}

}  // namespace

Result<uint64_t> LoadIntoTables(
    EonCluster* cluster,
    const std::vector<std::pair<std::string, std::vector<Row>>>& loads,
    const CopyOptions& options) {
  return LoadIntoTablesFiltered(cluster, loads, options, kInvalidOid);
}

Result<uint64_t> BackfillProjection(EonCluster* cluster,
                                    const std::string& table,
                                    Oid projection_oid,
                                    const std::vector<Row>& rows,
                                    const CopyOptions& options) {
  std::vector<std::pair<std::string, std::vector<Row>>> loads;
  loads.emplace_back(table, rows);
  return LoadIntoTablesFiltered(cluster, loads, options, projection_oid);
}

namespace {

/// Shared core of DELETE and UPDATE. When `matched_out` is non-null
/// (UPDATE), the full pre-image rows of every tombstoned/position-deleted
/// superprojection row are collected INSIDE the same gated window that
/// picks the delete targets — collecting them in a separate earlier pass
/// would let a row inserted between the two passes be deleted here yet
/// be missing from the reinsert set, losing it entirely.
Result<uint64_t> DeleteWhereImpl(EonCluster* cluster, const std::string& table,
                                 const PredicatePtr& table_predicate,
                                 std::vector<Row>* matched_out) {
  Node* coord = cluster->AnyUpNode();
  if (coord == nullptr) return Status::Unavailable("no up nodes");
  // WOS gates before the snapshot: with the gates held, no moveout can
  // commit between the container sweep below (which would miss its new
  // containers) and the WOS sweep (which would find its rows already
  // flushed) — every matching row is in exactly one of the two stores
  // this statement reads.
  std::vector<Node*> wos_nodes = WosNodes(cluster);
  std::vector<std::unique_lock<std::mutex>> gates;
  gates.reserve(wos_nodes.size());
  for (Node* n : wos_nodes) gates.push_back(n->wos()->LockGate());
  auto snapshot = coord->catalog()->snapshot();
  const TableDef* tdef = snapshot->FindTableByName(table);
  if (tdef == nullptr) return Status::NotFound("no such table: " + table);
  // Live aggregates trade pre-computation for update restrictions
  // (Section 2.1): a base with LAPs cannot be deleted from, and LAPs are
  // never targeted directly.
  if (tdef->is_live_aggregate()) {
    return Status::InvalidArgument(
        "cannot DELETE from a live aggregate projection");
  }
  for (const auto& [toid, t] : snapshot->tables) {
    if (t.lap_base == tdef->oid) {
      return Status::NotSupported(
          "table " + table + " has live aggregate projection " + t.name +
          "; DELETE/UPDATE are restricted (drop the projection first)");
    }
  }

  // UPDATE reads complete matching tuples from the superprojection.
  const ProjectionDef* super = nullptr;
  if (matched_out != nullptr) {
    for (const auto& [poid, proj] : snapshot->projections) {
      if (proj.table_oid == tdef->oid &&
          proj.columns.size() == tdef->schema.num_columns()) {
        super = &proj;
        break;
      }
    }
    if (super == nullptr) {
      return Status::InvalidArgument("table lacks a superprojection");
    }
  }

  ParticipationOptions popts;
  EON_ASSIGN_OR_RETURN(
      ParticipationResult participation,
      SelectParticipatingNodes(*snapshot, cluster->up_node_oids(), popts));

  CatalogTxn txn;
  std::map<ShardId, std::set<Oid>> observed_subscribers;
  const std::set<SubscriptionState> receiving = {
      SubscriptionState::kPending, SubscriptionState::kPassive,
      SubscriptionState::kActive, SubscriptionState::kRemoving};
  std::vector<std::string> superseded_dv_keys;
  uint64_t deleted_rows = 0;
  bool first_projection = true;

  for (const auto& [poid, proj] : snapshot->projections) {
    if (proj.table_oid != tdef->oid) continue;
    EON_ASSIGN_OR_RETURN(PredicatePtr pred,
                         RebindPredicate(table_predicate, proj));
    const Schema proj_schema = proj.DeriveSchema(tdef->schema);

    for (const StorageContainerMeta* container :
         snapshot->ContainersOf(proj.oid)) {
      // Executor for this shard: the participating node (replica shard:
      // any participant). It computes positions and the new delete vector.
      Oid exec_oid = container->shard == snapshot->sharding.replica_shard()
                         ? *participation.Nodes().begin()
                         : participation.shard_to_node.at(container->shard);
      Node* executor = cluster->node(exec_oid);
      if (executor == nullptr || !executor->is_up()) {
        return Status::Unavailable("executor node is down");
      }

      EON_ASSIGN_OR_RETURN(
          DeleteVector existing,
          LoadDeleteVector(*snapshot, *container, executor->cache()));
      EON_ASSIGN_OR_RETURN(
          std::vector<uint64_t> positions,
          FindMatchingPositions(proj_schema, container->base_key,
                                executor->cache(), pred, &existing));
      if (positions.empty()) continue;
      if (first_projection) deleted_rows += positions.size();

      if (super != nullptr && proj.oid == super->oid) {
        // Pre-images of exactly the rows this statement deletes, read
        // under the same gates and against the same delete vector.
        RosScanOptions mscan;
        for (size_t c = 0; c < proj_schema.num_columns(); ++c) {
          mscan.output_columns.push_back(c);
        }
        mscan.predicate = pred;
        mscan.deletes = &existing;
        EON_ASSIGN_OR_RETURN(
            std::vector<Row> matched_rows,
            ScanRosContainer(proj_schema, container->base_key,
                             executor->cache(), mscan));
        for (Row& row : matched_rows) matched_out->push_back(std::move(row));
      }

      DeleteVector merged(positions);
      merged.Union(existing);

      const std::string dv_key = executor->MintStorageKey("dv/");
      const std::string dv_data = merged.Serialize();
      EON_RETURN_IF_ERROR(executor->cache()->Insert(dv_key, dv_data));
      {
        obs::DcNodeScope dc_scope(executor->name());
        EON_RETURN_IF_ERROR(cluster->shared_storage()->Put(dv_key, dv_data));
      }

      DeleteVectorMeta meta;
      meta.oid = coord->catalog()->NextOid();
      meta.container_oid = container->oid;
      meta.shard = container->shard;
      meta.key = dv_key;
      meta.deleted_count = merged.count();
      txn.PutDeleteVector(meta);

      // The merged vector supersedes all previous ones for the container.
      for (const DeleteVectorMeta* old :
           snapshot->DeleteVectorsOf(container->oid)) {
        txn.DropDeleteVector(old->oid, old->shard);
        superseded_dv_keys.push_back(old->key);
      }
      for (Oid sub : snapshot->SubscribersOf(container->shard, receiving)) {
        observed_subscribers[container->shard].insert(sub);
      }
    }
    first_projection = false;
  }

  // WOS sweep: the DELETE predicate is bound to table column positions
  // and memtable rows are full-width table rows, so it evaluates directly.
  std::vector<std::pair<Node*, std::vector<WosRowRef>>> wos_hits;
  uint64_t wos_deleted = 0;
  for (Node* n : wos_nodes) {
    std::vector<WosRowRef> refs = n->wos()->FindRows(
        tdef->oid,
        [&](const Row& row) {
          return table_predicate == nullptr || table_predicate->Eval(row);
        },
        matched_out);
    if (refs.empty()) continue;
    wos_deleted += refs.size();
    wos_hits.emplace_back(n, std::move(refs));
  }

  if (txn.empty() && wos_hits.empty()) return 0;
  // A WOS-only DELETE still commits (an empty transaction mints a
  // version): the tombstones need a snapshot boundary to be MVCC-visible.
  EON_ASSIGN_OR_RETURN(
      uint64_t version,
      cluster->CommitDistributed(coord->oid(), txn, &observed_subscribers));
  for (auto& [n, refs] : wos_hits) {
    WosTombstonePayload p;
    p.table_oid = tdef->oid;
    p.version = version;
    p.refs = std::move(refs);
    WalRecord rec;
    rec.kind = WalRecord::Kind::kTombstone;
    rec.payload = EncodeWosTombstone(p);
    const uint64_t lsn = n->wal()->Append(std::move(rec));
    EON_ASSIGN_OR_RETURN(WalCommitInfo committed, n->wal()->Commit(lsn));
    (void)committed;
  }
  cluster->TrackDroppedFiles(superseded_dv_keys, version);
  return deleted_rows + wos_deleted;
}

}  // namespace

Result<uint64_t> DeleteWhere(EonCluster* cluster, const std::string& table,
                             const PredicatePtr& table_predicate) {
  return DeleteWhereImpl(cluster, table, table_predicate, nullptr);
}

Result<uint64_t> UpdateWhere(EonCluster* cluster, const std::string& table,
                             const PredicatePtr& table_predicate,
                             const std::function<void(Row*)>& updater) {
  Node* coord = cluster->AnyUpNode();
  if (coord == nullptr) return Status::Unavailable("no up nodes");
  auto snapshot = coord->catalog()->snapshot();
  const TableDef* tdef = snapshot->FindTableByName(table);
  if (tdef == nullptr) return Status::NotFound("no such table: " + table);

  // Match collection and deletion happen in ONE gated window inside
  // DeleteWhereImpl: a row inserted concurrently is either in `matched`
  // AND tombstoned (so the reinsert below carries it, updated) or
  // neither (it survives untouched) — never tombstoned without being
  // reinserted. The superprojection's column order equals the table's,
  // so the collected pre-images reinsert unprojected.
  std::vector<Row> matched;
  EON_ASSIGN_OR_RETURN(
      uint64_t deleted,
      DeleteWhereImpl(cluster, table, table_predicate, &matched));
  (void)deleted;
  if (matched.empty()) return 0;

  for (Row& row : matched) updater(&row);
  // Flattened tables reload base columns; derived values are re-looked-up.
  if (tdef->is_flattened()) {
    const size_t base_arity =
        tdef->schema.num_columns() - tdef->flattened.size();
    for (Row& row : matched) row.resize(base_arity);
  }
  EON_ASSIGN_OR_RETURN(uint64_t version, CopyInto(cluster, table, matched));
  (void)version;
  return matched.size();
}

}  // namespace eon
