#ifndef EON_OBS_PROFILE_H_
#define EON_OBS_PROFILE_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/json.h"

namespace eon {
namespace obs {

/// Execution phases of one query, in plan order.
enum class QueryPhase : uint8_t {
  kPlan = 0,       ///< Snapshot, LAP rewrite, projection/column resolution.
  kScan = 1,       ///< Distributed container scans (both join sides).
  kJoin = 2,       ///< Local / broadcast / reshuffle join processing.
  kAggregate = 3,  ///< Group-by partials and their merge.
  kMerge = 4,      ///< Initiator-side gather, order, limit.
};
inline constexpr size_t kNumQueryPhases = 5;
const char* QueryPhaseName(QueryPhase phase);

/// Time spent in one phase: simulated time (charged to the cluster Clock
/// by the storage model) and real CPU wall time — the two components of
/// the benches' cost model.
struct PhaseTiming {
  int64_t sim_micros = 0;
  int64_t wall_micros = 0;
};

/// Everything one query cost, attached to its QueryResult (paper Sections
/// 5.2/5.3: operational visibility into cache behavior and per-request S3
/// spend is part of the design).
struct QueryProfile {
  PhaseTiming phase[kNumQueryPhases];

  /// Rows emitted by the scan on each participating node (node oid key):
  /// the skew view participation/crunch decisions are judged by.
  std::map<uint64_t, uint64_t> rows_scanned_by_node;
  uint64_t rows_scanned_total = 0;

  uint64_t containers_total = 0;
  uint64_t containers_pruned = 0;

  // File-cache deltas summed over the participating nodes.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_bytes_hit = 0;
  uint64_t cache_fill_bytes = 0;

  // Shared-storage deltas ("requests cost money", Section 5.3).
  uint64_t store_gets = 0;
  uint64_t store_puts = 0;
  uint64_t store_lists = 0;
  uint64_t store_scans = 0;  ///< Near-data ScanObject requests.
  uint64_t store_bytes_read = 0;
  uint64_t store_cost_microdollars = 0;

  // Near-data processing (predicate/aggregate pushdown): how many scan
  // morsels the planner pushed into the object store vs ran locally, and
  // what the pushed scans moved / filtered / saved.
  uint64_t pushdown_containers_pushed = 0;
  uint64_t pushdown_containers_local = 0;
  uint64_t pushdown_response_bytes = 0;
  uint64_t pushdown_store_bytes_scanned = 0;  ///< Read next to the data.
  uint64_t pushdown_store_rows_filtered = 0;  ///< Dropped before the wire.
  uint64_t pushdown_bytes_saved = 0;  ///< Estimated cold bytes avoided.
  bool pushdown_aggregates = false;   ///< Partials computed store-side.

  // Ingest fast path (WAL + WOS): filled by INSERT statements that ran
  // through the write-optimized store instead of direct-ROS COPY.
  uint64_t wal_records_appended = 0;  ///< Log records this statement wrote.
  uint64_t wal_rows = 0;              ///< Rows absorbed by the memtable.
  uint64_t wal_group_size = 0;  ///< Records in the group that carried us.
  int64_t wal_commit_wait_micros = 0;  ///< Group-commit wait (durability).
  bool wal_led_group = false;  ///< This statement was the flush leader.

  uint64_t network_bytes = 0;
  uint64_t rows_shuffled = 0;
  uint64_t participating_nodes = 0;

  /// Admission-control wait before execution began and the resource pool
  /// that admitted the query (0 / "" when it bypassed the serving layer).
  int64_t queued_micros = 0;
  std::string resource_pool;

  /// Distributed-trace id labeling this query's spans (0 = untraced).
  /// Join key into dc_trace_spans and the `\trace` wire op.
  uint64_t trace_id = 0;

  // Morsel-parallel execution (cluster exec pool). Task CPU is measured
  // with the per-thread CPU clock, so these stay meaningful even when
  // workers oversubscribe the machine's cores.
  uint64_t exec_threads = 1;  ///< Pool width the query executed with.
  uint64_t exec_tasks = 0;    ///< Scan morsels + per-node join/agg tasks.
  int64_t exec_task_cpu_micros = 0;  ///< Sum of task CPU over all lanes.
  /// Busiest lane's CPU: the parallel phases' critical path. Equals
  /// exec_task_cpu_micros when exec_threads == 1.
  int64_t exec_critical_cpu_micros = 0;
  /// Late-materialization decode counters (RosScanStats rollup): values
  /// parsed or materialized during scans, and output-only column files the
  /// two-phase scan never had to fetch.
  uint64_t exec_values_decoded = 0;
  uint64_t exec_files_skipped = 0;
  /// Time scan lanes spent blocked on async column-file fetches
  /// (RosScanStats::fetch_wait_micros rollup): the part of the store
  /// latency the prefetch pipeline did NOT manage to hide.
  int64_t exec_fetch_wait_micros = 0;
  /// Bit-packed values actually unpacked during scans (block screening
  /// and whole-block skipping keep this below the row count).
  uint64_t exec_values_unpacked = 0;
  /// Vectorized kernel invocations (compare / fold / hash dispatches).
  uint64_t exec_kernel_calls = 0;
  /// Instruction set the kernel dispatcher routed to (scalar / sse4.2 /
  /// avx2 / neon).
  std::string exec_kernel_isa;

  // Prefetch pipeline deltas over the participating nodes' caches:
  // speculative fetches issued / later read by a demand fetch / evicted
  // or dropped unread / suppressed because the key was already resident
  // or in flight.
  uint64_t prefetch_issued = 0;
  uint64_t prefetch_useful = 0;
  uint64_t prefetch_wasted = 0;
  uint64_t prefetch_coalesced = 0;

  /// Effective speedup of the parallel sections (`exec.parallelism`):
  /// total task CPU over the critical path. 1.0 = serial; approaches
  /// exec_threads under perfect morsel load balance.
  double Parallelism() const {
    if (exec_critical_cpu_micros <= 0 || exec_task_cpu_micros <= 0) {
      return 1.0;
    }
    return static_cast<double>(exec_task_cpu_micros) /
           static_cast<double>(exec_critical_cpu_micros);
  }

  int64_t TotalSimMicros() const;
  int64_t TotalWallMicros() const;
  double CacheHitRate() const {
    const uint64_t total = cache_hits + cache_misses;
    return total == 0 ? 0.0 : static_cast<double>(cache_hits) / total;
  }

  PhaseTiming& Phase(QueryPhase p) { return phase[static_cast<size_t>(p)]; }
  const PhaseTiming& Phase(QueryPhase p) const {
    return phase[static_cast<size_t>(p)];
  }

  JsonValue ToJson() const;
  /// Multi-line human-readable report (the eonsql \profile output).
  std::string ToText() const;
};

}  // namespace obs
}  // namespace eon

#endif  // EON_OBS_PROFILE_H_
