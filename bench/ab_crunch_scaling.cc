// Ablation (Section 4.4): crunch scaling — hash-filter vs container-split
// vs none, when the cluster has more nodes than shards.
//
// "With container split, each row is read once across the cluster, but
// the processing overhead is higher... Choosing between hash filter and
// container split depends on the query."
//
// Reports, per mode: rows visited cluster-wide (read amplification), the
// per-node maximum rows processed (the wall-clock proxy — the slowest node
// gates the query), and whether join/group locality survived.

#include "bench/bench_util.h"
#include "engine/session.h"

namespace eon {
namespace bench {
namespace {

const char* ModeName(CrunchMode m) {
  switch (m) {
    case CrunchMode::kNone: return "none";
    case CrunchMode::kHashFilter: return "hash_filter";
    case CrunchMode::kContainerSplit: return "container_split";
  }
  return "?";
}

int Run() {
  // 6 nodes, 2 shards: four nodes idle without crunch scaling.
  auto fixture = MakeEonFixture(6, 2, 1.0);
  if (fixture == nullptr) return 1;

  struct QueryCase {
    const char* name;
    QuerySpec spec;
  };
  std::vector<QueryCase> cases;
  {
    QuerySpec full;  // Non-selective scan + group by segmentation column.
    full.scan.table = "lineitem";
    full.scan.columns = {"l_orderkey", "l_extendedprice"};
    full.group_by = {"l_orderkey"};
    full.aggregates = {{AggFn::kSum, "l_extendedprice", "rev"}};
    full.limit = 1;
    full.order_by = "rev";
    full.order_desc = true;
    cases.push_back({"full_scan_groupby", full});

    QuerySpec selective;  // Selective predicate on the sort column.
    selective.scan.table = "lineitem";
    const Schema li = TpchLineitemSchema();
    selective.scan.columns = {"l_extendedprice"};
    selective.scan.predicate =
        Predicate::Cmp(*li.IndexOf("l_shipdate"), CmpOp::kGe,
                       Value::Int(fixture->tpch_options.last_day - 14));
    selective.aggregates = {{AggFn::kSum, "l_extendedprice", "rev"}};
    cases.push_back({"selective_scan", selective});
  }

  printf("# Ablation: crunch scaling modes on a 6-node / 2-shard cluster\n");
  printf("%-20s %-16s %14s %14s %12s\n", "query", "mode", "rows_visited",
         "sharing_nodes", "local_gby");

  for (const QueryCase& qc : cases) {
    for (CrunchMode mode : {CrunchMode::kNone, CrunchMode::kHashFilter,
                            CrunchMode::kContainerSplit}) {
      auto ctx = BuildExecContext(fixture->cluster.get(), "", 7, mode);
      if (!ctx.ok()) return 1;
      auto result = ExecuteQuery(fixture->cluster.get(), qc.spec, *ctx);
      if (!result.ok()) {
        fprintf(stderr, "%s/%s failed: %s\n", qc.name, ModeName(mode),
                result.status().ToString().c_str());
        return 1;
      }
      size_t sharing = 0;
      for (const auto& [shard, nodes] : ctx->crunch_nodes) {
        sharing = std::max(sharing, nodes.size());
      }
      if (mode == CrunchMode::kNone) sharing = 1;
      printf("%-20s %-16s %14llu %14zu %12s\n", qc.name, ModeName(mode),
             static_cast<unsigned long long>(result->stats.scan.rows_visited),
             sharing, result->stats.local_group_by ? "yes" : "no");
    }
  }
  printf("# shape check: hash_filter multiplies rows visited by the "
         "sharing factor but keeps locality; container_split reads each "
         "row once but loses the segmentation property\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace eon

int main() { return eon::bench::Run(); }
