# Empty compiler generated dependencies file for test_designer.
# This may be replaced when dependencies are built.
