#include "obs/trace.h"

#include <algorithm>
#include <atomic>

#include "obs/dc.h"
#include "obs/metrics.h"

namespace eon {
namespace obs {

namespace {

thread_local const TraceContext* tls_trace = nullptr;

/// SplitMix64 finalizer: a well-mixed bijection over uint64, used both
/// to mint trace ids from a plain counter and to hash ids for the
/// sampling decision.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

Span& Span::operator=(Span&& o) noexcept {
  if (this != &o) {
    End();
    tracer_ = o.tracer_;
    data_ = std::move(o.data_);
    o.tracer_ = nullptr;
  }
  return *this;
}

void Span::SetAttribute(const std::string& key, const std::string& value) {
  if (tracer_ == nullptr) return;
  // One allocation for a typical attribute set instead of log2(n) vector
  // doublings — morsel tasks set several attributes per span.
  if (data_.attributes.capacity() == 0) data_.attributes.reserve(4);
  data_.attributes.emplace_back(key, value);
}

void Span::SetAttribute(const std::string& key, int64_t value) {
  SetAttribute(key, std::to_string(value));
}

void Span::SetNode(const std::string& node) {
  if (tracer_ == nullptr) return;
  data_.node = node;
}

void Span::End() {
  if (tracer_ == nullptr) return;
  Tracer* t = tracer_;
  tracer_ = nullptr;
  data_.end_micros = t->clock()->NowMicros();
  t->Finish(std::move(data_));
}

Span Tracer::StartSpanAt(const std::string& name, uint64_t parent_id) {
  SpanData data;
  data.name = name;
  data.parent_id = parent_id;
  data.trace_id = trace_id_;
  data.node = DcNodeScope::Current();
  data.start_micros = clock_->NowMicros();
  data.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  return Span(this, std::move(data));
}

void Tracer::Finish(SpanData data) {
  // Sequential ids round-robin across stripes, so concurrent finishers
  // on different pool lanes almost never contend on one lock.
  Stripe& stripe = stripes_[data.id % num_stripes_];
  const size_t stripe_cap = std::max<size_t>(1, max_finished_ / num_stripes_);
  bool dropped = false;
  {
    std::lock_guard<std::mutex> lock(stripe.mu);
    stripe.finished_total++;
    if (stripe.finished.size() >= stripe_cap) {
      stripe.finished.pop_front();
      stripe.spans_dropped++;
      dropped = true;
    }
    stripe.finished.push_back(std::move(data));
  }
  if (dropped) {
    OrDefault(registry_)
        ->GetCounter("eon_tracer_spans_dropped_total")
        ->Increment();
  }
}

std::vector<SpanData> Tracer::FinishedSpans() const {
  std::vector<SpanData> out;
  out.reserve(max_finished_);
  for (size_t s = 0; s < num_stripes_; ++s) {
    std::lock_guard<std::mutex> lock(stripes_[s].mu);
    out.insert(out.end(), stripes_[s].finished.begin(),
               stripes_[s].finished.end());
  }
  // Deterministic merge of the striped buffers that preserves the
  // single-buffer contract: spans come back in finish order (children
  // before parents), with creation order breaking end-time ties.
  std::sort(out.begin(), out.end(), [](const SpanData& a, const SpanData& b) {
    if (a.end_micros != b.end_micros) return a.end_micros < b.end_micros;
    return a.id < b.id;
  });
  return out;
}

std::vector<SpanData> Tracer::DrainFinished() {
  std::vector<SpanData> out;
  out.reserve(max_finished_);
  for (size_t s = 0; s < num_stripes_; ++s) {
    std::lock_guard<std::mutex> lock(stripes_[s].mu);
    out.insert(out.end(),
               std::make_move_iterator(stripes_[s].finished.begin()),
               std::make_move_iterator(stripes_[s].finished.end()));
    stripes_[s].finished.clear();
  }
  std::sort(out.begin(), out.end(), [](const SpanData& a, const SpanData& b) {
    if (a.end_micros != b.end_micros) return a.end_micros < b.end_micros;
    return a.id < b.id;
  });
  return out;
}

uint64_t Tracer::finished_count() const {
  uint64_t total = 0;
  for (size_t s = 0; s < num_stripes_; ++s) {
    std::lock_guard<std::mutex> lock(stripes_[s].mu);
    total += stripes_[s].finished_total;
  }
  return total;
}

uint64_t Tracer::spans_dropped() const {
  uint64_t total = 0;
  for (size_t s = 0; s < num_stripes_; ++s) {
    std::lock_guard<std::mutex> lock(stripes_[s].mu);
    total += stripes_[s].spans_dropped;
  }
  return total;
}

void Tracer::Clear() {
  for (size_t s = 0; s < num_stripes_; ++s) {
    std::lock_guard<std::mutex> lock(stripes_[s].mu);
    stripes_[s].finished.clear();
    stripes_[s].finished_total = 0;
    stripes_[s].spans_dropped = 0;
  }
}

TraceScope::TraceScope(TraceContext context)
    : context_(std::move(context)), previous_(tls_trace) {
  tls_trace = &context_;
}

TraceScope::~TraceScope() { tls_trace = previous_; }

const TraceContext* TraceScope::Current() {
  if (tls_trace == nullptr || !tls_trace->active()) return nullptr;
  return tls_trace;
}

TraceContext CurrentTraceCopy() {
  const TraceContext* current = TraceScope::Current();
  return current == nullptr ? TraceContext{} : *current;
}

TraceContext CurrentTraceWithParent(uint64_t parent_span_id) {
  TraceContext context = CurrentTraceCopy();
  if (context.active()) context.parent_span_id = parent_span_id;
  return context;
}

Span StartTraceSpan(const std::string& name) {
  const TraceContext* context = TraceScope::Current();
  if (context == nullptr) return Span();
  return context->tracer->StartSpanWithParent(name, context->parent_span_id);
}

uint64_t NextTraceId() {
  static std::atomic<uint64_t> sequence{0};
  const uint64_t seq = sequence.fetch_add(1, std::memory_order_relaxed) + 1;
  // 63-bit so the id round-trips through the SQL int64 column without
  // going negative; Mix64 never maps two small counters to the same
  // truncation in any realistic run, and 0 is reserved for "untraced".
  uint64_t id = Mix64(seq) & 0x7fffffffffffffffULL;
  if (id == 0) id = 1;
  return id;
}

bool TraceSampled(uint64_t trace_id, double probability) {
  if (probability <= 0.0) return false;
  if (probability >= 1.0) return true;
  // Compare a re-mix of the id against the probability scaled to the
  // 53-bit mantissa range — exact, clock-free, and stable across runs.
  const uint64_t hash = Mix64(trace_id) >> 11;  // top 53 bits.
  return static_cast<double>(hash) <
         probability * 9007199254740992.0 /* 2^53 */;
}

}  // namespace obs
}  // namespace eon
