// Ablation (Section 5.2): peer cache warming on node recovery.
//
// "Given a reasonable cache size, peer to peer cache warming provides a
// very similar looking cache on the new node and helps in mitigating any
// performance hiccups."
//
// A node restarts with and without warming; we measure the first
// dashboard queries' simulated I/O time on a participation pinned to the
// recovered node.

#include "bench/bench_util.h"
#include "engine/session.h"
#include "obs/metrics.h"

namespace eon {
namespace bench {
namespace {

// The recovered node's WarmFrom instruments, from the process-default
// registry both fixtures share (deltas, not absolutes, are meaningful).
struct WarmStats {
  uint64_t files = 0;
  double wall_micros = 0;
};

WarmStats RecoveredNodeWarmStats() {
  obs::MetricsRegistry* reg = obs::OrDefault(nullptr);
  const obs::LabelSet labels{{"cache", "node2"}};
  WarmStats s;
  s.files = reg->GetCounter("eon_cache_warm_files_total", labels)->Value();
  s.wall_micros =
      reg->GetHistogram("eon_cache_warm_micros", labels)->Snapshot().sum;
  return s;
}

int64_t PostRecoveryIoMicros(EonFixture* fixture, bool warm) {
  // Steady state: queries have warmed the cluster's caches.
  EonSession session(fixture->cluster.get());
  QuerySpec dash = DashboardQuery(fixture->tpch_options);
  for (int i = 0; i < 8; ++i) (void)session.Execute(dash);

  if (!fixture->cluster->KillNode(2).ok()) return -1;
  fixture->cluster->node(2)->cache()->Clear();
  if (!fixture->cluster->RestartNode(2, warm).ok()) return -1;

  // First queries after recovery, routed across all nodes including the
  // recovered one; misses on node 2 pay the S3 latency model.
  MeasuredMicros m = Measure(&fixture->clock, [&] {
    for (int i = 0; i < 8; ++i) (void)session.Execute(dash);
  });
  return m.sim_io;
}

int Run() {
  printf("# Ablation: peer cache warming on node recovery\n");
  printf("%-22s %22s\n", "mode", "post_recovery_io_ms");

  auto cold = MakeEonFixture(4, 3, 0.5, 512ULL << 20);
  if (cold == nullptr) return 1;
  int64_t io_cold = PostRecoveryIoMicros(cold.get(), /*warm=*/false);

  auto warm = MakeEonFixture(4, 3, 0.5, 512ULL << 20);
  if (warm == nullptr) return 1;
  WarmStats before = RecoveredNodeWarmStats();
  int64_t io_warm = PostRecoveryIoMicros(warm.get(), /*warm=*/true);
  WarmStats after = RecoveredNodeWarmStats();
  if (io_cold < 0 || io_warm < 0) return 1;

  printf("%-22s %22.1f\n", "no_warming", io_cold / 1000.0);
  printf("%-22s %22.1f\n", "peer_warming", io_warm / 1000.0);
  printf("# warming fan-out: %llu files pulled from the peer across the "
         "I/O pool in %.1f ms wall\n",
         static_cast<unsigned long long>(after.files - before.files),
         (after.wall_micros - before.wall_micros) / 1000.0);
  if (io_warm > 0) {
    printf("# shape check: peer warming removes the post-recovery hiccup "
           "(%.1fx less remote I/O)\n",
           static_cast<double>(io_cold) / static_cast<double>(io_warm));
  } else {
    printf("# shape check: peer warming removed the post-recovery hiccup "
           "entirely (no remote reads after recovery)\n");
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace eon

int main() { return eon::bench::Run(); }
