# Empty dependencies file for elastic_dashboard.
# This may be replaced when dependencies are built.
