#include "common/thread_pool.h"

#include <algorithm>
#include <ctime>

#include "obs/metrics.h"

namespace eon {

namespace {

// Worker slot of the current thread, or -1 on non-worker threads. Keyed
// per pool via the pool pointer so nested/multiple pools don't collide.
thread_local const ThreadPool* tls_pool = nullptr;
thread_local int tls_slot = -1;

std::string AutoPoolName() {
  static std::atomic<uint64_t> seq{0};
  return "pool" + std::to_string(seq.fetch_add(1));
}

}  // namespace

int64_t ThreadCpuMicros() {
  struct timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<int64_t>(ts.tv_sec) * 1000000 + ts.tv_nsec / 1000;
}

ThreadPool::ThreadPool(Options options)
    : metrics_name_(options.metrics_name.empty() ? AutoPoolName()
                                                 : options.metrics_name) {
  obs::MetricsRegistry* reg = obs::OrDefault(options.registry);
  const obs::LabelSet labels({{"pool", metrics_name_}});
  tasks_total_ = reg->GetCounter("eon_pool_tasks_total", labels);
  queue_depth_ = reg->GetGauge("eon_pool_queue_depth", labels);
  threads_gauge_ = reg->GetGauge("eon_pool_threads", labels);
  task_micros_ = reg->GetHistogram("eon_pool_task_micros", labels);

  const int width = options.num_threads < 1 ? 1 : options.num_threads;
  threads_gauge_->Set(width);
  workers_.reserve(width - 1);
  for (int slot = 0; slot < width - 1; ++slot) {
    workers_.emplace_back([this, slot] { WorkerLoop(slot); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  threads_gauge_->Set(0);
}

int ThreadPool::CurrentSlot() const {
  if (tls_pool == this && tls_slot >= 0) return tls_slot;
  return width() - 1;
}

void ThreadPool::RunTask(Task task) {
  const int64_t start = ThreadCpuMicros();
  task.fn();
  task_micros_->Observe(static_cast<double>(ThreadCpuMicros() - start));
  tasks_total_->Increment();
}

void ThreadPool::WorkerLoop(int slot) {
  tls_pool = this;
  tls_slot = slot;
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown_ with a drained queue.
      task = std::move(queue_.front());
      queue_.pop_front();
      queue_depth_->Sub(1);
    }
    RunTask(std::move(task));
  }
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  auto promise = std::make_shared<std::promise<void>>();
  std::future<void> future = promise->get_future();
  Task task{[fn = std::move(fn), promise]() mutable {
    try {
      fn();
      promise->set_value();
    } catch (...) {
      promise->set_exception(std::current_exception());
    }
  }};
  if (workers_.empty()) {
    RunTask(std::move(task));
    return future;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    queue_depth_->Add(1);
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) {
      RunTask(Task{[&fn, i] { fn(i); }});
    }
    return;
  }

  // Shared claim counter: workers and the caller pull the next unclaimed
  // index until none remain. `state` outlives the stack frame by being
  // shared with every enqueued drain task (a worker may still be inside
  // its final fn(i) when the caller observes done == n and returns only
  // after the cv signal, which fires after the last fetch_add on done).
  struct ForState {
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    size_t n;
    const std::function<void(size_t)>* fn;
    std::mutex mu;
    std::condition_variable cv;
  };
  auto state = std::make_shared<ForState>();
  state->n = n;
  state->fn = &fn;

  auto drain = [state] {
    for (;;) {
      const size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= state->n) break;
      (*state->fn)(i);
      if (state->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          state->n) {
        std::lock_guard<std::mutex> lock(state->mu);
        state->cv.notify_all();
      }
    }
  };

  // One drain task per worker (not per index): keeps queue churn O(width)
  // while indices are claimed lock-free.
  const size_t helpers =
      std::min(workers_.size(), n > 1 ? n - 1 : size_t{0});
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t h = 0; h < helpers; ++h) {
      queue_.push_back(Task{drain});
      queue_depth_->Add(1);
    }
  }
  cv_.notify_all();

  // The caller is the last lane.
  const int64_t start = ThreadCpuMicros();
  drain();
  task_micros_->Observe(static_cast<double>(ThreadCpuMicros() - start));
  tasks_total_->Increment();

  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&state] {
    return state->done.load(std::memory_order_acquire) == state->n;
  });
}

}  // namespace eon
