// Unit tests for catalog durability: sync uploads, sync intervals,
// consensus truncation version (Figure 5), cluster_info.json.

#include <gtest/gtest.h>

#include "catalog/sync.h"
#include "common/clock.h"
#include "storage/object_store.h"

namespace eon {
namespace {

class SyncTest : public ::testing::Test {
 protected:
  SyncTest() : incarnation_(IncarnationId::Generate(1, 2)) {}

  void CommitN(Catalog* catalog, int n) {
    for (int i = 0; i < n; ++i) {
      CatalogTxn txn;
      TableDef t;
      t.oid = catalog->NextOid();
      t.name = "t" + std::to_string(catalog->version());
      t.schema = Schema({{"c", DataType::kInt64}});
      txn.PutTable(t);
      ASSERT_TRUE(catalog->Commit(txn).ok());
    }
  }

  MemObjectStore store_;
  IncarnationId incarnation_;
};

TEST_F(SyncTest, UploadsLogsAndCheckpoints) {
  Catalog catalog;
  CatalogSync sync(&store_, incarnation_, /*node_oid=*/1);
  sync.set_checkpoint_every(1000);  // Only forced checkpoints.

  CommitN(&catalog, 3);
  ASSERT_TRUE(sync.SyncNow(catalog).ok());
  auto logs = store_.List(sync.NodePrefix() + "log_");
  ASSERT_TRUE(logs.ok());
  EXPECT_EQ(logs->size(), 3u);
  EXPECT_EQ(sync.interval().upper, 3u);

  ASSERT_TRUE(sync.SyncNow(catalog, /*force_checkpoint=*/true).ok());
  auto ckpts = store_.List(sync.NodePrefix() + "ckpt_");
  ASSERT_TRUE(ckpts.ok());
  EXPECT_EQ(ckpts->size(), 1u);

  // Idempotent: re-sync uploads nothing new.
  ASSERT_TRUE(sync.SyncNow(catalog).ok());
  EXPECT_EQ(store_.List(sync.NodePrefix() + "log_")->size(), 3u);
}

TEST_F(SyncTest, DeleteStaleKeepsTwoCheckpoints) {
  Catalog catalog;
  CatalogSync sync(&store_, incarnation_, 1);
  for (int round = 0; round < 4; ++round) {
    CommitN(&catalog, 2);
    ASSERT_TRUE(sync.SyncNow(catalog, /*force_checkpoint=*/true).ok());
  }
  EXPECT_EQ(store_.List(sync.NodePrefix() + "ckpt_")->size(), 4u);
  ASSERT_TRUE(sync.DeleteStale(/*keep=*/2).ok());
  auto ckpts = store_.List(sync.NodePrefix() + "ckpt_");
  EXPECT_EQ(ckpts->size(), 2u);
  // Logs at or below the oldest kept checkpoint were trimmed.
  auto logs = store_.List(sync.NodePrefix() + "log_");
  for (const ObjectMeta& m : *logs) {
    EXPECT_GT(m.key, sync.NodePrefix() + "log_00000000000000000006");
  }
}

TEST_F(SyncTest, ReadSyncIntervalHonorsLogGaps) {
  Catalog catalog;
  CatalogSync sync(&store_, incarnation_, 1);
  CommitN(&catalog, 1);
  ASSERT_TRUE(sync.SyncNow(catalog, true).ok());  // ckpt at v1.
  CommitN(&catalog, 4);
  ASSERT_TRUE(sync.SyncNow(catalog).ok());  // Logs v2..v5.

  auto interval = ReadSyncInterval(&store_, incarnation_, 1);
  ASSERT_TRUE(interval.ok());
  EXPECT_EQ(interval->lower, 1u);
  EXPECT_EQ(interval->upper, 5u);

  // Deleting v3's log makes v4/v5 unusable: upper falls to 2.
  ASSERT_TRUE(
      store_.Delete(sync.NodePrefix() + "log_00000000000000000003").ok());
  interval = ReadSyncInterval(&store_, incarnation_, 1);
  ASSERT_TRUE(interval.ok());
  EXPECT_EQ(interval->upper, 2u);
}

TEST_F(SyncTest, DownloadCatalogRestores) {
  Catalog catalog;
  CatalogSync sync(&store_, incarnation_, 1);
  CommitN(&catalog, 2);
  ASSERT_TRUE(sync.SyncNow(catalog, true).ok());
  CommitN(&catalog, 3);
  ASSERT_TRUE(sync.SyncNow(catalog).ok());

  auto restored = DownloadCatalog(&store_, incarnation_, 1, 4);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ((*restored)->version(), 4u);
  EXPECT_EQ((*restored)->snapshot()->tables.size(), 4u);
}

TEST(TruncationTest, Figure5Scenario) {
  // Figure 5: four nodes, four shards; per-shard best uploads 5,7,4,3...
  // the consensus is the min across shards of the per-shard max.
  Catalog catalog;
  CatalogTxn txn;
  ShardingConfig cfg;
  cfg.num_segment_shards = 4;
  txn.SetSharding(cfg);
  // Node n subscribes to shards n-1 and n mod 4 (ring, k=2).
  for (Oid n = 1; n <= 4; ++n) {
    txn.PutSubscription(Subscription{
        n, static_cast<ShardId>(n - 1), SubscriptionState::kActive});
    txn.PutSubscription(Subscription{n, static_cast<ShardId>(n % 4),
                                     SubscriptionState::kActive});
    // Everyone on the replica shard.
    txn.PutSubscription(Subscription{n, 4, SubscriptionState::kActive});
  }
  ASSERT_TRUE(catalog.Commit(txn).ok());
  auto snapshot = catalog.snapshot();

  // Node uploads: node1→5, node2→7, node3→4, node4→3.
  std::map<Oid, uint64_t> uploads = {{1, 5}, {2, 7}, {3, 4}, {4, 3}};
  // Shard 0: nodes 1,4 → max 5. Shard 1: nodes 1,2 → 7. Shard 2: nodes
  // 2,3 → 7. Shard 3: nodes 3,4 → 4. Replica shard: all → 7. Min = 4.
  EXPECT_EQ(ComputeTruncationVersion(*snapshot, uploads), 4u);

  // A node with no uploads pins its solo shard at 0.
  uploads.erase(3);
  uploads.erase(4);
  EXPECT_EQ(ComputeTruncationVersion(*snapshot, uploads), 0u);
}

TEST(ClusterInfoTest, JsonRoundTrip) {
  ClusterInfo info;
  info.truncation_version = 17;
  info.incarnation = IncarnationId::Generate(3, 4);
  info.timestamp_micros = 123456;
  info.lease_expiry_micros = 789000;
  info.database_name = "eon_db";
  info.node_names = {"n1", "n2"};

  auto parsed = ClusterInfo::FromJsonText(info.ToJsonText());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->truncation_version, 17u);
  EXPECT_EQ(parsed->incarnation, info.incarnation);
  EXPECT_EQ(parsed->lease_expiry_micros, 789000);
  EXPECT_EQ(parsed->node_names, info.node_names);
}

TEST(ClusterInfoTest, WriteIsImmutableSequence) {
  // cluster_info objects are never overwritten: each write is a new
  // numbered object and readers take the latest — the atomic revive
  // commit point.
  MemObjectStore store;
  ClusterInfo a;
  a.truncation_version = 1;
  a.incarnation = IncarnationId::Generate(1, 1);
  ASSERT_TRUE(a.WriteTo(&store).ok());
  ClusterInfo b = a;
  b.truncation_version = 2;
  ASSERT_TRUE(b.WriteTo(&store).ok());

  auto latest = ClusterInfo::ReadLatest(&store);
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest->truncation_version, 2u);
  EXPECT_EQ(store.List("cluster_info/")->size(), 2u);
}

TEST(ClusterInfoTest, ReadLatestOnEmptyStorageIsNotFound) {
  MemObjectStore store;
  EXPECT_TRUE(ClusterInfo::ReadLatest(&store).status().IsNotFound());
}

}  // namespace
}  // namespace eon
