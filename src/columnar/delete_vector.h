#ifndef EON_COLUMNAR_DELETE_VECTOR_H_
#define EON_COLUMNAR_DELETE_VECTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/slice.h"

namespace eon {

/// Tombstone positions for a single ROS container (paper Section 2.3).
/// Deletes never modify data files: a delete vector is an additional
/// immutable storage object listing deleted tuple positions; updates are a
/// delete plus an insert; deleted rows are purged at mergeout.
class DeleteVector {
 public:
  DeleteVector() = default;

  /// Build from positions (need not be sorted or unique; normalized here).
  explicit DeleteVector(std::vector<uint64_t> positions);

  /// Merge positions from another delete vector (union).
  void Union(const DeleteVector& other);

  bool IsDeleted(uint64_t position) const;
  uint64_t count() const { return positions_.size(); }
  bool empty() const { return positions_.empty(); }
  const std::vector<uint64_t>& positions() const { return positions_; }

  /// Serialize in the same delta-varint style as regular columns.
  std::string Serialize() const;
  static Result<DeleteVector> Deserialize(Slice data);

 private:
  std::vector<uint64_t> positions_;  // Sorted, unique.
};

}  // namespace eon

#endif  // EON_COLUMNAR_DELETE_VECTOR_H_
