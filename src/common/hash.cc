#include "common/hash.h"

#include <cstring>

namespace eon {

namespace {

constexpr uint64_t kPrime1 = 0x9E3779B185EBCA87ULL;
constexpr uint64_t kPrime2 = 0xC2B2AE3D27D4EB4FULL;
constexpr uint64_t kPrime3 = 0x165667B19E3779F9ULL;
constexpr uint64_t kPrime4 = 0x85EBCA77C2B2AE63ULL;
constexpr uint64_t kPrime5 = 0x27D4EB2F165667C5ULL;

inline uint64_t Rotl64(uint64_t x, int r) {
  return (x << r) | (x >> (64 - r));
}

inline uint64_t Load64(const uint8_t* p) {
  uint64_t v;
  memcpy(&v, p, sizeof(v));
  return v;
}

inline uint32_t Load32(const uint8_t* p) {
  uint32_t v;
  memcpy(&v, p, sizeof(v));
  return v;
}

inline uint64_t Round(uint64_t acc, uint64_t input) {
  acc += input * kPrime2;
  acc = Rotl64(acc, 31);
  acc *= kPrime1;
  return acc;
}

inline uint64_t MergeRound(uint64_t acc, uint64_t val) {
  val = Round(0, val);
  acc ^= val;
  acc = acc * kPrime1 + kPrime4;
  return acc;
}

}  // namespace

uint64_t Hash64(const void* data, size_t len, uint64_t seed) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  const uint8_t* const end = p + len;
  uint64_t h;

  if (len >= 32) {
    uint64_t v1 = seed + kPrime1 + kPrime2;
    uint64_t v2 = seed + kPrime2;
    uint64_t v3 = seed;
    uint64_t v4 = seed - kPrime1;
    const uint8_t* const limit = end - 32;
    do {
      v1 = Round(v1, Load64(p));
      v2 = Round(v2, Load64(p + 8));
      v3 = Round(v3, Load64(p + 16));
      v4 = Round(v4, Load64(p + 24));
      p += 32;
    } while (p <= limit);
    h = Rotl64(v1, 1) + Rotl64(v2, 7) + Rotl64(v3, 12) + Rotl64(v4, 18);
    h = MergeRound(h, v1);
    h = MergeRound(h, v2);
    h = MergeRound(h, v3);
    h = MergeRound(h, v4);
  } else {
    h = seed + kPrime5;
  }

  h += static_cast<uint64_t>(len);

  while (p + 8 <= end) {
    h ^= Round(0, Load64(p));
    h = Rotl64(h, 27) * kPrime1 + kPrime4;
    p += 8;
  }
  if (p + 4 <= end) {
    h ^= static_cast<uint64_t>(Load32(p)) * kPrime1;
    h = Rotl64(h, 23) * kPrime2 + kPrime3;
    p += 4;
  }
  while (p < end) {
    h ^= (*p) * kPrime5;
    h = Rotl64(h, 11) * kPrime1;
    ++p;
  }

  h ^= h >> 33;
  h *= kPrime2;
  h ^= h >> 29;
  h *= kPrime3;
  h ^= h >> 32;
  return h;
}

uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= kPrime2;
  x ^= x >> 29;
  x *= kPrime3;
  x ^= x >> 32;
  return x;
}

uint32_t SegmentationHash(const void* data, size_t len) {
  return static_cast<uint32_t>(Hash64(data, len, /*seed=*/0x5e47) >> 32);
}

uint32_t SegmentationHashInt(int64_t v) {
  return static_cast<uint32_t>(Mix64(static_cast<uint64_t>(v) + 0x5e47) >> 32);
}

uint32_t SegmentationHashCombine(uint32_t a, uint32_t b) {
  uint64_t x = (static_cast<uint64_t>(a) << 32) | b;
  return static_cast<uint32_t>(Mix64(x) >> 32);
}

namespace {

struct Crc32cTable {
  uint32_t t[256];
  Crc32cTable() {
    constexpr uint32_t kPoly = 0x82F63B78u;  // Castagnoli, reflected.
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? (kPoly ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
  }
};

const Crc32cTable& GetCrcTable() {
  static const Crc32cTable* table = new Crc32cTable();
  return *table;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t len, uint32_t init) {
  const Crc32cTable& table = GetCrcTable();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t c = init ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) {
    c = table.t[(c ^ p[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace eon
