// Ablation (Section 6.1 claim): "Worst case recovery performance is
// proportional to the size of the cache in Eon, whereas Enterprise
// recovery is proportional to the entire data-set stored on a node."
//
// Sweep the dataset size and report what a node recovery moves:
//  - Eon: the peer cache-warming transfer (bounded by cache capacity — a
//    byte-based file copy of the working set);
//  - Enterprise: the full logical dataset of the node's regions.

#include "bench/bench_util.h"
#include "engine/session.h"
#include "enterprise/enterprise.h"

namespace eon {
namespace bench {
namespace {

int Run() {
  printf("# Ablation: node recovery cost — Eon (cache-proportional) vs "
         "Enterprise (dataset-proportional)\n");
  printf("%-12s %16s %18s %22s\n", "scale", "dataset_bytes",
         "eon_warm_bytes", "enterprise_bytes");

  for (double scale : {0.2, 0.5, 1.0, 2.0}) {
    // Eon: small cache (the working set), restart node 2 and measure the
    // bytes the warm-up pulled in.
    const uint64_t kCacheBytes = 96 * 1024;
    auto eon = MakeEonFixture(4, 3, scale, kCacheBytes);
    if (eon == nullptr) return 1;
    // Touch a working set (recent-data dashboard) so peers' caches hold
    // something representative.
    EonSession session(eon->cluster.get());
    for (int i = 0; i < 5; ++i) {
      (void)session.Execute(DashboardQuery(eon->tpch_options));
    }
    uint64_t dataset_bytes = 0;
    {
      auto snapshot = eon->cluster->node(1)->catalog()->snapshot();
      for (const auto& [oid, c] : snapshot->containers) {
        dataset_bytes += c.total_bytes;
      }
    }
    if (!eon->cluster->KillNode(2).ok()) return 1;
    eon->cluster->node(2)->cache()->Clear();
    const uint64_t before = eon->cluster->node(2)->cache()->size_bytes();
    if (!eon->cluster->RestartNode(2, /*warm_cache=*/true).ok()) return 1;
    const uint64_t eon_bytes =
        eon->cluster->node(2)->cache()->size_bytes() - before;

    // Enterprise: recovery moves the node's entire dataset.
    SimClock ent_clock;
    auto ent = EnterpriseCluster::Create(&ent_clock, EnterpriseOptions{},
                                         {"e1", "e2", "e3", "e4"});
    if (!ent.ok()) return 1;
    if (!CreateTpchTables(ent.value()->inner()).ok()) return 1;
    if (!LoadTpch(ent.value()->inner(), eon->data, 512).ok()) return 1;
    if (!ent.value()->KillNode("e2").ok()) return 1;
    auto ent_bytes = ent.value()->RestartNodeWithRecovery("e2");
    if (!ent_bytes.ok()) return 1;

    printf("%-12.1f %16llu %18llu %22llu\n", scale,
           static_cast<unsigned long long>(dataset_bytes),
           static_cast<unsigned long long>(eon_bytes),
           static_cast<unsigned long long>(*ent_bytes));
  }
  printf("# shape check: enterprise bytes grow with the dataset; eon warm "
         "bytes stay bounded by the cache/working set\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace eon

int main() { return eon::bench::Run(); }
