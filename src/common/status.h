#ifndef EON_COMMON_STATUS_H_
#define EON_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace eon {

/// Outcome of an operation that can fail. Modeled after the RocksDB/Arrow
/// Status idiom: core code paths never throw; errors propagate as values.
///
/// A Status is cheap to copy when OK (no allocation) and carries a code plus
/// a human-readable message otherwise.
class Status {
 public:
  /// Error taxonomy. Codes are stable and used in tests; add at the end.
  enum class Code : int {
    kOk = 0,
    kNotFound = 1,        ///< Object/key/file does not exist.
    kAlreadyExists = 2,   ///< Create of something that exists (immutability).
    kInvalidArgument = 3, ///< Caller passed something malformed.
    kIOError = 4,         ///< Storage subsystem failure (possibly transient).
    kCorruption = 5,      ///< Data failed validation (checksum, magic, ...).
    kNotSupported = 6,    ///< Operation not available (e.g. append on S3).
    kAborted = 7,         ///< Transaction rolled back (OCC conflict, ...).
    kUnavailable = 8,     ///< Node down, quorum lost, lease held, throttled.
    kTimedOut = 9,        ///< Retries exhausted.
    kOutOfRange = 10,     ///< Read past end, bad offset.
    kInternal = 11,       ///< Invariant violation; indicates a bug.
    kOverloaded = 12,     ///< Admission refused: queue past high-water mark.
  };

  Status() : code_(Code::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(Code::kAlreadyExists, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(Code::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(Code::kAborted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(Code::kUnavailable, std::move(msg));
  }
  static Status TimedOut(std::string msg) {
    return Status(Code::kTimedOut, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(Code::kOverloaded, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsAlreadyExists() const { return code_ == Code::kAlreadyExists; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsAborted() const { return code_ == Code::kAborted; }
  bool IsUnavailable() const { return code_ == Code::kUnavailable; }
  bool IsTimedOut() const { return code_ == Code::kTimedOut; }
  bool IsOutOfRange() const { return code_ == Code::kOutOfRange; }
  bool IsInternal() const { return code_ == Code::kInternal; }
  bool IsOverloaded() const { return code_ == Code::kOverloaded; }

  Code code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  Code code_;
  std::string msg_;
};

/// Propagate a non-OK status to the caller. Use in functions returning Status.
#define EON_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::eon::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                   \
  } while (false)

}  // namespace eon

#endif  // EON_COMMON_STATUS_H_
