#include "columnar/expression.h"

#include <algorithm>

#include "columnar/kernels.h"
#include "common/logging.h"

namespace eon {

namespace {

inline bool CmpHolds(CmpOp op, int c) {
  switch (op) {
    case CmpOp::kEq: return c == 0;
    case CmpOp::kNe: return c != 0;
    case CmpOp::kLt: return c < 0;
    case CmpOp::kLe: return c <= 0;
    case CmpOp::kGt: return c > 0;
    case CmpOp::kGe: return c >= 0;
  }
  return false;
}

/// One comparison over a block of decoded values. The block is
/// homogeneously typed (it is a schema column), so the type dispatch is
/// hoisted out of the row loop; the typed accessors CHECK on type
/// confusion exactly like Value::Compare does on the row path.
void EvalCmpValues(const std::vector<Value>& v, CmpOp op, const Value& lit,
                   size_t row_count, uint8_t* sel) {
  switch (lit.type()) {
    case DataType::kInt64: {
      const int64_t x = lit.int_value();
      for (size_t i = 0; i < row_count; ++i) {
        if (v[i].is_null()) {
          sel[i] = 0;
          continue;
        }
        const int64_t y = v[i].int_value();
        sel[i] = CmpHolds(op, y < x ? -1 : (y > x ? 1 : 0));
      }
      return;
    }
    case DataType::kDouble: {
      const double x = lit.dbl_value();
      for (size_t i = 0; i < row_count; ++i) {
        if (v[i].is_null()) {
          sel[i] = 0;
          continue;
        }
        const double y = v[i].dbl_value();
        sel[i] = CmpHolds(op, y < x ? -1 : (y > x ? 1 : 0));
      }
      return;
    }
    case DataType::kString: {
      const std::string& x = lit.str_value();
      for (size_t i = 0; i < row_count; ++i) {
        if (v[i].is_null()) {
          sel[i] = 0;
          continue;
        }
        const int c = v[i].str_value().compare(x);
        sel[i] = CmpHolds(op, c < 0 ? -1 : (c > 0 ? 1 : 0));
      }
      return;
    }
  }
  std::fill(sel, sel + row_count, uint8_t{0});
}

/// One comparison over a columnar batch. int64 columns go through the
/// vectorized compare kernel (validity handled by the bitmap); double and
/// string columns run the same typed scalar loops as EvalCmpValues. The
/// EON_CHECK on batch type mirrors the typed-accessor CHECK of the
/// Value-wise path.
void EvalCmpBatchValues(const ColumnBatch& b, CmpOp op, const Value& lit,
                        size_t row_count, uint8_t* sel,
                        uint64_t* kernel_calls) {
  switch (lit.type()) {
    case DataType::kInt64: {
      EON_CHECK(b.type() == DataType::kInt64);
      simd::CompareInt64(b.ints(), row_count, op, lit.int_value(),
                         b.validity_words(), sel);
      if (kernel_calls != nullptr) ++*kernel_calls;
      return;
    }
    case DataType::kDouble: {
      EON_CHECK(b.type() == DataType::kDouble);
      const double x = lit.dbl_value();
      const double* v = b.dbls();
      for (size_t i = 0; i < row_count; ++i) {
        if (b.IsNull(i)) {
          sel[i] = 0;
          continue;
        }
        const double y = v[i];
        sel[i] = CmpHolds(op, y < x ? -1 : (y > x ? 1 : 0));
      }
      return;
    }
    case DataType::kString: {
      EON_CHECK(b.type() == DataType::kString);
      const std::string& x = lit.str_value();
      const std::string* v = b.strs();
      for (size_t i = 0; i < row_count; ++i) {
        if (b.IsNull(i)) {
          sel[i] = 0;
          continue;
        }
        const int c = v[i].compare(x);
        sel[i] = CmpHolds(op, c < 0 ? -1 : (c > 0 ? 1 : 0));
      }
      return;
    }
  }
  std::fill(sel, sel + row_count, uint8_t{0});
}

/// Comparison leaf of EvalBlock: missing (never-materialized) columns and
/// NULL literals fail every row, everything else runs the typed loop.
void EvalCmpBlock(const Predicate& p,
                  const std::vector<const std::vector<Value>*>& columns,
                  size_t row_count, uint8_t* sel) {
  const size_t col = p.col_index();
  const Value& lit = p.literal();
  if (col >= columns.size() || columns[col] == nullptr || lit.is_null()) {
    std::fill(sel, sel + row_count, uint8_t{0});
    return;
  }
  EvalCmpValues(*columns[col], p.op(), lit, row_count, sel);
}

void EvalBlockInto(const Predicate& p,
                   const std::vector<const std::vector<Value>*>& columns,
                   size_t row_count, uint8_t* sel) {
  switch (p.kind()) {
    case Predicate::Kind::kTrue:
      std::fill(sel, sel + row_count, uint8_t{1});
      return;
    case Predicate::Kind::kCmp:
      EvalCmpBlock(p, columns, row_count, sel);
      return;
    case Predicate::Kind::kAnd: {
      EvalBlockInto(*p.left(), columns, row_count, sel);
      SelectionVector tmp(row_count);
      EvalBlockInto(*p.right(), columns, row_count, tmp.data());
      simd::SelAnd(sel, tmp.data(), row_count);
      return;
    }
    case Predicate::Kind::kOr: {
      EvalBlockInto(*p.left(), columns, row_count, sel);
      SelectionVector tmp(row_count);
      EvalBlockInto(*p.right(), columns, row_count, tmp.data());
      simd::SelOr(sel, tmp.data(), row_count);
      return;
    }
    case Predicate::Kind::kNot:
      EvalBlockInto(*p.left(), columns, row_count, sel);
      simd::SelNot(sel, row_count);
      return;
  }
  std::fill(sel, sel + row_count, uint8_t{0});
}

/// EvalBlockInto over columnar batches: the same recursion with batch
/// comparison leaves and vectorized selection-vector combines.
void EvalBlockBatchInto(const Predicate& p,
                        const std::vector<const ColumnBatch*>& columns,
                        size_t row_count, uint8_t* sel,
                        uint64_t* kernel_calls) {
  switch (p.kind()) {
    case Predicate::Kind::kTrue:
      std::fill(sel, sel + row_count, uint8_t{1});
      return;
    case Predicate::Kind::kCmp: {
      const size_t col = p.col_index();
      const Value& lit = p.literal();
      if (col >= columns.size() || columns[col] == nullptr || lit.is_null()) {
        std::fill(sel, sel + row_count, uint8_t{0});
        return;
      }
      EvalCmpBatchValues(*columns[col], p.op(), lit, row_count, sel,
                         kernel_calls);
      return;
    }
    case Predicate::Kind::kAnd: {
      EvalBlockBatchInto(*p.left(), columns, row_count, sel, kernel_calls);
      SelectionVector tmp(row_count);
      EvalBlockBatchInto(*p.right(), columns, row_count, tmp.data(),
                         kernel_calls);
      simd::SelAnd(sel, tmp.data(), row_count);
      return;
    }
    case Predicate::Kind::kOr: {
      EvalBlockBatchInto(*p.left(), columns, row_count, sel, kernel_calls);
      SelectionVector tmp(row_count);
      EvalBlockBatchInto(*p.right(), columns, row_count, tmp.data(),
                         kernel_calls);
      simd::SelOr(sel, tmp.data(), row_count);
      return;
    }
    case Predicate::Kind::kNot:
      EvalBlockBatchInto(*p.left(), columns, row_count, sel, kernel_calls);
      simd::SelNot(sel, row_count);
      return;
  }
  std::fill(sel, sel + row_count, uint8_t{0});
}

/// EvalBlockInto with encoded comparison leaves: structurally identical
/// recursion, but a kCmp node is answered by the EncodedBlockSource when
/// the column's encoding supports it, decoding only as a fallback.
void EvalBlockEncodedInto(const Predicate& p, EncodedBlockSource* src,
                          size_t row_count, uint8_t* sel,
                          uint64_t* kernel_calls) {
  switch (p.kind()) {
    case Predicate::Kind::kTrue:
      std::fill(sel, sel + row_count, uint8_t{1});
      return;
    case Predicate::Kind::kCmp: {
      const Value& lit = p.literal();
      if (lit.is_null()) {
        std::fill(sel, sel + row_count, uint8_t{0});
        return;
      }
      if (src->TryEvalCmpEncoded(p.col_index(), p.op(), lit, sel)) return;
      const ColumnBatch* decoded = src->DecodedColumn(p.col_index());
      if (decoded == nullptr) {
        std::fill(sel, sel + row_count, uint8_t{0});
        return;
      }
      EvalCmpBatchValues(*decoded, p.op(), lit, row_count, sel, kernel_calls);
      return;
    }
    case Predicate::Kind::kAnd: {
      EvalBlockEncodedInto(*p.left(), src, row_count, sel, kernel_calls);
      SelectionVector tmp(row_count);
      EvalBlockEncodedInto(*p.right(), src, row_count, tmp.data(),
                           kernel_calls);
      simd::SelAnd(sel, tmp.data(), row_count);
      return;
    }
    case Predicate::Kind::kOr: {
      EvalBlockEncodedInto(*p.left(), src, row_count, sel, kernel_calls);
      SelectionVector tmp(row_count);
      EvalBlockEncodedInto(*p.right(), src, row_count, tmp.data(),
                           kernel_calls);
      simd::SelOr(sel, tmp.data(), row_count);
      return;
    }
    case Predicate::Kind::kNot:
      EvalBlockEncodedInto(*p.left(), src, row_count, sel, kernel_calls);
      simd::SelNot(sel, row_count);
      return;
  }
  std::fill(sel, sel + row_count, uint8_t{0});
}

}  // namespace

bool CmpMatches(const Value& v, CmpOp op, const Value& literal) {
  if (v.is_null() || literal.is_null()) return false;
  return CmpHolds(op, v.Compare(literal));
}

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq: return "=";
    case CmpOp::kNe: return "<>";
    case CmpOp::kLt: return "<";
    case CmpOp::kLe: return "<=";
    case CmpOp::kGt: return ">";
    case CmpOp::kGe: return ">=";
  }
  return "?";
}

PredicatePtr Predicate::True() {
  auto p = std::shared_ptr<Predicate>(new Predicate());
  p->kind_ = Kind::kTrue;
  return p;
}

PredicatePtr Predicate::Cmp(size_t col_index, CmpOp op, Value literal) {
  auto p = std::shared_ptr<Predicate>(new Predicate());
  p->kind_ = Kind::kCmp;
  p->col_ = col_index;
  p->op_ = op;
  p->literal_ = std::move(literal);
  return p;
}

PredicatePtr Predicate::And(PredicatePtr a, PredicatePtr b) {
  auto p = std::shared_ptr<Predicate>(new Predicate());
  p->kind_ = Kind::kAnd;
  p->left_ = std::move(a);
  p->right_ = std::move(b);
  return p;
}

PredicatePtr Predicate::Or(PredicatePtr a, PredicatePtr b) {
  auto p = std::shared_ptr<Predicate>(new Predicate());
  p->kind_ = Kind::kOr;
  p->left_ = std::move(a);
  p->right_ = std::move(b);
  return p;
}

PredicatePtr Predicate::Not(PredicatePtr a) {
  auto p = std::shared_ptr<Predicate>(new Predicate());
  p->kind_ = Kind::kNot;
  p->left_ = std::move(a);
  return p;
}

bool Predicate::Eval(const Row& row) const {
  switch (kind_) {
    case Kind::kTrue:
      return true;
    case Kind::kCmp:
      return col_ < row.size() && CmpMatches(row[col_], op_, literal_);
    case Kind::kAnd:
      return left_->Eval(row) && right_->Eval(row);
    case Kind::kOr:
      return left_->Eval(row) || right_->Eval(row);
    case Kind::kNot:
      return !left_->Eval(row);
  }
  return false;
}

void Predicate::EvalBlock(
    const std::vector<const std::vector<Value>*>& columns, size_t row_count,
    SelectionVector* sel) const {
  sel->resize(row_count);
  if (row_count == 0) return;
  EvalBlockInto(*this, columns, row_count, sel->data());
}

void Predicate::EvalBlockBatch(const std::vector<const ColumnBatch*>& columns,
                               size_t row_count, SelectionVector* sel,
                               uint64_t* kernel_calls) const {
  sel->resize(row_count);
  if (row_count == 0) return;
  EvalBlockBatchInto(*this, columns, row_count, sel->data(), kernel_calls);
}

void Predicate::EvalBlockEncoded(EncodedBlockSource* src, size_t row_count,
                                 SelectionVector* sel,
                                 uint64_t* kernel_calls) const {
  sel->resize(row_count);
  if (row_count == 0) return;
  EvalBlockEncodedInto(*this, src, row_count, sel->data(), kernel_calls);
}

bool Predicate::CouldMatch(const std::vector<ValueRange>& ranges) const {
  switch (kind_) {
    case Kind::kTrue:
      return true;
    case Kind::kCmp: {
      if (col_ >= ranges.size()) return true;
      const ValueRange& r = ranges[col_];
      if (!r.valid || literal_.is_null()) return true;
      // All range bounds are non-null by construction (null rows tracked by
      // has_null and never satisfy a comparison anyway).
      int cmin = r.min.Compare(literal_);
      int cmax = r.max.Compare(literal_);
      switch (op_) {
        case CmpOp::kEq: return cmin <= 0 && cmax >= 0;
        case CmpOp::kNe: return !(cmin == 0 && cmax == 0);
        case CmpOp::kLt: return cmin < 0;
        case CmpOp::kLe: return cmin <= 0;
        case CmpOp::kGt: return cmax > 0;
        case CmpOp::kGe: return cmax >= 0;
      }
      return true;
    }
    case Kind::kAnd:
      return left_->CouldMatch(ranges) && right_->CouldMatch(ranges);
    case Kind::kOr:
      return left_->CouldMatch(ranges) || right_->CouldMatch(ranges);
    case Kind::kNot:
      // NOT cannot be range-refuted without interval complement logic;
      // stay conservative.
      return true;
  }
  return true;
}

void Predicate::CollectColumns(std::set<size_t>* cols) const {
  switch (kind_) {
    case Kind::kTrue:
      return;
    case Kind::kCmp:
      cols->insert(col_);
      return;
    case Kind::kAnd:
    case Kind::kOr:
      left_->CollectColumns(cols);
      right_->CollectColumns(cols);
      return;
    case Kind::kNot:
      left_->CollectColumns(cols);
      return;
  }
}

double Predicate::EstimatedSelectivity() const {
  switch (kind_) {
    case Kind::kTrue:
      return 1.0;
    case Kind::kCmp:
      switch (op_) {
        case CmpOp::kEq: return 0.05;
        case CmpOp::kNe: return 0.95;
        default: return 0.3;
      }
    case Kind::kAnd:
      return left_->EstimatedSelectivity() * right_->EstimatedSelectivity();
    case Kind::kOr: {
      double a = left_->EstimatedSelectivity();
      double b = right_->EstimatedSelectivity();
      return a + b - a * b;
    }
    case Kind::kNot:
      return 1.0 - left_->EstimatedSelectivity();
  }
  return 1.0;
}

std::string Predicate::ToString() const {
  switch (kind_) {
    case Kind::kTrue:
      return "TRUE";
    case Kind::kCmp:
      return "col" + std::to_string(col_) + " " + CmpOpName(op_) + " " +
             literal_.ToString();
    case Kind::kAnd:
      return "(" + left_->ToString() + " AND " + right_->ToString() + ")";
    case Kind::kOr:
      return "(" + left_->ToString() + " OR " + right_->ToString() + ")";
    case Kind::kNot:
      return "NOT (" + left_->ToString() + ")";
  }
  return "?";
}

}  // namespace eon
