file(REMOVE_RECURSE
  "CMakeFiles/eon_storage.dir/object_store.cc.o"
  "CMakeFiles/eon_storage.dir/object_store.cc.o.d"
  "CMakeFiles/eon_storage.dir/posix_object_store.cc.o"
  "CMakeFiles/eon_storage.dir/posix_object_store.cc.o.d"
  "CMakeFiles/eon_storage.dir/sim_object_store.cc.o"
  "CMakeFiles/eon_storage.dir/sim_object_store.cc.o.d"
  "libeon_storage.a"
  "libeon_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eon_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
