#ifndef EON_COLUMNAR_TYPES_H_
#define EON_COLUMNAR_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/logging.h"

namespace eon {

/// Column data types. Dates/timestamps are stored as kInt64 (days or micros
/// since epoch), matching how a column engine treats them physically.
enum class DataType : uint8_t {
  kInt64 = 0,
  kDouble = 1,
  kString = 2,
};

const char* DataTypeName(DataType t);

/// A single (nullable) typed value. Total order: NULL sorts first, then by
/// value; comparing values of different types is a programmer error.
class Value {
 public:
  Value() : type_(DataType::kInt64), null_(true) {}

  static Value Null(DataType t) {
    Value v;
    v.type_ = t;
    return v;
  }
  static Value Int(int64_t i) {
    Value v;
    v.type_ = DataType::kInt64;
    v.null_ = false;
    v.int_ = i;
    return v;
  }
  static Value Dbl(double d) {
    Value v;
    v.type_ = DataType::kDouble;
    v.null_ = false;
    v.dbl_ = d;
    return v;
  }
  static Value Str(std::string s) {
    Value v;
    v.type_ = DataType::kString;
    v.null_ = false;
    v.str_ = std::move(s);
    return v;
  }

  DataType type() const { return type_; }
  bool is_null() const { return null_; }
  int64_t int_value() const {
    EON_CHECK(!null_ && type_ == DataType::kInt64);
    return int_;
  }
  double dbl_value() const {
    EON_CHECK(!null_ && type_ == DataType::kDouble);
    return dbl_;
  }
  const std::string& str_value() const {
    EON_CHECK(!null_ && type_ == DataType::kString);
    return str_;
  }

  /// Numeric view: int64 widened to double. Precondition: numeric, non-null.
  double AsDouble() const {
    return type_ == DataType::kInt64 ? static_cast<double>(int_value())
                                     : dbl_value();
  }

  /// Three-way compare. NULL < any non-null; NULL == NULL.
  int Compare(const Value& other) const;

  bool operator==(const Value& o) const { return Compare(o) == 0; }
  bool operator!=(const Value& o) const { return Compare(o) != 0; }
  bool operator<(const Value& o) const { return Compare(o) < 0; }

  /// Segmentation hash contribution of this value (32-bit space).
  uint32_t SegHash() const;

  /// Human-readable form for debugging and example output.
  std::string ToString() const;

 private:
  DataType type_;
  bool null_ = true;
  int64_t int_ = 0;
  double dbl_ = 0;
  std::string str_;
};

/// A tuple: one Value per schema column.
using Row = std::vector<Value>;

/// Rough serialized size of a row (network / response cost accounting).
uint64_t RowBytes(const Row& row);

}  // namespace eon

#endif  // EON_COLUMNAR_TYPES_H_
