#include "columnar/ros.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <set>
#include <utility>

#include "columnar/encoding.h"
#include "columnar/value_codec.h"
#include "common/codec.h"
#include "common/hash.h"
#include "obs/metrics.h"
#include "storage/object_store.h"

namespace eon {

namespace {

constexpr uint32_t kColumnFileMagic = 0xEC01F11E;

void UpdateRange(ValueRange* range, const Value& v) {
  if (v.is_null()) {
    range->has_null = true;
    return;
  }
  if (!range->valid) {
    range->valid = true;
    range->min = v;
    range->max = v;
    return;
  }
  if (v.Compare(range->min) < 0) range->min = v;
  if (v.Compare(range->max) > 0) range->max = v;
}

void PutRange(std::string* dst, const ValueRange& r) {
  dst->push_back(r.valid ? 1 : 0);
  dst->push_back(r.has_null ? 1 : 0);
  if (r.valid) {
    PutValue(dst, r.min);
    PutValue(dst, r.max);
  }
}

Status GetRange(Slice* in, DataType type, ValueRange* r) {
  if (in->size() < 2) return Status::Corruption("range underflow");
  r->valid = (*in)[0] != 0;
  r->has_null = (*in)[1] != 0;
  in->remove_prefix(2);
  if (r->valid) {
    EON_RETURN_IF_ERROR(GetValue(in, type, &r->min));
    EON_RETURN_IF_ERROR(GetValue(in, type, &r->max));
  }
  return Status::OK();
}

}  // namespace

struct PendingFile::State {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  Status status;
  FileRef ref;
  obs::Histogram* wait_hist = nullptr;
};

PendingFile PendingFile::MakeReady(Result<FileRef> result) {
  PendingFile pf;
  pf.state_ = std::make_shared<State>();
  pf.state_->done = true;
  if (result.ok()) {
    pf.state_->ref = std::move(result).value();
  } else {
    pf.state_->status = result.status();
  }
  return pf;
}

PendingFile PendingFile::MakePending(obs::Histogram* wait_hist) {
  PendingFile pf;
  pf.state_ = std::make_shared<State>();
  pf.state_->wait_hist = wait_hist;
  return pf;
}

void PendingFile::Complete(Result<FileRef> result) {
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    if (result.ok()) {
      state_->ref = std::move(result).value();
    } else {
      state_->status = result.status();
    }
    state_->done = true;
  }
  state_->cv.notify_all();
}

Result<FileRef> PendingFile::Wait(int64_t* wait_micros) {
  std::unique_lock<std::mutex> lock(state_->mu);
  if (!state_->done) {
    const auto start = std::chrono::steady_clock::now();
    state_->cv.wait(lock, [this] { return state_->done; });
    const int64_t blocked =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count();
    if (wait_micros != nullptr) *wait_micros += blocked;
    if (state_->wait_hist != nullptr) {
      state_->wait_hist->Observe(static_cast<double>(blocked));
    }
  }
  if (!state_->status.ok()) return state_->status;
  return state_->ref;
}

Result<FileRef> FileFetcher::FetchRef(const std::string& key) {
  EON_ASSIGN_OR_RETURN(std::string data, Fetch(key));
  return std::make_shared<const std::string>(std::move(data));
}

PendingFile FileFetcher::FetchRefAsync(const std::string& key) {
  return PendingFile::MakeReady(FetchRef(key));
}

Result<std::string> DirectFetcher::Fetch(const std::string& key) {
  return store_->Get(key);
}

std::string RosContainerWriter::ColumnKey(const std::string& base_key,
                                          size_t col) {
  return base_key + "_c" + std::to_string(col);
}

Result<RosBuildResult> RosContainerWriter::Build(
    const Schema& schema, const std::vector<Row>& rows,
    const std::string& base_key, const RosWriteOptions& options) {
  if (options.rows_per_block == 0) {
    return Status::InvalidArgument("rows_per_block must be positive");
  }
  for (const Row& row : rows) {
    if (!schema.RowMatches(row)) {
      return Status::InvalidArgument("row does not match schema");
    }
  }

  RosBuildResult result;
  result.row_count = rows.size();
  result.column_ranges.resize(schema.num_columns());

  for (size_t col = 0; col < schema.num_columns(); ++col) {
    const DataType type = schema.column(col).type;
    std::string file;
    std::vector<BlockMeta> blocks;

    for (uint64_t start = 0; start < rows.size();
         start += options.rows_per_block) {
      const uint64_t end =
          std::min<uint64_t>(start + options.rows_per_block, rows.size());
      std::vector<Value> chunk;
      chunk.reserve(end - start);
      ValueRange range;
      for (uint64_t r = start; r < end; ++r) {
        chunk.push_back(rows[r][col]);
        UpdateRange(&range, rows[r][col]);
        UpdateRange(&result.column_ranges[col], rows[r][col]);
      }
      const Encoding enc = ChooseEncoding(chunk, type);
      Result<std::string> encoded_r = EncodeChunk(chunk, type, enc);
      if (!encoded_r.ok() && enc != Encoding::kPlain) {
        // Sampled write-time stats can admit an encoding the full chunk
        // rejects (e.g. delta over a null outside the sample windows);
        // plain accepts anything.
        encoded_r = EncodeChunk(chunk, type, Encoding::kPlain);
      }
      EON_ASSIGN_OR_RETURN(std::string encoded, std::move(encoded_r));
      PutFixed32(&encoded, Crc32c(encoded.data(), encoded.size()));

      BlockMeta meta;
      meta.offset = file.size();
      meta.length = encoded.size();
      meta.row_count = end - start;
      meta.first_row = start;
      meta.range = range;
      blocks.push_back(meta);
      file += encoded;
    }

    // Footer: position index + per-block min/max, checksummed.
    std::string footer;
    PutVarint64(&footer, blocks.size());
    PutVarint64(&footer, rows.size());
    for (const BlockMeta& b : blocks) {
      PutVarint64(&footer, b.offset);
      PutVarint64(&footer, b.length);
      PutVarint64(&footer, b.row_count);
      PutVarint64(&footer, b.first_row);
      PutRange(&footer, b.range);
    }
    PutFixed32(&footer, Crc32c(footer.data(), footer.size()));

    const uint64_t footer_len = footer.size();
    file += footer;
    PutFixed64(&file, footer_len);
    PutFixed32(&file, kColumnFileMagic);

    result.total_bytes += file.size();
    result.files.push_back(
        RosColumnFile{ColumnKey(base_key, col), std::move(file)});
  }
  return result;
}

Result<ColumnFileReader> ColumnFileReader::Open(std::string file_data,
                                                DataType type) {
  return Open(std::make_shared<const std::string>(std::move(file_data)),
              type);
}

Result<ColumnFileReader> ColumnFileReader::Open(FileRef file_data,
                                                DataType type) {
  ColumnFileReader reader;
  reader.data_ = std::move(file_data);
  reader.type_ = type;
  const std::string& data = *reader.data_;
  if (data.size() < 12) return Status::Corruption("column file too short");

  Slice tail(data.data() + data.size() - 12, 12);
  uint64_t footer_len;
  uint32_t magic;
  EON_RETURN_IF_ERROR(GetFixed64(&tail, &footer_len));
  EON_RETURN_IF_ERROR(GetFixed32(&tail, &magic));
  if (magic != kColumnFileMagic) {
    return Status::Corruption("column file bad magic");
  }
  if (footer_len + 12 > data.size()) {
    return Status::Corruption("column file footer length invalid");
  }
  const char* footer_start = data.data() + data.size() - 12 - footer_len;
  if (footer_len < 4) return Status::Corruption("footer too short");
  Slice footer(footer_start, footer_len - 4);
  Slice crc_slice(footer_start + footer_len - 4, 4);
  uint32_t stored_crc;
  EON_RETURN_IF_ERROR(GetFixed32(&crc_slice, &stored_crc));
  if (Crc32c(footer.data(), footer.size()) != stored_crc) {
    return Status::Corruption("column file footer checksum mismatch");
  }

  uint64_t num_blocks;
  EON_RETURN_IF_ERROR(GetVarint64(&footer, &num_blocks));
  EON_RETURN_IF_ERROR(GetVarint64(&footer, &reader.row_count_));
  reader.blocks_.reserve(num_blocks);
  for (uint64_t i = 0; i < num_blocks; ++i) {
    BlockMeta meta;
    EON_RETURN_IF_ERROR(GetVarint64(&footer, &meta.offset));
    EON_RETURN_IF_ERROR(GetVarint64(&footer, &meta.length));
    EON_RETURN_IF_ERROR(GetVarint64(&footer, &meta.row_count));
    EON_RETURN_IF_ERROR(GetVarint64(&footer, &meta.first_row));
    EON_RETURN_IF_ERROR(GetRange(&footer, reader.type_, &meta.range));
    if (meta.offset + meta.length > data.size() - 12 - footer_len) {
      return Status::Corruption("block extends past data region");
    }
    reader.blocks_.push_back(std::move(meta));
  }
  return reader;
}

Result<ChunkView> ColumnFileReader::BlockChunk(size_t i) const {
  if (i >= blocks_.size()) return Status::OutOfRange("block index");
  const BlockMeta& meta = blocks_[i];
  if (meta.length < 4) return Status::Corruption("block too short");
  Slice block(data_->data() + meta.offset, meta.length - 4);
  Slice crc_slice(data_->data() + meta.offset + meta.length - 4, 4);
  uint32_t stored_crc;
  EON_RETURN_IF_ERROR(GetFixed32(&crc_slice, &stored_crc));
  if (Crc32c(block.data(), block.size()) != stored_crc) {
    return Status::Corruption("block checksum mismatch");
  }
  EON_ASSIGN_OR_RETURN(ChunkView view, ParseChunk(block));
  if (view.count != meta.row_count) {
    return Status::Corruption("block row count mismatch");
  }
  return view;
}

Status ColumnFileReader::DecodeBlock(size_t i, std::vector<Value>* out) const {
  EON_ASSIGN_OR_RETURN(ChunkView view, BlockChunk(i));
  out->reserve(out->size() + view.count);
  return DecodeChunkSelected(view, type_, /*sel=*/nullptr, out);
}

Status ColumnFileReader::DecodeBlockBatch(size_t i, ColumnBatch* out,
                                          uint64_t* values_unpacked) const {
  EON_ASSIGN_OR_RETURN(ChunkView view, BlockChunk(i));
  return DecodeChunkToBatch(view, type_, out, values_unpacked);
}

Status ColumnFileReader::DecodeSelected(size_t i, const uint8_t* sel,
                                        std::vector<Value>* out,
                                        uint64_t* values_decoded,
                                        uint64_t* values_unpacked) const {
  EON_ASSIGN_OR_RETURN(ChunkView view, BlockChunk(i));
  return DecodeChunkSelected(view, type_, sel, out, values_decoded,
                             values_unpacked);
}

const char* ScanModeName(ScanMode mode) {
  switch (mode) {
    case ScanMode::kRowWise: return "row_wise";
    case ScanMode::kBlockEval: return "block_eval";
    case ScanMode::kLateMat: return "late_mat";
  }
  return "?";
}

namespace {

/// Fetch every column in `cols` as ONE async batch — the store round
/// trips overlap instead of serializing K first-byte latencies — then
/// open a reader per file as each fetch completes (completion order is
/// consumed in ascending column order; a fetch that finished early waits
/// zero). Blocked wall time lands in st->fetch_wait_micros.
Status FetchColumnsAsync(const Schema& schema, const std::string& base_key,
                         FileFetcher* fetcher, const std::set<size_t>& cols,
                         std::map<size_t, ColumnFileReader>* readers,
                         RosScanStats* st) {
  std::vector<std::pair<size_t, PendingFile>> pending;
  pending.reserve(cols.size());
  for (size_t col : cols) {
    pending.emplace_back(col, fetcher->FetchRefAsync(
                                  RosContainerWriter::ColumnKey(base_key, col)));
  }
  for (auto& [col, pf] : pending) {
    EON_ASSIGN_OR_RETURN(FileRef data,
                         pf.Wait(st ? &st->fetch_wait_micros : nullptr));
    if (st != nullptr) {
      st->files_fetched++;
      st->bytes_fetched += data->size();
    }
    EON_ASSIGN_OR_RETURN(
        ColumnFileReader reader,
        ColumnFileReader::Open(std::move(data), schema.column(col).type));
    readers->emplace(col, std::move(reader));
  }
  return Status::OK();
}

/// EncodedBlockSource over one block of the fetched predicate-column
/// readers: comparison leaves evaluate directly on the encoded chunk (per
/// RLE run / per dictionary entry) when possible, with a lazily decoded,
/// per-block-cached fallback for plain and delta columns. Decode or CRC
/// errors cannot flow through the bool interface, so the first failure is
/// latched in status() — check it after every EvalBlockEncoded.
class BlockPredicateSource : public EncodedBlockSource {
 public:
  /// `st` (nullable) receives decode/unpack/kernel accounting.
  BlockPredicateSource(const std::map<size_t, ColumnFileReader>& readers,
                       RosScanStats* st)
      : readers_(readers), st_(st) {}

  void SetBlock(size_t block, uint64_t row_count) {
    block_ = block;
    row_count_ = row_count;
    chunks_.clear();
    decoded_.clear();
  }

  bool TryEvalCmpEncoded(size_t col, CmpOp op, const Value& literal,
                         uint8_t* sel) override {
    auto it = status_.ok() ? readers_.find(col) : readers_.end();
    if (it == readers_.end()) {
      // Unfetched column (or latched error): no row matches, same as
      // EvalBlock's missing-column rule.
      std::fill(sel, sel + row_count_, uint8_t{0});
      return true;
    }
    const ChunkView* view = Chunk(col, it->second);
    if (view == nullptr) {
      std::fill(sel, sel + row_count_, uint8_t{0});
      return true;
    }
    Result<bool> handled = EvalChunkCmp(
        *view, it->second.type(), op, literal, sel,
        st_ ? &st_->values_decoded : nullptr,
        st_ ? &st_->values_unpacked : nullptr,
        st_ ? &st_->kernel_calls : nullptr);
    if (!handled.ok()) {
      status_ = handled.status();
      std::fill(sel, sel + row_count_, uint8_t{0});
      return true;
    }
    return handled.value();
  }

  const ColumnBatch* DecodedColumn(size_t col) override {
    if (!status_.ok()) return nullptr;
    auto cached = decoded_.find(col);
    if (cached != decoded_.end()) return &cached->second;
    auto it = readers_.find(col);
    if (it == readers_.end()) return nullptr;
    ColumnBatch batch;
    Status s = it->second.DecodeBlockBatch(
        block_, &batch, st_ ? &st_->values_unpacked : nullptr);
    if (!s.ok()) {
      status_ = s;
      return nullptr;
    }
    if (st_ != nullptr) st_->values_decoded += batch.size();
    return &decoded_.emplace(col, std::move(batch)).first->second;
  }

  /// Move out the fallback-decoded column of the current block, if phase 1
  /// produced one — lets the scan keep predicate∩output columns for
  /// phase 2 without paying for a second decode. Consumes the cache entry
  /// (the next SetBlock would clear it anyway).
  bool TakeDecoded(size_t col, ColumnBatch* out) {
    auto it = decoded_.find(col);
    if (it == decoded_.end()) return false;
    *out = std::move(it->second);
    decoded_.erase(it);
    return true;
  }

  const Status& status() const { return status_; }

 private:
  const ChunkView* Chunk(size_t col, const ColumnFileReader& reader) {
    auto it = chunks_.find(col);
    if (it != chunks_.end()) return &it->second;
    Result<ChunkView> view = reader.BlockChunk(block_);
    if (!view.ok()) {
      status_ = view.status();
      return nullptr;
    }
    return &chunks_.emplace(col, view.value()).first->second;
  }

  const std::map<size_t, ColumnFileReader>& readers_;
  RosScanStats* st_;
  size_t block_ = 0;
  uint64_t row_count_ = 0;
  std::map<size_t, ChunkView> chunks_;
  std::map<size_t, ColumnBatch> decoded_;
  Status status_;
};

/// Two-phase late-materialization scan. Phase 1 fetches only the predicate
/// columns (one async batch) and evaluates the predicate per block — on
/// the encoded representation where the encoding supports it — folding the
/// row range and tombstones into one selection vector. Phase 2 selectively
/// decodes the output columns for surviving rows; output-only column files
/// are fetched lazily AND asynchronously: the fetch is issued at the first
/// surviving block and overlaps with the remaining phase-1 work, and a
/// container where nothing survives never fetches them at all.
Result<std::vector<Row>> ScanLateMaterialized(const Schema& schema,
                                              const std::string& base_key,
                                              FileFetcher* fetcher,
                                              const RosScanOptions& options,
                                              const std::set<size_t>& pred_cols,
                                              RosScanStats* st) {
  std::map<size_t, ColumnFileReader> readers;
  EON_RETURN_IF_ERROR(
      FetchColumnsAsync(schema, base_key, fetcher, pred_cols, &readers, st));

  const ColumnFileReader& first = readers.begin()->second;
  const size_t num_blocks = first.num_blocks();
  for (const auto& [col, r] : readers) {
    if (r.num_blocks() != num_blocks || r.row_count() != first.row_count()) {
      return Status::Corruption("column files disagree on block layout");
    }
  }

  // Output-only columns (not referenced by the predicate), fetched lazily
  // on the first block with survivors.
  const std::set<size_t> out_distinct(options.output_columns.begin(),
                                      options.output_columns.end());
  std::set<size_t> out_only;
  for (size_t col : out_distinct) {
    if (pred_cols.count(col) == 0) out_only.insert(col);
  }

  // Phase 1 runs over ALL blocks first, buffering each survivor's
  // selection (plus any column phase 1 already decoded), so the
  // output-only fetch issued at the first survivor overlaps with the
  // remaining predicate work — the scan only Waits once phase 2 begins.
  struct Survivor {
    size_t block = 0;
    uint64_t selected = 0;
    SelectionVector sel;
    /// Phase-1 fallback decodes of predicate∩output columns; compacted in
    /// phase 2 without a second decode.
    std::map<size_t, ColumnBatch> phase1;
  };
  std::vector<Survivor> survivors;
  std::vector<std::pair<size_t, PendingFile>> out_pending;
  bool outputs_requested = false;
  auto request_outputs = [&]() {
    if (outputs_requested) return;
    outputs_requested = true;
    out_pending.reserve(out_only.size());
    for (size_t col : out_only) {
      out_pending.emplace_back(
          col,
          fetcher->FetchRefAsync(RosContainerWriter::ColumnKey(base_key, col)));
    }
  };

  std::vector<Row> out;
  BlockPredicateSource src(readers, st);
  for (size_t b = 0; b < num_blocks; ++b) {
    const BlockMeta& bm = first.block(b);
    st->blocks_total++;

    const uint64_t block_begin = bm.first_row;
    const uint64_t block_end = bm.first_row + bm.row_count;
    if (block_end <= options.row_begin || block_begin >= options.row_end) {
      st->blocks_pruned++;
      continue;
    }

    {
      // CouldMatch only inspects predicate-referenced columns, so
      // predicate-only ranges prune exactly like the eager path's full
      // range set.
      std::vector<ValueRange> ranges(schema.num_columns());
      for (size_t col : pred_cols) ranges[col] = readers.at(col).block(b).range;
      if (!options.predicate->CouldMatch(ranges)) {
        st->blocks_pruned++;
        continue;
      }
    }

    // Phase 1: encoded predicate evaluation, then fold the row range and
    // tombstones into the selection vector.
    src.SetBlock(b, bm.row_count);
    SelectionVector sel;
    options.predicate->EvalBlockEncoded(&src, bm.row_count, &sel,
                                        &st->kernel_calls);
    EON_RETURN_IF_ERROR(src.status());
    uint64_t selected = 0;
    if (options.deletes == nullptr && options.row_begin <= block_begin &&
        block_end <= options.row_end) {
      st->rows_visited += bm.row_count;
      for (uint64_t i = 0; i < bm.row_count; ++i) selected += sel[i] != 0;
    } else {
      for (uint64_t i = 0; i < bm.row_count; ++i) {
        const uint64_t pos = block_begin + i;
        if (pos < options.row_begin || pos >= options.row_end) {
          sel[i] = 0;
          continue;
        }
        st->rows_visited++;
        if (options.deletes && options.deletes->IsDeleted(pos)) {
          sel[i] = 0;
          continue;
        }
        if (sel[i]) ++selected;
      }
    }
    if (selected == 0) continue;

    request_outputs();
    Survivor sv;
    sv.block = b;
    sv.selected = selected;
    for (size_t col : out_distinct) {
      if (pred_cols.count(col) == 0) continue;
      ColumnBatch vals;
      if (src.TakeDecoded(col, &vals)) sv.phase1.emplace(col, std::move(vals));
    }
    sv.sel = std::move(sel);
    survivors.push_back(std::move(sv));
  }
  if (!outputs_requested) {
    st->files_skipped += out_only.size();
    return out;
  }

  // Wait for the output-only files — much of their store latency has
  // already been hidden behind the phase-1 work above — and verify they
  // agree with the predicate columns on the block layout.
  for (auto& [col, pf] : out_pending) {
    EON_ASSIGN_OR_RETURN(FileRef data, pf.Wait(&st->fetch_wait_micros));
    st->files_fetched++;
    st->bytes_fetched += data->size();
    EON_ASSIGN_OR_RETURN(
        ColumnFileReader reader,
        ColumnFileReader::Open(std::move(data), schema.column(col).type));
    if (reader.num_blocks() != num_blocks ||
        reader.row_count() != first.row_count()) {
      return Status::Corruption("column files disagree on block layout");
    }
    readers.emplace(col, std::move(reader));
  }

  // Phase 2, in block order (byte-identical to the fused single-pass
  // loop): selectively decode each distinct output column. All share the
  // block's selection vector, so the k-th entry of every dense vector
  // belongs to the k-th surviving row.
  for (Survivor& sv : survivors) {
    const BlockMeta& bm = first.block(sv.block);
    std::map<size_t, std::vector<Value>> dense;
    for (size_t col : out_distinct) {
      std::vector<Value> vals;
      vals.reserve(sv.selected);
      auto p1 = sv.phase1.find(col);
      if (p1 != sv.phase1.end()) {
        const ColumnBatch& full = p1->second;
        for (uint64_t i = 0; i < bm.row_count; ++i) {
          if (sv.sel[i]) vals.push_back(full.GetValue(i));
        }
      } else {
        EON_RETURN_IF_ERROR(readers.at(col).DecodeSelected(
            sv.block, sv.sel.data(), &vals, &st->values_decoded,
            &st->values_unpacked));
      }
      if (vals.size() != sv.selected) {
        return Status::Corruption("selective decode count mismatch");
      }
      dense.emplace(col, std::move(vals));
    }
    // Output columns in output order, resolved once per block.
    std::vector<const std::vector<Value>*> out_cols;
    out_cols.reserve(options.output_columns.size());
    for (size_t col : options.output_columns) {
      out_cols.push_back(&dense.at(col));
    }
    for (uint64_t k = 0; k < sv.selected; ++k) {
      Row out_row;
      out_row.reserve(out_cols.size());
      for (const std::vector<Value>* values : out_cols) {
        out_row.push_back((*values)[k]);
      }
      out.push_back(std::move(out_row));
      st->rows_output++;
    }
  }
  return out;
}

}  // namespace

Result<std::vector<Row>> ScanRosContainer(const Schema& schema,
                                          const std::string& base_key,
                                          FileFetcher* fetcher,
                                          const RosScanOptions& options,
                                          RosScanStats* stats) {
  RosScanStats local_stats;
  RosScanStats* st = stats ? stats : &local_stats;

  // Predicate input columns: taken from the caller's precomputed split
  // when provided, otherwise collected from the predicate tree.
  std::set<size_t> pred_cols;
  if (options.predicate) {
    if (!options.predicate_columns.empty()) {
      pred_cols.insert(options.predicate_columns.begin(),
                       options.predicate_columns.end());
    } else {
      options.predicate->CollectColumns(&pred_cols);
    }
  }

  // Columns we must fetch: outputs plus predicate inputs.
  std::set<size_t> needed(options.output_columns.begin(),
                          options.output_columns.end());
  needed.insert(pred_cols.begin(), pred_cols.end());
  for (size_t col : needed) {
    if (col >= schema.num_columns()) {
      return Status::InvalidArgument("column index out of range");
    }
  }

  if (options.late_mat && options.block_eval && options.predicate != nullptr &&
      !pred_cols.empty()) {
    return ScanLateMaterialized(schema, base_key, fetcher, options, pred_cols,
                                st);
  }

  // Fetch (one async batch) and open each needed column file. The refs
  // pin cache-backed files resident (and share their bytes) for the
  // readers' lifetime.
  std::map<size_t, ColumnFileReader> readers;
  EON_RETURN_IF_ERROR(
      FetchColumnsAsync(schema, base_key, fetcher, needed, &readers, st));

  std::vector<Row> out;
  if (needed.empty()) return out;  // Degenerate: no columns requested.

  const ColumnFileReader& first = readers.begin()->second;
  const size_t num_blocks = first.num_blocks();
  // Blocks are aligned across columns by construction; verify.
  for (const auto& [col, r] : readers) {
    if (r.num_blocks() != num_blocks || r.row_count() != first.row_count()) {
      return Status::Corruption("column files disagree on block layout");
    }
  }

  for (size_t b = 0; b < num_blocks; ++b) {
    const BlockMeta& bm = first.block(b);
    st->blocks_total++;

    // Row-range restriction (container split).
    const uint64_t block_begin = bm.first_row;
    const uint64_t block_end = bm.first_row + bm.row_count;
    if (block_end <= options.row_begin || block_begin >= options.row_end) {
      st->blocks_pruned++;
      continue;
    }

    // Min/max pruning using every fetched column's stats for this block.
    if (options.predicate) {
      std::vector<ValueRange> ranges(schema.num_columns());
      for (const auto& [col, r] : readers) ranges[col] = r.block(b).range;
      if (!options.predicate->CouldMatch(ranges)) {
        st->blocks_pruned++;
        continue;
      }
    }

    // Decode the block for each needed column, straight into columnar
    // batch layout (typed arrays + validity bitmap).
    std::map<size_t, ColumnBatch> cols;
    for (const auto& [col, r] : readers) {
      ColumnBatch batch;
      EON_RETURN_IF_ERROR(
          r.DecodeBlockBatch(b, &batch, &st->values_unpacked));
      st->values_decoded += batch.size();
      cols.emplace(col, std::move(batch));
    }

    // Block-at-a-time predicate: one selection vector for the whole
    // block via the vectorized kernels, then only survivors are
    // materialized below.
    SelectionVector sel;
    const bool use_sel = options.predicate != nullptr && options.block_eval;
    if (use_sel) {
      std::vector<const ColumnBatch*> col_ptrs(schema.num_columns(), nullptr);
      for (const auto& [col, batch] : cols) col_ptrs[col] = &batch;
      options.predicate->EvalBlockBatch(col_ptrs, bm.row_count, &sel,
                                        &st->kernel_calls);
    }

    // Output columns in output order, resolved once per block.
    std::vector<const ColumnBatch*> out_cols;
    out_cols.reserve(options.output_columns.size());
    for (size_t col : options.output_columns) {
      out_cols.push_back(&cols.at(col));
    }

    Row probe(schema.num_columns());  // Row-at-a-time reference path only.
    for (uint64_t i = 0; i < bm.row_count; ++i) {
      const uint64_t pos = block_begin + i;
      if (pos < options.row_begin || pos >= options.row_end) continue;
      st->rows_visited++;
      if (options.deletes && options.deletes->IsDeleted(pos)) continue;
      if (use_sel) {
        if (!sel[i]) continue;
      } else if (options.predicate) {
        for (const auto& [col, batch] : cols) probe[col] = batch.GetValue(i);
        if (!options.predicate->Eval(probe)) continue;
      }
      Row out_row;
      out_row.reserve(out_cols.size());
      for (const ColumnBatch* batch : out_cols) {
        out_row.push_back(batch->GetValue(i));
      }
      out.push_back(std::move(out_row));
      st->rows_output++;
    }
  }
  return out;
}

Result<std::vector<uint64_t>> FindMatchingPositions(
    const Schema& schema, const std::string& base_key, FileFetcher* fetcher,
    const PredicatePtr& predicate, const DeleteVector* deletes) {
  std::set<size_t> needed;
  if (predicate) predicate->CollectColumns(&needed);
  if (needed.empty()) {
    // Match-all: positions derive from any column's footer; fetch column 0.
    needed.insert(0);
  }

  for (size_t col : needed) {
    if (col >= schema.num_columns()) {
      return Status::InvalidArgument("column index out of range");
    }
  }
  std::map<size_t, ColumnFileReader> readers;
  EON_RETURN_IF_ERROR(FetchColumnsAsync(schema, base_key, fetcher, needed,
                                        &readers, /*st=*/nullptr));

  std::vector<uint64_t> positions;
  const ColumnFileReader& first = readers.begin()->second;
  // Same phase-1 machinery as the late-materialization scan: the predicate
  // evaluates on the encoded representation where possible, so DELETEs
  // never decode more than they must.
  BlockPredicateSource src(readers, /*st=*/nullptr);
  SelectionVector sel;
  for (size_t b = 0; b < first.num_blocks(); ++b) {
    const BlockMeta& bm = first.block(b);
    if (predicate) {
      std::vector<ValueRange> ranges(schema.num_columns());
      for (const auto& [col, r] : readers) ranges[col] = r.block(b).range;
      if (!predicate->CouldMatch(ranges)) continue;
      src.SetBlock(b, bm.row_count);
      predicate->EvalBlockEncoded(&src, bm.row_count, &sel);
      EON_RETURN_IF_ERROR(src.status());
    } else {
      sel.assign(bm.row_count, 1);
    }
    for (uint64_t i = 0; i < bm.row_count; ++i) {
      const uint64_t pos = bm.first_row + i;
      if (deletes && deletes->IsDeleted(pos)) continue;
      if (sel[i]) positions.push_back(pos);
    }
  }
  return positions;
}

}  // namespace eon
