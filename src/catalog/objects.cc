#include "catalog/objects.h"

#include "columnar/value_codec.h"
#include "common/codec.h"
#include "common/hash.h"

namespace eon {

const char* SubscriptionStateName(SubscriptionState s) {
  switch (s) {
    case SubscriptionState::kPending: return "PENDING";
    case SubscriptionState::kPassive: return "PASSIVE";
    case SubscriptionState::kActive: return "ACTIVE";
    case SubscriptionState::kRemoving: return "REMOVING";
  }
  return "?";
}

Schema ProjectionDef::DeriveSchema(const Schema& table_schema) const {
  std::vector<ColumnDef> cols;
  cols.reserve(columns.size());
  for (size_t table_col : columns) cols.push_back(table_schema.column(table_col));
  return Schema(std::move(cols));
}

uint32_t ProjectionDef::SegHashRow(const Row& row) const {
  uint32_t h = 0;
  bool first = true;
  for (size_t col : segmentation_columns) {
    uint32_t ch = row[col].SegHash();
    h = first ? ch : SegmentationHashCombine(h, ch);
    first = false;
  }
  return h;
}

namespace {

void SerializeSchema(const Schema& s, std::string* out) {
  PutVarint64(out, s.num_columns());
  for (const ColumnDef& c : s.columns()) {
    PutLengthPrefixed(out, c.name);
    out->push_back(static_cast<char>(c.type));
  }
}

Result<Schema> DeserializeSchema(Slice* in) {
  uint64_t n;
  EON_RETURN_IF_ERROR(GetVarint64(in, &n));
  std::vector<ColumnDef> cols;
  cols.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    Slice name;
    EON_RETURN_IF_ERROR(GetLengthPrefixed(in, &name));
    if (in->empty()) return Status::Corruption("schema underflow");
    DataType type = static_cast<DataType>((*in)[0]);
    in->remove_prefix(1);
    cols.push_back(ColumnDef{name.ToString(), type});
  }
  return Schema(std::move(cols));
}

void SerializeIndexVec(const std::vector<size_t>& v, std::string* out) {
  PutVarint64(out, v.size());
  for (size_t x : v) PutVarint64(out, x);
}

Status DeserializeIndexVec(Slice* in, std::vector<size_t>* v) {
  uint64_t n;
  EON_RETURN_IF_ERROR(GetVarint64(in, &n));
  v->clear();
  v->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t x;
    EON_RETURN_IF_ERROR(GetVarint64(in, &x));
    v->push_back(static_cast<size_t>(x));
  }
  return Status::OK();
}

void SerializeRange(const ValueRange& r, std::string* out) {
  out->push_back(r.valid ? 1 : 0);
  out->push_back(r.has_null ? 1 : 0);
  if (r.valid) {
    out->push_back(static_cast<char>(r.min.type()));
    PutValue(out, r.min);
    PutValue(out, r.max);
  }
}

Status DeserializeRange(Slice* in, ValueRange* r) {
  if (in->size() < 2) return Status::Corruption("range underflow");
  r->valid = (*in)[0] != 0;
  r->has_null = (*in)[1] != 0;
  in->remove_prefix(2);
  if (r->valid) {
    if (in->empty()) return Status::Corruption("range type underflow");
    DataType type = static_cast<DataType>((*in)[0]);
    in->remove_prefix(1);
    EON_RETURN_IF_ERROR(GetValue(in, type, &r->min));
    EON_RETURN_IF_ERROR(GetValue(in, type, &r->max));
  }
  return Status::OK();
}

}  // namespace

void SerializeTable(const TableDef& t, std::string* out) {
  PutVarint64(out, t.oid);
  PutLengthPrefixed(out, t.name);
  SerializeSchema(t.schema, out);
  out->push_back(t.partition_column.has_value() ? 1 : 0);
  if (t.partition_column) PutVarint64(out, *t.partition_column);
  PutVarint64(out, t.lap_base);
  SerializeIndexVec(t.lap_group_columns, out);
  PutVarint64(out, t.lap_aggs.size());
  for (const LiveAggSpec& a : t.lap_aggs) {
    out->push_back(static_cast<char>(a.fn));
    PutVarint64(out, a.source_column);
  }
  PutVarint64(out, t.flattened.size());
  for (const FlattenedColDef& f : t.flattened) {
    PutVarint64(out, f.target_column);
    PutVarint64(out, f.fact_key_column);
    PutVarint64(out, f.dim_table);
    PutVarint64(out, f.dim_key_column);
    PutVarint64(out, f.dim_value_column);
  }
}

Result<TableDef> DeserializeTable(Slice* in) {
  TableDef t;
  EON_RETURN_IF_ERROR(GetVarint64(in, &t.oid));
  Slice name;
  EON_RETURN_IF_ERROR(GetLengthPrefixed(in, &name));
  t.name = name.ToString();
  EON_ASSIGN_OR_RETURN(t.schema, DeserializeSchema(in));
  if (in->empty()) return Status::Corruption("table underflow");
  bool has_partition = (*in)[0] != 0;
  in->remove_prefix(1);
  if (has_partition) {
    uint64_t col;
    EON_RETURN_IF_ERROR(GetVarint64(in, &col));
    t.partition_column = static_cast<size_t>(col);
  }
  EON_RETURN_IF_ERROR(GetVarint64(in, &t.lap_base));
  EON_RETURN_IF_ERROR(DeserializeIndexVec(in, &t.lap_group_columns));
  uint64_t naggs;
  EON_RETURN_IF_ERROR(GetVarint64(in, &naggs));
  t.lap_aggs.reserve(naggs);
  for (uint64_t i = 0; i < naggs; ++i) {
    if (in->empty()) return Status::Corruption("lap agg underflow");
    LiveAggSpec a;
    a.fn = static_cast<AggFn>((*in)[0]);
    in->remove_prefix(1);
    uint64_t col;
    EON_RETURN_IF_ERROR(GetVarint64(in, &col));
    a.source_column = static_cast<size_t>(col);
    t.lap_aggs.push_back(a);
  }
  uint64_t nflat;
  EON_RETURN_IF_ERROR(GetVarint64(in, &nflat));
  t.flattened.reserve(nflat);
  for (uint64_t i = 0; i < nflat; ++i) {
    FlattenedColDef f;
    uint64_t v;
    EON_RETURN_IF_ERROR(GetVarint64(in, &v));
    f.target_column = static_cast<size_t>(v);
    EON_RETURN_IF_ERROR(GetVarint64(in, &v));
    f.fact_key_column = static_cast<size_t>(v);
    EON_RETURN_IF_ERROR(GetVarint64(in, &f.dim_table));
    EON_RETURN_IF_ERROR(GetVarint64(in, &v));
    f.dim_key_column = static_cast<size_t>(v);
    EON_RETURN_IF_ERROR(GetVarint64(in, &v));
    f.dim_value_column = static_cast<size_t>(v);
    t.flattened.push_back(f);
  }
  return t;
}

void SerializeProjection(const ProjectionDef& p, std::string* out) {
  PutVarint64(out, p.oid);
  PutVarint64(out, p.table_oid);
  PutLengthPrefixed(out, p.name);
  SerializeIndexVec(p.columns, out);
  SerializeIndexVec(p.sort_columns, out);
  SerializeIndexVec(p.segmentation_columns, out);
}

Result<ProjectionDef> DeserializeProjection(Slice* in) {
  ProjectionDef p;
  EON_RETURN_IF_ERROR(GetVarint64(in, &p.oid));
  EON_RETURN_IF_ERROR(GetVarint64(in, &p.table_oid));
  Slice name;
  EON_RETURN_IF_ERROR(GetLengthPrefixed(in, &name));
  p.name = name.ToString();
  EON_RETURN_IF_ERROR(DeserializeIndexVec(in, &p.columns));
  EON_RETURN_IF_ERROR(DeserializeIndexVec(in, &p.sort_columns));
  EON_RETURN_IF_ERROR(DeserializeIndexVec(in, &p.segmentation_columns));
  return p;
}

void SerializeContainer(const StorageContainerMeta& c, std::string* out) {
  PutVarint64(out, c.oid);
  PutVarint64(out, c.projection_oid);
  PutFixed32(out, c.shard);
  PutLengthPrefixed(out, c.base_key);
  PutVarint64(out, c.row_count);
  PutVarint64(out, c.total_bytes);
  PutVarint64(out, c.num_columns);
  PutVarint64(out, c.column_ranges.size());
  for (const ValueRange& r : c.column_ranges) SerializeRange(r, out);
  PutVarint32(out, c.stratum);
  PutVarint64(out, c.create_version);
}

Result<StorageContainerMeta> DeserializeContainer(Slice* in) {
  StorageContainerMeta c;
  EON_RETURN_IF_ERROR(GetVarint64(in, &c.oid));
  EON_RETURN_IF_ERROR(GetVarint64(in, &c.projection_oid));
  EON_RETURN_IF_ERROR(GetFixed32(in, &c.shard));
  Slice key;
  EON_RETURN_IF_ERROR(GetLengthPrefixed(in, &key));
  c.base_key = key.ToString();
  EON_RETURN_IF_ERROR(GetVarint64(in, &c.row_count));
  EON_RETURN_IF_ERROR(GetVarint64(in, &c.total_bytes));
  EON_RETURN_IF_ERROR(GetVarint64(in, &c.num_columns));
  uint64_t nranges;
  EON_RETURN_IF_ERROR(GetVarint64(in, &nranges));
  c.column_ranges.resize(nranges);
  for (uint64_t i = 0; i < nranges; ++i) {
    EON_RETURN_IF_ERROR(DeserializeRange(in, &c.column_ranges[i]));
  }
  EON_RETURN_IF_ERROR(GetVarint32(in, &c.stratum));
  EON_RETURN_IF_ERROR(GetVarint64(in, &c.create_version));
  return c;
}

void SerializeDeleteVectorMeta(const DeleteVectorMeta& d, std::string* out) {
  PutVarint64(out, d.oid);
  PutVarint64(out, d.container_oid);
  PutFixed32(out, d.shard);
  PutLengthPrefixed(out, d.key);
  PutVarint64(out, d.deleted_count);
}

Result<DeleteVectorMeta> DeserializeDeleteVectorMeta(Slice* in) {
  DeleteVectorMeta d;
  EON_RETURN_IF_ERROR(GetVarint64(in, &d.oid));
  EON_RETURN_IF_ERROR(GetVarint64(in, &d.container_oid));
  EON_RETURN_IF_ERROR(GetFixed32(in, &d.shard));
  Slice key;
  EON_RETURN_IF_ERROR(GetLengthPrefixed(in, &key));
  d.key = key.ToString();
  EON_RETURN_IF_ERROR(GetVarint64(in, &d.deleted_count));
  return d;
}

void SerializeSubscription(const Subscription& s, std::string* out) {
  PutVarint64(out, s.node_oid);
  PutFixed32(out, s.shard);
  out->push_back(static_cast<char>(s.state));
}

Result<Subscription> DeserializeSubscription(Slice* in) {
  Subscription s;
  EON_RETURN_IF_ERROR(GetVarint64(in, &s.node_oid));
  EON_RETURN_IF_ERROR(GetFixed32(in, &s.shard));
  if (in->empty()) return Status::Corruption("subscription underflow");
  s.state = static_cast<SubscriptionState>((*in)[0]);
  in->remove_prefix(1);
  return s;
}

void SerializeNode(const NodeDef& n, std::string* out) {
  PutVarint64(out, n.oid);
  PutLengthPrefixed(out, n.name);
  PutLengthPrefixed(out, n.subcluster);
}

Result<NodeDef> DeserializeNode(Slice* in) {
  NodeDef n;
  EON_RETURN_IF_ERROR(GetVarint64(in, &n.oid));
  Slice name, sub;
  EON_RETURN_IF_ERROR(GetLengthPrefixed(in, &name));
  EON_RETURN_IF_ERROR(GetLengthPrefixed(in, &sub));
  n.name = name.ToString();
  n.subcluster = sub.ToString();
  return n;
}

}  // namespace eon
