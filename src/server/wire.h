#ifndef EON_SERVER_WIRE_H_
#define EON_SERVER_WIRE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "common/result.h"

namespace eon {

/// The serving layer's wire format: length-prefixed frames carrying JSON
/// request/response documents over a blocking byte stream. Two transports
/// implement the stream: an in-process duplex channel (always available;
/// eonsql and the traffic driver use it) and a loopback TCP socket (POSIX
/// systems; a real client connection). Framing and message encoding are
/// transport-independent, so the server handles both identically.

/// A blocking, bidirectional byte stream. Implementations are safe for
/// one reader plus one writer concurrently (a client thread writing a
/// request while the server's connection thread blocks in Read).
class WireTransport {
 public:
  virtual ~WireTransport() = default;

  /// Write all `n` bytes or fail.
  virtual Status Write(const void* data, size_t n) = 0;

  /// Read up to `n` bytes; blocks until at least one byte or EOF.
  /// Returns 0 at EOF (peer closed).
  virtual Result<size_t> Read(void* buf, size_t n) = 0;

  /// Close both directions; pending and future reads on either end see
  /// EOF, writes fail. Idempotent and safe concurrently with Read/Write.
  virtual void Close() = 0;
};

/// Frame cap: a parse bomb or corrupt length prefix fails cleanly instead
/// of allocating without bound.
constexpr uint32_t kMaxFrameBytes = 64u << 20;

/// Write one frame: 4-byte little-endian payload length, then payload.
Status WriteFrame(WireTransport* transport, const std::string& payload);

/// Read one frame's payload. EOF before the first length byte returns
/// kNotFound ("clean close"); EOF mid-frame returns kIOError.
Result<std::string> ReadFrame(WireTransport* transport);

/// Wire form of a Status code ("NotFound", "Overloaded", ...) and its
/// inverse. Unknown names decode as kInternal so a skewed peer version
/// degrades to a visible error rather than a silent kOk.
const char* WireStatusCode(const Status& status);
Status WireStatusFromCode(const std::string& code, std::string message);

/// An in-process duplex channel: two connected transports, each reading
/// what the other writes (socketpair semantics without a kernel).
std::pair<std::unique_ptr<WireTransport>, std::unique_ptr<WireTransport>>
CreateChannelPair();

/// True when loopback TCP transports are compiled in (POSIX).
bool LoopbackAvailable();

/// Connect to a loopback listener on 127.0.0.1:`port`.
Result<std::unique_ptr<WireTransport>> ConnectLoopback(int port);

namespace wire {

/// Listening socket guts for EonServer (POSIX only). `port` 0 picks a
/// free port; the bound port is returned.
Result<int> ListenLoopbackSocket(int port, int* listen_fd);
/// Blocking accept; returns the connection transport, kNotFound once the
/// listen fd is closed (shutdown), kIOError otherwise.
Result<std::unique_ptr<WireTransport>> AcceptLoopback(int listen_fd);
void CloseListenSocket(int listen_fd);

}  // namespace wire

}  // namespace eon

#endif  // EON_SERVER_WIRE_H_
