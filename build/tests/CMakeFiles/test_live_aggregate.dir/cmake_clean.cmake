file(REMOVE_RECURSE
  "CMakeFiles/test_live_aggregate.dir/test_live_aggregate.cc.o"
  "CMakeFiles/test_live_aggregate.dir/test_live_aggregate.cc.o.d"
  "test_live_aggregate"
  "test_live_aggregate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_live_aggregate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
