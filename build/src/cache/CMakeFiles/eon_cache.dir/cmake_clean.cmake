file(REMOVE_RECURSE
  "CMakeFiles/eon_cache.dir/file_cache.cc.o"
  "CMakeFiles/eon_cache.dir/file_cache.cc.o.d"
  "libeon_cache.a"
  "libeon_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eon_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
