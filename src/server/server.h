#ifndef EON_SERVER_SERVER_H_
#define EON_SERVER_SERVER_H_

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/system_tables.h"
#include "server/admission.h"
#include "server/session_manager.h"
#include "server/wire.h"

namespace eon {

/// The serving layer's front door: owns the AdmissionController and
/// SessionManager for one cluster, speaks the framed JSON wire protocol
/// to clients, and registers itself as the row source for the
/// system_resource_pools / system_sessions tables.
///
/// Connections arrive two ways:
///  - ConnectInProcess(): an in-process duplex channel (always available;
///    eonsql and the traffic driver use it);
///  - ListenLoopback(): a real loopback TCP listener (POSIX only).
/// Each connection gets a dedicated service thread running the
/// read-dispatch-write loop; one session per connection.
///
/// Wire protocol (one JSON object per frame; every request carries "op"):
///   {"op":"hello","node":...,"pool":...}  -> {"ok":true,"session":id,...}
///   {"op":"query","sql":...}              -> result document
///   {"op":"prepare","name":...,"sql":...} -> {"ok":true}
///   {"op":"execute","name":...}           -> result document
///   {"op":"close_prepared","name":...}    -> {"ok":true}
///   {"op":"set","key":...,"value":...}    -> {"ok":true}
///   {"op":"profile"}                      -> {"ok":true,"text":...}
///   {"op":"trace","trace_id":id}          -> {"ok":true,"trace":{...}}
///   {"op":"bye"}                          -> {"ok":true}, then close
/// Result documents carry "trace_id" (0 = untraced); a retained trace is
/// fetchable via the trace op as Chrome trace-event JSON with the
/// latency-attribution rollup attached.
/// Failures answer {"ok":false,"code":"<StatusCode>","error":"<message>"}
/// and keep the connection open (the statement failed, not the session).
class EonServer : public ServingIntrospection {
 public:
  struct Options {
    /// When false, queries bypass slot reservation entirely (the A/B
    /// baseline; results are identical either way).
    bool admission = true;
    /// Slot ledger and pool configuration. num_nodes 0 = the cluster's
    /// node count; slots_per_node 0 = EON_EXEC_SLOTS, else 4.
    AdmissionOptions admission_options;
  };

  EonServer(EonCluster* cluster, Options options);
  explicit EonServer(EonCluster* cluster) : EonServer(cluster, Options()) {}
  ~EonServer() override;

  EonServer(const EonServer&) = delete;
  EonServer& operator=(const EonServer&) = delete;

  /// Open an in-process connection; returns the client end. A service
  /// thread owns the server end until the client says bye / closes.
  std::unique_ptr<WireTransport> ConnectInProcess();

  /// Start a loopback TCP listener (port 0 = pick a free port). Returns
  /// the bound port. NotSupported where sockets are unavailable.
  Result<int> ListenLoopback(int port = 0);
  /// The bound loopback port, or -1 when not listening.
  int loopback_port() const { return loopback_port_; }

  /// Stop accepting, close every live connection and join all service
  /// threads. Idempotent; the destructor calls it.
  void Shutdown();

  /// Null when Options::admission was false.
  AdmissionController* admission() { return admission_.get(); }
  SessionManager* sessions() { return sessions_.get(); }

  // ServingIntrospection:
  EonCluster* serving_cluster() override { return cluster_; }
  std::vector<Row> ResourcePoolRows() override;
  std::vector<Row> SessionRows() override;

 private:
  void Serve(std::shared_ptr<WireTransport> transport);
  void AcceptLoop(int listen_fd);
  /// Handle one request; `bye` is set when the client ended the
  /// conversation. `session_id` 0 = not yet connected.
  JsonValue Dispatch(const JsonValue& request, uint64_t* session_id,
                     bool* bye);

  EonCluster* cluster_;
  std::unique_ptr<AdmissionController> admission_;
  std::unique_ptr<SessionManager> sessions_;

  std::mutex mu_;
  bool shutdown_ = false;
  /// Transports of live connections (Shutdown closes them to unblock
  /// their service threads); threads joined on Shutdown.
  std::vector<std::shared_ptr<WireTransport>> conns_;
  std::vector<std::thread> threads_;

  int listen_fd_ = -1;
  int loopback_port_ = -1;
  std::thread accept_thread_;
};

}  // namespace eon

#endif  // EON_SERVER_SERVER_H_
