#include "obs/dc.h"

#include <cstdlib>

namespace eon {
namespace obs {

namespace {

constexpr int64_t kDefaultSlowQueryMicros = 10000;  // 10 sim-ms.
constexpr size_t kDefaultTraceRing = 4096;

int64_t ResolveSlowQueryMicros(int64_t configured) {
  if (configured >= 0) return configured;
  const char* env = std::getenv("EON_SLOW_QUERY_MICROS");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    const long long parsed = std::strtoll(env, &end, 10);
    if (end != env && parsed >= 0) return static_cast<int64_t>(parsed);
  }
  return kDefaultSlowQueryMicros;
}

size_t ResolveTraceRing(size_t configured) {
  if (configured != 0) return configured;
  const char* env = std::getenv("EON_TRACE_RING");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    const long long parsed = std::strtoll(env, &end, 10);
    if (end != env && parsed > 0) return static_cast<size_t>(parsed);
  }
  return kDefaultTraceRing;
}

thread_local const std::string* tls_dc_node = nullptr;
thread_local const std::string* tls_dc_origin = nullptr;

}  // namespace

const char* DcCacheEventKindName(DcCacheEvent::Kind kind) {
  switch (kind) {
    case DcCacheEvent::Kind::kEviction:
      return "eviction";
    case DcCacheEvent::Kind::kMissFill:
      return "miss_fill";
    case DcCacheEvent::Kind::kCoalescedWait:
      return "coalesced_wait";
  }
  return "unknown";
}

DataCollector::DataCollector(std::string node, Clock* clock,
                             DataCollectorOptions options)
    : node_(std::move(node)),
      clock_(clock),
      slow_query_micros_(ResolveSlowQueryMicros(options.slow_query_micros)),
      queries_(options.query_ring),
      cache_events_(options.cache_ring),
      store_requests_(options.store_ring),
      mergeouts_(options.mergeout_ring),
      subscriptions_(options.subscription_ring),
      wal_events_(options.wal_ring),
      trace_spans_(ResolveTraceRing(options.trace_ring)) {}

DataCollector* DataCollector::Default() {
  static DataCollector* instance = new DataCollector();
  return instance;
}

int64_t DataCollector::Stamp(int64_t at_micros) const {
  if (at_micros != 0 || clock_ == nullptr) return at_micros;
  return clock_->NowMicros();
}

void DataCollector::RecordQuery(DcQueryExecution event) {
  event.at_micros = Stamp(event.at_micros);
  if (event.node.empty()) event.node = node_;
  event.slow =
      event.sim_micros >= slow_query_micros_.load(std::memory_order_relaxed);
  if (!event.slow) event.profile = QueryProfile{};
  queries_.Push(std::move(event));
}

void DataCollector::RecordCacheEvent(DcCacheEvent event) {
  event.at_micros = Stamp(event.at_micros);
  if (event.node.empty()) event.node = node_;
  cache_events_.Push(std::move(event));
}

void DataCollector::RecordStoreRequest(DcStoreRequest event) {
  event.at_micros = Stamp(event.at_micros);
  if (event.node.empty()) event.node = DcNodeScope::Current();
  if (event.origin.empty()) {
    event.origin = DcOriginScope::Current();
    if (event.origin.empty()) event.origin = "demand";
  }
  if (event.trace_id == 0) {
    const TraceContext* trace = TraceScope::Current();
    if (trace != nullptr) event.trace_id = trace->trace_id;
  }
  store_requests_.Push(std::move(event));
}

void DataCollector::RecordMergeout(DcMergeoutEvent event) {
  event.at_micros = Stamp(event.at_micros);
  if (event.node.empty()) event.node = node_;
  mergeouts_.Push(std::move(event));
}

void DataCollector::RecordSubscription(DcSubscriptionEvent event) {
  event.at_micros = Stamp(event.at_micros);
  if (event.node.empty()) event.node = node_;
  subscriptions_.Push(std::move(event));
}

void DataCollector::RecordWalEvent(DcWalEvent event) {
  event.at_micros = Stamp(event.at_micros);
  if (event.node.empty()) event.node = node_;
  wal_events_.Push(std::move(event));
}

void DataCollector::RecordTraceSpan(SpanData span) {
  if (span.node.empty()) span.node = node_;
  trace_spans_.Push(std::move(span));
}

std::vector<DcQueryExecution> DataCollector::QueryExecutions() const {
  return queries_.Snapshot();
}
std::vector<DcCacheEvent> DataCollector::CacheEvents() const {
  return cache_events_.Snapshot();
}
std::vector<DcStoreRequest> DataCollector::StoreRequests() const {
  return store_requests_.Snapshot();
}
std::vector<DcMergeoutEvent> DataCollector::MergeoutEvents() const {
  return mergeouts_.Snapshot();
}
std::vector<DcSubscriptionEvent> DataCollector::SubscriptionEvents() const {
  return subscriptions_.Snapshot();
}
std::vector<DcWalEvent> DataCollector::WalEvents() const {
  return wal_events_.Snapshot();
}
std::vector<SpanData> DataCollector::TraceSpans() const {
  return trace_spans_.Snapshot();
}

DcRingCounters DataCollector::query_counters() const {
  return queries_.counters();
}
DcRingCounters DataCollector::cache_counters() const {
  return cache_events_.counters();
}
DcRingCounters DataCollector::store_counters() const {
  return store_requests_.counters();
}
DcRingCounters DataCollector::mergeout_counters() const {
  return mergeouts_.counters();
}
DcRingCounters DataCollector::subscription_counters() const {
  return subscriptions_.counters();
}
DcRingCounters DataCollector::wal_counters() const {
  return wal_events_.counters();
}
DcRingCounters DataCollector::trace_counters() const {
  return trace_spans_.counters();
}

int64_t DataCollector::slow_query_micros() const {
  return slow_query_micros_.load(std::memory_order_relaxed);
}
void DataCollector::set_slow_query_micros(int64_t micros) {
  slow_query_micros_.store(micros, std::memory_order_relaxed);
}

void DataCollector::Clear() {
  queries_.Clear();
  cache_events_.Clear();
  store_requests_.Clear();
  mergeouts_.Clear();
  subscriptions_.Clear();
  wal_events_.Clear();
  trace_spans_.Clear();
}

DcNodeScope::DcNodeScope(const std::string& node) : previous_(tls_dc_node) {
  tls_dc_node = &node;
}

DcNodeScope::~DcNodeScope() { tls_dc_node = previous_; }

std::string DcNodeScope::Current() {
  return tls_dc_node == nullptr ? std::string() : *tls_dc_node;
}

DcOriginScope::DcOriginScope(const std::string& origin)
    : previous_(tls_dc_origin) {
  tls_dc_origin = &origin;
}

DcOriginScope::~DcOriginScope() { tls_dc_origin = previous_; }

std::string DcOriginScope::Current() {
  return tls_dc_origin == nullptr ? std::string() : *tls_dc_origin;
}

}  // namespace obs
}  // namespace eon
