// Unit tests for the execution engine: DDL, projections, DML edge cases,
// locality flags, crunch scaling, schema evolution with OCC.

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "engine/session.h"
#include "storage/sim_object_store.h"
#include "workload/tpch.h"

namespace eon {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SimStoreOptions sopts;
    sopts.get_latency_micros = 0;
    sopts.put_latency_micros = 0;
    sopts.list_latency_micros = 0;
    store_ = std::make_unique<SimObjectStore>(sopts, &clock_);

    ClusterOptions copts;
    copts.num_shards = 2;
    copts.k_safety = 2;
    std::vector<NodeSpec> specs;
    for (int i = 1; i <= 4; ++i) {
      specs.push_back(NodeSpec{"n" + std::to_string(i), ""});
    }
    auto cluster = EonCluster::Create(store_.get(), &clock_, copts, specs);
    ASSERT_TRUE(cluster.ok());
    cluster_ = std::move(cluster).value();
  }

  void MakeSalesTable() {
    Schema schema({{"sale_id", DataType::kInt64},
                   {"customer", DataType::kString},
                   {"day", DataType::kInt64},
                   {"price", DataType::kDouble}});
    auto oid = CreateTable(
        cluster_.get(), "sales", schema, std::string("day"),
        {ProjectionSpec{"sales_super", {}, {"day"}, {"sale_id"}},
         ProjectionSpec{
             "sales_bycust", {"customer", "price"}, {"customer"}, {"customer"}}});
    ASSERT_TRUE(oid.ok()) << oid.status().ToString();
  }

  void LoadSales(int64_t n) {
    static const char* kNames[] = {"Grace", "Ada", "Barbara", "Shafi"};
    std::vector<Row> rows;
    for (int64_t i = 0; i < n; ++i) {
      rows.push_back(Row{Value::Int(i), Value::Str(kNames[i % 4]),
                         Value::Int(100 + i % 10),
                         Value::Dbl(10.0 * static_cast<double>(i % 7))});
    }
    auto v = CopyInto(cluster_.get(), "sales", rows);
    ASSERT_TRUE(v.ok()) << v.status().ToString();
  }

  SimClock clock_;
  std::unique_ptr<SimObjectStore> store_;
  std::unique_ptr<EonCluster> cluster_;
};

TEST_F(EngineTest, CreateTableValidation) {
  Schema schema({{"a", DataType::kInt64}});
  // First projection must be a superprojection.
  EXPECT_TRUE(CreateTable(cluster_.get(), "bad",
                          Schema({{"a", DataType::kInt64},
                                  {"b", DataType::kInt64}}),
                          std::nullopt,
                          {ProjectionSpec{"p", {"a"}, {}, {"a"}}})
                  .status()
                  .IsInvalidArgument());
  // Unknown columns rejected.
  EXPECT_FALSE(CreateTable(cluster_.get(), "bad2", schema, std::nullopt,
                           {ProjectionSpec{"p", {}, {"nope"}, {}}})
                   .ok());
  // Duplicate table name rejected.
  ASSERT_TRUE(CreateTable(cluster_.get(), "ok", schema, std::nullopt,
                          {ProjectionSpec{"p", {}, {"a"}, {"a"}}})
                  .ok());
  EXPECT_TRUE(CreateTable(cluster_.get(), "ok", schema, std::nullopt,
                          {ProjectionSpec{"p2", {}, {"a"}, {"a"}}})
                  .status()
                  .IsAlreadyExists());
}

TEST_F(EngineTest, CopyValidatesRows) {
  MakeSalesTable();
  std::vector<Row> bad = {{Value::Int(1)}};
  EXPECT_TRUE(
      CopyInto(cluster_.get(), "sales", bad).status().IsInvalidArgument());
  EXPECT_TRUE(CopyInto(cluster_.get(), "missing", {})
                  .status()
                  .IsNotFound());
}

TEST_F(EngineTest, ContainersHoldSingleShardAndPartition) {
  MakeSalesTable();
  LoadSales(200);
  auto snapshot = cluster_->node(1)->catalog()->snapshot();
  const TableDef* table = snapshot->FindTableByName("sales");
  for (const auto& [oid, c] : snapshot->containers) {
    const ProjectionDef* proj = snapshot->FindProjection(c.projection_oid);
    if (proj == nullptr || proj->table_oid != table->oid) continue;
    if (proj->name != "sales_super") continue;
    // Partitioned by day: each container's day-range is a single value.
    const ValueRange& day_range = c.column_ranges[2];
    ASSERT_TRUE(day_range.valid);
    EXPECT_EQ(day_range.min.Compare(day_range.max), 0)
        << "container mixes partitions";
    // Each container belongs to exactly one shard: rows hash there.
    EXPECT_LE(c.shard, snapshot->sharding.replica_shard());
  }
}

TEST_F(EngineTest, SecondProjectionServesNarrowQuery) {
  MakeSalesTable();
  LoadSales(200);
  EonSession session(cluster_.get());
  QuerySpec q;
  q.scan.table = "sales";
  q.scan.columns = {"customer", "price"};
  q.group_by = {"customer"};
  q.aggregates = {{AggFn::kSum, "price", "total"}};
  auto result = session.Execute(q);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows.size(), 4u);
  // Group key == segmentation column of sales_bycust: fully local.
  EXPECT_TRUE(result->stats.local_group_by);
}

TEST_F(EngineTest, GroupByNonSegmentedColumnMergesPartials) {
  MakeSalesTable();
  LoadSales(200);
  EonSession session(cluster_.get());
  QuerySpec q;
  q.scan.table = "sales";
  q.scan.columns = {"day", "price"};
  q.group_by = {"day"};
  q.aggregates = {{AggFn::kSum, "price", "total"},
                  {AggFn::kCount, "", "n"}};
  auto result = session.Execute(q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 10u);
  EXPECT_FALSE(result->stats.local_group_by);
  EXPECT_GT(result->stats.network_bytes, 0u);
  // Counts still correct after the partial-merge path.
  int64_t total = 0;
  for (const Row& r : result->rows) total += r[2].int_value();
  EXPECT_EQ(total, 200);
}

TEST_F(EngineTest, PartitionPruningSkipsContainers) {
  MakeSalesTable();
  LoadSales(500);
  EonSession session(cluster_.get());
  QuerySpec q;
  q.scan.table = "sales";
  q.scan.columns = {"price"};
  q.scan.predicate = Predicate::Cmp(2, CmpOp::kEq, Value::Int(105));
  q.aggregates = {{AggFn::kCount, "", "n"}};
  auto result = session.Execute(q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows[0][0].int_value(), 50);
  // 10 day-partitions per shard: 9/10 of containers pruned via min/max.
  EXPECT_GT(result->stats.containers_pruned, 0u);
  EXPECT_GE(result->stats.containers_pruned * 10,
            result->stats.containers_total * 8);
}

TEST_F(EngineTest, OrderByAndLimit) {
  MakeSalesTable();
  LoadSales(100);
  EonSession session(cluster_.get());
  QuerySpec q;
  q.scan.table = "sales";
  q.scan.columns = {"sale_id", "price"};
  q.order_by = "sale_id";
  q.order_desc = true;
  q.limit = 5;
  auto result = session.Execute(q);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 5u);
  EXPECT_EQ(result->rows[0][0].int_value(), 99);
  EXPECT_EQ(result->rows[4][0].int_value(), 95);
}

TEST_F(EngineTest, CountDistinct) {
  MakeSalesTable();
  LoadSales(100);
  EonSession session(cluster_.get());
  QuerySpec q;
  q.scan.table = "sales";
  q.scan.columns = {"customer"};
  q.aggregates = {{AggFn::kCountDistinct, "customer", "n"}};
  auto result = session.Execute(q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows[0][0].int_value(), 4);
}

TEST_F(EngineTest, MinMaxAvgAggregates) {
  MakeSalesTable();
  LoadSales(70);  // price = 10 * (i % 7) → min 0, max 60.
  EonSession session(cluster_.get());
  QuerySpec q;
  q.scan.table = "sales";
  q.scan.columns = {"price"};
  q.aggregates = {{AggFn::kMin, "price", "lo"},
                  {AggFn::kMax, "price", "hi"},
                  {AggFn::kAvg, "price", "mean"}};
  auto result = session.Execute(q);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->rows[0][0].dbl_value(), 0.0);
  EXPECT_DOUBLE_EQ(result->rows[0][1].dbl_value(), 60.0);
  EXPECT_DOUBLE_EQ(result->rows[0][2].dbl_value(), 30.0);
}

TEST_F(EngineTest, CrunchModesProduceIdenticalResults) {
  // 4 nodes, 2 shards: crunch scaling puts the idle nodes to work.
  MakeSalesTable();
  LoadSales(400);
  EonSession session(cluster_.get());
  QuerySpec q;
  q.scan.table = "sales";
  q.scan.columns = {"customer", "price"};
  q.group_by = {"customer"};
  q.aggregates = {{AggFn::kSum, "price", "total"},
                  {AggFn::kCount, "", "n"}};
  q.order_by = "customer";

  auto baseline = session.Execute(q);
  ASSERT_TRUE(baseline.ok());

  for (CrunchMode mode : {CrunchMode::kHashFilter,
                          CrunchMode::kContainerSplit}) {
    session.set_crunch_mode(mode);
    auto result = session.Execute(q);
    ASSERT_TRUE(result.ok()) << static_cast<int>(mode);
    ASSERT_EQ(result->rows.size(), baseline->rows.size());
    for (size_t i = 0; i < result->rows.size(); ++i) {
      EXPECT_EQ(result->rows[i][0].str_value(),
                baseline->rows[i][0].str_value());
      EXPECT_DOUBLE_EQ(result->rows[i][1].dbl_value(),
                       baseline->rows[i][1].dbl_value());
      EXPECT_EQ(result->rows[i][2].int_value(),
                baseline->rows[i][2].int_value());
    }
  }
}

TEST_F(EngineTest, CrunchHashFilterPreservesGroupLocality) {
  MakeSalesTable();
  LoadSales(400);
  EonSession session(cluster_.get());
  QuerySpec q;
  q.scan.table = "sales";
  q.scan.columns = {"customer", "price"};
  q.group_by = {"customer"};
  q.aggregates = {{AggFn::kCount, "", "n"}};

  session.set_crunch_mode(CrunchMode::kHashFilter);
  auto hf = session.Execute(q);
  ASSERT_TRUE(hf.ok());
  EXPECT_TRUE(hf->stats.local_group_by);

  // Container split loses the segmentation property (Section 4.4): the
  // group-by must reshuffle.
  session.set_crunch_mode(CrunchMode::kContainerSplit);
  auto cs = session.Execute(q);
  ASSERT_TRUE(cs.ok());
  EXPECT_FALSE(cs->stats.local_group_by);
}

TEST_F(EngineTest, AddColumnOccRetry) {
  MakeSalesTable();
  // Two "concurrent" DDLs: the second prepared against a stale snapshot.
  // Our AddColumn re-reads internally, so simulate the OCC abort at the
  // catalog level, then verify AddColumn succeeds on retry semantics.
  ASSERT_TRUE(
      AddColumn(cluster_.get(), "sales", {"region", DataType::kString}).ok());
  ASSERT_TRUE(
      AddColumn(cluster_.get(), "sales", {"channel", DataType::kString}).ok());
  auto snapshot = cluster_->node(1)->catalog()->snapshot();
  const TableDef* table = snapshot->FindTableByName("sales");
  EXPECT_EQ(table->schema.num_columns(), 6u);
  EXPECT_TRUE(
      AddColumn(cluster_.get(), "sales", {"region", DataType::kString})
          .IsAlreadyExists());
}

TEST_F(EngineTest, ScanUnknownColumnFails) {
  MakeSalesTable();
  LoadSales(10);
  EonSession session(cluster_.get());
  QuerySpec q;
  q.scan.table = "sales";
  q.scan.columns = {"nonexistent"};
  EXPECT_FALSE(session.Execute(q).ok());
}

TEST_F(EngineTest, ReplicatedProjectionSingleWriterServesQueries) {
  Schema dim({{"k", DataType::kInt64}, {"label", DataType::kString}});
  ASSERT_TRUE(CreateTable(cluster_.get(), "dim", dim, std::nullopt,
                          {ProjectionSpec{"dim_rep", {}, {"k"}, {}}})
                  .ok());
  std::vector<Row> rows;
  for (int64_t i = 0; i < 20; ++i) {
    rows.push_back(Row{Value::Int(i), Value::Str("L" + std::to_string(i))});
  }
  ASSERT_TRUE(CopyInto(cluster_.get(), "dim", rows).ok());
  // Containers of the replicated projection live in the replica shard.
  auto snapshot = cluster_->node(1)->catalog()->snapshot();
  const TableDef* table = snapshot->FindTableByName("dim");
  auto projections = snapshot->ProjectionsOf(table->oid);
  ASSERT_EQ(projections.size(), 1u);
  for (const StorageContainerMeta* c :
       snapshot->ContainersOf(projections[0]->oid)) {
    EXPECT_EQ(c->shard, snapshot->sharding.replica_shard());
  }
  EonSession session(cluster_.get());
  QuerySpec q;
  q.scan.table = "dim";
  q.scan.columns = {"k"};
  q.aggregates = {{AggFn::kCount, "", "n"}};
  auto result = session.Execute(q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows[0][0].int_value(), 20);
}

TEST_F(EngineTest, RowBytesAccountsStrings) {
  Row r = {Value::Int(1), Value::Str("hello"), Value::Null(DataType::kDouble)};
  EXPECT_EQ(RowBytes(r), 1 + 8 + 1 + 9 + 1);
}

}  // namespace
}  // namespace eon
