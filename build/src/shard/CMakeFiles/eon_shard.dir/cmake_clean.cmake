file(REMOVE_RECURSE
  "CMakeFiles/eon_shard.dir/maxflow.cc.o"
  "CMakeFiles/eon_shard.dir/maxflow.cc.o.d"
  "CMakeFiles/eon_shard.dir/participation.cc.o"
  "CMakeFiles/eon_shard.dir/participation.cc.o.d"
  "libeon_shard.a"
  "libeon_shard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eon_shard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
