// Differential tests for the vectorized scan kernels: every dispatched
// kernel (whatever ISA the host routes to) must agree bit-for-bit with the
// scalar reference in simd::detail on random data, odd lengths, validity
// bitmaps, and every CmpOp. The same binary covers both sides via
// ForceScalarForTest, which is also what the benches use, so these tests
// pin the exact comparison the speedup numbers rely on.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "columnar/batch.h"
#include "columnar/expression.h"
#include "columnar/kernels.h"
#include "common/random.h"

namespace eon {
namespace {

// Lengths chosen to hit every tail case: empty, sub-lane, one full SSE/AVX
// lane, lane + tail, and a large odd size spanning many 64-row validity
// words.
const size_t kLengths[] = {0, 1, 3, 4, 7, 8, 15, 16, 31, 32, 63, 64, 65,
                           127, 128, 129, 1000, 4097};

const CmpOp kAllOps[] = {CmpOp::kEq, CmpOp::kNe, CmpOp::kLt,
                         CmpOp::kLe, CmpOp::kGt, CmpOp::kGe};

std::vector<int64_t> RandomInts(Random* rng, size_t n, int64_t domain) {
  std::vector<int64_t> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = domain > 0 ? static_cast<int64_t>(rng->Uniform(domain))
                      : static_cast<int64_t>(rng->Next());
  }
  return v;
}

// LSB-first validity words with ~`null_rate` rows null. Null rows keep
// whatever payload value is in v (kernels must ignore it).
std::vector<uint64_t> RandomValidity(Random* rng, size_t n, double null_rate) {
  std::vector<uint64_t> words((n + 63) / 64, ~0ULL);
  for (size_t i = 0; i < n; ++i) {
    if (rng->Bernoulli(null_rate)) words[i / 64] &= ~(1ULL << (i % 64));
  }
  return words;
}

std::vector<uint8_t> RandomSel(Random* rng, size_t n, double rate) {
  std::vector<uint8_t> sel(n);
  for (size_t i = 0; i < n; ++i) sel[i] = rng->Bernoulli(rate) ? 1 : 0;
  return sel;
}

TEST(KernelTest, ForceScalarPinsDispatcher) {
  simd::ForceScalarForTest(true);
  EXPECT_EQ(simd::ActiveIsa(), simd::Isa::kScalar);
  simd::ForceScalarForTest(false);
  // Whatever the host dispatches to, it must have a printable name.
  EXPECT_NE(simd::IsaName(simd::ActiveIsa()), nullptr);
}

TEST(KernelTest, CompareInt64MatchesScalarAllOps) {
  Random rng(17);
  for (size_t n : kLengths) {
    // Small domain so every op produces a mix of 0s and 1s.
    std::vector<int64_t> v = RandomInts(&rng, n, 16);
    std::vector<uint64_t> validity = RandomValidity(&rng, n, 0.25);
    for (CmpOp op : kAllOps) {
      for (const uint64_t* val :
           {static_cast<const uint64_t*>(nullptr),
            static_cast<const uint64_t*>(validity.data())}) {
        std::vector<uint8_t> got(n, 0xAA), want(n, 0x55);
        simd::CompareInt64(v.data(), n, op, 7, val, got.data());
        simd::detail::CompareInt64Scalar(v.data(), n, op, 7, val, want.data());
        ASSERT_EQ(got, want) << "n=" << n << " op=" << static_cast<int>(op);
        // Outputs are exactly 0/1 bytes (SelAnd/SelOr rely on this).
        for (uint8_t b : got) ASSERT_LE(b, 1);
      }
    }
  }
}

TEST(KernelTest, CompareInt64ExtremeLiterals) {
  Random rng(23);
  std::vector<int64_t> v = RandomInts(&rng, 257, 0);
  v[0] = INT64_MIN;
  v[1] = INT64_MAX;
  for (int64_t lit : {INT64_MIN, INT64_MAX, int64_t{0}, int64_t{-1}}) {
    for (CmpOp op : kAllOps) {
      std::vector<uint8_t> got(v.size()), want(v.size());
      simd::CompareInt64(v.data(), v.size(), op, lit, nullptr, got.data());
      simd::detail::CompareInt64Scalar(v.data(), v.size(), op, lit, nullptr,
                                       want.data());
      ASSERT_EQ(got, want) << "lit=" << lit << " op=" << static_cast<int>(op);
    }
  }
}

TEST(KernelTest, SelLogicMatchesScalar) {
  Random rng(31);
  for (size_t n : kLengths) {
    std::vector<uint8_t> a = RandomSel(&rng, n, 0.5);
    std::vector<uint8_t> b = RandomSel(&rng, n, 0.3);

    std::vector<uint8_t> got = a, want = a;
    simd::SelAnd(got.data(), b.data(), n);
    simd::detail::SelAndScalar(want.data(), b.data(), n);
    ASSERT_EQ(got, want) << "SelAnd n=" << n;

    got = a;
    want = a;
    simd::SelOr(got.data(), b.data(), n);
    simd::detail::SelOrScalar(want.data(), b.data(), n);
    ASSERT_EQ(got, want) << "SelOr n=" << n;

    got = a;
    want = a;
    simd::SelNot(got.data(), n);
    simd::detail::SelNotScalar(want.data(), n);
    ASSERT_EQ(got, want) << "SelNot n=" << n;
    for (uint8_t x : got) ASSERT_LE(x, 1);

    ASSERT_EQ(simd::SelCount(a.data(), n),
              simd::detail::SelCountScalar(a.data(), n));
  }
}

TEST(KernelTest, SelCompactMatchesScalarAndIsAscending) {
  Random rng(37);
  for (size_t n : kLengths) {
    for (double rate : {0.0, 0.02, 0.5, 1.0}) {
      std::vector<uint8_t> sel = RandomSel(&rng, n, rate);
      const uint64_t count = simd::SelCount(sel.data(), n);
      std::vector<uint32_t> got(count + 1, 0xDEADBEEF);
      std::vector<uint32_t> want(count + 1, 0xDEADBEEF);
      const size_t got_n = simd::SelCompact(sel.data(), n, got.data());
      const size_t want_n =
          simd::detail::SelCompactScalar(sel.data(), n, want.data());
      ASSERT_EQ(got_n, count);
      ASSERT_EQ(got_n, want_n);
      got.resize(got_n);
      want.resize(want_n);
      ASSERT_EQ(got, want) << "n=" << n << " rate=" << rate;
      ASSERT_TRUE(std::is_sorted(got.begin(), got.end()));
      for (uint32_t idx : got) ASSERT_EQ(sel[idx], 1);
    }
  }
}

TEST(KernelTest, SegHashInt64MatchesScalarAndValueSegHash) {
  Random rng(41);
  for (size_t n : kLengths) {
    std::vector<int64_t> v = RandomInts(&rng, n, 0);
    std::vector<uint64_t> validity = RandomValidity(&rng, n, 0.2);
    for (const uint64_t* val :
         {static_cast<const uint64_t*>(nullptr),
            static_cast<const uint64_t*>(validity.data())}) {
      std::vector<uint32_t> got(n, 1), want(n, 2);
      simd::SegHashInt64(v.data(), n, val, got.data());
      simd::detail::SegHashInt64Scalar(v.data(), n, val, want.data());
      ASSERT_EQ(got, want) << "n=" << n;
      // The kernel is the crunch fan-out's replacement for per-row
      // Value::SegHash — pin the exact equivalence.
      for (size_t i = 0; i < n; ++i) {
        const bool valid = val == nullptr || (val[i / 64] >> (i % 64)) & 1;
        const Value row =
            valid ? Value::Int(v[i]) : Value::Null(DataType::kInt64);
        ASSERT_EQ(got[i], row.SegHash()) << "row " << i;
      }
    }
  }
}

TEST(KernelTest, SegHashNullRowsUseNullSegHash) {
  const int64_t v[2] = {123, 456};
  const uint64_t validity[1] = {0x1};  // row 1 null
  uint32_t out[2];
  simd::SegHashInt64(v, 2, validity, out);
  EXPECT_EQ(out[1], simd::kNullSegHash);
  EXPECT_EQ(out[1], Value::Null(DataType::kInt64).SegHash());
}

void ExpectFoldEq(const simd::Int64Fold& got, const simd::Int64Fold& want,
                  const char* what, size_t n) {
  ASSERT_EQ(got.count, want.count) << what << " n=" << n;
  ASSERT_EQ(got.sum, want.sum) << what << " n=" << n;
  if (got.count > 0) {
    ASSERT_EQ(got.min, want.min) << what << " n=" << n;
    ASSERT_EQ(got.max, want.max) << what << " n=" << n;
  }
}

TEST(KernelTest, FoldInt64MatchesScalar) {
  Random rng(43);
  for (size_t n : kLengths) {
    // Full-width values exercise two's-complement wraparound of `sum`.
    std::vector<int64_t> v = RandomInts(&rng, n, 0);
    std::vector<uint64_t> validity = RandomValidity(&rng, n, 0.3);
    std::vector<uint8_t> sel = RandomSel(&rng, n, 0.4);
    const uint64_t* vals[] = {nullptr, validity.data()};
    const uint8_t* sels[] = {nullptr, sel.data()};
    for (const uint64_t* val : vals) {
      for (const uint8_t* s : sels) {
        ExpectFoldEq(simd::FoldInt64(v.data(), n, val, s),
                     simd::detail::FoldInt64Scalar(v.data(), n, val, s),
                     "FoldInt64", n);
      }
    }
  }
}

TEST(KernelTest, FoldInt64IndexedMatchesScalar) {
  Random rng(47);
  for (size_t n : kLengths) {
    std::vector<int64_t> v = RandomInts(&rng, n, 0);
    std::vector<uint64_t> validity = RandomValidity(&rng, n, 0.3);
    std::vector<uint8_t> sel = RandomSel(&rng, n, 0.25);
    std::vector<uint32_t> idx(simd::SelCount(sel.data(), n) + 1);
    idx.resize(simd::SelCompact(sel.data(), n, idx.data()));
    for (const uint64_t* val :
         {static_cast<const uint64_t*>(nullptr),
            static_cast<const uint64_t*>(validity.data())}) {
      ExpectFoldEq(
          simd::FoldInt64Indexed(v.data(), val, idx.data(), idx.size()),
          simd::detail::FoldInt64IndexedScalar(v.data(), val, idx.data(),
                                               idx.size()),
          "FoldInt64Indexed", n);
    }
  }
}

TEST(KernelTest, FoldSumWrapsModulo64) {
  // Two INT64_MAX values: the mod-2^64 sum is exact even though the signed
  // sum overflows; AggState casts back and stays correct in aggregate.
  const int64_t v[2] = {INT64_MAX, INT64_MAX};
  const simd::Int64Fold f = simd::FoldInt64(v, 2, nullptr, nullptr);
  EXPECT_EQ(f.count, 2u);
  EXPECT_EQ(f.sum, 2ULL * static_cast<uint64_t>(INT64_MAX));
  EXPECT_EQ(f.min, INT64_MAX);
  EXPECT_EQ(f.max, INT64_MAX);
}

TEST(KernelTest, FoldEmptyAndAllNull) {
  const simd::Int64Fold empty = simd::FoldInt64(nullptr, 0, nullptr, nullptr);
  EXPECT_EQ(empty.count, 0u);
  EXPECT_EQ(empty.sum, 0u);

  const int64_t v[3] = {1, 2, 3};
  const uint64_t none[1] = {0};
  const simd::Int64Fold all_null = simd::FoldInt64(v, 3, none, nullptr);
  EXPECT_EQ(all_null.count, 0u);
  EXPECT_EQ(all_null.sum, 0u);
}

// The dispatched kernels must produce identical bytes whether the host
// routes to SIMD or the scalar pin — the whole-query differential the
// benches and -DEON_SIMD=off builds rely on.
TEST(KernelTest, ForcedScalarBitIdenticalToDispatched) {
  Random rng(53);
  const size_t n = 4097;
  std::vector<int64_t> v = RandomInts(&rng, n, 100);
  std::vector<uint64_t> validity = RandomValidity(&rng, n, 0.1);

  std::vector<uint8_t> sel_simd(n), sel_scalar(n);
  std::vector<uint32_t> hash_simd(n), hash_scalar(n);
  simd::CompareInt64(v.data(), n, CmpOp::kLt, 50, validity.data(),
                     sel_simd.data());
  simd::SegHashInt64(v.data(), n, validity.data(), hash_simd.data());
  const simd::Int64Fold fold_simd =
      simd::FoldInt64(v.data(), n, validity.data(), sel_simd.data());

  simd::ForceScalarForTest(true);
  ASSERT_EQ(simd::ActiveIsa(), simd::Isa::kScalar);
  simd::CompareInt64(v.data(), n, CmpOp::kLt, 50, validity.data(),
                     sel_scalar.data());
  simd::SegHashInt64(v.data(), n, validity.data(), hash_scalar.data());
  const simd::Int64Fold fold_scalar =
      simd::FoldInt64(v.data(), n, validity.data(), sel_scalar.data());
  simd::ForceScalarForTest(false);

  EXPECT_EQ(sel_simd, sel_scalar);
  EXPECT_EQ(hash_simd, hash_scalar);
  EXPECT_EQ(fold_simd.count, fold_scalar.count);
  EXPECT_EQ(fold_simd.sum, fold_scalar.sum);
  EXPECT_EQ(fold_simd.min, fold_scalar.min);
  EXPECT_EQ(fold_simd.max, fold_scalar.max);
}

// ------------------------------------------------- ColumnBatch plumbing

TEST(BatchTest, FromValuesRoundTripsWithNulls) {
  std::vector<Value> vals = {Value::Int(5), Value::Null(DataType::kInt64),
                             Value::Int(-7)};
  ColumnBatch b = ColumnBatch::FromValues(DataType::kInt64, vals);
  ASSERT_EQ(b.size(), 3u);
  EXPECT_TRUE(b.has_nulls());
  EXPECT_FALSE(b.IsNull(0));
  EXPECT_TRUE(b.IsNull(1));
  EXPECT_EQ(b.GetValue(0).int_value(), 5);
  EXPECT_TRUE(b.GetValue(1).is_null());
  EXPECT_EQ(b.GetValue(2).int_value(), -7);
  // Null rows keep a zero placeholder in the typed array so kernels can
  // read every lane.
  EXPECT_EQ(b.ints()[1], 0);
  ASSERT_NE(b.validity_words(), nullptr);
  EXPECT_EQ(b.validity_words()[0] & 0x7, 0x5u);
}

TEST(BatchTest, AllValidBatchHasNullValidity) {
  std::vector<Value> vals = {Value::Int(1), Value::Int(2)};
  ColumnBatch b = ColumnBatch::FromValues(DataType::kInt64, vals);
  EXPECT_FALSE(b.has_nulls());
  EXPECT_EQ(b.validity_words(), nullptr);
}

TEST(BatchTest, SelectionFromMaskPicksDensityRepresentation) {
  const size_t n = 1000;
  std::vector<uint8_t> all(n, 1);
  BatchSelection s = BatchSelection::FromMask(all.data(), n);
  EXPECT_EQ(s.rep(), BatchSelection::Rep::kAll);
  EXPECT_EQ(s.count(), n);
  EXPECT_TRUE(s.Selected(0));

  std::vector<uint8_t> sparse(n, 0);
  sparse[3] = sparse[999] = 1;
  s = BatchSelection::FromMask(sparse.data(), n);
  EXPECT_EQ(s.rep(), BatchSelection::Rep::kIndices);
  EXPECT_EQ(s.count(), 2u);
  EXPECT_TRUE(s.Selected(3));
  EXPECT_FALSE(s.Selected(4));

  std::vector<uint8_t> dense(n, 1);
  dense[0] = 0;
  s = BatchSelection::FromMask(dense.data(), n);
  EXPECT_EQ(s.rep(), BatchSelection::Rep::kMask);
  EXPECT_EQ(s.count(), n - 1);
  EXPECT_FALSE(s.Selected(0));
  EXPECT_TRUE(s.Selected(1));
}

}  // namespace
}  // namespace eon
