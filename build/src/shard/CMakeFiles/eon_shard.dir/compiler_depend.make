# Empty compiler generated dependencies file for eon_shard.
# This may be replaced when dependencies are built.
