# Empty compiler generated dependencies file for ab_elasticity.
# This may be replaced when dependencies are built.
