#ifndef EON_OBS_DC_H_
#define EON_OBS_DC_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "obs/profile.h"
#include "obs/trace.h"

namespace eon {
namespace obs {

/// Data Collector: per-node, bounded, thread-safe ring buffers of
/// structured events, mirroring Vertica's Data Collector. Each component
/// records into a fixed-schema ring; the engine exposes the rings as the
/// `dc_*` system tables so the cluster is introspected through its own
/// SQL (paper Sections 5.2/5.3: cache behavior, per-request S3 spend and
/// subscription states are the operational story).
///
/// Rings drop the oldest event when full and count the drops, so a busy
/// cluster degrades to "recent history" instead of unbounded memory.

/// One completed query on its coordinator node. The full per-phase
/// QueryProfile is retained only for queries at or above the collector's
/// slow-query threshold (the "slow-query log"); fast queries keep the
/// scalar rollup columns only.
struct DcQueryExecution {
  uint64_t query_id = 0;
  std::string node;   ///< Coordinator node name.
  std::string table;  ///< Scan target (left table).
  int64_t at_micros = 0;
  int64_t sim_micros = 0;
  int64_t wall_micros = 0;
  uint64_t rows_out = 0;
  uint64_t rows_scanned = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t store_gets = 0;
  uint64_t cost_microdollars = 0;
  bool slow = false;
  /// Admission-control wait before execution began (0 when the query
  /// bypassed the serving layer) and the resource pool that admitted it.
  int64_t queued_micros = 0;
  std::string pool;
  /// Distributed-trace id (0 = untraced): joins against dc_trace_spans
  /// so a slow query links straight to its full span tree.
  uint64_t trace_id = 0;
  QueryProfile profile;  ///< Cleared unless `slow`.
};

/// File-cache lifecycle events (evictions, miss fills, coalesced waits).
struct DcCacheEvent {
  enum class Kind : uint8_t { kEviction = 0, kMissFill = 1, kCoalescedWait = 2 };
  std::string node;
  int64_t at_micros = 0;
  Kind kind = Kind::kMissFill;
  std::string key;
  uint64_t bytes = 0;
};
const char* DcCacheEventKindName(DcCacheEvent::Kind kind);

/// One object-store request with its simulated latency and microdollar
/// cost ("requests cost money", Section 5.3). `node` is the requesting
/// node when attribution is known (see DcNodeScope), else "".
struct DcStoreRequest {
  std::string store;
  std::string node;
  int64_t at_micros = 0;
  std::string op;  ///< get / put / list / delete / scan.
  std::string key;
  /// Bytes that crossed the wire (response payload for op=scan).
  uint64_t bytes = 0;
  /// op=scan only: column-file bytes the store filtered locally.
  uint64_t bytes_scanned = 0;
  int64_t latency_micros = 0;
  uint64_t cost_microdollars = 0;
  bool ok = true;
  /// "demand" (a query/operation needed the bytes now) or "prefetch" (a
  /// speculative read ahead of the scan). Defaults to "demand" when no
  /// DcOriginScope is live.
  std::string origin;
  /// Trace of the query that triggered the request (0 = untraced);
  /// stamped from the thread's TraceScope when unset.
  uint64_t trace_id = 0;
};

/// One tuple-mover mergeout job run on this node.
struct DcMergeoutEvent {
  std::string node;
  int64_t at_micros = 0;
  std::string projection;
  uint64_t shard = 0;
  uint64_t inputs = 0;
  uint64_t rows_written = 0;
  uint64_t stratum = 0;
  int64_t sim_micros = 0;
};

/// One write-ahead-log event on this node (dc_wal_events): appends are
/// too frequent to ring individually, so the recorded kinds are the
/// durability milestones — group_commit (one uploaded object covering
/// `records` appends), moveout (WOS snapshot to ROS), replay (recovery),
/// and checkpoint (log truncation after moveout).
struct DcWalEvent {
  std::string node;
  int64_t at_micros = 0;
  std::string kind;  ///< group_commit / moveout / replay / checkpoint.
  std::string table;
  uint64_t lsn = 0;       ///< Highest LSN the event covers.
  uint64_t records = 0;   ///< Records made durable / moved / replayed.
  uint64_t bytes = 0;
  int64_t wait_micros = 0;  ///< group_commit: leader's wall wait.
};

/// One subscription state transition on this node (Figure 4 lifecycle).
struct DcSubscriptionEvent {
  std::string node;
  int64_t at_micros = 0;
  uint64_t shard = 0;
  std::string from_state;
  std::string to_state;
  std::string reason;
};

/// Ring capacities and retention knobs.
struct DataCollectorOptions {
  size_t query_ring = 256;
  size_t cache_ring = 1024;
  size_t store_ring = 4096;
  size_t mergeout_ring = 256;
  size_t subscription_ring = 256;
  size_t wal_ring = 512;
  /// Retained trace spans per node (dc_trace_spans). 0 resolves the
  /// EON_TRACE_RING env var, defaulting to 4096.
  size_t trace_ring = 0;
  /// Queries whose total sim time meets this threshold keep their full
  /// QueryProfile in the ring (slow-query log). < 0 resolves the
  /// EON_SLOW_QUERY_MICROS env var, defaulting to 10000 (10 sim-ms).
  int64_t slow_query_micros = -1;
};

/// Per-ring bookkeeping: how many events were ever recorded and how many
/// fell off the ring. `dropped` is the honesty counter — a snapshot with
/// dropped > 0 is recent history, not a complete log.
struct DcRingCounters {
  uint64_t total = 0;
  uint64_t dropped = 0;
};

namespace internal {

/// Bounded MPMC ring over a deque: push drops the oldest when full.
/// The mutex is a strict leaf — Push/Snapshot never call out while
/// holding it, so recording is safe from under any component lock
/// (FileCache holds all shard locks during eviction passes).
template <typename T>
class DcRing {
 public:
  explicit DcRing(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

  void Push(T event) {
    std::lock_guard<std::mutex> lock(mu_);
    ++total_;
    if (events_.size() >= capacity_) {
      events_.pop_front();
      ++dropped_;
    }
    events_.push_back(std::move(event));
  }

  /// Oldest first.
  std::vector<T> Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return std::vector<T>(events_.begin(), events_.end());
  }

  DcRingCounters counters() const {
    std::lock_guard<std::mutex> lock(mu_);
    return DcRingCounters{total_, dropped_};
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    events_.clear();
    total_ = 0;
    dropped_ = 0;
  }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::deque<T> events_;
  uint64_t total_ = 0;
  uint64_t dropped_ = 0;
};

}  // namespace internal

class DataCollector {
 public:
  /// `node` is the owning node's name ("" for the process-wide default
  /// collector). `clock` may be null; when set, Record* stamps
  /// `at_micros` on events that arrive unstamped (at_micros == 0).
  explicit DataCollector(std::string node = "", Clock* clock = nullptr,
                         DataCollectorOptions options = {});

  DataCollector(const DataCollector&) = delete;
  DataCollector& operator=(const DataCollector&) = delete;

  /// Process-wide collector for components with no owning node (shared
  /// object stores). Never null.
  static DataCollector* Default();

  void RecordQuery(DcQueryExecution event);
  void RecordCacheEvent(DcCacheEvent event);
  void RecordStoreRequest(DcStoreRequest event);
  void RecordMergeout(DcMergeoutEvent event);
  void RecordSubscription(DcSubscriptionEvent event);
  void RecordWalEvent(DcWalEvent event);
  /// One retained span of a sampled/slow/forced trace; spans whose
  /// `node` is this collector's node land here (dc_trace_spans). Drops
  /// are counted like every other ring — the honesty counter.
  void RecordTraceSpan(SpanData span);

  // Snapshots, oldest first.
  std::vector<DcQueryExecution> QueryExecutions() const;
  std::vector<DcCacheEvent> CacheEvents() const;
  std::vector<DcStoreRequest> StoreRequests() const;
  std::vector<DcMergeoutEvent> MergeoutEvents() const;
  std::vector<DcSubscriptionEvent> SubscriptionEvents() const;
  std::vector<DcWalEvent> WalEvents() const;
  std::vector<SpanData> TraceSpans() const;

  DcRingCounters query_counters() const;
  DcRingCounters cache_counters() const;
  DcRingCounters store_counters() const;
  DcRingCounters mergeout_counters() const;
  DcRingCounters subscription_counters() const;
  DcRingCounters wal_counters() const;
  DcRingCounters trace_counters() const;

  int64_t slow_query_micros() const;
  void set_slow_query_micros(int64_t micros);

  const std::string& node() const { return node_; }
  void set_clock(Clock* clock) { clock_ = clock; }

  /// Drop all events and reset counters (tests; Default() is shared
  /// process state).
  void Clear();

 private:
  int64_t Stamp(int64_t at_micros) const;

  std::string node_;
  Clock* clock_;
  std::atomic<int64_t> slow_query_micros_;

  internal::DcRing<DcQueryExecution> queries_;
  internal::DcRing<DcCacheEvent> cache_events_;
  internal::DcRing<DcStoreRequest> store_requests_;
  internal::DcRing<DcMergeoutEvent> mergeouts_;
  internal::DcRing<DcSubscriptionEvent> subscriptions_;
  internal::DcRing<DcWalEvent> wal_events_;
  internal::DcRing<SpanData> trace_spans_;
};

/// RAII thread-local attribution: store requests recorded while a scope
/// is live carry the scope's node name. The file cache opens a scope
/// around shared-store fills so `dc_store_requests.node` answers "which
/// node spent that money".
class DcNodeScope {
 public:
  explicit DcNodeScope(const std::string& node);
  ~DcNodeScope();
  DcNodeScope(const DcNodeScope&) = delete;
  DcNodeScope& operator=(const DcNodeScope&) = delete;

  /// The innermost live scope's node name on this thread, or "".
  static std::string Current();

 private:
  const std::string* previous_;
};

/// RAII thread-local attribution of store-request *intent*: requests
/// recorded while a scope is live carry its origin string (the cache
/// opens a "prefetch" scope around speculative fills). Unscoped requests
/// default to "demand".
class DcOriginScope {
 public:
  explicit DcOriginScope(const std::string& origin);
  ~DcOriginScope();
  DcOriginScope(const DcOriginScope&) = delete;
  DcOriginScope& operator=(const DcOriginScope&) = delete;

  /// The innermost live scope's origin on this thread, or "".
  static std::string Current();

 private:
  const std::string* previous_;
};

}  // namespace obs
}  // namespace eon

#endif  // EON_OBS_DC_H_
