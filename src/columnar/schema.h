#ifndef EON_COLUMNAR_SCHEMA_H_
#define EON_COLUMNAR_SCHEMA_H_

#include <string>
#include <vector>

#include "columnar/types.h"
#include "common/result.h"

namespace eon {

/// A named, typed column in a table or projection schema.
struct ColumnDef {
  std::string name;
  DataType type = DataType::kInt64;

  bool operator==(const ColumnDef& o) const {
    return name == o.name && type == o.type;
  }
};

/// Ordered list of columns. Immutable once constructed (schema evolution
/// creates a new Schema version through the catalog).
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> columns)
      : columns_(std::move(columns)) {}

  size_t num_columns() const { return columns_.size(); }
  const ColumnDef& column(size_t i) const { return columns_[i]; }
  const std::vector<ColumnDef>& columns() const { return columns_; }

  /// Index of the named column, or InvalidArgument.
  Result<size_t> IndexOf(const std::string& name) const;

  /// True if `row` has the right arity and types (nulls always pass).
  bool RowMatches(const Row& row) const;

  bool operator==(const Schema& o) const { return columns_ == o.columns_; }

 private:
  std::vector<ColumnDef> columns_;
};

}  // namespace eon

#endif  // EON_COLUMNAR_SCHEMA_H_
