#include "server/wire.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>

#if defined(__unix__) || defined(__APPLE__)
#define EON_HAVE_SOCKETS 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace eon {

Status WriteFrame(WireTransport* transport, const std::string& payload) {
  if (payload.size() > kMaxFrameBytes) {
    return Status::InvalidArgument("frame exceeds kMaxFrameBytes");
  }
  const uint32_t n = static_cast<uint32_t>(payload.size());
  uint8_t header[4] = {static_cast<uint8_t>(n & 0xff),
                       static_cast<uint8_t>((n >> 8) & 0xff),
                       static_cast<uint8_t>((n >> 16) & 0xff),
                       static_cast<uint8_t>((n >> 24) & 0xff)};
  EON_RETURN_IF_ERROR(transport->Write(header, sizeof(header)));
  if (n > 0) EON_RETURN_IF_ERROR(transport->Write(payload.data(), n));
  return Status::OK();
}

namespace {

/// Read exactly `n` bytes. `clean_eof` reports EOF before the first byte
/// as kNotFound (an orderly close between frames).
Status ReadFull(WireTransport* transport, void* buf, size_t n,
                bool clean_eof) {
  uint8_t* out = static_cast<uint8_t*>(buf);
  size_t done = 0;
  while (done < n) {
    EON_ASSIGN_OR_RETURN(size_t got, transport->Read(out + done, n - done));
    if (got == 0) {
      if (done == 0 && clean_eof) {
        return Status::NotFound("connection closed");
      }
      return Status::IOError("connection closed mid-frame");
    }
    done += got;
  }
  return Status::OK();
}

}  // namespace

Result<std::string> ReadFrame(WireTransport* transport) {
  uint8_t header[4];
  EON_RETURN_IF_ERROR(
      ReadFull(transport, header, sizeof(header), /*clean_eof=*/true));
  const uint32_t n = static_cast<uint32_t>(header[0]) |
                     (static_cast<uint32_t>(header[1]) << 8) |
                     (static_cast<uint32_t>(header[2]) << 16) |
                     (static_cast<uint32_t>(header[3]) << 24);
  if (n > kMaxFrameBytes) {
    return Status::Corruption("frame length " + std::to_string(n) +
                              " exceeds cap");
  }
  std::string payload(n, '\0');
  if (n > 0) {
    EON_RETURN_IF_ERROR(
        ReadFull(transport, payload.data(), n, /*clean_eof=*/false));
  }
  return payload;
}

namespace {

struct CodeName {
  Status::Code code;
  const char* name;
};

constexpr CodeName kCodeNames[] = {
    {Status::Code::kNotFound, "NotFound"},
    {Status::Code::kAlreadyExists, "AlreadyExists"},
    {Status::Code::kInvalidArgument, "InvalidArgument"},
    {Status::Code::kIOError, "IOError"},
    {Status::Code::kCorruption, "Corruption"},
    {Status::Code::kNotSupported, "NotSupported"},
    {Status::Code::kAborted, "Aborted"},
    {Status::Code::kUnavailable, "Unavailable"},
    {Status::Code::kTimedOut, "TimedOut"},
    {Status::Code::kOutOfRange, "OutOfRange"},
    {Status::Code::kInternal, "Internal"},
    {Status::Code::kOverloaded, "Overloaded"},
};

}  // namespace

const char* WireStatusCode(const Status& status) {
  for (const CodeName& entry : kCodeNames) {
    if (entry.code == status.code()) return entry.name;
  }
  return "Internal";
}

Status WireStatusFromCode(const std::string& code, std::string message) {
  for (const CodeName& entry : kCodeNames) {
    if (code != entry.name) continue;
    switch (entry.code) {
      case Status::Code::kOk: break;
      case Status::Code::kNotFound: return Status::NotFound(std::move(message));
      case Status::Code::kAlreadyExists:
        return Status::AlreadyExists(std::move(message));
      case Status::Code::kInvalidArgument:
        return Status::InvalidArgument(std::move(message));
      case Status::Code::kIOError: return Status::IOError(std::move(message));
      case Status::Code::kCorruption:
        return Status::Corruption(std::move(message));
      case Status::Code::kNotSupported:
        return Status::NotSupported(std::move(message));
      case Status::Code::kAborted: return Status::Aborted(std::move(message));
      case Status::Code::kUnavailable:
        return Status::Unavailable(std::move(message));
      case Status::Code::kTimedOut: return Status::TimedOut(std::move(message));
      case Status::Code::kOutOfRange:
        return Status::OutOfRange(std::move(message));
      case Status::Code::kInternal: return Status::Internal(std::move(message));
      case Status::Code::kOverloaded:
        return Status::Overloaded(std::move(message));
    }
  }
  return Status::Internal("unknown wire status '" + code + "': " + message);
}

namespace {

/// One direction of the in-process channel: a bounded-ish byte queue.
/// Close() wakes blocked readers with EOF.
class BytePipe {
 public:
  Status Write(const void* data, size_t n) {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return Status::IOError("channel closed");
    const uint8_t* p = static_cast<const uint8_t*>(data);
    bytes_.insert(bytes_.end(), p, p + n);
    cv_.notify_all();
    return Status::OK();
  }

  Result<size_t> Read(void* buf, size_t n) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return closed_ || !bytes_.empty(); });
    if (bytes_.empty()) return static_cast<size_t>(0);  // EOF.
    const size_t take = std::min(n, bytes_.size());
    uint8_t* out = static_cast<uint8_t*>(buf);
    for (size_t i = 0; i < take; ++i) {
      out[i] = bytes_.front();
      bytes_.pop_front();
    }
    return take;
  }

  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<uint8_t> bytes_;
  bool closed_ = false;
};

/// One endpoint of the duplex channel: reads from one pipe, writes the
/// other. Both endpoints share the pipes; Close closes both directions.
class ChannelTransport : public WireTransport {
 public:
  ChannelTransport(std::shared_ptr<BytePipe> read,
                   std::shared_ptr<BytePipe> write)
      : read_(std::move(read)), write_(std::move(write)) {}
  ~ChannelTransport() override { Close(); }

  Status Write(const void* data, size_t n) override {
    return write_->Write(data, n);
  }
  Result<size_t> Read(void* buf, size_t n) override {
    return read_->Read(buf, n);
  }
  void Close() override {
    read_->Close();
    write_->Close();
  }

 private:
  std::shared_ptr<BytePipe> read_;
  std::shared_ptr<BytePipe> write_;
};

}  // namespace

std::pair<std::unique_ptr<WireTransport>, std::unique_ptr<WireTransport>>
CreateChannelPair() {
  auto a_to_b = std::make_shared<BytePipe>();
  auto b_to_a = std::make_shared<BytePipe>();
  return {std::make_unique<ChannelTransport>(b_to_a, a_to_b),
          std::make_unique<ChannelTransport>(a_to_b, b_to_a)};
}

#if EON_HAVE_SOCKETS

namespace {

class SocketTransport : public WireTransport {
 public:
  explicit SocketTransport(int fd) : fd_(fd) {}
  ~SocketTransport() override { Close(); }

  Status Write(const void* data, size_t n) override {
    const uint8_t* p = static_cast<const uint8_t*>(data);
    size_t done = 0;
    while (done < n) {
      const ssize_t w = ::send(fd_, p + done, n - done, MSG_NOSIGNAL);
      if (w < 0) {
        if (errno == EINTR) continue;
        return Status::IOError("send failed");
      }
      done += static_cast<size_t>(w);
    }
    return Status::OK();
  }

  Result<size_t> Read(void* buf, size_t n) override {
    while (true) {
      const ssize_t r = ::recv(fd_, buf, n, 0);
      if (r >= 0) return static_cast<size_t>(r);
      if (errno == EINTR) continue;
      return Status::IOError("recv failed");
    }
  }

  void Close() override {
    int fd = fd_.exchange(-1);
    if (fd >= 0) {
      ::shutdown(fd, SHUT_RDWR);
      ::close(fd);
    }
  }

 private:
  std::atomic<int> fd_;
};

}  // namespace

bool LoopbackAvailable() { return true; }

Result<std::unique_ptr<WireTransport>> ConnectLoopback(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IOError("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::Unavailable("connect to 127.0.0.1:" +
                               std::to_string(port) + " failed");
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<WireTransport>(new SocketTransport(fd));
}

namespace wire {

Result<int> ListenLoopbackSocket(int port, int* listen_fd) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IOError("socket() failed");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 64) != 0) {
    ::close(fd);
    return Status::IOError("bind/listen on loopback failed");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return Status::IOError("getsockname failed");
  }
  *listen_fd = fd;
  return static_cast<int>(ntohs(addr.sin_port));
}

Result<std::unique_ptr<WireTransport>> AcceptLoopback(int listen_fd) {
  while (true) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return std::unique_ptr<WireTransport>(new SocketTransport(fd));
    }
    if (errno == EINTR) continue;
    // The listener was shut down (fd closed) — an orderly stop.
    return Status::NotFound("listener closed");
  }
}

void CloseListenSocket(int listen_fd) {
  if (listen_fd >= 0) {
    ::shutdown(listen_fd, SHUT_RDWR);
    ::close(listen_fd);
  }
}

}  // namespace wire

#else  // !EON_HAVE_SOCKETS

bool LoopbackAvailable() { return false; }

Result<std::unique_ptr<WireTransport>> ConnectLoopback(int port) {
  (void)port;
  return Status::NotSupported("loopback sockets not available");
}

namespace wire {

Result<int> ListenLoopbackSocket(int port, int* listen_fd) {
  (void)port;
  (void)listen_fd;
  return Status::NotSupported("loopback sockets not available");
}

Result<std::unique_ptr<WireTransport>> AcceptLoopback(int listen_fd) {
  (void)listen_fd;
  return Status::NotSupported("loopback sockets not available");
}

void CloseListenSocket(int listen_fd) { (void)listen_fd; }

}  // namespace wire

#endif  // EON_HAVE_SOCKETS

}  // namespace eon
