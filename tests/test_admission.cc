// Serving-layer tests: the AdmissionController's S-of-N·E slot ledger
// (conservation under concurrent submit/cancel, strict priority order,
// bounded timeouts, refuse-don't-queue shedding), the SessionManager /
// EonServer wire protocol, and the differential guarantee that admission
// control never changes query results — only when they run. Part of the
// race-labeled suite scripts/tsan.sh runs under TSan.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.h"
#include "engine/session.h"
#include "engine/sql.h"
#include "engine/system_tables.h"
#include "obs/dc.h"
#include "server/admission.h"
#include "server/client.h"
#include "server/server.h"
#include "server/wire.h"
#include "sim/traffic_driver.h"
#include "storage/sim_object_store.h"
#include "workload/tpch.h"

namespace eon {
namespace {

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Spin until `cond` holds (bounded); returns whether it did.
template <typename F>
bool WaitFor(F cond, int64_t timeout_micros = 5LL * 1000 * 1000) {
  const int64_t deadline = NowMicros() + timeout_micros;
  while (!cond()) {
    if (NowMicros() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

// --- AdmissionController: the slot ledger alone ---------------------------

TEST(AdmissionControllerTest, FastPathGrantsAndReleases) {
  AdmissionOptions options;
  options.num_nodes = 2;
  options.slots_per_node = 2;
  AdmissionController admission(options);
  EXPECT_EQ(admission.total_slots(), 4);

  AdmissionRequest request;
  request.node_slots = {1, 2, 1};  // Two slots on node 1, one on node 2.
  auto grant = admission.Admit(request);
  ASSERT_TRUE(grant.ok()) << grant.status().ToString();
  EXPECT_EQ(grant->slots(), 3);
  EXPECT_EQ(grant->queued_micros(), 0);
  EXPECT_EQ(grant->pool(), "general");
  EXPECT_EQ(admission.GetStats().slots_in_use, 3);

  grant->Release();
  EXPECT_FALSE(grant->active());
  auto stats = admission.GetStats();
  EXPECT_EQ(stats.slots_in_use, 0);
  EXPECT_EQ(stats.peak_slots_in_use, 3);
  ASSERT_EQ(stats.pools.size(), 1u);
  EXPECT_EQ(stats.pools[0].admitted, 1u);
}

TEST(AdmissionControllerTest, InfeasibleRequestsFailFast) {
  AdmissionOptions options;
  options.num_nodes = 2;
  options.slots_per_node = 2;
  ResourcePoolConfig capped;
  capped.name = "capped";
  capped.max_slots = 1;
  capped.memory_budget_bytes = 100;
  options.pools = {ResourcePoolConfig{}, capped};
  AdmissionController admission(options);

  AdmissionRequest request;
  request.node_slots = {1, 1, 1};  // Three slots on one node; E = 2.
  EXPECT_TRUE(admission.Admit(request).status().IsInvalidArgument());

  request.node_slots = {1, 1, 2, 2, 1};  // Five total; N*E = 4.
  EXPECT_TRUE(admission.Admit(request).status().IsInvalidArgument());

  request.node_slots = {};  // No slots at all.
  EXPECT_TRUE(admission.Admit(request).status().IsInvalidArgument());

  request.node_slots = {1};
  request.pool = "nope";
  EXPECT_TRUE(admission.Admit(request).status().IsInvalidArgument());

  request.pool = "capped";  // Pool slot cap below the request.
  request.node_slots = {1, 2};
  EXPECT_TRUE(admission.Admit(request).status().IsInvalidArgument());

  request.node_slots = {1};  // Memory above the pool budget.
  request.memory_bytes = 101;
  EXPECT_TRUE(admission.Admit(request).status().IsInvalidArgument());

  EXPECT_TRUE(admission.HasPool(""));
  EXPECT_TRUE(admission.HasPool("capped"));
  EXPECT_FALSE(admission.HasPool("nope"));
}

TEST(AdmissionControllerTest, QueueTimeoutReturnsTimedOutNotHang) {
  AdmissionOptions options;
  options.num_nodes = 1;
  options.slots_per_node = 1;
  AdmissionController admission(options);

  AdmissionRequest request;
  request.node_slots = {7};
  auto held = admission.Admit(request);
  ASSERT_TRUE(held.ok());

  request.timeout_micros = 50 * 1000;
  const int64_t before = NowMicros();
  auto waited = admission.Admit(request);
  const int64_t elapsed = NowMicros() - before;
  EXPECT_TRUE(waited.status().IsTimedOut()) << waited.status().ToString();
  EXPECT_GE(elapsed, 50 * 1000);
  EXPECT_LT(elapsed, 5 * 1000 * 1000);  // Returned, not hung.

  auto stats = admission.GetStats();
  EXPECT_EQ(stats.pools[0].timed_out, 1u);
  EXPECT_EQ(stats.queue_depth, 0);  // The timed-out waiter left the queue.
}

TEST(AdmissionControllerTest, ShedsPastHighWaterMarkImmediately) {
  AdmissionOptions options;
  options.num_nodes = 1;
  options.slots_per_node = 1;
  ResourcePoolConfig pool;
  pool.max_queue_depth = 1;
  options.pools = {pool};
  AdmissionController admission(options);

  AdmissionRequest request;
  request.node_slots = {7};
  auto held = admission.Admit(request);
  ASSERT_TRUE(held.ok());

  // One waiter fills the queue to its high-water mark.
  CancelToken token;
  std::thread waiter([&] {
    auto r = admission.Admit(request, &token);
    EXPECT_TRUE(r.status().IsAborted()) << r.status().ToString();
  });
  ASSERT_TRUE(WaitFor([&] { return admission.GetStats().queue_depth == 1; }));

  // The next arrival is refused NOW — no queueing, no timeout wait.
  const int64_t before = NowMicros();
  auto shed = admission.Admit(request);
  EXPECT_TRUE(shed.status().IsOverloaded()) << shed.status().ToString();
  EXPECT_LT(NowMicros() - before, 1000 * 1000);

  admission.Cancel(&token);
  waiter.join();
  auto stats = admission.GetStats();
  EXPECT_EQ(stats.pools[0].shed, 1u);
  EXPECT_EQ(stats.pools[0].cancelled, 1u);
  EXPECT_EQ(stats.queue_depth, 0);
}

TEST(AdmissionControllerTest, PriorityOverridesArrivalOrder) {
  AdmissionOptions options;
  options.num_nodes = 1;
  options.slots_per_node = 1;
  ResourcePoolConfig lo;
  lo.name = "lo";
  lo.priority = 0;
  ResourcePoolConfig hi;
  hi.name = "hi";
  hi.priority = 5;
  options.pools = {lo, hi};
  AdmissionController admission(options);

  AdmissionRequest request;
  request.node_slots = {7};
  request.pool = "lo";
  request.timeout_micros = 10LL * 1000 * 1000;
  auto held = admission.Admit(request);
  ASSERT_TRUE(held.ok());

  std::atomic<bool> lo_admitted{false};
  std::atomic<bool> hi_admitted{false};
  std::atomic<bool> hi_release{false};

  // Low priority queues FIRST, high priority second.
  std::thread lo_waiter([&] {
    auto r = admission.Admit(request);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    lo_admitted.store(true);
  });
  ASSERT_TRUE(WaitFor([&] { return admission.GetStats().queue_depth == 1; }));
  std::thread hi_waiter([&] {
    AdmissionRequest hi_request = request;
    hi_request.pool = "hi";
    auto r = admission.Admit(hi_request);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    hi_admitted.store(true);
    WaitFor([&] { return hi_release.load(); });
  });
  ASSERT_TRUE(WaitFor([&] { return admission.GetStats().queue_depth == 2; }));

  held->Release();
  ASSERT_TRUE(WaitFor([&] { return hi_admitted.load(); }));
  // The older low-priority waiter is still queued behind it.
  EXPECT_FALSE(lo_admitted.load());
  EXPECT_EQ(admission.GetStats().queue_depth, 1);

  hi_release.store(true);
  hi_waiter.join();  // Dropping hi's grant frees the slot for lo.
  lo_waiter.join();
  EXPECT_TRUE(lo_admitted.load());
}

TEST(AdmissionControllerTest, FifoWithinPriorityAndNoHeadOfLineBlocking) {
  AdmissionOptions options;
  options.num_nodes = 2;
  options.slots_per_node = 1;
  AdmissionController admission(options);

  AdmissionRequest node1;
  node1.node_slots = {1};
  node1.timeout_micros = 10LL * 1000 * 1000;
  AdmissionRequest both = node1;
  both.node_slots = {1, 2};

  auto held = admission.Admit(node1);
  ASSERT_TRUE(held.ok());

  // Waiter A needs both nodes (blocked on node 1); waiter B, behind it,
  // needs only node 2 — which is free. B must not starve behind A.
  std::atomic<bool> a_admitted{false};
  std::atomic<bool> b_admitted{false};
  std::thread a([&] {
    auto r = admission.Admit(both);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    a_admitted.store(true);
  });
  ASSERT_TRUE(WaitFor([&] { return admission.GetStats().queue_depth == 1; }));
  std::thread b([&] {
    AdmissionRequest node2 = node1;
    node2.node_slots = {2};
    auto r = admission.Admit(node2);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    b_admitted.store(true);
    // B releases immediately (grant destructor).
  });

  ASSERT_TRUE(WaitFor([&] { return b_admitted.load(); }));
  EXPECT_FALSE(a_admitted.load());  // A still needs node 1.
  b.join();
  held->Release();
  a.join();
  EXPECT_TRUE(a_admitted.load());
}

TEST(AdmissionControllerTest, PreCancelledTokenAbortsImmediately) {
  AdmissionOptions options;
  options.num_nodes = 1;
  AdmissionController admission(options);
  CancelToken token;
  admission.Cancel(&token);
  AdmissionRequest request;
  request.node_slots = {7};
  auto r = admission.Admit(request, &token);
  EXPECT_TRUE(r.status().IsAborted());
  EXPECT_EQ(admission.GetStats().pools[0].cancelled, 1u);
}

// The central invariant test, run under TSan via the race label: many
// threads submit, hold, release and cancel concurrently; the ledger never
// exceeds N*E (EON_CHECKed inside AllocateLocked on every grant), nothing
// leaks, and every single Admit call is accounted exactly once.
TEST(AdmissionControllerTest, LedgerConservationUnderConcurrentSubmitCancel) {
  constexpr int kThreads = 8;
  constexpr int kIters = 40;

  AdmissionOptions options;
  options.num_nodes = 4;
  options.slots_per_node = 2;
  ResourcePoolConfig pool;
  pool.queue_timeout_micros = 100 * 1000;
  pool.max_queue_depth = 6;
  options.pools = {pool};
  AdmissionController admission(options);

  // All tokens outlive the run so the canceller can fire at any moment.
  std::vector<std::vector<CancelToken>> tokens(kThreads);
  for (auto& row : tokens) row = std::vector<CancelToken>(kIters);

  std::atomic<uint64_t> submits{0};
  std::atomic<bool> stop_canceller{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        AdmissionRequest request;
        // 1..3 slots spread over nodes picked per (t, i).
        const int slots = 1 + (t + i) % 3;
        for (int s = 0; s < slots; ++s) {
          request.node_slots.push_back(1 + (t + i + s) % 4);
        }
        submits.fetch_add(1);
        auto grant = admission.Admit(request, &tokens[t][i]);
        if (grant.ok()) {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }  // Grant destructor releases.
      }
    });
  }
  std::thread canceller([&] {
    uint64_t n = 0;
    while (!stop_canceller.load()) {
      admission.Cancel(&tokens[n % kThreads][(n / kThreads) % kIters]);
      n += 7;
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  });
  for (std::thread& t : threads) t.join();
  stop_canceller.store(true);
  canceller.join();

  auto stats = admission.GetStats();
  EXPECT_EQ(stats.slots_in_use, 0);
  EXPECT_EQ(stats.queue_depth, 0);
  EXPECT_LE(stats.peak_slots_in_use, stats.total_slots);
  EXPECT_GT(stats.peak_slots_in_use, 0);
  // Exactly one outcome per Admit call.
  const auto& p = stats.pools[0];
  EXPECT_EQ(p.admitted + p.shed + p.timed_out + p.cancelled, submits.load());
  EXPECT_GT(p.admitted, 0u);
}

// --- Wire framing / transports --------------------------------------------

TEST(WireTest, FramesRoundTripOverChannelPair) {
  auto [a, b] = CreateChannelPair();
  ASSERT_TRUE(WriteFrame(a.get(), "hello").ok());
  ASSERT_TRUE(WriteFrame(a.get(), "").ok());  // Empty frame is legal.
  auto first = ReadFrame(b.get());
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, "hello");
  auto second = ReadFrame(b.get());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, "");

  // Close between frames reads as a CLEAN close...
  a->Close();
  EXPECT_TRUE(ReadFrame(b.get()).status().IsNotFound());
}

TEST(WireTest, EofMidFrameIsAnError) {
  auto [a, b] = CreateChannelPair();
  const uint8_t partial[] = {200, 0, 0, 0, 'x'};  // Claims 200 bytes.
  ASSERT_TRUE(a->Write(partial, sizeof(partial)).ok());
  a->Close();
  EXPECT_TRUE(ReadFrame(b.get()).status().IsIOError());
}

TEST(WireTest, OversizedFrameLengthRejected) {
  auto [a, b] = CreateChannelPair();
  const uint8_t huge[4] = {0xff, 0xff, 0xff, 0xff};
  ASSERT_TRUE(a->Write(huge, sizeof(huge)).ok());
  EXPECT_TRUE(ReadFrame(b.get()).status().IsCorruption());
}

TEST(WireTest, StatusCodesSurviveTheWire) {
  const Status statuses[] = {
      Status::Overloaded("x"), Status::TimedOut("x"), Status::Aborted("x"),
      Status::NotFound("x"),   Status::InvalidArgument("x")};
  for (const Status& s : statuses) {
    Status back = WireStatusFromCode(WireStatusCode(s), s.message());
    EXPECT_EQ(back.code(), s.code()) << s.ToString();
    EXPECT_EQ(back.message(), s.message());
  }
  EXPECT_TRUE(WireStatusFromCode("Bogus", "m").IsInternal());
}

// --- The served cluster ---------------------------------------------------

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SimStoreOptions sopts;
    store_ = std::make_unique<SimObjectStore>(sopts, &clock_);
    ClusterOptions copts;
    copts.num_shards = 3;
    copts.k_safety = 2;
    copts.node.cache.capacity_bytes = 64ULL << 20;
    auto cluster = EonCluster::Create(
        store_.get(), &clock_, copts,
        {NodeSpec{"node1", ""}, NodeSpec{"node2", ""}, NodeSpec{"node3", ""}});
    ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
    cluster_ = std::move(cluster).value();
    TpchOptions topts;
    topts.scale = 0.05;
    ASSERT_TRUE(CreateTpchTables(cluster_.get()).ok());
    ASSERT_TRUE(LoadTpch(cluster_.get(), GenerateTpch(topts), 256).ok());
  }

  Result<QueryResult> RunDirect(const std::string& sql) {
    EON_ASSIGN_OR_RETURN(
        QuerySpec spec,
        ParseSelect(*cluster_->AnyUpNode()->catalog()->snapshot(), sql));
    EonSession session(cluster_.get());
    return session.Execute(spec);
  }

  SimClock clock_;
  std::unique_ptr<SimObjectStore> store_;
  std::unique_ptr<EonCluster> cluster_;
};

void ExpectSameRows(const WireQueryResult& wire, const QueryResult& direct) {
  ASSERT_EQ(wire.schema.num_columns(), direct.schema.num_columns());
  for (size_t c = 0; c < wire.schema.num_columns(); ++c) {
    EXPECT_EQ(wire.schema.column(c).name, direct.schema.column(c).name);
    EXPECT_EQ(wire.schema.column(c).type, direct.schema.column(c).type);
  }
  ASSERT_EQ(wire.rows.size(), direct.rows.size());
  for (size_t r = 0; r < wire.rows.size(); ++r) {
    ASSERT_EQ(wire.rows[r].size(), direct.rows[r].size());
    for (size_t c = 0; c < wire.rows[r].size(); ++c) {
      EXPECT_EQ(wire.rows[r][c], direct.rows[r][c])
          << "row " << r << " col " << c;
    }
  }
}

TEST_F(ServerTest, WireProtocolEndToEnd) {
  EonServer server(cluster_.get());
  EonClient client(server.ConnectInProcess());
  auto session = client.Hello();
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  EXPECT_GT(*session, 0u);
  EXPECT_EQ(client.server_num_nodes(), 3);
  EXPECT_GT(client.server_slots_per_node(), 0);

  const std::string sql =
      "SELECT l_orderkey, SUM(l_quantity) AS q FROM lineitem "
      "GROUP BY l_orderkey ORDER BY l_orderkey LIMIT 20";
  auto wire = client.Query(sql);
  ASSERT_TRUE(wire.ok()) << wire.status().ToString();
  auto direct = RunDirect(sql);
  ASSERT_TRUE(direct.ok());
  ExpectSameRows(*wire, *direct);
  EXPECT_EQ(wire->participating_nodes, direct->stats.participating_nodes);
  EXPECT_EQ(wire->pool, "general");

  // Prepared statements: parse once, execute many, identical rows.
  ASSERT_TRUE(client.Prepare("q1", sql).ok());
  for (int i = 0; i < 3; ++i) {
    auto again = client.ExecutePrepared("q1");
    ASSERT_TRUE(again.ok()) << again.status().ToString();
    ExpectSameRows(*again, *direct);
  }
  EXPECT_TRUE(client.ClosePrepared("q1").ok());
  EXPECT_TRUE(client.ExecutePrepared("q1").status().IsNotFound());

  // Session options change execution, never results.
  ASSERT_TRUE(client.Set("scan_mode", "row_wise").ok());
  auto row_wise = client.Query(sql);
  ASSERT_TRUE(row_wise.ok());
  ExpectSameRows(*row_wise, *direct);
  EXPECT_TRUE(client.Set("scan_mode", "sideways").IsInvalidArgument());
  EXPECT_TRUE(client.Set("pool", "nope").IsNotFound());

  auto profile = client.ProfileText();
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  EXPECT_NE(profile->find("query profile"), std::string::npos);
  EXPECT_NE(profile->find("admission: pool general"), std::string::npos);

  // Errors cross the wire without killing the session.
  EXPECT_FALSE(client.Query("SELECT nope FROM lineitem").ok());
  auto still_alive = client.Query("SELECT COUNT(*) AS n FROM customer");
  EXPECT_TRUE(still_alive.ok());

  EXPECT_TRUE(client.Bye().ok());
}

TEST_F(ServerTest, ResultsBitIdenticalWithAdmissionOnAndOff) {
  EonServer::Options off;
  off.admission = false;
  EonServer with_admission(cluster_.get());
  EonServer without_admission(cluster_.get(), off);

  // Doubles exercise the %.17g round-trip; AVG produces non-trivial ones.
  // The direct session uses the same seed the managers give their first
  // session (id 1), so all three runs pick the same participation — float
  // summation order depends on which node aggregates which shard.
  const std::string sql =
      "SELECT l_partkey, SUM(l_extendedprice) AS s, AVG(l_discount) AS a "
      "FROM lineitem GROUP BY l_partkey ORDER BY l_partkey LIMIT 50";
  auto spec =
      ParseSelect(*cluster_->AnyUpNode()->catalog()->snapshot(), sql);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EonSession seeded(cluster_.get(), "", 1 * 7919);
  auto direct = seeded.Execute(*spec);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();

  for (EonServer* server : {&with_admission, &without_admission}) {
    EonClient client(server->ConnectInProcess());
    ASSERT_TRUE(client.Hello().ok());
    auto wire = client.Query(sql);
    ASSERT_TRUE(wire.ok()) << wire.status().ToString();
    ExpectSameRows(*wire, *direct);
    EXPECT_TRUE(client.Bye().ok());
  }
}

TEST_F(ServerTest, SystemTablesExposeServingState) {
  EonServer::Options options;
  ResourcePoolConfig general;
  ResourcePoolConfig reporting;
  reporting.name = "reporting";
  reporting.priority = 2;
  reporting.max_slots = 3;
  options.admission_options.pools = {general, reporting};
  options.admission_options.slots_per_node = 4;
  EonServer server(cluster_.get(), options);

  EonClient client(server.ConnectInProcess());
  ASSERT_TRUE(client.Hello("", "reporting").ok());
  ASSERT_TRUE(client.Query("SELECT COUNT(*) AS n FROM orders").ok());

  // The pool table, through SQL over the wire, from the same server.
  auto pools = client.Query(
      "SELECT pool, priority, slot_budget, admitted FROM "
      "system_resource_pools ORDER BY pool");
  ASSERT_TRUE(pools.ok()) << pools.status().ToString();
  ASSERT_EQ(pools->rows.size(), 2u);
  EXPECT_EQ(pools->rows[0][0].str_value(), "general");
  EXPECT_EQ(pools->rows[0][2].int_value(), 12);  // Uncapped -> N*E.
  EXPECT_EQ(pools->rows[1][0].str_value(), "reporting");
  EXPECT_EQ(pools->rows[1][1].int_value(), 2);
  EXPECT_EQ(pools->rows[1][2].int_value(), 3);
  EXPECT_GE(pools->rows[1][3].int_value(), 1);  // Our queries admitted.

  // The session table sees this very session mid-query.
  auto sessions = client.Query(
      "SELECT pool, scan_mode, state, queries FROM system_sessions");
  ASSERT_TRUE(sessions.ok()) << sessions.status().ToString();
  ASSERT_EQ(sessions->rows.size(), 1u);
  EXPECT_EQ(sessions->rows[0][0].str_value(), "reporting");
  EXPECT_EQ(sessions->rows[0][1].str_value(), "late_mat");
  EXPECT_EQ(sessions->rows[0][2].str_value(), "active");
  EXPECT_GE(sessions->rows[0][3].int_value(), 2);

  // Queue wait is recorded per query in the Data Collector.
  auto dc = client.Query(
      "SELECT pool, COUNT(*) AS n FROM dc_query_executions "
      "WHERE pool = 'reporting' GROUP BY pool");
  ASSERT_TRUE(dc.ok()) << dc.status().ToString();
  ASSERT_EQ(dc->rows.size(), 1u);
  EXPECT_GE(dc->rows[0][1].int_value(), 1);
  EXPECT_TRUE(client.Bye().ok());
}

TEST_F(ServerTest, OverloadAndTimeoutSurfaceAsTypedErrors) {
  EonServer::Options options;
  ResourcePoolConfig pool;
  pool.max_queue_depth = 0;  // Never queue: immediate shed when slots busy.
  ResourcePoolConfig patient;
  patient.name = "patient";
  patient.queue_timeout_micros = 30 * 1000;
  options.admission_options.pools = {pool, patient};
  options.admission_options.slots_per_node = 4;
  EonServer server(cluster_.get(), options);

  // Occupy the whole ledger from the side (3 nodes x 4 slots).
  AdmissionRequest hog;
  for (const auto& node : cluster_->nodes()) {
    for (int s = 0; s < 4; ++s) hog.node_slots.push_back(node->oid());
  }
  auto held = server.admission()->Admit(hog);
  ASSERT_TRUE(held.ok()) << held.status().ToString();

  EonClient client(server.ConnectInProcess());
  ASSERT_TRUE(client.Hello().ok());
  // Default pool: queue depth 0 -> kOverloaded, immediately, typed.
  auto shed = client.Query("SELECT COUNT(*) AS n FROM customer");
  EXPECT_TRUE(shed.status().IsOverloaded()) << shed.status().ToString();
  // Patient pool: queues, then times out -> kTimedOut, never a hang.
  ASSERT_TRUE(client.Set("pool", "patient").ok());
  auto timed_out = client.Query("SELECT COUNT(*) AS n FROM customer");
  EXPECT_TRUE(timed_out.status().IsTimedOut())
      << timed_out.status().ToString();

  held->Release();
  auto ok_now = client.Query("SELECT COUNT(*) AS n FROM customer");
  EXPECT_TRUE(ok_now.ok()) << ok_now.status().ToString();
  EXPECT_TRUE(client.Bye().ok());
}

TEST_F(ServerTest, LoopbackSocketSpeaksTheSameProtocol) {
  if (!LoopbackAvailable()) GTEST_SKIP() << "no loopback sockets here";
  EonServer server(cluster_.get());
  auto port = server.ListenLoopback(0);
  ASSERT_TRUE(port.ok()) << port.status().ToString();
  EXPECT_GT(*port, 0);

  auto transport = ConnectLoopback(*port);
  ASSERT_TRUE(transport.ok()) << transport.status().ToString();
  EonClient client(std::move(transport).value());
  ASSERT_TRUE(client.Hello("node2").ok());
  const std::string sql = "SELECT COUNT(*) AS n FROM customer";
  auto wire = client.Query(sql);
  ASSERT_TRUE(wire.ok()) << wire.status().ToString();
  auto direct = RunDirect(sql);
  ASSERT_TRUE(direct.ok());
  ExpectSameRows(*wire, *direct);
  EXPECT_TRUE(client.Bye().ok());
}

// Regression: a failed context build (cluster shutdown, no up nodes) must
// not advance the session's variation-seed cursor.
TEST_F(ServerTest, SessionSequenceOnlyAdvancesOnSuccess) {
  EonSession session(cluster_.get());
  EXPECT_EQ(session.sequence(), 0u);
  auto spec = ParseSelect(*cluster_->AnyUpNode()->catalog()->snapshot(),
                          "SELECT COUNT(*) AS n FROM customer");
  ASSERT_TRUE(spec.ok());
  ASSERT_TRUE(session.Execute(*spec).ok());
  EXPECT_EQ(session.sequence(), 1u);

  for (const auto& node : cluster_->nodes()) {
    ASSERT_TRUE(cluster_->KillNode(node->oid()).ok());
  }
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(session.Execute(*spec).ok());
  }
  EXPECT_EQ(session.sequence(), 1u);  // Unchanged by the failures.
}

// Many concurrent wire clients, one server, identical rows everywhere —
// the SessionManager/AdmissionController interplay under TSan.
TEST_F(ServerTest, ConcurrentClientsGetIdenticalRows) {
  EonServer::Options options;
  options.admission_options.slots_per_node = 2;
  EonServer server(cluster_.get(), options);

  const std::string sql =
      "SELECT l_returnflag, COUNT(*) AS n, SUM(l_quantity) AS q "
      "FROM lineitem GROUP BY l_returnflag ORDER BY l_returnflag";
  auto direct = RunDirect(sql);
  ASSERT_TRUE(direct.ok());

  constexpr int kClients = 6;
  constexpr int kQueries = 3;
  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&] {
      EonClient client(server.ConnectInProcess());
      ASSERT_TRUE(client.Hello().ok());
      ASSERT_TRUE(client.Prepare("q", sql).ok());
      for (int i = 0; i < kQueries; ++i) {
        auto wire = client.ExecutePrepared("q");
        ASSERT_TRUE(wire.ok()) << wire.status().ToString();
        ExpectSameRows(*wire, *direct);
      }
      EXPECT_TRUE(client.Bye().ok());
    });
  }
  for (std::thread& t : threads) t.join();

  auto stats = server.admission()->GetStats();
  EXPECT_EQ(stats.slots_in_use, 0);
  EXPECT_LE(stats.peak_slots_in_use, stats.total_slots);
  EXPECT_GE(stats.pools[0].admitted,
            static_cast<uint64_t>(kClients) * kQueries);
}

TEST_F(ServerTest, TrafficDriverAccountsForEveryQuery) {
  EonServer server(cluster_.get());

  TrafficOptions closed;
  closed.server = &server;
  closed.sql = "SELECT COUNT(*) AS n FROM customer";
  closed.clients = 4;
  closed.duration_micros = 200 * 1000;
  auto result = RunTraffic(closed);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->completed, 0u);
  EXPECT_EQ(result->errors, 0u);
  EXPECT_EQ(result->submitted, result->completed + result->overloaded +
                                   result->timed_out + result->errors);

  TrafficOptions open = closed;
  open.offered_qps = 100;
  auto open_result = RunTraffic(open);
  ASSERT_TRUE(open_result.ok()) << open_result.status().ToString();
  EXPECT_GT(open_result->completed, 0u);
  EXPECT_EQ(open_result->submitted,
            open_result->completed + open_result->overloaded +
                open_result->timed_out + open_result->errors);

  // Shutdown with clients gone: the ledger must be clean.
  auto stats = server.admission()->GetStats();
  EXPECT_EQ(stats.slots_in_use, 0);
  EXPECT_EQ(stats.queue_depth, 0);
}

}  // namespace
}  // namespace eon
