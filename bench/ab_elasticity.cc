// Ablation (Sections 6.4, 8): elasticity. "The node-to-segment mapping can
// be rapidly adjusted because all of the data is stored in the shared
// storage... Queries can immediately use the new nodes as no expensive
// redistribution mechanism over all records is required. Filling a cold
// cache takes work proportional to the active working set... Performance
// comparisons with Enterprise are unfair as Enterprise must redistribute
// the entire data set."
//
// Measures the cost of expanding each cluster's serving capacity:
//  - Eon, no cache fill: subscribe an idle node to every shard (metadata
//    only) — "the process takes minutes" (here: the metadata commits plus
//    zero data movement);
//  - Eon, with cache fill: same plus peer cache warming — proportional to
//    the working set;
//  - Enterprise: modeled re-segmentation of the entire dataset across the
//    new node layout.

#include "bench/bench_util.h"
#include "engine/session.h"
#include "enterprise/enterprise.h"

namespace eon {
namespace bench {
namespace {

int Run() {
  printf("# Ablation: elastic scale-up cost (Sections 6.4, 8)\n");
  printf("%-12s %22s %22s %24s\n", "scale", "eon_no_warm_bytes",
         "eon_warm_bytes", "enterprise_reseg_bytes");

  for (double scale : {0.5, 1.0, 2.0}) {
    // 4 nodes but bootstrap subscriptions only land on the first 3 shards'
    // ring; use Rebalance-driven growth: create with 3 nodes' worth of
    // subscriptions, then subscribe node 4 to everything.
    // Cache sized to the working set (the recent-data dashboard), far
    // below the full dataset — warming cost is bounded by it.
    auto fixture = MakeEonFixture(4, 3, scale, /*cache=*/192 * 1024);
    if (fixture == nullptr) return 1;
    EonSession session(fixture->cluster.get());
    for (int i = 0; i < 5; ++i) {
      (void)session.Execute(DashboardQuery(fixture->tpch_options));
    }

    // The "new" node: drop its subscriptions' cached data and measure what
    // re-subscribing moves.
    Node* newcomer = fixture->cluster->node(4);
    newcomer->cache()->Clear();
    auto resubscribe = [&](bool warm) -> Result<uint64_t> {
      const uint64_t before = newcomer->cache()->size_bytes();
      for (ShardId s :
           newcomer->SubscribedShards({SubscriptionState::kActive})) {
        EON_RETURN_IF_ERROR(
            fixture->cluster->UnsubscribeNode(newcomer->oid(), s));
      }
      for (ShardId s = 0; s < 3; ++s) {
        EON_RETURN_IF_ERROR(
            fixture->cluster->SubscribeNode(newcomer->oid(), s, warm));
      }
      return newcomer->cache()->size_bytes() - before;
    };
    auto no_warm = resubscribe(false);
    if (!no_warm.ok()) {
      fprintf(stderr, "%s\n", no_warm.status().ToString().c_str());
      return 1;
    }
    newcomer->cache()->Clear();
    auto warm = resubscribe(true);
    if (!warm.ok()) return 1;

    // Enterprise: adding a node re-segments every record (each row's hash
    // region changes when the region count changes): the whole dataset
    // moves.
    uint64_t total_bytes = 0;
    {
      auto snapshot = fixture->cluster->node(1)->catalog()->snapshot();
      for (const auto& [oid, c] : snapshot->containers) {
        total_bytes += c.total_bytes;
      }
    }

    printf("%-12.1f %22llu %22llu %24llu\n", scale,
           static_cast<unsigned long long>(*no_warm),
           static_cast<unsigned long long>(*warm),
           static_cast<unsigned long long>(total_bytes));
  }
  printf("# shape check: eon-no-warm moves 0 data bytes (metadata only); "
         "eon-warm moves the working set; enterprise re-segmentation moves "
         "the entire dataset and grows with scale\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace eon

int main() { return eon::bench::Run(); }
