// Ablation (Section 4.2): "For a database with S shards, N nodes, and E
// execution slots per node, a running query requires S of the total N·E
// slots. If S < E, then adding individual nodes will result in linear
// scale-out performance, otherwise batches of nodes will be required and
// performance improvement will look more like a step function."
//
// Sweeps node count for a small-S (linear regime) and a large-S (step
// regime) configuration at saturation.

#include "sim/throughput_sim.h"

#include <cstdio>

namespace eon {
namespace bench {
namespace {

double Saturated(int nodes, int shards, int slots) {
  ThroughputSim::Options o;
  o.num_nodes = nodes;
  o.num_shards = shards;
  o.slots_per_node = slots;
  o.k_safety = 2;
  o.clients = 96;
  o.service_micros = 100000;
  o.duration_micros = 60LL * 1000 * 1000;
  return ThroughputSim::Run(o).per_minute;
}

int Run() {
  const int kSlots = 4;
  printf("# Ablation: shard count vs execution slots (S<E linear, S>E "
         "step function)\n");
  printf("# E = %d slots per node; throughput at saturation\n", kSlots);
  printf("%-8s %20s %20s\n", "nodes", "S=3_shards(S<E)", "S=8_shards(S>E)");
  for (int nodes = 8; nodes <= 16; ++nodes) {
    printf("%-8d %20.0f %20.0f\n", nodes, Saturated(nodes, 3, kSlots),
           Saturated(nodes, 8, kSlots));
  }
  printf("# shape check: the S=3 column grows with every node added; the "
         "S=8 column moves in plateaus (a query needs 8 slots, so spare "
         "capacity accumulates until another whole query fits)\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace eon

int main() { return eon::bench::Run(); }
