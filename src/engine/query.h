#ifndef EON_ENGINE_QUERY_H_
#define EON_ENGINE_QUERY_H_

#include <optional>
#include <string>
#include <vector>

#include "columnar/agg.h"
#include "columnar/expression.h"
#include "columnar/ros.h"
#include "columnar/schema.h"
#include "obs/profile.h"

namespace eon {

/// One aggregate expression: fn(column) AS name. kCount ignores `column`.
struct AggSpec {
  AggFn fn = AggFn::kCount;
  std::string column;
  std::string as;
};

/// Scan of one table: which columns to read and an optional predicate
/// (column names refer to the table schema; the engine maps them onto the
/// chosen projection).
struct ScanSpec {
  std::string table;
  std::vector<std::string> columns;
  /// Predicate over the named columns below; built with Predicate::Cmp
  /// using *table column positions* — the engine rebinds it to projection
  /// positions.
  PredicatePtr predicate;
};

/// Inner equi-join against a second table.
struct JoinSpec {
  ScanSpec right;
  std::string left_key;   ///< Column name on the left (driving) table.
  std::string right_key;  ///< Column name on the right table.
};

/// A declarative query: scan [join] [group-by/aggregate] [order] [limit].
/// This is the shape of the paper's workloads (dashboard joins +
/// aggregations, TPC-H style scans); plans are built directly — the
/// paper's contribution sits below the SQL optimizer, which it reuses.
struct QuerySpec {
  ScanSpec scan;
  std::optional<JoinSpec> join;
  std::vector<std::string> group_by;  ///< Output column names to group on.
  std::vector<AggSpec> aggregates;
  std::optional<std::string> order_by;
  bool order_desc = false;
  int64_t limit = -1;  ///< -1 = unlimited.
};

/// Per-query execution statistics: the inputs to the benches' cost model
/// and the locality assertions in tests.
struct ExecStats {
  RosScanStats scan;
  uint64_t containers_total = 0;
  uint64_t containers_pruned = 0;  ///< Skipped via container-level min/max.
  uint64_t network_bytes = 0;      ///< Shuffled / merged across nodes.
  uint64_t rows_shuffled = 0;
  bool local_join = true;      ///< Join executed without reshuffle.
  bool local_group_by = true;  ///< Group-by executed without reshuffle.
  size_t participating_nodes = 0;
  /// Crunch scaling mode actually used (Section 4.4).
  enum class Crunch : uint8_t { kNone, kHashFilter, kContainerSplit };
  Crunch crunch = Crunch::kNone;
  /// The optimizer answered from a live aggregate projection (§2.1).
  bool used_live_aggregate = false;
  /// Near-data processing: per-morsel outcome of the pushdown planner and
  /// what the store-side scans did (tentpole of the NDP change).
  struct PushdownStats {
    uint64_t containers_pushed = 0;  ///< Morsels executed via ScanObject.
    uint64_t containers_local = 0;   ///< Morsels scanned through the cache.
    uint64_t response_bytes = 0;     ///< Bytes the store actually returned.
    /// Column-file bytes the store read next to the data (never shipped).
    uint64_t store_bytes_scanned = 0;
    /// Rows the store-side predicate dropped before the network.
    uint64_t store_rows_filtered = 0;
    /// Planner's estimate of the cold fetch bytes the push avoided.
    uint64_t bytes_saved = 0;
    /// True when group-by/aggregate partials were computed store-side.
    bool aggregates_pushed = false;
  } pushdown;
};

/// Query output: schema + rows + stats + the catalog version it read.
struct QueryResult {
  Schema schema;
  std::vector<Row> rows;
  ExecStats stats;
  /// Per-phase timing, per-node scan rows, cache/store deltas attributed
  /// to this query (obs subsystem). ExecStats remains the planner-facing
  /// locality record; the profile is the operator-facing cost record.
  obs::QueryProfile profile;
  uint64_t catalog_version = 0;
};

}  // namespace eon

#endif  // EON_ENGINE_QUERY_H_
