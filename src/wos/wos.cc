#include "wos/wos.h"

#include <algorithm>

#include "columnar/sort.h"
#include "columnar/value_codec.h"
#include "common/codec.h"

namespace eon {

namespace {

void PutTypedValue(std::string* dst, const Value& v) {
  dst->push_back(static_cast<char>(v.type()));
  PutValue(dst, v);
}

Status GetTypedValue(Slice* in, Value* out) {
  if (in->empty()) return Status::Corruption("wos value: missing type tag");
  const auto type = static_cast<DataType>((*in)[0]);
  if (type != DataType::kInt64 && type != DataType::kDouble &&
      type != DataType::kString) {
    return Status::Corruption("wos value: bad type tag");
  }
  in->remove_prefix(1);
  return GetValue(in, type, out);
}

}  // namespace

std::string EncodeWosInsert(Oid table_oid, const std::vector<Row>& rows) {
  std::string out;
  PutVarint64(&out, table_oid);
  PutVarint32(&out, static_cast<uint32_t>(rows.size()));
  PutVarint32(&out, rows.empty() ? 0
                                 : static_cast<uint32_t>(rows[0].size()));
  for (const Row& row : rows) {
    for (const Value& v : row) PutTypedValue(&out, v);
  }
  return out;
}

Result<WosInsertPayload> DecodeWosInsert(Slice payload) {
  WosInsertPayload p;
  uint64_t table_oid = 0;
  uint32_t num_rows = 0, arity = 0;
  EON_RETURN_IF_ERROR(GetVarint64(&payload, &table_oid));
  EON_RETURN_IF_ERROR(GetVarint32(&payload, &num_rows));
  EON_RETURN_IF_ERROR(GetVarint32(&payload, &arity));
  p.table_oid = table_oid;
  p.rows.reserve(num_rows);
  for (uint32_t r = 0; r < num_rows; ++r) {
    Row row;
    row.reserve(arity);
    for (uint32_t c = 0; c < arity; ++c) {
      Value v;
      EON_RETURN_IF_ERROR(GetTypedValue(&payload, &v));
      row.push_back(std::move(v));
    }
    p.rows.push_back(std::move(row));
  }
  return p;
}

std::string EncodeWosTombstone(const WosTombstonePayload& p) {
  std::string out;
  PutVarint64(&out, p.table_oid);
  PutVarint64(&out, p.version);
  PutVarint32(&out, static_cast<uint32_t>(p.refs.size()));
  for (const WosRowRef& ref : p.refs) {
    PutVarint64(&out, ref.lsn);
    PutVarint32(&out, ref.row);
  }
  return out;
}

Result<WosTombstonePayload> DecodeWosTombstone(Slice payload) {
  WosTombstonePayload p;
  uint64_t table_oid = 0;
  uint32_t count = 0;
  EON_RETURN_IF_ERROR(GetVarint64(&payload, &table_oid));
  EON_RETURN_IF_ERROR(GetVarint64(&payload, &p.version));
  EON_RETURN_IF_ERROR(GetVarint32(&payload, &count));
  p.table_oid = table_oid;
  p.refs.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    WosRowRef ref;
    EON_RETURN_IF_ERROR(GetVarint64(&payload, &ref.lsn));
    EON_RETURN_IF_ERROR(GetVarint32(&payload, &ref.row));
    p.refs.push_back(ref);
  }
  return p;
}

std::string EncodeWosFlush(const WosFlushPayload& p) {
  std::string out;
  PutVarint64(&out, p.table_oid);
  PutVarint64(&out, p.up_to_lsn);
  PutVarint64(&out, p.version);
  return out;
}

Result<WosFlushPayload> DecodeWosFlush(Slice payload) {
  WosFlushPayload p;
  uint64_t table_oid = 0;
  EON_RETURN_IF_ERROR(GetVarint64(&payload, &table_oid));
  EON_RETURN_IF_ERROR(GetVarint64(&payload, &p.up_to_lsn));
  EON_RETURN_IF_ERROR(GetVarint64(&payload, &p.version));
  p.table_oid = table_oid;
  return p;
}

void Wos::Apply(const WalRecord& record) {
  switch (record.kind) {
    case WalRecord::Kind::kInsert: {
      Result<WosInsertPayload> decoded = DecodeWosInsert(Slice(record.payload));
      if (!decoded.ok()) return;  // Corrupt payloads are dropped, not fatal.
      WosBatch batch;
      batch.lsn = record.lsn;
      batch.table_oid = decoded->table_oid;
      batch.tombstone_versions.assign(decoded->rows.size(), 0);
      for (const Row& row : decoded->rows) batch.bytes += RowBytes(row);
      batch.rows = std::make_shared<const std::vector<Row>>(
          std::move(decoded->rows));
      std::lock_guard<std::mutex> lock(data_mu_);
      tables_[batch.table_oid].batches.push_back(std::move(batch));
      break;
    }
    case WalRecord::Kind::kTombstone: {
      Result<WosTombstonePayload> decoded =
          DecodeWosTombstone(Slice(record.payload));
      if (!decoded.ok()) return;
      std::lock_guard<std::mutex> lock(data_mu_);
      auto it = tables_.find(decoded->table_oid);
      if (it == tables_.end()) return;
      std::vector<WosBatch>& batches = it->second.batches;
      for (const WosRowRef& ref : decoded->refs) {
        auto bit = std::lower_bound(
            batches.begin(), batches.end(), ref.lsn,
            [](const WosBatch& b, uint64_t lsn) { return b.lsn < lsn; });
        if (bit == batches.end() || bit->lsn != ref.lsn) continue;
        if (ref.row >= bit->tombstone_versions.size()) continue;
        if (bit->tombstone_versions[ref.row] == 0) {
          bit->tombstone_versions[ref.row] = decoded->version;
        }
      }
      break;
    }
    case WalRecord::Kind::kFlush: {
      Result<WosFlushPayload> decoded = DecodeWosFlush(Slice(record.payload));
      if (!decoded.ok()) return;
      std::lock_guard<std::mutex> lock(data_mu_);
      auto it = tables_.find(decoded->table_oid);
      if (it == tables_.end()) return;
      for (WosBatch& batch : it->second.batches) {
        if (batch.lsn > decoded->up_to_lsn) break;
        if (batch.flush_version == 0) batch.flush_version = decoded->version;
      }
      break;
    }
  }
}

std::vector<Row> Wos::CollectVisible(Oid table_oid, uint64_t version) const {
  std::lock_guard<std::mutex> gate(gate_mu_);
  return CollectVisibleLocked(table_oid, version);
}

std::vector<Row> Wos::CollectVisibleLocked(Oid table_oid,
                                           uint64_t version) const {
  std::lock_guard<std::mutex> lock(data_mu_);
  std::vector<Row> out;
  auto it = tables_.find(table_oid);
  if (it == tables_.end()) return out;
  for (const WosBatch& batch : it->second.batches) {
    if (batch.flush_version != 0 && batch.flush_version <= version) continue;
    for (size_t r = 0; r < batch.rows->size(); ++r) {
      const uint64_t ts = batch.tombstone_versions[r];
      if (ts != 0 && ts <= version) continue;
      out.push_back((*batch.rows)[r]);
    }
  }
  return out;
}

Wos::Unflushed Wos::GatherUnflushed(Oid table_oid) const {
  std::lock_guard<std::mutex> lock(data_mu_);
  Unflushed out;
  auto it = tables_.find(table_oid);
  if (it == tables_.end()) return out;
  for (const WosBatch& batch : it->second.batches) {
    if (batch.flush_version != 0) continue;
    out.up_to_lsn = std::max(out.up_to_lsn, batch.lsn);
    for (size_t r = 0; r < batch.rows->size(); ++r) {
      // Tombstoned rows are dropped here instead of being carried to ROS
      // with a delete vector: snapshots older than the tombstone keep
      // reading them from the retained WOS batch.
      if (batch.tombstone_versions[r] != 0) continue;
      out.rows.push_back((*batch.rows)[r]);
    }
  }
  return out;
}

std::vector<Oid> Wos::TablesWithUnflushed() const {
  std::lock_guard<std::mutex> lock(data_mu_);
  std::vector<Oid> out;
  for (const auto& [oid, table] : tables_) {
    for (const WosBatch& batch : table.batches) {
      if (batch.flush_version == 0) {
        out.push_back(oid);
        break;
      }
    }
  }
  return out;
}

uint64_t Wos::UnflushedRows(Oid table_oid) const {
  std::lock_guard<std::mutex> lock(data_mu_);
  auto it = tables_.find(table_oid);
  if (it == tables_.end()) return 0;
  uint64_t rows = 0;
  for (const WosBatch& batch : it->second.batches) {
    if (batch.flush_version == 0) rows += batch.rows->size();
  }
  return rows;
}

uint64_t Wos::MinUnflushedLsn() const {
  std::lock_guard<std::mutex> lock(data_mu_);
  uint64_t min_lsn = 0;
  for (const auto& [oid, table] : tables_) {
    for (const WosBatch& batch : table.batches) {
      if (batch.flush_version != 0) continue;
      if (min_lsn == 0 || batch.lsn < min_lsn) min_lsn = batch.lsn;
    }
  }
  return min_lsn;
}

std::vector<WosRowRef> Wos::FindRows(
    Oid table_oid, const std::function<bool(const Row&)>& pred,
    std::vector<Row>* rows_out) const {
  std::lock_guard<std::mutex> lock(data_mu_);
  std::vector<WosRowRef> out;
  auto it = tables_.find(table_oid);
  if (it == tables_.end()) return out;
  for (const WosBatch& batch : it->second.batches) {
    if (batch.flush_version != 0) continue;
    for (size_t r = 0; r < batch.rows->size(); ++r) {
      if (batch.tombstone_versions[r] != 0) continue;
      if (pred((*batch.rows)[r])) {
        out.push_back(WosRowRef{batch.lsn, static_cast<uint32_t>(r)});
        if (rows_out != nullptr) rows_out->push_back((*batch.rows)[r]);
      }
    }
  }
  return out;
}

std::unique_lock<std::mutex> Wos::LockGate() const {
  return std::unique_lock<std::mutex>(gate_mu_);
}

size_t Wos::ReleaseFlushed(uint64_t min_running_version) {
  std::lock_guard<std::mutex> lock(data_mu_);
  size_t dropped = 0;
  for (auto it = tables_.begin(); it != tables_.end();) {
    std::vector<WosBatch>& batches = it->second.batches;
    auto keep = std::remove_if(
        batches.begin(), batches.end(), [&](const WosBatch& b) {
          return b.flush_version != 0 && b.flush_version <= min_running_version;
        });
    dropped += static_cast<size_t>(batches.end() - keep);
    batches.erase(keep, batches.end());
    it = batches.empty() ? tables_.erase(it) : std::next(it);
  }
  return dropped;
}

void Wos::Clear() {
  std::lock_guard<std::mutex> lock(data_mu_);
  tables_.clear();
}

std::vector<WosTableStats> Wos::SnapshotStats() const {
  std::lock_guard<std::mutex> lock(data_mu_);
  std::vector<WosTableStats> out;
  for (const auto& [oid, table] : tables_) {
    WosTableStats s;
    s.table_oid = oid;
    for (const WosBatch& batch : table.batches) {
      s.batches++;
      s.rows += batch.rows->size();
      s.bytes += batch.bytes;
      if (batch.flush_version == 0) {
        s.unflushed_rows += batch.rows->size();
      } else {
        s.flushed_batches++;
      }
      for (uint64_t ts : batch.tombstone_versions) {
        if (ts != 0) s.tombstoned_rows++;
      }
      if (s.min_lsn == 0 || batch.lsn < s.min_lsn) s.min_lsn = batch.lsn;
      s.max_lsn = std::max(s.max_lsn, batch.lsn);
    }
    out.push_back(s);
  }
  return out;
}

uint64_t Wos::total_rows() const {
  std::lock_guard<std::mutex> lock(data_mu_);
  uint64_t rows = 0;
  for (const auto& [oid, table] : tables_) {
    for (const WosBatch& batch : table.batches) rows += batch.rows->size();
  }
  return rows;
}

uint64_t Wos::total_unflushed_rows() const {
  std::lock_guard<std::mutex> lock(data_mu_);
  uint64_t rows = 0;
  for (const auto& [oid, table] : tables_) {
    for (const WosBatch& batch : table.batches) {
      if (batch.flush_version == 0) rows += batch.rows->size();
    }
  }
  return rows;
}

std::map<ShardId, std::vector<Row>> GroupWosRowsForProjection(
    const ShardingConfig& sharding, const ProjectionDef& proj,
    const TableDef& table, const std::vector<Row>& table_rows) {
  // Project full-width rows onto the projection's column list.
  std::vector<Row> proj_rows;
  proj_rows.reserve(table_rows.size());
  for (const Row& row : table_rows) {
    Row pr;
    pr.reserve(proj.columns.size());
    for (size_t tc : proj.columns) pr.push_back(row[tc]);
    proj_rows.push_back(std::move(pr));
  }

  // Shard bucketing, mirroring dml.cc SplitRows.
  std::map<ShardId, std::vector<Row>> by_shard;
  if (proj.replicated()) {
    by_shard[sharding.replica_shard()] = std::move(proj_rows);
  } else {
    for (Row& row : proj_rows) {
      ShardId s = sharding.ShardForHash(proj.SegHashRow(row));
      by_shard[s].push_back(std::move(row));
    }
  }

  // Partition position within the projection, as PartitionColInProj.
  std::optional<size_t> partition_col;
  if (table.partition_column.has_value()) {
    for (size_t pos = 0; pos < proj.columns.size(); ++pos) {
      if (proj.columns[pos] == *table.partition_column) {
        partition_col = pos;
        break;
      }
    }
  }

  // Within each shard: ascending partition groups, each stable-sorted on
  // the projection sort columns — the concatenation equals scanning the
  // containers a moveout of these rows would create, in oid order.
  std::map<ShardId, std::vector<Row>> out;
  for (auto& [shard, rows] : by_shard) {
    if (rows.empty()) continue;
    std::vector<Row>& dst = out[shard];
    if (!partition_col.has_value()) {
      SortRowsBy(&rows, proj.sort_columns);
      dst = std::move(rows);
      continue;
    }
    std::map<Value, std::vector<Row>> by_partition;
    for (Row& row : rows) {
      by_partition[row[*partition_col]].push_back(std::move(row));
    }
    for (auto& [value, part_rows] : by_partition) {
      SortRowsBy(&part_rows, proj.sort_columns);
      for (Row& row : part_rows) dst.push_back(std::move(row));
    }
  }
  return out;
}

}  // namespace eon
