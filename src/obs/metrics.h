#ifndef EON_OBS_METRICS_H_
#define EON_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace eon {
namespace obs {

/// A sorted list of (key, value) label pairs. Two instruments with the
/// same name and the same label set are the SAME instrument: the registry
/// hands back the identical pointer, so increments from any component
/// accumulate in one place (the Prometheus data model).
class LabelSet {
 public:
  LabelSet() = default;
  LabelSet(std::initializer_list<std::pair<std::string, std::string>> labels);
  explicit LabelSet(
      std::vector<std::pair<std::string, std::string>> labels);

  const std::vector<std::pair<std::string, std::string>>& pairs() const {
    return pairs_;
  }
  bool empty() const { return pairs_.empty(); }

  /// Canonical identity key ("k1=v1,k2=v2"); keys sorted, duplicate keys
  /// collapsed (last writer wins).
  const std::string& Key() const { return key_; }

  bool operator==(const LabelSet& o) const { return key_ == o.key_; }
  bool operator<(const LabelSet& o) const { return key_ < o.key_; }

 private:
  void Canonicalize();

  std::vector<std::pair<std::string, std::string>> pairs_;
  std::string key_;
};

/// Monotonically increasing counter. Thread-safe, lock-free.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  std::atomic<uint64_t> value_{0};
};

/// Instantaneous value (cache residency bytes, node up/down, queue depth).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Sub(int64_t n) { value_.fetch_sub(n, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  std::atomic<int64_t> value_{0};
};

/// Point-in-time view of a histogram; quantiles are estimated by linear
/// interpolation inside the covering bucket (the standard Prometheus
/// histogram_quantile estimator).
struct HistogramSnapshot {
  /// Inclusive upper bounds of the finite buckets; an implicit +Inf
  /// overflow bucket follows. counts.size() == bounds.size() + 1.
  std::vector<double> bounds;
  std::vector<uint64_t> counts;
  uint64_t count = 0;
  double sum = 0;

  double Mean() const { return count == 0 ? 0.0 : sum / count; }

  /// Estimate the q-quantile (q in [0, 1]). Values in the overflow bucket
  /// clamp to the highest finite bound; an empty histogram returns 0.
  double Quantile(double q) const;
  double P50() const { return Quantile(0.50); }
  double P95() const { return Quantile(0.95); }
  double P99() const { return Quantile(0.99); }
};

/// Fixed-bucket histogram. Observe() is lock-free; Snapshot() may tear
/// between buckets under concurrent writes, which is acceptable for
/// monitoring (each individual bucket count is consistent).
class Histogram {
 public:
  /// Default bucket bounds for microsecond latencies: 100 µs .. 10 s,
  /// roughly 2.5x apart — spans an in-cache block read to a cold S3 scan.
  static const std::vector<double>& DefaultMicrosBounds();

  void Observe(double value);
  HistogramSnapshot Snapshot() const;
  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::vector<double> bounds);

  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> counts_;  // bounds_.size() + 1.
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0};
};

/// One exported sample in a registry snapshot.
struct MetricSample {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  LabelSet labels;
  Kind kind = Kind::kCounter;
  double value = 0;              ///< Counter / gauge value.
  HistogramSnapshot histogram;   ///< Populated for kHistogram.
};

/// Point-in-time copy of every instrument in a registry, sorted by
/// (name, label key) for deterministic serialization.
struct MetricsSnapshot {
  std::vector<MetricSample> samples;

  /// Find a sample; nullptr when absent.
  const MetricSample* Find(const std::string& name,
                           const LabelSet& labels = LabelSet()) const;
  /// Counter/gauge value lookup; 0 when absent.
  double Value(const std::string& name,
               const LabelSet& labels = LabelSet()) const;

  /// Sum of every sample of `name` across label sets (counters/gauges).
  double SumAcrossLabels(const std::string& name) const;

  /// Counter-style difference: this snapshot minus `base`. Samples absent
  /// from `base` pass through unchanged; histogram buckets subtract
  /// per-bucket. Differential tests measure work done by one operation
  /// without depending on accumulated global counts.
  MetricsSnapshot Delta(const MetricsSnapshot& base) const;
};

/// Thread-safe instrument registry. Instrument pointers are stable for the
/// registry's lifetime; components resolve them once at construction and
/// then update lock-free on hot paths.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name,
                      const LabelSet& labels = LabelSet());
  Gauge* GetGauge(const std::string& name,
                  const LabelSet& labels = LabelSet());
  /// `bounds` applies on first creation of (name, labels); later callers
  /// get the existing instrument regardless of the bounds they pass.
  Histogram* GetHistogram(const std::string& name,
                          const LabelSet& labels = LabelSet(),
                          const std::vector<double>& bounds =
                              Histogram::DefaultMicrosBounds());

  MetricsSnapshot Snapshot() const;

  /// Zero every instrument in place (pointers stay valid). Test-only:
  /// production counters are monotone by contract.
  void ResetForTest();

  /// Process-wide default registry. Components that are not handed an
  /// explicit registry record here, so examples and benches can export one
  /// unified snapshot without plumbing.
  static MetricsRegistry* Default();

 private:
  struct Family {
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>> histograms;
    std::map<std::string, LabelSet> labels;  ///< key -> original labels.
  };

  mutable std::mutex mu_;
  std::map<std::string, Family> families_;
};

/// Resolve a possibly-null registry to the process default.
inline MetricsRegistry* OrDefault(MetricsRegistry* registry) {
  return registry != nullptr ? registry : MetricsRegistry::Default();
}

}  // namespace obs
}  // namespace eon

#endif  // EON_OBS_METRICS_H_
