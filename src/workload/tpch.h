#ifndef EON_WORKLOAD_TPCH_H_
#define EON_WORKLOAD_TPCH_H_

#include <string>
#include <utility>
#include <vector>

#include "engine/ddl.h"
#include "engine/dml.h"
#include "engine/query.h"

namespace eon {

/// Scaled-down deterministic TPC-H-style dataset (the paper evaluates
/// TPC-H at SF200 on a 4-node EC2 cluster; we preserve the schema shape,
/// distributions, and query access patterns at laptop scale).
struct TpchOptions {
  /// Fraction of rows relative to the built-in base sizes below.
  double scale = 1.0;
  uint64_t seed = 7;
  /// Base row counts at scale 1.0.
  uint64_t base_customers = 1000;
  uint64_t base_orders = 5000;
  uint64_t base_lineitems = 20000;
  uint64_t base_parts = 400;
  /// Order dates span this many days ending at day `last_day`.
  int64_t days = 730;
  int64_t last_day = 10000;
};

/// Generated relations, ready for CopyInto.
struct TpchData {
  std::vector<Row> customers;
  std::vector<Row> orders;
  std::vector<Row> lineitems;
  std::vector<Row> parts;
};

/// Table schemas.
Schema TpchCustomerSchema();
Schema TpchOrdersSchema();
Schema TpchLineitemSchema();
Schema TpchPartSchema();

/// Deterministically generate the dataset.
TpchData GenerateTpch(const TpchOptions& options);

/// Create the four tables with the paper-motivated physical design:
/// lineitem segmented by HASH(l_orderkey) and orders by HASH(o_orderkey)
/// (co-segmented join), customer by HASH(c_custkey), part replicated
/// (dimension table), lineitem additionally partitioned by l_shipdate.
Status CreateTpchTables(EonCluster* cluster);

/// Load the generated data (COPY per table).
Status LoadTpch(EonCluster* cluster, const TpchData& data,
                uint64_t rows_per_block = 1024);

/// The 20-query evaluation set for Figure 10: named query shapes mirroring
/// TPC-H access patterns over this schema (scan-heavy aggregation,
/// selective filters, co-segmented and broadcast joins, group-bys, top-k).
std::vector<std::pair<std::string, QuerySpec>> TpchQuerySet(
    const TpchOptions& options);

/// The customer-style short dashboard query used by Figures 11a and 12:
/// a join plus aggregations that completes in ~100 ms on the paper's
/// testbed.
QuerySpec DashboardQuery(const TpchOptions& options);

/// IoT-style micro-batch for Figure 11b: `rows` rows of a narrow events
/// table keyed by device id.
Schema IotEventSchema();
Status CreateIotTable(EonCluster* cluster);
std::vector<Row> GenerateIotBatch(uint64_t seed, uint64_t rows);

}  // namespace eon

#endif  // EON_WORKLOAD_TPCH_H_
