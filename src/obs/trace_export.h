#ifndef EON_OBS_TRACE_EXPORT_H_
#define EON_OBS_TRACE_EXPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"
#include "obs/trace.h"

namespace eon {
namespace obs {

/// Pure span-tree analysis and export: everything here consumes a flat
/// vector of SpanData (one query's trace) and touches no cluster state,
/// so the same code serves the engine, the wire `trace` op, benches and
/// tests.

/// Render one trace as Chrome trace-event JSON (the format chrome://
/// tracing and Perfetto open directly): an object with a `traceEvents`
/// array of complete ("ph":"X") events. Spans are grouped into one pid
/// per trace and one tid per node so per-node lanes line up visually;
/// span attributes ride in `args`.
JsonValue ChromeTraceJson(const std::vector<SpanData>& spans);

/// Where a query's wall time went, decomposed from the span tree. The
/// named buckets come from the phase-level spans (which run sequentially
/// on the coordinator thread), `other_micros` is the remainder against
/// the root span, so the components sum to `wall_micros` *exactly* by
/// construction at any thread width — the interesting assertions are
/// that each bucket is non-negative and `other` stays small.
struct TraceAttribution {
  int64_t wall_micros = 0;     ///< Root span duration.
  int64_t queued_micros = 0;   ///< admission_wait span.
  int64_t plan_micros = 0;
  int64_t scan_micros = 0;     ///< Whole scan phase (fetch_wait + cpu).
  /// Heuristic split of the scan phase: demand-fetch time on the
  /// critical lane (the lane with the largest morsel-span sum) vs the
  /// rest. fetch_wait + scan_cpu == scan by construction.
  int64_t fetch_wait_micros = 0;
  int64_t scan_cpu_micros = 0;
  int64_t join_micros = 0;
  int64_t aggregate_micros = 0;
  int64_t merge_micros = 0;
  int64_t serialize_micros = 0;
  int64_t other_micros = 0;  ///< wall - sum(named); gaps between phases.

  /// Greedy critical-path walk from the root: at each level descend into
  /// the child that finishes last. Rendered as "name(duration)" steps.
  std::vector<std::string> critical_path;

  /// Named buckets + other (== wall by construction; kept as a method so
  /// tests assert the invariant against the real arithmetic).
  int64_t SumMicros() const {
    return queued_micros + plan_micros + scan_micros + join_micros +
           aggregate_micros + merge_micros + serialize_micros + other_micros;
  }

  JsonValue ToJson() const;
};

/// Decompose the trace rooted at the span with parent_id == 0 (or the
/// earliest span when several roots exist — defensive against ring
/// truncation). Returns a zeroed attribution for an empty trace.
TraceAttribution AttributeTrace(const std::vector<SpanData>& spans);

/// True when every span's [start,end] interval lies within its parent's
/// (children may end after an async handoff — prefetches — so only
/// spans whose parent is present are checked). Used by trace_view.sh's
/// C++-side test twin.
bool SpansNest(const std::vector<SpanData>& spans, std::string* error);

}  // namespace obs
}  // namespace eon

#endif  // EON_OBS_TRACE_EXPORT_H_
