# Empty compiler generated dependencies file for eonsql.
# This may be replaced when dependencies are built.
