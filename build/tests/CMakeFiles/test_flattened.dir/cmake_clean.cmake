file(REMOVE_RECURSE
  "CMakeFiles/test_flattened.dir/test_flattened.cc.o"
  "CMakeFiles/test_flattened.dir/test_flattened.cc.o.d"
  "test_flattened"
  "test_flattened.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flattened.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
