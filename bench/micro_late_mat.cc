// Micro-benchmark: late materialization in the ROS scan pipeline.
//
// Sweeps predicate selectivity (100%, 10%, 1%, 0.01%) over one predicate
// column per encoding, with a high-cardinality string payload column as
// the output. Each cell runs ScanRosContainer twice — eager (block_eval,
// late_mat off) vs late-materialized (encoded predicate eval + selective
// decode) — over a MemObjectStore through a DirectFetcher, so the
// measurement isolates decode CPU: no cache, no simulated store latency.
//
// Expected shape: on RLE and dictionary columns the predicate is decided
// once per run / once per dictionary entry, and the payload column only
// materializes survivors, so values_decoded collapses and wall time
// follows at low selectivity. Plain falls back to a decoded predicate
// column (selective decode still skips payload materialization); delta is
// sorted, so block min/max pruning removes most blocks in BOTH modes at
// low selectivity — reported honestly rather than tuned away. Emits
// BENCH_late_mat.json plus a metrics-snapshot sidecar.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "columnar/ros.h"
#include "storage/object_store.h"

namespace eon {
namespace {

constexpr size_t kRows = 1 << 18;  // 64 blocks of 4096.
constexpr uint64_t kRowsPerBlock = 4096;
constexpr int kRepeats = 7;
constexpr double kSelectivities[] = {1.0, 0.1, 0.01, 0.0001};

std::string PayloadFor(size_t i) {
  return "payload-" + std::to_string(i * 2654435761ULL % 1000000007ULL);
}

struct Dataset {
  std::string name;       // Target encoding of the predicate column.
  Schema schema;
  std::vector<Row> rows;
  // Predicate col0 < CutValue(sel) selects ~sel of the rows.
  int64_t domain = 0;     // Int datasets: col0 values lie in [0, domain).
  bool string_key = false;
};

// Zero-padded so lexicographic order equals numeric order.
std::string DictKey(int64_t id) {
  char buf[16];
  snprintf(buf, sizeof(buf), "k%06lld", static_cast<long long>(id));
  return buf;
}

Dataset MakeDataset(const std::string& name) {
  Dataset d;
  d.name = name;
  d.schema = Schema({{"key", name == "dict" ? DataType::kString
                                            : DataType::kInt64},
                     {"payload", DataType::kString}});
  d.rows.reserve(kRows);
  for (size_t i = 0; i < kRows; ++i) {
    Value key;
    if (name == "rle") {
      // Runs of 64; run values permuted over [0, 10000) so block min/max
      // never isolates the selected range (no pruning shortcut).
      d.domain = 10000;
      key = Value::Int(static_cast<int64_t>(i / 64 * 7919 % 10000));
    } else if (name == "dict") {
      // 256 distinct strings in scattered order — low-cardinality enough
      // for the per-block heuristic (distinct <= sampled/4) to pick dict.
      d.domain = 256;
      d.string_key = true;
      key = Value::Str(DictKey(static_cast<int64_t>(i * 2654435761ULL % 256)));
    } else if (name == "delta") {
      // Sorted: picks delta-varint; tight block ranges mean min/max
      // pruning helps both modes at low selectivity.
      d.domain = static_cast<int64_t>(kRows);
      key = Value::Int(static_cast<int64_t>(i));
    } else if (name == "bp") {
      // Small-domain unsorted ints, no runs: bit-packs at width 10. The
      // encoded path screens 128-value blocks and SIMD-compares the rest.
      d.domain = 1000;
      key = Value::Int(static_cast<int64_t>(i * 2654435761ULL % 1000));
    } else {  // plain: high-cardinality, unsorted, runless.
      d.domain = 1000000;
      key = Value::Int(static_cast<int64_t>(i * 2654435761ULL % 1000000));
    }
    d.rows.push_back(Row{std::move(key), Value::Str(PayloadFor(i))});
  }
  return d;
}

PredicatePtr CutPredicate(const Dataset& d, double sel) {
  // col0 < cut. For tiny selectivities keep at least one match-capable
  // cut value; actual selected-row counts are reported in the output.
  const int64_t cut = std::max<int64_t>(
      1, static_cast<int64_t>(static_cast<double>(d.domain) * sel));
  if (d.string_key) {
    return Predicate::Cmp(0, CmpOp::kLt, Value::Str(DictKey(cut)));
  }
  return Predicate::Cmp(0, CmpOp::kLt, Value::Int(cut));
}

struct ModeRun {
  int64_t wall_micros = 0;
  uint64_t rows_output = 0;
  uint64_t values_decoded = 0;
  uint64_t files_skipped = 0;
  uint64_t blocks_pruned = 0;
};

bool RunMode(const Dataset& d, FileFetcher* fetcher, const PredicatePtr& pred,
             bool late_mat, ModeRun* out) {
  RosScanOptions scan;
  scan.output_columns = {1};  // Payload only: predicate column is phase-1.
  scan.predicate = pred;
  scan.block_eval = true;
  scan.late_mat = late_mat;

  // Best of kRepeats by wall time (single-run stats are deterministic).
  for (int r = 0; r < kRepeats; ++r) {
    RosScanStats st;
    const int64_t wall0 = bench::WallMicros();
    auto rows = ScanRosContainer(d.schema, "bench/" + d.name, fetcher, scan,
                                 &st);
    const int64_t wall = bench::WallMicros() - wall0;
    if (!rows.ok()) {
      fprintf(stderr, "scan failed (%s): %s\n", d.name.c_str(),
              rows.status().ToString().c_str());
      return false;
    }
    if (r == 0 || wall < out->wall_micros) out->wall_micros = wall;
    out->rows_output = st.rows_output;
    out->values_decoded = st.values_decoded;
    out->files_skipped = st.files_skipped;
    out->blocks_pruned = st.blocks_pruned;
  }
  return true;
}

}  // namespace
}  // namespace eon

int main() {
  using namespace eon;

  printf("# Late materialization: eager vs encoded-eval + selective decode\n");
  printf("# %zu rows/container, %llu rows/block, payload = high-card string\n",
         kRows, static_cast<unsigned long long>(kRowsPerBlock));
  printf("%7s %6s %9s %8s %13s %13s %8s %8s\n", "enc", "sel%", "rows_out",
         "pruned", "eager_dec", "late_dec", "dec_x", "speedup");

  JsonValue cases = JsonValue::Array();
  double rle_dec_ratio_1pct = 0, rle_speedup_1pct = 0;
  double dict_dec_ratio_1pct = 0, dict_speedup_1pct = 0;
  double worst_full_sel_ratio = 0;  // late/eager wall at 100% selectivity.

  for (const std::string& name : {std::string("rle"), std::string("dict"),
                                  std::string("bp"), std::string("plain"),
                                  std::string("delta")}) {
    const Dataset d = MakeDataset(name);
    RosWriteOptions wopts;
    wopts.rows_per_block = kRowsPerBlock;
    auto built =
        RosContainerWriter::Build(d.schema, d.rows, "bench/" + name, wopts);
    if (!built.ok()) {
      fprintf(stderr, "build failed: %s\n", built.status().ToString().c_str());
      return 1;
    }
    MemObjectStore store;
    for (const RosColumnFile& f : built->files) {
      if (!store.Put(f.key, f.data).ok()) return 1;
    }
    DirectFetcher fetcher(&store);

    for (double sel : kSelectivities) {
      const PredicatePtr pred = CutPredicate(d, sel);
      ModeRun eager, late;
      if (!RunMode(d, &fetcher, pred, /*late_mat=*/false, &eager)) return 1;
      if (!RunMode(d, &fetcher, pred, /*late_mat=*/true, &late)) return 1;
      if (late.rows_output != eager.rows_output) {
        fprintf(stderr, "MODE MISMATCH: %s sel=%g eager=%llu late=%llu\n",
                name.c_str(), sel,
                static_cast<unsigned long long>(eager.rows_output),
                static_cast<unsigned long long>(late.rows_output));
        return 1;
      }

      const double dec_ratio =
          late.values_decoded > 0
              ? static_cast<double>(eager.values_decoded) /
                    static_cast<double>(late.values_decoded)
              : 0.0;
      const double speedup =
          late.wall_micros > 0 ? static_cast<double>(eager.wall_micros) /
                                     static_cast<double>(late.wall_micros)
                               : 0.0;
      if (name == "rle" && sel == 0.01) {
        rle_dec_ratio_1pct = dec_ratio;
        rle_speedup_1pct = speedup;
      }
      if (name == "dict" && sel == 0.01) {
        dict_dec_ratio_1pct = dec_ratio;
        dict_speedup_1pct = speedup;
      }
      if (sel == 1.0 && speedup > 0) {
        worst_full_sel_ratio = std::max(worst_full_sel_ratio, 1.0 / speedup);
      }

      printf("%7s %6.2f %9llu %8llu %13llu %13llu %7.1fx %7.2fx\n",
             name.c_str(), sel * 100,
             static_cast<unsigned long long>(late.rows_output),
             static_cast<unsigned long long>(late.blocks_pruned),
             static_cast<unsigned long long>(eager.values_decoded),
             static_cast<unsigned long long>(late.values_decoded), dec_ratio,
             speedup);

      JsonValue e = JsonValue::Object();
      e.Set("encoding", JsonValue::Str(name));
      e.Set("selectivity_target", JsonValue::Double(sel));
      e.Set("rows_output",
            JsonValue::Int(static_cast<int64_t>(late.rows_output)));
      e.Set("blocks_pruned",
            JsonValue::Int(static_cast<int64_t>(late.blocks_pruned)));
      e.Set("eager_wall_micros", JsonValue::Int(eager.wall_micros));
      e.Set("late_wall_micros", JsonValue::Int(late.wall_micros));
      e.Set("eager_values_decoded",
            JsonValue::Int(static_cast<int64_t>(eager.values_decoded)));
      e.Set("late_values_decoded",
            JsonValue::Int(static_cast<int64_t>(late.values_decoded)));
      e.Set("late_files_skipped",
            JsonValue::Int(static_cast<int64_t>(late.files_skipped)));
      e.Set("values_decoded_ratio", JsonValue::Double(dec_ratio));
      e.Set("speedup", JsonValue::Double(speedup));
      cases.Append(std::move(e));
    }
  }

  JsonValue out = JsonValue::Object();
  out.Set("bench", JsonValue::Str("late_mat"));
  out.Set("rows_per_container", JsonValue::Int(static_cast<int64_t>(kRows)));
  out.Set("rows_per_block", JsonValue::Int(static_cast<int64_t>(kRowsPerBlock)));
  out.Set("cases", std::move(cases));

  FILE* fp = fopen("BENCH_late_mat.json", "w");
  if (fp != nullptr) {
    const std::string text = out.Dump();
    fwrite(text.data(), 1, text.size(), fp);
    fclose(fp);
    fprintf(stderr, "wrote BENCH_late_mat.json\n");
  }
  bench::DumpBenchSidecars("BENCH_late_mat", nullptr);

  printf("# shape check at 1%% selectivity: rle %.1fx fewer values decoded "
         "(%.2fx faster), dict %.1fx (%.2fx); worst 100%%-selectivity "
         "overhead %.1f%%\n",
         rle_dec_ratio_1pct, rle_speedup_1pct, dict_dec_ratio_1pct,
         dict_speedup_1pct, (worst_full_sel_ratio - 1.0) * 100);
  const bool ok = rle_dec_ratio_1pct >= 5.0 && dict_dec_ratio_1pct >= 5.0 &&
                  rle_speedup_1pct >= 1.5 && dict_speedup_1pct >= 1.5 &&
                  worst_full_sel_ratio <= 1.05;
  return ok ? 0 : 2;
}
