#ifndef EON_OBS_TRACE_H_
#define EON_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"

namespace eon {
namespace obs {

class MetricsRegistry;

/// A finished (or in-flight) span's recorded data.
struct SpanData {
  uint64_t id = 0;
  uint64_t parent_id = 0;  ///< 0 = root.
  /// Query-scoped trace the span belongs to (0 = untraced). Stamped from
  /// the owning Tracer so every span in one query shares one id.
  uint64_t trace_id = 0;
  /// Node the span ran on ("" = coordinator / unknown). Stamped from the
  /// innermost DcNodeScope at start; explicit SetNode overrides.
  std::string node;
  std::string name;
  int64_t start_micros = 0;
  int64_t end_micros = 0;
  std::vector<std::pair<std::string, std::string>> attributes;

  int64_t DurationMicros() const { return end_micros - start_micros; }
};

class Tracer;

/// RAII timing scope. Move-only; End() is idempotent and the destructor
/// ends an open span, so early returns are always accounted.
class Span {
 public:
  Span() = default;
  Span(Span&& o) noexcept { *this = std::move(o); }
  Span& operator=(Span&& o) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { End(); }

  /// Valid spans come from Tracer::StartSpan; default-constructed spans
  /// are inert no-ops (handy for optional tracing).
  bool valid() const { return tracer_ != nullptr; }
  uint64_t id() const { return data_.id; }

  void SetAttribute(const std::string& key, const std::string& value);
  void SetAttribute(const std::string& key, int64_t value);
  /// Override the node the span is attributed to (morsel tasks know
  /// their executor; the DcNodeScope default covers cache/store spans).
  void SetNode(const std::string& node);

  /// Stamp the end time from the tracer's clock and hand the span to the
  /// tracer's finished buffer.
  void End();

 private:
  friend class Tracer;
  Span(Tracer* tracer, SpanData data)
      : tracer_(tracer), data_(std::move(data)) {}

  Tracer* tracer_ = nullptr;
  SpanData data_;
};

/// Clock-driven tracer: spans read time from the supplied Clock, so the
/// same instrumentation yields deterministic timings under SimClock and
/// real latencies under WallClock. Finished spans land in a bounded
/// in-memory ring (oldest dropped first, O(1) per span); drops are
/// counted locally and on the `eon_tracer_spans_dropped_total` counter
/// in `registry` (null = process default) so exports surface them.
class Tracer {
 public:
  explicit Tracer(Clock* clock, size_t max_finished_spans = 4096,
                  MetricsRegistry* registry = nullptr)
      : clock_(clock),
        max_finished_(max_finished_spans),
        // Lock-striped buffer for large rings: morsel tasks on every pool
        // lane finish spans concurrently, and a single mutex convoys them.
        // Small rings (tests pin exact oldest-first eviction) stay single-
        // stripe, where per-stripe semantics are exact global semantics.
        num_stripes_(max_finished_spans >= 1024 ? kMaxStripes : 1),
        registry_(registry) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Start a root span.
  Span StartSpan(const std::string& name) { return StartSpanAt(name, 0); }

  /// Start a child span of `parent` (parent must still be open).
  Span StartSpan(const std::string& name, const Span& parent) {
    return StartSpanAt(name, parent.data_.id);
  }

  /// Start a child span of the span with id `parent_id` (0 = root).
  /// Cross-thread instrumentation links by id because the parent Span
  /// object lives on another stack.
  Span StartSpanWithParent(const std::string& name, uint64_t parent_id) {
    return StartSpanAt(name, parent_id);
  }

  Clock* clock() const { return clock_; }

  /// Trace id stamped onto every span this tracer starts (0 = untraced).
  void set_trace_id(uint64_t trace_id) { trace_id_ = trace_id; }
  uint64_t trace_id() const { return trace_id_; }

  /// Finished spans in finish order (children before parents; creation
  /// order breaks end-time ties).
  std::vector<SpanData> FinishedSpans() const;
  /// Like FinishedSpans, but moves the spans out (the buffer is left
  /// empty; counters are unchanged). Retention uses this so a query's
  /// span strings are not copied on their way to the Data Collector.
  std::vector<SpanData> DrainFinished();
  /// Total spans finished, including any dropped from the buffer.
  uint64_t finished_count() const;
  /// Spans evicted from the bounded buffer since construction / Clear().
  uint64_t spans_dropped() const;
  void Clear();

 private:
  friend class Span;
  static constexpr size_t kMaxStripes = 8;

  Span StartSpanAt(const std::string& name, uint64_t parent_id);
  void Finish(SpanData data);

  /// One shard of the finished-span buffer. Sequential span ids round-
  /// robin across stripes, so concurrent finishers rarely share a lock
  /// and the per-stripe bound (max_finished_ / num_stripes_) keeps the
  /// global capacity; eviction is oldest-first per stripe, which for the
  /// round-robin assignment approximates global oldest-first.
  struct Stripe {
    mutable std::mutex mu;
    std::deque<SpanData> finished;
    uint64_t finished_total = 0;
    uint64_t spans_dropped = 0;
  };

  Clock* clock_;
  const size_t max_finished_;
  const size_t num_stripes_;
  MetricsRegistry* registry_;
  uint64_t trace_id_ = 0;
  Stripe stripes_[kMaxStripes];
  std::atomic<uint64_t> next_id_{1};
};

/// The ambient trace of the query a thread is working on: which tracer
/// collects spans, which trace id labels them, and which open span new
/// work should parent under. Copyable by design — cross-thread hops
/// (morsel tasks on the exec pool, fetches and prefetches on the I/O
/// pool) capture the context *by value* into the task lambda and
/// reinstall it with a TraceScope inside the task body. The tracer is
/// held by shared_ptr so fire-and-forget prefetch tasks can outlive the
/// query that issued them without dangling.
struct TraceContext {
  std::shared_ptr<Tracer> tracer;
  uint64_t trace_id = 0;
  /// Innermost open span on the minting path; new spans parent here.
  uint64_t parent_span_id = 0;
  /// Session forced tracing (`\set trace on`): retain regardless of
  /// sampling or slow-query policy.
  bool forced = false;

  bool active() const { return tracer != nullptr; }
};

/// RAII thread-local install of a TraceContext (same discipline as
/// DcNodeScope). The scope stores its own copy, so capturing a context
/// by value into a lambda and constructing a TraceScope inside the task
/// is safe even after the originating stack frame is gone.
class TraceScope {
 public:
  explicit TraceScope(TraceContext context);
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  /// The innermost live scope's context on this thread, or null.
  static const TraceContext* Current();

 private:
  TraceContext context_;
  const TraceContext* previous_;
};

/// Copy of the current thread's trace context (inactive when none).
TraceContext CurrentTraceCopy();
/// Copy of the current context re-parented under `parent_span_id` —
/// install with a TraceScope so child work nests under a new span.
TraceContext CurrentTraceWithParent(uint64_t parent_span_id);

/// Start a span under the current thread's trace context; returns an
/// inert Span (no allocation, no lock) when no trace is live. This is
/// the one call sites use — instrumentation costs two branches when
/// tracing is off.
Span StartTraceSpan(const std::string& name);

/// Process-unique 63-bit nonzero trace id (deterministic sequence — the
/// i-th call always yields the same id, so SimClock runs reproduce).
uint64_t NextTraceId();

/// Deterministic sampling decision: a pure hash of the trace id against
/// `probability` in [0,1]. The same id always samples the same way, on
/// any node, at any time — no clock, no RNG.
bool TraceSampled(uint64_t trace_id, double probability);

}  // namespace obs
}  // namespace eon

#endif  // EON_OBS_TRACE_H_
