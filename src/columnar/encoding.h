#ifndef EON_COLUMNAR_ENCODING_H_
#define EON_COLUMNAR_ENCODING_H_

#include <string>
#include <vector>

#include "columnar/types.h"
#include "common/result.h"
#include "common/slice.h"

namespace eon {

/// Column chunk encodings. Vertica sorts data and operates directly on
/// encoded values; here we implement the four classic column encodings and
/// pick automatically per block (sorted data usually compresses well —
/// paper Section 2.1).
enum class Encoding : uint8_t {
  kPlain = 0,        ///< Values back to back.
  kRle = 1,          ///< (run length, value) pairs; great for sorted columns.
  kDict = 2,         ///< Distinct-value dictionary + per-row codes.
  kDeltaVarint = 3,  ///< Zigzag deltas; great for sorted non-null int64.
};

const char* EncodingName(Encoding e);

/// Encode `values` (all of type `type`) with the given encoding.
/// Format: [encoding:1][count:varint][payload]. Nulls are supported by
/// every encoding. Returns InvalidArgument if the encoding cannot represent
/// the data (kDeltaVarint with nulls or non-int64).
Result<std::string> EncodeChunk(const std::vector<Value>& values,
                                DataType type, Encoding encoding);

/// Decode a chunk produced by EncodeChunk. Appends to `out`.
Status DecodeChunk(Slice data, DataType type, std::vector<Value>* out);

/// Heuristic auto-selection: delta for sorted non-null ints, RLE for long
/// runs, dictionary for low cardinality, otherwise plain.
Encoding ChooseEncoding(const std::vector<Value>& values, DataType type);

}  // namespace eon

#endif  // EON_COLUMNAR_ENCODING_H_
