#include "catalog/sync.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "common/json.h"

namespace eon {

namespace {

std::string VersionSuffix(uint64_t version) {
  char buf[32];
  snprintf(buf, sizeof(buf), "%020" PRIu64, version);
  return buf;
}

Result<uint64_t> ParseVersionSuffix(const std::string& key,
                                    const std::string& prefix) {
  if (key.size() <= prefix.size()) {
    return Status::Corruption("bad metadata key: " + key);
  }
  return static_cast<uint64_t>(
      strtoull(key.c_str() + prefix.size(), nullptr, 10));
}

constexpr char kClusterInfoPrefix[] = "cluster_info/";

}  // namespace

CatalogSync::CatalogSync(ObjectStore* store, IncarnationId incarnation,
                         Oid node_oid)
    : store_(store), incarnation_(incarnation), node_oid_(node_oid) {}

std::string CatalogSync::NodePrefix() const {
  return NodePrefixFor(incarnation_, node_oid_);
}

std::string CatalogSync::NodePrefixFor(const IncarnationId& inc,
                                       Oid node_oid) {
  return "meta/" + inc.ToHex() + "/node" + std::to_string(node_oid) + "/";
}

Status CatalogSync::SyncNow(const Catalog& catalog, bool force_checkpoint) {
  const std::string prefix = NodePrefix();

  // Upload log records newer than what is already durable.
  std::vector<TxnLogRecord> logs = catalog.LogsAfter(uploaded_version_);
  for (const TxnLogRecord& rec : logs) {
    const std::string key = prefix + "log_" + VersionSuffix(rec.version);
    Status s = store_->Put(key, rec.Serialize());
    if (!s.ok() && !s.IsAlreadyExists()) return s;
    uploaded_version_ = rec.version;
    commits_since_checkpoint_++;
  }

  const uint64_t current = catalog.version();
  const bool want_checkpoint =
      force_checkpoint || (commits_since_checkpoint_ >= checkpoint_every_ &&
                           current > last_checkpoint_version_);
  if (want_checkpoint && current > 0) {
    const std::string key = prefix + "ckpt_" + VersionSuffix(current);
    Status s = store_->Put(key, catalog.SerializeCheckpoint());
    if (!s.ok() && !s.IsAlreadyExists()) return s;
    last_checkpoint_version_ = current;
    commits_since_checkpoint_ = 0;
    if (interval_.lower == 0) interval_.lower = current;
  }

  interval_.upper = std::max(uploaded_version_, last_checkpoint_version_);
  return Status::OK();
}

Status CatalogSync::DeleteStale(int keep) {
  const std::string prefix = NodePrefix();
  EON_ASSIGN_OR_RETURN(std::vector<ObjectMeta> ckpts,
                       store_->List(prefix + "ckpt_"));
  if (static_cast<int>(ckpts.size()) <= keep) return Status::OK();

  // Keys sort by zero-padded version, so the newest `keep` are at the end.
  const size_t drop = ckpts.size() - static_cast<size_t>(keep);
  uint64_t oldest_kept = 0;
  {
    EON_ASSIGN_OR_RETURN(
        oldest_kept,
        ParseVersionSuffix(ckpts[drop].key, prefix + "ckpt_"));
  }
  for (size_t i = 0; i < drop; ++i) {
    Status s = store_->Delete(ckpts[i].key);
    if (!s.ok() && !s.IsNotFound()) return s;
  }
  // Logs at or below the oldest kept checkpoint are no longer needed.
  EON_ASSIGN_OR_RETURN(std::vector<ObjectMeta> logs,
                       store_->List(prefix + "log_"));
  for (const ObjectMeta& m : logs) {
    EON_ASSIGN_OR_RETURN(uint64_t v,
                         ParseVersionSuffix(m.key, prefix + "log_"));
    if (v <= oldest_kept) {
      Status s = store_->Delete(m.key);
      if (!s.ok() && !s.IsNotFound()) return s;
    }
  }
  interval_.lower = oldest_kept;
  return Status::OK();
}

Result<std::unique_ptr<Catalog>> DownloadCatalog(
    ObjectStore* store, const IncarnationId& incarnation, Oid node_oid,
    uint64_t upto_version, const std::set<ShardId>* shard_filter) {
  const std::string prefix = CatalogSync::NodePrefixFor(incarnation, node_oid);

  EON_ASSIGN_OR_RETURN(std::vector<ObjectMeta> ckpts,
                       store->List(prefix + "ckpt_"));
  // Pick the newest checkpoint at or below the target version.
  std::string best_key;
  uint64_t best_version = 0;
  for (const ObjectMeta& m : ckpts) {
    EON_ASSIGN_OR_RETURN(uint64_t v,
                         ParseVersionSuffix(m.key, prefix + "ckpt_"));
    if (v <= upto_version && v >= best_version) {
      best_version = v;
      best_key = m.key;
    }
  }
  if (best_key.empty()) {
    return Status::NotFound("no usable checkpoint under " + prefix);
  }
  EON_ASSIGN_OR_RETURN(std::string ckpt_data, store->Get(best_key));

  EON_ASSIGN_OR_RETURN(std::vector<ObjectMeta> log_metas,
                       store->List(prefix + "log_"));
  std::vector<TxnLogRecord> logs;
  for (const ObjectMeta& m : log_metas) {
    EON_ASSIGN_OR_RETURN(uint64_t v,
                         ParseVersionSuffix(m.key, prefix + "log_"));
    if (v <= best_version || v > upto_version) continue;
    EON_ASSIGN_OR_RETURN(std::string data, store->Get(m.key));
    EON_ASSIGN_OR_RETURN(TxnLogRecord rec, TxnLogRecord::Deserialize(data));
    logs.push_back(std::move(rec));
  }
  return Catalog::Restore(ckpt_data, logs, upto_version, shard_filter);
}

Result<SyncInterval> ReadSyncInterval(ObjectStore* store,
                                      const IncarnationId& incarnation,
                                      Oid node_oid) {
  const std::string prefix = CatalogSync::NodePrefixFor(incarnation, node_oid);
  SyncInterval interval;

  EON_ASSIGN_OR_RETURN(std::vector<ObjectMeta> ckpts,
                       store->List(prefix + "ckpt_"));
  uint64_t oldest_ckpt = 0, newest_ckpt = 0;
  for (const ObjectMeta& m : ckpts) {
    EON_ASSIGN_OR_RETURN(uint64_t v,
                         ParseVersionSuffix(m.key, prefix + "ckpt_"));
    if (oldest_ckpt == 0 || v < oldest_ckpt) oldest_ckpt = v;
    newest_ckpt = std::max(newest_ckpt, v);
  }
  if (oldest_ckpt == 0) return interval;  // Nothing durable yet.
  interval.lower = oldest_ckpt;
  interval.upper = newest_ckpt;

  // Logs contiguously extending past the newest checkpoint raise the upper
  // bound; a gap means later logs are unusable.
  EON_ASSIGN_OR_RETURN(std::vector<ObjectMeta> logs,
                       store->List(prefix + "log_"));
  std::vector<uint64_t> versions;
  for (const ObjectMeta& m : logs) {
    EON_ASSIGN_OR_RETURN(uint64_t v,
                         ParseVersionSuffix(m.key, prefix + "log_"));
    if (v > newest_ckpt) versions.push_back(v);
  }
  std::sort(versions.begin(), versions.end());
  uint64_t upper = newest_ckpt;
  for (uint64_t v : versions) {
    if (v == upper + 1) {
      upper = v;
    } else if (v > upper + 1) {
      break;
    }
  }
  interval.upper = upper;
  return interval;
}

uint64_t ComputeTruncationVersion(
    const CatalogState& state,
    const std::map<Oid, uint64_t>& node_upload_upper) {
  // Per shard: the best (highest) durable version among subscribers; a
  // shard with no synced subscriber pins the consensus at 0.
  const std::set<SubscriptionState> any_serving = {
      SubscriptionState::kActive, SubscriptionState::kPassive,
      SubscriptionState::kRemoving};
  uint64_t consensus = UINT64_MAX;
  const uint32_t total = state.sharding.num_shards_total();
  for (ShardId shard = 0; shard < total; ++shard) {
    uint64_t shard_best = 0;
    for (Oid node : state.SubscribersOf(shard, any_serving)) {
      auto it = node_upload_upper.find(node);
      if (it != node_upload_upper.end()) {
        shard_best = std::max(shard_best, it->second);
      }
    }
    consensus = std::min(consensus, shard_best);
  }
  return consensus == UINT64_MAX ? 0 : consensus;
}

std::string ClusterInfo::ToJsonText() const {
  JsonValue obj = JsonValue::Object();
  obj.Set("truncation_version",
          JsonValue::Int(static_cast<int64_t>(truncation_version)));
  obj.Set("incarnation", JsonValue::Str(incarnation.ToHex()));
  obj.Set("timestamp_micros", JsonValue::Int(timestamp_micros));
  obj.Set("lease_expiry_micros", JsonValue::Int(lease_expiry_micros));
  obj.Set("database", JsonValue::Str(database_name));
  JsonValue nodes = JsonValue::Array();
  for (const std::string& n : node_names) nodes.Append(JsonValue::Str(n));
  obj.Set("nodes", std::move(nodes));
  return obj.Dump();
}

Result<ClusterInfo> ClusterInfo::FromJsonText(const std::string& text) {
  EON_ASSIGN_OR_RETURN(JsonValue v, JsonValue::Parse(text));
  if (!v.is_object()) return Status::Corruption("cluster_info not an object");
  ClusterInfo info;
  info.truncation_version =
      static_cast<uint64_t>(v.Get("truncation_version").int_value());
  EON_ASSIGN_OR_RETURN(
      info.incarnation,
      IncarnationId::FromHex(v.Get("incarnation").string_value()));
  info.timestamp_micros = v.Get("timestamp_micros").int_value();
  info.lease_expiry_micros = v.Get("lease_expiry_micros").int_value();
  info.database_name = v.Get("database").string_value();
  const JsonValue& nodes = v.Get("nodes");
  for (size_t i = 0; i < nodes.size(); ++i) {
    info.node_names.push_back(nodes.at(i).string_value());
  }
  return info;
}

Status ClusterInfo::WriteTo(ObjectStore* store) const {
  EON_ASSIGN_OR_RETURN(std::vector<ObjectMeta> existing,
                       store->List(kClusterInfoPrefix));
  uint64_t next_seq = 1;
  if (!existing.empty()) {
    EON_ASSIGN_OR_RETURN(
        uint64_t last,
        ParseVersionSuffix(existing.back().key, kClusterInfoPrefix));
    next_seq = last + 1;
  }
  const std::string key =
      std::string(kClusterInfoPrefix) + VersionSuffix(next_seq);
  return store->Put(key, ToJsonText());
}

Result<ClusterInfo> ClusterInfo::ReadLatest(ObjectStore* store) {
  EON_ASSIGN_OR_RETURN(std::vector<ObjectMeta> existing,
                       store->List(kClusterInfoPrefix));
  if (existing.empty()) {
    return Status::NotFound("no cluster_info on shared storage");
  }
  EON_ASSIGN_OR_RETURN(std::string text, store->Get(existing.back().key));
  return FromJsonText(text);
}

}  // namespace eon
