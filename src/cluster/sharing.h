#ifndef EON_CLUSTER_SHARING_H_
#define EON_CLUSTER_SHARING_H_

#include "cluster/cluster.h"

namespace eon {

/// Database sharing (the paper's concluding direction: "the idea of two or
/// more databases sharing the same metadata and data files is practical
/// and compelling ... strong fault and workload isolation, align spending
/// with business unit resource consumption").
///
/// AttachReadOnly brings up a secondary compute cluster against a RUNNING
/// database's shared storage:
///  - it reads the published cluster_info.json and downloads the catalog
///    at the truncation version, WITHOUT taking the revive lease (readers
///    do not conflict with the writer or each other);
///  - it serves queries from its own caches — complete workload and fault
///    isolation from the primary (its nodes failing cannot touch the
///    primary, and its scans cannot evict the primary's caches);
///  - it never commits: every mutation path fails with NotSupported;
///  - RefreshReadOnly catches it up to the primary's latest *published*
///    (durable) version by replaying uploaded transaction logs.
inline Result<std::unique_ptr<EonCluster>> AttachReadOnly(
    ObjectStore* shared_storage, Clock* clock, const ClusterOptions& options,
    const std::vector<NodeSpec>& specs) {
  return EonCluster::AttachReadOnly(shared_storage, clock, options, specs);
}

/// Advance a reader cluster to the source database's latest published
/// truncation version. Returns the number of versions applied.
inline Result<uint64_t> RefreshReadOnly(EonCluster* reader) {
  return reader->RefreshReadOnly();
}

}  // namespace eon

#endif  // EON_CLUSTER_SHARING_H_
