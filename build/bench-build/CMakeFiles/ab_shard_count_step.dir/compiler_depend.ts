# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for ab_shard_count_step.
