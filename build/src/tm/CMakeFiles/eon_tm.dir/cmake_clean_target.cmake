file(REMOVE_RECURSE
  "libeon_tm.a"
)
