#ifndef EON_CATALOG_OBJECTS_H_
#define EON_CATALOG_OBJECTS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "columnar/agg.h"
#include "columnar/expression.h"
#include "columnar/schema.h"
#include "common/result.h"

namespace eon {

/// Catalog object identifier. Monotonic per catalog; the local-id half of
/// storage identifiers (Figure 7).
using Oid = uint64_t;
constexpr Oid kInvalidOid = 0;

/// Shard identifiers. Segment shards are 0..S-1; the replica shard (which
/// holds storage metadata of replicated projections, Section 3.1) is S.
using ShardId = uint32_t;
constexpr ShardId kGlobalShard = 0xFFFFFFFFu;  ///< Marker for global objects.

/// Sharding layout fixed at database creation (Section 3.1): the 32-bit
/// hash space is divided into `num_segment_shards` contiguous regions.
struct ShardingConfig {
  uint32_t num_segment_shards = 0;

  ShardId replica_shard() const { return num_segment_shards; }
  uint32_t num_shards_total() const { return num_segment_shards + 1; }

  /// Segment shard owning `hash` (contiguous regions of the hash space).
  ShardId ShardForHash(uint32_t hash) const {
    uint64_t span = (1ULL << 32) / num_segment_shards;
    ShardId s = static_cast<ShardId>(hash / span);
    return s >= num_segment_shards ? num_segment_shards - 1 : s;
  }

  /// Inclusive lower bound of the shard's hash region.
  uint32_t ShardLowerBound(ShardId s) const {
    uint64_t span = (1ULL << 32) / num_segment_shards;
    return static_cast<uint32_t>(span * s);
  }
};

/// One pre-computed aggregate of a live aggregate projection.
struct LiveAggSpec {
  AggFn fn = AggFn::kCount;
  /// Base-table column the aggregate reads (ignored for kCount).
  size_t source_column = 0;

  bool operator==(const LiveAggSpec& o) const {
    return fn == o.fn && source_column == o.source_column;
  }
};

/// One denormalized column of a flattened table (Section 2.1): at load
/// time, `target_column` is filled by joining this table's
/// `fact_key_column` against `dim_key_column` of `dim_table` and copying
/// `dim_value_column`.
struct FlattenedColDef {
  size_t target_column = 0;    ///< Position in this table's schema.
  size_t fact_key_column = 0;  ///< Join key position in this table.
  Oid dim_table = kInvalidOid;
  size_t dim_key_column = 0;   ///< Join key position in the dimension.
  size_t dim_value_column = 0; ///< Value position in the dimension.
};

/// A table: global catalog object.
///
/// A table may materialize a *live aggregate projection* of another table
/// (Section 2.1): its rows are per-group partial aggregates maintained at
/// load time. Such tables set `lap_base`/`lap_group_columns`/`lap_aggs`;
/// the optimizer rewrites matching aggregate queries onto them, and the
/// base table's update surface is restricted (no DELETE/UPDATE) while
/// live aggregates exist.
struct TableDef {
  Oid oid = kInvalidOid;
  std::string name;
  Schema schema;
  /// Intra-node horizontal partitioning (Section 2.1): optional column whose
  /// value partitions containers (usually a date column). Loads split rows
  /// so each container holds a single partition value.
  std::optional<size_t> partition_column;

  /// Live-aggregate binding (unset for ordinary tables).
  Oid lap_base = kInvalidOid;
  std::vector<size_t> lap_group_columns;  ///< Base-table column indices.
  std::vector<LiveAggSpec> lap_aggs;

  /// Flattened-table denormalization clauses (Section 2.1); empty for
  /// ordinary tables. Loads fill the target columns by dimension lookup;
  /// RefreshFlattenedTable re-derives them after dimension changes.
  std::vector<FlattenedColDef> flattened;

  bool is_live_aggregate() const { return lap_base != kInvalidOid; }
  bool is_flattened() const { return !flattened.empty(); }
};

/// A projection: sorted, segmented physical organization of a table's
/// columns (Section 2.1/2.2). Column indices below refer to positions in
/// the *projection* schema except `columns`, which maps projection position
/// to table column.
struct ProjectionDef {
  Oid oid = kInvalidOid;
  Oid table_oid = kInvalidOid;
  std::string name;
  std::vector<size_t> columns;       ///< Table column index per proj column.
  std::vector<size_t> sort_columns;  ///< Proj column positions, sort order.
  /// Segmentation clause columns (proj positions). Empty = replicated
  /// projection (every subscriber of the replica shard stores all rows).
  std::vector<size_t> segmentation_columns;

  bool replicated() const { return segmentation_columns.empty(); }

  /// Schema of rows stored in this projection, derived from `table_schema`.
  Schema DeriveSchema(const Schema& table_schema) const;

  /// Segmentation hash of a projection row (32-bit space).
  uint32_t SegHashRow(const Row& row) const;
};

/// Storage metadata for one ROS container. In Eon mode this is a per-shard
/// catalog object replicated to every subscriber of `shard` (Section 3.1).
struct StorageContainerMeta {
  Oid oid = kInvalidOid;
  Oid projection_oid = kInvalidOid;
  ShardId shard = 0;
  std::string base_key;  ///< SID-derived object name prefix on storage.
  uint64_t row_count = 0;
  uint64_t total_bytes = 0;
  uint64_t num_columns = 0;
  std::vector<ValueRange> column_ranges;  ///< Per-column min/max for pruning.
  /// Mergeout bookkeeping: strata level (0 = freshly loaded).
  uint32_t stratum = 0;
  /// Version at which the container was committed (for delete safety).
  uint64_t create_version = 0;
};

/// Delete vector metadata: tombstones for one container (Section 2.3).
struct DeleteVectorMeta {
  Oid oid = kInvalidOid;
  Oid container_oid = kInvalidOid;
  ShardId shard = 0;
  std::string key;  ///< Object key of the serialized DeleteVector.
  uint64_t deleted_count = 0;
};

/// Subscription states (Figure 4).
enum class SubscriptionState : uint8_t {
  kPending = 0,   ///< Declared; metadata transfer in progress.
  kPassive = 1,   ///< Metadata caught up; participates in commits.
  kActive = 2,    ///< Cache warm (or warming skipped); serves queries.
  kRemoving = 3,  ///< Unsubscribing; still serves until safe to drop.
};

const char* SubscriptionStateName(SubscriptionState s);

/// A node's subscription to a shard: global catalog object controlling
/// which nodes store/serve which shards (Section 3.1).
struct Subscription {
  Oid node_oid = kInvalidOid;
  ShardId shard = 0;
  SubscriptionState state = SubscriptionState::kPending;
};

/// A compute node: global catalog object.
struct NodeDef {
  Oid oid = kInvalidOid;
  std::string name;
  /// Subcluster for workload isolation (Section 4.3); empty = default.
  std::string subcluster;
};

/// Binary serialization (catalog log records and checkpoints).
void SerializeTable(const TableDef& t, std::string* out);
Result<TableDef> DeserializeTable(Slice* in);
void SerializeProjection(const ProjectionDef& p, std::string* out);
Result<ProjectionDef> DeserializeProjection(Slice* in);
void SerializeContainer(const StorageContainerMeta& c, std::string* out);
Result<StorageContainerMeta> DeserializeContainer(Slice* in);
void SerializeDeleteVectorMeta(const DeleteVectorMeta& d, std::string* out);
Result<DeleteVectorMeta> DeserializeDeleteVectorMeta(Slice* in);
void SerializeSubscription(const Subscription& s, std::string* out);
Result<Subscription> DeserializeSubscription(Slice* in);
void SerializeNode(const NodeDef& n, std::string* out);
Result<NodeDef> DeserializeNode(Slice* in);

}  // namespace eon

#endif  // EON_CATALOG_OBJECTS_H_
